//! Physics validation: plane Poiseuille flow in a 2D channel.
//!
//! Runs the same flow through the reference ST solver (BGK) and the
//! moment-representation MR-P kernel, compares both against the analytic
//! parabolic profile, and writes the profiles as CSV to stdout.
//!
//! ```text
//! cargo run --release --example poiseuille_validation
//! ```

use lbm_mr::prelude::*;

fn main() {
    let (nx, ny) = (64, 22);
    let u_max = 0.04;
    let tau = 0.8;
    let steps = 4000;

    // Reference ST solver with projective regularization.
    let geom = Geometry::channel_2d_poiseuille(nx, ny, u_max);
    let mut st: Solver<D2Q9, _> = Solver::new(geom.clone(), Projective::new(tau));
    st.run(steps);

    // Moment representation, same flow.
    let mut mr: MrSim2D<D2Q9> = MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), tau);
    mr.run(steps);

    let g = st.geom().clone();
    let (ust, umr) = (st.velocity_field(), mr.velocity_field());

    let err_st = diagnostics::l2_velocity_error(&g, &ust, 0, |_x, y, _z| {
        analytic::poiseuille_profile(y, ny, u_max)
    });
    let err_mr = diagnostics::l2_velocity_error(&g, &umr, 0, |_x, y, _z| {
        analytic::poiseuille_profile(y, ny, u_max)
    });
    println!("# relative L2 error vs analytic: ST {err_st:.4}, MR {err_mr:.4}");

    let x = nx / 2;
    let mut max_diff: f64 = 0.0;
    println!("y,analytic,st,mr");
    for y in 1..ny - 1 {
        let a = analytic::poiseuille_profile(y, ny, u_max);
        let s = ust[g.idx(x, y, 0)][0];
        let m = umr[g.idx(x, y, 0)][0];
        max_diff = max_diff.max((s - m).abs());
        println!("{y},{a:.6},{s:.6},{m:.6}");
    }
    println!("# max |ST − MR| on the profile: {max_diff:.2e} (lossless compression)");
    assert!(err_mr < 0.05, "MR profile failed to converge");
}
