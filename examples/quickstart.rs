//! Quickstart: simulate a 2D channel with the moment representation
//! (projective regularization — the paper's MR-P) on the simulated V100,
//! and print the measured traffic next to the paper's model.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lbm_mr::prelude::*;

fn main() {
    // A channel with a parabolic inlet at Re ≈ 50.
    let (nx, ny) = (96, 32);
    let u_max = 0.05;
    let tau = units::tau_for_reynolds(50.0, u_max, (ny - 2) as f64);
    println!(
        "channel {nx}×{ny}, u_max {u_max}, τ = {tau:.4} (ν = {:.5})",
        units::nu_from_tau(tau)
    );

    let geom = Geometry::channel_2d_poiseuille(nx, ny, u_max);
    let mut sim: MrSim2D<D2Q9> =
        MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), tau);

    sim.run(2000);

    // Flow diagnostics.
    let u = sim.velocity_field();
    let rho = sim.density_field();
    let g = sim.geom();
    println!(
        "kinetic energy {:.6e}, max |u| {:.4}, density range {:?}",
        diagnostics::kinetic_energy(g, &rho, &u),
        diagnostics::max_velocity(g, &u),
        diagnostics::density_range(g, &rho)
    );

    // Centerline development.
    let mid = ny / 2;
    print!("centerline u_x: ");
    for x in [1, nx / 4, nx / 2, 3 * nx / 4, nx - 2] {
        print!("{:.4} ", u[g.idx(x, mid, 0)][0]);
    }
    println!();

    // The paper's story: traffic per fluid update.
    println!(
        "measured B/F = {:.1} bytes/update (paper Table 2: MR D2Q9 = 96; ST would be 144)",
        sim.measured_bpf()
    );
    println!(
        "single-lattice footprint: {} KiB (two ST lattices would be {} KiB)",
        sim.footprint_bytes() / 1024,
        2 * 9 * g.len() * 8 / 1024
    );
    let dev = DeviceSpec::v100();
    println!(
        "modeled throughput at 16M nodes on {}: {:.0} MFLUPS",
        dev.name,
        efficiency::modeled_mflups(
            &dev,
            Pattern::MomentProjective,
            2,
            sim.measured_bpf(),
            16_000_000
        )
    );
}
