//! Fleet quickstart: run a mixed multi-tenant workload through the
//! `lbm-serve` scheduler and verify its determinism contract — every
//! job's final checksum is bitwise-equal to a solo run of the same spec,
//! no matter how the fleet batched, sliced, or preempted it.
//!
//! ```text
//! cargo run --release --example serve_fleet
//! ```

use lbm_mr::serve::{
    solo_checksum, ArrivalProcess, JobSpec, Priority, Serve, ServeConfig, TenantQuota,
};
use std::collections::HashMap;

fn main() {
    // A fleet of 2 executors; tenant "acme" is capped at 4 in-flight jobs.
    let mut quotas = HashMap::new();
    quotas.insert(
        "acme".to_string(),
        TenantQuota {
            max_in_flight: 4,
            max_resident_bytes: 1 << 30,
        },
    );
    let obs = obs::Obs::shared();
    let fleet = Serve::start(ServeConfig {
        executors: 2,
        quotas,
        obs: Some(obs.clone()),
        ..Default::default()
    });

    // 1. A handful of explicit jobs: one long batch run plus interactive
    //    work that will preempt it.
    let batch = JobSpec {
        priority: Priority::Batch,
        steps: 200,
        ..JobSpec::shear_2d("acme", 32, 12, 200)
    };
    let batch_id = fleet.submit(batch.clone()).expect("admitted");

    // 2. A seeded burst of mixed-size jobs across four tenants. Tenant
    //    "acme" is quota-capped, so its submissions can bounce with
    //    `QuotaExceeded` — real clients back off and retry, and so do we.
    let mut quota_bounces = 0u32;
    let burst: Vec<_> = ArrivalProcess::new(7, 40)
        .map(|spec| {
            let id = loop {
                match fleet.submit(spec.clone()) {
                    Ok(id) => break id,
                    Err(lbm_mr::serve::SubmitError::QuotaExceeded { .. }) => {
                        quota_bounces += 1;
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Err(e) => panic!("unexpected rejection: {e}"),
                }
            };
            (spec, id)
        })
        .collect();

    fleet.drain();

    let result = fleet.wait(batch_id).expect("batch job completed");
    println!(
        "batch job: {} steps, {} eviction(s), latency {:.1} ms, checksum {:016x}",
        result.steps, result.evictions, result.latency_ms, result.checksum
    );
    assert_eq!(
        result.checksum,
        solo_checksum(&batch),
        "determinism contract"
    );

    let mut verified = 0;
    for (spec, id) in &burst {
        let got = fleet.wait(*id).expect("job completed").checksum;
        assert_eq!(got, solo_checksum(spec), "determinism contract");
        verified += 1;
    }
    println!(
        "burst: {verified} jobs completed ({quota_bounces} quota retries), \
         every checksum equals its solo run"
    );
    println!(
        "scheduler counters: dispatched groups = {:?}, evictions = {:?}, completed = {:?}",
        obs.metrics
            .counter("serve_dispatch_groups", &[("class", "interactive")]),
        obs.metrics
            .counter("serve_evictions", &[("class", "batch")]),
        obs.metrics.counter(
            "serve_jobs_completed",
            &[("tenant", "acme"), ("class", "batch")]
        ),
    );
}
