//! Flow past a circular cylinder at Re = 40: a steady separated wake, the
//! canonical obstacle benchmark. Demonstrates that both representations
//! handle interior solids via the same bounce-back path, and measures the
//! drag force on the cylinder with the momentum-exchange method.
//!
//! ```text
//! cargo run --release --example cylinder
//! ```

use lbm_mr::prelude::*;

fn main() {
    let (nx, ny) = (160, 64);
    let r = 6.0;
    let (cx, cy) = (40.0, ny as f64 / 2.0 - 0.5);
    let u_in = 0.06;
    let re = 40.0;
    let tau = units::tau_for_reynolds(re, u_in, 2.0 * r);
    println!("cylinder r = {r} at ({cx},{cy}) in a {nx}×{ny} channel, Re = {re}, τ = {tau:.4}");

    let geom = Geometry::channel_2d_poiseuille(nx, ny, u_in).with_cylinder(cx, cy, r);
    let mut s: Solver<D2Q9, _> = Solver::new(geom, Projective::new(tau));
    // Smooth start: seed the developed channel profile everywhere instead
    // of an impulsive rest state (avoids long-lived acoustic transients).
    s.init_with(|_x, y, _z| (1.0, [analytic::poiseuille_profile(y, ny, u_in), 0.0, 0.0]));

    let in_cylinder = |x: usize, y: usize, _z: usize| {
        let (dx, dy) = (x as f64 - cx, y as f64 - cy);
        dx * dx + dy * dy <= r * r
    };

    let norm = 0.5 * u_in * u_in * 2.0 * r; // ½ ρ u² D
    for chunk in 1..=6 {
        s.run(2000);
        let f = s.force_on(in_cylinder);
        println!(
            "step {:>5}: drag {:+.5e}  lift {:+.5e}  C_d = {:.3}",
            chunk * 2000,
            f[0],
            f[1],
            f[0] / norm
        );
    }

    // Time-average the force over the final window to filter residual
    // acoustics.
    let mut avg = [0.0f64; 3];
    let window = 200;
    for _ in 0..window {
        s.run(5);
        let f = s.force_on(in_cylinder);
        for a in 0..3 {
            avg[a] += f[a] / window as f64;
        }
    }
    let cd = avg[0] / norm;
    println!("time-averaged C_d = {cd:.3} (unbounded-domain literature for Re = 40: ≈ 1.5;");
    println!(
        "blockage D/H = {:.2} raises it)",
        2.0 * r / (ny as f64 - 2.0)
    );
    assert!(avg[0] > 0.0, "drag must push downstream");
    assert!(
        avg[1].abs() < 0.2 * avg[0],
        "steady Re = 40 wake should be nearly symmetric (lift {} vs drag {})",
        avg[1],
        avg[0]
    );

    // Recirculation: reversed flow right behind the cylinder.
    let u = s.velocity_field();
    let g = s.geom();
    let behind = u[g.idx((cx + r + 2.0) as usize, cy as usize, 0)][0];
    println!("u_x just behind the cylinder: {behind:+.5} (negative → recirculation bubble)");
}
