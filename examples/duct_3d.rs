//! 3D duct flow on the D3Q19 lattice: the paper's 3D evaluation scenario.
//!
//! Runs the same duct through the ST reference kernel and both MR variants
//! on the simulated V100, verifies they agree, and prints the measured
//! traffic that drives Figure 3.
//!
//! ```text
//! cargo run --release --example duct_3d
//! ```

use lbm_mr::prelude::*;

fn main() {
    let (nx, ny, nz) = (32, 12, 12);
    let u_in = 0.03;
    let tau = 0.7;
    let steps = 300;
    let geom = Geometry::channel_3d(nx, ny, nz, u_in);
    println!("duct {nx}×{ny}×{nz}, inlet {u_in}, τ = {tau}, {steps} steps");

    // ST baseline with projective regularization (so all three are
    // regularized and directly comparable).
    let mut st: StSim<D3Q19, _> =
        StSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(tau));
    st.run(steps);

    let mut mrp: MrSim3D<D3Q19> = MrSim3D::new(
        DeviceSpec::v100(),
        geom.clone(),
        MrScheme::projective(),
        tau,
    );
    mrp.run(steps);

    let mut mrr: MrSim3D<D3Q19> = MrSim3D::new(
        DeviceSpec::v100(),
        geom.clone(),
        MrScheme::recursive::<D3Q19>(),
        tau,
    );
    mrr.run(steps);

    // Cross-representation agreement (ST vs MR-P share the same operator).
    let (ust, ump) = (st.velocity_field(), mrp.velocity_field());
    let mut max_diff: f64 = 0.0;
    for (a, b) in ust.iter().zip(&ump) {
        for k in 0..3 {
            max_diff = max_diff.max((a[k] - b[k]).abs());
        }
    }
    println!("max |ST − MR-P| over the velocity field: {max_diff:.2e}");
    assert!(max_diff < 1e-8, "representations diverged");

    // Centerline development.
    let g = st.geom();
    print!("centerline u_x (MR-P): ");
    for x in [1, nx / 4, nx / 2, 3 * nx / 4, nx - 2] {
        print!("{:.4} ", ump[g.idx(x, ny / 2, nz / 2)][0]);
    }
    println!();

    // Traffic: the quantity behind Figure 3.
    println!(
        "measured B/F: ST {:.1} (Table 2: 304), MR-P {:.1} (160), MR-R {:.1} (160)",
        st.measured_bpf(),
        mrp.measured_bpf(),
        mrr.measured_bpf()
    );
    let dev = DeviceSpec::v100();
    for (label, p, bpf) in [
        ("ST", Pattern::Standard, st.measured_bpf()),
        ("MR-P", Pattern::MomentProjective, mrp.measured_bpf()),
        ("MR-R", Pattern::MomentRecursive, mrr.measured_bpf()),
    ] {
        println!(
            "modeled {} on {} at 16M nodes: {:>5.0} MFLUPS",
            label,
            dev.name,
            efficiency::modeled_mflups(&dev, p, 3, bpf, 16_000_000)
        );
    }
}
