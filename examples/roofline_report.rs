//! Performance-model tour: device specs (Table 1), roofline limits
//! (eq. 15 / Table 3), occupancy for the MR kernel configurations, and the
//! coalescing analysis behind the SoA layout choice (§3.1).
//!
//! ```text
//! cargo run --release --example roofline_report
//! ```

use lbm_mr::gpu::coalesce::{aos_report, soa_report};
use lbm_mr::prelude::*;

fn main() {
    for dev in [DeviceSpec::v100(), DeviceSpec::mi100()] {
        println!("=== {} ===", dev.name);
        println!(
            "  {} SMs/CUs, {} KB shared per SM, {:.0} GB/s peak bandwidth",
            dev.sm_count,
            dev.shared_mem_per_sm / 1024,
            dev.bandwidth_gbps
        );
        for (lat, q, m) in [("D2Q9", 9usize, 6usize), ("D3Q19", 19, 10)] {
            let st = roofline::mflups_max_on(&dev, roofline::bytes_per_flup_st(q));
            let mr = roofline::mflups_max_on(&dev, roofline::bytes_per_flup_mr(m));
            println!(
                "  {lat}: roofline ST {st:>6.0} MFLUPS ({} B/F)  |  MR {mr:>6.0} MFLUPS ({} B/F)  →  ×{:.2}",
                2 * q * 8,
                2 * m * 8,
                mr / st
            );
        }
        // Occupancy of the MR kernels (§3.2: want ≥ 2 blocks per SM).
        for (label, threads, shared) in [
            ("MR 2D, 32-wide columns", 34usize, 32 * 3 * 9 * 8usize),
            ("MR 3D, 8×8 columns", 100, 8 * 8 * 3 * 19 * 8),
            ("MR 3D, 16×16 columns", 324, 16 * 16 * 3 * 19 * 8),
        ] {
            if shared > dev.shared_mem_per_sm {
                println!("  {label}: shared request {shared} B exceeds the SM — invalid config");
                continue;
            }
            let o = occupancy::occupancy(&dev, threads, shared);
            println!(
                "  {label}: {} blocks/SM (limited by {:?}){}",
                o.blocks_per_sm,
                o.limiter,
                if o.blocks_per_sm >= 2 {
                    ""
                } else {
                    "  ← violates the 2-block rule"
                }
            );
        }
        println!();
    }

    println!("=== Coalescing: why the distribution array is SoA (§3.1) ===");
    let soa = soa_report(32, 8);
    println!(
        "SoA access (lane l → element l): {} sectors/warp, {:.0}% efficient",
        soa.sectors,
        100.0 * soa.efficiency
    );
    for q in [9u64, 19, 27] {
        let aos = aos_report(32, 8, q);
        println!(
            "AoS access (Q = {q:>2}):            {} sectors/warp, {:.0}% efficient",
            aos.sectors,
            100.0 * aos.efficiency
        );
    }
}
