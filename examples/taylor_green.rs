//! Taylor–Green vortex decay: the canonical accuracy benchmark.
//!
//! Runs the periodic 2D vortex with all three collision operators and
//! compares the kinetic-energy decay rate against the analytic viscous
//! rate `exp(−2ν(kx²+ky²)t)`.
//!
//! ```text
//! cargo run --release --example taylor_green
//! ```

use lbm_mr::prelude::*;

fn energy(s: &Solver<D2Q9, impl Collision<D2Q9>>) -> f64 {
    let g = s.geom();
    diagnostics::kinetic_energy(g, &s.density_field(), &s.velocity_field())
}

fn run(name: &str, op: impl Collision<D2Q9>, tau: f64) {
    let (nx, ny) = (48, 48);
    let u0 = 0.03;
    let steps = 400;
    let mut s: Solver<D2Q9, _> = Solver::new(Geometry::periodic_2d(nx, ny), op);
    s.init_with(|x, y, _| {
        (
            analytic::taylor_green_density(x, y, nx, ny, u0, 1.0),
            analytic::taylor_green_velocity(x, y, nx, ny, u0),
        )
    });
    let e0 = energy(&s);
    s.run(steps);
    let e1 = energy(&s);
    let got = e1 / e0;
    let want = analytic::taylor_green_decay(nx, ny, units::nu_from_tau(tau), steps as f64);
    println!(
        "{name:<7} E/E0 after {steps} steps: {got:.5} (analytic {want:.5}, rel err {:.2e})",
        (got - want).abs() / want
    );
}

fn main() {
    let tau = 0.8;
    println!("Taylor–Green vortex, 48×48 periodic, τ = {tau}");
    run("BGK", Bgk::new(tau), tau);
    run("REG-P", Projective::new(tau), tau);
    run("REG-R", Recursive::new::<D2Q9>(tau), tau);
}
