//! Lid-driven cavity at Re = 100: the classic recirculating benchmark,
//! exercising the moving-wall bounce-back condition. Writes a VTK snapshot
//! to `cavity.vtk` and prints centerline velocity profiles.
//!
//! ```text
//! cargo run --release --example lid_driven_cavity
//! ```

use lbm_mr::prelude::*;
use std::fs::File;
use std::io::BufWriter;

fn main() {
    let n = 48;
    let u_lid = 0.1;
    let re = 100.0;
    let tau = units::tau_for_reynolds(re, u_lid, (n - 2) as f64);
    println!("cavity {n}×{n}, Re {re}, u_lid {u_lid}, τ = {tau:.4}");

    let mut s: Solver<D2Q9, _> = Solver::new(Geometry::cavity_2d(n, u_lid), Bgk::new(tau));
    for chunk in 0..10 {
        s.run(600);
        let u = s.velocity_field();
        let g = s.geom();
        let ke = diagnostics::kinetic_energy(g, &s.density_field(), &u);
        println!("step {:>5}: kinetic energy {ke:.6e}", (chunk + 1) * 600);
    }

    let g = s.geom().clone();
    let (rho, u) = (s.density_field(), s.velocity_field());

    // Vertical centerline u_x and horizontal centerline u_y (the Ghia
    // benchmark quantities).
    println!("y/N, u_x/u_lid (vertical centerline)");
    for y in (1..n - 1).step_by(4) {
        println!(
            "{:.3}, {:.4}",
            y as f64 / n as f64,
            u[g.idx(n / 2, y, 0)][0] / u_lid
        );
    }
    // The primary vortex makes u_x negative in the lower half.
    let lower = u[g.idx(n / 2, n / 4, 0)][0];
    assert!(
        lower < 0.0,
        "expected return flow in the lower half, got {lower}"
    );
    println!("return flow at y = N/4: u_x/u_lid = {:.4}", lower / u_lid);

    let f = File::create("cavity.vtk").expect("create cavity.vtk");
    io::write_vtk(&mut BufWriter::new(f), &g, &rho, &u).expect("write vtk");
    println!("wrote cavity.vtk");
}
