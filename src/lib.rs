//! # lbm-mr — moment representation of regularized lattice Boltzmann methods
//!
//! Facade crate for the workspace reproducing *"Moment Representation of
//! Regularized Lattice Boltzmann Methods on NVIDIA and AMD GPUs"*
//! (Valero-Lara, Vetter, Gounley, Randles — SC 2023). It re-exports the
//! public API of the five member crates:
//!
//! * [`lattice`] — velocity sets, Hermite machinery, moment space;
//! * [`core`] — collision operators, boundaries, reference solvers;
//! * [`gpu`] — the software-GPU substrate (devices, kernels, traffic
//!   ledger, roofline/efficiency models);
//! * [`kernels`] — the ST and MR propagation patterns on that substrate;
//! * [`multi`] — multi-device domain decomposition with moment-space
//!   halo exchange over the simulated interconnect;
//! * [`serve`] — the multi-tenant simulation service: batched scheduling,
//!   checkpoint-backed preemption, and per-tenant byte-denominated quotas
//!   over every driver, including the in-place AA/twist patterns and the
//!   fluid-compacted sparse drivers (porous domains billed on fluid
//!   nodes, not bounding-box volume).
//!
//! ## Quickstart
//!
//! ```
//! use lbm_mr::prelude::*;
//!
//! // A small 2D channel on the simulated V100, moment representation with
//! // projective regularization (the paper's MR-P).
//! let geom = Geometry::channel_2d_poiseuille(32, 16, 0.05);
//! let mut sim: MrSim2D<D2Q9> =
//!     MrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8);
//! sim.run(50);
//! assert!((sim.measured_bpf() - 96.0).abs() < 10.0); // Table 2: 2M·8 = 96
//! ```

pub use gpu_sim as gpu;
pub use lbm_core as core;
pub use lbm_gpu as kernels;
pub use lbm_lattice as lattice;
pub use lbm_multi as multi;
pub use lbm_serve as serve;
pub use obs;

/// Convenient single import for examples and applications.
pub mod prelude {
    pub use gpu_sim::efficiency::{self, Pattern};
    pub use gpu_sim::interconnect::{LinkSpec, MultiGpu};
    pub use gpu_sim::{occupancy, roofline, DeviceSpec, Gpu};
    pub use lbm_core::collision::{Bgk, Collision, Projective, Recursive};
    pub use lbm_core::{analytic, diagnostics, io, units, Geometry, NodeType, Solver};
    pub use lbm_core::{Simulation, StepError};
    pub use lbm_gpu::{
        AaStSim, MrScheme, MrSim2D, MrSim3D, SparseMrSim2D, SparseMrSim3D, StSim, StSparseSim,
        StStream,
    };
    pub use lbm_lattice::{Lattice, D2Q9, D3Q15, D3Q19, D3Q27, D3Q39};
    pub use lbm_multi::{
        MultiAaStSim, MultiMrSim2D, MultiMrSim3D, MultiSparseMrSim, MultiSparseStSim, MultiStSim,
        OverlapStats, SlabDecomp,
    };
    pub use lbm_serve::{JobSpec, Serve, ServeConfig, TenantQuota};
    pub use obs::{
        BenchRecord, BenchRow, MetricsRegistry, MonitorConfig, Obs, PhysicsMonitor, Tracer,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let geom = Geometry::channel_2d(16, 8, 0.03);
        let mut sim: StSim<D2Q9, _> = StSim::new(DeviceSpec::v100(), geom, Bgk::new(0.8));
        sim.run(3);
        assert_eq!(sim.steps(), 3);
    }
}
