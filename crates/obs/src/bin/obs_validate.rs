//! CI gate: validate that observability JSON artifacts parse.
//!
//! Usage: `obs-validate FILE...` — parses each file with the strict
//! in-crate JSON parser and, for Chrome traces (a top-level `traceEvents`
//! array), additionally checks span nesting: on every tid, each `E` must
//! close an open `B` and none may remain open at the end. `BENCH_slo.json`
//! records (`"section": "slo"`) get a full schema check: per-class
//! quantiles monotone, burn rates in [0, 1], a lossless event log whose
//! admit count covers every job, trace-span coverage, and roofline
//! attribution rows for at least two device models. Bench-style records
//! (`smoke` / `aa` / `bench` / `bench-record` / `sparse`) get a
//! row-schema check: pattern names limited to the known set (`st`,
//! `mr-p`, `mr-r`, the in-place `st-aa` / `mr-t`, and the fluid-compacted
//! `sparse-st` / `sparse-mr`), positive wall-clock measurements with the
//! in-place patterns present in `bench`, byte-exact halved residency in
//! `aa`, and a porosity sweep whose sparse residency shrinks with the
//! fluid count in `sparse`. Exits non-zero on the first failure.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Every pattern name a BENCH row may carry: the three two-lattice
/// patterns of the paper, the in-place single-lattice variants
/// (AA-pattern ST and parity-twist MR), and the fluid-compacted sparse
/// drivers.
const KNOWN_PATTERNS: [&str; 7] = [
    "st",
    "mr-p",
    "mr-r",
    "st-aa",
    "mr-t",
    "sparse-st",
    "sparse-mr",
];

/// Schema check for any bench record carrying a `rows` array: pattern
/// names must come from the known set, and wall-clock records
/// (`"section": "bench"`) must carry positive measured MFLUPS and
/// speedups for every row — including at least one row for each
/// in-place pattern, so the single-lattice drivers can't silently drop
/// out of the perf gate. `aa` records must show the byte-exact halving.
fn validate_bench(v: &obs::json::Value, section: &str) -> Result<String, String> {
    let rows = v.get("rows").ok_or("missing rows")?.items();
    let mut seen = std::collections::BTreeSet::new();
    for (i, r) in rows.iter().enumerate() {
        let pat = r
            .get("pattern")
            .and_then(|p| p.as_str())
            .ok_or(format!("rows[{i}] missing pattern"))?;
        if !KNOWN_PATTERNS.contains(&pat) {
            return Err(format!(
                "rows[{i}] has unknown pattern '{pat}' (expected one of {KNOWN_PATTERNS:?})"
            ));
        }
        seen.insert(pat.to_string());
        if section == "bench" {
            let num = |k: &str| -> Result<f64, String> {
                r.get(k)
                    .and_then(|x| x.as_f64())
                    .ok_or(format!("rows[{i}] missing {k}"))
            };
            let mflups = num("measured_mflups")?;
            let speedup = num("speedup_vs_st")?;
            if !(mflups > 0.0 && speedup > 0.0) {
                return Err(format!(
                    "rows[{i}] ({pat}): non-positive measurement ({mflups} MFLUPS, {speedup}x)"
                ));
            }
        }
    }
    if section == "bench" {
        for required in ["st", "st-aa", "mr-t"] {
            if !seen.contains(required) {
                return Err(format!("bench record has no '{required}' rows"));
            }
        }
    }
    if section == "sparse" {
        for required in ["sparse-st", "sparse-mr"] {
            if !seen.contains(required) {
                return Err(format!("sparse record has no '{required}' rows"));
            }
        }
        let sweep = v
            .get("porosity_sweep")
            .ok_or("sparse record missing porosity_sweep")?
            .items();
        if sweep.len() < 2 {
            return Err("porosity_sweep needs at least two porosities".into());
        }
        let mut prev_fluid = f64::INFINITY;
        let mut prev_st = f64::INFINITY;
        for (i, r) in sweep.iter().enumerate() {
            let num = |k: &str| -> Result<f64, String> {
                r.get(k)
                    .and_then(|x| x.as_f64())
                    .ok_or(format!("porosity_sweep[{i}] missing {k}"))
            };
            let fluid = num("fluid_nodes")?;
            let st = num("sparse_st_bytes")?;
            let mr = num("sparse_mr_bytes")?;
            if mr >= st {
                return Err(format!(
                    "porosity_sweep[{i}]: sparse MR ({mr} B) not below sparse ST ({st} B)"
                ));
            }
            // Rock is free: more solid → fewer fluid nodes → fewer bytes.
            if fluid >= prev_fluid || st >= prev_st {
                return Err(format!(
                    "porosity_sweep[{i}]: residency not shrinking with the fluid count"
                ));
            }
            prev_fluid = fluid;
            prev_st = st;
        }
    }
    if section == "aa" {
        let resident = v
            .get("in_place_resident")
            .ok_or("aa record missing in_place_resident")?
            .items();
        if resident.is_empty() {
            return Err("in_place_resident is empty".into());
        }
        for (i, r) in resident.iter().enumerate() {
            let num = |k: &str| -> Result<f64, String> {
                r.get(k)
                    .and_then(|x| x.as_f64())
                    .ok_or(format!("in_place_resident[{i}] missing {k}"))
            };
            let one = num("resident_bytes")?;
            let two = num("two_lattice_bytes")?;
            if 2.0 * one != two {
                return Err(format!(
                    "in_place_resident[{i}]: {one} B resident is not an exact halving of {two} B"
                ));
            }
        }
    }
    Ok(format!(
        "{section} ok ({} rows, patterns {:?})",
        rows.len(),
        seen
    ))
}

/// Schema check for the `reproduce slo` bench record.
fn validate_slo(v: &obs::json::Value) -> Result<String, String> {
    let num = |path: &[&str]| -> Result<f64, String> {
        let mut cur = v;
        for k in path {
            cur = cur.get(k).ok_or(format!("missing {}", path.join(".")))?;
        }
        cur.as_f64()
            .ok_or(format!("{} is not a number", path.join(".")))
    };
    for class in ["interactive", "batch"] {
        let p50 = num(&["adaptive", class, "p50_ms"])?;
        let p90 = num(&["adaptive", class, "p90_ms"])?;
        let p99 = num(&["adaptive", class, "p99_ms"])?;
        if !(p50 <= p90 && p90 <= p99) {
            return Err(format!(
                "adaptive.{class} quantiles not monotone: p50 {p50} p90 {p90} p99 {p99}"
            ));
        }
        let burn = num(&["adaptive", class, "burn_rate"])?;
        if !(0.0..=1.0).contains(&burn) {
            return Err(format!("adaptive.{class}.burn_rate {burn} outside [0, 1]"));
        }
        num(&["adaptive", class, "count"])?;
        num(&["adaptive", class, "breaches"])?;
        num(&["adaptive", class, "mean_ms"])?;
    }
    num(&["adaptive", "target_p99_ms"])?;
    num(&["adaptive", "tunes"])?;
    num(&["adaptive", "slice_steps"])?;
    num(&["adaptive", "batch_max"])?;
    num(&["static", "interactive_p50_ms"])?;
    num(&["static", "interactive_p99_ms"])?;
    num(&["adaptive_pooled", "interactive_p99_ms"])?;
    num(&["interactive_p99_improvement_pct"])?;
    let jobs = num(&["jobs"])?;
    let total = num(&["events", "total"])?;
    let dropped = num(&["events", "dropped"])?;
    if dropped != 0.0 {
        return Err(format!("event ring dropped {dropped} events"));
    }
    let admits = num(&["events", "counts", "admit"])?;
    if admits < jobs {
        return Err(format!("{admits} admit events for {jobs} jobs"));
    }
    let spans = num(&["jobs_with_trace_spans"])?;
    if spans < jobs {
        return Err(format!("{spans} jobs with trace spans, expected >= {jobs}"));
    }
    let rows = v.get("roofline").ok_or("missing roofline")?.items();
    if rows.is_empty() {
        return Err("roofline attribution is empty".into());
    }
    let mut devices = std::collections::BTreeSet::new();
    for (i, r) in rows.iter().enumerate() {
        let dev = r
            .get("device")
            .and_then(|d| d.as_str())
            .ok_or(format!("roofline[{i}] missing device"))?;
        r.get("kernel")
            .and_then(|k| k.as_str())
            .ok_or(format!("roofline[{i}] missing kernel"))?;
        let gbps = r
            .get("achieved_gbps")
            .and_then(|g| g.as_f64())
            .ok_or(format!("roofline[{i}] missing achieved_gbps"))?;
        let pct = r
            .get("roofline_pct")
            .and_then(|p| p.as_f64())
            .ok_or(format!("roofline[{i}] missing roofline_pct"))?;
        if !(gbps > 0.0 && pct > 0.0 && pct <= 100.0) {
            return Err(format!(
                "roofline[{i}] out of range: {gbps} GB/s, {pct}% of roofline"
            ));
        }
        devices.insert(dev.to_string());
    }
    if devices.len() < 2 {
        return Err(format!(
            "roofline covers {} device model(s), expected both",
            devices.len()
        ));
    }
    Ok(format!(
        "slo ok ({} roofline gauges on {} devices, {total} events)",
        rows.len(),
        devices.len()
    ))
}

fn validate(path: &str) -> Result<String, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let v = obs::json::parse(&src).map_err(|e| format!("invalid JSON: {e}"))?;
    if let Some(events) = v.get("traceEvents") {
        let mut open: BTreeMap<u64, u64> = BTreeMap::new();
        let mut last_ts = 0.0f64;
        for (i, e) in events.items().iter().enumerate() {
            let ph = e
                .get("ph")
                .and_then(|p| p.as_str())
                .ok_or(format!("event {i} missing ph"))?;
            let ts = e
                .get("ts")
                .and_then(|t| t.as_f64())
                .ok_or(format!("event {i} missing ts"))?;
            if ts < last_ts {
                return Err(format!("event {i}: timestamp {ts} < previous {last_ts}"));
            }
            last_ts = ts;
            let tid = e.get("tid").and_then(|t| t.as_f64()).unwrap_or(0.0) as u64;
            match ph {
                "B" => *open.entry(tid).or_insert(0) += 1,
                "E" => {
                    let depth = open.entry(tid).or_insert(0);
                    if *depth == 0 {
                        return Err(format!("event {i}: 'E' with no open 'B' on tid {tid}"));
                    }
                    *depth -= 1;
                }
                _ => {}
            }
        }
        if let Some((tid, depth)) = open.iter().find(|(_, &d)| d > 0) {
            return Err(format!("{depth} span(s) left open on tid {tid}"));
        }
        Ok(format!("trace ok ({} events)", events.items().len()))
    } else if let Some(metrics) = v.get("metrics") {
        Ok(format!("metrics ok ({} entries)", metrics.items().len()))
    } else if v.get("section").and_then(|s| s.as_str()) == Some("slo") {
        validate_slo(&v)
    } else if let Some(section @ ("smoke" | "aa" | "bench" | "bench-record" | "sparse")) =
        v.get("section").and_then(|s| s.as_str())
    {
        validate_bench(&v, section)
    } else {
        Ok("json ok".to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: obs-validate FILE...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &args {
        match validate(path) {
            Ok(msg) => println!("obs-validate: {path}: {msg}"),
            Err(msg) => {
                eprintln!("obs-validate: {path}: FAIL: {msg}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
