//! CI gate: validate that observability JSON artifacts parse.
//!
//! Usage: `obs-validate FILE...` — parses each file with the strict
//! in-crate JSON parser and, for Chrome traces (a top-level `traceEvents`
//! array), additionally checks span nesting: on every tid, each `E` must
//! close an open `B` and none may remain open at the end. Exits non-zero
//! on the first failure.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn validate(path: &str) -> Result<String, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let v = obs::json::parse(&src).map_err(|e| format!("invalid JSON: {e}"))?;
    if let Some(events) = v.get("traceEvents") {
        let mut open: BTreeMap<u64, u64> = BTreeMap::new();
        let mut last_ts = 0.0f64;
        for (i, e) in events.items().iter().enumerate() {
            let ph = e
                .get("ph")
                .and_then(|p| p.as_str())
                .ok_or(format!("event {i} missing ph"))?;
            let ts = e
                .get("ts")
                .and_then(|t| t.as_f64())
                .ok_or(format!("event {i} missing ts"))?;
            if ts < last_ts {
                return Err(format!("event {i}: timestamp {ts} < previous {last_ts}"));
            }
            last_ts = ts;
            let tid = e.get("tid").and_then(|t| t.as_f64()).unwrap_or(0.0) as u64;
            match ph {
                "B" => *open.entry(tid).or_insert(0) += 1,
                "E" => {
                    let depth = open.entry(tid).or_insert(0);
                    if *depth == 0 {
                        return Err(format!("event {i}: 'E' with no open 'B' on tid {tid}"));
                    }
                    *depth -= 1;
                }
                _ => {}
            }
        }
        if let Some((tid, depth)) = open.iter().find(|(_, &d)| d > 0) {
            return Err(format!("{depth} span(s) left open on tid {tid}"));
        }
        Ok(format!("trace ok ({} events)", events.items().len()))
    } else if let Some(metrics) = v.get("metrics") {
        Ok(format!("metrics ok ({} entries)", metrics.items().len()))
    } else {
        Ok("json ok".to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: obs-validate FILE...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &args {
        match validate(path) {
            Ok(msg) => println!("obs-validate: {path}: {msg}"),
            Err(msg) => {
                eprintln!("obs-validate: {path}: FAIL: {msg}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
