//! Span-based tracing with Chrome `trace_event` export.
//!
//! A [`Tracer`] records `B`/`E` (begin/end) duration events and `i` instant
//! events, each stamped with a microsecond timestamp relative to the
//! tracer's creation and a small per-thread `tid`. The export format is the
//! Chrome Trace Event JSON (`{"traceEvents": [...]}`) so a run opens
//! directly in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! Timestamps are taken *inside* the event-buffer lock, so the recorded
//! stream is globally monotonic even when many threads trace concurrently —
//! the property the trace tests assert.
//!
//! Nesting is tracked per thread: `end` must match the innermost `begin` on
//! the same thread. The [`Span`] RAII guard makes that automatic:
//!
//! ```
//! let tracer = obs::Tracer::new();
//! {
//!     let _step = tracer.span("driver", "step");
//!     let _kernel = tracer.span("kernel", "st-bulk");
//! } // ends in reverse order
//! assert!(obs::json::parse(&tracer.to_chrome_json()).is_ok());
//! ```

use crate::json::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One recorded trace event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Chrome phase: `'B'` begin, `'E'` end, `'i'` instant.
    pub ph: char,
    pub name: String,
    /// Category (shown as a filterable group in trace viewers).
    pub cat: String,
    /// Microseconds since tracer creation.
    pub ts_us: u64,
    /// Per-thread id (dense small integers, assigned at first use).
    pub tid: u64,
    /// Key/value annotations rendered in the viewer's detail pane.
    pub args: Vec<(String, String)>,
}

struct Inner {
    events: Vec<TraceEvent>,
    /// Per-tid stack of open span names (for end-matching).
    open: std::collections::BTreeMap<u64, Vec<String>>,
}

/// Thread-safe span tracer.
pub struct Tracer {
    start: Instant,
    inner: Mutex<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Dense per-thread id, assigned on first use. Shared with the fleet
/// [`crate::events::EventLog`] so events and spans carry the same tid.
pub(crate) fn current_tid() -> u64 {
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

impl Tracer {
    /// Create an empty tracer; timestamps are relative to this call.
    pub fn new() -> Self {
        Tracer {
            start: Instant::now(),
            inner: Mutex::new(Inner {
                events: Vec::new(),
                open: std::collections::BTreeMap::new(),
            }),
        }
    }

    /// Begin a span on the current thread. Prefer [`Tracer::span`].
    pub fn begin(&self, cat: &str, name: &str, args: &[(&str, String)]) {
        let tid = current_tid();
        let mut inner = self.inner.lock().unwrap();
        let ts_us = self.start.elapsed().as_micros() as u64;
        inner.open.entry(tid).or_default().push(name.to_string());
        inner.events.push(TraceEvent {
            ph: 'B',
            name: name.to_string(),
            cat: cat.to_string(),
            ts_us,
            tid,
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// End the innermost open span on the current thread.
    pub fn end(&self) {
        let tid = current_tid();
        let mut inner = self.inner.lock().unwrap();
        let ts_us = self.start.elapsed().as_micros() as u64;
        let name = inner
            .open
            .get_mut(&tid)
            .and_then(|s| s.pop())
            .expect("Tracer::end with no open span on this thread");
        inner.events.push(TraceEvent {
            ph: 'E',
            name,
            cat: String::new(),
            ts_us,
            tid,
            args: Vec::new(),
        });
    }

    /// RAII span: ends when the guard drops.
    pub fn span(&self, cat: &str, name: &str) -> Span<'_> {
        self.begin(cat, name, &[]);
        Span { tracer: self }
    }

    /// RAII span with annotations.
    pub fn span_args(&self, cat: &str, name: &str, args: &[(&str, String)]) -> Span<'_> {
        self.begin(cat, name, args);
        Span { tracer: self }
    }

    /// A zero-duration instant event (markers: transfers, violations).
    pub fn instant(&self, cat: &str, name: &str, args: &[(&str, String)]) {
        let tid = current_tid();
        let mut inner = self.inner.lock().unwrap();
        let ts_us = self.start.elapsed().as_micros() as u64;
        inner.events.push(TraceEvent {
            ph: 'i',
            name: name.to_string(),
            cat: cat.to_string(),
            ts_us,
            tid,
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().unwrap().events.clone()
    }

    /// Serialize as Chrome Trace Event JSON (the object form, loadable by
    /// `chrome://tracing` and Perfetto).
    pub fn to_chrome_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let events: Vec<Value> = inner
            .events
            .iter()
            .map(|e| {
                let mut pairs = vec![
                    ("name", Value::str(&e.name)),
                    ("ph", Value::str(e.ph.to_string())),
                    ("ts", Value::int(e.ts_us)),
                    ("pid", Value::int(0)),
                    ("tid", Value::int(e.tid)),
                ];
                if !e.cat.is_empty() {
                    pairs.push(("cat", Value::str(&e.cat)));
                }
                if e.ph == 'i' {
                    // Instant scope: thread.
                    pairs.push(("s", Value::str("t")));
                }
                if !e.args.is_empty() {
                    pairs.push((
                        "args",
                        Value::Obj(
                            e.args
                                .iter()
                                .map(|(k, v)| (k.clone(), Value::str(v)))
                                .collect(),
                        ),
                    ));
                }
                Value::obj(pairs)
            })
            .collect();
        Value::obj(vec![
            ("traceEvents", Value::Arr(events)),
            ("displayTimeUnit", Value::str("ms")),
        ])
        .to_json()
    }

    /// Write the Chrome trace to a file.
    pub fn write_chrome_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }

    /// Number of spans currently open on the calling thread.
    pub fn open_depth(&self) -> usize {
        let tid = current_tid();
        let inner = self.inner.lock().unwrap();
        inner.open.get(&tid).map_or(0, |s| s.len())
    }

    /// Total spans currently open across all threads.
    pub fn open_spans_total(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.open.values().map(|s| s.len()).sum()
    }

    /// Force-end spans on the calling thread until its open depth is back
    /// to `depth`; returns how many were repaired. Used by panic-isolation
    /// boundaries (`catch_unwind`): a panic that escapes a span whose RAII
    /// guard never ran (or itself panicked mid-`begin`) would otherwise
    /// leave the thread's span stack unbalanced forever, corrupting the
    /// nesting of every later span on that executor thread.
    pub fn repair_to(&self, depth: usize) -> usize {
        let tid = current_tid();
        let mut repaired = 0;
        loop {
            let mut inner = self.inner.lock().unwrap();
            let ts_us = self.start.elapsed().as_micros() as u64;
            let Some(name) = inner
                .open
                .get_mut(&tid)
                .filter(|s| s.len() > depth)
                .and_then(|s| s.pop())
            else {
                return repaired;
            };
            inner.events.push(TraceEvent {
                ph: 'E',
                name,
                cat: String::new(),
                ts_us,
                tid,
                args: vec![("repaired".to_string(), "true".to_string())],
            });
            repaired += 1;
        }
    }
}

/// RAII balance guard for panic-isolation boundaries: records the calling
/// thread's open-span depth at construction and force-closes anything
/// deeper on drop. Create it *before* a `catch_unwind` region; spans the
/// unwind failed to close are repaired instead of leaking.
pub struct BalanceGuard<'a> {
    tracer: &'a Tracer,
    depth: usize,
    repaired: usize,
}

impl Tracer {
    /// Open a [`BalanceGuard`] at the current thread's span depth.
    pub fn balance_guard(&self) -> BalanceGuard<'_> {
        BalanceGuard {
            depth: self.open_depth(),
            tracer: self,
            repaired: 0,
        }
    }
}

impl BalanceGuard<'_> {
    /// Repair now (idempotent — drop will find nothing left) and report
    /// how many spans had leaked.
    pub fn repair(&mut self) -> usize {
        let n = self.tracer.repair_to(self.depth);
        self.repaired += n;
        n
    }

    /// Spans repaired so far.
    pub fn repaired(&self) -> usize {
        self.repaired
    }
}

impl Drop for BalanceGuard<'_> {
    fn drop(&mut self) {
        self.tracer.repair_to(self.depth);
    }
}

/// RAII guard returned by [`Tracer::span`]; ends the span on drop.
pub struct Span<'a> {
    tracer: &'a Tracer,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.tracer.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn spans_nest_and_close_in_order() {
        let t = Tracer::new();
        {
            let _a = t.span("driver", "step");
            {
                let _b = t.span_args("kernel", "bulk", &[("blocks", "8".into())]);
            }
            t.instant("halo", "transfer", &[("bytes", "4096".into())]);
        }
        let ev = t.events();
        assert_eq!(
            ev.iter().map(|e| e.ph).collect::<String>(),
            "BBEiE",
            "expected step(B) bulk(B/E) instant step(E)"
        );
        assert_eq!(
            ev[2].name, "bulk",
            "E carries the name of the span it closes"
        );
        assert_eq!(ev[4].name, "step");
    }

    #[test]
    fn timestamps_are_monotonic() {
        let t = Tracer::new();
        for _ in 0..100 {
            let _s = t.span("x", "s");
        }
        let ev = t.events();
        for w in ev.windows(2) {
            assert!(w[0].ts_us <= w[1].ts_us);
        }
    }

    #[test]
    fn chrome_export_parses_and_has_required_fields() {
        let t = Tracer::new();
        let _s = t.span("driver", "weird \"name\"\n");
        drop(_s);
        let v = json::parse(&t.to_chrome_json()).unwrap();
        let events = v.get("traceEvents").unwrap().items();
        assert_eq!(events.len(), 2);
        for e in events {
            assert!(e.get("name").is_some());
            assert!(e.get("ts").is_some());
            assert!(e.get("pid").is_some());
            assert!(e.get("tid").is_some());
        }
        assert_eq!(events[0].get("ph").unwrap().as_str().unwrap(), "B");
        assert_eq!(events[1].get("ph").unwrap().as_str().unwrap(), "E");
    }

    #[test]
    #[should_panic(expected = "no open span")]
    fn unmatched_end_panics() {
        Tracer::new().end();
    }

    #[test]
    fn balance_guard_repairs_spans_leaked_by_a_panic() {
        let t = Tracer::new();
        let _outer = t.span("serve", "executor");
        assert_eq!(t.open_depth(), 1);
        {
            let mut guard = t.balance_guard();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                t.begin("driver", "step", &[]);
                t.begin("kernel", "bulk", &[]);
                // Simulate a panic that escapes before the spans close.
                panic!("boom");
            }));
            assert!(r.is_err());
            assert_eq!(t.open_depth(), 3, "two spans leaked past the unwind");
            assert_eq!(guard.repair(), 2);
            assert_eq!(t.open_depth(), 1, "repaired back to the guard depth");
        }
        drop(_outer);
        assert_eq!(t.open_spans_total(), 0);
        // The stream still balances: equal B and E counts.
        let ev = t.events();
        let b = ev.iter().filter(|e| e.ph == 'B').count();
        let e = ev.iter().filter(|e| e.ph == 'E').count();
        assert_eq!(b, e);
        // Repaired ends are marked so traces show the truncation.
        assert!(ev
            .iter()
            .any(|e| e.ph == 'E' && e.args.iter().any(|(k, _)| k == "repaired")));
    }

    #[test]
    fn balance_guard_is_a_noop_on_clean_exits() {
        let t = Tracer::new();
        {
            let _guard = t.balance_guard();
            let _s = t.span("driver", "step");
        }
        assert_eq!(t.open_spans_total(), 0);
        assert_eq!(t.events().len(), 2, "no spurious repair events");
    }

    #[test]
    fn concurrent_threads_get_distinct_tids() {
        let t = std::sync::Arc::new(Tracer::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        let _sp = t.span("w", "work");
                    }
                });
            }
        });
        let ev = t.events();
        assert_eq!(ev.len(), 4 * 50 * 2);
        // Global monotonicity holds across threads (ts taken under the lock).
        for w in ev.windows(2) {
            assert!(w[0].ts_us <= w[1].ts_us);
        }
        let tids: std::collections::BTreeSet<u64> = ev.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4);
    }
}
