//! Structured fleet event log: a bounded ring of typed scheduler and
//! resilience events.
//!
//! Spans answer "where did the time go"; the event log answers "what did
//! the scheduler decide, in what order". Every admission, group formation,
//! slice, eviction, resume, rollback, halo retry, cancellation, failure,
//! completion, and controller tuning decision is recorded as one
//! [`FleetEvent`] with a globally unique, strictly increasing sequence
//! number. Causality links back to the trace: each event carries the same
//! per-thread `tid` the [`crate::Tracer`] stamps on spans, so an event can
//! be placed inside the span that was open when it fired.
//!
//! The ring is bounded (default 65 536 events): when full, the oldest
//! events are dropped and counted, never blocking the scheduler. The JSON
//! export records both the drop count and the total, so a consumer can
//! tell a complete log from a truncated one. [`replay`] reconstructs
//! per-job decision sequences from a snapshot and validates them against
//! the job lifecycle state machine — the CI check that the log is a
//! faithful record, not a best-effort approximation.

use crate::json::Value;
use crate::trace::current_tid;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Default ring capacity, in events.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// The typed fleet event taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// Job accepted by `submit` (quota charged, queued).
    Admit,
    /// A lockstep dispatch group was formed around a leader.
    GroupForm,
    /// One round-robin slice of a running job executed.
    Slice,
    /// Checkpoint-backed eviction of a running job.
    Evict,
    /// An evicted job was rebuilt and restored from its snapshot.
    Resume,
    /// Recovery rolled a resilient job back to its last checkpoint.
    Rollback,
    /// A transient halo-link failure was retried.
    HaloRetry,
    /// Job canceled (queued or running).
    Cancel,
    /// Job failed (panic isolation or unrecoverable fault).
    Fail,
    /// Job completed with a checksum.
    Complete,
    /// The SLO feedback controller adjusted `slice_steps`/`batch_max`.
    Tune,
    /// A post-build quota true-up pushed a tenant over its resident-byte
    /// limit (the job stays admitted; the breach is surfaced, not hidden).
    QuotaBreach,
}

impl EventKind {
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Admit => "admit",
            EventKind::GroupForm => "group-form",
            EventKind::Slice => "slice",
            EventKind::Evict => "evict",
            EventKind::Resume => "resume",
            EventKind::Rollback => "rollback",
            EventKind::HaloRetry => "halo-retry",
            EventKind::Cancel => "cancel",
            EventKind::Fail => "fail",
            EventKind::Complete => "complete",
            EventKind::Tune => "tune",
            EventKind::QuotaBreach => "quota-breach",
        }
    }
}

/// One recorded fleet event.
#[derive(Clone, Debug)]
pub struct FleetEvent {
    /// Strictly increasing global sequence number (assigned under the ring
    /// lock — the authoritative scheduler decision order).
    pub seq: u64,
    /// Microseconds since the log's creation.
    pub ts_us: u64,
    /// Same per-thread id the tracer stamps on spans (span-linked
    /// causality: the event happened inside whatever span was open on
    /// `tid` at `ts_us`).
    pub tid: u64,
    pub kind: EventKind,
    /// Subject job id, if the event concerns one job.
    pub job: Option<u64>,
    /// Owning tenant (empty for fleet-wide events like `Tune`).
    pub tenant: String,
    /// Free-form key/value detail (steps, group members, snapshot bytes…).
    pub args: Vec<(String, String)>,
}

struct Inner {
    ring: VecDeque<FleetEvent>,
    next_seq: u64,
    dropped: u64,
}

/// Bounded, thread-safe ring of [`FleetEvent`]s.
pub struct EventLog {
    start: Instant,
    cap: usize,
    inner: Mutex<Inner>,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventLog {
    /// An empty log holding at most `cap` events (oldest dropped first).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "event ring needs capacity");
        EventLog {
            start: Instant::now(),
            cap,
            inner: Mutex::new(Inner {
                ring: VecDeque::new(),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Record one event. `seq` and `ts_us` are assigned under the lock, so
    /// sequence order is the true global decision order.
    pub fn record(&self, kind: EventKind, job: Option<u64>, tenant: &str, args: &[(&str, String)]) {
        let tid = current_tid();
        let mut inner = self.inner.lock().unwrap();
        let ts_us = self.start.elapsed().as_micros() as u64;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() == self.cap {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(FleetEvent {
            seq,
            ts_us,
            tid,
            kind,
            job,
            tenant: tenant.to_string(),
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Events currently in the ring, in sequence order.
    pub fn snapshot(&self) -> Vec<FleetEvent> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Total events ever recorded (including dropped ones).
    pub fn total(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }

    /// Events dropped to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-kind counts over the current ring contents, labeled.
    pub fn counts(&self) -> Vec<(&'static str, u64)> {
        let inner = self.inner.lock().unwrap();
        let mut counts: std::collections::BTreeMap<&'static str, u64> = Default::default();
        for e in &inner.ring {
            *counts.entry(e.kind.label()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Export as JSON: `{"events": [...], "total": n, "dropped": n}`.
    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let events: Vec<Value> = inner
            .ring
            .iter()
            .map(|e| {
                let mut pairs = vec![
                    ("seq", Value::int(e.seq)),
                    ("ts_us", Value::int(e.ts_us)),
                    ("tid", Value::int(e.tid)),
                    ("kind", Value::str(e.kind.label())),
                ];
                if let Some(j) = e.job {
                    pairs.push(("job", Value::int(j)));
                }
                if !e.tenant.is_empty() {
                    pairs.push(("tenant", Value::str(&e.tenant)));
                }
                if !e.args.is_empty() {
                    pairs.push((
                        "args",
                        Value::Obj(
                            e.args
                                .iter()
                                .map(|(k, v)| (k.clone(), Value::str(v)))
                                .collect(),
                        ),
                    ));
                }
                Value::obj(pairs)
            })
            .collect();
        Value::obj(vec![
            ("events", Value::Arr(events)),
            ("total", Value::int(inner.next_seq)),
            ("dropped", Value::int(inner.dropped)),
        ])
        .to_json()
    }

    /// Write the JSON export to a file.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// The reconstructed life of one job, replayed from the event log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobReplay {
    pub tenant: String,
    pub slices: u64,
    pub evictions: u64,
    pub resumes: u64,
    pub rollbacks: u64,
    /// Terminal kind (`Complete`/`Cancel`/`Fail`), once seen.
    pub terminal: Option<EventKind>,
}

/// Replay a snapshot into per-job decision sequences, validating the job
/// lifecycle state machine along the way:
///
/// * sequence numbers strictly increase;
/// * a job's first event is `Admit`, nothing precedes it and no second
///   `Admit` follows;
/// * every `Resume` is preceded by one more `Evict` than prior `Resume`s
///   (evict/resume strictly alternate per job);
/// * at most one terminal event (`Complete`/`Cancel`/`Fail`) per job, and
///   nothing follows it.
///
/// Returns the per-job replays keyed by job id, or a description of the
/// first inconsistency — an inconsistent log means the ring dropped events
/// or the scheduler recorded a decision it never made.
pub fn replay(events: &[FleetEvent]) -> Result<std::collections::BTreeMap<u64, JobReplay>, String> {
    let mut jobs: std::collections::BTreeMap<u64, JobReplay> = Default::default();
    let mut last_seq: Option<u64> = None;
    for e in events {
        if let Some(prev) = last_seq {
            if e.seq <= prev {
                return Err(format!("seq not strictly increasing at {}", e.seq));
            }
        }
        last_seq = Some(e.seq);
        let Some(id) = e.job else { continue };
        let known = jobs.contains_key(&id);
        let rec = jobs.entry(id).or_default();
        match e.kind {
            EventKind::Admit => {
                if known {
                    return Err(format!("job {id}: second admit at seq {}", e.seq));
                }
                rec.tenant = e.tenant.clone();
            }
            _ if !known => {
                return Err(format!(
                    "job {id}: {} before admit at seq {}",
                    e.kind.label(),
                    e.seq
                ));
            }
            _ if rec.terminal.is_some() => {
                return Err(format!(
                    "job {id}: {} after terminal at seq {}",
                    e.kind.label(),
                    e.seq
                ));
            }
            EventKind::Slice => rec.slices += 1,
            EventKind::Evict => {
                if rec.evictions != rec.resumes {
                    return Err(format!("job {id}: evict while evicted at seq {}", e.seq));
                }
                rec.evictions += 1;
            }
            EventKind::Resume => {
                if rec.evictions != rec.resumes + 1 {
                    return Err(format!("job {id}: resume without evict at seq {}", e.seq));
                }
                rec.resumes += 1;
            }
            EventKind::Rollback => rec.rollbacks += 1,
            EventKind::HaloRetry
            | EventKind::GroupForm
            | EventKind::Tune
            | EventKind::QuotaBreach => {}
            EventKind::Complete | EventKind::Cancel | EventKind::Fail => {
                rec.terminal = Some(e.kind);
            }
        }
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn ev(log: &EventLog, kind: EventKind, job: u64) {
        log.record(kind, Some(job), "acme", &[]);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let log = EventLog::new(3);
        for i in 0..5 {
            log.record(EventKind::Slice, Some(i), "t", &[]);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total(), 5);
        assert_eq!(log.dropped(), 2);
        let snap = log.snapshot();
        assert_eq!(snap[0].seq, 2, "oldest two dropped");
        assert_eq!(snap[2].seq, 4);
    }

    #[test]
    fn json_export_parses_and_carries_counts() {
        let log = EventLog::new(16);
        log.record(
            EventKind::Admit,
            Some(1),
            "acme",
            &[("steps", "12".to_string())],
        );
        log.record(
            EventKind::Tune,
            None,
            "",
            &[("slice_steps", "4".to_string())],
        );
        let v = json::parse(&log.to_json()).unwrap();
        let events = v.get("events").unwrap().items();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("kind").unwrap().as_str(), Some("admit"));
        assert_eq!(events[0].get("job").unwrap().as_f64(), Some(1.0));
        assert!(
            events[1].get("job").is_none(),
            "fleet-wide event has no job"
        );
        assert_eq!(v.get("total").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("dropped").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn replay_accepts_a_lawful_life() {
        let log = EventLog::new(64);
        ev(&log, EventKind::Admit, 7);
        ev(&log, EventKind::Slice, 7);
        ev(&log, EventKind::Evict, 7);
        ev(&log, EventKind::Resume, 7);
        ev(&log, EventKind::Slice, 7);
        ev(&log, EventKind::Complete, 7);
        let jobs = replay(&log.snapshot()).unwrap();
        let j = &jobs[&7];
        assert_eq!(j.slices, 2);
        assert_eq!(j.evictions, 1);
        assert_eq!(j.resumes, 1);
        assert_eq!(j.terminal, Some(EventKind::Complete));
        assert_eq!(j.tenant, "acme");
    }

    #[test]
    fn replay_rejects_lifecycle_violations() {
        // Slice before admit.
        let log = EventLog::new(64);
        ev(&log, EventKind::Slice, 1);
        assert!(replay(&log.snapshot()).is_err());

        // Resume without a pending evict.
        let log = EventLog::new(64);
        ev(&log, EventKind::Admit, 1);
        ev(&log, EventKind::Resume, 1);
        assert!(replay(&log.snapshot()).is_err());

        // Activity after a terminal event.
        let log = EventLog::new(64);
        ev(&log, EventKind::Admit, 1);
        ev(&log, EventKind::Complete, 1);
        ev(&log, EventKind::Slice, 1);
        assert!(replay(&log.snapshot()).is_err());
    }
}
