//! Machine-readable bench records (`BENCH_<section>.json`).
//!
//! A [`BenchRecord`] captures one reproduction section as structured rows —
//! one [`BenchRow`] per (device, lattice, pattern) combination — so the
//! paper's headline numbers (Table 2 traffic ideals, Figs. 2–3 MFLUPS
//! curves, halo volumes, overlap efficiency) are diffable across commits
//! instead of living only in stdout tables.

use crate::json::Value;

/// One benchmark row: a (device, lattice, pattern) measurement.
#[derive(Clone, Debug, Default)]
pub struct BenchRow {
    pub device: String,
    pub lattice: String,
    /// Traffic pattern: `st`, `mr-p`, or `mr-r`.
    pub pattern: String,
    pub fluid_nodes: u64,
    pub steps: u64,
    /// Roofline-modeled MFLUPS from measured traffic and device bandwidth.
    pub mflups_modeled: f64,
    /// Measured DRAM bytes per fluid-node update (paper's B/F).
    pub dram_bytes_per_item: f64,
    /// L2 read hit rate of the bulk kernel, in [0, 1].
    pub l2_hit_rate: f64,
    /// Halo bytes exchanged per step (0 for single-device runs).
    pub halo_bytes_per_step: u64,
    /// Overlap efficiency in [0, 1] (0 for single-device runs).
    pub overlap_efficiency: f64,
    /// Wall-clock MFLUPS of the software substrate itself (monotonic-clock
    /// steady-state timing; 0 when the section does not time wall-clock).
    pub measured_mflups: f64,
    /// Wall-clock speedup of this pattern relative to the ST run of the
    /// same (device, lattice) in the same section (0 when not timed; 1 for
    /// the ST row itself).
    pub speedup_vs_st: f64,
}

impl BenchRow {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("device", Value::str(&self.device)),
            ("lattice", Value::str(&self.lattice)),
            ("pattern", Value::str(&self.pattern)),
            ("fluid_nodes", Value::int(self.fluid_nodes)),
            ("steps", Value::int(self.steps)),
            ("mflups_modeled", Value::num(self.mflups_modeled)),
            ("dram_bytes_per_item", Value::num(self.dram_bytes_per_item)),
            ("l2_hit_rate", Value::num(self.l2_hit_rate)),
            ("halo_bytes_per_step", Value::int(self.halo_bytes_per_step)),
            ("overlap_efficiency", Value::num(self.overlap_efficiency)),
            ("measured_mflups", Value::num(self.measured_mflups)),
            ("speedup_vs_st", Value::num(self.speedup_vs_st)),
        ])
    }
}

/// A named collection of bench rows plus free-form extras (monitor
/// summaries, overhead measurements, …).
#[derive(Default)]
pub struct BenchRecord {
    section: String,
    rows: Vec<BenchRow>,
    extras: Vec<(String, Value)>,
}

impl BenchRecord {
    pub fn new(section: &str) -> Self {
        BenchRecord {
            section: section.to_string(),
            rows: Vec::new(),
            extras: Vec::new(),
        }
    }

    pub fn section(&self) -> &str {
        &self.section
    }

    pub fn push(&mut self, row: BenchRow) {
        self.rows.push(row);
    }

    pub fn rows(&self) -> &[BenchRow] {
        &self.rows
    }

    /// Attach an extra top-level field (e.g. `"monitor"`,
    /// `"monitor_overhead_frac"`). Later values win on key collision.
    pub fn set_extra(&mut self, key: &str, v: Value) {
        self.extras.retain(|(k, _)| k != key);
        self.extras.push((key.to_string(), v));
    }

    /// The record as a JSON value.
    pub fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("section", Value::str(&self.section)),
            (
                "rows",
                Value::Arr(self.rows.iter().map(BenchRow::to_value).collect()),
            ),
        ];
        for (k, v) in &self.extras {
            pairs.push((k.as_str(), v.clone()));
        }
        Value::obj(pairs)
    }

    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// File name this record writes to: `BENCH_<section>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.section)
    }

    /// Write `BENCH_<section>.json` into `dir`; returns the path written.
    pub fn write(&self, dir: &str) -> std::io::Result<String> {
        let path = if dir.is_empty() || dir == "." {
            self.file_name()
        } else {
            format!("{}/{}", dir.trim_end_matches('/'), self.file_name())
        };
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn row() -> BenchRow {
        BenchRow {
            device: "V100".into(),
            lattice: "D2Q9".into(),
            pattern: "mr-p".into(),
            fluid_nodes: 512,
            steps: 10,
            mflups_modeled: 9375.0,
            dram_bytes_per_item: 96.0,
            l2_hit_rate: 0.25,
            halo_bytes_per_step: 0,
            overlap_efficiency: 0.0,
            measured_mflups: 12.5,
            speedup_vs_st: 2.1,
        }
    }

    #[test]
    fn record_roundtrips_through_json() {
        let mut rec = BenchRecord::new("smoke");
        rec.push(row());
        rec.set_extra("monitor_overhead_frac", Value::num(0.01));
        rec.set_extra("monitor_overhead_frac", Value::num(0.02));
        let v = json::parse(&rec.to_json()).unwrap();
        assert_eq!(v.get("section").unwrap().as_str(), Some("smoke"));
        let rows = v.get("rows").unwrap().items();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get("dram_bytes_per_item").unwrap().as_f64(),
            Some(96.0)
        );
        assert_eq!(rows[0].get("pattern").unwrap().as_str(), Some("mr-p"));
        assert_eq!(rows[0].get("measured_mflups").unwrap().as_f64(), Some(12.5));
        assert_eq!(rows[0].get("speedup_vs_st").unwrap().as_f64(), Some(2.1));
        // set_extra replaces on collision.
        assert_eq!(v.get("monitor_overhead_frac").unwrap().as_f64(), Some(0.02));
    }

    #[test]
    fn file_name_is_sectioned() {
        assert_eq!(BenchRecord::new("smoke").file_name(), "BENCH_smoke.json");
    }
}
