//! A labeled metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! The substrate's exec, memory-tally, interconnect, and profiler layers
//! publish here (see `gpu-sim`), keyed by metric name plus a small label
//! set (`kernel`, `pattern`, `device`, `link`, …). The registry is the
//! machine-readable counterpart of `Profiler::report()`: everything it
//! holds exports as deterministic JSON for the bench trajectory.

use crate::json::Value;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Metric identity: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// Fixed-bucket histogram: `counts[i]` holds observations `≤ bounds[i]`,
/// with one overflow bucket at the end.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    pub sum: f64,
    pub count: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Mean of all observations (NaN when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }
}

/// One metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// Thread-safe registry of labeled metrics.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to a counter (creating it at zero).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.lock().unwrap();
        match map.entry(key).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += delta,
            other => panic!("metric '{name}' is not a counter: {other:?}"),
        }
    }

    /// Set a gauge to a value.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.lock().unwrap();
        match map.entry(key).or_insert(Metric::Gauge(v)) {
            Metric::Gauge(g) => *g = v,
            other => panic!("metric '{name}' is not a gauge: {other:?}"),
        }
    }

    /// Record one observation into a fixed-bucket histogram. `bounds` is
    /// only used on first creation; later calls must agree.
    pub fn histogram_observe(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64], v: f64) {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => {
                assert_eq!(h.bounds, bounds, "histogram '{name}' bounds changed");
                h.observe(v);
            }
            other => panic!("metric '{name}' is not a histogram: {other:?}"),
        }
    }

    /// Current counter value, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self
            .inner
            .lock()
            .unwrap()
            .get(&MetricKey::new(name, labels))
        {
            Some(Metric::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Current gauge value, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self
            .inner
            .lock()
            .unwrap()
            .get(&MetricKey::new(name, labels))
        {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Current histogram, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        match self
            .inner
            .lock()
            .unwrap()
            .get(&MetricKey::new(name, labels))
        {
            Some(Metric::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Snapshot of every metric, sorted by key.
    pub fn snapshot(&self) -> Vec<(MetricKey, Metric)> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Export as a JSON document: `{"metrics": [{name, labels, type, …}]}`.
    pub fn to_json(&self) -> String {
        let metrics: Vec<Value> = self
            .snapshot()
            .into_iter()
            .map(|(k, m)| {
                let labels = Value::Obj(
                    k.labels
                        .iter()
                        .map(|(lk, lv)| (lk.clone(), Value::str(lv)))
                        .collect(),
                );
                let mut pairs = vec![("name", Value::str(&k.name)), ("labels", labels)];
                match m {
                    Metric::Counter(c) => {
                        pairs.push(("type", Value::str("counter")));
                        pairs.push(("value", Value::int(c)));
                    }
                    Metric::Gauge(g) => {
                        pairs.push(("type", Value::str("gauge")));
                        pairs.push(("value", Value::num(g)));
                    }
                    Metric::Histogram(h) => {
                        pairs.push(("type", Value::str("histogram")));
                        pairs.push((
                            "bounds",
                            Value::Arr(h.bounds.iter().map(|&b| Value::num(b)).collect()),
                        ));
                        pairs.push((
                            "counts",
                            Value::Arr(h.counts.iter().map(|&c| Value::int(c)).collect()),
                        ));
                        pairs.push(("sum", Value::num(h.sum)));
                        pairs.push(("count", Value::int(h.count)));
                    }
                }
                Value::obj(pairs)
            })
            .collect();
        Value::obj(vec![("metrics", Value::Arr(metrics))]).to_json()
    }

    /// Write the JSON export to a file.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn counters_accumulate_per_label_set() {
        let r = MetricsRegistry::new();
        r.counter_add("bytes", &[("kernel", "a")], 10);
        r.counter_add("bytes", &[("kernel", "a")], 5);
        r.counter_add("bytes", &[("kernel", "b")], 1);
        assert_eq!(r.counter("bytes", &[("kernel", "a")]), Some(15));
        assert_eq!(r.counter("bytes", &[("kernel", "b")]), Some(1));
        assert_eq!(r.counter("bytes", &[("kernel", "c")]), None);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = MetricsRegistry::new();
        r.counter_add("x", &[("a", "1"), ("b", "2")], 7);
        assert_eq!(r.counter("x", &[("b", "2"), ("a", "1")]), Some(7));
    }

    #[test]
    fn gauges_overwrite() {
        let r = MetricsRegistry::new();
        r.gauge_set("bpf", &[("kernel", "st-bulk")], 144.0);
        r.gauge_set("bpf", &[("kernel", "st-bulk")], 96.0);
        assert_eq!(r.gauge("bpf", &[("kernel", "st-bulk")]), Some(96.0));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let r = MetricsRegistry::new();
        let bounds = [1.0, 10.0, 100.0];
        for v in [0.5, 5.0, 50.0, 500.0, 7.0] {
            r.histogram_observe("lat", &[], &bounds, v);
        }
        let h = r.histogram("lat", &[]).unwrap();
        assert_eq!(h.counts, vec![1, 2, 1, 1]);
        assert_eq!(h.count, 5);
        assert!((h.mean() - 112.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn type_confusion_panics() {
        let r = MetricsRegistry::new();
        r.gauge_set("m", &[], 1.0);
        r.counter_add("m", &[], 1);
    }

    #[test]
    fn json_export_parses_and_is_deterministic() {
        let r = MetricsRegistry::new();
        r.counter_add("launches", &[("kernel", "mr2d-p"), ("device", "V100")], 3);
        r.gauge_set("dram_b_per_item", &[("kernel", "mr2d-p")], 96.0);
        r.histogram_observe("t", &[], &[1.0], 0.5);
        let s1 = r.to_json();
        let s2 = r.to_json();
        assert_eq!(s1, s2);
        let v = json::parse(&s1).unwrap();
        let ms = v.get("metrics").unwrap().items();
        assert_eq!(ms.len(), 3);
        let g = ms
            .iter()
            .find(|m| m.get("type").unwrap().as_str() == Some("gauge"))
            .unwrap();
        assert_eq!(g.get("value").unwrap().as_f64(), Some(96.0));
    }
}
