//! A labeled metrics registry: counters, gauges, and fixed-bucket
//! histograms.
//!
//! The substrate's exec, memory-tally, interconnect, and profiler layers
//! publish here (see `gpu-sim`), keyed by metric name plus a small label
//! set (`kernel`, `pattern`, `device`, `link`, …). The registry is the
//! machine-readable counterpart of `Profiler::report()`: everything it
//! holds exports as deterministic JSON for the bench trajectory.

use crate::json::Value;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Metric identity: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// Fixed-bucket histogram: `counts[i]` holds observations `≤ bounds[i]`,
/// with one overflow bucket at the end.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    pub sum: f64,
    pub count: u64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Mean of all observations (NaN when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// Bucket-resolution quantile: the upper bound of the bucket holding
    /// the nearest-rank `q`-quantile observation (`q` in `[0, 1]`), or the
    /// last finite bound for overflow observations. `None` when empty.
    /// Coarse by construction — the fleet SLO path uses the exact
    /// [`StreamingQuantile`] and keeps this as the histogram cross-check.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count - 1) as f64 * q).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Some(*self.bounds.get(i).unwrap_or(self.bounds.last()?));
            }
        }
        self.bounds.last().copied()
    }
}

/// Streaming quantile sketch: exact below `cap` samples, bounded-error
/// beyond.
///
/// A multi-level compaction sketch (the KLL/MRL shape): observations land
/// in a level-0 buffer of weight-1 samples; when a level fills, it is
/// sorted and every second sample (odd ranks) is promoted to the next
/// level with doubled weight. Total weight is preserved exactly by each
/// compaction, so `Σ weight == count` always. Below `cap` observations no
/// compaction ever runs and `quantile` is the exact nearest-rank
/// statistic — the property the unit tests pin down; beyond, rank error
/// grows like `O(levels · cap / 2)` in the worst case, a small fraction
/// of `count` for the capacities used here (the property test bounds it
/// against a sorted-vector oracle).
///
/// The quantile definition matches the serve-layer percentile oracle:
/// nearest rank `round(q · (n − 1))` over the weighted sorted samples.
#[derive(Clone, Debug)]
pub struct StreamingQuantile {
    cap: usize,
    /// `levels[i]` holds samples of weight `2^i`; only level 0 is unsorted.
    levels: Vec<Vec<f64>>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Default per-level capacity: exact up to 512 samples, ≲1% rank error at
/// the 100k-observation scale of a serve load test.
pub const DEFAULT_QUANTILE_CAPACITY: usize = 512;

impl Default for StreamingQuantile {
    fn default() -> Self {
        Self::new(DEFAULT_QUANTILE_CAPACITY)
    }
}

impl StreamingQuantile {
    /// An empty sketch with per-level capacity `cap` (rounded up to even).
    pub fn new(cap: usize) -> Self {
        let cap = {
            let c = cap.max(2);
            c + c % 2
        };
        StreamingQuantile {
            cap,
            levels: vec![Vec::new()],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Ingest one observation (non-finite values are counted in `count`
    /// and the sum but excluded from the sample set).
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if !v.is_finite() {
            return;
        }
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.levels[0].push(v);
        let mut lvl = 0;
        while self.levels[lvl].len() >= self.cap {
            // Sort and promote the odd ranks with doubled weight; the even
            // ranks are discarded. Total weight is preserved exactly.
            self.levels[lvl].sort_by(f64::total_cmp);
            let promoted: Vec<f64> = self.levels[lvl]
                .iter()
                .skip(1)
                .step_by(2)
                .copied()
                .collect();
            self.levels[lvl].clear();
            if self.levels.len() == lvl + 1 {
                self.levels.push(Vec::new());
            }
            self.levels[lvl + 1].extend(promoted);
            lvl += 1;
        }
    }

    /// Nearest-rank `q`-quantile estimate (`q` in `[0, 1]`); `None` when
    /// no finite observation has been ingested. Exact while fewer than
    /// `cap` observations have been seen.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let q = q.clamp(0.0, 1.0);
        let mut weighted: Vec<(f64, u64)> = Vec::new();
        let mut total: u64 = 0;
        for (lvl, samples) in self.levels.iter().enumerate() {
            let w = 1u64 << lvl;
            for &v in samples {
                weighted.push((v, w));
                total += w;
            }
        }
        if total == 0 {
            return None;
        }
        weighted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let rank = ((total - 1) as f64 * q).round() as u64;
        let mut seen = 0u64;
        for (v, w) in weighted {
            seen += w;
            if seen > rank {
                return Some(v);
            }
        }
        Some(self.max)
    }

    /// Observations ingested.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact running sum.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact running mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// Smallest finite observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        self.min.is_finite().then_some(self.min)
    }

    /// Largest finite observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.max.is_finite().then_some(self.max)
    }
}

/// One metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// Thread-safe registry of labeled metrics.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to a counter (creating it at zero).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.lock().unwrap();
        match map.entry(key).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += delta,
            other => panic!("metric '{name}' is not a counter: {other:?}"),
        }
    }

    /// Set a gauge to a value.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.lock().unwrap();
        match map.entry(key).or_insert(Metric::Gauge(v)) {
            Metric::Gauge(g) => *g = v,
            other => panic!("metric '{name}' is not a gauge: {other:?}"),
        }
    }

    /// Record one observation into a fixed-bucket histogram. `bounds` is
    /// only used on first creation; later calls must agree.
    pub fn histogram_observe(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64], v: f64) {
        let key = MetricKey::new(name, labels);
        let mut map = self.inner.lock().unwrap();
        match map
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => {
                assert_eq!(h.bounds, bounds, "histogram '{name}' bounds changed");
                h.observe(v);
            }
            other => panic!("metric '{name}' is not a histogram: {other:?}"),
        }
    }

    /// Current counter value, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self
            .inner
            .lock()
            .unwrap()
            .get(&MetricKey::new(name, labels))
        {
            Some(Metric::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Current gauge value, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self
            .inner
            .lock()
            .unwrap()
            .get(&MetricKey::new(name, labels))
        {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Current histogram, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        match self
            .inner
            .lock()
            .unwrap()
            .get(&MetricKey::new(name, labels))
        {
            Some(Metric::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Snapshot of every metric, sorted by key.
    pub fn snapshot(&self) -> Vec<(MetricKey, Metric)> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Export as a JSON document: `{"metrics": [{name, labels, type, …}]}`.
    pub fn to_json(&self) -> String {
        let metrics: Vec<Value> = self
            .snapshot()
            .into_iter()
            .map(|(k, m)| {
                let labels = Value::Obj(
                    k.labels
                        .iter()
                        .map(|(lk, lv)| (lk.clone(), Value::str(lv)))
                        .collect(),
                );
                let mut pairs = vec![("name", Value::str(&k.name)), ("labels", labels)];
                match m {
                    Metric::Counter(c) => {
                        pairs.push(("type", Value::str("counter")));
                        pairs.push(("value", Value::int(c)));
                    }
                    Metric::Gauge(g) => {
                        pairs.push(("type", Value::str("gauge")));
                        pairs.push(("value", Value::num(g)));
                    }
                    Metric::Histogram(h) => {
                        pairs.push(("type", Value::str("histogram")));
                        pairs.push((
                            "bounds",
                            Value::Arr(h.bounds.iter().map(|&b| Value::num(b)).collect()),
                        ));
                        pairs.push((
                            "counts",
                            Value::Arr(h.counts.iter().map(|&c| Value::int(c)).collect()),
                        ));
                        pairs.push(("sum", Value::num(h.sum)));
                        pairs.push(("count", Value::int(h.count)));
                    }
                }
                Value::obj(pairs)
            })
            .collect();
        Value::obj(vec![("metrics", Value::Arr(metrics))]).to_json()
    }

    /// Write the JSON export to a file.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn counters_accumulate_per_label_set() {
        let r = MetricsRegistry::new();
        r.counter_add("bytes", &[("kernel", "a")], 10);
        r.counter_add("bytes", &[("kernel", "a")], 5);
        r.counter_add("bytes", &[("kernel", "b")], 1);
        assert_eq!(r.counter("bytes", &[("kernel", "a")]), Some(15));
        assert_eq!(r.counter("bytes", &[("kernel", "b")]), Some(1));
        assert_eq!(r.counter("bytes", &[("kernel", "c")]), None);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = MetricsRegistry::new();
        r.counter_add("x", &[("a", "1"), ("b", "2")], 7);
        assert_eq!(r.counter("x", &[("b", "2"), ("a", "1")]), Some(7));
    }

    #[test]
    fn gauges_overwrite() {
        let r = MetricsRegistry::new();
        r.gauge_set("bpf", &[("kernel", "st-bulk")], 144.0);
        r.gauge_set("bpf", &[("kernel", "st-bulk")], 96.0);
        assert_eq!(r.gauge("bpf", &[("kernel", "st-bulk")]), Some(96.0));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let r = MetricsRegistry::new();
        let bounds = [1.0, 10.0, 100.0];
        for v in [0.5, 5.0, 50.0, 500.0, 7.0] {
            r.histogram_observe("lat", &[], &bounds, v);
        }
        let h = r.histogram("lat", &[]).unwrap();
        assert_eq!(h.counts, vec![1, 2, 1, 1]);
        assert_eq!(h.count, 5);
        assert!((h.mean() - 112.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn type_confusion_panics() {
        let r = MetricsRegistry::new();
        r.gauge_set("m", &[], 1.0);
        r.counter_add("m", &[], 1);
    }

    /// Nearest-rank oracle over a plain sorted vector — the definition the
    /// sketch (and the serve percentile reporter) must agree with.
    fn oracle(values: &[f64], q: f64) -> f64 {
        let mut s = values.to_vec();
        s.sort_by(f64::total_cmp);
        s[((s.len() - 1) as f64 * q).round() as usize]
    }

    #[test]
    fn quantile_exact_on_uniform_input_below_capacity() {
        let mut sk = StreamingQuantile::new(512);
        // 0, 1, …, 400 in a scrambled but deterministic order.
        let vals: Vec<f64> = (0..=400).map(|i| ((i * 173) % 401) as f64).collect();
        for &v in &vals {
            sk.observe(v);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                sk.quantile(q),
                Some(oracle(&vals, q)),
                "exact nearest-rank at q={q}"
            );
        }
        assert_eq!(sk.min(), Some(0.0));
        assert_eq!(sk.max(), Some(400.0));
        assert_eq!(sk.count(), 401);
    }

    #[test]
    fn quantile_exact_on_bimodal_input_below_capacity() {
        // Two tight modes far apart: 100 samples near 1 ms, 50 near 900 ms.
        let mut sk = StreamingQuantile::new(512);
        let mut vals = Vec::new();
        for i in 0..100 {
            vals.push(1.0 + 0.001 * i as f64);
        }
        for i in 0..50 {
            vals.push(900.0 + 0.01 * i as f64);
        }
        for &v in &vals {
            sk.observe(v);
        }
        // The median sits in the low mode, p99 in the high mode — the
        // sketch must not interpolate across the gap.
        let p50 = sk.quantile(0.5).unwrap();
        let p99 = sk.quantile(0.99).unwrap();
        assert_eq!(p50, oracle(&vals, 0.5));
        assert_eq!(p99, oracle(&vals, 0.99));
        assert!(p50 < 2.0, "median in the low mode, got {p50}");
        assert!(p99 > 900.0, "p99 in the high mode, got {p99}");
    }

    #[test]
    fn quantile_degenerate_single_value() {
        let mut sk = StreamingQuantile::new(8);
        assert_eq!(sk.quantile(0.5), None, "empty sketch has no quantile");
        for _ in 0..1000 {
            sk.observe(42.0);
        }
        // Far past capacity, but every compaction keeps only 42s.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(sk.quantile(q), Some(42.0));
        }
        assert_eq!(sk.count(), 1000);
        assert_eq!(sk.mean(), 42.0);
    }

    #[test]
    fn quantile_property_check_against_sorted_oracle() {
        // Deterministic LCG stream, well past capacity: the estimate's
        // *rank* in the true sorted data must stay within a small fraction
        // of the target rank.
        let mut sk = StreamingQuantile::new(256);
        let mut vals = Vec::new();
        let mut state: u64 = 0x2545_f491_4f6c_dd1d;
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((state >> 17) % 1_000_000) as f64 / 100.0;
            vals.push(v);
            sk.observe(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        for q in [0.01, 0.1, 0.5, 0.9, 0.99] {
            let est = sk.quantile(q).unwrap();
            let target = ((n - 1) as f64 * q).round() as i64;
            // Rank of the estimate in the true data.
            let rank = sorted.partition_point(|&v| v < est) as i64;
            let err = (rank - target).abs();
            assert!(
                err <= (n / 50) as i64,
                "q={q}: rank error {err} exceeds 2% of {n} (est {est})"
            );
        }
        // Exact moments survive compaction untouched.
        let true_sum: f64 = vals.iter().sum();
        assert_eq!(sk.sum(), true_sum);
        assert_eq!(sk.count(), n as u64);
    }

    #[test]
    fn histogram_quantile_returns_bucket_upper_bounds() {
        let r = MetricsRegistry::new();
        let bounds = [1.0, 10.0, 100.0];
        for v in [0.5, 5.0, 6.0, 50.0, 500.0] {
            r.histogram_observe("lat", &[], &bounds, v);
        }
        let h = r.histogram("lat", &[]).unwrap();
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(10.0));
        // Overflow observations clamp to the last finite bound.
        assert_eq!(h.quantile(1.0), Some(100.0));
    }

    #[test]
    fn json_export_parses_and_is_deterministic() {
        let r = MetricsRegistry::new();
        r.counter_add("launches", &[("kernel", "mr2d-p"), ("device", "V100")], 3);
        r.gauge_set("dram_b_per_item", &[("kernel", "mr2d-p")], 96.0);
        r.histogram_observe("t", &[], &[1.0], 0.5);
        let s1 = r.to_json();
        let s2 = r.to_json();
        assert_eq!(s1, s2);
        let v = json::parse(&s1).unwrap();
        let ms = v.get("metrics").unwrap().items();
        assert_eq!(ms.len(), 3);
        let g = ms
            .iter()
            .find(|m| m.get("type").unwrap().as_str() == Some("gauge"))
            .unwrap();
        assert_eq!(g.get("value").unwrap().as_f64(), Some(96.0));
    }
}
