//! Minimal JSON value, writer, and parser (std-only).
//!
//! The observability exports (Chrome traces, metrics dumps, bench records)
//! are all JSON, and the workspace is offline/std-only, so this module
//! provides the small subset of JSON handling they need: a [`Value`] tree,
//! an emitter with proper string escaping and non-finite-float handling,
//! and a strict recursive-descent parser used by tests and the
//! `obs-validate` CI gate to prove the emitted files parse.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys keep sorted order (`BTreeMap`) so exports are
/// deterministic across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// A number; non-finite floats serialize as `null` (JSON has no NaN).
    pub fn num(v: f64) -> Value {
        Value::Num(v)
    }

    /// Exact integer (u64 up to 2⁵³ round-trips through f64 losslessly;
    /// larger values are still emitted digit-exact by the writer below).
    pub fn int(v: u64) -> Value {
        Value::Num(v as f64)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Array elements, or an empty slice for non-arrays.
    pub fn items(&self) -> &[Value] {
        match self {
            Value::Arr(v) => v,
            _ => &[],
        }
    }

    /// The f64 of a number value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The &str of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize compactly.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Emit a number: integers without a fraction, non-finite as `null`.
fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Emit a JSON string literal with escapes.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogates are rejected (the exports never emit them).
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("bad \\u{code:04x} at byte {}", self.pos))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|c| c as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so boundaries
                    // are valid; find the next char boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control char at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{s}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::obj(vec![
            ("name", Value::str("he said \"hi\"\n")),
            ("n", Value::int(12345)),
            ("x", Value::num(1.5)),
            ("none", Value::Null),
            ("ok", Value::Bool(true)),
            (
                "arr",
                Value::Arr(vec![Value::int(1), Value::str("two"), Value::Num(3.25)]),
            ),
        ]);
        let s = v.to_json();
        let back = parse(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn non_finite_serializes_as_null() {
        let s = Value::num(f64::NAN).to_json();
        assert_eq!(s, "null");
        assert_eq!(Value::num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn integers_have_no_fraction() {
        assert_eq!(Value::int(0).to_json(), "0");
        assert_eq!(Value::int(1_000_000_000_000).to_json(), "1000000000000");
        assert_eq!(Value::num(-3.0).to_json(), "-3");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , \"b\\u0041\\n\" ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().items()[1].as_str().unwrap(), "bA\n");
    }
}
