//! Fleet trace context: per-job identity carried through every layer.
//!
//! A [`TraceCtx`] names the job a span belongs to — `job_id` and `tenant`
//! from `lbm-serve` admission, plus the lockstep `group` and the running
//! `slice` index assigned by the scheduler. The scheduler attaches it to a
//! simulation when the job is (re)dispatched; the driver forwards it to its
//! device(s); every layer then appends [`TraceCtx::args`] to the spans it
//! emits (driver `step`/`halo-exchange`, substrate `kernel` launches), so a
//! Chrome trace reconstructs one job's life across executors, evictions,
//! and resumes by filtering on the `job` arg.
//!
//! Propagation is explicit (a value handed down the ownership chain), not
//! ambient: the executor threads are shared between jobs, so thread-local
//! context would leak across group members. The context is plain data —
//! attaching it never touches byte tallies or field state, keeping the
//! fleet plane accounting-neutral.

/// Identity of the job a span belongs to, as propagated by the scheduler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// The serve-layer job id (rendered as `job-N`, matching `JobId`).
    pub job_id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Lockstep dispatch-group sequence number (0 before first dispatch).
    pub group: u64,
    /// Running slice index within the job (increments across evictions).
    pub slice: u64,
}

impl TraceCtx {
    pub fn new(job_id: u64, tenant: impl Into<String>) -> Self {
        TraceCtx {
            job_id,
            tenant: tenant.into(),
            group: 0,
            slice: 0,
        }
    }

    /// Span-arg rendering of the context; appended to every span emitted
    /// under this job.
    pub fn args(&self) -> Vec<(&'static str, String)> {
        vec![
            ("job", format!("job-{}", self.job_id)),
            ("tenant", self.tenant.clone()),
            ("group", self.group.to_string()),
            ("slice", self.slice.to_string()),
        ]
    }

    /// Append the context args to a span-arg vector under construction.
    pub fn append_args(&self, args: &mut Vec<(&'static str, String)>) {
        args.extend(self.args());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_render_job_identity() {
        let mut ctx = TraceCtx::new(17, "acme");
        ctx.group = 3;
        ctx.slice = 12;
        let args = ctx.args();
        assert_eq!(args[0], ("job", "job-17".to_string()));
        assert_eq!(args[1], ("tenant", "acme".to_string()));
        assert_eq!(args[2], ("group", "3".to_string()));
        assert_eq!(args[3], ("slice", "12".to_string()));
    }

    #[test]
    fn append_extends_existing_args() {
        let ctx = TraceCtx::new(1, "nova");
        let mut args = vec![("t", "5".to_string())];
        ctx.append_args(&mut args);
        assert_eq!(args.len(), 5);
        assert_eq!(args[0].0, "t");
        assert_eq!(args[2], ("tenant", "nova".to_string()));
    }
}
