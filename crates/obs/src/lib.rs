//! Observability for the GPU substrate and the LBM solvers.
//!
//! Three pillars, one hub:
//!
//! * [`Tracer`] — span-based tracing (step → kernel launch → block phases →
//!   barrier → halo exchange) exporting Chrome `trace_event` JSON that loads
//!   in `chrome://tracing` / Perfetto;
//! * [`MetricsRegistry`] — counters, gauges, and histograms labeled by
//!   kernel/pattern/device, published by `gpu-sim`'s exec, memory,
//!   interconnect, and profiler layers;
//! * [`PhysicsMonitor`] — per-step conservation and divergence guards
//!   (total mass, total momentum, max |u|, NaN check) with a sampling
//!   cadence so hot paths stay hot.
//!
//! The fleet plane adds two more: [`EventLog`] — a bounded ring of typed
//! scheduler/resilience events with span-linked causality — and
//! [`TraceCtx`] — per-job identity propagated from `lbm-serve` admission
//! down into driver and kernel spans. [`StreamingQuantile`] backs the
//! rolling SLO latency estimators.
//!
//! [`Obs`] bundles the tracer, registry, and event log behind an `Arc` so
//! one handle threads through `Gpu`, `MultiGpu`, the solver drivers, and
//! the serve scheduler. [`BenchRecord`]
//! renders machine-readable `BENCH_<section>.json` perf records, and the
//! in-crate [`json`] module gives the std-only workspace a writer plus a
//! strict parser (used by tests and the `obs-validate` CI gate).
//!
//! This crate is deliberately dependency-free (std only) and sits below
//! `gpu-sim` in the crate graph.

pub mod events;
pub mod fleet;
pub mod json;
pub mod metrics;
pub mod monitor;
pub mod record;
pub mod trace;

pub use events::{EventKind, EventLog, FleetEvent};
pub use fleet::TraceCtx;
pub use metrics::{Histogram, Metric, MetricKey, MetricsRegistry, StreamingQuantile};
pub use monitor::{MonitorConfig, MonitorSample, PhysicsMonitor};
pub use record::{BenchRecord, BenchRow};
pub use trace::{BalanceGuard, Span, TraceEvent, Tracer};

/// The observability hub: a tracer, a metrics registry, and the fleet
/// event log, shared via `Arc<Obs>` across devices, links, drivers, and
/// the serve scheduler.
#[derive(Default)]
pub struct Obs {
    pub tracer: Tracer,
    pub metrics: MetricsRegistry,
    pub events: EventLog,
}

impl Obs {
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience: a fresh hub behind an `Arc`.
    pub fn shared() -> std::sync::Arc<Obs> {
        std::sync::Arc::new(Self::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_shares_across_threads() {
        let obs = Obs::shared();
        std::thread::scope(|s| {
            for i in 0..3 {
                let obs = obs.clone();
                s.spawn(move || {
                    let _sp = obs.tracer.span("w", "work");
                    obs.metrics.counter_add("n", &[("t", &i.to_string())], 1);
                });
            }
        });
        assert_eq!(obs.tracer.len(), 6);
        assert_eq!(obs.metrics.len(), 3);
    }
}
