//! Per-step physics monitors: conservation and divergence guards.
//!
//! A [`PhysicsMonitor`] samples the macroscopic fields of a running solver
//! at a configurable cadence and checks three invariants:
//!
//! * **mass conservation** — total mass must stay within a relative
//!   tolerance of the first sample (valid on closed/periodic domains; raise
//!   the tolerance for inlet/outlet flows, which exchange mass with the
//!   boundary by design);
//! * **velocity bound** — `max |u|` must stay below a configured limit
//!   (lattice Boltzmann is only valid well below the lattice sound speed,
//!   and a runaway `|u|` precedes blow-up);
//! * **finiteness** — any NaN/∞ anywhere in the fields is an immediate
//!   violation.
//!
//! The cadence keeps hot paths hot: drivers call [`PhysicsMonitor::due`]
//! (one modulo) every step and only extract fields on sampling steps.

use crate::json::Value;

/// Monitor configuration.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Sample every `cadence` steps (step numbers divisible by it).
    pub cadence: u64,
    /// Relative total-mass drift tolerance vs. the first sample.
    pub mass_rel_tol: f64,
    /// Upper bound on `max |u|` (lattice units).
    pub max_velocity: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            cadence: 16,
            mass_rel_tol: 1e-10,
            max_velocity: 0.5,
        }
    }
}

/// One monitor sample.
#[derive(Clone, Copy, Debug)]
pub struct MonitorSample {
    pub step: u64,
    /// Total mass `Σ ρ` over all nodes (solids contribute zero).
    pub mass: f64,
    /// Total momentum `Σ ρ u`.
    pub momentum: [f64; 3],
    /// Maximum velocity magnitude.
    pub max_u: f64,
    /// Count of non-finite field values.
    pub nonfinite: u64,
}

/// Accumulating physics monitor.
#[derive(Clone, Debug, Default)]
pub struct PhysicsMonitor {
    cfg: MonitorConfig,
    baseline_mass: Option<f64>,
    samples: Vec<MonitorSample>,
    violations: Vec<String>,
    /// Step each violation was recorded at, parallel to `violations`
    /// (lets [`PhysicsMonitor::rollback_to`] truncate both together).
    violation_steps: Vec<u64>,
}

impl PhysicsMonitor {
    /// Monitor with the default config (cadence 16, mass tol 1e-10,
    /// `max |u|` limit 0.5).
    pub fn new(cfg: MonitorConfig) -> Self {
        assert!(cfg.cadence >= 1, "cadence must be ≥ 1");
        PhysicsMonitor {
            cfg,
            baseline_mass: None,
            samples: Vec::new(),
            violations: Vec::new(),
            violation_steps: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Whether step `step` is a sampling step.
    #[inline]
    pub fn due(&self, step: u64) -> bool {
        step.is_multiple_of(self.cfg.cadence)
    }

    /// Ingest one sample of the macroscopic fields. Solid nodes must report
    /// zero density/velocity (the convention of every solver's
    /// `density_field`/`velocity_field`), so no mask is needed.
    pub fn observe(&mut self, step: u64, rho: &[f64], u: &[[f64; 3]]) -> MonitorSample {
        let mut mass = 0.0;
        let mut momentum = [0.0f64; 3];
        let mut max_usq = 0.0f64;
        let mut nonfinite = 0u64;
        for (r, uu) in rho.iter().zip(u) {
            if !r.is_finite() {
                nonfinite += 1;
            }
            mass += r;
            let mut usq = 0.0;
            for k in 0..3 {
                if !uu[k].is_finite() {
                    nonfinite += 1;
                }
                momentum[k] += r * uu[k];
                usq += uu[k] * uu[k];
            }
            max_usq = max_usq.max(usq);
        }
        let sample = MonitorSample {
            step,
            mass,
            momentum,
            max_u: max_usq.sqrt(),
            nonfinite,
        };

        if nonfinite > 0 || !mass.is_finite() {
            self.violate(
                step,
                format!("step {step}: {nonfinite} non-finite field values"),
            );
        }
        match self.baseline_mass {
            None => self.baseline_mass = Some(mass),
            Some(m0) => {
                let drift = ((mass - m0) / m0).abs();
                // NaN drift must trip too, hence the explicit is_nan arm.
                if drift > self.cfg.mass_rel_tol || drift.is_nan() {
                    self.violate(step, format!(
                        "step {step}: mass drift {drift:.3e} exceeds {:.1e} (mass {mass} vs baseline {m0})",
                        self.cfg.mass_rel_tol
                    ));
                }
            }
        }
        if sample.max_u > self.cfg.max_velocity || sample.max_u.is_nan() {
            self.violate(
                step,
                format!(
                    "step {step}: max |u| = {} exceeds limit {}",
                    sample.max_u, self.cfg.max_velocity
                ),
            );
        }

        self.samples.push(sample);
        sample
    }

    fn violate(&mut self, step: u64, msg: String) {
        self.violations.push(msg);
        self.violation_steps.push(step);
    }

    /// Force a final sample at `step`, regardless of the cadence.
    ///
    /// Drivers sample only when [`PhysicsMonitor::due`] fires, so a run whose
    /// last step is not cadence-aligned would otherwise end with its tail
    /// unchecked — a NaN born after the final cadence-aligned step passed the
    /// monitor silently. Call this once after the last step. A no-op when the
    /// latest sample is already at `step` (the run ended on a sampling step).
    pub fn finish(&mut self, step: u64, rho: &[f64], u: &[[f64; 3]]) -> Option<MonitorSample> {
        if self.samples.last().map(|s| s.step) == Some(step) {
            return None;
        }
        Some(self.observe(step, rho, u))
    }

    /// Discard all samples and violations recorded after `step`.
    ///
    /// Used when a solver rolls back to a checkpoint taken at `step`: the
    /// replayed steps will re-observe, and state observed past the rollback
    /// point (including the fault that triggered it) must not linger. The
    /// mass baseline (taken at the first sample) is kept — checkpoints are
    /// only taken when the monitor is healthy, so the baseline predates any
    /// rollback target.
    pub fn rollback_to(&mut self, step: u64) {
        self.samples.retain(|s| s.step <= step);
        let keep: Vec<bool> = self.violation_steps.iter().map(|&s| s <= step).collect();
        let mut it = keep.iter();
        self.violations.retain(|_| *it.next().unwrap());
        self.violation_steps.retain(|&s| s <= step);
        if self.samples.is_empty() {
            self.baseline_mass = None;
        }
    }

    /// All samples so far.
    pub fn samples(&self) -> &[MonitorSample] {
        &self.samples
    }

    /// Relative mass drift of the latest sample vs. the baseline (0 before
    /// two samples exist).
    pub fn mass_drift(&self) -> f64 {
        match (self.baseline_mass, self.samples.last()) {
            (Some(m0), Some(s)) if m0 != 0.0 => ((s.mass - m0) / m0).abs(),
            _ => 0.0,
        }
    }

    /// Whether every sample satisfied every invariant.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Accumulated violation descriptions.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Summary as a JSON value (embedded in bench records).
    pub fn summary(&self) -> Value {
        let last = self.samples.last();
        Value::obj(vec![
            ("samples", Value::int(self.samples.len() as u64)),
            ("cadence", Value::int(self.cfg.cadence)),
            ("mass_drift", Value::num(self.mass_drift())),
            ("max_u", Value::num(last.map_or(f64::NAN, |s| s.max_u))),
            (
                "nonfinite",
                Value::int(self.samples.iter().map(|s| s.nonfinite).sum()),
            ),
            ("ok", Value::Bool(self.is_ok())),
            (
                "violations",
                Value::Arr(self.violations.iter().map(Value::str).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(n: usize, rho0: f64, ux: f64) -> (Vec<f64>, Vec<[f64; 3]>) {
        (vec![rho0; n], vec![[ux, 0.0, 0.0]; n])
    }

    #[test]
    fn conserved_run_is_ok() {
        let mut m = PhysicsMonitor::new(MonitorConfig::default());
        let (rho, u) = fields(100, 1.0, 0.05);
        for step in [0, 16, 32] {
            assert!(m.due(step));
            m.observe(step, &rho, &u);
        }
        assert!(!m.due(7));
        assert!(m.is_ok(), "{:?}", m.violations());
        assert_eq!(m.mass_drift(), 0.0);
        assert_eq!(m.samples().len(), 3);
        assert!((m.samples()[0].momentum[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mass_drift_is_flagged() {
        let mut m = PhysicsMonitor::new(MonitorConfig::default());
        let (rho, u) = fields(10, 1.0, 0.0);
        m.observe(0, &rho, &u);
        let (rho2, _) = fields(10, 1.0 + 1e-6, 0.0);
        m.observe(16, &rho2, &u);
        assert!(!m.is_ok());
        assert!(m.violations()[0].contains("mass drift"));
        assert!(m.mass_drift() > 1e-7);
    }

    #[test]
    fn nan_is_flagged() {
        let mut m = PhysicsMonitor::new(MonitorConfig::default());
        let (mut rho, mut u) = fields(10, 1.0, 0.0);
        rho[3] = f64::NAN;
        u[5][1] = f64::INFINITY;
        m.observe(0, &rho, &u);
        assert!(!m.is_ok());
        assert!(m.violations()[0].contains("2 non-finite"));
    }

    #[test]
    fn runaway_velocity_is_flagged() {
        let mut m = PhysicsMonitor::new(MonitorConfig::default());
        let (rho, u) = fields(10, 1.0, 0.9);
        m.observe(0, &rho, &u);
        assert!(!m.is_ok());
        assert!(m.violations()[0].contains("max |u|"));
    }

    #[test]
    fn finish_catches_nan_born_after_last_cadence_step() {
        // Cadence 16, 17-step run: the monitor samples at steps 0 and 16,
        // then a NaN appears at step 17. Without finish() the run looks
        // healthy; finish(17, ...) must flag it.
        let mut m = PhysicsMonitor::new(MonitorConfig::default());
        let (rho, u) = fields(10, 1.0, 0.05);
        for step in [0, 16] {
            assert!(m.due(step));
            m.observe(step, &rho, &u);
        }
        assert!(!m.due(17));
        assert!(m.is_ok());
        let (mut rho_bad, _) = fields(10, 1.0, 0.05);
        rho_bad[4] = f64::NAN;
        let s = m.finish(17, &rho_bad, &u).expect("forced final sample");
        assert_eq!(s.step, 17);
        assert_eq!(s.nonfinite, 1);
        assert!(!m.is_ok());
        assert_eq!(m.samples().len(), 3);
    }

    #[test]
    fn finish_is_a_noop_on_cadence_aligned_ends() {
        let mut m = PhysicsMonitor::new(MonitorConfig::default());
        let (rho, u) = fields(10, 1.0, 0.05);
        m.observe(0, &rho, &u);
        m.observe(16, &rho, &u);
        assert!(m.finish(16, &rho, &u).is_none());
        assert_eq!(m.samples().len(), 2);
    }

    #[test]
    fn rollback_truncates_samples_and_violations() {
        let mut m = PhysicsMonitor::new(MonitorConfig::default());
        let (rho, u) = fields(10, 1.0, 0.05);
        m.observe(0, &rho, &u);
        m.observe(16, &rho, &u);
        let (mut rho_bad, _) = fields(10, 1.0, 0.05);
        rho_bad[0] = f64::NAN;
        m.observe(32, &rho_bad, &u);
        assert!(!m.is_ok());
        assert_eq!(m.samples().len(), 3);

        m.rollback_to(16);
        assert!(m.is_ok(), "{:?}", m.violations());
        assert_eq!(m.samples().len(), 2);
        assert_eq!(m.samples().last().unwrap().step, 16);

        // Replay proceeds cleanly from the rollback point.
        m.observe(32, &rho, &u);
        assert!(m.is_ok());
        assert_eq!(m.mass_drift(), 0.0);

        // Rolling back to step 0 keeps only the baseline sample.
        m.rollback_to(0);
        assert_eq!(m.samples().len(), 1);
        assert_eq!(m.samples()[0].step, 0);
    }

    #[test]
    fn summary_is_valid_json() {
        let mut m = PhysicsMonitor::new(MonitorConfig {
            cadence: 4,
            ..MonitorConfig::default()
        });
        let (rho, u) = fields(10, 1.0, 0.1);
        m.observe(0, &rho, &u);
        let v = crate::json::parse(&m.summary().to_json()).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("cadence").unwrap().as_f64(), Some(4.0));
    }
}
