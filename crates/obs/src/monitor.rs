//! Per-step physics monitors: conservation and divergence guards.
//!
//! A [`PhysicsMonitor`] samples the macroscopic fields of a running solver
//! at a configurable cadence and checks three invariants:
//!
//! * **mass conservation** — total mass must stay within a relative
//!   tolerance of the first sample (valid on closed/periodic domains; raise
//!   the tolerance for inlet/outlet flows, which exchange mass with the
//!   boundary by design);
//! * **velocity bound** — `max |u|` must stay below a configured limit
//!   (lattice Boltzmann is only valid well below the lattice sound speed,
//!   and a runaway `|u|` precedes blow-up);
//! * **finiteness** — any NaN/∞ anywhere in the fields is an immediate
//!   violation.
//!
//! The cadence keeps hot paths hot: drivers call [`PhysicsMonitor::due`]
//! (one modulo) every step and only extract fields on sampling steps.

use crate::json::Value;

/// Monitor configuration.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Sample every `cadence` steps (step numbers divisible by it).
    pub cadence: u64,
    /// Relative total-mass drift tolerance vs. the first sample.
    pub mass_rel_tol: f64,
    /// Upper bound on `max |u|` (lattice units).
    pub max_velocity: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            cadence: 16,
            mass_rel_tol: 1e-10,
            max_velocity: 0.5,
        }
    }
}

/// One monitor sample.
#[derive(Clone, Copy, Debug)]
pub struct MonitorSample {
    pub step: u64,
    /// Total mass `Σ ρ` over all nodes (solids contribute zero).
    pub mass: f64,
    /// Total momentum `Σ ρ u`.
    pub momentum: [f64; 3],
    /// Maximum velocity magnitude.
    pub max_u: f64,
    /// Count of non-finite field values.
    pub nonfinite: u64,
}

/// Accumulating physics monitor.
#[derive(Clone, Debug, Default)]
pub struct PhysicsMonitor {
    cfg: MonitorConfig,
    baseline_mass: Option<f64>,
    samples: Vec<MonitorSample>,
    violations: Vec<String>,
}

impl PhysicsMonitor {
    /// Monitor with the default config (cadence 16, mass tol 1e-10,
    /// `max |u|` limit 0.5).
    pub fn new(cfg: MonitorConfig) -> Self {
        assert!(cfg.cadence >= 1, "cadence must be ≥ 1");
        PhysicsMonitor {
            cfg,
            baseline_mass: None,
            samples: Vec::new(),
            violations: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Whether step `step` is a sampling step.
    #[inline]
    pub fn due(&self, step: u64) -> bool {
        step.is_multiple_of(self.cfg.cadence)
    }

    /// Ingest one sample of the macroscopic fields. Solid nodes must report
    /// zero density/velocity (the convention of every solver's
    /// `density_field`/`velocity_field`), so no mask is needed.
    pub fn observe(&mut self, step: u64, rho: &[f64], u: &[[f64; 3]]) -> MonitorSample {
        let mut mass = 0.0;
        let mut momentum = [0.0f64; 3];
        let mut max_usq = 0.0f64;
        let mut nonfinite = 0u64;
        for (r, uu) in rho.iter().zip(u) {
            if !r.is_finite() {
                nonfinite += 1;
            }
            mass += r;
            let mut usq = 0.0;
            for k in 0..3 {
                if !uu[k].is_finite() {
                    nonfinite += 1;
                }
                momentum[k] += r * uu[k];
                usq += uu[k] * uu[k];
            }
            max_usq = max_usq.max(usq);
        }
        let sample = MonitorSample {
            step,
            mass,
            momentum,
            max_u: max_usq.sqrt(),
            nonfinite,
        };

        if nonfinite > 0 || !mass.is_finite() {
            self.violations
                .push(format!("step {step}: {nonfinite} non-finite field values"));
        }
        match self.baseline_mass {
            None => self.baseline_mass = Some(mass),
            Some(m0) => {
                let drift = ((mass - m0) / m0).abs();
                // NaN drift must trip too, hence the explicit is_nan arm.
                if drift > self.cfg.mass_rel_tol || drift.is_nan() {
                    self.violations.push(format!(
                        "step {step}: mass drift {drift:.3e} exceeds {:.1e} (mass {mass} vs baseline {m0})",
                        self.cfg.mass_rel_tol
                    ));
                }
            }
        }
        if sample.max_u > self.cfg.max_velocity || sample.max_u.is_nan() {
            self.violations.push(format!(
                "step {step}: max |u| = {} exceeds limit {}",
                sample.max_u, self.cfg.max_velocity
            ));
        }

        self.samples.push(sample);
        sample
    }

    /// All samples so far.
    pub fn samples(&self) -> &[MonitorSample] {
        &self.samples
    }

    /// Relative mass drift of the latest sample vs. the baseline (0 before
    /// two samples exist).
    pub fn mass_drift(&self) -> f64 {
        match (self.baseline_mass, self.samples.last()) {
            (Some(m0), Some(s)) if m0 != 0.0 => ((s.mass - m0) / m0).abs(),
            _ => 0.0,
        }
    }

    /// Whether every sample satisfied every invariant.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Accumulated violation descriptions.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Summary as a JSON value (embedded in bench records).
    pub fn summary(&self) -> Value {
        let last = self.samples.last();
        Value::obj(vec![
            ("samples", Value::int(self.samples.len() as u64)),
            ("cadence", Value::int(self.cfg.cadence)),
            ("mass_drift", Value::num(self.mass_drift())),
            ("max_u", Value::num(last.map_or(f64::NAN, |s| s.max_u))),
            (
                "nonfinite",
                Value::int(self.samples.iter().map(|s| s.nonfinite).sum()),
            ),
            ("ok", Value::Bool(self.is_ok())),
            (
                "violations",
                Value::Arr(self.violations.iter().map(Value::str).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(n: usize, rho0: f64, ux: f64) -> (Vec<f64>, Vec<[f64; 3]>) {
        (vec![rho0; n], vec![[ux, 0.0, 0.0]; n])
    }

    #[test]
    fn conserved_run_is_ok() {
        let mut m = PhysicsMonitor::new(MonitorConfig::default());
        let (rho, u) = fields(100, 1.0, 0.05);
        for step in [0, 16, 32] {
            assert!(m.due(step));
            m.observe(step, &rho, &u);
        }
        assert!(!m.due(7));
        assert!(m.is_ok(), "{:?}", m.violations());
        assert_eq!(m.mass_drift(), 0.0);
        assert_eq!(m.samples().len(), 3);
        assert!((m.samples()[0].momentum[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mass_drift_is_flagged() {
        let mut m = PhysicsMonitor::new(MonitorConfig::default());
        let (rho, u) = fields(10, 1.0, 0.0);
        m.observe(0, &rho, &u);
        let (rho2, _) = fields(10, 1.0 + 1e-6, 0.0);
        m.observe(16, &rho2, &u);
        assert!(!m.is_ok());
        assert!(m.violations()[0].contains("mass drift"));
        assert!(m.mass_drift() > 1e-7);
    }

    #[test]
    fn nan_is_flagged() {
        let mut m = PhysicsMonitor::new(MonitorConfig::default());
        let (mut rho, mut u) = fields(10, 1.0, 0.0);
        rho[3] = f64::NAN;
        u[5][1] = f64::INFINITY;
        m.observe(0, &rho, &u);
        assert!(!m.is_ok());
        assert!(m.violations()[0].contains("2 non-finite"));
    }

    #[test]
    fn runaway_velocity_is_flagged() {
        let mut m = PhysicsMonitor::new(MonitorConfig::default());
        let (rho, u) = fields(10, 1.0, 0.9);
        m.observe(0, &rho, &u);
        assert!(!m.is_ok());
        assert!(m.violations()[0].contains("max |u|"));
    }

    #[test]
    fn summary_is_valid_json() {
        let mut m = PhysicsMonitor::new(MonitorConfig {
            cadence: 4,
            ..MonitorConfig::default()
        });
        let (rho, u) = fields(10, 1.0, 0.1);
        m.observe(0, &rho, &u);
        let v = crate::json::parse(&m.summary().to_json()).unwrap();
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("cadence").unwrap().as_f64(), Some(4.0));
    }
}
