//! Small helpers for symmetric tensor index bookkeeping.
//!
//! Recursive regularization contracts symmetric rank-3 and rank-4 tensors
//! against Hermite polynomials; rather than storing every permutation, the
//! solvers keep one value per sorted index tuple and fold the permutation
//! count into a multiplicity factor. The helpers here generate those sorted
//! tuples and multiplicities, and are also used by the Gram analysis to
//! enumerate *candidate* components before deciding which are representable.

/// All sorted index pairs `(a ≤ b)` in dimension `d`.
pub fn sorted_pairs(d: usize) -> Vec<[usize; 2]> {
    let mut out = Vec::new();
    for a in 0..d {
        for b in a..d {
            out.push([a, b]);
        }
    }
    out
}

/// All sorted index triples `(a ≤ b ≤ g)` in dimension `d`.
pub fn sorted_triples(d: usize) -> Vec<[usize; 3]> {
    let mut out = Vec::new();
    for a in 0..d {
        for b in a..d {
            for g in b..d {
                out.push([a, b, g]);
            }
        }
    }
    out
}

/// All sorted index quadruples in dimension `d`.
pub fn sorted_quads(d: usize) -> Vec<[usize; 4]> {
    let mut out = Vec::new();
    for a in 0..d {
        for b in a..d {
            for g in b..d {
                for e in g..d {
                    out.push([a, b, g, e]);
                }
            }
        }
    }
    out
}

/// Number of distinct permutations of a sorted index tuple
/// (`n! / Π mult_k!`): the symmetric multiplicity used when contracting a
/// fully symmetric tensor stored with one value per sorted tuple.
pub fn multiplicity(indices: &[usize]) -> f64 {
    let n = indices.len();
    let mut fact = 1usize;
    for k in 2..=n {
        fact *= k;
    }
    // Divide by the factorial of each repeated-run length.
    let mut i = 0;
    while i < n {
        let mut run = 1;
        while i + run < n && indices[i + run] == indices[i] {
            run += 1;
        }
        for k in 2..=run {
            fact /= k;
        }
        i += run;
    }
    fact as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_counts() {
        assert_eq!(sorted_pairs(2).len(), 3);
        assert_eq!(sorted_pairs(3).len(), 6);
        assert_eq!(sorted_triples(2).len(), 4);
        assert_eq!(sorted_triples(3).len(), 10);
        assert_eq!(sorted_quads(2).len(), 5);
        assert_eq!(sorted_quads(3).len(), 15);
    }

    #[test]
    fn multiplicities() {
        assert_eq!(multiplicity(&[0, 0]), 1.0);
        assert_eq!(multiplicity(&[0, 1]), 2.0);
        assert_eq!(multiplicity(&[0, 0, 1]), 3.0);
        assert_eq!(multiplicity(&[0, 1, 2]), 6.0);
        assert_eq!(multiplicity(&[0, 0, 1, 1]), 6.0);
        assert_eq!(multiplicity(&[0, 0, 0, 1]), 4.0);
        assert_eq!(multiplicity(&[0, 0, 1, 2]), 12.0);
        assert_eq!(multiplicity(&[0, 0, 0, 0]), 1.0);
    }

    /// Multiplicities over all sorted tuples must sum to dⁿ (every raw index
    /// tuple is counted exactly once).
    #[test]
    fn multiplicities_partition_index_space() {
        for d in [2usize, 3] {
            let s3: f64 = sorted_triples(d).iter().map(|t| multiplicity(t)).sum();
            assert_eq!(s3, (d * d * d) as f64);
            let s4: f64 = sorted_quads(d).iter().map(|t| multiplicity(t)).sum();
            assert_eq!(s4, (d * d * d * d) as f64);
        }
    }
}
