//! Equilibria and moment-to-distribution maps.
//!
//! * [`equilibrium`] — the second-order Maxwell–Boltzmann equilibrium,
//!   eq. (4) of the paper.
//! * [`f_from_moments`] — the projective-regularization reconstruction,
//!   eq. (11): given post-collision moments `{ρ, u, Π*}`, rebuild the full
//!   distribution.
//! * [`f_from_moments_recursive`] — the recursive-regularization
//!   reconstruction, eq. (14), which additionally carries the representable
//!   third- and fourth-order Hermite coefficients `a⁽³⁾*`, `a⁽⁴⁾*`.
//!
//! Contractions over the symmetric tensors use one value per sorted index
//! tuple with the permutation multiplicity folded in, so e.g. the D2Q9
//! third-order term `(1/3!c_s⁶)·3·(H_xxy a_xxy + H_xyy a_xyy)` reproduces
//! the paper's `1/(2c_s⁶)` prefactor exactly.

use crate::gram::HigherBasis;
use crate::{hermite, sym_pairs, Lattice, PAIRS};

/// Fill `out` with the second-order equilibrium distribution, eq. (4):
/// `f_i^eq = ω_i ρ (1 + c·u/c_s² + ((c·u)² − c_s² u²) / (2 c_s⁴))`.
pub fn equilibrium<L: Lattice>(rho: f64, u: [f64; 3], out: &mut [f64]) {
    debug_assert_eq!(out.len(), L::Q);
    let usq = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
    for i in 0..L::Q {
        out[i] = equilibrium_i::<L>(i, rho, u, usq);
    }
}

/// Single-direction equilibrium; `usq = |u|²` is passed in so callers can
/// hoist it out of the direction loop.
#[inline(always)]
pub fn equilibrium_i<L: Lattice>(i: usize, rho: f64, u: [f64; 3], usq: f64) -> f64 {
    let cs2 = L::CS2;
    // Reciprocals of the lattice constants const-fold at monomorphization;
    // a divide per direction would not.
    let inv_cs2 = 1.0 / cs2;
    let inv_2cs4 = 1.0 / (2.0 * cs2 * cs2);
    let c = L::cf(i);
    let cu = c[0] * u[0] + c[1] * u[1] + c[2] * u[2];
    L::W[i] * rho * (1.0 + cu * inv_cs2 + (cu * cu - cs2 * usq) * inv_2cs4)
}

/// Precomputed per-direction contraction table for [`f_from_moments`].
///
/// The second-order term `H⁽²⁾:Π*` is a dot product between per-direction
/// constants `mult · H⁽²⁾_ab(c_i)` and the canonical Π* slots; both factors
/// of the constant depend only on the velocity set, so the product is built
/// once per lattice (via [`Lattice::h2map`]) instead of being re-derived for
/// every node. Each stored coefficient is the exact f64 product the inline
/// expression would have formed, and the contraction walks the same slot
/// order the inline loop did, so reconstruction results are bitwise
/// unchanged.
pub struct H2Map {
    /// Canonical [`PAIRS`] slots valid for this dimension, in loop order
    /// (2D: xx, xy, yy at canonical slots 0, 1, 3).
    ks: [usize; 6],
    /// Number of valid slots: `sym_pairs(D)`.
    nk: usize,
    /// `coeff[i][j] = mult · H⁽²⁾_ab(c_i)` for `(a, b) = PAIRS[ks[j]]`.
    coeff: Vec<[f64; 6]>,
    /// `c_i` as floats, so the hot loop skips the int→float conversion.
    c: Vec<[f64; 3]>,
}

impl H2Map {
    /// Build the table for lattice `L`. Called once per lattice by the
    /// [`Lattice::h2map`] implementations; hot code should go through that
    /// cached accessor instead.
    pub fn build<L: Lattice>() -> H2Map {
        let mut ks = [0usize; 6];
        let mut nk = 0;
        for (k, &(_, b)) in PAIRS.iter().enumerate() {
            if b < L::D {
                ks[nk] = k;
                nk += 1;
            }
        }
        debug_assert_eq!(nk, sym_pairs(L::D));
        let mut coeff = Vec::with_capacity(L::Q);
        let mut c = Vec::with_capacity(L::Q);
        for i in 0..L::Q {
            let ci = L::cf(i);
            let mut row = [0.0f64; 6];
            for (j, &k) in ks[..nk].iter().enumerate() {
                let (a, b) = PAIRS[k];
                let mult = if a == b { 1.0 } else { 2.0 };
                row[j] = mult * hermite::h2::<L>(ci, a, b);
            }
            coeff.push(row);
            c.push(ci);
        }
        H2Map { ks, nk, coeff, c }
    }

    /// Number of valid canonical slots (`sym_pairs(D)`).
    #[inline(always)]
    pub fn nk(&self) -> usize {
        self.nk
    }

    /// Canonical [`PAIRS`] slots valid for this dimension, in loop order.
    #[inline(always)]
    pub fn ks(&self) -> &[usize] {
        &self.ks[..self.nk]
    }

    /// Contraction coefficients `mult · H⁽²⁾_ab(c_i)` for direction `i`,
    /// parallel to [`H2Map::ks`].
    #[inline(always)]
    pub fn coeff(&self, i: usize) -> &[f64; 6] {
        &self.coeff[i]
    }

    /// `c_i` as floats.
    #[inline(always)]
    pub fn c(&self, i: usize) -> [f64; 3] {
        self.c[i]
    }
}

/// Reconstruct the distribution from post-collision moments `{ρ, u, Π*}`
/// (projective regularization, eq. 11):
///
/// `f_i* = ω_i ( ρ + H⁽¹⁾·ρu / c_s² + H⁽²⁾:Π* / 2c_s⁴ )`.
///
/// `pi_star` is in canonical [`PAIRS`] order (6 slots, 2D uses xx/xy/yy).
/// The `H⁽²⁾` contraction constants come from the lattice's cached
/// [`H2Map`].
pub fn f_from_moments<L: Lattice>(rho: f64, u: [f64; 3], pi_star: &[f64; 6], out: &mut [f64]) {
    debug_assert_eq!(out.len(), L::Q);
    let map = L::h2map();
    let cs2 = L::CS2;
    let inv_cs2 = 1.0 / cs2;
    let inv_2cs4 = 1.0 / (2.0 * cs2 * cs2);
    for i in 0..L::Q {
        let c = map.c[i];
        let cu = c[0] * u[0] + c[1] * u[1] + c[2] * u[2];
        // Second-order contraction with symmetric multiplicity.
        let row = &map.coeff[i];
        let mut h2pi = 0.0;
        for j in 0..map.nk {
            h2pi += row[j] * pi_star[map.ks[j]];
        }
        out[i] = L::W[i] * (rho + rho * cu * inv_cs2 + h2pi * inv_2cs4);
    }
}

/// Reconstruct the distribution from post-collision moments including
/// recursive third- and fourth-order Hermite coefficients (eq. 14):
///
/// `f_i* = ω_i ( ρ + H⁽¹⁾·ρu/c_s² + H⁽²⁾:Π*/2c_s⁴
///              + H⁽³⁾∴a⁽³⁾*/3!c_s⁶ + H⁽⁴⁾::a⁽⁴⁾*/4!c_s⁸ )`
///
/// `a3_star` / `a4_star` are parallel to [`Lattice::H3_COMPONENTS`] /
/// [`Lattice::H4_COMPONENTS`] (one value per sorted tuple; multiplicities
/// come from the component tables). The Hermite values come from a
/// lattice-orthogonalized [`HigherBasis`] so the higher-order terms cannot
/// alias onto the stored moments (see [`crate::gram`]); on D2Q9 the table
/// equals the raw polynomials and this is exactly the paper's eq. (14).
pub fn f_from_moments_recursive<L: Lattice>(
    rho: f64,
    u: [f64; 3],
    pi_star: &[f64; 6],
    a3_star: &[f64],
    a4_star: &[f64],
    basis: &HigherBasis,
    out: &mut [f64],
) {
    debug_assert_eq!(a3_star.len(), L::H3_COMPONENTS.len());
    debug_assert_eq!(a4_star.len(), L::H4_COMPONENTS.len());
    debug_assert_eq!(basis.h3.len(), L::H3_COMPONENTS.len());
    debug_assert_eq!(basis.h4.len(), L::H4_COMPONENTS.len());
    // Base: second-order reconstruction…
    f_from_moments::<L>(rho, u, pi_star, out);
    // …plus the higher-order Hermite contributions, via the precomputed
    // `(1/n! c_s^2n)·mult·h` contraction tables. The third-order walk skips
    // the exactly-zero coefficients ([`HigherBasis::nz3`]); the kept terms
    // accumulate in the same order with the same f64 products.
    let n4 = L::H4_COMPONENTS.len();
    for i in 0..L::Q {
        let mut extra = 0.0;
        for &(k, cf) in basis.nz3(i) {
            extra += cf * a3_star[k as usize];
        }
        for (k, &cf) in basis.cf4[i * n4..][..n4].iter().enumerate() {
            extra += cf * a4_star[k];
        }
        out[i] += L::W[i] * extra;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::Moments;
    use crate::{D2Q9, D3Q19, D3Q27};

    /// Equilibrium must conserve mass and momentum exactly.
    fn conservation<L: Lattice>(rho: f64, u: [f64; 3]) {
        let mut f = vec![0.0; L::Q];
        equilibrium::<L>(rho, u, &mut f);
        let s: f64 = f.iter().sum();
        assert!((s - rho).abs() < 1e-13);
        for a in 0..L::D {
            let j: f64 = (0..L::Q).map(|i| L::cf(i)[a] * f[i]).sum();
            assert!((j - rho * u[a]).abs() < 1e-13);
        }
    }

    #[test]
    fn equilibrium_conserves() {
        conservation::<D2Q9>(1.0, [0.1, -0.05, 0.0]);
        conservation::<D3Q19>(0.9, [0.02, 0.03, -0.04]);
        conservation::<D3Q27>(1.2, [0.05, 0.0, 0.01]);
    }

    /// At zero velocity the equilibrium is just the weights times density.
    #[test]
    fn equilibrium_at_rest() {
        let mut f = vec![0.0; D3Q19::Q];
        equilibrium::<D3Q19>(2.0, [0.0; 3], &mut f);
        for i in 0..D3Q19::Q {
            assert!((f[i] - 2.0 * D3Q19::W[i]).abs() < 1e-15);
        }
    }

    /// Reconstructing from the moments of an equilibrium must reproduce the
    /// equilibrium exactly: the moment representation is lossless for
    /// regularized distributions.
    fn reconstruction_is_lossless<L: Lattice>(rho: f64, u: [f64; 3]) {
        let mut feq = vec![0.0; L::Q];
        equilibrium::<L>(rho, u, &mut feq);
        let m = Moments::from_f::<L>(&feq);
        let mut rebuilt = vec![0.0; L::Q];
        f_from_moments::<L>(m.rho, m.u, &m.pi, &mut rebuilt);
        for i in 0..L::Q {
            assert!(
                (feq[i] - rebuilt[i]).abs() < 1e-13,
                "{} dir {i}: {} vs {}",
                L::NAME,
                feq[i],
                rebuilt[i]
            );
        }
    }

    #[test]
    fn moment_reconstruction_lossless() {
        reconstruction_is_lossless::<D2Q9>(1.0, [0.07, 0.02, 0.0]);
        reconstruction_is_lossless::<D3Q19>(1.05, [0.01, -0.03, 0.06]);
        reconstruction_is_lossless::<D3Q27>(0.95, [0.02, 0.02, 0.02]);
    }

    /// A regularized (second-order) distribution with a non-equilibrium Π
    /// must also round-trip exactly through moment space.
    #[test]
    fn regularized_nonequilibrium_roundtrip() {
        let rho = 1.02;
        let u = [0.03, -0.02, 0.0];
        let pi_eq = Moments::pi_eq(rho, u, 2);
        let mut pi = pi_eq;
        pi[0] += 1e-3; // Π_xx^neq
        pi[1] -= 2e-3; // Π_xy^neq
        pi[3] += 5e-4; // Π_yy^neq
        let mut f = vec![0.0; D2Q9::Q];
        f_from_moments::<D2Q9>(rho, u, &pi, &mut f);
        let m = Moments::from_f::<D2Q9>(&f);
        assert!((m.rho - rho).abs() < 1e-13);
        for a in 0..2 {
            assert!((m.u[a] - u[a]).abs() < 1e-13);
        }
        for k in [0usize, 1, 3] {
            assert!((m.pi[k] - pi[k]).abs() < 1e-13, "pi[{k}]");
        }
    }

    /// With zero higher-order coefficients, the recursive reconstruction
    /// reduces to the projective one.
    #[test]
    fn recursive_reduces_to_projective() {
        let rho = 1.0;
        let u = [0.05, 0.01, -0.02];
        let pi = Moments::pi_eq(rho, u, 3);
        let mut f_p = vec![0.0; D3Q19::Q];
        let mut f_r = vec![0.0; D3Q19::Q];
        f_from_moments::<D3Q19>(rho, u, &pi, &mut f_p);
        let a3 = vec![0.0; D3Q19::H3_COMPONENTS.len()];
        let a4 = vec![0.0; D3Q19::H4_COMPONENTS.len()];
        let basis = HigherBasis::new::<D3Q19>();
        f_from_moments_recursive::<D3Q19>(rho, u, &pi, &a3, &a4, &basis, &mut f_r);
        for i in 0..D3Q19::Q {
            assert!((f_p[i] - f_r[i]).abs() < 1e-15);
        }
    }

    /// The higher-order terms must not disturb the first three moments:
    /// H⁽³⁾ and H⁽⁴⁾ are orthogonal to H⁽⁰⁾, H⁽¹⁾, H⁽²⁾ on the lattice.
    #[test]
    fn higher_order_terms_are_invisible_to_stored_moments() {
        let rho = 1.0;
        let u = [0.04, -0.01, 0.02];
        let pi = Moments::pi_eq(rho, u, 3);
        let a3: Vec<f64> = (0..D3Q19::H3_COMPONENTS.len())
            .map(|k| 1e-3 * (k as f64 + 1.0))
            .collect();
        let a4: Vec<f64> = (0..D3Q19::H4_COMPONENTS.len())
            .map(|k| -2e-3 * (k as f64 + 1.0))
            .collect();
        let basis = HigherBasis::new::<D3Q19>();
        let mut f = vec![0.0; D3Q19::Q];
        f_from_moments_recursive::<D3Q19>(rho, u, &pi, &a3, &a4, &basis, &mut f);
        let m = Moments::from_f::<D3Q19>(&f);
        assert!((m.rho - rho).abs() < 1e-13);
        for a in 0..3 {
            assert!((m.u[a] - u[a]).abs() < 1e-13);
        }
        for k in 0..6 {
            assert!((m.pi[k] - pi[k]).abs() < 1e-13, "pi[{k}] perturbed");
        }
    }
}
