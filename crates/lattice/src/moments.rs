//! The moment space `M = {ρ, u, Π}` and mappings from distribution space.
//!
//! Implements eqs. (1)–(3) of the paper: density, velocity, and the
//! second-order Hermite moment `Π_αβ = Σ_i (c_iα c_iβ − c_s² δ_αβ) f_i`.
//! `Π` is stored as its `D(D+1)/2` independent components in [`crate::PAIRS`]
//! order.
//!
//! The flat layout used by the moment-representation GPU kernels is
//! `[ρ, u_x, …, Π_xx, …]`, `M = 1 + D + D(D+1)/2` doubles per node — 6 in 2D
//! and 10 in 3D, which is what gives the MR pattern its bandwidth advantage
//! (Table 2: 96 vs 144 B/F for D2Q9, 160 vs 304 for D3Q19).

use crate::{hermite, pair_index, sym_pairs, Lattice, PAIRS};

/// The first three velocity moments of a distribution at one lattice node.
///
/// `u` and `pi` are padded to 3D sizes; two-dimensional lattices leave the
/// out-of-plane entries zero.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Moments {
    /// Density `ρ` (eq. 1).
    pub rho: f64,
    /// Velocity `u = (Σ c_i f_i)/ρ` (eq. 2).
    pub u: [f64; 3],
    /// Second-order Hermite moment `Π` (eq. 3) in [`PAIRS`] order.
    pub pi: [f64; 6],
}

impl Moments {
    /// Compute `{ρ, u, Π}` from a distribution (eqs. 1–3).
    pub fn from_f<L: Lattice>(f: &[f64]) -> Self {
        debug_assert_eq!(f.len(), L::Q);
        let mut rho = 0.0;
        let mut j = [0.0f64; 3];
        for i in 0..L::Q {
            let fi = f[i];
            let c = L::cf(i);
            rho += fi;
            j[0] += c[0] * fi;
            j[1] += c[1] * fi;
            j[2] += c[2] * fi;
        }
        let inv_rho = 1.0 / rho;
        let u = [j[0] * inv_rho, j[1] * inv_rho, j[2] * inv_rho];
        let mut pi = [0.0f64; 6];
        for (k, &(a, b)) in PAIRS.iter().enumerate() {
            // Skip pairs outside the lattice dimension (PAIRS is 3D-ordered,
            // so 2D lattices use canonical slots 0, 1, 3).
            if b >= L::D {
                continue;
            }
            let mut s = 0.0;
            for i in 0..L::Q {
                s += hermite::h2::<L>(L::cf(i), a, b) * f[i];
            }
            pi[k] = s;
        }
        Moments { rho, u, pi }
    }

    /// Equilibrium second-order moment `Π^eq_αβ = ρ u_α u_β` (paper, after
    /// eq. 10).
    pub fn pi_eq(rho: f64, u: [f64; 3], d: usize) -> [f64; 6] {
        let mut pi = [0.0f64; 6];
        for (k, &(a, b)) in PAIRS.iter().enumerate() {
            if b < d {
                pi[k] = rho * u[a] * u[b];
            }
        }
        pi
    }

    /// Non-equilibrium part `Π^neq = Π − Π^eq` (eq. 8 evaluated in moment
    /// space).
    pub fn pi_neq(&self, d: usize) -> [f64; 6] {
        let eq = Self::pi_eq(self.rho, self.u, d);
        let mut out = [0.0f64; 6];
        for k in 0..6 {
            out[k] = self.pi[k] - eq[k];
        }
        out
    }

    /// Read a `Π` component by its tensor indices.
    #[inline]
    pub fn pi_at(&self, d: usize, a: usize, b: usize) -> f64 {
        self.pi[pair_index_3d(d, a, b)]
    }

    /// Pack into the flat moment-vector layout `[ρ, u…, Π…]` used by the
    /// moment-representation storage.
    pub fn pack<L: Lattice>(&self, out: &mut [f64]) {
        debug_assert_eq!(out.len(), L::M);
        out[0] = self.rho;
        out[1..1 + L::D].copy_from_slice(&self.u[..L::D]);
        let np = sym_pairs(L::D);
        for k in 0..np {
            out[1 + L::D + k] = self.pi[pairs_storage_to_canonical(L::D, k)];
        }
    }

    /// Inverse of [`Moments::pack`].
    pub fn unpack<L: Lattice>(m: &[f64]) -> Self {
        debug_assert_eq!(m.len(), L::M);
        let mut out = Moments {
            rho: m[0],
            ..Default::default()
        };
        out.u[..L::D].copy_from_slice(&m[1..1 + L::D]);
        let np = sym_pairs(L::D);
        for k in 0..np {
            out.pi[pairs_storage_to_canonical(L::D, k)] = m[1 + L::D + k];
        }
        out
    }
}

/// Map a (possibly 2D) pair index into the canonical 3D [`PAIRS`] slot.
///
/// In 2D the independent pairs are `xx, xy, yy`, which live at canonical
/// slots 0, 1, 3; in 3D storage order and canonical order coincide.
#[inline]
pub fn pairs_storage_to_canonical(d: usize, k: usize) -> usize {
    match d {
        3 => k,
        2 => match k {
            0 => 0, // xx
            1 => 1, // xy
            2 => 3, // yy
            _ => panic!("2D pair index out of range"),
        },
        _ => panic!("unsupported dimension {d}"),
    }
}

/// [`crate::pair_index`] generalized to return the canonical 3D slot.
#[inline]
pub fn pair_index_3d(d: usize, a: usize, b: usize) -> usize {
    match d {
        3 => pair_index(3, a, b),
        2 => pairs_storage_to_canonical(2, pair_index(2, a, b)),
        _ => panic!("unsupported dimension {d}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::equilibrium;
    use crate::{D2Q9, D3Q19};

    /// Moments of the equilibrium distribution must reproduce the inputs:
    /// ρ, u, and Π^eq = ρ u u.
    fn equilibrium_moments_roundtrip<L: Lattice>(rho: f64, u: [f64; 3]) {
        let mut f = vec![0.0; L::Q];
        equilibrium::<L>(rho, u, &mut f);
        let m = Moments::from_f::<L>(&f);
        assert!((m.rho - rho).abs() < 1e-12);
        for a in 0..L::D {
            assert!(
                (m.u[a] - u[a]).abs() < 1e-12,
                "u[{a}]: {} vs {}",
                m.u[a],
                u[a]
            );
        }
        let pi_eq = Moments::pi_eq(rho, u, L::D);
        for k in 0..6 {
            assert!(
                (m.pi[k] - pi_eq[k]).abs() < 1e-12,
                "{} pi[{k}]: {} vs {}",
                L::NAME,
                m.pi[k],
                pi_eq[k]
            );
        }
    }

    #[test]
    fn equilibrium_moments_2d() {
        equilibrium_moments_roundtrip::<D2Q9>(1.0, [0.05, -0.03, 0.0]);
        equilibrium_moments_roundtrip::<D2Q9>(1.1, [0.0, 0.0, 0.0]);
    }

    #[test]
    fn equilibrium_moments_3d() {
        equilibrium_moments_roundtrip::<D3Q19>(0.97, [0.04, 0.01, -0.02]);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let m = Moments {
            rho: 1.05,
            u: [0.02, -0.01, 0.005],
            pi: [0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
        };
        let mut flat = vec![0.0; D3Q19::M];
        m.pack::<D3Q19>(&mut flat);
        let back = Moments::unpack::<D3Q19>(&flat);
        assert_eq!(m, back);

        let mut m2 = m;
        m2.u[2] = 0.0;
        // 2D: out-of-plane Π entries are not stored; zero them for equality.
        m2.pi[2] = 0.0;
        m2.pi[4] = 0.0;
        m2.pi[5] = 0.0;
        let mut flat2 = vec![0.0; D2Q9::M];
        m2.pack::<D2Q9>(&mut flat2);
        assert_eq!(flat2.len(), 6);
        let back2 = Moments::unpack::<D2Q9>(&flat2);
        assert_eq!(m2, back2);
    }

    #[test]
    fn pi_neq_of_equilibrium_is_zero() {
        let mut f = vec![0.0; D2Q9::Q];
        equilibrium::<D2Q9>(1.0, [0.08, 0.02, 0.0], &mut f);
        let m = Moments::from_f::<D2Q9>(&f);
        for v in m.pi_neq(2) {
            assert!(v.abs() < 1e-13);
        }
    }
}
