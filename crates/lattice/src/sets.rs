//! Concrete velocity sets: D2Q9, D3Q19, D3Q27, D3Q15.
//!
//! Direction ordering convention: the rest velocity is index 0; moving
//! velocities are listed in opposite pairs where possible so streaming and
//! bounce-back tables stay compact. The exact ordering is part of the public
//! API — the GPU kernels index shared-memory slabs by these direction
//! numbers.

use crate::equilibrium::H2Map;
use crate::Lattice;
use std::sync::OnceLock;

/// The classic two-dimensional nine-velocity lattice.
///
/// Index layout: 0 rest; 1–4 axis (+x, +y, −x, −y); 5–8 diagonals
/// (+x+y, −x+y, −x−y, +x−y).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct D2Q9;

const W_D2Q9_R: f64 = 4.0 / 9.0;
const W_D2Q9_A: f64 = 1.0 / 9.0;
const W_D2Q9_D: f64 = 1.0 / 36.0;

impl Lattice for D2Q9 {
    const NAME: &'static str = "D2Q9";
    const D: usize = 2;
    const Q: usize = 9;
    const M: usize = 6;

    const C: &'static [[i32; 3]] = &[
        [0, 0, 0],
        [1, 0, 0],
        [0, 1, 0],
        [-1, 0, 0],
        [0, -1, 0],
        [1, 1, 0],
        [-1, 1, 0],
        [-1, -1, 0],
        [1, -1, 0],
    ];

    const W: &'static [f64] = &[
        W_D2Q9_R, W_D2Q9_A, W_D2Q9_A, W_D2Q9_A, W_D2Q9_A, W_D2Q9_D, W_D2Q9_D, W_D2Q9_D, W_D2Q9_D,
    ];

    const OPP: &'static [usize] = &[0, 3, 4, 1, 2, 7, 8, 5, 6];

    // Representable third-order Hermite components on D2Q9. H⁽³⁾_xxx and
    // H⁽³⁾_yyy vanish identically on the lattice (c³ = c for c ∈ {−1,0,1}
    // with c_s² = 1/3), leaving the mixed components.
    const H3_COMPONENTS: &'static [([usize; 3], f64)] = &[([0, 0, 1], 3.0), ([0, 1, 1], 3.0)];

    // H⁽⁴⁾_xxyy is the single non-aliased fourth-order component.
    const H4_COMPONENTS: &'static [([usize; 4], f64)] = &[([0, 0, 1, 1], 6.0)];

    fn h2map() -> &'static H2Map {
        static MAP: OnceLock<H2Map> = OnceLock::new();
        MAP.get_or_init(H2Map::build::<D2Q9>)
    }
}

/// The single-speed three-dimensional nineteen-velocity lattice used by the
/// paper's 3D evaluation.
///
/// Index layout: 0 rest; 1–6 axis pairs (±x, ±y, ±z); 7–18 face-diagonal
/// pairs.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct D3Q19;

const W_Q19_R: f64 = 1.0 / 3.0;
const W_Q19_A: f64 = 1.0 / 18.0;
const W_Q19_D: f64 = 1.0 / 36.0;

impl Lattice for D3Q19 {
    const NAME: &'static str = "D3Q19";
    const D: usize = 3;
    const Q: usize = 19;
    const M: usize = 10;

    const C: &'static [[i32; 3]] = &[
        [0, 0, 0],
        [1, 0, 0],
        [-1, 0, 0],
        [0, 1, 0],
        [0, -1, 0],
        [0, 0, 1],
        [0, 0, -1],
        [1, 1, 0],
        [-1, -1, 0],
        [1, -1, 0],
        [-1, 1, 0],
        [1, 0, 1],
        [-1, 0, -1],
        [1, 0, -1],
        [-1, 0, 1],
        [0, 1, 1],
        [0, -1, -1],
        [0, 1, -1],
        [0, -1, 1],
    ];

    const W: &'static [f64] = &[
        W_Q19_R, W_Q19_A, W_Q19_A, W_Q19_A, W_Q19_A, W_Q19_A, W_Q19_A, W_Q19_D, W_Q19_D, W_Q19_D,
        W_Q19_D, W_Q19_D, W_Q19_D, W_Q19_D, W_Q19_D, W_Q19_D, W_Q19_D, W_Q19_D, W_Q19_D,
    ];

    const OPP: &'static [usize] = &[
        0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13, 16, 15, 18, 17,
    ];

    // D3Q19 has no corner velocities, so H⁽³⁾_xyz ≡ 0 on the lattice and is
    // excluded; the six mixed two-index components survive.
    const H3_COMPONENTS: &'static [([usize; 3], f64)] = &[
        ([0, 0, 1], 3.0),
        ([0, 0, 2], 3.0),
        ([0, 1, 1], 3.0),
        ([1, 1, 2], 3.0),
        ([0, 2, 2], 3.0),
        ([1, 2, 2], 3.0),
    ];

    // Fourth order: the three doubly-paired components are representable;
    // components with an odd index count (xxyz, xyyz, xyzz) alias to
    // −c_s² H⁽²⁾ on this lattice and are excluded.
    const H4_COMPONENTS: &'static [([usize; 4], f64)] = &[
        ([0, 0, 1, 1], 6.0),
        ([0, 0, 2, 2], 6.0),
        ([1, 1, 2, 2], 6.0),
    ];

    fn h2map() -> &'static H2Map {
        static MAP: OnceLock<H2Map> = OnceLock::new();
        MAP.get_or_init(H2Map::build::<D3Q19>)
    }
}

/// The full three-dimensional twenty-seven-velocity lattice (paper §5:
/// future work on lattices with more components).
///
/// Index layout: 0 rest; 1–6 axis; 7–18 face diagonals (same order as
/// [`D3Q19`]); 19–26 corner pairs.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct D3Q27;

const W_Q27_R: f64 = 8.0 / 27.0;
const W_Q27_A: f64 = 2.0 / 27.0;
const W_Q27_D: f64 = 1.0 / 54.0;
const W_Q27_C: f64 = 1.0 / 216.0;

impl Lattice for D3Q27 {
    const NAME: &'static str = "D3Q27";
    const D: usize = 3;
    const Q: usize = 27;
    const M: usize = 10;

    const C: &'static [[i32; 3]] = &[
        [0, 0, 0],
        [1, 0, 0],
        [-1, 0, 0],
        [0, 1, 0],
        [0, -1, 0],
        [0, 0, 1],
        [0, 0, -1],
        [1, 1, 0],
        [-1, -1, 0],
        [1, -1, 0],
        [-1, 1, 0],
        [1, 0, 1],
        [-1, 0, -1],
        [1, 0, -1],
        [-1, 0, 1],
        [0, 1, 1],
        [0, -1, -1],
        [0, 1, -1],
        [0, -1, 1],
        [1, 1, 1],
        [-1, -1, -1],
        [1, 1, -1],
        [-1, -1, 1],
        [1, -1, 1],
        [-1, 1, -1],
        [-1, 1, 1],
        [1, -1, -1],
    ];

    const W: &'static [f64] = &[
        W_Q27_R, W_Q27_A, W_Q27_A, W_Q27_A, W_Q27_A, W_Q27_A, W_Q27_A, W_Q27_D, W_Q27_D, W_Q27_D,
        W_Q27_D, W_Q27_D, W_Q27_D, W_Q27_D, W_Q27_D, W_Q27_D, W_Q27_D, W_Q27_D, W_Q27_D, W_Q27_C,
        W_Q27_C, W_Q27_C, W_Q27_C, W_Q27_C, W_Q27_C, W_Q27_C, W_Q27_C,
    ];

    const OPP: &'static [usize] = &[
        0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13, 16, 15, 18, 17, 20, 19, 22, 21, 24, 23,
        26, 25,
    ];

    // With corner velocities present, H⁽³⁾_xyz is representable in addition
    // to the D3Q19 set.
    const H3_COMPONENTS: &'static [([usize; 3], f64)] = &[
        ([0, 0, 1], 3.0),
        ([0, 0, 2], 3.0),
        ([0, 1, 1], 3.0),
        ([1, 1, 2], 3.0),
        ([0, 2, 2], 3.0),
        ([1, 2, 2], 3.0),
        ([0, 1, 2], 6.0),
    ];

    const H4_COMPONENTS: &'static [([usize; 4], f64)] = &[
        ([0, 0, 1, 1], 6.0),
        ([0, 0, 2, 2], 6.0),
        ([1, 1, 2, 2], 6.0),
        ([0, 0, 1, 2], 12.0),
        ([0, 1, 1, 2], 12.0),
        ([0, 1, 2, 2], 12.0),
    ];

    fn h2map() -> &'static H2Map {
        static MAP: OnceLock<H2Map> = OnceLock::new();
        MAP.get_or_init(H2Map::build::<D3Q27>)
    }
}

/// The fifteen-velocity three-dimensional lattice (rest + axis + corners).
///
/// Included for completeness of the velocity-set library; the recursive
/// regularization component tables are not populated for it (only the
/// projective scheme is supported), because its reduced symmetry supports a
/// different third-order basis than the single-speed sets used in the paper.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct D3Q15;

const W_Q15_R: f64 = 2.0 / 9.0;
const W_Q15_A: f64 = 1.0 / 9.0;
const W_Q15_C: f64 = 1.0 / 72.0;

impl Lattice for D3Q15 {
    const NAME: &'static str = "D3Q15";
    const D: usize = 3;
    const Q: usize = 15;
    const M: usize = 10;

    const C: &'static [[i32; 3]] = &[
        [0, 0, 0],
        [1, 0, 0],
        [-1, 0, 0],
        [0, 1, 0],
        [0, -1, 0],
        [0, 0, 1],
        [0, 0, -1],
        [1, 1, 1],
        [-1, -1, -1],
        [1, 1, -1],
        [-1, -1, 1],
        [1, -1, 1],
        [-1, 1, -1],
        [-1, 1, 1],
        [1, -1, -1],
    ];

    const W: &'static [f64] = &[
        W_Q15_R, W_Q15_A, W_Q15_A, W_Q15_A, W_Q15_A, W_Q15_A, W_Q15_A, W_Q15_C, W_Q15_C, W_Q15_C,
        W_Q15_C, W_Q15_C, W_Q15_C, W_Q15_C, W_Q15_C,
    ];

    const OPP: &'static [usize] = &[0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13];

    const H3_COMPONENTS: &'static [([usize; 3], f64)] = &[];
    const H4_COMPONENTS: &'static [([usize; 4], f64)] = &[];

    fn h2map() -> &'static H2Map {
        static MAP: OnceLock<H2Map> = OnceLock::new();
        MAP.get_or_init(H2Map::build::<D3Q15>)
    }
}

/// The multi-speed thirty-nine-velocity lattice E(3,39) (Shan–Yuan–Chen),
/// the paper's §5 future-work example of a multi-speed set ("…and
/// multi-speed lattices such as D3Q39, because their increased runtime is
/// often cited as a reason for not using them").
///
/// Index layout: 0 rest; 1–6 axis speed 1; 7–14 corners (±1,±1,±1);
/// 15–20 axis speed 2; 21–32 face diagonals (±2,±2,0); 33–38 axis speed 3.
/// Its speed of sound differs from the single-speed sets: `c_s² = 2/3`,
/// and its streaming reach is 3 lattice spacings. The recursive
/// regularization component tables are not populated (projective only);
/// the moment-representation kernels require unit reach, so D3Q39 runs
/// through the standard representation (its projected MR roofline is
/// reported by the harness's future-work section).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct D3Q39;

const W_Q39_R: f64 = 1.0 / 12.0;
const W_Q39_A1: f64 = 1.0 / 12.0;
const W_Q39_C: f64 = 1.0 / 27.0;
const W_Q39_A2: f64 = 2.0 / 135.0;
const W_Q39_D2: f64 = 1.0 / 432.0;
const W_Q39_A3: f64 = 1.0 / 1620.0;

impl Lattice for D3Q39 {
    const NAME: &'static str = "D3Q39";
    const D: usize = 3;
    const Q: usize = 39;
    const M: usize = 10;
    const CS2: f64 = 2.0 / 3.0;
    const REACH: i32 = 3;

    const C: &'static [[i32; 3]] = &[
        [0, 0, 0],
        [1, 0, 0],
        [-1, 0, 0],
        [0, 1, 0],
        [0, -1, 0],
        [0, 0, 1],
        [0, 0, -1],
        [1, 1, 1],
        [-1, -1, -1],
        [1, 1, -1],
        [-1, -1, 1],
        [1, -1, 1],
        [-1, 1, -1],
        [-1, 1, 1],
        [1, -1, -1],
        [2, 0, 0],
        [-2, 0, 0],
        [0, 2, 0],
        [0, -2, 0],
        [0, 0, 2],
        [0, 0, -2],
        [2, 2, 0],
        [-2, -2, 0],
        [2, -2, 0],
        [-2, 2, 0],
        [2, 0, 2],
        [-2, 0, -2],
        [2, 0, -2],
        [-2, 0, 2],
        [0, 2, 2],
        [0, -2, -2],
        [0, 2, -2],
        [0, -2, 2],
        [3, 0, 0],
        [-3, 0, 0],
        [0, 3, 0],
        [0, -3, 0],
        [0, 0, 3],
        [0, 0, -3],
    ];

    const W: &'static [f64] = &[
        W_Q39_R, W_Q39_A1, W_Q39_A1, W_Q39_A1, W_Q39_A1, W_Q39_A1, W_Q39_A1, W_Q39_C, W_Q39_C,
        W_Q39_C, W_Q39_C, W_Q39_C, W_Q39_C, W_Q39_C, W_Q39_C, W_Q39_A2, W_Q39_A2, W_Q39_A2,
        W_Q39_A2, W_Q39_A2, W_Q39_A2, W_Q39_D2, W_Q39_D2, W_Q39_D2, W_Q39_D2, W_Q39_D2, W_Q39_D2,
        W_Q39_D2, W_Q39_D2, W_Q39_D2, W_Q39_D2, W_Q39_D2, W_Q39_D2, W_Q39_A3, W_Q39_A3, W_Q39_A3,
        W_Q39_A3, W_Q39_A3, W_Q39_A3,
    ];

    const OPP: &'static [usize] = &[
        0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13, 16, 15, 18, 17, 20, 19, 22, 21, 24, 23,
        26, 25, 28, 27, 30, 29, 32, 31, 34, 33, 36, 35, 38, 37,
    ];

    const H3_COMPONENTS: &'static [([usize; 3], f64)] = &[];
    const H4_COMPONENTS: &'static [([usize; 4], f64)] = &[];

    fn h2map() -> &'static H2Map {
        static MAP: OnceLock<H2Map> = OnceLock::new();
        MAP.get_or_init(H2Map::build::<D3Q39>)
    }
}
