//! Gram-matrix analysis: which Hermite components are representable on a
//! given lattice?
//!
//! Recursive regularization (paper §2.3) expands the distribution on "a
//! complete Hermite polynomial basis with Q moments". On a finite velocity
//! set not every continuous Hermite component survives: some vanish
//! identically (e.g. `H⁽³⁾_xxx` on single-speed lattices, where `c³ = c` and
//! `c_s² = 1/3`), and some *alias* onto lower-order polynomials (e.g.
//! `H⁽⁴⁾_xxxx = −H⁽²⁾_xx` on D2Q9) — including those would corrupt the
//! hydrodynamic moments.
//!
//! This module discovers the representable set numerically: it runs a
//! weighted Gram–Schmidt over the lattice inner product
//! `⟨g, h⟩ = Σ_i ω_i g(c_i) h(c_i)`, accepting a candidate component only if
//! its residual after projecting out all lower-order polynomials (and
//! previously accepted same-order components) has non-negligible norm.
//! The hand-written tables in [`crate::Lattice::H3_COMPONENTS`] /
//! [`H4_COMPONENTS`](crate::Lattice::H4_COMPONENTS) are validated against
//! this analysis in the test suite.

use crate::{hermite, tensor, Lattice};

/// Tolerance below which a residual norm is considered zero.
const TOL: f64 = 1e-10;

/// Result of the representability analysis for one lattice.
#[derive(Clone, Debug, PartialEq)]
pub struct Representable {
    /// Accepted sorted third-order index triples.
    pub h3: Vec<[usize; 3]>,
    /// Accepted sorted fourth-order index quadruples.
    pub h4: Vec<[usize; 4]>,
}

/// Evaluate a function of the velocity on every lattice direction.
fn sample<L: Lattice>(f: impl Fn([f64; 3]) -> f64) -> Vec<f64> {
    (0..L::Q).map(|i| f(L::cf(i))).collect()
}

/// Weighted inner product `Σ_i ω_i g_i h_i`.
fn dot<L: Lattice>(g: &[f64], h: &[f64]) -> f64 {
    (0..L::Q).map(|i| L::W[i] * g[i] * h[i]).sum()
}

/// Project out `basis` from `v` (modified Gram–Schmidt) and return the
/// squared norm of the residual, leaving the residual in `v`.
fn residual_norm2<L: Lattice>(v: &mut [f64], basis: &[Vec<f64>]) -> f64 {
    for b in basis {
        let nb = dot::<L>(b, b);
        if nb < TOL {
            continue;
        }
        let proj = dot::<L>(v, b) / nb;
        for i in 0..v.len() {
            v[i] -= proj * b[i];
        }
    }
    dot::<L>(v, v)
}

/// Run the full analysis for lattice `L`.
pub fn analyze<L: Lattice>() -> Representable {
    // Lower-order basis: H0, H1 components, H2 sorted pairs.
    let mut basis: Vec<Vec<f64>> = Vec::new();
    basis.push(sample::<L>(hermite::h0));
    for a in 0..L::D {
        basis.push(sample::<L>(|c| hermite::h1(c, a)));
    }
    for p in tensor::sorted_pairs(L::D) {
        basis.push(sample::<L>(|c| hermite::h2::<L>(c, p[0], p[1])));
    }

    let mut h3 = Vec::new();
    for t in tensor::sorted_triples(L::D) {
        let mut v = sample::<L>(|c| hermite::h3::<L>(c, t[0], t[1], t[2]));
        let raw = dot::<L>(&v, &v);
        if raw < TOL {
            continue; // vanishes identically
        }
        if residual_norm2::<L>(&mut v, &basis) > TOL {
            h3.push(t);
            basis.push(v);
        }
    }

    let mut h4 = Vec::new();
    for q in tensor::sorted_quads(L::D) {
        let mut v = sample::<L>(|c| hermite::h4::<L>(c, q[0], q[1], q[2], q[3]));
        let raw = dot::<L>(&v, &v);
        if raw < TOL {
            continue;
        }
        if residual_norm2::<L>(&mut v, &basis) > TOL {
            h4.push(q);
            basis.push(v);
        }
    }

    Representable { h3, h4 }
}

/// Lattice-orthogonalized third- and fourth-order Hermite basis tables.
///
/// On some lattices the raw fourth-order Hermite components are only
/// *partially* representable: e.g. on D3Q19, `H⁽⁴⁾_xxyy` has a non-zero
/// projection onto `H⁽²⁾_zz` (the lattice lacks the velocities to carry the
/// full tensor), so reconstructing with the raw polynomial would corrupt the
/// stored second-order moment. This table stores each component of
/// [`Lattice::H3_COMPONENTS`] / [`Lattice::H4_COMPONENTS`] with its
/// projections onto the hydrodynamic subspace `{H⁽⁰⁾, H⁽¹⁾, H⁽²⁾}` removed.
/// Together with `{1, c, H⁽²⁾}` these orthogonalized components span exactly
/// `Q` dimensions — the "complete Hermite polynomial basis with Q moments"
/// of paper §2.3 (D3Q19: 1 + 3 + 6 + 6 + 3 = 19).
///
/// On lattices where the raw components are already orthogonal (D2Q9), the
/// table reproduces the raw polynomials bit-for-bit up to roundoff, so the
/// reconstruction is exactly the paper's eq. (14).
#[derive(Clone, Debug)]
pub struct HigherBasis {
    /// `h3[k][i]` = orthogonalized third-order component `k` at direction `i`.
    pub h3: Vec<Vec<f64>>,
    /// `h4[k][i]` = orthogonalized fourth-order component `k` at direction `i`.
    pub h4: Vec<Vec<f64>>,
    /// Direction-major contraction coefficients for eq. (14):
    /// `cf3[i·n3 + k] = (1/(6 c_s⁶)) · mult_k · h3[k][i]` — the exact f64
    /// the reconstruction loop forms before multiplying by `a⁽³⁾*_k`,
    /// hoisted so the hot path reads one contiguous row per direction.
    pub cf3: Vec<f64>,
    /// Fourth-order analog: `cf4[i·n4 + k] = (1/(24 c_s⁸)) · mult_k · h4[k][i]`.
    pub cf4: Vec<f64>,
    /// Nonzero `cf3` entries, direction-major: direction `i`'s pairs
    /// `(k, cf3[i·n3+k])` with `cf3 ≠ 0` occupy
    /// `nz3[nz3_off[i]..nz3_off[i+1]]`, `k` ascending. The orthogonalized
    /// H⁽³⁾ tables are ~half exact zeros on D3Q19, and a `+0.0`-initialized
    /// accumulator is bit-unchanged by adding the `±0.0` a zero coefficient
    /// contributes, so every reconstruction path (scalar and lane-vectorized
    /// alike) walks this list instead of the dense row.
    pub nz3: Vec<(u32, f64)>,
    /// `Q + 1` offsets into [`HigherBasis::nz3`].
    pub nz3_off: Vec<u32>,
    /// Fused contraction list: direction `i`'s nonzero `cf3` pairs followed
    /// by its (dense) `cf4` pairs, with fourth-order component indices
    /// shifted by `n3` so both orders address one concatenated
    /// `a⁽³⁾* ‖ a⁽⁴⁾*` coefficient array. Entry order matches the separate
    /// nz3-then-cf4 walk exactly, so accumulating through this list is
    /// bitwise-identical to the two-loop form.
    pub nz34: Vec<(u32, f64)>,
    /// `Q + 1` offsets into [`HigherBasis::nz34`].
    pub nz34_off: Vec<u32>,
}

impl HigherBasis {
    /// Build the orthogonalized tables for lattice `L`. Cost is
    /// `O(Q·(n3+n4)·M)` once; solvers construct this at setup time.
    pub fn new<L: Lattice>() -> Self {
        // Hydrodynamic subspace to project out. H3 is odd and H2/H0 even, so
        // only H1 could alias into H3 and only H0/H2 into H4 — but we project
        // against all of them for uniformity (extra projections are zero).
        let mut hydro: Vec<Vec<f64>> = Vec::new();
        hydro.push(sample::<L>(hermite::h0));
        for a in 0..L::D {
            hydro.push(sample::<L>(|c| hermite::h1(c, a)));
        }
        for p in tensor::sorted_pairs(L::D) {
            hydro.push(sample::<L>(|c| hermite::h2::<L>(c, p[0], p[1])));
        }

        let mut h3 = Vec::with_capacity(L::H3_COMPONENTS.len());
        for &(idx, _) in L::H3_COMPONENTS {
            let mut v = sample::<L>(|c| hermite::h3::<L>(c, idx[0], idx[1], idx[2]));
            let n = residual_norm2::<L>(&mut v, &hydro);
            assert!(n > TOL, "{} H3 {idx:?} is not representable", L::NAME);
            h3.push(v);
        }
        let mut h4 = Vec::with_capacity(L::H4_COMPONENTS.len());
        for &(idx, _) in L::H4_COMPONENTS {
            let mut v = sample::<L>(|c| hermite::h4::<L>(c, idx[0], idx[1], idx[2], idx[3]));
            let n = residual_norm2::<L>(&mut v, &hydro);
            assert!(n > TOL, "{} H4 {idx:?} is not representable", L::NAME);
            h4.push(v);
        }
        let cs2 = L::CS2;
        let (cs6, cs8) = (cs2 * cs2 * cs2, cs2 * cs2 * cs2 * cs2);
        let c3 = 1.0 / (6.0 * cs6);
        let c4 = 1.0 / (24.0 * cs8);
        let mut cf3 = Vec::with_capacity(L::Q * h3.len());
        let mut cf4 = Vec::with_capacity(L::Q * h4.len());
        let mut nz3 = Vec::new();
        let mut nz3_off = Vec::with_capacity(L::Q + 1);
        nz3_off.push(0);
        let mut nz34 = Vec::new();
        let mut nz34_off = Vec::with_capacity(L::Q + 1);
        nz34_off.push(0);
        let n3 = h3.len() as u32;
        for i in 0..L::Q {
            for (k, &(_, mult)) in L::H3_COMPONENTS.iter().enumerate() {
                let cf = c3 * mult * h3[k][i];
                cf3.push(cf);
                if cf != 0.0 {
                    nz3.push((k as u32, cf));
                    nz34.push((k as u32, cf));
                }
            }
            nz3_off.push(nz3.len() as u32);
            for (k, &(_, mult)) in L::H4_COMPONENTS.iter().enumerate() {
                let cf = c4 * mult * h4[k][i];
                cf4.push(cf);
                nz34.push((n3 + k as u32, cf));
            }
            nz34_off.push(nz34.len() as u32);
        }
        HigherBasis {
            h3,
            h4,
            cf3,
            cf4,
            nz3,
            nz3_off,
            nz34,
            nz34_off,
        }
    }

    /// Nonzero third-order contraction coefficients for direction `i`
    /// (pairs of component index and `cf3` value, component-ascending).
    #[inline(always)]
    pub fn nz3(&self, i: usize) -> &[(u32, f64)] {
        &self.nz3[self.nz3_off[i] as usize..self.nz3_off[i + 1] as usize]
    }

    /// Fused third+fourth-order contraction pairs for direction `i`
    /// (fourth-order component indices offset by `n3`).
    #[inline(always)]
    pub fn nz34(&self, i: usize) -> &[(u32, f64)] {
        &self.nz34[self.nz34_off[i] as usize..self.nz34_off[i + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{D2Q9, D3Q15, D3Q19, D3Q27};

    fn sorted3(mut v: Vec<[usize; 3]>) -> Vec<[usize; 3]> {
        v.sort();
        v
    }
    fn sorted4(mut v: Vec<[usize; 4]>) -> Vec<[usize; 4]> {
        v.sort();
        v
    }

    /// The hand-listed recursive-regularization component tables must match
    /// the numerically derived representable sets exactly.
    fn table_matches_analysis<L: Lattice>() {
        let r = analyze::<L>();
        let table3: Vec<[usize; 3]> = L::H3_COMPONENTS.iter().map(|&(i, _)| i).collect();
        let table4: Vec<[usize; 4]> = L::H4_COMPONENTS.iter().map(|&(i, _)| i).collect();
        assert_eq!(sorted3(r.h3), sorted3(table3), "{} H3", L::NAME);
        assert_eq!(sorted4(r.h4), sorted4(table4), "{} H4", L::NAME);
    }

    #[test]
    fn d2q9_tables() {
        table_matches_analysis::<D2Q9>();
    }

    #[test]
    fn d3q19_tables() {
        table_matches_analysis::<D3Q19>();
    }

    #[test]
    fn d3q27_tables() {
        table_matches_analysis::<D3Q27>();
    }

    /// The multiplicities in the trait tables must agree with the generic
    /// permutation count.
    #[test]
    fn table_multiplicities() {
        fn check<L: Lattice>() {
            for &(idx, mult) in L::H3_COMPONENTS {
                assert_eq!(mult, tensor::multiplicity(&idx), "{} H3 {idx:?}", L::NAME);
            }
            for &(idx, mult) in L::H4_COMPONENTS {
                assert_eq!(mult, tensor::multiplicity(&idx), "{} H4 {idx:?}", L::NAME);
            }
        }
        check::<D2Q9>();
        check::<D3Q19>();
        check::<D3Q27>();
    }

    /// Expected counts: D2Q9 has 2+1, D3Q19 has 6+3, D3Q27 has 7+6.
    #[test]
    fn representable_counts() {
        let q9 = analyze::<D2Q9>();
        assert_eq!((q9.h3.len(), q9.h4.len()), (2, 1));
        let q19 = analyze::<D3Q19>();
        assert_eq!((q19.h3.len(), q19.h4.len()), (6, 3));
        let q27 = analyze::<D3Q27>();
        assert_eq!((q27.h3.len(), q27.h4.len()), (7, 6));
    }

    /// D3Q15 supports a *different* third-order basis (it has corners but no
    /// face diagonals); we only assert the analysis runs and returns
    /// something sensible, since the solver does not use RR on Q15.
    #[test]
    fn d3q15_analysis_runs() {
        let r = analyze::<D3Q15>();
        // xyz is representable on Q15 (corner velocities exist).
        assert!(r.h3.contains(&[0, 1, 2]));
    }

    /// The sequential Gram–Schmidt in `residual_norm2` is exact only if the
    /// hydrodynamic basis is mutually orthogonal — verify that it is, on
    /// every lattice we analyze.
    #[test]
    fn hydrodynamic_basis_is_mutually_orthogonal() {
        fn check<L: Lattice>() {
            let mut basis: Vec<Vec<f64>> = vec![sample::<L>(hermite::h0)];
            for a in 0..L::D {
                basis.push(sample::<L>(|c| hermite::h1(c, a)));
            }
            for p in tensor::sorted_pairs(L::D) {
                basis.push(sample::<L>(|c| hermite::h2::<L>(c, p[0], p[1])));
            }
            for i in 0..basis.len() {
                for j in 0..i {
                    let d = dot::<L>(&basis[i], &basis[j]);
                    assert!(d.abs() < 1e-13, "{} basis {i} vs {j}: {d}", L::NAME);
                }
                assert!(dot::<L>(&basis[i], &basis[i]) > 1e-6);
            }
        }
        check::<D2Q9>();
        check::<D3Q19>();
        check::<D3Q27>();
        check::<D3Q15>();
    }

    /// On D2Q9 the raw higher-order Hermite components are already
    /// lattice-orthogonal, so the orthogonalized table must equal the raw
    /// polynomial values (the reconstruction is then exactly eq. 14).
    #[test]
    fn d2q9_higher_basis_equals_raw() {
        let b = HigherBasis::new::<D2Q9>();
        for (k, &(idx, _)) in D2Q9::H3_COMPONENTS.iter().enumerate() {
            for i in 0..D2Q9::Q {
                let raw = hermite::h3::<D2Q9>(D2Q9::cf(i), idx[0], idx[1], idx[2]);
                assert!((b.h3[k][i] - raw).abs() < 1e-13);
            }
        }
        for (k, &(idx, _)) in D2Q9::H4_COMPONENTS.iter().enumerate() {
            for i in 0..D2Q9::Q {
                let raw = hermite::h4::<D2Q9>(D2Q9::cf(i), idx[0], idx[1], idx[2], idx[3]);
                assert!((b.h4[k][i] - raw).abs() < 1e-13);
            }
        }
    }

    /// The orthogonalized basis must be invisible to the hydrodynamic
    /// moments on every lattice — including D3Q19, where the *raw* H⁽⁴⁾
    /// components alias onto H⁽²⁾.
    #[test]
    fn higher_basis_is_hydro_invisible() {
        fn check<L: Lattice>() {
            let b = HigherBasis::new::<L>();
            let mut hydro: Vec<Vec<f64>> = vec![sample::<L>(hermite::h0)];
            for a in 0..L::D {
                hydro.push(sample::<L>(|c| hermite::h1(c, a)));
            }
            for p in tensor::sorted_pairs(L::D) {
                hydro.push(sample::<L>(|c| hermite::h2::<L>(c, p[0], p[1])));
            }
            for v in b.h3.iter().chain(b.h4.iter()) {
                for h in &hydro {
                    assert!(dot::<L>(v, h).abs() < 1e-13, "{}", L::NAME);
                }
            }
        }
        check::<D2Q9>();
        check::<D3Q19>();
        check::<D3Q27>();
    }

    /// Accepted components must be orthogonal to the hydrodynamic basis:
    /// adding them to a distribution must not change ρ, u, Π.
    #[test]
    fn accepted_components_orthogonal_to_hydrodynamics() {
        fn check<L: Lattice>() {
            let r = analyze::<L>();
            for t in &r.h3 {
                let v = sample::<L>(|c| hermite::h3::<L>(c, t[0], t[1], t[2]));
                let h0s = sample::<L>(hermite::h0);
                assert!(dot::<L>(&v, &h0s).abs() < 1e-12);
                for a in 0..L::D {
                    let h1s = sample::<L>(|c| hermite::h1(c, a));
                    assert!(dot::<L>(&v, &h1s).abs() < 1e-12);
                    for b in a..L::D {
                        let h2s = sample::<L>(|c| hermite::h2::<L>(c, a, b));
                        assert!(
                            dot::<L>(&v, &h2s).abs() < 1e-12,
                            "{} H3{t:?} vs H2[{a}{b}]",
                            L::NAME
                        );
                    }
                }
            }
        }
        check::<D2Q9>();
        check::<D3Q19>();
        check::<D3Q27>();
    }
}
