//! Discrete Hermite polynomial tensors evaluated on lattice velocities.
//!
//! The tensors are defined with respect to the lattice weight function, with
//! `c_s² = 1/3`:
//!
//! ```text
//! H⁽⁰⁾          = 1
//! H⁽¹⁾_α        = c_α
//! H⁽²⁾_αβ       = c_α c_β − c_s² δ_αβ
//! H⁽³⁾_αβγ      = c_α c_β c_γ − c_s² (c_α δ_βγ + c_β δ_αγ + c_γ δ_αβ)
//! H⁽⁴⁾_αβγδ     = c_α c_β c_γ c_δ
//!                 − c_s² (c_α c_β δ_γδ + … six terms …)
//!                 + c_s⁴ (δ_αβ δ_γδ + δ_αγ δ_βδ + δ_αδ δ_βγ)
//! ```
//!
//! These satisfy the discrete orthogonality relation
//! `Σ_i ω_i H⁽ᵐ⁾(c_i) H⁽ⁿ⁾(c_i) = 0` for `m ≠ n` **only for components that
//! are representable on the lattice** — see [`crate::gram`] for the
//! machinery that detects which ones are.

use crate::Lattice;

#[inline(always)]
fn delta(a: usize, b: usize) -> f64 {
    if a == b {
        1.0
    } else {
        0.0
    }
}

/// `H⁽⁰⁾(c) = 1`.
#[inline(always)]
pub fn h0(_c: [f64; 3]) -> f64 {
    1.0
}

/// `H⁽¹⁾_a(c) = c_a`.
#[inline(always)]
pub fn h1(c: [f64; 3], a: usize) -> f64 {
    c[a]
}

/// `H⁽²⁾_ab(c) = c_a c_b − c_s² δ_ab`, with `c_s²` from the lattice.
#[inline(always)]
pub fn h2<L: Lattice>(c: [f64; 3], a: usize, b: usize) -> f64 {
    c[a] * c[b] - L::CS2 * delta(a, b)
}

/// `H⁽³⁾_abg(c)`.
#[inline(always)]
pub fn h3<L: Lattice>(c: [f64; 3], a: usize, b: usize, g: usize) -> f64 {
    c[a] * c[b] * c[g] - L::CS2 * (c[a] * delta(b, g) + c[b] * delta(a, g) + c[g] * delta(a, b))
}

/// `H⁽⁴⁾_abgd(c)`.
#[inline(always)]
pub fn h4<L: Lattice>(c: [f64; 3], a: usize, b: usize, g: usize, d: usize) -> f64 {
    let cs2 = L::CS2;
    let cccc = c[a] * c[b] * c[g] * c[d];
    let cc_d = c[a] * c[b] * delta(g, d)
        + c[a] * c[g] * delta(b, d)
        + c[a] * c[d] * delta(b, g)
        + c[b] * c[g] * delta(a, d)
        + c[b] * c[d] * delta(a, g)
        + c[g] * c[d] * delta(a, b);
    let dd = delta(a, b) * delta(g, d) + delta(a, g) * delta(b, d) + delta(a, d) * delta(b, g);
    cccc - cs2 * cc_d + cs2 * cs2 * dd
}

/// Evaluate a Hermite component of arbitrary order 0..=4 given its sorted
/// index tuple. Convenience entry point for the Gram analysis; the solvers
/// call the order-specific functions directly.
pub fn eval<L: Lattice>(c: [f64; 3], indices: &[usize]) -> f64 {
    match *indices {
        [] => h0(c),
        [a] => h1(c, a),
        [a, b] => h2::<L>(c, a, b),
        [a, b, g] => h3::<L>(c, a, b, g),
        [a, b, g, d] => h4::<L>(c, a, b, g, d),
        _ => panic!("Hermite order {} not supported", indices.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lattice, D2Q9, D3Q19};

    /// The Hermite tensors must be totally symmetric in their indices.
    #[test]
    fn symmetry() {
        let c = [1.0, -1.0, 0.0];
        assert_eq!(h2::<D2Q9>(c, 0, 1), h2::<D2Q9>(c, 1, 0));
        assert_eq!(h3::<D3Q19>(c, 0, 1, 2), h3::<D3Q19>(c, 2, 0, 1));
        assert_eq!(h3::<D2Q9>(c, 0, 0, 1), h3::<D2Q9>(c, 0, 1, 0));
        assert_eq!(h4::<D2Q9>(c, 0, 0, 1, 1), h4::<D2Q9>(c, 1, 0, 1, 0));
        assert_eq!(h4::<D3Q19>(c, 0, 1, 2, 2), h4::<D3Q19>(c, 2, 2, 1, 0));
    }

    /// Weighted zeroth moments: Σ ω H⁽ⁿ⁾ = 0 for n ≥ 1 (orthogonality with
    /// H⁽⁰⁾).
    #[test]
    fn zero_mean() {
        fn run<L: Lattice>() {
            for a in 0..L::D {
                let s1: f64 = (0..L::Q).map(|i| L::W[i] * h1(L::cf(i), a)).sum();
                assert!(s1.abs() < 1e-14);
                for b in 0..L::D {
                    let s2: f64 = (0..L::Q).map(|i| L::W[i] * h2::<L>(L::cf(i), a, b)).sum();
                    assert!(s2.abs() < 1e-14, "{} H2[{a}{b}]", L::NAME);
                }
            }
        }
        run::<D2Q9>();
        run::<D3Q19>();
    }

    /// H⁽³⁾_xxx vanishes identically on single-speed lattices
    /// (c³ = c and c_s² = 1/3 ⟹ c³ − 3·(1/3)·c = 0).
    #[test]
    fn aliased_components_vanish() {
        for i in 0..D2Q9::Q {
            let c = D2Q9::cf(i);
            assert!(h3::<D2Q9>(c, 0, 0, 0).abs() < 1e-15);
            assert!(h3::<D2Q9>(c, 1, 1, 1).abs() < 1e-15);
        }
        // H3_xyz vanishes on D3Q19 (no corner velocities).
        for i in 0..D3Q19::Q {
            assert!(h3::<D3Q19>(D3Q19::cf(i), 0, 1, 2).abs() < 1e-15);
        }
    }

    #[test]
    fn eval_dispatches_by_order() {
        let c = [1.0, 1.0, 0.0];
        assert_eq!(eval::<D2Q9>(c, &[]), 1.0);
        assert_eq!(eval::<D2Q9>(c, &[0]), h1(c, 0));
        assert_eq!(eval::<D2Q9>(c, &[0, 1]), h2::<D2Q9>(c, 0, 1));
        assert_eq!(eval::<D2Q9>(c, &[0, 0, 1]), h3::<D2Q9>(c, 0, 0, 1));
        assert_eq!(eval::<D2Q9>(c, &[0, 0, 1, 1]), h4::<D2Q9>(c, 0, 0, 1, 1));
    }
}
