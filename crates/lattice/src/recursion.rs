//! Recursion relations for the higher-order Hermite coefficients used by
//! recursive regularization (paper §2.3, Malaspinas 2015).
//!
//! Only `{ρ, u, Π^neq}` are needed: to first order in Chapman–Enskog,
//!
//! ```text
//! a⁽³⁾_neq,αβγ  = u_α Π^neq_βγ + u_β Π^neq_αγ + u_γ Π^neq_αβ
//! a⁽⁴⁾_neq,αβγδ = Σ over the 6 index pairings  u u Π^neq
//! ```
//!
//! together with the equilibrium coefficients `a⁽³⁾_eq = ρ u u u` and
//! `a⁽⁴⁾_eq = ρ u u u u`. The collision then relaxes each coefficient with
//! the same `(1 − 1/τ)` factor as `Π` (eqs. 12–13).

use crate::moments::pair_index_3d;

/// Equilibrium third-order Hermite coefficient `a⁽³⁾_eq = ρ u_α u_β u_γ`.
#[inline(always)]
pub fn a3_eq(rho: f64, u: [f64; 3], idx: [usize; 3]) -> f64 {
    rho * u[idx[0]] * u[idx[1]] * u[idx[2]]
}

/// Non-equilibrium third-order coefficient from the recursion relation.
/// `pi_neq` is in canonical [`crate::PAIRS`] order.
#[inline(always)]
pub fn a3_neq(d: usize, u: [f64; 3], pi_neq: &[f64; 6], idx: [usize; 3]) -> f64 {
    let [a, b, g] = idx;
    u[a] * pi_neq[pair_index_3d(d, b, g)]
        + u[b] * pi_neq[pair_index_3d(d, a, g)]
        + u[g] * pi_neq[pair_index_3d(d, a, b)]
}

/// Equilibrium fourth-order Hermite coefficient `a⁽⁴⁾_eq = ρ u u u u`.
#[inline(always)]
pub fn a4_eq(rho: f64, u: [f64; 3], idx: [usize; 4]) -> f64 {
    rho * u[idx[0]] * u[idx[1]] * u[idx[2]] * u[idx[3]]
}

/// Non-equilibrium fourth-order coefficient: symmetrized `u u Π^neq` over
/// the six distinct pairings of four indices.
#[inline(always)]
pub fn a4_neq(d: usize, u: [f64; 3], pi_neq: &[f64; 6], idx: [usize; 4]) -> f64 {
    let [a, b, g, e] = idx;
    u[a] * u[b] * pi_neq[pair_index_3d(d, g, e)]
        + u[a] * u[g] * pi_neq[pair_index_3d(d, b, e)]
        + u[a] * u[e] * pi_neq[pair_index_3d(d, b, g)]
        + u[b] * u[g] * pi_neq[pair_index_3d(d, a, e)]
        + u[b] * u[e] * pi_neq[pair_index_3d(d, a, g)]
        + u[g] * u[e] * pi_neq[pair_index_3d(d, a, b)]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 2D closed forms from Malaspinas (2015), eqs. for D2Q9:
    /// `a³_xxy = 2 u_x Π_xy + u_y Π_xx`, `a³_xyy = 2 u_y Π_xy + u_x Π_yy`,
    /// `a⁴_xxyy = u_y² Π_xx + u_x² Π_yy + 4 u_x u_y Π_xy`.
    #[test]
    fn matches_malaspinas_2d_forms() {
        let u = [0.11, -0.07, 0.0];
        // Canonical 3D PAIRS order: xx, xy, xz, yy, yz, zz.
        let pi = [0.5, -0.3, 0.0, 0.2, 0.0, 0.0];
        let (pxx, pxy, pyy) = (pi[0], pi[1], pi[3]);

        let got_xxy = a3_neq(2, u, &pi, [0, 0, 1]);
        assert!((got_xxy - (2.0 * u[0] * pxy + u[1] * pxx)).abs() < 1e-15);

        let got_xyy = a3_neq(2, u, &pi, [0, 1, 1]);
        assert!((got_xyy - (2.0 * u[1] * pxy + u[0] * pyy)).abs() < 1e-15);

        let got_xxyy = a4_neq(2, u, &pi, [0, 0, 1, 1]);
        let want = u[1] * u[1] * pxx + u[0] * u[0] * pyy + 4.0 * u[0] * u[1] * pxy;
        assert!((got_xxyy - want).abs() < 1e-15);
    }

    /// Coefficients are symmetric under index permutation (they only depend
    /// on the multiset of indices).
    #[test]
    fn index_symmetry() {
        let u = [0.03, 0.05, -0.02];
        let pi = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
        // Summation order differs between permutations, so compare with a
        // roundoff tolerance rather than bitwise.
        let d3 = a3_neq(3, u, &pi, [0, 1, 2]) - a3_neq(3, u, &pi, [2, 0, 1]);
        assert!(d3.abs() < 1e-15);
        let d4 = a4_neq(3, u, &pi, [0, 0, 1, 2]) - a4_neq(3, u, &pi, [1, 0, 2, 0]);
        assert!(d4.abs() < 1e-15);
        assert_eq!(a3_eq(1.1, u, [0, 1, 2]), a3_eq(1.1, u, [2, 1, 0]));
        assert_eq!(a4_eq(1.1, u, [0, 1, 1, 2]), a4_eq(1.1, u, [1, 2, 1, 0]));
    }

    /// Zero Π^neq gives zero non-equilibrium coefficients.
    #[test]
    fn vanishes_at_equilibrium() {
        let u = [0.1, 0.2, 0.3];
        let pi = [0.0; 6];
        assert_eq!(a3_neq(3, u, &pi, [0, 0, 1]), 0.0);
        assert_eq!(a4_neq(3, u, &pi, [0, 0, 1, 1]), 0.0);
    }

    /// Zero velocity kills the equilibrium coefficients and reduces
    /// a³_neq to zero while a⁴_neq survives only through the uu terms
    /// (also zero).
    #[test]
    fn zero_velocity() {
        let pi = [0.7, 0.1, 0.0, -0.4, 0.0, 0.2];
        assert_eq!(a3_eq(1.0, [0.0; 3], [0, 0, 1]), 0.0);
        assert_eq!(a3_neq(3, [0.0; 3], &pi, [0, 0, 1]), 0.0);
        assert_eq!(a4_neq(3, [0.0; 3], &pi, [0, 0, 1, 1]), 0.0);
    }
}
