//! Lattice Boltzmann velocity sets and Hermite-space machinery.
//!
//! This crate provides the mathematical substrate shared by every solver in
//! the workspace:
//!
//! * the [`Lattice`] trait describing a discrete velocity set (D2Q9, D3Q19,
//!   D3Q27, D3Q15),
//! * Hermite polynomial tensors `H⁽⁰⁾ … H⁽⁴⁾` evaluated on lattice velocities
//!   ([`hermite`]),
//! * the moment space `{ρ, u, Π}` used by the moment-representation solvers
//!   ([`moments`]), implementing eqs. (1)–(3) and (8) of the paper,
//! * second-order Maxwell–Boltzmann equilibria (eq. 4) and the
//!   moment-to-distribution maps (eqs. 11 and 14) ([`equilibrium`]),
//! * a Gram-matrix analysis that *derives* which Hermite components are
//!   representable on a given lattice ([`gram`]), validating the hand-listed
//!   component sets used by recursive regularization.
//!
//! Everything is in lattice units: `Δx = Δt = 1`, `c_s² = 1/3`, and all
//! populations are `f64` (the paper's byte-traffic analysis assumes
//! double precision).

#![allow(clippy::needless_range_loop)] // indexed loops are the idiom in stencil kernels
pub mod equilibrium;
pub mod gram;
pub mod hermite;
pub mod moments;
pub mod recursion;
pub mod sets;
pub mod tensor;

pub use sets::{D2Q9, D3Q15, D3Q19, D3Q27, D3Q39};

/// Square of the lattice speed of sound shared by all single-speed lattices
/// in this crate.
pub const CS2: f64 = 1.0 / 3.0;

/// Fourth power of the lattice speed of sound.
pub const CS4: f64 = CS2 * CS2;

/// Sixth power of the lattice speed of sound.
pub const CS6: f64 = CS2 * CS2 * CS2;

/// Eighth power of the lattice speed of sound.
pub const CS8: f64 = CS4 * CS4;

/// A discrete velocity set (a "DdQq lattice").
///
/// Implementors are zero-sized marker types; all data lives in associated
/// constants so the solvers monomorphize to straight-line code.
///
/// Velocities are padded to three components; two-dimensional lattices keep
/// `c_z = 0` for every direction, which lets 2D and 3D code share the moment
/// and Hermite machinery.
pub trait Lattice: Copy + Clone + Default + Send + Sync + 'static {
    /// Human-readable name, e.g. `"D2Q9"`.
    const NAME: &'static str;

    /// Spatial dimension (2 or 3).
    const D: usize;

    /// Number of discrete velocities.
    const Q: usize;

    /// Number of stored moments in the moment representation:
    /// `1 + D + D(D+1)/2` (density, momentum, symmetric second-order tensor).
    const M: usize;

    /// Square of this lattice's speed of sound. `1/3` for the single-speed
    /// sets; multi-speed sets override it (D3Q39: `2/3`).
    const CS2: f64 = CS2;

    /// Largest velocity component magnitude (streaming reach). `1` for
    /// single-speed lattices; the moment-representation kernels require 1.
    const REACH: i32 = 1;

    /// Discrete velocities `c_i`, padded with `z = 0` in 2D.
    const C: &'static [[i32; 3]];

    /// Lattice weights `ω_i`; they sum to one.
    const W: &'static [f64];

    /// Index of the opposite velocity: `C[OPP[i]] == -C[i]`.
    const OPP: &'static [usize];

    /// Lattice-representable third-order Hermite components, as sorted index
    /// triples with their symmetric multiplicity (number of distinct index
    /// permutations). Used by recursive regularization (eq. 14); empty when
    /// the recursive scheme is not supported on this lattice.
    const H3_COMPONENTS: &'static [([usize; 3], f64)];

    /// Lattice-representable fourth-order Hermite components with
    /// multiplicities. See [`Lattice::H3_COMPONENTS`].
    const H4_COMPONENTS: &'static [([usize; 4], f64)];

    /// Velocity `c_i` as floating point.
    #[inline(always)]
    fn cf(i: usize) -> [f64; 3] {
        let c = Self::C[i];
        [c[0] as f64, c[1] as f64, c[2] as f64]
    }

    /// Whether the recursive-regularization component tables are populated.
    #[inline]
    fn supports_recursive() -> bool {
        !Self::H3_COMPONENTS.is_empty()
    }

    /// Cached second-order contraction table for
    /// [`equilibrium::f_from_moments`].
    ///
    /// Implementations return a per-lattice `OnceLock` initialized with
    /// [`equilibrium::H2Map::build`]. This is a required method (rather than
    /// a default) because a `static` inside a generic or default method body
    /// would be shared across every lattice.
    fn h2map() -> &'static equilibrium::H2Map;
}

/// Ordered symmetric index pairs `(α, β)` with `α ≤ β` for dimension `D`,
/// defining the storage layout of the second-order moment `Π`.
///
/// For `D = 2` the first three entries are used (`xx, xy, yy`); for `D = 3`
/// all six (`xx, xy, xz, yy, yz, zz`).
pub const PAIRS: [(usize, usize); 6] = [(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)];

/// Number of independent components of a symmetric rank-2 tensor in `D`
/// dimensions.
#[inline]
pub const fn sym_pairs(d: usize) -> usize {
    d * (d + 1) / 2
}

/// Index into the [`PAIRS`]-ordered symmetric storage for component
/// `(a, b)` in dimension `d`. Order of `a` and `b` does not matter.
#[inline]
pub fn pair_index(d: usize, a: usize, b: usize) -> usize {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    debug_assert!(hi < d);
    match d {
        2 => match (lo, hi) {
            (0, 0) => 0,
            (0, 1) => 1,
            (1, 1) => 2,
            _ => unreachable!("invalid 2D pair"),
        },
        3 => match (lo, hi) {
            (0, 0) => 0,
            (0, 1) => 1,
            (0, 2) => 2,
            (1, 1) => 3,
            (1, 2) => 4,
            (2, 2) => 5,
            _ => unreachable!("invalid 3D pair"),
        },
        _ => panic!("unsupported dimension {d}"),
    }
}

/// The symmetric multiplicity of pair `(a, b)`: 1 on the diagonal, 2 off it.
#[inline]
pub fn pair_multiplicity(a: usize, b: usize) -> f64 {
    if a == b {
        1.0
    } else {
        2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_basic<L: Lattice>() {
        assert_eq!(L::C.len(), L::Q);
        assert_eq!(L::W.len(), L::Q);
        assert_eq!(L::OPP.len(), L::Q);
        assert_eq!(L::M, 1 + L::D + sym_pairs(L::D));

        // Weights are a probability distribution.
        let sum: f64 = L::W.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-14,
            "{} weights sum to {sum}",
            L::NAME
        );
        assert!(L::W.iter().all(|&w| w > 0.0));

        // Opposite table is an involution mapping c to -c.
        for i in 0..L::Q {
            let o = L::OPP[i];
            assert_eq!(L::OPP[o], i);
            for a in 0..3 {
                assert_eq!(L::C[o][a], -L::C[i][a], "{} dir {i}", L::NAME);
            }
        }

        // 2D lattices stay in the plane.
        if L::D == 2 {
            assert!(L::C.iter().all(|c| c[2] == 0));
        }
    }

    /// First- and third-order velocity moments of the weights vanish; the
    /// second-order moment is cs² δ; the fourth satisfies the isotropy
    /// condition Σ w c⁴ = 3cs⁴ on the diagonal (Gaussian moments).
    fn check_weight_isotropy<L: Lattice>() {
        for a in 0..L::D {
            let m1: f64 = (0..L::Q).map(|i| L::W[i] * L::cf(i)[a]).sum();
            assert!(m1.abs() < 1e-14);
            for b in 0..L::D {
                let m2: f64 = (0..L::Q).map(|i| L::W[i] * L::cf(i)[a] * L::cf(i)[b]).sum();
                let expect = if a == b { L::CS2 } else { 0.0 };
                assert!((m2 - expect).abs() < 1e-14, "{} m2[{a}{b}]={m2}", L::NAME);
                for g in 0..L::D {
                    let m3: f64 = (0..L::Q)
                        .map(|i| L::W[i] * L::cf(i)[a] * L::cf(i)[b] * L::cf(i)[g])
                        .sum();
                    assert!(m3.abs() < 1e-14);
                }
            }
            let m4: f64 = (0..L::Q).map(|i| L::W[i] * L::cf(i)[a].powi(4)).sum();
            assert!(
                (m4 - 3.0 * L::CS2 * L::CS2).abs() < 1e-14,
                "{} m4={m4}",
                L::NAME
            );
        }
    }

    #[test]
    fn d2q9_structure() {
        check_basic::<D2Q9>();
        check_weight_isotropy::<D2Q9>();
    }

    #[test]
    fn d3q19_structure() {
        check_basic::<D3Q19>();
        check_weight_isotropy::<D3Q19>();
    }

    #[test]
    fn d3q27_structure() {
        check_basic::<D3Q27>();
        check_weight_isotropy::<D3Q27>();
    }

    #[test]
    fn d3q15_structure() {
        check_basic::<D3Q15>();
        check_weight_isotropy::<D3Q15>();
    }

    /// The multi-speed D3Q39 satisfies the same Gaussian-moment conditions
    /// with its own c_s² = 2/3 — a sixth-order quadrature.
    #[test]
    fn d3q39_structure() {
        check_basic::<D3Q39>();
        check_weight_isotropy::<D3Q39>();
        assert_eq!(D3Q39::CS2, 2.0 / 3.0);
        assert_eq!(D3Q39::REACH, 3);
        // Streaming reach: the largest velocity component is 3.
        let max_c = D3Q39::C
            .iter()
            .flat_map(|c| c.iter())
            .map(|v| v.abs())
            .max();
        assert_eq!(max_c, Some(3));
    }

    #[test]
    fn pair_index_roundtrip() {
        for d in [2usize, 3] {
            let n = sym_pairs(d);
            let mut seen = vec![false; n];
            for a in 0..d {
                for b in a..d {
                    let k = pair_index(d, a, b);
                    assert!(k < n);
                    assert!(!seen[k], "duplicate pair index");
                    seen[k] = true;
                    assert_eq!(k, pair_index(d, b, a));
                }
            }
            assert!(seen.into_iter().all(|s| s));
        }
    }

    #[test]
    fn moment_counts() {
        assert_eq!(D2Q9::M, 6);
        assert_eq!(D3Q19::M, 10);
        assert_eq!(D3Q27::M, 10);
    }
}
