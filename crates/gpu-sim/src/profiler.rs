//! Kernel-launch profiling: the substrate's stand-in for nvvp / nsight /
//! rocprof. Aggregates [`LaunchStats`] per kernel name and renders reports
//! with bytes-per-update and modeled bandwidth/throughput.

use crate::device::DeviceSpec;
use crate::efficiency::{self, Pattern};
use crate::exec::LaunchStats;
use crate::memory::Tally;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Accumulated statistics for one kernel.
#[derive(Clone, Debug, Default)]
pub struct KernelProfile {
    pub launches: u64,
    pub tally: Tally,
    /// Logical work items (fluid-node updates) attributed via
    /// [`Profiler::record`].
    pub work_items: u64,
}

impl KernelProfile {
    /// Requested bytes per work item (includes reads served by the L2).
    pub fn bytes_per_item(&self) -> f64 {
        if self.work_items == 0 {
            return f64::NAN;
        }
        self.tally.total_bytes() as f64 / self.work_items as f64
    }

    /// DRAM bytes per work item — the paper's B/F (Table 2).
    pub fn dram_bytes_per_item(&self) -> f64 {
        if self.work_items == 0 {
            return f64::NAN;
        }
        self.tally.dram_bytes() as f64 / self.work_items as f64
    }
}

/// Accumulated statistics for one interconnect link direction.
#[derive(Clone, Debug, Default)]
pub struct LinkProfile {
    pub transfers: u64,
    pub bytes: u64,
}

/// Thread-safe profile aggregator.
#[derive(Default)]
pub struct Profiler {
    profiles: Mutex<BTreeMap<String, KernelProfile>>,
    links: Mutex<BTreeMap<String, LinkProfile>>,
}

impl Profiler {
    /// Create an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a launch and the number of logical work items it performed.
    pub fn record(&self, stats: &LaunchStats, work_items: u64) {
        debug_assert!(
            work_items > 0,
            "kernel '{}' recorded with zero work items — per-item columns \
             would be undefined; attribute the launch to its fluid-node count",
            stats.kernel
        );
        let mut map = self.profiles.lock().unwrap();
        let p = map.entry(stats.kernel.clone()).or_default();
        p.launches += 1;
        p.tally.merge(&stats.tally);
        p.work_items += work_items;
    }

    /// Clear all kernel and link profiles, keeping the instance shared (the
    /// `Arc` handles in drivers stay valid across e.g. warmup/measure
    /// boundaries).
    pub fn reset(&self) {
        self.profiles.lock().unwrap().clear();
        self.links.lock().unwrap().clear();
    }

    /// Fold another profiler's accumulations into this one (same-named
    /// kernels and links merge; disjoint names concatenate). Used to combine
    /// per-run or per-shard profilers into one report.
    pub fn merge(&self, other: &Profiler) {
        {
            let theirs = other.profiles.lock().unwrap();
            let mut ours = self.profiles.lock().unwrap();
            for (name, p) in theirs.iter() {
                let dst = ours.entry(name.clone()).or_default();
                dst.launches += p.launches;
                dst.tally.merge(&p.tally);
                dst.work_items += p.work_items;
            }
        }
        let theirs = other.links.lock().unwrap();
        let mut ours = self.links.lock().unwrap();
        for (name, l) in theirs.iter() {
            let dst = ours.entry(name.clone()).or_default();
            dst.transfers += l.transfers;
            dst.bytes += l.bytes;
        }
    }

    /// Publish every kernel and link profile into a metrics registry,
    /// labeling each series with the kernel/link name plus `extra_labels`
    /// (typically `pattern`/`lattice`/`device`). Gauges carry the derived
    /// per-item quantities; counters the raw byte tallies.
    pub fn publish(&self, reg: &obs::MetricsRegistry, extra_labels: &[(&str, &str)]) {
        let map = self.profiles.lock().unwrap();
        for (name, p) in map.iter() {
            let mut labels: Vec<(&str, &str)> = vec![("kernel", name.as_str())];
            labels.extend_from_slice(extra_labels);
            reg.counter_add("profile_launches", &labels, p.launches);
            reg.counter_add("profile_bytes_read", &labels, p.tally.bytes_read);
            reg.counter_add("profile_bytes_written", &labels, p.tally.bytes_written);
            reg.counter_add("profile_dram_bytes_read", &labels, p.tally.dram_bytes_read);
            reg.counter_add("profile_l2_read_hits", &labels, p.tally.l2_read_hits);
            reg.gauge_set("profile_l2_hit_rate", &labels, p.tally.l2_hit_rate());
            reg.gauge_set("profile_bytes_per_item", &labels, p.bytes_per_item());
            reg.gauge_set(
                "profile_dram_bytes_per_item",
                &labels,
                p.dram_bytes_per_item(),
            );
        }
        drop(map);
        let links = self.links.lock().unwrap();
        for (name, l) in links.iter() {
            let mut labels: Vec<(&str, &str)> = vec![("link", name.as_str())];
            labels.extend_from_slice(extra_labels);
            reg.counter_add("link_bytes", &labels, l.bytes);
            reg.counter_add("link_transfers", &labels, l.transfers);
        }
    }

    /// Record an interconnect transfer on a named link direction (the
    /// multi-device analog of `record`; see `gpu_sim::interconnect`).
    pub fn record_link(&self, link: &str, bytes: u64, transfers: u64) {
        let mut map = self.links.lock().unwrap();
        let l = map.entry(link.to_string()).or_default();
        l.transfers += transfers;
        l.bytes += bytes;
    }

    /// Profile for one kernel, if recorded.
    pub fn get(&self, kernel: &str) -> Option<KernelProfile> {
        self.profiles.lock().unwrap().get(kernel).cloned()
    }

    /// Profile for one link direction, if recorded.
    pub fn get_link(&self, link: &str) -> Option<LinkProfile> {
        self.links.lock().unwrap().get(link).cloned()
    }

    /// Render a table of all kernels: requested and DRAM traffic, L2 hit
    /// rate, and bytes per work item (the DRAM column is the paper's B/F).
    pub fn report(&self) -> String {
        let map = self.profiles.lock().unwrap();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>14} {:>14} {:>8} {:>10} {:>12}",
            "kernel", "launches", "bytes read", "bytes written", "L2 hit", "B/item", "DRAM B/item"
        );
        // Zero work items would render the per-item columns as NaN; print a
        // dash instead (record() debug-asserts against it, but release-built
        // reports must still be readable).
        let per_item = |v: f64| {
            if v.is_finite() {
                format!("{v:.1}")
            } else {
                "-".to_string()
            }
        };
        for (name, p) in map.iter() {
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>14} {:>14} {:>7.1}% {:>10} {:>12}",
                name,
                p.launches,
                p.tally.bytes_read,
                p.tally.bytes_written,
                100.0 * p.tally.l2_hit_rate(),
                per_item(p.bytes_per_item()),
                per_item(p.dram_bytes_per_item())
            );
        }
        drop(map);
        let links = self.links.lock().unwrap();
        if !links.is_empty() {
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>14} {:>14}",
                "link", "xfers", "bytes", "B/xfer"
            );
            for (name, l) in links.iter() {
                let b_per_xfer = if l.transfers == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}", l.bytes as f64 / l.transfers as f64)
                };
                let _ = writeln!(
                    out,
                    "{:<24} {:>8} {:>14} {:>14}",
                    name, l.transfers, l.bytes, b_per_xfer
                );
            }
        }
        out
    }

    /// Modeled throughput for a kernel on a device (uses the measured B/F).
    pub fn modeled_mflups(
        &self,
        kernel: &str,
        dev: &DeviceSpec,
        pattern: Pattern,
        dim: usize,
        fluid_nodes: usize,
    ) -> Option<f64> {
        let p = self.get(kernel)?;
        Some(efficiency::modeled_mflups(
            dev,
            pattern,
            dim,
            p.dram_bytes_per_item(),
            fluid_nodes,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(kernel: &str, br: u64, bw: u64) -> LaunchStats {
        LaunchStats {
            kernel: kernel.to_string(),
            blocks: 1,
            threads_per_block: 32,
            phases: 1,
            tally: Tally {
                reads: br / 8,
                writes: bw / 8,
                bytes_read: br,
                bytes_written: bw,
                dram_bytes_read: br,
                l2_read_hits: 0,
            },
        }
    }

    #[test]
    fn aggregates_across_launches() {
        let p = Profiler::new();
        p.record(&stats("k", 800, 800), 10);
        p.record(&stats("k", 800, 800), 10);
        let k = p.get("k").unwrap();
        assert_eq!(k.launches, 2);
        assert_eq!(k.work_items, 20);
        assert_eq!(k.bytes_per_item(), 160.0);
    }

    #[test]
    fn report_lists_kernels() {
        let p = Profiler::new();
        p.record(&stats("alpha", 100, 100), 5);
        p.record(&stats("beta", 200, 200), 5);
        let r = p.report();
        assert!(r.contains("alpha"));
        assert!(r.contains("beta"));
        assert!(r.lines().count() >= 3);
    }

    #[test]
    fn reset_clears_kernels_and_links() {
        let p = Profiler::new();
        p.record(&stats("k", 800, 800), 10);
        p.record_link("L[0->1]", 4096, 1);
        p.reset();
        assert!(p.get("k").is_none());
        assert!(p.get_link("L[0->1]").is_none());
        // Still usable after reset.
        p.record(&stats("k", 80, 80), 1);
        assert_eq!(p.get("k").unwrap().launches, 1);
    }

    #[test]
    fn merge_folds_kernels_and_links() {
        let a = Profiler::new();
        a.record(&stats("k", 800, 800), 10);
        a.record_link("L[0->1]", 100, 1);
        let b = Profiler::new();
        b.record(&stats("k", 800, 800), 10);
        b.record(&stats("other", 80, 80), 1);
        b.record_link("L[0->1]", 50, 1);
        a.merge(&b);
        let k = a.get("k").unwrap();
        assert_eq!(k.launches, 2);
        assert_eq!(k.work_items, 20);
        assert_eq!(k.tally.bytes_read, 1600);
        assert_eq!(a.get("other").unwrap().launches, 1);
        let l = a.get_link("L[0->1]").unwrap();
        assert_eq!(l.bytes, 150);
        assert_eq!(l.transfers, 2);
    }

    #[test]
    fn report_renders_dash_for_zero_transfer_links() {
        let p = Profiler::new();
        p.record(&stats("k", 800, 800), 10);
        p.record_link("idle-link", 0, 0);
        let r = p.report();
        let idle_row = r.lines().find(|l| l.contains("idle-link")).unwrap();
        assert!(idle_row.trim_end().ends_with('-'), "{idle_row:?}");
        assert!(!r.contains("NaN"), "{r}");
    }

    #[test]
    fn publish_exports_labeled_series() {
        let p = Profiler::new();
        p.record(&stats("mr2d-p", 960, 0), 10);
        p.record_link("NVLink2[0->1]", 4096, 2);
        let reg = obs::MetricsRegistry::new();
        p.publish(&reg, &[("lattice", "D2Q9"), ("device", "V100")]);
        let labels = [
            ("kernel", "mr2d-p"),
            ("lattice", "D2Q9"),
            ("device", "V100"),
        ];
        assert_eq!(reg.counter("profile_launches", &labels), Some(1));
        assert_eq!(
            reg.gauge("profile_dram_bytes_per_item", &labels),
            Some(96.0)
        );
        let link_labels = [
            ("link", "NVLink2[0->1]"),
            ("lattice", "D2Q9"),
            ("device", "V100"),
        ];
        assert_eq!(reg.counter("link_bytes", &link_labels), Some(4096));
        assert_eq!(reg.counter("link_transfers", &link_labels), Some(2));
    }

    #[test]
    fn modeled_mflups_uses_measured_bpf() {
        let p = Profiler::new();
        // 160 B/item measured → matches ideal MR 3D.
        p.record(&stats("mr3", 80 * 16, 80 * 16), 16);
        let dev = DeviceSpec::v100();
        let m = p
            .modeled_mflups("mr3", &dev, Pattern::MomentProjective, 3, 16_000_000)
            .unwrap();
        assert!((m - 3800.0).abs() / 3800.0 < 0.03, "{m}");
        assert!(p
            .modeled_mflups("nope", &dev, Pattern::Standard, 2, 1)
            .is_none());
    }
}
