//! Kernel-launch profiling: the substrate's stand-in for nvvp / nsight /
//! rocprof. Aggregates [`LaunchStats`] per kernel name and renders reports
//! with bytes-per-update and modeled bandwidth/throughput.

use crate::device::DeviceSpec;
use crate::efficiency::{self, Pattern};
use crate::exec::LaunchStats;
use crate::memory::Tally;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Accumulated statistics for one kernel.
#[derive(Clone, Debug, Default)]
pub struct KernelProfile {
    pub launches: u64,
    pub tally: Tally,
    /// Logical work items (fluid-node updates) attributed via
    /// [`Profiler::record`].
    pub work_items: u64,
}

impl KernelProfile {
    /// Requested bytes per work item (includes reads served by the L2).
    pub fn bytes_per_item(&self) -> f64 {
        if self.work_items == 0 {
            return f64::NAN;
        }
        self.tally.total_bytes() as f64 / self.work_items as f64
    }

    /// DRAM bytes per work item — the paper's B/F (Table 2).
    pub fn dram_bytes_per_item(&self) -> f64 {
        if self.work_items == 0 {
            return f64::NAN;
        }
        self.tally.dram_bytes() as f64 / self.work_items as f64
    }
}

/// Accumulated statistics for one interconnect link direction.
#[derive(Clone, Debug, Default)]
pub struct LinkProfile {
    pub transfers: u64,
    pub bytes: u64,
}

/// Thread-safe profile aggregator.
#[derive(Default)]
pub struct Profiler {
    profiles: Mutex<BTreeMap<String, KernelProfile>>,
    links: Mutex<BTreeMap<String, LinkProfile>>,
}

impl Profiler {
    /// Create an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a launch and the number of logical work items it performed.
    pub fn record(&self, stats: &LaunchStats, work_items: u64) {
        let mut map = self.profiles.lock().unwrap();
        let p = map.entry(stats.kernel.clone()).or_default();
        p.launches += 1;
        p.tally.merge(&stats.tally);
        p.work_items += work_items;
    }

    /// Record an interconnect transfer on a named link direction (the
    /// multi-device analog of `record`; see `gpu_sim::interconnect`).
    pub fn record_link(&self, link: &str, bytes: u64, transfers: u64) {
        let mut map = self.links.lock().unwrap();
        let l = map.entry(link.to_string()).or_default();
        l.transfers += transfers;
        l.bytes += bytes;
    }

    /// Profile for one kernel, if recorded.
    pub fn get(&self, kernel: &str) -> Option<KernelProfile> {
        self.profiles.lock().unwrap().get(kernel).cloned()
    }

    /// Profile for one link direction, if recorded.
    pub fn get_link(&self, link: &str) -> Option<LinkProfile> {
        self.links.lock().unwrap().get(link).cloned()
    }

    /// Render a table of all kernels: requested and DRAM traffic, L2 hit
    /// rate, and bytes per work item (the DRAM column is the paper's B/F).
    pub fn report(&self) -> String {
        let map = self.profiles.lock().unwrap();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>14} {:>14} {:>8} {:>10} {:>12}",
            "kernel", "launches", "bytes read", "bytes written", "L2 hit", "B/item", "DRAM B/item"
        );
        for (name, p) in map.iter() {
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>14} {:>14} {:>7.1}% {:>10.1} {:>12.1}",
                name,
                p.launches,
                p.tally.bytes_read,
                p.tally.bytes_written,
                100.0 * p.tally.l2_hit_rate(),
                p.bytes_per_item(),
                p.dram_bytes_per_item()
            );
        }
        drop(map);
        let links = self.links.lock().unwrap();
        if !links.is_empty() {
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>14} {:>14}",
                "link", "xfers", "bytes", "B/xfer"
            );
            for (name, l) in links.iter() {
                let _ = writeln!(
                    out,
                    "{:<24} {:>8} {:>14} {:>14.1}",
                    name,
                    l.transfers,
                    l.bytes,
                    if l.transfers == 0 {
                        f64::NAN
                    } else {
                        l.bytes as f64 / l.transfers as f64
                    }
                );
            }
        }
        out
    }

    /// Modeled throughput for a kernel on a device (uses the measured B/F).
    pub fn modeled_mflups(
        &self,
        kernel: &str,
        dev: &DeviceSpec,
        pattern: Pattern,
        dim: usize,
        fluid_nodes: usize,
    ) -> Option<f64> {
        let p = self.get(kernel)?;
        Some(efficiency::modeled_mflups(
            dev,
            pattern,
            dim,
            p.dram_bytes_per_item(),
            fluid_nodes,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(kernel: &str, br: u64, bw: u64) -> LaunchStats {
        LaunchStats {
            kernel: kernel.to_string(),
            blocks: 1,
            threads_per_block: 32,
            phases: 1,
            tally: Tally {
                reads: br / 8,
                writes: bw / 8,
                bytes_read: br,
                bytes_written: bw,
                dram_bytes_read: br,
                l2_read_hits: 0,
            },
        }
    }

    #[test]
    fn aggregates_across_launches() {
        let p = Profiler::new();
        p.record(&stats("k", 800, 800), 10);
        p.record(&stats("k", 800, 800), 10);
        let k = p.get("k").unwrap();
        assert_eq!(k.launches, 2);
        assert_eq!(k.work_items, 20);
        assert_eq!(k.bytes_per_item(), 160.0);
    }

    #[test]
    fn report_lists_kernels() {
        let p = Profiler::new();
        p.record(&stats("alpha", 100, 100), 5);
        p.record(&stats("beta", 200, 200), 5);
        let r = p.report();
        assert!(r.contains("alpha"));
        assert!(r.contains("beta"));
        assert!(r.lines().count() >= 3);
    }

    #[test]
    fn modeled_mflups_uses_measured_bpf() {
        let p = Profiler::new();
        // 160 B/item measured → matches ideal MR 3D.
        p.record(&stats("mr3", 80 * 16, 80 * 16), 16);
        let dev = DeviceSpec::v100();
        let m = p
            .modeled_mflups("mr3", &dev, Pattern::MomentProjective, 3, 16_000_000)
            .unwrap();
        assert!((m - 3800.0).abs() / 3800.0 < 0.03, "{m}");
        assert!(p
            .modeled_mflups("nope", &dev, Pattern::Standard, 2, 1)
            .is_none());
    }
}
