//! Device descriptors. The two presets mirror Table 1 of the paper.

/// GPU vendor, used by the efficiency model.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Vendor {
    Nvidia,
    Amd,
}

/// Static description of a GPU device (Table 1).
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// Marketing name, e.g. "NVIDIA V100".
    pub name: &'static str,
    pub vendor: Vendor,
    /// Core clock in MHz.
    pub frequency_mhz: u32,
    /// CUDA cores / HIP (stream) cores.
    pub cores: u32,
    /// Streaming multiprocessors (NVIDIA) / compute units (AMD).
    pub sm_count: u32,
    /// Shared memory (LDS) capacity per SM/CU in bytes.
    pub shared_mem_per_sm: usize,
    /// L1 cache per SM/CU in bytes.
    pub l1_per_sm: usize,
    /// Unified L2 cache in bytes.
    pub l2_bytes: usize,
    /// Device memory capacity in bytes.
    pub memory_bytes: usize,
    /// Peak global-memory bandwidth in GB/s (10⁹ bytes per second).
    pub bandwidth_gbps: f64,
    /// SIMT width.
    pub warp_size: usize,
    /// Hardware limit on threads per block.
    pub max_threads_per_block: usize,
    /// Hardware limit on resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Hardware limit on resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Toolchain recorded for provenance (Table 1's compiler row).
    pub compiler: &'static str,
}

impl DeviceSpec {
    /// The NVIDIA (Volta) V100 of Table 1.
    pub fn v100() -> Self {
        DeviceSpec {
            name: "NVIDIA V100",
            vendor: Vendor::Nvidia,
            frequency_mhz: 1455,
            cores: 5120,
            sm_count: 80,
            shared_mem_per_sm: 96 * 1024,
            l1_per_sm: 96 * 1024,
            l2_bytes: 6144 * 1024,
            memory_bytes: 16 * 1024 * 1024 * 1024,
            bandwidth_gbps: 900.0,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            compiler: "nvcc v11.0.221",
        }
    }

    /// The AMD MI100 of Table 1.
    pub fn mi100() -> Self {
        DeviceSpec {
            name: "AMD MI100",
            vendor: Vendor::Amd,
            frequency_mhz: 1502,
            cores: 7680,
            sm_count: 120,
            shared_mem_per_sm: 64 * 1024,
            l1_per_sm: 16 * 1024,
            l2_bytes: 8192 * 1024,
            memory_bytes: 32 * 1024 * 1024 * 1024,
            bandwidth_gbps: 1228.86,
            warp_size: 64,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2560,
            max_blocks_per_sm: 40,
            compiler: "hipcc 4.2",
        }
    }

    /// An NVIDIA A100 (SXM, 80 GB) — one of the "emerging GPU
    /// architectures [with] significantly larger cache sizes" the paper's
    /// §5 expects to favor the moment representation (40 MB L2 vs the
    /// V100's 6 MB). No efficiency calibration exists for it (the paper
    /// measured only V100/MI100); use it for roofline projections.
    pub fn a100() -> Self {
        DeviceSpec {
            name: "NVIDIA A100",
            vendor: Vendor::Nvidia,
            frequency_mhz: 1410,
            cores: 6912,
            sm_count: 108,
            shared_mem_per_sm: 164 * 1024,
            l1_per_sm: 192 * 1024,
            l2_bytes: 40 * 1024 * 1024,
            memory_bytes: 80 * 1024 * 1024 * 1024,
            bandwidth_gbps: 2039.0,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            compiler: "nvcc 12.x",
        }
    }

    /// One GCD of an AMD MI250X — the MI100's successor, again for §5
    /// roofline projections only.
    pub fn mi250x_gcd() -> Self {
        DeviceSpec {
            name: "AMD MI250X (1 GCD)",
            vendor: Vendor::Amd,
            frequency_mhz: 1700,
            cores: 7040,
            sm_count: 110,
            shared_mem_per_sm: 64 * 1024,
            l1_per_sm: 16 * 1024,
            l2_bytes: 8 * 1024 * 1024,
            memory_bytes: 64 * 1024 * 1024 * 1024,
            bandwidth_gbps: 1638.0,
            warp_size: 64,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            compiler: "hipcc 5.x",
        }
    }

    /// Peak bandwidth in bytes per second.
    #[inline]
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        self.bandwidth_gbps * 1e9
    }

    /// Whether a simulation state of `bytes` fits in device memory.
    #[inline]
    pub fn fits_in_memory(&self, bytes: usize) -> bool {
        bytes <= self.memory_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let v = DeviceSpec::v100();
        assert_eq!(v.sm_count, 80);
        assert_eq!(v.cores, 5120);
        assert_eq!(v.shared_mem_per_sm, 98304);
        assert_eq!(v.bandwidth_gbps, 900.0);
        assert_eq!(v.memory_bytes, 16 << 30);

        let m = DeviceSpec::mi100();
        assert_eq!(m.sm_count, 120);
        assert_eq!(m.cores, 7680);
        assert_eq!(m.shared_mem_per_sm, 65536);
        assert_eq!(m.l1_per_sm, 16384);
        assert!((m.bandwidth_gbps - 1228.86).abs() < 1e-9);
        assert_eq!(m.memory_bytes, 32 << 30);
    }

    /// §5: the emerging devices carry much larger L2 caches — the A100's
    /// L2 alone holds the full moment state of ~0.5M 3D nodes.
    #[test]
    fn emerging_devices_have_bigger_caches() {
        let a = DeviceSpec::a100();
        let v = DeviceSpec::v100();
        assert!(a.l2_bytes > 6 * v.l2_bytes);
        let nodes_in_l2 = a.l2_bytes / (10 * 8);
        assert!(nodes_in_l2 > 500_000);
        let m = DeviceSpec::mi250x_gcd();
        assert!(m.bandwidth_gbps > DeviceSpec::mi100().bandwidth_gbps);
    }

    #[test]
    fn memory_capacity_check() {
        let v = DeviceSpec::v100();
        // The paper's example: 15M fluid points of D3Q19 in the ST pattern
        // need ~4.2 GB (2Q doubles each + neighbor index overheads aside).
        let st_bytes = 15_000_000usize * 2 * 19 * 8;
        assert!(v.fits_in_memory(st_bytes));
        assert!(!v.fits_in_memory(17 << 30));
    }
}
