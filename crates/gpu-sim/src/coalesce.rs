//! Warp-level coalescing analysis: sectors per request.
//!
//! GPUs service a warp's global-memory request in fixed-size sectors
//! (32 bytes on the architectures considered). A fully coalesced request by
//! a 32-lane warp reading consecutive `f64`s touches 8 sectors and uses
//! every byte; a strided or scattered pattern touches more sectors than it
//! uses bytes. This module quantifies that, standing in for the profiler
//! counters (nvvp/nsight/rocprof) the paper cites, and backs the SoA-vs-AoS
//! ablation bench.

/// Sector size used by the memory system model.
pub const SECTOR_BYTES: u64 = 32;

/// Number of distinct sectors touched by a set of byte addresses.
pub fn sectors_touched(addresses: &[u64], sector_bytes: u64) -> usize {
    let mut sectors: Vec<u64> = addresses.iter().map(|a| a / sector_bytes).collect();
    sectors.sort_unstable();
    sectors.dedup();
    sectors.len()
}

/// Report for one warp-sized request.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PatternReport {
    /// Sectors touched by the request.
    pub sectors: usize,
    /// Minimum sectors required for the bytes actually used.
    pub ideal_sectors: usize,
    /// Useful bytes / fetched bytes.
    pub efficiency: f64,
}

/// Analyze a warp request where lane `l` accesses element index
/// `index_of_lane(l)` of an array of `elem_bytes`-sized elements.
pub fn analyze_pattern(
    warp: usize,
    elem_bytes: u64,
    index_of_lane: impl Fn(usize) -> u64,
) -> PatternReport {
    let addresses: Vec<u64> = (0..warp).map(|l| index_of_lane(l) * elem_bytes).collect();
    let sectors = sectors_touched(&addresses, SECTOR_BYTES);
    let useful = warp as u64 * elem_bytes;
    let ideal_sectors = useful.div_ceil(SECTOR_BYTES) as usize;
    PatternReport {
        sectors,
        ideal_sectors,
        efficiency: useful as f64 / (sectors as u64 * SECTOR_BYTES) as f64,
    }
}

/// Coalescing of a structure-of-arrays access: lane `l` reads element
/// `base + l` — the layout the paper's §3.1 mandates for the distribution
/// array.
pub fn soa_report(warp: usize, elem_bytes: u64) -> PatternReport {
    analyze_pattern(warp, elem_bytes, |l| l as u64)
}

/// Coalescing of an array-of-structures access: lane `l` reads component
/// `c` of record `l`, i.e. element `l·record_len + c`.
pub fn aos_report(warp: usize, elem_bytes: u64, record_len: u64) -> PatternReport {
    analyze_pattern(warp, elem_bytes, |l| l as u64 * record_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soa_is_fully_coalesced() {
        let r = soa_report(32, 8);
        assert_eq!(r.sectors, 8); // 32 lanes × 8 B = 256 B = 8 sectors
        assert_eq!(r.sectors, r.ideal_sectors);
        assert!((r.efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn aos_d2q9_wastes_bandwidth() {
        // AoS with 9 doubles per record: lanes touch every 72nd byte.
        let r = aos_report(32, 8, 9);
        assert!(r.sectors > r.ideal_sectors);
        assert!(r.efficiency < 0.5, "efficiency {}", r.efficiency);
    }

    #[test]
    fn aos_degrades_with_record_size() {
        let q9 = aos_report(32, 8, 9).efficiency;
        let q19 = aos_report(32, 8, 19).efficiency;
        assert!(q19 <= q9);
    }

    #[test]
    fn wide_warp_mi100() {
        // 64-lane wavefront, consecutive doubles: still perfect.
        let r = soa_report(64, 8);
        assert_eq!(r.sectors, 16);
        assert!((r.efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn broadcast_touches_one_sector() {
        let r = analyze_pattern(32, 8, |_| 5);
        assert_eq!(r.sectors, 1);
    }

    #[test]
    fn misaligned_halo_read_costs_one_extra_sector() {
        // Shifted-by-one access (the pull scheme's x±1 neighbor reads).
        let r = analyze_pattern(32, 8, |l| l as u64 + 1);
        assert_eq!(r.sectors, 9); // one extra sector vs the aligned 8
        assert!(r.efficiency < 1.0);
    }
}
