//! Deterministic fault injection for the software GPU substrate.
//!
//! A [`FaultPlan`] is a fixed script of hardware-style failures — corrupted
//! global-memory writes, aborted kernel launches, dead interconnect links —
//! shared (via `Arc`) between the host test driver and the substrate hooks
//! in `memory.rs`, `exec.rs`, and `interconnect.rs`.
//!
//! Determinism is the design constraint: the recovery machinery built on
//! top of these faults must replay a rolled-back trajectory bitwise, so a
//! fault may not depend on thread scheduling. Each trigger therefore counts
//! events that are *sequentially ordered by construction*:
//!
//! * a memory fault fires on the k-th **write to its target cell index** —
//!   within a launch exactly one thread writes a given cell (the race
//!   checker enforces this), and launches are sequential, so the per-cell
//!   write sequence is deterministic even under pooled execution;
//! * a launch abort fires on the k-th **launch** — launches are issued from
//!   the host thread in program order;
//! * a link fault fails the next `n` **transfers in one direction** —
//!   transfers are issued from the host thread in program order.
//!
//! All hooks are *accounting-neutral*: a corrupted write is tallied exactly
//! like a clean one (the bytes did move — they just carried the wrong
//! pattern), an aborted launch reports a zero tally (nothing moved), and a
//! failed transfer records no link bytes (nothing arrived).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// What a memory fault writes over the victim value.
#[derive(Clone, Copy, Debug)]
pub enum MemFaultKind {
    /// Replace the value with a quiet NaN (all-ones for non-8-byte cells).
    Nan,
    /// Flip one bit of the stored value (modulo the cell width).
    BitFlip(u32),
    /// Panic mid-store — the deterministic stand-in for a crashed kernel.
    /// Fires deep inside the launch (spans open, buffers mid-update), the
    /// exact shape the scheduler's `catch_unwind` isolation must survive.
    Panic,
}

struct MemFault {
    index: usize,
    kind: MemFaultKind,
    /// Writes to `index` still to be let through before firing.
    skips: AtomicU64,
    fired: AtomicBool,
}

struct AbortFault {
    /// Launches still to be let through before firing.
    skips: AtomicU64,
    fired: AtomicBool,
}

struct LinkFault {
    from: usize,
    to: usize,
    /// Transfers left to fail; `u64::MAX` means the link is down for good.
    remaining: AtomicU64,
}

const PERMANENT: u64 = u64::MAX;

/// A deterministic script of injected faults. Build it mutably, wrap it in
/// an `Arc`, and attach it to buffers / devices / interconnects; the
/// substrate consults it through the immutable hook methods.
#[derive(Default)]
pub struct FaultPlan {
    mem: Vec<MemFault>,
    aborts: Vec<AbortFault>,
    links: Vec<LinkFault>,
    mem_fired: AtomicU64,
    aborts_fired: AtomicU64,
    link_fired: AtomicU64,
}

impl FaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Corrupt the value of the `(skip_writes + 1)`-th write to cell
    /// `index` (of every buffer the plan is attached to) into a NaN.
    pub fn inject_nan(&mut self, index: usize, skip_writes: u64) -> &mut Self {
        self.mem.push(MemFault {
            index,
            kind: MemFaultKind::Nan,
            skips: AtomicU64::new(skip_writes),
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Flip bit `bit` of the `(skip_writes + 1)`-th write to cell `index`.
    pub fn inject_bitflip(&mut self, index: usize, bit: u32, skip_writes: u64) -> &mut Self {
        self.mem.push(MemFault {
            index,
            kind: MemFaultKind::BitFlip(bit),
            skips: AtomicU64::new(skip_writes),
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Panic on the `(skip_writes + 1)`-th write to cell `index` — a
    /// deterministic in-kernel crash for exercising panic-isolation
    /// boundaries (the serve scheduler's `catch_unwind`).
    pub fn inject_panic(&mut self, index: usize, skip_writes: u64) -> &mut Self {
        self.mem.push(MemFault {
            index,
            kind: MemFaultKind::Panic,
            skips: AtomicU64::new(skip_writes),
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Abort the `(skip_launches + 1)`-th kernel launch on any device the
    /// plan is attached to (the launch returns a zero tally — the kernel
    /// never ran).
    pub fn abort_launch(&mut self, skip_launches: u64) -> &mut Self {
        self.aborts.push(AbortFault {
            skips: AtomicU64::new(skip_launches),
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Fail the next `times` transfers in the `from → to` direction
    /// (transient: the link comes back afterwards).
    pub fn fail_link(&mut self, from: usize, to: usize, times: u64) -> &mut Self {
        assert!(times != PERMANENT, "use fail_link_permanently");
        self.links.push(LinkFault {
            from,
            to,
            remaining: AtomicU64::new(times),
        });
        self
    }

    /// Take the `from → to` direction down for the rest of the run.
    pub fn fail_link_permanently(&mut self, from: usize, to: usize) -> &mut Self {
        self.links.push(LinkFault {
            from,
            to,
            remaining: AtomicU64::new(PERMANENT),
        });
        self
    }

    /// Hook for counted global-memory writes: possibly corrupt `value`
    /// in place before it is stored to cell `index`. Accounting-neutral —
    /// the caller tallies the write either way.
    pub fn corrupt<T: Copy>(&self, index: usize, value: &mut T) {
        for f in &self.mem {
            if f.index != index || f.fired.load(Ordering::Relaxed) {
                continue;
            }
            // Writes to one cell are sequentially ordered (one writer per
            // cell per launch, launches sequential), so the skip counter
            // sees an exact, deterministic write sequence.
            let skipped = f
                .skips
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| s.checked_sub(1))
                .is_ok();
            if skipped {
                continue;
            }
            f.fired.store(true, Ordering::Relaxed);
            self.mem_fired.fetch_add(1, Ordering::Relaxed);
            apply(f.kind, value);
        }
    }

    /// Hook for kernel launches: `true` means this launch must be aborted.
    /// Each pending abort's skip counter is advanced once per launch.
    pub fn should_abort(&self) -> bool {
        let mut abort = false;
        for f in &self.aborts {
            if f.fired.load(Ordering::Relaxed) {
                continue;
            }
            let skipped = f
                .skips
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| s.checked_sub(1))
                .is_ok();
            if skipped {
                continue;
            }
            f.fired.store(true, Ordering::Relaxed);
            self.aborts_fired.fetch_add(1, Ordering::Relaxed);
            abort = true;
        }
        abort
    }

    /// Hook for interconnect transfers: `Some(permanent)` means the
    /// `from → to` transfer must fail, with `permanent` telling the caller
    /// whether a retry can ever succeed.
    pub fn link_should_fail(&self, from: usize, to: usize) -> Option<bool> {
        let mut verdict = None;
        for f in &self.links {
            if f.from != from || f.to != to {
                continue;
            }
            if f.remaining.load(Ordering::Relaxed) == PERMANENT {
                self.link_fired.fetch_add(1, Ordering::Relaxed);
                return Some(true);
            }
            let pending = f
                .remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(1))
                .is_ok();
            if pending {
                self.link_fired.fetch_add(1, Ordering::Relaxed);
                verdict = Some(false);
            }
        }
        verdict
    }

    /// Memory faults that have fired so far.
    pub fn mem_faults_fired(&self) -> u64 {
        self.mem_fired.load(Ordering::Relaxed)
    }

    /// Launch aborts that have fired so far.
    pub fn aborts_fired(&self) -> u64 {
        self.aborts_fired.load(Ordering::Relaxed)
    }

    /// Link transfer failures inflicted so far (each failed attempt counts).
    pub fn link_faults_fired(&self) -> u64 {
        self.link_fired.load(Ordering::Relaxed)
    }

    /// Total faults inflicted so far, of every kind.
    pub fn total_fired(&self) -> u64 {
        self.mem_faults_fired() + self.aborts_fired() + self.link_faults_fired()
    }
}

/// Overwrite `value`'s bytes according to `kind`. Width-generic so the
/// same plan can corrupt `f64` lattices and `u32` link tables.
fn apply<T: Copy>(kind: MemFaultKind, value: &mut T) {
    let size = std::mem::size_of::<T>();
    if size == 0 {
        return;
    }
    // Sound for the plain-old-data cell types the substrate stores: we only
    // ever reinterpret the value's own bytes in place.
    let bytes = unsafe { std::slice::from_raw_parts_mut(value as *mut T as *mut u8, size) };
    match kind {
        MemFaultKind::Nan => {
            if size == 8 {
                bytes.copy_from_slice(&f64::NAN.to_le_bytes());
            } else {
                bytes.fill(0xFF);
            }
        }
        MemFaultKind::BitFlip(bit) => {
            let bit = bit as usize % (8 * size);
            bytes[bit / 8] ^= 1 << (bit % 8);
        }
        MemFaultKind::Panic => panic!("injected kernel panic"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_fires_on_the_kth_write_only() {
        let mut plan = FaultPlan::new();
        plan.inject_nan(3, 2); // skip two writes, corrupt the third
        for round in 0..4 {
            let mut v = 1.5f64;
            plan.corrupt(3, &mut v);
            if round == 2 {
                assert!(v.is_nan(), "third write must be corrupted");
            } else {
                assert_eq!(v, 1.5, "write {round} must pass through");
            }
            // Writes to other cells never advance the counter.
            let mut w = 2.5f64;
            plan.corrupt(4, &mut w);
            assert_eq!(w, 2.5);
        }
        assert_eq!(plan.mem_faults_fired(), 1);
    }

    #[test]
    fn bitflip_is_width_aware() {
        let mut plan = FaultPlan::new();
        plan.inject_bitflip(0, 0, 0);
        let mut v = 0u32;
        plan.corrupt(0, &mut v);
        assert_eq!(v, 1);

        let mut plan = FaultPlan::new();
        plan.inject_bitflip(0, 63, 0); // sign bit of an f64
        let mut x = 1.0f64;
        plan.corrupt(0, &mut x);
        assert_eq!(x, -1.0);

        // Bit index wraps modulo the cell width.
        let mut plan = FaultPlan::new();
        plan.inject_bitflip(0, 32, 0);
        let mut y = 0u32;
        plan.corrupt(0, &mut y);
        assert_eq!(y, 1);
    }

    #[test]
    fn injected_panic_fires_on_the_kth_write_only() {
        let mut plan = FaultPlan::new();
        plan.inject_panic(1, 1);
        let mut v = 0.5f64;
        plan.corrupt(1, &mut v); // skipped write passes through
        assert_eq!(v, 0.5);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut v = 0.5f64;
            plan.corrupt(1, &mut v);
        }));
        assert!(r.is_err(), "second write must panic");
        assert_eq!(plan.mem_faults_fired(), 1);
        // One-shot: later writes pass through again.
        let mut v = 2.5f64;
        plan.corrupt(1, &mut v);
        assert_eq!(v, 2.5);
    }

    #[test]
    fn abort_counts_launches() {
        let mut plan = FaultPlan::new();
        plan.abort_launch(1);
        assert!(!plan.should_abort());
        assert!(plan.should_abort());
        assert!(!plan.should_abort(), "abort is one-shot");
        assert_eq!(plan.aborts_fired(), 1);
    }

    #[test]
    fn transient_link_fault_exhausts() {
        let mut plan = FaultPlan::new();
        plan.fail_link(0, 1, 2);
        assert_eq!(plan.link_should_fail(1, 0), None, "direction matters");
        assert_eq!(plan.link_should_fail(0, 1), Some(false));
        assert_eq!(plan.link_should_fail(0, 1), Some(false));
        assert_eq!(plan.link_should_fail(0, 1), None, "fault exhausted");
        assert_eq!(plan.link_faults_fired(), 2);
    }

    #[test]
    fn permanent_link_fault_never_recovers() {
        let mut plan = FaultPlan::new();
        plan.fail_link_permanently(2, 3);
        for _ in 0..5 {
            assert_eq!(plan.link_should_fail(2, 3), Some(true));
        }
        assert_eq!(plan.link_should_fail(3, 2), None);
    }
}
