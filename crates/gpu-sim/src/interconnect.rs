//! Simulated device-to-device interconnect: N [`Gpu`] instances joined by
//! links with byte-exact per-direction traffic counters.
//!
//! The paper's performance argument is bandwidth, and the same argument
//! scales out: a halo node costs `M·8` bytes to exchange in moment space
//! instead of `Q·8` in distribution space. This module provides the
//! substrate half of that claim — a [`MultiGpu`] whose links tally every
//! transferred byte, the inter-device analog of [`crate::memory::Tally`] —
//! while `lbm-multi` provides the decomposition and exchange schedules.
//!
//! Link presets mirror the interconnects the paper's devices ship with:
//! NVLink 2.0 for the V100 (6 sub-links × 25 GB/s per direction) and
//! Infinity Fabric for the MI100 (3 links, ~92 GB/s aggregate per
//! direction). Bandwidths are per direction; links are full duplex.

use crate::device::{DeviceSpec, Vendor};
use crate::exec::Gpu;
use crate::fault::FaultPlan;
use crate::profiler::Profiler;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Typed interconnect failure, surfaced to the decomposition layer so the
/// recovery machinery can distinguish "retry may help" from "give up".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkError {
    /// The devices are not neighbors in the topology — a programming error
    /// in the exchange schedule, never retryable.
    NoRoute { from: usize, to: usize },
    /// The joining link refused the transfer (injected or modeled fault).
    /// Transient failures may succeed on retry; permanent ones never will.
    Down {
        from: usize,
        to: usize,
        permanent: bool,
    },
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::NoRoute { from, to } => {
                write!(f, "no link between devices {from} and {to}")
            }
            LinkError::Down {
                from,
                to,
                permanent,
            } => write!(
                f,
                "link {from}->{to} is down ({})",
                if *permanent { "permanent" } else { "transient" }
            ),
        }
    }
}

impl std::error::Error for LinkError {}

/// Bandwidth/latency description of one link class.
#[derive(Clone, Debug)]
pub struct LinkSpec {
    pub name: &'static str,
    /// Peak bandwidth per direction, GB/s (10⁹ bytes per second).
    pub bandwidth_gbps: f64,
    /// One-way transfer launch latency, µs.
    pub latency_us: f64,
}

impl LinkSpec {
    /// NVLink 2.0 (V100 generation): 6 sub-links × 25 GB/s per direction.
    pub fn nvlink2() -> Self {
        LinkSpec {
            name: "NVLink2",
            bandwidth_gbps: 150.0,
            latency_us: 1.8,
        }
    }

    /// Infinity Fabric (MI100 generation): 3 links, ~92 GB/s aggregate
    /// per direction.
    pub fn infinity_fabric() -> Self {
        LinkSpec {
            name: "InfinityFabric",
            bandwidth_gbps: 92.0,
            latency_us: 2.0,
        }
    }

    /// The link class a device of this spec would ship with.
    pub fn preset_for(dev: &DeviceSpec) -> Self {
        match dev.vendor {
            Vendor::Nvidia => LinkSpec::nvlink2(),
            Vendor::Amd => LinkSpec::infinity_fabric(),
        }
    }

    /// Peak bandwidth in bytes per second (one direction).
    #[inline]
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        self.bandwidth_gbps * 1e9
    }

    /// Modeled one-way time to move `bytes` over the link.
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        self.latency_us * 1e-6 + bytes as f64 / self.bandwidth_bytes_per_sec()
    }
}

/// One bidirectional link between devices `a` and `b`, with independent
/// per-direction byte/transfer counters (full duplex).
#[derive(Debug)]
pub struct Link {
    pub spec: LinkSpec,
    pub a: usize,
    pub b: usize,
    fwd_bytes: AtomicU64,
    fwd_transfers: AtomicU64,
    rev_bytes: AtomicU64,
    rev_transfers: AtomicU64,
}

impl Link {
    fn new(spec: LinkSpec, a: usize, b: usize) -> Self {
        Link {
            spec,
            a,
            b,
            fwd_bytes: AtomicU64::new(0),
            fwd_transfers: AtomicU64::new(0),
            rev_bytes: AtomicU64::new(0),
            rev_transfers: AtomicU64::new(0),
        }
    }

    /// Whether this link joins the (unordered) device pair.
    fn joins(&self, x: usize, y: usize) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }

    /// Bytes moved in the `a`→`b` direction.
    pub fn bytes_fwd(&self) -> u64 {
        self.fwd_bytes.load(Ordering::Relaxed)
    }

    /// Bytes moved in the `b`→`a` direction.
    pub fn bytes_rev(&self) -> u64 {
        self.rev_bytes.load(Ordering::Relaxed)
    }

    /// Total bytes moved over the link (both directions).
    pub fn bytes_total(&self) -> u64 {
        self.bytes_fwd() + self.bytes_rev()
    }

    /// Total transfers issued on the link (both directions).
    pub fn transfers_total(&self) -> u64 {
        self.fwd_transfers.load(Ordering::Relaxed) + self.rev_transfers.load(Ordering::Relaxed)
    }

    /// Modeled time for one exchange step that moves `fwd` and `rev` bytes
    /// in opposite directions: full duplex, so the directions overlap.
    pub fn exchange_time_s(&self, fwd: u64, rev: u64) -> f64 {
        self.spec
            .transfer_time_s(fwd)
            .max(self.spec.transfer_time_s(rev))
    }

    fn record(&self, from: usize, bytes: u64) {
        if from == self.a {
            self.fwd_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.fwd_transfers.fetch_add(1, Ordering::Relaxed);
        } else {
            self.rev_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.rev_transfers.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// N simulated devices of one spec joined in a ring (the chain degenerate
/// case for N = 2, no links for N = 1). Devices are homogeneous, as in the
/// paper's single-node multi-GPU platforms.
pub struct MultiGpu {
    devices: Vec<Gpu>,
    links: Vec<Link>,
    spec: DeviceSpec,
    link_spec: LinkSpec,
    profiler: Option<Arc<Profiler>>,
    obs: Option<Arc<obs::Obs>>,
    faults: Option<Arc<FaultPlan>>,
}

impl MultiGpu {
    /// Build `n` devices joined ring-wise with the vendor's preset link.
    pub fn ring(spec: DeviceSpec, n: usize) -> Self {
        assert!(n > 0, "need at least one device");
        let link_spec = LinkSpec::preset_for(&spec);
        let devices = (0..n).map(|_| Gpu::new(spec.clone())).collect();
        // Neighbor pairs: (i, i+1) plus the wrap link for n > 2. For n = 2
        // the wrap pair equals (0, 1), so one link carries both cuts.
        let mut links = Vec::new();
        for i in 0..n.saturating_sub(1) {
            links.push(Link::new(link_spec.clone(), i, i + 1));
        }
        if n > 2 {
            links.push(Link::new(link_spec.clone(), n - 1, 0));
        }
        MultiGpu {
            devices,
            links,
            spec,
            link_spec,
            profiler: None,
            obs: None,
            faults: None,
        }
    }

    /// Attach a fault-injection plan to the link layer *and* every device
    /// (launch aborts). Apply after the thread/threshold builders, which
    /// rebuild the devices.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        for g in &mut self.devices {
            g.set_fault_plan(plan.clone());
        }
        self.faults = Some(plan);
    }

    /// Builder-style [`MultiGpu::set_fault_plan`].
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.set_fault_plan(plan);
        self
    }

    /// Limit each device's CPU-thread pool (determinism in tests).
    pub fn with_cpu_threads(mut self, n: usize) -> Self {
        self.devices = self
            .devices
            .drain(..)
            .map(|g| g.with_cpu_threads(n))
            .collect();
        self
    }

    /// Override each device's minimum pooled-launch size (see
    /// `Gpu::with_parallel_threshold`); `0` forces pooling for every
    /// multi-block launch.
    pub fn with_parallel_threshold(mut self, items: usize) -> Self {
        self.devices = self
            .devices
            .drain(..)
            .map(|g| g.with_parallel_threshold(items))
            .collect();
        self
    }

    /// Mirror link traffic into a shared profiler's link section.
    pub fn with_profiler(mut self, p: Arc<Profiler>) -> Self {
        self.profiler = Some(p);
        self
    }

    /// Attach one observability hub to every device and to the link layer:
    /// kernel launches on any device trace/publish into it, and each
    /// transfer adds to per-link byte/transfer counters.
    pub fn with_obs(mut self, obs: Arc<obs::Obs>) -> Self {
        self.set_obs(obs);
        self
    }

    /// In-place [`MultiGpu::with_obs`] (the `Simulation` trait's
    /// `set_obs` path reaches devices through this).
    pub fn set_obs(&mut self, obs: Arc<obs::Obs>) {
        for g in &mut self.devices {
            g.set_obs(obs.clone());
        }
        self.obs = Some(obs);
    }

    /// The attached observability hub, if any.
    pub fn obs(&self) -> Option<&Arc<obs::Obs>> {
        self.obs.as_ref()
    }

    /// Attach (or clear) the fleet trace context on every device, so each
    /// shard's kernel spans carry the owning job's identity.
    pub fn set_trace_ctx(&mut self, ctx: Option<obs::fleet::TraceCtx>) {
        for g in &mut self.devices {
            g.set_trace_ctx(ctx.clone());
        }
    }

    /// The fleet trace context attached to the devices, if any.
    pub fn trace_ctx(&self) -> Option<&obs::fleet::TraceCtx> {
        self.devices.first().and_then(|g| g.trace_ctx())
    }

    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    pub fn device(&self, i: usize) -> &Gpu {
        &self.devices[i]
    }

    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    pub fn link_spec(&self) -> &LinkSpec {
        &self.link_spec
    }

    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The link joining devices `x` and `y`, if they are neighbors.
    pub fn link_between(&self, x: usize, y: usize) -> Option<&Link> {
        self.links.iter().find(|l| l.joins(x, y))
    }

    /// Record one `from`→`to` transfer of `bytes` over the joining link,
    /// surfacing failures as typed errors: [`LinkError::NoRoute`] when the
    /// devices are not neighbors, [`LinkError::Down`] when a fault plan
    /// fails the transfer. Failed transfers record **nothing** on the link
    /// counters (the bytes never arrived), so a successful retry tallies
    /// exactly once — byte-identical to a fault-free run.
    pub fn try_record_transfer(&self, from: usize, to: usize, bytes: u64) -> Result<(), LinkError> {
        let link = self
            .link_between(from, to)
            .ok_or(LinkError::NoRoute { from, to })?;
        if let Some(permanent) = self
            .faults
            .as_ref()
            .and_then(|p| p.link_should_fail(from, to))
        {
            if let Some(o) = &self.obs {
                let name = format!("{}[{from}->{to}]", link.spec.name);
                let labels = [("link", name.as_str())];
                o.metrics.counter_add("link_transfer_failures", &labels, 1);
                o.tracer.instant(
                    "fault",
                    "link-failure",
                    &[("link", name.clone()), ("permanent", permanent.to_string())],
                );
            }
            return Err(LinkError::Down {
                from,
                to,
                permanent,
            });
        }
        link.record(from, bytes);
        let name = format!("{}[{from}->{to}]", link.spec.name);
        if let Some(p) = &self.profiler {
            p.record_link(&name, bytes, 1);
        }
        if let Some(o) = &self.obs {
            let labels = [("link", name.as_str())];
            o.metrics.counter_add("link_transfer_bytes", &labels, bytes);
            o.metrics.counter_add("link_transfer_count", &labels, 1);
        }
        Ok(())
    }

    /// Panicking wrapper of [`MultiGpu::try_record_transfer`] for callers
    /// that treat any failure as fatal (the single-fault-domain drivers).
    pub fn record_transfer(&self, from: usize, to: usize, bytes: u64) {
        self.try_record_transfer(from, to, bytes)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Total bytes moved over all links, both directions.
    pub fn total_link_bytes(&self) -> u64 {
        self.links.iter().map(|l| l.bytes_total()).sum()
    }

    /// Per-link traffic table (the interconnect analog of
    /// [`Profiler::report`]).
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>14} {:>14} {:>14}",
            "link", "xfers", "bytes a->b", "bytes b->a", "total"
        );
        for l in &self.links {
            let _ = writeln!(
                out,
                "{:<20} {:>8} {:>14} {:>14} {:>14}",
                format!("{}[{}<->{}]", l.spec.name, l.a, l.b),
                l.transfers_total(),
                l.bytes_fwd(),
                l.bytes_rev(),
                l.bytes_total()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_topology_link_counts() {
        assert_eq!(MultiGpu::ring(DeviceSpec::v100(), 1).links().len(), 0);
        assert_eq!(MultiGpu::ring(DeviceSpec::v100(), 2).links().len(), 1);
        assert_eq!(MultiGpu::ring(DeviceSpec::v100(), 3).links().len(), 3);
        assert_eq!(MultiGpu::ring(DeviceSpec::v100(), 4).links().len(), 4);
    }

    #[test]
    fn vendor_selects_link_class() {
        let v = MultiGpu::ring(DeviceSpec::v100(), 2);
        assert_eq!(v.link_spec().name, "NVLink2");
        let m = MultiGpu::ring(DeviceSpec::mi100(), 2);
        assert_eq!(m.link_spec().name, "InfinityFabric");
        assert!(v.link_spec().bandwidth_gbps > m.link_spec().bandwidth_gbps);
    }

    #[test]
    fn transfers_are_counted_per_direction() {
        let mg = MultiGpu::ring(DeviceSpec::v100(), 4);
        mg.record_transfer(0, 1, 1000);
        mg.record_transfer(1, 0, 250);
        mg.record_transfer(3, 0, 64); // wrap link
        let l01 = mg.link_between(0, 1).unwrap();
        assert_eq!(l01.bytes_fwd(), 1000);
        assert_eq!(l01.bytes_rev(), 250);
        assert_eq!(l01.transfers_total(), 2);
        let wrap = mg.link_between(3, 0).unwrap();
        assert_eq!(wrap.bytes_total(), 64);
        assert_eq!(mg.total_link_bytes(), 1314);
        assert!(mg.report().contains("NVLink2[0<->1]"));
    }

    #[test]
    #[should_panic(expected = "no link between")]
    fn non_neighbor_transfer_panics() {
        let mg = MultiGpu::ring(DeviceSpec::v100(), 4);
        mg.record_transfer(0, 2, 8);
    }

    /// The de-panic satellite: a missing route surfaces as a typed error
    /// from the fallible path instead of tearing the process down.
    #[test]
    fn non_neighbor_transfer_returns_typed_error() {
        let mg = MultiGpu::ring(DeviceSpec::v100(), 4);
        assert_eq!(
            mg.try_record_transfer(0, 2, 8),
            Err(LinkError::NoRoute { from: 0, to: 2 })
        );
        assert_eq!(mg.total_link_bytes(), 0, "failed transfer recorded bytes");
        assert!(mg.try_record_transfer(0, 1, 8).is_ok());
    }

    /// An injected link fault fails the transfer without recording bytes,
    /// and a retry after the transient window tallies exactly once.
    #[test]
    fn faulted_transfer_records_nothing_until_retry_succeeds() {
        let obs = obs::Obs::shared();
        let mut plan = FaultPlan::new();
        plan.fail_link(0, 1, 1);
        plan.fail_link_permanently(1, 2);
        let mg = MultiGpu::ring(DeviceSpec::v100(), 4)
            .with_obs(obs.clone())
            .with_fault_plan(Arc::new(plan));
        assert_eq!(
            mg.try_record_transfer(0, 1, 100),
            Err(LinkError::Down {
                from: 0,
                to: 1,
                permanent: false
            })
        );
        assert_eq!(mg.total_link_bytes(), 0);
        assert!(mg.try_record_transfer(0, 1, 100).is_ok(), "transient fault");
        assert_eq!(mg.total_link_bytes(), 100, "retry must tally exactly once");
        assert_eq!(
            mg.try_record_transfer(1, 2, 8),
            Err(LinkError::Down {
                from: 1,
                to: 2,
                permanent: true
            })
        );
        let labels = [("link", "NVLink2[0->1]")];
        assert_eq!(
            obs.metrics.counter("link_transfer_failures", &labels),
            Some(1)
        );
        assert!(obs
            .tracer
            .events()
            .iter()
            .any(|e| e.cat == "fault" && e.name == "link-failure"));
    }

    #[test]
    fn transfer_time_includes_latency_and_bandwidth() {
        let s = LinkSpec::nvlink2();
        let t = s.transfer_time_s(150_000_000); // 0.15 GB at 150 GB/s = 1 ms
        assert!((t - (1e-3 + 1.8e-6)).abs() < 1e-12);
        // Full duplex: opposite directions overlap.
        let mg = MultiGpu::ring(DeviceSpec::v100(), 2);
        let l = mg.link_between(0, 1).unwrap();
        let e = l.exchange_time_s(150_000_000, 75_000_000);
        assert!((e - t).abs() < 1e-15);
    }

    #[test]
    fn obs_sees_link_traffic_and_device_launches() {
        let obs = obs::Obs::shared();
        let mg = MultiGpu::ring(DeviceSpec::v100(), 2).with_obs(obs.clone());
        mg.record_transfer(0, 1, 4096);
        mg.record_transfer(0, 1, 4096);
        let labels = [("link", "NVLink2[0->1]")];
        assert_eq!(
            obs.metrics.counter("link_transfer_bytes", &labels),
            Some(8192)
        );
        assert_eq!(obs.metrics.counter("link_transfer_count", &labels), Some(2));
        // Devices inherit the hub.
        assert!(mg.device(0).obs().is_some());
        assert!(mg.device(1).obs().is_some());
    }

    #[test]
    fn profiler_sees_link_traffic() {
        let p = Arc::new(Profiler::new());
        let mg = MultiGpu::ring(DeviceSpec::mi100(), 2).with_profiler(p.clone());
        mg.record_transfer(0, 1, 4096);
        mg.record_transfer(0, 1, 4096);
        let l = p.get_link("InfinityFabric[0->1]").unwrap();
        assert_eq!(l.bytes, 8192);
        assert_eq!(l.transfers, 2);
        assert!(p.report().contains("InfinityFabric[0->1]"));
    }
}
