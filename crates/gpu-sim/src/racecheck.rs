//! A lightweight dynamic race checker for global memory.
//!
//! Algorithm 2 of the paper updates the moment lattice *in place* while
//! adjacent columns read each other's halos; its safety rests on circular
//! array time shifting (Dethier et al. 2011) plus the two-layer write lag.
//! This module makes that argument *checkable*: with a checker attached,
//! every kernel access records `(launch, phase, block)` and the following
//! rules are enforced:
//!
//! * **double write** — two different blocks writing one cell in the same
//!   launch is always an error;
//! * **same-phase read/write overlap** — a cell read and written by
//!   different blocks in the same lockstep phase is unordered → error;
//! * **stale read** — reading a cell that a different block overwrote in an
//!   *earlier* phase of the same launch means the circular shift failed to
//!   protect the old value → error.
//!
//! Reads ordered *before* writes by the phase barrier (read in phase p,
//! written in phase p′ > p) are the intended data reuse and pass.
//!
//! The checker is best-effort (like a thread sanitizer): it uses relaxed
//! atomics and keeps only the most recent reader per cell, so it can miss
//! exotic interleavings, but any report it makes is a real violation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Identity of an access: which launch, which lockstep phase, which block.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Epoch {
    pub launch: u32,
    pub phase: u32,
    pub block: u32,
    /// `true` when the launch's blocks all run on the submitting thread
    /// (inline dispatch): no other participant can race on this epoch, so
    /// the touch model may use plain stores instead of atomic RMWs.
    pub exclusive: bool,
}

/// Packed cell state: `[launch:16][phase:16][block:31][occupied:1]`.
fn pack(ep: Epoch) -> u64 {
    ((ep.launch as u64 & 0xffff) << 48)
        | ((ep.phase as u64 & 0xffff) << 32)
        | ((ep.block as u64 & 0x7fff_ffff) << 1)
        | 1
}

fn unpack(v: u64) -> Option<Epoch> {
    if v & 1 == 0 {
        return None;
    }
    Some(Epoch {
        launch: ((v >> 48) & 0xffff) as u32,
        phase: ((v >> 32) & 0xffff) as u32,
        block: ((v >> 1) & 0x7fff_ffff) as u32,
        exclusive: false,
    })
}

/// Per-cell access history for one buffer.
pub struct RaceChecker {
    writer: Box<[AtomicU64]>,
    reader: Box<[AtomicU64]>,
    /// Strict mode additionally forbids cross-block reads of cells written
    /// in an *earlier* phase of the same launch. That pattern is legitimate
    /// producer/consumer communication in general (ordered by the phase
    /// barrier), but for an in-place buffer protected by circular array
    /// shifting it means a reader received new-timestep data in a slot that
    /// should still have held the old value — the exact failure the shift
    /// exists to prevent.
    strict: bool,
}

impl RaceChecker {
    /// Create a checker covering `len` cells with the standard rules.
    pub fn new(len: usize) -> Self {
        Self::with_mode(len, false)
    }

    /// Create a checker with explicit strictness (see the `strict` field).
    pub fn with_mode(len: usize, strict: bool) -> Self {
        RaceChecker {
            writer: (0..len).map(|_| AtomicU64::new(0)).collect(),
            reader: (0..len).map(|_| AtomicU64::new(0)).collect(),
            strict,
        }
    }

    /// Record and validate a read.
    pub fn on_read(&self, ep: Epoch, i: usize) {
        if let Some(w) = unpack(self.writer[i].load(Ordering::Relaxed)) {
            if w.launch == ep.launch && w.block != ep.block {
                if w.phase == ep.phase {
                    panic!(
                        "race: cell {i} read by block {} while written by block {} in phase {} of launch {}",
                        ep.block, w.block, ep.phase, ep.launch
                    );
                } else if w.phase < ep.phase && self.strict {
                    panic!(
                        "stale read: cell {i} read by block {} in phase {} was overwritten by block {} in phase {} (launch {}) — circular shift failed to protect it",
                        ep.block, ep.phase, w.block, w.phase, ep.launch
                    );
                }
            }
        }
        self.reader[i].store(pack(ep), Ordering::Relaxed);
    }

    /// Record and validate a write.
    pub fn on_write(&self, ep: Epoch, i: usize) {
        if let Some(w) = unpack(self.writer[i].load(Ordering::Relaxed)) {
            if w.launch == ep.launch && w.block != ep.block {
                panic!(
                    "race: cell {i} written by blocks {} and {} in launch {}",
                    w.block, ep.block, ep.launch
                );
            }
        }
        if let Some(r) = unpack(self.reader[i].load(Ordering::Relaxed)) {
            if r.launch == ep.launch && r.block != ep.block && r.phase == ep.phase {
                panic!(
                    "race: cell {i} written by block {} while read by block {} in phase {} of launch {}",
                    ep.block, r.block, ep.phase, ep.launch
                );
            }
        }
        self.writer[i].store(pack(ep), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(launch: u32, phase: u32, block: u32) -> Epoch {
        Epoch {
            launch,
            phase,
            block,
            exclusive: false,
        }
    }

    #[test]
    fn pack_roundtrip() {
        let e = ep(7, 300, 123456);
        assert_eq!(unpack(pack(e)), Some(e));
        assert_eq!(unpack(0), None);
    }

    #[test]
    fn same_block_rw_is_fine() {
        let rc = RaceChecker::new(4);
        rc.on_write(ep(1, 0, 5), 2);
        rc.on_read(ep(1, 1, 5), 2);
        rc.on_write(ep(1, 2, 5), 2);
    }

    #[test]
    fn read_before_later_write_is_fine() {
        let rc = RaceChecker::new(4);
        // Block 1 reads in phase 0; block 2 overwrites in phase 1 — ordered
        // by the barrier, and the reader already consumed the old value.
        rc.on_read(ep(1, 0, 1), 0);
        rc.on_write(ep(1, 1, 2), 0);
    }

    #[test]
    fn next_launch_resets() {
        let rc = RaceChecker::new(4);
        rc.on_write(ep(1, 0, 1), 0);
        // Different launch: no conflict.
        rc.on_write(ep(2, 0, 2), 0);
        rc.on_read(ep(3, 0, 3), 0);
    }

    #[test]
    #[should_panic(expected = "written by blocks")]
    fn double_write_detected() {
        let rc = RaceChecker::new(4);
        rc.on_write(ep(1, 0, 1), 3);
        rc.on_write(ep(1, 2, 2), 3);
    }

    #[test]
    #[should_panic(expected = "stale read")]
    fn stale_read_detected_in_strict_mode() {
        let rc = RaceChecker::with_mode(4, true);
        rc.on_write(ep(1, 0, 1), 3);
        rc.on_read(ep(1, 1, 2), 3);
    }

    #[test]
    fn cross_phase_read_allowed_in_standard_mode() {
        let rc = RaceChecker::new(4);
        rc.on_write(ep(1, 0, 1), 3);
        rc.on_read(ep(1, 1, 2), 3);
    }

    #[test]
    #[should_panic(expected = "while written by block")]
    fn same_phase_read_write_detected() {
        let rc = RaceChecker::new(4);
        rc.on_write(ep(1, 1, 1), 3);
        rc.on_read(ep(1, 1, 2), 3);
    }

    #[test]
    #[should_panic(expected = "while read by block")]
    fn same_phase_write_after_read_detected() {
        let rc = RaceChecker::new(4);
        rc.on_read(ep(1, 1, 2), 3);
        rc.on_write(ep(1, 1, 1), 3);
    }
}
