//! A software GPU substrate for algorithm studies.
//!
//! This crate stands in for the CUDA/HIP runtime of the paper's evaluation
//! (no GPU is available in this environment — see `DESIGN.md` for the
//! substitution argument). It executes *real kernels over real data* while
//! measuring exactly the quantity the paper's performance model is built on:
//! bytes moved to and from global memory per fluid lattice update.
//!
//! Components:
//!
//! * [`device`] — device descriptors with the paper's Table 1 presets
//!   (NVIDIA V100, AMD MI100).
//! * [`memory`] — [`memory::GlobalBuffer`], a shared global-memory array
//!   whose reads/writes are tallied per launch, with an optional
//!   [`racecheck`] layer that validates the circular-array-shifting
//!   race-freedom argument of Algorithm 2.
//! * [`exec`] — the execution engine: grids of thread blocks with per-block
//!   shared memory and barrier-phased execution; blocks run in parallel on
//!   CPU threads. A *lockstep* launch mode runs all blocks phase by phase
//!   (bulk-synchronous), the deterministic over-approximation of SIMT
//!   progress that the moment-representation kernels are verified under.
//! * [`occupancy`] — blocks-per-SM calculator (the paper's "two or more
//!   thread blocks per SM" guidance).
//! * [`coalesce`] — warp-level coalescing analysis (sectors per request),
//!   standing in for the nvvp/nsight/rocprof measurements.
//! * [`roofline`] — eq. (15): `MFLUPS_max = BW / (10⁶ · B/F)`.
//! * [`efficiency`] — achieved-bandwidth-fraction model calibrated from the
//!   paper's measurements, mapping measured byte counts to modeled MFLUPS.
//! * [`profiler`] — per-kernel launch statistics reports.
//! * [`interconnect`] — N devices joined by byte-counted links (NVLink /
//!   Infinity Fabric presets), the substrate for multi-device sharding.
//! * [`fault`] — deterministic fault injection (corrupted writes, launch
//!   aborts, link failures) consumed by the resilience tests.

#![allow(clippy::needless_range_loop)] // indexed loops are the idiom in stencil kernels
pub mod coalesce;
pub mod device;
pub mod efficiency;
pub mod exec;
pub mod fault;
pub mod interconnect;
pub mod memory;
pub mod occupancy;
pub mod pool;
pub mod profiler;
pub mod racecheck;
pub mod roofline;

pub use device::DeviceSpec;
pub use exec::{Gpu, Kernel, Launch, LaunchStats, PhasedKernel};
pub use fault::FaultPlan;
pub use interconnect::{Link, LinkError, LinkSpec, MultiGpu};
pub use memory::GlobalBuffer;
