//! The roofline performance model of paper §4.1, eq. (15):
//! `MFLUPS_max = B_BW / (10⁶ × B/F)`.

use crate::device::DeviceSpec;

/// Bytes per fluid lattice update of the standard (ST) pattern: the full
/// distribution is read and written once, `2·Q` doubles (Table 2).
#[inline]
pub fn bytes_per_flup_st(q: usize) -> f64 {
    (2 * q * 8) as f64
}

/// Bytes per fluid lattice update of the moment representation (MR):
/// `2·M` doubles (Table 2). Identical for MR-P and MR-R — the recursive
/// scheme's extra work is all in-cache.
#[inline]
pub fn bytes_per_flup_mr(m: usize) -> f64 {
    (2 * m * 8) as f64
}

/// Bytes per fluid lattice update of the *sparse* (fluid-compacted,
/// indirect-addressing) ST pattern: the dense `2·Q` doubles plus one `u32`
/// link-table entry per direction — `2·Q·8 + Q·4` (180 for D2Q9, 380 for
/// D3Q19). Indirection costs bandwidth per update but the state is stored
/// per *fluid* node, so the footprint scales with porosity.
#[inline]
pub fn bytes_per_flup_sparse_st(q: usize) -> f64 {
    (2 * q * 8 + q * 4) as f64
}

/// Bytes per fluid lattice update of the sparse moment representation:
/// `2·M` doubles of moments plus the `Q`-entry link table — `2·M·8 + Q·4`
/// (132 for D2Q9, 236 for D3Q19). Still below even *dense* ST (144/304):
/// the moment compression pays for the indirection.
#[inline]
pub fn bytes_per_flup_sparse_mr(m: usize, q: usize) -> f64 {
    (2 * m * 8 + q * 4) as f64
}

/// Eq. (15): peak MFLUPS for a propagation pattern moving `bytes_per_flup`
/// bytes per update on a device with bandwidth `bandwidth_gbps`.
#[inline]
pub fn mflups_max(bandwidth_gbps: f64, bytes_per_flup: f64) -> f64 {
    bandwidth_gbps * 1e9 / (1e6 * bytes_per_flup)
}

/// Eq. (15) for a device spec.
#[inline]
pub fn mflups_max_on(dev: &DeviceSpec, bytes_per_flup: f64) -> f64 {
    mflups_max(dev.bandwidth_gbps, bytes_per_flup)
}

/// Multi-device roofline: eq. (15) extended with an interconnect term. A
/// sharded run is bound by the slower of two pipes — device memory at
/// `bytes_per_flup` per update, and the halo link at
/// `halo_bytes_per_update` per update (per-link halo bytes per step divided
/// by the shard's fluid nodes; 0 when exchange fully overlaps compute).
#[inline]
pub fn mflups_max_multi(
    bandwidth_gbps: f64,
    bytes_per_flup: f64,
    link_gbps: f64,
    halo_bytes_per_update: f64,
) -> f64 {
    let dram = mflups_max(bandwidth_gbps, bytes_per_flup);
    if halo_bytes_per_update <= 0.0 {
        return dram;
    }
    dram.min(mflups_max(link_gbps, halo_bytes_per_update))
}

/// Device-memory footprint of a simulation of `fluid_nodes` nodes in the ST
/// pattern: two full distribution lattices, `2·Q` doubles per node.
#[inline]
pub fn footprint_st(fluid_nodes: usize, q: usize) -> usize {
    fluid_nodes * 2 * q * 8
}

/// Device-memory footprint of the *double-buffered* MR variant: two moment
/// lattices, `2·M` doubles per node. This is what the paper's §4.1 capacity
/// figures (1.3 GB / 2.23 GB for 15 M nodes) correspond to.
#[inline]
pub fn footprint_mr_double(fluid_nodes: usize, m: usize) -> usize {
    fluid_nodes * 2 * m * 8
}

/// Device-memory footprint of the single-lattice MR variant of Algorithm 2
/// (in-place update protected by circular array shifting): one moment
/// lattice plus `pad_nodes` of circular-shift padding. Strictly smaller
/// than [`footprint_mr_double`] — the "1 lattice" design of paper §3.2.
#[inline]
pub fn footprint_mr_single(fluid_nodes: usize, m: usize, pad_nodes: usize) -> usize {
    (fluid_nodes + pad_nodes) * m * 8
}

/// Device-memory footprint of the in-place AA-pattern ST variant: exactly
/// one distribution lattice, `Q` doubles per node — half of
/// [`footprint_st`], byte-exact.
#[inline]
pub fn footprint_aa_st(fluid_nodes: usize, q: usize) -> usize {
    fluid_nodes * q * 8
}

/// Device-memory footprint of the parity-twist MR variant: exactly one
/// moment lattice, `M` doubles per node — no second buffer *and* no
/// circular-shift padding, half of [`footprint_mr_double`], byte-exact.
#[inline]
pub fn footprint_mr_twist(fluid_nodes: usize, m: usize) -> usize {
    fluid_nodes * m * 8
}

/// Device-memory footprint of the sparse ST driver: per *fluid* node, two
/// compacted distribution lattices plus the `u32` link table —
/// `fluid · (2·Q·8 + Q·4)` bytes. No bytes for solid nodes.
#[inline]
pub fn footprint_sparse_st(fluid_nodes: usize, q: usize) -> usize {
    fluid_nodes * (2 * q * 8 + q * 4)
}

/// Device-memory footprint of the sparse MR driver: per fluid node, one
/// in-place moment lattice plus the link table — `fluid · (M·8 + Q·4)`
/// bytes. At porosity φ this is `φ · (M·8 + Q·4) / (2·Q·8)` of the dense
/// ST box.
#[inline]
pub fn footprint_sparse_mr(fluid_nodes: usize, m: usize, q: usize) -> usize {
    fluid_nodes * (m * 8 + q * 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2 of the paper.
    #[test]
    fn table2_bytes_per_flup() {
        assert_eq!(bytes_per_flup_st(9), 144.0);
        assert_eq!(bytes_per_flup_st(19), 304.0);
        assert_eq!(bytes_per_flup_mr(6), 96.0);
        assert_eq!(bytes_per_flup_mr(10), 160.0);
    }

    /// Sparse B/F: dense traffic plus the link table; sparse MR stays below
    /// dense ST on both lattices.
    #[test]
    fn sparse_bytes_per_flup() {
        assert_eq!(bytes_per_flup_sparse_st(9), 180.0);
        assert_eq!(bytes_per_flup_sparse_st(19), 380.0);
        assert_eq!(bytes_per_flup_sparse_mr(6, 9), 132.0);
        assert_eq!(bytes_per_flup_sparse_mr(10, 19), 236.0);
        assert!(bytes_per_flup_sparse_mr(6, 9) < bytes_per_flup_st(9));
        assert!(bytes_per_flup_sparse_mr(10, 19) < bytes_per_flup_st(19));
    }

    /// Sparse footprints are linear in the fluid count: at porosity φ the
    /// sparse state is exactly φ × the full-box sparse state.
    #[test]
    fn sparse_footprint_scales_with_fluid_count() {
        let box_nodes = 400_000usize;
        for (phi_num, phi_den) in [(1usize, 4usize), (1, 2), (3, 4)] {
            let fluid = box_nodes * phi_num / phi_den;
            assert_eq!(
                footprint_sparse_st(fluid, 19),
                footprint_sparse_st(box_nodes, 19) * phi_num / phi_den
            );
            assert_eq!(
                footprint_sparse_mr(fluid, 10, 19),
                footprint_sparse_mr(box_nodes, 10, 19) * phi_num / phi_den
            );
        }
        // D2Q9 crossover vs the smallest dense pattern (twist-MR, M·8/node):
        // sparse MR wins when φ·(M·8 + Q·4) < M·8, i.e. φ < 48/84 ≈ 0.57.
        let fluid = box_nodes / 4; // φ = 0.25 — well below the crossover
        assert!(footprint_sparse_mr(fluid, 6, 9) < footprint_mr_twist(box_nodes, 6));
    }

    /// Table 3 of the paper: roofline MFLUPS on both devices.
    #[test]
    fn table3_roofline_mflups() {
        let v100 = DeviceSpec::v100();
        let mi100 = DeviceSpec::mi100();
        assert!((mflups_max_on(&v100, 144.0) - 6250.0).abs() < 1.0);
        assert!((mflups_max_on(&v100, 304.0) - 2960.0).abs() < 1.0);
        assert!((mflups_max_on(&v100, 96.0) - 9375.0).abs() < 1.0);
        assert!((mflups_max_on(&v100, 160.0) - 5625.0).abs() < 1.0);
        assert!((mflups_max_on(&mi100, 144.0) - 8533.0).abs() < 1.0);
        assert!((mflups_max_on(&mi100, 304.0) - 4042.0).abs() < 1.0);
        assert!((mflups_max_on(&mi100, 96.0) - 12800.0).abs() < 10.0);
        assert!((mflups_max_on(&mi100, 160.0) - 7680.0).abs() < 1.0);
    }

    /// The interconnect term only binds when halo traffic per update is
    /// large relative to the link (thin shards); bulk-dominated shards stay
    /// on the DRAM roofline.
    #[test]
    fn multi_device_roofline_term() {
        let v100 = DeviceSpec::v100();
        let dram = mflups_max_on(&v100, 144.0);
        // Wide shard: 0.01 halo B/update over a 150 GB/s link ≫ DRAM limit.
        assert_eq!(mflups_max_multi(900.0, 144.0, 150.0, 0.01), dram);
        // Degenerate 1-column shard: every node is a halo node, 144 B/update
        // over the link — the link is 6× slower than DRAM and binds.
        let bound = mflups_max_multi(900.0, 144.0, 150.0, 144.0);
        assert!((bound - mflups_max(150.0, 144.0)).abs() < 1e-9);
        assert!(bound < dram);
        // No halo traffic (N = 1): plain eq. (15).
        assert_eq!(mflups_max_multi(900.0, 144.0, 150.0, 0.0), dram);
    }

    /// §4.1 footprint claim: 15 M fluid points need ~2 GiB (ST) vs ~1.3 GiB
    /// (MR) in 2D and ~4.2 GiB vs ~2.23 GiB in 3D — reductions of ~33–35 %
    /// and ~47 %.
    #[test]
    fn memory_footprint_reductions() {
        const GIB: f64 = (1u64 << 30) as f64;
        let n = 15_000_000;

        let st2 = footprint_st(n, 9) as f64;
        let mr2 = footprint_mr_double(n, 6) as f64;
        assert!((st2 / GIB - 2.01).abs() < 0.01, "{}", st2 / GIB);
        assert!((mr2 / GIB - 1.34).abs() < 0.01, "{}", mr2 / GIB);
        let red2 = 1.0 - mr2 / st2;
        assert!((red2 - 1.0 / 3.0).abs() < 0.01, "2D reduction {red2}");

        let st3 = footprint_st(n, 19) as f64;
        let mr3 = footprint_mr_double(n, 10) as f64;
        assert!((st3 / GIB - 4.25).abs() < 0.01, "{}", st3 / GIB);
        assert!((mr3 / GIB - 2.24).abs() < 0.01, "{}", mr3 / GIB);
        let red3 = 1.0 - mr3 / st3;
        assert!((red3 - 0.4737).abs() < 0.01, "3D reduction {red3}");

        // The single-lattice Algorithm 2 variant is smaller still.
        let single = footprint_mr_single(n, 10, 4096) as f64;
        assert!(single < mr3 / 1.9);
    }
}
