//! Achieved-bandwidth model, calibrated against the paper's measurements.
//!
//! The substrate measures *bytes moved* exactly, but it cannot measure how
//! fast a V100 or MI100 would move them. The paper does: §4.2–4.3 report the
//! sustained fraction of peak bandwidth for every (device, pattern,
//! dimension) combination. Those fractions are encoded here, together with a
//! small-problem saturation ramp, so that
//!
//! `modeled MFLUPS = η(dev, pattern, dim) · saturation(n) · BW_peak / B/F_measured`
//!
//! with B/F *measured by the traffic ledger* for our actual kernels (halo
//! traffic included — slightly more honest than the paper's ideal 2M). The
//! calibration constants are the paper's own achieved-bandwidth fractions,
//! back-derived from the MFLUPS it reports; the speedup *shape* (who wins,
//! by how much, and where MR-R separates from MR-P) is then reproduced
//! rather than asserted. See `DESIGN.md` ("Hardware substitution").

use crate::device::{DeviceSpec, Vendor};
use std::sync::atomic::{AtomicU64, Ordering};

/// Times [`bandwidth_fraction`] was asked for a dimension outside the
/// calibrated set {2, 3} and fell back to the nearest calibrated one.
static CALIBRATION_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// How often an uncalibrated dimension was served by the nearest-dim
/// fallback (diagnostic for callers that want to surface the warning).
pub fn calibration_fallbacks() -> u64 {
    CALIBRATION_FALLBACKS.load(Ordering::Relaxed)
}

/// The three propagation patterns of the paper's evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Standard two-lattice distribution representation, pull scheme.
    Standard,
    /// Moment representation with projective regularization (MR-P).
    MomentProjective,
    /// Moment representation with recursive regularization (MR-R).
    MomentRecursive,
    /// In-place single-lattice ST: the AA pattern (ST-AA). Same traffic
    /// shape and B/F as [`Pattern::Standard`], half the resident bytes.
    StandardAa,
    /// In-place single-lattice MR: parity-twisted moment storage (MR-T).
    /// Same traffic shape and B/F as [`Pattern::MomentProjective`], half
    /// the double-buffered residency and none of the shift padding.
    MomentTwist,
}

impl Pattern {
    /// Short label used in reports ("ST", "MR-P", "MR-R", "ST-AA", "MR-T").
    pub fn label(self) -> &'static str {
        match self {
            Pattern::Standard => "ST",
            Pattern::MomentProjective => "MR-P",
            Pattern::MomentRecursive => "MR-R",
            Pattern::StandardAa => "ST-AA",
            Pattern::MomentTwist => "MR-T",
        }
    }

    /// The two-lattice pattern whose bandwidth calibration this pattern
    /// inherits. The in-place variants move the same bytes in the same
    /// access shape as their two-lattice counterparts (reads and writes
    /// swap roles on alternate steps but stay fully coalesced), so §4.2's
    /// sustained-fraction calibration carries over unchanged.
    pub fn calibration_class(self) -> Pattern {
        match self {
            Pattern::StandardAa => Pattern::Standard,
            Pattern::MomentTwist => Pattern::MomentProjective,
            p => p,
        }
    }
}

/// Sustained fraction of peak bandwidth for a (device, pattern, dimension)
/// combination, calibrated from §4.2–4.3:
///
/// | device | dim | ST    | MR-P  | MR-R  |
/// |--------|-----|-------|-------|-------|
/// | V100   | 2D  | 0.848 | 0.747 | 0.736 |
/// | V100   | 3D  | 0.878 | 0.676 | 0.533 |
/// | MI100  | 2D  | 0.727 | 0.672 | 0.672 |
/// | MI100  | 3D  | 0.693 | 0.417 | 0.326 |
///
/// (The MR fractions are lower because of the more complex memory pattern,
/// shared-memory usage, halos, and block-size restrictions — §4.2; the 3D
/// MR-R drop reflects its extra arithmetic becoming visible at D3Q19 — §4.3.)
pub fn bandwidth_fraction(dev: &DeviceSpec, pattern: Pattern, dim: usize) -> f64 {
    use Pattern::*;
    let pattern = pattern.calibration_class();
    // The paper calibrates dims 2 and 3 only. Anything else (a 1D strip
    // bench, a hypothetical 4D sweep) clamps to the nearest calibrated dim
    // instead of panicking, with the substitution recorded so callers can
    // surface a warning.
    let dim = if matches!(dim, 2 | 3) {
        dim
    } else {
        CALIBRATION_FALLBACKS.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "warning: no bandwidth calibration for dim {dim}; using nearest calibrated dim {}",
            if dim < 2 { 2 } else { 3 }
        );
        if dim < 2 {
            2
        } else {
            3
        }
    };
    match (dev.vendor, dim, pattern) {
        (Vendor::Nvidia, 2, Standard) => 0.848,
        (Vendor::Nvidia, 2, MomentProjective) => 0.747,
        (Vendor::Nvidia, 2, MomentRecursive) => 0.736,
        (Vendor::Nvidia, 3, Standard) => 0.878,
        (Vendor::Nvidia, 3, MomentProjective) => 0.676,
        (Vendor::Nvidia, 3, MomentRecursive) => 0.533,
        (Vendor::Amd, 2, Standard) => 0.727,
        (Vendor::Amd, 2, MomentProjective) => 0.672,
        (Vendor::Amd, 2, MomentRecursive) => 0.672,
        (Vendor::Amd, 3, Standard) => 0.693,
        (Vendor::Amd, 3, MomentProjective) => 0.417,
        (Vendor::Amd, 3, MomentRecursive) => 0.326,
        _ => unreachable!("dim clamped to the calibrated set above"),
    }
}

/// Small-problem saturation: a device needs enough resident work to hide
/// memory latency. Modeled as `n / (n + n_half)` with `n_half` proportional
/// to the device's concurrency (Little's-law style).
pub fn saturation(dev: &DeviceSpec, fluid_nodes: usize) -> f64 {
    let n_half = dev.sm_count as f64 * 2048.0;
    fluid_nodes as f64 / (fluid_nodes as f64 + n_half)
}

/// Modeled throughput in MFLUPS for a kernel that was *measured* to move
/// `bytes_per_flup` bytes per fluid update.
pub fn modeled_mflups(
    dev: &DeviceSpec,
    pattern: Pattern,
    dim: usize,
    bytes_per_flup: f64,
    fluid_nodes: usize,
) -> f64 {
    let eta = bandwidth_fraction(dev, pattern, dim) * saturation(dev, fluid_nodes);
    eta * dev.bandwidth_bytes_per_sec() / (1e6 * bytes_per_flup)
}

/// Modeled sustained bandwidth in GB/s (the quantity in the paper's
/// bandwidth discussion and Table 4).
pub fn modeled_bandwidth_gbps(
    dev: &DeviceSpec,
    pattern: Pattern,
    dim: usize,
    fluid_nodes: usize,
) -> f64 {
    bandwidth_fraction(dev, pattern, dim) * saturation(dev, fluid_nodes) * dev.bandwidth_gbps
}

/// Modeled wall time in seconds for `steps` timesteps given total bytes
/// moved per step.
pub fn modeled_time_s(
    dev: &DeviceSpec,
    pattern: Pattern,
    dim: usize,
    bytes_per_step: f64,
    fluid_nodes: usize,
    steps: usize,
) -> f64 {
    let eta = bandwidth_fraction(dev, pattern, dim) * saturation(dev, fluid_nodes);
    steps as f64 * bytes_per_step / (eta * dev.bandwidth_bytes_per_sec())
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIG: usize = 16_000_000; // deep in the saturated regime

    /// Reproduce the paper's headline sustained MFLUPS (±3 %) from the
    /// calibration and the ideal B/F — the harness will use measured B/F.
    #[test]
    fn headline_mflups_2d() {
        let v100 = DeviceSpec::v100();
        let mi100 = DeviceSpec::mi100();
        let st_v = modeled_mflups(&v100, Pattern::Standard, 2, 144.0, BIG);
        let mrp_v = modeled_mflups(&v100, Pattern::MomentProjective, 2, 96.0, BIG);
        assert!((st_v - 5300.0).abs() / 5300.0 < 0.03, "{st_v}");
        assert!((mrp_v - 7000.0).abs() / 7000.0 < 0.03, "{mrp_v}");
        let st_m = modeled_mflups(&mi100, Pattern::Standard, 2, 144.0, BIG);
        let mrp_m = modeled_mflups(&mi100, Pattern::MomentProjective, 2, 96.0, BIG);
        assert!((st_m - 6200.0).abs() / 6200.0 < 0.03, "{st_m}");
        assert!((mrp_m - 8600.0).abs() / 8600.0 < 0.03, "{mrp_m}");
    }

    #[test]
    fn headline_mflups_3d() {
        let v100 = DeviceSpec::v100();
        let mi100 = DeviceSpec::mi100();
        let st_v = modeled_mflups(&v100, Pattern::Standard, 3, 304.0, BIG);
        let mrp_v = modeled_mflups(&v100, Pattern::MomentProjective, 3, 160.0, BIG);
        let mrr_v = modeled_mflups(&v100, Pattern::MomentRecursive, 3, 160.0, BIG);
        assert!((st_v - 2600.0).abs() / 2600.0 < 0.03, "{st_v}");
        assert!((mrp_v - 3800.0).abs() / 3800.0 < 0.03, "{mrp_v}");
        // MR-R trails MR-P by ~800 MFLUPS on the V100 (§4.3).
        assert!((mrp_v - mrr_v - 800.0).abs() < 100.0, "{}", mrp_v - mrr_v);
        let st_m = modeled_mflups(&mi100, Pattern::Standard, 3, 304.0, BIG);
        let mrp_m = modeled_mflups(&mi100, Pattern::MomentProjective, 3, 160.0, BIG);
        let mrr_m = modeled_mflups(&mi100, Pattern::MomentRecursive, 3, 160.0, BIG);
        assert!((st_m - 2800.0).abs() / 2800.0 < 0.03, "{st_m}");
        assert!((mrp_m - 3200.0).abs() / 3200.0 < 0.03, "{mrp_m}");
        assert!((mrp_m - mrr_m - 700.0).abs() < 100.0, "{}", mrp_m - mrr_m);
    }

    /// §5 speedups: 1.32× / 1.38× (D2Q9) and 1.46× / 1.14× (D3Q19).
    #[test]
    fn conclusion_speedups() {
        let v100 = DeviceSpec::v100();
        let mi100 = DeviceSpec::mi100();
        let sp = |dev: &DeviceSpec, dim: usize, st_bpf: f64, mr_bpf: f64| {
            modeled_mflups(dev, Pattern::MomentProjective, dim, mr_bpf, BIG)
                / modeled_mflups(dev, Pattern::Standard, dim, st_bpf, BIG)
        };
        assert!((sp(&v100, 2, 144.0, 96.0) - 1.32).abs() < 0.02);
        assert!((sp(&mi100, 2, 144.0, 96.0) - 1.38).abs() < 0.02);
        assert!((sp(&v100, 3, 304.0, 160.0) - 1.46).abs() < 0.02);
        assert!((sp(&mi100, 3, 304.0, 160.0) - 1.14).abs() < 0.02);
    }

    /// Saturation ramps from ~0 to ~1 and is monotone in problem size.
    #[test]
    fn saturation_ramp() {
        let dev = DeviceSpec::v100();
        let mut prev = 0.0;
        for n in [10_000, 100_000, 1_000_000, 10_000_000] {
            let s = saturation(&dev, n);
            assert!(s > prev && s < 1.0);
            prev = s;
        }
        assert!(saturation(&dev, 50_000_000) > 0.99);
    }

    /// Table 4-style sustained bandwidths: the V100 sustains a higher
    /// fraction than the MI100 on every pattern, and ST beats MR in GB/s on
    /// both devices (while losing in MFLUPS).
    #[test]
    fn bandwidth_ordering() {
        let v100 = DeviceSpec::v100();
        let mi100 = DeviceSpec::mi100();
        for dim in [2usize, 3] {
            let st_v = modeled_bandwidth_gbps(&v100, Pattern::Standard, dim, BIG);
            let mr_v = modeled_bandwidth_gbps(&v100, Pattern::MomentProjective, dim, BIG);
            assert!(st_v > mr_v);
            let st_m = modeled_bandwidth_gbps(&mi100, Pattern::Standard, dim, BIG);
            let mr_m = modeled_bandwidth_gbps(&mi100, Pattern::MomentProjective, dim, BIG);
            assert!(st_m > mr_m);
        }
        // 2D V100: ~790 vs ~664 GB/s (§4.2).
        let st = modeled_bandwidth_gbps(&v100, Pattern::Standard, 2, BIG);
        let mr = modeled_bandwidth_gbps(&v100, Pattern::MomentProjective, 2, BIG);
        assert!((st - 763.0).abs() < 15.0, "{st}");
        assert!((mr - 672.0).abs() < 15.0, "{mr}");
    }

    /// The de-panic satellite: uncalibrated dims fall back to the nearest
    /// calibrated one (1 → 2, ≥4 → 3) with the substitution counted.
    #[test]
    fn uncalibrated_dim_falls_back_to_nearest() {
        let v100 = DeviceSpec::v100();
        let before = calibration_fallbacks();
        assert_eq!(
            bandwidth_fraction(&v100, Pattern::Standard, 1),
            bandwidth_fraction(&v100, Pattern::Standard, 2)
        );
        assert_eq!(
            bandwidth_fraction(&v100, Pattern::MomentRecursive, 4),
            bandwidth_fraction(&v100, Pattern::MomentRecursive, 3)
        );
        assert_eq!(calibration_fallbacks() - before, 2);
        // Calibrated dims never count as fallbacks.
        let _ = bandwidth_fraction(&v100, Pattern::Standard, 2);
        assert_eq!(calibration_fallbacks() - before, 2);
    }

    #[test]
    fn labels() {
        assert_eq!(Pattern::Standard.label(), "ST");
        assert_eq!(Pattern::MomentProjective.label(), "MR-P");
        assert_eq!(Pattern::MomentRecursive.label(), "MR-R");
    }
}
