//! Blocks-per-SM occupancy calculator.
//!
//! The paper notes (§3.2) that "optimal performance is achieved with two or
//! more thread blocks per SM, so the targeted tile size and shared memory
//! usage per column must be adjusted to account for this". The MR kernel
//! configuration chooser uses this module to honor that rule.

use crate::device::DeviceSpec;

/// Result of an occupancy query.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per SM under all limits.
    pub blocks_per_sm: usize,
    /// Resident threads per SM (`blocks_per_sm × threads_per_block`).
    pub threads_per_sm: usize,
    /// Fraction of the device's maximum resident threads.
    pub fraction: f64,
    /// Which resource bound the block count.
    pub limiter: Limiter,
}

/// The resource limiting occupancy.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Limiter {
    Threads,
    SharedMemory,
    BlockSlots,
}

/// Compute occupancy for a kernel with the given block size and per-block
/// shared-memory footprint.
pub fn occupancy(dev: &DeviceSpec, threads_per_block: usize, shared_bytes: usize) -> Occupancy {
    assert!(threads_per_block >= 1);
    assert!(threads_per_block <= dev.max_threads_per_block);
    let by_threads = dev.max_threads_per_sm / threads_per_block;
    let by_shared = dev
        .shared_mem_per_sm
        .checked_div(shared_bytes)
        .unwrap_or(usize::MAX);
    let by_slots = dev.max_blocks_per_sm;

    let blocks = by_threads.min(by_shared).min(by_slots);
    let limiter = if blocks == by_shared && by_shared <= by_threads && by_shared <= by_slots {
        Limiter::SharedMemory
    } else if blocks == by_threads && by_threads <= by_slots {
        Limiter::Threads
    } else {
        Limiter::BlockSlots
    };
    let threads = blocks * threads_per_block;
    Occupancy {
        blocks_per_sm: blocks,
        threads_per_sm: threads,
        fraction: threads as f64 / dev.max_threads_per_sm as f64,
        limiter,
    }
}

/// Whether the configuration meets the paper's ≥ 2 blocks/SM guidance.
pub fn meets_two_block_rule(
    dev: &DeviceSpec,
    threads_per_block: usize,
    shared_bytes: usize,
) -> bool {
    occupancy(dev, threads_per_block, shared_bytes).blocks_per_sm >= 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_limited() {
        let dev = DeviceSpec::v100();
        let o = occupancy(&dev, 1024, 0);
        assert_eq!(o.blocks_per_sm, 2); // 2048 / 1024
        assert_eq!(o.limiter, Limiter::Threads);
        assert!((o.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_limited() {
        let dev = DeviceSpec::v100();
        // 40 KB per block: only 2 fit in 96 KB.
        let o = occupancy(&dev, 128, 40 * 1024);
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn slot_limited() {
        let dev = DeviceSpec::v100();
        let o = occupancy(&dev, 32, 0);
        assert_eq!(o.blocks_per_sm, 32); // max_blocks_per_sm
        assert_eq!(o.limiter, Limiter::BlockSlots);
        assert!((o.fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_block_rule() {
        let dev = DeviceSpec::mi100();
        // Whole LDS per block → 1 block/SM → violates the rule.
        assert!(!meets_two_block_rule(&dev, 256, 64 * 1024));
        assert!(meets_two_block_rule(&dev, 256, 32 * 1024));
    }

    #[test]
    fn mi100_lds_is_smaller() {
        // The same 40 KB request fits 2 blocks on V100 but only 1 on MI100 —
        // the cross-vendor asymmetry the paper discusses.
        assert!(meets_two_block_rule(&DeviceSpec::v100(), 128, 40 * 1024));
        assert!(!meets_two_block_rule(&DeviceSpec::mi100(), 128, 40 * 1024));
    }
}
