//! Persistent worker pool backing the software GPU's block scheduler.
//!
//! The seed executor spawned fresh OS threads for every lockstep phase via
//! `std::thread::scope` and carved the block range into static chunks. That
//! costs O(phases × workers) thread spawns per timestep and load-imbalances
//! ragged grids (`blocks % workers != 0` gave the last worker a zero- or
//! double-width chunk). This pool replaces both mechanisms:
//!
//! - **Long-lived threads**: spawned once per [`WorkerPool`], woken through a
//!   condvar guarded by a monotonically increasing job epoch, parked again
//!   when the block range is drained.
//! - **Dynamic load balancing**: a shared `AtomicUsize` next-block cursor.
//!   Every participant — the pool threads *and* the submitting thread —
//!   claims blocks with `fetch_add(1)` until the cursor passes `blocks`, so
//!   no block assignment is decided up front and stragglers are absorbed.
//! - **Ticketed wakeup**: a job with fewer blocks than pool threads invites
//!   only `blocks − 1` helpers (the submitter is the remaining participant).
//!   Invitations are tickets claimed under the state lock; a worker that
//!   wakes without finding a ticket skips the job and parks again, and the
//!   submitter revokes unclaimed tickets once the cursor drains, so a
//!   2-block phase never pays for waking the whole pool.
//!
//! Each block index is handed to exactly one participant, which preserves
//! the substrate's accounting contract: per-block tallies stay private to
//! whichever thread runs the block and are merged in block order afterwards.
//!
//! A panic inside a block (kernel assert, race-checker trip) is caught on
//! the worker, stashed, and re-raised on the submitting thread after every
//! participant has quiesced — the same observable behavior as the scoped
//! spawns it replaces, and required so `#[should_panic]` race-checker tests
//! keep passing under pooled execution.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The job currently published to the pool: a block task and the exclusive
/// upper bound of the block range. The task reference's lifetime is erased
/// to `'static` for storage; [`WorkerPool::run`] does not return until every
/// participant has finished with it, so it never dangles.
#[derive(Clone, Copy)]
struct Job {
    task: &'static (dyn Fn(usize) + Sync),
    blocks: usize,
}

struct State {
    /// Incremented once per published job; workers wake when it advances
    /// past the last value they served.
    epoch: u64,
    job: Option<Job>,
    /// Unclaimed helper invitations for the current job. A waking worker
    /// joins the steal loop only if it can claim one; the submitter revokes
    /// the leftovers before waiting, so no worker can join late and find a
    /// dangling task.
    tickets: usize,
    /// Pool threads currently inside the current job's steal loop.
    active: usize,
    shutdown: bool,
    /// First panic payload caught by a pool thread during the current job.
    panic: Option<Box<dyn Any + Send>>,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes pool threads when a job is published (or shutdown is set).
    work_cv: Condvar,
    /// Wakes the submitter when the last active pool thread drains out.
    done_cv: Condvar,
    /// Next unclaimed block index of the current job.
    cursor: AtomicUsize,
    /// Blocks executed by pool threads (not the submitter) this job.
    stolen: AtomicU64,
}

/// A persistent pool of `workers` OS threads executing block ranges.
///
/// `run(blocks, task)` publishes the job, participates in the steal loop
/// itself, and blocks until all `blocks` indices have been executed. Only
/// one *pooled* job can be in flight at a time; concurrent submitters
/// serialize on an internal mutex. Jobs that invite no helpers — every job
/// on a zero-worker pool, and any single-block job — run inline on the
/// submitting thread without touching the mutex, so an inert pool is safe
/// (and contention-free) under arbitrarily many concurrent submitters.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Serializes submitters: the epoch/cursor protocol supports one job at
    /// a time.
    submit: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
    /// Observability hub for the busy/idle worker gauges. Read only on the
    /// pooled path (which already serializes on `submit`); the inline path
    /// stays lock-free.
    obs: Mutex<Option<Arc<obs::Obs>>>,
}

impl WorkerPool {
    /// Spawn `workers` pool threads. With `workers == 0` the pool is inert
    /// and `run` executes every block inline on the submitting thread.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                tickets: 0,
                active: 0,
                shutdown: false,
                panic: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cursor: AtomicUsize::new(0),
            stolen: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("gpu-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            submit: Mutex::new(()),
            handles,
            obs: Mutex::new(None),
        }
    }

    /// Number of pool threads (excluding the submitting thread).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Attach an observability hub. Publishes a `pool_workers` gauge (total
    /// pool threads) immediately, and from then on every pooled job updates
    /// a `pool_workers_busy` gauge: set to the number of invited helpers
    /// while the job's steal loop is live, back to 0 once the pool drains.
    /// Inline (zero-helper) jobs never touch the gauges — that path is
    /// lock-free by contract.
    pub fn set_obs(&self, obs: Arc<obs::Obs>) {
        obs.metrics
            .gauge_set("pool_workers", &[], self.handles.len() as f64);
        obs.metrics.gauge_set("pool_workers_busy", &[], 0.0);
        *self.obs.lock().unwrap() = Some(obs);
    }

    /// Execute `task(b)` for every `b in 0..blocks`, each exactly once,
    /// distributing blocks dynamically over the pool threads and the
    /// calling thread. At most `blocks − 1` pool threads are woken (the
    /// submitter is the remaining participant). Returns the number of
    /// blocks executed by pool threads (the "stolen" count surfaced as an
    /// `exec_block_steal` metric). Panics raised inside `task` — on any
    /// participant — are re-raised here after the whole pool has quiesced.
    pub fn run(&self, blocks: usize, task: &(dyn Fn(usize) + Sync)) -> u64 {
        if blocks == 0 {
            return 0;
        }
        let helpers = self.handles.len().min(blocks - 1);
        if helpers == 0 {
            // Inline mode: no submit lock, no shared state. An inert pool
            // (`workers == 0`) therefore supports any number of concurrent
            // submitters — each runs its own blocks on its own thread, with
            // no cross-submitter serialization (the fleet scheduler relies
            // on this to run many single-threaded sims side by side over
            // one shared device pool).
            for b in 0..blocks {
                task(b);
            }
            return 0;
        }
        let _guard = self.submit.lock().unwrap();
        let obs = self.obs.lock().unwrap().clone();
        if let Some(o) = &obs {
            o.metrics
                .gauge_set("pool_workers_busy", &[], helpers as f64);
        }
        // Erase the task's lifetime for publication. Sound because this
        // function waits for `active == 0` with the leftover tickets revoked
        // (no pool thread holds, or can still acquire, the job) before
        // returning on every path, including panics.
        let task_static: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };
        {
            let mut st = self.shared.state.lock().unwrap();
            self.shared.cursor.store(0, Ordering::Relaxed);
            self.shared.stolen.store(0, Ordering::Relaxed);
            st.job = Some(Job {
                task: task_static,
                blocks,
            });
            st.epoch += 1;
            st.tickets = helpers;
            if helpers == self.handles.len() {
                self.shared.work_cv.notify_all();
            } else {
                for _ in 0..helpers {
                    self.shared.work_cv.notify_one();
                }
            }
        }
        // The submitter steals blocks too. Panics must be caught here as
        // well: unwinding out while pool threads still hold the erased task
        // reference would dangle it.
        let mut local_panic: Option<Box<dyn Any + Send>> = None;
        loop {
            let b = self.shared.cursor.fetch_add(1, Ordering::Relaxed);
            if b >= blocks {
                break;
            }
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| task(b))) {
                local_panic = Some(p);
                // Drain the cursor so pool threads stop claiming blocks.
                self.shared.cursor.store(blocks, Ordering::Relaxed);
                break;
            }
        }
        let stolen;
        {
            let mut st = self.shared.state.lock().unwrap();
            // Revoke unclaimed invitations: a lost notification (no worker
            // was parked to receive it) or a worker that wakes after this
            // point must not join — the cursor is drained and the job is
            // about to be retired.
            st.tickets = 0;
            while st.active > 0 {
                st = self.shared.done_cv.wait(st).unwrap();
            }
            st.job = None;
            if local_panic.is_none() {
                local_panic = st.panic.take();
            } else {
                st.panic = None;
            }
            stolen = self.shared.stolen.load(Ordering::Relaxed);
        }
        if let Some(o) = &obs {
            o.metrics.gauge_set("pool_workers_busy", &[], 0.0);
        }
        drop(_guard);
        if let Some(p) = local_panic {
            resume_unwind(p);
        }
        stolen
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    // Skip to the newest epoch whether or not we join it: a
                    // worker that slept through intermediate jobs must not
                    // treat the next epoch bump as several pending jobs.
                    seen = st.epoch;
                    if st.tickets > 0 {
                        st.tickets -= 1;
                        st.active += 1;
                        break st.job.expect("ticket available without a published job");
                    }
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        loop {
            let b = shared.cursor.fetch_add(1, Ordering::Relaxed);
            if b >= job.blocks {
                break;
            }
            match catch_unwind(AssertUnwindSafe(|| (job.task)(b))) {
                Ok(()) => {
                    shared.stolen.fetch_add(1, Ordering::Relaxed);
                }
                Err(p) => {
                    // Stop the whole job: park the payload for the
                    // submitter and drain the cursor.
                    shared.cursor.store(job.blocks, Ordering::Relaxed);
                    let mut st = shared.state.lock().unwrap();
                    if st.panic.is_none() {
                        st.panic = Some(p);
                    }
                    break;
                }
            }
        }
        let mut st = shared.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Every block runs exactly once, across reused submissions.
    #[test]
    fn each_block_runs_exactly_once() {
        let pool = WorkerPool::new(3);
        for blocks in [1usize, 2, 3, 4, 7, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..blocks).map(|_| AtomicUsize::new(0)).collect();
            pool.run(blocks, &|b| {
                hits[b].fetch_add(1, Ordering::Relaxed);
            });
            for (b, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "block {b} of {blocks}");
            }
        }
    }

    /// With enough non-trivial blocks, pool threads actually participate
    /// (steal > 0), and the count never exceeds the block total. Retried a
    /// few times: with very cheap blocks the submitter can legitimately
    /// drain the whole cursor before the workers wake.
    #[test]
    fn pool_threads_steal_work() {
        let pool = WorkerPool::new(4);
        for attempt in 0..20 {
            let stolen = pool.run(10_000, &|b| {
                let mut acc = b as f64;
                for _ in 0..200 {
                    acc = std::hint::black_box(acc * 1.0000001 + 1.0);
                }
                std::hint::black_box(acc);
            });
            assert!(stolen <= 10_000);
            if stolen > 0 {
                return;
            }
            eprintln!("attempt {attempt}: submitter won the whole grid, retrying");
        }
        panic!("pool threads never claimed a block in 20 attempts");
    }

    /// All participants make progress on a ragged grid: with blocks that
    /// block until every worker has arrived, completion proves that the
    /// pool threads and submitter are all live simultaneously.
    #[test]
    fn all_workers_progress_on_ragged_grid() {
        let workers = 3; // 4 participants incl. submitter
        let pool = WorkerPool::new(workers);
        let participants = workers + 1;
        // blocks chosen so blocks % participants != 0 (the seed executor's
        // static chunking gave degenerate chunks here).
        let blocks = participants + 1;
        let arrived = AtomicUsize::new(0);
        pool.run(blocks, &|_b| {
            arrived.fetch_add(1, Ordering::Relaxed);
            // The first `participants` blocks each wait until the whole
            // pool has claimed one — only possible if every participant
            // takes a block (dynamic cursor, no zero-width chunks).
            while arrived.load(Ordering::Relaxed) < participants {
                std::hint::spin_loop();
            }
        });
        assert_eq!(arrived.load(Ordering::Relaxed), blocks);
    }

    /// A job with fewer blocks than workers completes even though only a
    /// subset of the pool is invited, and single-block jobs never involve
    /// the pool at all. Exercises the ticket protocol's lost-notification
    /// path under rapid back-to-back submissions.
    #[test]
    fn small_jobs_complete_with_partial_wakeups() {
        let pool = WorkerPool::new(8);
        for round in 0..200 {
            let blocks = 1 + round % 4; // 1..=4 blocks vs 8 workers
            let hits: Vec<AtomicUsize> = (0..blocks).map(|_| AtomicUsize::new(0)).collect();
            let stolen = pool.run(blocks, &|b| {
                hits[b].fetch_add(1, Ordering::Relaxed);
            });
            assert!(stolen <= blocks as u64);
            for (b, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "block {b} round {round}");
            }
        }
    }

    /// A panic on a pool thread propagates to the submitter.
    #[test]
    #[should_panic(expected = "boom in block")]
    fn worker_panic_propagates() {
        let pool = WorkerPool::new(2);
        pool.run(64, &|b| {
            if b == 13 {
                panic!("boom in block {b}");
            }
        });
    }

    /// The pool survives a panicked job and runs subsequent jobs cleanly.
    #[test]
    fn pool_is_reusable_after_panic() {
        let pool = WorkerPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|b| {
                if b == 0 {
                    panic!("first job fails");
                }
            })
        }));
        assert!(r.is_err());
        let hits = AtomicUsize::new(0);
        pool.run(16, &|_b| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    /// An inert pool (0 workers) runs everything inline.
    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        let hits = AtomicUsize::new(0);
        let stolen = pool.run(5, &|_b| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5);
        assert_eq!(stolen, 0);
    }

    /// An inert pool under many concurrent submitters: each submission's
    /// blocks run exactly once on its own thread, nothing is stolen, and
    /// the submitters genuinely overlap (no hidden serialization) — proven
    /// by a rendezvous block that waits until every submitter has arrived.
    #[test]
    fn zero_worker_pool_supports_concurrent_submitters() {
        let pool = WorkerPool::new(0);
        let submitters = 6;
        let arrived = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..submitters)
                .map(|_| {
                    s.spawn(|| {
                        let hits: Vec<AtomicUsize> = (0..16).map(|_| AtomicUsize::new(0)).collect();
                        let stolen = pool.run(16, &|b| {
                            if b == 0 {
                                // All submitters must be inside `run` at
                                // once — impossible if inline mode took the
                                // submit lock.
                                arrived.fetch_add(1, Ordering::Relaxed);
                                while arrived.load(Ordering::Relaxed) < submitters {
                                    std::hint::spin_loop();
                                }
                            }
                            hits[b].fetch_add(1, Ordering::Relaxed);
                        });
                        assert_eq!(stolen, 0, "inert pool must not steal");
                        for (b, h) in hits.iter().enumerate() {
                            assert_eq!(h.load(Ordering::Relaxed), 1, "block {b}");
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(arrived.load(Ordering::Relaxed), submitters);
    }

    /// The busy-worker gauge tracks pooled jobs: total worker count is
    /// published at attach, the busy gauge returns to 0 after every drain,
    /// and inline jobs leave it untouched.
    #[test]
    fn busy_gauge_tracks_pooled_jobs() {
        let pool = WorkerPool::new(3);
        let obs = obs::Obs::shared();
        pool.set_obs(obs.clone());
        assert_eq!(obs.metrics.gauge("pool_workers", &[]), Some(3.0));
        assert_eq!(obs.metrics.gauge("pool_workers_busy", &[]), Some(0.0));

        // Pooled job: observe the gauge from inside a block while the job
        // is live (it is set before any block runs).
        let seen = std::sync::Mutex::new(None);
        pool.run(64, &|_b| {
            let mut s = seen.lock().unwrap();
            if s.is_none() {
                *s = obs.metrics.gauge("pool_workers_busy", &[]);
            }
        });
        assert_eq!(*seen.lock().unwrap(), Some(3.0));
        assert_eq!(obs.metrics.gauge("pool_workers_busy", &[]), Some(0.0));

        // Single-block job: inline path, gauge untouched (still 0).
        pool.run(1, &|_b| {});
        assert_eq!(obs.metrics.gauge("pool_workers_busy", &[]), Some(0.0));
    }
}
