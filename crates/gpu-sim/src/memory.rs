//! Global device memory with byte-exact traffic accounting.
//!
//! [`GlobalBuffer`] is the substrate's model of GPU global memory: a shared
//! array that kernels read and write through a per-block [`Tally`], so that
//! every launch knows exactly how many bytes it moved. This is the quantity
//! the paper's whole performance analysis rests on (B/F, Table 2), so it is
//! *measured*, never assumed.
//!
//! An optional [`crate::racecheck::RaceChecker`] validates the concurrency
//! discipline of the kernels (used by the tests for Algorithm 2's circular
//! array shifting).

use crate::fault::FaultPlan;
use crate::racecheck::{Epoch, RaceChecker};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Per-block access counters, aggregated into
/// [`crate::exec::LaunchStats`] when a launch completes.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Bytes read from DRAM under the launch-scoped L2 model: the first
    /// read of a cell in a launch is a DRAM transaction, repeats (e.g.
    /// halo cells shared between adjacent columns) are L2 hits. Equal to
    /// `bytes_read` on buffers without touch tracking.
    pub dram_bytes_read: u64,
    /// Reads served by the modeled L2 (repeat touches within one launch).
    pub l2_read_hits: u64,
}

impl Tally {
    /// Accumulate another tally into this one.
    pub fn merge(&mut self, other: &Tally) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.dram_bytes_read += other.dram_bytes_read;
        self.l2_read_hits += other.l2_read_hits;
    }

    /// Total bytes requested in either direction (including L2 hits).
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Bytes that reach DRAM: unique reads plus all writes. This is the
    /// quantity the paper's B/F model (Table 2) describes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_bytes_read + self.bytes_written
    }

    /// L2 hit rate over reads.
    pub fn l2_hit_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.l2_read_hits as f64 / self.reads as f64
        }
    }
}

/// A global-memory array shared by all blocks of a launch.
///
/// # Concurrency contract
/// Kernels may access a `GlobalBuffer` from many blocks concurrently; the
/// *algorithm* must guarantee that no cell is written by two blocks in one
/// launch, and that no block reads a cell another block writes in the same
/// lockstep phase. Enable the race checker (in tests) to verify this
/// dynamically; release-path accesses are unchecked for speed, exactly like
/// real global memory.
pub struct GlobalBuffer<T = f64> {
    cells: Box<[UnsafeCell<T>]>,
    race: Option<RaceChecker>,
    /// Launch id of the last read per cell, for the launch-scoped L2 model.
    touch: Option<Box<[AtomicU32]>>,
    /// Injected-fault script consulted on counted writes (tests/resilience).
    faults: Option<Arc<FaultPlan>>,
}

// Safety: concurrent access is governed by the documented contract above;
// the race checker exists to validate it in tests.
unsafe impl<T: Send> Sync for GlobalBuffer<T> {}
unsafe impl<T: Send> Send for GlobalBuffer<T> {}

impl<T: Copy + Default> GlobalBuffer<T> {
    /// Allocate a zero/default-initialized buffer of `len` elements.
    pub fn new(len: usize) -> Self {
        Self::from_vec(vec![T::default(); len])
    }
}

impl<T: Copy> GlobalBuffer<T> {
    /// Take ownership of host data.
    pub fn from_vec(v: Vec<T>) -> Self {
        GlobalBuffer {
            cells: v.into_iter().map(UnsafeCell::new).collect(),
            race: None,
            touch: None,
            faults: None,
        }
    }

    /// Attach a fault-injection plan: counted kernel writes consult it and
    /// may have their value corrupted in place. Accounting is unchanged —
    /// a corrupted write still moved its bytes.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Builder-style [`GlobalBuffer::set_fault_plan`].
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.set_fault_plan(plan);
        self
    }

    /// Enable the launch-scoped L2 model: within one launch, only the first
    /// read of each cell counts as DRAM traffic; repeats are L2 hits. The
    /// L2 is assumed cold at each launch boundary (conservative — matches
    /// the paper's per-step traffic model for problems much larger than L2).
    pub fn with_touch_tracking(mut self) -> Self {
        self.touch = Some((0..self.cells.len()).map(|_| AtomicU32::new(0)).collect());
        self
    }

    /// Attach a race checker covering every cell (test configurations).
    pub fn with_racecheck(mut self) -> Self {
        self.race = Some(RaceChecker::new(self.cells.len()));
        self
    }

    /// Attach a *strict* race checker: additionally forbids cross-block
    /// reads of cells written in an earlier phase of the same launch. Use
    /// for in-place buffers protected by circular array shifting, where such
    /// a read means the shift failed to protect old data.
    pub fn with_racecheck_strict(mut self) -> Self {
        self.race = Some(RaceChecker::with_mode(self.cells.len(), true));
        self
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Size of the allocation in bytes (the device-memory footprint).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<T>()
    }

    /// One step of the launch-scoped L2 touch model: `true` iff this access
    /// is the cell's first touch of the launch (a DRAM transaction).
    ///
    /// The cheap relaxed load in front of the swap is a fast path for repeat
    /// touches (the common case: 8 of 9 gathers of a D2Q9 pull re-touch a
    /// cell) — a plain load instead of a locked RMW. It cannot change the
    /// accounting: `launch` is only ever stored during this launch, so a
    /// load observing it proves some participant already won the swap and
    /// counted the DRAM byte. When the load sees anything else we fall
    /// through to the swap, whose return value stays authoritative — exactly
    /// one participant per (cell, launch) observes a foreign value, so the
    /// merged totals are schedule-invariant either way.
    ///
    /// When the epoch is [`Epoch::exclusive`] (inline dispatch: every block
    /// of the launch runs on the submitting thread), no other participant
    /// can touch the cell concurrently, so a plain store replaces the locked
    /// swap — same state machine, same counts, no bus lock.
    #[inline(always)]
    fn touch_is_dram(cell: &AtomicU32, ep: Epoch) -> bool {
        if cell.load(Ordering::Relaxed) == ep.launch {
            return false;
        }
        if ep.exclusive {
            cell.store(ep.launch, Ordering::Relaxed);
            return true;
        }
        cell.swap(ep.launch, Ordering::Relaxed) != ep.launch
    }

    /// Kernel-path read: counted and race-checked. Bounds are validated
    /// *before* anything is tallied, so an out-of-bounds access panics with
    /// clean counters (`touch` always covers the whole buffer, so the
    /// single check suffices for both paths).
    #[inline(always)]
    pub fn read(&self, tally: &mut Tally, epoch: Epoch, i: usize) -> T {
        assert!(i < self.cells.len(), "global read out of bounds: {i}");
        if let Some(rc) = &self.race {
            rc.on_read(epoch, i);
        }
        tally.reads += 1;
        let sz = std::mem::size_of::<T>() as u64;
        tally.bytes_read += sz;
        match &self.touch {
            Some(touch) => {
                if Self::touch_is_dram(&touch[i], epoch) {
                    tally.dram_bytes_read += sz;
                } else {
                    tally.l2_read_hits += 1;
                }
            }
            None => tally.dram_bytes_read += sz,
        }
        // Safety: bounds-checked above; concurrent safety per the type
        // contract.
        unsafe { *self.cells[i].get() }
    }

    /// Kernel-path write: counted and race-checked. Bounds validated before
    /// counting, like [`GlobalBuffer::read`].
    #[inline(always)]
    pub fn write(&self, tally: &mut Tally, epoch: Epoch, i: usize, value: T) {
        assert!(i < self.cells.len(), "global write out of bounds: {i}");
        if let Some(rc) = &self.race {
            rc.on_write(epoch, i);
        }
        tally.writes += 1;
        tally.bytes_written += std::mem::size_of::<T>() as u64;
        let mut value = value;
        if let Some(p) = &self.faults {
            p.corrupt(i, &mut value);
        }
        unsafe { *self.cells[i].get() = value };
    }

    /// Bulk-counted read of `out.len()` consecutive cells starting at
    /// `start`.
    ///
    /// Byte-identical accounting to `out.len()` element-wise [`read`]s:
    /// bounds are validated once for the whole span, `reads`/`bytes_read`
    /// are bumped in one addition, race checks and L2 touch swaps still
    /// happen per element (they are per-cell state machines), and the data
    /// moves with one `copy_nonoverlapping` over the contiguous cell slab.
    ///
    /// [`read`]: GlobalBuffer::read
    pub fn read_span(&self, tally: &mut Tally, epoch: Epoch, start: usize, out: &mut [T]) {
        let len = out.len();
        if len == 0 {
            return;
        }
        assert!(
            len <= self.cells.len() && start <= self.cells.len() - len,
            "global read span out of bounds: {start}..{}",
            start + len
        );
        if let Some(rc) = &self.race {
            for i in start..start + len {
                rc.on_read(epoch, i);
            }
        }
        let sz = std::mem::size_of::<T>() as u64;
        tally.reads += len as u64;
        tally.bytes_read += sz * len as u64;
        match &self.touch {
            Some(touch) => {
                let mut dram = 0u64;
                for t in &touch[start..start + len] {
                    if Self::touch_is_dram(t, epoch) {
                        dram += 1;
                    }
                }
                tally.dram_bytes_read += sz * dram;
                tally.l2_read_hits += len as u64 - dram;
            }
            None => tally.dram_bytes_read += sz * len as u64,
        }
        // Safety: span bounds-checked above; `UnsafeCell<T>` is layout-
        // identical to `T` and the cell slab is dense, so the span is one
        // contiguous `T` run. Concurrent safety per the type contract.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.cells[start].get() as *const T,
                out.as_mut_ptr(),
                len,
            );
        }
    }

    /// Bulk-counted write of `src.len()` consecutive cells starting at
    /// `start`. Accounting mirror of [`GlobalBuffer::read_span`].
    pub fn write_span(&self, tally: &mut Tally, epoch: Epoch, start: usize, src: &[T]) {
        let len = src.len();
        if len == 0 {
            return;
        }
        assert!(
            len <= self.cells.len() && start <= self.cells.len() - len,
            "global write span out of bounds: {start}..{}",
            start + len
        );
        if let Some(rc) = &self.race {
            for i in start..start + len {
                rc.on_write(epoch, i);
            }
        }
        tally.writes += len as u64;
        tally.bytes_written += std::mem::size_of::<T>() as u64 * len as u64;
        if let Some(p) = &self.faults {
            // Fault path: store element-wise so each cell's value can be
            // corrupted independently. Tallied identically to the bulk path.
            for (k, v) in src.iter().enumerate() {
                let mut v = *v;
                p.corrupt(start + k, &mut v);
                unsafe { *self.cells[start + k].get() = v };
            }
            return;
        }
        // Safety: as in `read_span`.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.cells[start].get(), len);
        }
    }

    /// Bulk-counted read of `rows` equal-length spans at a fixed stride:
    /// span `r` covers cells `start + r·stride .. + len` and lands at
    /// `out[r·len..]`. Accounting is byte-identical to `rows` separate
    /// [`GlobalBuffer::read_span`] calls, but the per-call envelope — race
    /// dispatch, touch-table dispatch, tally field updates — is paid once.
    /// Short strided rows (an SoA moment lattice reads `M` of them per
    /// lattice row) are dominated by that envelope, not by the bytes.
    #[allow(clippy::too_many_arguments)]
    pub fn read_spans(
        &self,
        tally: &mut Tally,
        epoch: Epoch,
        start: usize,
        stride: usize,
        rows: usize,
        len: usize,
        out: &mut [T],
    ) {
        if rows == 0 || len == 0 {
            return;
        }
        debug_assert_eq!(out.len(), rows * len);
        let n = self.cells.len();
        let last = start + (rows - 1) * stride;
        assert!(
            len <= n && start <= n - len && last <= n - len,
            "global strided read out of bounds: {rows} rows of {start}..+{len} by {stride}"
        );
        if let Some(rc) = &self.race {
            for r in 0..rows {
                let s = start + r * stride;
                for i in s..s + len {
                    rc.on_read(epoch, i);
                }
            }
        }
        let sz = std::mem::size_of::<T>() as u64;
        let total = (rows * len) as u64;
        tally.reads += total;
        tally.bytes_read += sz * total;
        match &self.touch {
            Some(touch) => {
                let mut dram = 0u64;
                for r in 0..rows {
                    let s = start + r * stride;
                    for t in &touch[s..s + len] {
                        if Self::touch_is_dram(t, epoch) {
                            dram += 1;
                        }
                    }
                }
                tally.dram_bytes_read += sz * dram;
                tally.l2_read_hits += total - dram;
            }
            None => tally.dram_bytes_read += sz * total,
        }
        // Safety: every row span bounds-checked above (monotone starts, the
        // first and last row checked explicitly cover the rest); same cell
        // contract as `read_span`.
        for r in 0..rows {
            let s = start + r * stride;
            unsafe {
                std::ptr::copy_nonoverlapping(
                    self.cells[s].get() as *const T,
                    out[r * len..].as_mut_ptr(),
                    len,
                );
            }
        }
    }

    /// Strided-write mirror of [`GlobalBuffer::read_spans`]: span `r` takes
    /// `src[r·len..]` into cells `start + r·stride .. + len`. Accounting is
    /// byte-identical to `rows` separate [`GlobalBuffer::write_span`] calls.
    #[allow(clippy::too_many_arguments)]
    pub fn write_spans(
        &self,
        tally: &mut Tally,
        epoch: Epoch,
        start: usize,
        stride: usize,
        rows: usize,
        len: usize,
        src: &[T],
    ) {
        if rows == 0 || len == 0 {
            return;
        }
        debug_assert_eq!(src.len(), rows * len);
        let n = self.cells.len();
        let last = start + (rows - 1) * stride;
        assert!(
            len <= n && start <= n - len && last <= n - len,
            "global strided write out of bounds: {rows} rows of {start}..+{len} by {stride}"
        );
        if let Some(rc) = &self.race {
            for r in 0..rows {
                let s = start + r * stride;
                for i in s..s + len {
                    rc.on_write(epoch, i);
                }
            }
        }
        let sz = std::mem::size_of::<T>() as u64;
        let total = (rows * len) as u64;
        tally.writes += total;
        tally.bytes_written += sz * total;
        if let Some(p) = &self.faults {
            // Fault path: element-wise so each cell can corrupt
            // independently, exactly as `write_span` does.
            for r in 0..rows {
                let s = start + r * stride;
                for (k, v) in src[r * len..][..len].iter().enumerate() {
                    let mut v = *v;
                    p.corrupt(s + k, &mut v);
                    unsafe { *self.cells[s + k].get() = v };
                }
            }
            return;
        }
        for r in 0..rows {
            let s = start + r * stride;
            unsafe {
                std::ptr::copy_nonoverlapping(src[r * len..].as_ptr(), self.cells[s].get(), len);
            }
        }
    }

    /// Host-path read (uncounted). Only sound between launches.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        unsafe { *self.cells[i].get() }
    }

    /// Host-path write (uncounted). Only sound between launches.
    #[inline]
    pub fn set(&self, i: usize, value: T) {
        unsafe { *self.cells[i].get() = value };
    }

    /// Copy the whole buffer to host memory. Only sound between launches.
    pub fn snapshot(&self) -> Vec<T> {
        (0..self.cells.len()).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(block: u32) -> Epoch {
        Epoch {
            launch: 1,
            phase: 0,
            block,
            exclusive: false,
        }
    }

    #[test]
    fn tally_counts_bytes_exactly() {
        let b: GlobalBuffer<f64> = GlobalBuffer::new(16);
        let mut t = Tally::default();
        for i in 0..10 {
            b.write(&mut t, ep(0), i, i as f64);
        }
        for i in 0..4 {
            let _ = b.read(&mut t, ep(0), i);
        }
        assert_eq!(t.writes, 10);
        assert_eq!(t.reads, 4);
        assert_eq!(t.bytes_written, 80);
        assert_eq!(t.bytes_read, 32);
        assert_eq!(t.total_bytes(), 112);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Tally {
            reads: 1,
            writes: 2,
            bytes_read: 8,
            bytes_written: 16,
            dram_bytes_read: 8,
            l2_read_hits: 0,
        };
        a.merge(&Tally {
            reads: 10,
            writes: 20,
            bytes_read: 80,
            bytes_written: 160,
            dram_bytes_read: 80,
            l2_read_hits: 0,
        });
        assert_eq!(a.reads, 11);
        assert_eq!(a.bytes_written, 176);
    }

    #[test]
    fn roundtrip_values() {
        let b: GlobalBuffer<f64> = GlobalBuffer::from_vec(vec![1.5, 2.5, 3.5]);
        let mut t = Tally::default();
        assert_eq!(b.read(&mut t, ep(0), 1), 2.5);
        b.write(&mut t, ep(0), 1, -7.0);
        assert_eq!(b.get(1), -7.0);
        assert_eq!(b.snapshot(), vec![1.5, -7.0, 3.5]);
        assert_eq!(b.size_bytes(), 24);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let b: GlobalBuffer<f64> = GlobalBuffer::new(4);
        let mut t = Tally::default();
        let _ = b.read(&mut t, ep(0), 4);
    }

    #[test]
    fn touch_tracking_models_l2() {
        let b: GlobalBuffer<f64> = GlobalBuffer::new(8).with_touch_tracking();
        let mut t = Tally::default();
        // First reads: DRAM. Repeats within the same launch: L2 — even from
        // another block (halo sharing between columns).
        for i in 0..4 {
            let _ = b.read(&mut t, ep(0), i);
        }
        for i in 0..4 {
            let _ = b.read(&mut t, ep(1), i);
        }
        assert_eq!(t.reads, 8);
        assert_eq!(t.dram_bytes_read, 32);
        assert_eq!(t.l2_read_hits, 4);
        assert!((t.l2_hit_rate() - 0.5).abs() < 1e-12);
        // A new launch starts with a cold L2.
        let mut t2 = Tally::default();
        let _ = b.read(
            &mut t2,
            Epoch {
                launch: 2,
                phase: 0,
                block: 0,
                exclusive: false,
            },
            0,
        );
        assert_eq!(t2.dram_bytes_read, 8);
        assert_eq!(t2.l2_read_hits, 0);
    }

    #[test]
    fn dram_bytes_without_tracking_equals_all_reads() {
        let b: GlobalBuffer<f64> = GlobalBuffer::new(4);
        let mut t = Tally::default();
        let _ = b.read(&mut t, ep(0), 1);
        let _ = b.read(&mut t, ep(0), 1);
        b.write(&mut t, ep(0), 2, 1.0);
        assert_eq!(t.dram_bytes_read, 16);
        assert_eq!(t.dram_bytes(), 24);
    }

    /// The satellite fix: an OOB access panics with *clean* counters — the
    /// panic path must not inflate reads/bytes.
    #[test]
    fn oob_access_does_not_count() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let b: GlobalBuffer<f64> = GlobalBuffer::new(4).with_touch_tracking();
        let mut t = Tally::default();
        assert!(catch_unwind(AssertUnwindSafe(|| b.read(&mut t, ep(0), 4))).is_err());
        assert_eq!(t, Tally::default(), "OOB read inflated the tally");
        assert!(catch_unwind(AssertUnwindSafe(|| b.write(&mut t, ep(0), 9, 1.0))).is_err());
        assert_eq!(t, Tally::default(), "OOB write inflated the tally");
        let mut out = [0.0; 3];
        assert!(
            catch_unwind(AssertUnwindSafe(|| b.read_span(&mut t, ep(0), 2, &mut out))).is_err()
        );
        assert_eq!(t, Tally::default(), "OOB read span inflated the tally");
        assert!(
            catch_unwind(AssertUnwindSafe(|| b.write_span(&mut t, ep(0), 3, &out))).is_err(),
            "write span 3..6 of len-4 buffer must panic"
        );
        assert_eq!(t, Tally::default(), "OOB write span inflated the tally");
    }

    /// Span ops produce byte-identical tallies to element-wise loops — the
    /// equivalence argument the kernel ports rest on — including the L2
    /// touch model under repeated reads.
    #[test]
    fn span_tally_matches_element_tally() {
        let run = |spans: bool| {
            let b: GlobalBuffer<f64> =
                GlobalBuffer::from_vec((0..32).map(|i| i as f64).collect()).with_touch_tracking();
            let mut t = Tally::default();
            let mut buf = [0.0; 12];
            if spans {
                b.read_span(&mut t, ep(0), 4, &mut buf);
                b.read_span(&mut t, ep(1), 8, &mut buf[..8]); // overlaps: 8..16 repeat
                let vals: Vec<f64> = (0..6).map(|i| -(i as f64)).collect();
                b.write_span(&mut t, ep(0), 20, &vals);
            } else {
                for (k, v) in buf.iter_mut().enumerate() {
                    *v = b.read(&mut t, ep(0), 4 + k);
                }
                for k in 0..8 {
                    let _ = b.read(&mut t, ep(1), 8 + k);
                }
                for i in 0..6 {
                    b.write(&mut t, ep(0), 20 + i, -(i as f64));
                }
            }
            (t, b.snapshot())
        };
        let (ts, fs) = run(true);
        let (te, fe) = run(false);
        assert_eq!(ts, te, "span vs element tallies diverged");
        assert_eq!(fs, fe, "span vs element values diverged");
        assert_eq!(ts.reads, 20);
        assert_eq!(ts.l2_read_hits, 8, "cells 8..16 re-read within the launch");
        assert_eq!(ts.dram_bytes_read, 12 * 8);
        assert_eq!(ts.writes, 6);
    }

    /// Span ops feed the same per-cell race checker as element ops: a
    /// same-phase cross-block write/read overlap inside a span is caught.
    #[test]
    #[should_panic(expected = "race")]
    fn span_ops_are_race_checked() {
        let b: GlobalBuffer<f64> = GlobalBuffer::new(16).with_racecheck();
        let mut t = Tally::default();
        let vals = [1.0; 8];
        b.write_span(&mut t, ep(0), 0, &vals);
        let mut out = [0.0; 4];
        b.read_span(&mut t, ep(1), 6, &mut out); // overlaps block 0's write
    }

    #[test]
    fn span_roundtrip_values() {
        let b: GlobalBuffer<f64> = GlobalBuffer::from_vec(vec![0.0; 10]);
        let mut t = Tally::default();
        let vals = [3.0, 1.0, 4.0, 1.0, 5.0];
        b.write_span(&mut t, ep(0), 2, &vals);
        let mut out = [0.0; 5];
        b.read_span(&mut t, ep(0), 2, &mut out);
        assert_eq!(out, vals);
        assert_eq!(b.get(0), 0.0);
        assert_eq!(b.get(7), 0.0);
        // Zero-length spans are free.
        b.read_span(&mut t, ep(0), 10, &mut []);
        b.write_span(&mut t, ep(0), 10, &[]);
        assert_eq!(t.reads, 5);
        assert_eq!(t.writes, 5);
    }

    /// Fault injection corrupts values on both the element and span write
    /// paths but never the accounting: tallies with a plan attached are
    /// byte-identical to tallies without one.
    #[test]
    fn fault_injection_is_accounting_neutral() {
        use crate::fault::FaultPlan;
        let run = |plan: Option<Arc<FaultPlan>>| {
            let mut b: GlobalBuffer<f64> = GlobalBuffer::new(16).with_touch_tracking();
            if let Some(p) = plan {
                b.set_fault_plan(p);
            }
            let mut t = Tally::default();
            b.write(&mut t, ep(0), 3, 1.5);
            let vals = [2.0, 3.0, 4.0, 5.0];
            b.write_span(&mut t, ep(0), 6, &vals);
            let mut out = [0.0; 4];
            b.read_span(&mut t, ep(0), 6, &mut out);
            (t, b.snapshot())
        };

        let mut plan = FaultPlan::new();
        plan.inject_nan(3, 0); // element path
        plan.inject_bitflip(7, 63, 0); // span path: sign flip of cell 7
        let plan = Arc::new(plan);
        let (tf, ff) = run(Some(plan.clone()));
        let (tc, fc) = run(None);

        assert_eq!(tf, tc, "fault plan changed the tally");
        assert!(ff[3].is_nan(), "element-path NaN fault did not land");
        assert_eq!(ff[7], -fc[7], "span-path bitflip did not land");
        let untouched: Vec<usize> = (0..16).filter(|&i| i != 3 && i != 7).collect();
        for i in untouched {
            assert_eq!(ff[i], fc[i], "cell {i} corrupted unexpectedly");
        }
        assert_eq!(plan.mem_faults_fired(), 2);
    }

    #[test]
    fn generic_element_sizes() {
        let b: GlobalBuffer<u32> = GlobalBuffer::new(8);
        let mut t = Tally::default();
        b.write(&mut t, ep(0), 0, 42);
        assert_eq!(t.bytes_written, 4);
        assert_eq!(b.size_bytes(), 32);
    }
}
