//! Global device memory with byte-exact traffic accounting.
//!
//! [`GlobalBuffer`] is the substrate's model of GPU global memory: a shared
//! array that kernels read and write through a per-block [`Tally`], so that
//! every launch knows exactly how many bytes it moved. This is the quantity
//! the paper's whole performance analysis rests on (B/F, Table 2), so it is
//! *measured*, never assumed.
//!
//! An optional [`crate::racecheck::RaceChecker`] validates the concurrency
//! discipline of the kernels (used by the tests for Algorithm 2's circular
//! array shifting).

use crate::racecheck::{Epoch, RaceChecker};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};

/// Per-block access counters, aggregated into
/// [`crate::exec::LaunchStats`] when a launch completes.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Bytes read from DRAM under the launch-scoped L2 model: the first
    /// read of a cell in a launch is a DRAM transaction, repeats (e.g.
    /// halo cells shared between adjacent columns) are L2 hits. Equal to
    /// `bytes_read` on buffers without touch tracking.
    pub dram_bytes_read: u64,
    /// Reads served by the modeled L2 (repeat touches within one launch).
    pub l2_read_hits: u64,
}

impl Tally {
    /// Accumulate another tally into this one.
    pub fn merge(&mut self, other: &Tally) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.dram_bytes_read += other.dram_bytes_read;
        self.l2_read_hits += other.l2_read_hits;
    }

    /// Total bytes requested in either direction (including L2 hits).
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Bytes that reach DRAM: unique reads plus all writes. This is the
    /// quantity the paper's B/F model (Table 2) describes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_bytes_read + self.bytes_written
    }

    /// L2 hit rate over reads.
    pub fn l2_hit_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.l2_read_hits as f64 / self.reads as f64
        }
    }
}

/// A global-memory array shared by all blocks of a launch.
///
/// # Concurrency contract
/// Kernels may access a `GlobalBuffer` from many blocks concurrently; the
/// *algorithm* must guarantee that no cell is written by two blocks in one
/// launch, and that no block reads a cell another block writes in the same
/// lockstep phase. Enable the race checker (in tests) to verify this
/// dynamically; release-path accesses are unchecked for speed, exactly like
/// real global memory.
pub struct GlobalBuffer<T = f64> {
    cells: Box<[UnsafeCell<T>]>,
    race: Option<RaceChecker>,
    /// Launch id of the last read per cell, for the launch-scoped L2 model.
    touch: Option<Box<[AtomicU32]>>,
}

// Safety: concurrent access is governed by the documented contract above;
// the race checker exists to validate it in tests.
unsafe impl<T: Send> Sync for GlobalBuffer<T> {}
unsafe impl<T: Send> Send for GlobalBuffer<T> {}

impl<T: Copy + Default> GlobalBuffer<T> {
    /// Allocate a zero/default-initialized buffer of `len` elements.
    pub fn new(len: usize) -> Self {
        Self::from_vec(vec![T::default(); len])
    }
}

impl<T: Copy> GlobalBuffer<T> {
    /// Take ownership of host data.
    pub fn from_vec(v: Vec<T>) -> Self {
        GlobalBuffer {
            cells: v.into_iter().map(UnsafeCell::new).collect(),
            race: None,
            touch: None,
        }
    }

    /// Enable the launch-scoped L2 model: within one launch, only the first
    /// read of each cell counts as DRAM traffic; repeats are L2 hits. The
    /// L2 is assumed cold at each launch boundary (conservative — matches
    /// the paper's per-step traffic model for problems much larger than L2).
    pub fn with_touch_tracking(mut self) -> Self {
        self.touch = Some((0..self.cells.len()).map(|_| AtomicU32::new(0)).collect());
        self
    }

    /// Attach a race checker covering every cell (test configurations).
    pub fn with_racecheck(mut self) -> Self {
        self.race = Some(RaceChecker::new(self.cells.len()));
        self
    }

    /// Attach a *strict* race checker: additionally forbids cross-block
    /// reads of cells written in an earlier phase of the same launch. Use
    /// for in-place buffers protected by circular array shifting, where such
    /// a read means the shift failed to protect old data.
    pub fn with_racecheck_strict(mut self) -> Self {
        self.race = Some(RaceChecker::with_mode(self.cells.len(), true));
        self
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Size of the allocation in bytes (the device-memory footprint).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<T>()
    }

    /// Kernel-path read: counted and race-checked.
    #[inline(always)]
    pub fn read(&self, tally: &mut Tally, epoch: Epoch, i: usize) -> T {
        if let Some(rc) = &self.race {
            rc.on_read(epoch, i);
        }
        tally.reads += 1;
        let sz = std::mem::size_of::<T>() as u64;
        tally.bytes_read += sz;
        match &self.touch {
            Some(touch) => {
                assert!(i < touch.len(), "global read out of bounds: {i}");
                let prev = touch[i].swap(epoch.launch, Ordering::Relaxed);
                if prev != epoch.launch {
                    tally.dram_bytes_read += sz;
                } else {
                    tally.l2_read_hits += 1;
                }
            }
            None => tally.dram_bytes_read += sz,
        }
        // Safety: in-bounds (indexing panics otherwise is emulated by the
        // explicit check below); concurrent safety per the type contract.
        assert!(i < self.cells.len(), "global read out of bounds: {i}");
        unsafe { *self.cells[i].get() }
    }

    /// Kernel-path write: counted and race-checked.
    #[inline(always)]
    pub fn write(&self, tally: &mut Tally, epoch: Epoch, i: usize, value: T) {
        if let Some(rc) = &self.race {
            rc.on_write(epoch, i);
        }
        tally.writes += 1;
        tally.bytes_written += std::mem::size_of::<T>() as u64;
        assert!(i < self.cells.len(), "global write out of bounds: {i}");
        unsafe { *self.cells[i].get() = value };
    }

    /// Host-path read (uncounted). Only sound between launches.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        unsafe { *self.cells[i].get() }
    }

    /// Host-path write (uncounted). Only sound between launches.
    #[inline]
    pub fn set(&self, i: usize, value: T) {
        unsafe { *self.cells[i].get() = value };
    }

    /// Copy the whole buffer to host memory. Only sound between launches.
    pub fn snapshot(&self) -> Vec<T> {
        (0..self.cells.len()).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(block: u32) -> Epoch {
        Epoch {
            launch: 1,
            phase: 0,
            block,
        }
    }

    #[test]
    fn tally_counts_bytes_exactly() {
        let b: GlobalBuffer<f64> = GlobalBuffer::new(16);
        let mut t = Tally::default();
        for i in 0..10 {
            b.write(&mut t, ep(0), i, i as f64);
        }
        for i in 0..4 {
            let _ = b.read(&mut t, ep(0), i);
        }
        assert_eq!(t.writes, 10);
        assert_eq!(t.reads, 4);
        assert_eq!(t.bytes_written, 80);
        assert_eq!(t.bytes_read, 32);
        assert_eq!(t.total_bytes(), 112);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Tally {
            reads: 1,
            writes: 2,
            bytes_read: 8,
            bytes_written: 16,
            dram_bytes_read: 8,
            l2_read_hits: 0,
        };
        a.merge(&Tally {
            reads: 10,
            writes: 20,
            bytes_read: 80,
            bytes_written: 160,
            dram_bytes_read: 80,
            l2_read_hits: 0,
        });
        assert_eq!(a.reads, 11);
        assert_eq!(a.bytes_written, 176);
    }

    #[test]
    fn roundtrip_values() {
        let b: GlobalBuffer<f64> = GlobalBuffer::from_vec(vec![1.5, 2.5, 3.5]);
        let mut t = Tally::default();
        assert_eq!(b.read(&mut t, ep(0), 1), 2.5);
        b.write(&mut t, ep(0), 1, -7.0);
        assert_eq!(b.get(1), -7.0);
        assert_eq!(b.snapshot(), vec![1.5, -7.0, 3.5]);
        assert_eq!(b.size_bytes(), 24);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let b: GlobalBuffer<f64> = GlobalBuffer::new(4);
        let mut t = Tally::default();
        let _ = b.read(&mut t, ep(0), 4);
    }

    #[test]
    fn touch_tracking_models_l2() {
        let b: GlobalBuffer<f64> = GlobalBuffer::new(8).with_touch_tracking();
        let mut t = Tally::default();
        // First reads: DRAM. Repeats within the same launch: L2 — even from
        // another block (halo sharing between columns).
        for i in 0..4 {
            let _ = b.read(&mut t, ep(0), i);
        }
        for i in 0..4 {
            let _ = b.read(&mut t, ep(1), i);
        }
        assert_eq!(t.reads, 8);
        assert_eq!(t.dram_bytes_read, 32);
        assert_eq!(t.l2_read_hits, 4);
        assert!((t.l2_hit_rate() - 0.5).abs() < 1e-12);
        // A new launch starts with a cold L2.
        let mut t2 = Tally::default();
        let _ = b.read(
            &mut t2,
            Epoch {
                launch: 2,
                phase: 0,
                block: 0,
            },
            0,
        );
        assert_eq!(t2.dram_bytes_read, 8);
        assert_eq!(t2.l2_read_hits, 0);
    }

    #[test]
    fn dram_bytes_without_tracking_equals_all_reads() {
        let b: GlobalBuffer<f64> = GlobalBuffer::new(4);
        let mut t = Tally::default();
        let _ = b.read(&mut t, ep(0), 1);
        let _ = b.read(&mut t, ep(0), 1);
        b.write(&mut t, ep(0), 2, 1.0);
        assert_eq!(t.dram_bytes_read, 16);
        assert_eq!(t.dram_bytes(), 24);
    }

    #[test]
    fn generic_element_sizes() {
        let b: GlobalBuffer<u32> = GlobalBuffer::new(8);
        let mut t = Tally::default();
        b.write(&mut t, ep(0), 0, 42);
        assert_eq!(t.bytes_written, 4);
        assert_eq!(b.size_bytes(), 32);
    }
}
