//! The execution engine: grids of thread blocks on CPU worker threads.
//!
//! Two launch modes:
//!
//! * [`Gpu::launch`] — every block runs to completion independently, blocks
//!   scheduled in parallel over CPU threads. Matches kernels whose blocks
//!   share no in-flight data (the ST pattern: read lattice A, write
//!   lattice B).
//! * [`Gpu::launch_lockstep`] — the launch is divided into global *phases*;
//!   all blocks execute phase `p` before any block starts `p + 1`. This is
//!   the deterministic bulk-synchronous over-approximation of SIMT progress
//!   under which the moment-representation kernels (Algorithm 2, one phase
//!   per tile/layer) are executed and race-checked. See `DESIGN.md` for why
//!   this substitution preserves the paper's behaviour.
//!
//! Within a block, kernels iterate over thread indices explicitly; a
//! `__syncthreads()` barrier corresponds to finishing one `for tid` loop and
//! starting the next (threads of a block execute sequentially, so every
//! barrier-delimited region is trivially ordered).

use crate::device::DeviceSpec;
use crate::memory::{GlobalBuffer, Tally};
use crate::racecheck::Epoch;
use obs::Obs;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Launch configuration: grid size, block size, and per-block memory.
#[derive(Copy, Clone, Debug)]
pub struct Launch {
    /// Number of thread blocks in the grid.
    pub blocks: usize,
    /// Threads per block (must respect the device limit).
    pub threads_per_block: usize,
    /// Shared-memory request per block, in `f64` words.
    pub shared_doubles: usize,
    /// Persistent per-block private scratch, in `f64` words (register/local
    /// memory analog that survives across lockstep phases).
    pub scratch_doubles: usize,
}

impl Launch {
    /// A simple launch with no shared memory or scratch.
    pub fn simple(blocks: usize, threads_per_block: usize) -> Self {
        Launch {
            blocks,
            threads_per_block,
            shared_doubles: 0,
            scratch_doubles: 0,
        }
    }

    /// Shared-memory bytes requested per block.
    pub fn shared_bytes(&self) -> usize {
        self.shared_doubles * std::mem::size_of::<f64>()
    }
}

/// Aggregated statistics of one launch.
#[derive(Clone, Debug, Default)]
pub struct LaunchStats {
    pub kernel: String,
    pub blocks: usize,
    pub threads_per_block: usize,
    pub phases: usize,
    pub tally: Tally,
}

impl LaunchStats {
    /// Requested bytes per work item (includes L2-served reads).
    pub fn bytes_per_item(&self, items: u64) -> f64 {
        self.tally.total_bytes() as f64 / items as f64
    }

    /// DRAM bytes per work item — the paper's B/F when `items` is the
    /// fluid-node count (Table 2).
    pub fn dram_bytes_per_item(&self, items: u64) -> f64 {
        self.tally.dram_bytes() as f64 / items as f64
    }
}

/// Per-block execution context: identity, memory handles, and counters.
pub struct BlockCtx<'a> {
    pub block_id: usize,
    /// Threads in this block.
    pub threads: usize,
    pub device: &'a DeviceSpec,
    launch_id: u32,
    phase: u32,
    pub tally: Tally,
    shared: Vec<f64>,
    scratch: Vec<f64>,
}

impl<'a> BlockCtx<'a> {
    /// The access identity for race checking.
    #[inline(always)]
    pub fn epoch(&self) -> Epoch {
        Epoch {
            launch: self.launch_id,
            phase: self.phase,
            block: self.block_id as u32,
        }
    }

    /// Counted read from global memory.
    #[inline(always)]
    pub fn read<T: Copy>(&mut self, buf: &GlobalBuffer<T>, i: usize) -> T {
        let ep = self.epoch();
        buf.read(&mut self.tally, ep, i)
    }

    /// Counted write to global memory.
    #[inline(always)]
    pub fn write<T: Copy>(&mut self, buf: &GlobalBuffer<T>, i: usize, v: T) {
        let ep = self.epoch();
        buf.write(&mut self.tally, ep, i, v)
    }

    /// The block's shared-memory slab.
    #[inline(always)]
    pub fn shared(&mut self) -> &mut [f64] {
        &mut self.shared
    }

    /// The block's persistent private scratch.
    #[inline(always)]
    pub fn scratch(&mut self) -> &mut [f64] {
        &mut self.scratch
    }

    /// Both slabs at once (for kernels that copy between them).
    #[inline(always)]
    pub fn shared_and_scratch(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.shared, &mut self.scratch)
    }
}

/// A kernel whose blocks are mutually independent within a launch.
pub trait Kernel: Sync {
    /// Name for profiler reports.
    fn name(&self) -> &str;
    /// Execute one block to completion.
    fn run_block(&self, ctx: &mut BlockCtx);
}

/// A kernel executed in grid-wide lockstep phases.
pub trait PhasedKernel: Sync {
    /// Name for profiler reports.
    fn name(&self) -> &str;
    /// Number of phases; all blocks run phase `p` before any runs `p+1`.
    fn phases(&self) -> usize;
    /// Execute one phase of one block.
    fn run_phase(&self, phase: usize, ctx: &mut BlockCtx);
}

/// The simulated device: owns the spec and the CPU worker configuration.
pub struct Gpu {
    pub device: DeviceSpec,
    cpu_threads: usize,
    launch_counter: AtomicU32,
    obs: Option<Arc<Obs>>,
}

/// Pointer wrapper for disjoint parallel access to the per-block contexts.
struct CtxPtr<'a>(*mut BlockCtx<'a>);
unsafe impl Send for CtxPtr<'_> {}
unsafe impl Sync for CtxPtr<'_> {}

impl Gpu {
    /// Create a simulated device using all available CPU parallelism.
    pub fn new(device: DeviceSpec) -> Self {
        let cpu = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Gpu {
            device,
            cpu_threads: cpu,
            launch_counter: AtomicU32::new(0),
            obs: None,
        }
    }

    /// Override the CPU worker count (builder style).
    pub fn with_cpu_threads(mut self, n: usize) -> Self {
        self.cpu_threads = n.max(1);
        self
    }

    /// Attach an observability hub (builder style): every launch then emits
    /// a kernel span (with per-phase child spans for lockstep kernels) into
    /// the tracer and publishes its traffic into the metrics registry.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Attach or replace the observability hub after construction.
    pub fn set_obs(&mut self, obs: Arc<Obs>) {
        self.obs = Some(obs);
    }

    /// The attached observability hub, if any.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    fn validate(&self, cfg: &Launch) {
        assert!(cfg.blocks > 0, "empty grid");
        assert!(
            cfg.threads_per_block >= 1
                && cfg.threads_per_block <= self.device.max_threads_per_block,
            "block of {} threads exceeds {} limit of {}",
            cfg.threads_per_block,
            self.device.name,
            self.device.max_threads_per_block
        );
        assert!(
            cfg.shared_bytes() <= self.device.shared_mem_per_sm,
            "shared memory request {} B exceeds {} per-SM capacity {} B",
            cfg.shared_bytes(),
            self.device.name,
            self.device.shared_mem_per_sm
        );
    }

    /// Launch an independent-blocks kernel.
    pub fn launch<K: Kernel>(&self, cfg: &Launch, kernel: &K) -> LaunchStats {
        struct Adapter<'k, K>(&'k K);
        impl<K: Kernel> PhasedKernel for Adapter<'_, K> {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn phases(&self) -> usize {
                1
            }
            fn run_phase(&self, _phase: usize, ctx: &mut BlockCtx) {
                self.0.run_block(ctx);
            }
        }
        self.launch_lockstep(cfg, &Adapter(kernel))
    }

    /// Launch a lockstep kernel: grid-wide barrier between phases.
    pub fn launch_lockstep<K: PhasedKernel>(&self, cfg: &Launch, kernel: &K) -> LaunchStats {
        self.validate(cfg);
        let launch_id = self.launch_counter.fetch_add(1, Ordering::Relaxed) + 1;

        let mut ctxs: Vec<BlockCtx> = (0..cfg.blocks)
            .map(|b| BlockCtx {
                block_id: b,
                threads: cfg.threads_per_block,
                device: &self.device,
                launch_id,
                phase: 0,
                tally: Tally::default(),
                shared: vec![0.0; cfg.shared_doubles],
                scratch: vec![0.0; cfg.scratch_doubles],
            })
            .collect();

        let phases = kernel.phases();
        let workers = self.cpu_threads.min(cfg.blocks).max(1);
        let _kernel_span = self.obs.as_ref().map(|o| {
            o.tracer.span_args(
                "kernel",
                kernel.name(),
                &[
                    ("device", self.device.name.to_string()),
                    ("blocks", cfg.blocks.to_string()),
                    ("threads_per_block", cfg.threads_per_block.to_string()),
                    ("phases", phases.to_string()),
                ],
            )
        });
        for phase in 0..phases {
            let _phase_span = match (&self.obs, phases > 1) {
                (Some(o), true) => Some(o.tracer.span_args(
                    "phase",
                    "phase",
                    &[("i", phase.to_string())],
                )),
                _ => None,
            };
            let ptr = CtxPtr(ctxs.as_mut_ptr());
            if workers == 1 {
                for ctx in ctxs.iter_mut() {
                    ctx.phase = phase as u32;
                    kernel.run_phase(phase, ctx);
                }
            } else {
                let nblocks = cfg.blocks;
                let chunk = nblocks.div_ceil(workers);
                std::thread::scope(|s| {
                    for w in 0..workers {
                        let lo = w * chunk;
                        let hi = ((w + 1) * chunk).min(nblocks);
                        if lo >= hi {
                            break;
                        }
                        let ptr = &ptr;
                        let kernel = &kernel;
                        s.spawn(move || {
                            for b in lo..hi {
                                // Safety: each block index belongs to
                                // exactly one worker's range.
                                let ctx = unsafe { &mut *ptr.0.add(b) };
                                ctx.phase = phase as u32;
                                kernel.run_phase(phase, ctx);
                            }
                        });
                    }
                });
            }
            // The grid-wide barrier is the scope join above; mark it so the
            // lockstep cadence is visible in the trace.
            if let (Some(o), true) = (&self.obs, phases > 1) {
                o.tracer
                    .instant("exec", "barrier", &[("after_phase", phase.to_string())]);
            }
        }

        let mut tally = Tally::default();
        for ctx in &ctxs {
            tally.merge(&ctx.tally);
        }
        let stats = LaunchStats {
            kernel: kernel.name().to_string(),
            blocks: cfg.blocks,
            threads_per_block: cfg.threads_per_block,
            phases,
            tally,
        };
        if let Some(o) = &self.obs {
            let labels = [
                ("kernel", stats.kernel.as_str()),
                ("device", self.device.name),
            ];
            let m = &o.metrics;
            m.counter_add("launches", &labels, 1);
            m.counter_add("bytes_read", &labels, stats.tally.bytes_read);
            m.counter_add("bytes_written", &labels, stats.tally.bytes_written);
            m.counter_add("dram_bytes_read", &labels, stats.tally.dram_bytes_read);
            m.counter_add("l2_read_hits", &labels, stats.tally.l2_read_hits);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Vector add: every block handles a contiguous span; counts must be
    /// byte-exact.
    struct VecAdd<'b> {
        a: &'b GlobalBuffer<f64>,
        b: &'b GlobalBuffer<f64>,
        out: &'b GlobalBuffer<f64>,
        span: usize,
    }
    impl Kernel for VecAdd<'_> {
        fn name(&self) -> &str {
            "vec_add"
        }
        fn run_block(&self, ctx: &mut BlockCtx) {
            let base = ctx.block_id * self.span;
            for t in 0..ctx.threads {
                let i = base + t;
                if i < self.out.len() {
                    let v = ctx.read(self.a, i) + ctx.read(self.b, i);
                    ctx.write(self.out, i, v);
                }
            }
        }
    }

    #[test]
    fn vec_add_counts_and_results() {
        let n = 1000;
        let a = GlobalBuffer::from_vec((0..n).map(|i| i as f64).collect());
        let b = GlobalBuffer::from_vec(vec![10.0; n]);
        let out: GlobalBuffer<f64> = GlobalBuffer::new(n);
        let gpu = Gpu::new(DeviceSpec::v100()).with_cpu_threads(4);
        let cfg = Launch::simple(8, 128);
        let stats = gpu.launch(
            &cfg,
            &VecAdd {
                a: &a,
                b: &b,
                out: &out,
                span: 128,
            },
        );
        assert_eq!(stats.tally.reads, 2 * n as u64);
        assert_eq!(stats.tally.writes, n as u64);
        assert_eq!(stats.tally.bytes_written, 8 * n as u64);
        assert_eq!(stats.bytes_per_item(n as u64), 24.0);
        for i in 0..n {
            assert_eq!(out.get(i), i as f64 + 10.0);
        }
    }

    /// Shared memory persists within a block; scratch persists across
    /// lockstep phases.
    struct PhaseProbe<'b> {
        out: &'b GlobalBuffer<f64>,
    }
    impl PhasedKernel for PhaseProbe<'_> {
        fn name(&self) -> &str {
            "phase_probe"
        }
        fn phases(&self) -> usize {
            3
        }
        fn run_phase(&self, phase: usize, ctx: &mut BlockCtx) {
            // Accumulate phase numbers in scratch; emit in last phase.
            ctx.scratch()[0] += (phase + 1) as f64;
            if phase == 2 {
                let v = ctx.scratch()[0];
                ctx.write(self.out, ctx.block_id, v);
            }
        }
    }

    #[test]
    fn scratch_persists_across_phases() {
        let out: GlobalBuffer<f64> = GlobalBuffer::new(6);
        let gpu = Gpu::new(DeviceSpec::mi100()).with_cpu_threads(3);
        let cfg = Launch {
            blocks: 6,
            threads_per_block: 32,
            shared_doubles: 0,
            scratch_doubles: 1,
        };
        let stats = gpu.launch_lockstep(&cfg, &PhaseProbe { out: &out });
        assert_eq!(stats.phases, 3);
        for b in 0..6 {
            assert_eq!(out.get(b), 6.0); // 1 + 2 + 3
        }
    }

    /// Lockstep really barriers between phases: phase 1 reads what *other*
    /// blocks wrote in phase 0.
    struct NeighborProbe<'b> {
        a: &'b GlobalBuffer<f64>,
        out: &'b GlobalBuffer<f64>,
        blocks: usize,
    }
    impl PhasedKernel for NeighborProbe<'_> {
        fn name(&self) -> &str {
            "neighbor_probe"
        }
        fn phases(&self) -> usize {
            2
        }
        fn run_phase(&self, phase: usize, ctx: &mut BlockCtx) {
            let b = ctx.block_id;
            if phase == 0 {
                ctx.write(self.a, b, (b * b) as f64);
            } else {
                let next = (b + 1) % self.blocks;
                let v = ctx.read(self.a, next);
                ctx.write(self.out, b, v);
            }
        }
    }

    #[test]
    fn lockstep_orders_cross_block_data() {
        let blocks = 16;
        let a: GlobalBuffer<f64> = GlobalBuffer::new(blocks).with_racecheck();
        let out: GlobalBuffer<f64> = GlobalBuffer::new(blocks);
        let gpu = Gpu::new(DeviceSpec::v100()).with_cpu_threads(8);
        let cfg = Launch::simple(blocks, 32);
        gpu.launch_lockstep(
            &cfg,
            &NeighborProbe {
                a: &a,
                out: &out,
                blocks,
            },
        );
        for b in 0..blocks {
            let next = (b + 1) % blocks;
            assert_eq!(out.get(b), (next * next) as f64);
        }
    }

    #[test]
    fn obs_records_kernel_spans_and_launch_metrics() {
        let obs = obs::Obs::shared();
        let out: GlobalBuffer<f64> = GlobalBuffer::new(6);
        let gpu = Gpu::new(DeviceSpec::v100())
            .with_cpu_threads(2)
            .with_obs(obs.clone());
        let cfg = Launch {
            blocks: 6,
            threads_per_block: 32,
            shared_doubles: 0,
            scratch_doubles: 1,
        };
        gpu.launch_lockstep(&cfg, &PhaseProbe { out: &out });
        // One kernel span + 3 phase spans (B/E each) + 3 barrier instants.
        let ev = obs.tracer.events();
        assert_eq!(ev.len(), 2 + 3 * 2 + 3);
        assert_eq!(ev[0].name, "phase_probe");
        assert_eq!(ev[0].cat, "kernel");
        assert!(ev.iter().filter(|e| e.ph == 'i').count() == 3);
        let labels = [("kernel", "phase_probe"), ("device", "NVIDIA V100")];
        assert_eq!(obs.metrics.counter("launches", &labels), Some(1));
        assert_eq!(
            obs.metrics.counter("bytes_written", &labels),
            Some(6 * 8),
            "6 blocks each write one f64"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_block_rejected() {
        let gpu = Gpu::new(DeviceSpec::v100());
        struct Nop;
        impl Kernel for Nop {
            fn name(&self) -> &str {
                "nop"
            }
            fn run_block(&self, _ctx: &mut BlockCtx) {}
        }
        gpu.launch(&Launch::simple(1, 2048), &Nop);
    }

    #[test]
    #[should_panic(expected = "shared memory request")]
    fn oversized_shared_rejected() {
        let gpu = Gpu::new(DeviceSpec::mi100());
        struct Nop;
        impl Kernel for Nop {
            fn name(&self) -> &str {
                "nop"
            }
            fn run_block(&self, _ctx: &mut BlockCtx) {}
        }
        let cfg = Launch {
            blocks: 1,
            threads_per_block: 64,
            shared_doubles: 9000, // 72 KB > MI100's 64 KB LDS
            scratch_doubles: 0,
        };
        gpu.launch(&cfg, &Nop);
    }

    /// A kernel that violates the circular-shift discipline — writing a slot
    /// in one phase that another block reads in a later phase of the same
    /// launch — is caught by the strict race checker end to end.
    struct WrongShift<'b> {
        buf: &'b GlobalBuffer<f64>,
    }
    impl PhasedKernel for WrongShift<'_> {
        fn name(&self) -> &str {
            "wrong_shift"
        }
        fn phases(&self) -> usize {
            2
        }
        fn run_phase(&self, phase: usize, ctx: &mut BlockCtx) {
            let b = ctx.block_id;
            if phase == 0 && b == 0 {
                // Block 0 eagerly overwrites a slot…
                ctx.write(self.buf, 5, 1.0);
            }
            if phase == 1 && b == 1 {
                // …that block 1 still needed to read as old data.
                let _ = ctx.read(self.buf, 5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "stale read")]
    fn strict_checker_catches_wrong_shift_end_to_end() {
        let buf: GlobalBuffer<f64> = GlobalBuffer::new(8).with_racecheck_strict();
        let gpu = Gpu::new(DeviceSpec::v100()).with_cpu_threads(1);
        gpu.launch_lockstep(&Launch::simple(2, 32), &WrongShift { buf: &buf });
    }

    /// Launch ids increment, so the race checker distinguishes launches.
    #[test]
    fn launch_ids_advance() {
        let gpu = Gpu::new(DeviceSpec::v100()).with_cpu_threads(1);
        let buf: GlobalBuffer<f64> = GlobalBuffer::new(4).with_racecheck();
        struct W<'b>(&'b GlobalBuffer<f64>);
        impl Kernel for W<'_> {
            fn name(&self) -> &str {
                "w"
            }
            fn run_block(&self, ctx: &mut BlockCtx) {
                ctx.write(self.0, 0, 1.0);
            }
        }
        // Two launches writing the same cell from block 0 — fine across
        // launches; would panic if launch ids did not advance… still block 0
        // in both, so use different grid positions via two kernels? Simpler:
        // write from block 1 of a 2-block grid in the second launch.
        gpu.launch(&Launch::simple(1, 32), &W(&buf));
        struct W2<'b>(&'b GlobalBuffer<f64>);
        impl Kernel for W2<'_> {
            fn name(&self) -> &str {
                "w2"
            }
            fn run_block(&self, ctx: &mut BlockCtx) {
                if ctx.block_id == 1 {
                    ctx.write(self.0, 0, 2.0);
                }
            }
        }
        gpu.launch(&Launch::simple(2, 32), &W2(&buf));
        assert_eq!(buf.get(0), 2.0);
    }
}
