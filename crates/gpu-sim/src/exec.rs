//! The execution engine: grids of thread blocks on CPU worker threads.
//!
//! Two launch modes:
//!
//! * [`Gpu::launch`] — every block runs to completion independently, blocks
//!   scheduled in parallel over CPU threads. Matches kernels whose blocks
//!   share no in-flight data (the ST pattern: read lattice A, write
//!   lattice B).
//! * [`Gpu::launch_lockstep`] — the launch is divided into global *phases*;
//!   all blocks execute phase `p` before any block starts `p + 1`. This is
//!   the deterministic bulk-synchronous over-approximation of SIMT progress
//!   under which the moment-representation kernels (Algorithm 2, one phase
//!   per tile/layer) are executed and race-checked. See `DESIGN.md` for why
//!   this substitution preserves the paper's behaviour.
//!
//! Within a block, kernels iterate over thread indices explicitly; a
//! `__syncthreads()` barrier corresponds to finishing one `for tid` loop and
//! starting the next (threads of a block execute sequentially, so every
//! barrier-delimited region is trivially ordered).
//!
//! Block scheduling is backed by a persistent [`WorkerPool`] owned by the
//! [`Gpu`]: threads are spawned once and woken per phase, and blocks are
//! claimed through a shared atomic cursor (dynamic load balancing — no
//! static chunking). Per-block shared/scratch slabs are recycled through a
//! slab arena on the `Gpu`, so steady-state launches allocate nothing.

use crate::device::DeviceSpec;
use crate::memory::{GlobalBuffer, Tally};
use crate::pool::WorkerPool;
use crate::racecheck::Epoch;
use obs::Obs;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Launch configuration: grid size, block size, and per-block memory.
#[derive(Copy, Clone, Debug)]
pub struct Launch {
    /// Number of thread blocks in the grid.
    pub blocks: usize,
    /// Threads per block (must respect the device limit).
    pub threads_per_block: usize,
    /// Shared-memory request per block, in `f64` words.
    pub shared_doubles: usize,
    /// Persistent per-block private scratch, in `f64` words (register/local
    /// memory analog that survives across lockstep phases).
    pub scratch_doubles: usize,
}

impl Launch {
    /// A simple launch with no shared memory or scratch.
    pub fn simple(blocks: usize, threads_per_block: usize) -> Self {
        Launch {
            blocks,
            threads_per_block,
            shared_doubles: 0,
            scratch_doubles: 0,
        }
    }

    /// Shared-memory bytes requested per block.
    pub fn shared_bytes(&self) -> usize {
        self.shared_doubles * std::mem::size_of::<f64>()
    }
}

/// Aggregated statistics of one launch.
#[derive(Clone, Debug, Default)]
pub struct LaunchStats {
    pub kernel: String,
    pub blocks: usize,
    pub threads_per_block: usize,
    pub phases: usize,
    pub tally: Tally,
}

impl LaunchStats {
    /// Requested bytes per work item (includes L2-served reads).
    pub fn bytes_per_item(&self, items: u64) -> f64 {
        self.tally.total_bytes() as f64 / items as f64
    }

    /// DRAM bytes per work item — the paper's B/F when `items` is the
    /// fluid-node count (Table 2).
    pub fn dram_bytes_per_item(&self, items: u64) -> f64 {
        self.tally.dram_bytes() as f64 / items as f64
    }
}

/// Per-block execution context: identity, memory handles, and counters.
pub struct BlockCtx<'a> {
    pub block_id: usize,
    /// Threads in this block.
    pub threads: usize,
    pub device: &'a DeviceSpec,
    launch_id: u32,
    phase: u32,
    exclusive: bool,
    pub tally: Tally,
    shared: Vec<f64>,
    scratch: Vec<f64>,
}

impl<'a> BlockCtx<'a> {
    /// The access identity for race checking.
    #[inline(always)]
    pub fn epoch(&self) -> Epoch {
        Epoch {
            launch: self.launch_id,
            phase: self.phase,
            block: self.block_id as u32,
            exclusive: self.exclusive,
        }
    }

    /// Counted read from global memory.
    #[inline(always)]
    pub fn read<T: Copy>(&mut self, buf: &GlobalBuffer<T>, i: usize) -> T {
        let ep = self.epoch();
        buf.read(&mut self.tally, ep, i)
    }

    /// Counted write to global memory.
    #[inline(always)]
    pub fn write<T: Copy>(&mut self, buf: &GlobalBuffer<T>, i: usize, v: T) {
        let ep = self.epoch();
        buf.write(&mut self.tally, ep, i, v)
    }

    /// Bulk-counted read of `out.len()` consecutive cells starting at
    /// `start`. Byte-identical tallies to element-wise reads; see
    /// [`GlobalBuffer::read_span`].
    #[inline(always)]
    pub fn read_span<T: Copy>(&mut self, buf: &GlobalBuffer<T>, start: usize, out: &mut [T]) {
        let ep = self.epoch();
        buf.read_span(&mut self.tally, ep, start, out)
    }

    /// Bulk-counted write of `src.len()` consecutive cells starting at
    /// `start`.
    #[inline(always)]
    pub fn write_span<T: Copy>(&mut self, buf: &GlobalBuffer<T>, start: usize, src: &[T]) {
        let ep = self.epoch();
        buf.write_span(&mut self.tally, ep, start, src)
    }

    /// Bulk-counted read of `len` consecutive cells into the block's
    /// shared-memory slab at `shared_off` (the coalesced tile-fill path).
    #[inline(always)]
    pub fn copy_span_to_shared(
        &mut self,
        buf: &GlobalBuffer<f64>,
        start: usize,
        shared_off: usize,
        len: usize,
    ) {
        let ep = self.epoch();
        buf.read_span(
            &mut self.tally,
            ep,
            start,
            &mut self.shared[shared_off..shared_off + len],
        )
    }

    /// Bulk-counted read of `len` consecutive cells into the block's
    /// private scratch at `scratch_off` (the staging path used by the span
    /// kernel ports).
    #[inline(always)]
    pub fn read_span_to_scratch(
        &mut self,
        buf: &GlobalBuffer<f64>,
        start: usize,
        scratch_off: usize,
        len: usize,
    ) {
        let ep = self.epoch();
        buf.read_span(
            &mut self.tally,
            ep,
            start,
            &mut self.scratch[scratch_off..scratch_off + len],
        )
    }

    /// Bulk-counted write of `len` doubles from the block's private scratch
    /// at `scratch_off` into `len` consecutive cells starting at `start`.
    #[inline(always)]
    pub fn write_span_from_scratch(
        &mut self,
        buf: &GlobalBuffer<f64>,
        start: usize,
        scratch_off: usize,
        len: usize,
    ) {
        let ep = self.epoch();
        buf.write_span(
            &mut self.tally,
            ep,
            start,
            &self.scratch[scratch_off..scratch_off + len],
        )
    }

    /// Bulk-counted strided read: `rows` spans of `len` doubles at
    /// `start + r·stride` land packed at `scratch_off`. One accounting
    /// envelope for the whole family; see [`GlobalBuffer::read_spans`].
    #[inline(always)]
    pub fn read_spans_to_scratch(
        &mut self,
        buf: &GlobalBuffer<f64>,
        start: usize,
        stride: usize,
        rows: usize,
        len: usize,
        scratch_off: usize,
    ) {
        let ep = self.epoch();
        buf.read_spans(
            &mut self.tally,
            ep,
            start,
            stride,
            rows,
            len,
            &mut self.scratch[scratch_off..scratch_off + rows * len],
        )
    }

    /// Strided-write mirror of [`BlockCtx::read_spans_to_scratch`].
    #[inline(always)]
    pub fn write_spans_from_scratch(
        &mut self,
        buf: &GlobalBuffer<f64>,
        start: usize,
        stride: usize,
        rows: usize,
        len: usize,
        scratch_off: usize,
    ) {
        let ep = self.epoch();
        buf.write_spans(
            &mut self.tally,
            ep,
            start,
            stride,
            rows,
            len,
            &self.scratch[scratch_off..scratch_off + rows * len],
        )
    }

    /// The block's shared-memory slab.
    #[inline(always)]
    pub fn shared(&mut self) -> &mut [f64] {
        &mut self.shared
    }

    /// The block's persistent private scratch.
    #[inline(always)]
    pub fn scratch(&mut self) -> &mut [f64] {
        &mut self.scratch
    }

    /// Both slabs at once (for kernels that copy between them).
    #[inline(always)]
    pub fn shared_and_scratch(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.shared, &mut self.scratch)
    }
}

/// A kernel whose blocks are mutually independent within a launch.
pub trait Kernel: Sync {
    /// Name for profiler reports.
    fn name(&self) -> &str;
    /// Execute one block to completion.
    fn run_block(&self, ctx: &mut BlockCtx);
}

/// A kernel executed in grid-wide lockstep phases.
pub trait PhasedKernel: Sync {
    /// Name for profiler reports.
    fn name(&self) -> &str;
    /// Number of phases; all blocks run phase `p` before any runs `p+1`.
    fn phases(&self) -> usize;
    /// Execute one phase of one block.
    fn run_phase(&self, phase: usize, ctx: &mut BlockCtx);
}

/// Recycled per-block slab pair; see the arena on [`Gpu`].
#[derive(Default)]
struct BlockSlab {
    shared: Vec<f64>,
    scratch: Vec<f64>,
}

/// The simulated device: owns the spec, the CPU worker configuration, the
/// persistent worker pool, and the per-block slab arena.
/// Default for [`Gpu::with_parallel_threshold`]: launches (or lockstep
/// phases) with fewer than this many work items (`blocks ×
/// threads_per_block`) run inline on the submitting thread. Dispatching a
/// phase to the pool costs a few microseconds of wakeup latency; below this
/// size that overhead exceeds the work being distributed (measured on the
/// bench lattices — a 2-block smoke phase is ~40% faster inline).
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 4096;

pub struct Gpu {
    pub device: DeviceSpec,
    cpu_threads: usize,
    parallel_threshold: usize,
    launch_counter: AtomicU32,
    obs: Option<Arc<Obs>>,
    /// Fleet trace context appended to kernel spans (job identity set by
    /// the serve scheduler, `None` for solo runs).
    trace_ctx: Option<obs::fleet::TraceCtx>,
    /// Injected-fault script consulted at launch entry (tests/resilience).
    faults: Option<Arc<crate::fault::FaultPlan>>,
    /// Lazily-spawned persistent pool of `cpu_threads − 1` worker threads
    /// (the launching thread is the remaining participant).
    pool: OnceLock<WorkerPool>,
    /// Recycled per-block shared/scratch slabs: taken at launch entry,
    /// returned after the tallies are merged. Slabs are cleared and
    /// zero-resized on reuse, so kernels still observe zero-initialized
    /// shared and scratch memory every launch.
    arena: Mutex<Vec<BlockSlab>>,
}

/// Pointer wrapper for disjoint parallel access to the per-block contexts.
struct CtxPtr<'a>(*mut BlockCtx<'a>);
unsafe impl Send for CtxPtr<'_> {}
unsafe impl Sync for CtxPtr<'_> {}

impl Gpu {
    /// Create a simulated device using all available CPU parallelism.
    pub fn new(device: DeviceSpec) -> Self {
        let cpu = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Gpu {
            device,
            cpu_threads: cpu,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            launch_counter: AtomicU32::new(0),
            obs: None,
            trace_ctx: None,
            faults: None,
            pool: OnceLock::new(),
            arena: Mutex::new(Vec::new()),
        }
    }

    /// Attach a fault-injection plan: launches consult it and may abort
    /// (returning a zero tally — the kernel never ran). Apply after any
    /// `with_cpu_threads`/`with_parallel_threshold` builder calls.
    pub fn set_fault_plan(&mut self, plan: Arc<crate::fault::FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Builder-style [`Gpu::set_fault_plan`].
    pub fn with_fault_plan(mut self, plan: Arc<crate::fault::FaultPlan>) -> Self {
        self.set_fault_plan(plan);
        self
    }

    /// Override the CPU worker count (builder style). Drops any existing
    /// pool; the next launch spawns a fresh one sized to `n`.
    pub fn with_cpu_threads(mut self, n: usize) -> Self {
        self.cpu_threads = n.max(1);
        self.pool = OnceLock::new();
        self
    }

    /// Override the minimum launch size (`blocks × threads_per_block`)
    /// dispatched to the worker pool (builder style). Smaller launches run
    /// inline on the submitting thread — results and tallies are identical
    /// either way (the executor-determinism guarantee); only wall-clock
    /// changes. `0` forces pooling for every multi-block launch (used by
    /// tests that exercise the pool itself).
    pub fn with_parallel_threshold(mut self, items: usize) -> Self {
        self.parallel_threshold = items;
        self
    }

    /// Attach an observability hub (builder style): every launch then emits
    /// a kernel span (with per-phase child spans for lockstep kernels) into
    /// the tracer and publishes its traffic into the metrics registry.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.set_obs(obs);
        self
    }

    /// Attach or replace the observability hub after construction. Also
    /// wires the hub into the worker pool (if already spawned) so the
    /// busy/idle worker gauges are published.
    pub fn set_obs(&mut self, obs: Arc<Obs>) {
        if let Some(p) = self.pool.get() {
            p.set_obs(obs.clone());
        }
        self.obs = Some(obs);
    }

    /// The attached observability hub, if any.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.obs.as_ref()
    }

    /// Attach (or clear) the fleet trace context. Subsequent kernel spans
    /// carry the job/tenant/group/slice args, so a Chrome trace filters to
    /// one job across executors. Pure annotation: tallies, launch results,
    /// and metrics counters are unaffected.
    pub fn set_trace_ctx(&mut self, ctx: Option<obs::fleet::TraceCtx>) {
        self.trace_ctx = ctx;
    }

    /// The attached fleet trace context, if any.
    pub fn trace_ctx(&self) -> Option<&obs::fleet::TraceCtx> {
        self.trace_ctx.as_ref()
    }

    /// The persistent worker pool, spawned on first parallel launch.
    fn pool(&self) -> &WorkerPool {
        self.pool.get_or_init(|| {
            let p = WorkerPool::new(self.cpu_threads.saturating_sub(1));
            if let Some(o) = &self.obs {
                p.set_obs(o.clone());
            }
            p
        })
    }

    fn validate(&self, cfg: &Launch) {
        assert!(cfg.blocks > 0, "empty grid");
        assert!(
            cfg.threads_per_block >= 1
                && cfg.threads_per_block <= self.device.max_threads_per_block,
            "block of {} threads exceeds {} limit of {}",
            cfg.threads_per_block,
            self.device.name,
            self.device.max_threads_per_block
        );
        assert!(
            cfg.shared_bytes() <= self.device.shared_mem_per_sm,
            "shared memory request {} B exceeds {} per-SM capacity {} B",
            cfg.shared_bytes(),
            self.device.name,
            self.device.shared_mem_per_sm
        );
    }

    /// Launch an independent-blocks kernel.
    pub fn launch<K: Kernel>(&self, cfg: &Launch, kernel: &K) -> LaunchStats {
        struct Adapter<'k, K>(&'k K);
        impl<K: Kernel> PhasedKernel for Adapter<'_, K> {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn phases(&self) -> usize {
                1
            }
            fn run_phase(&self, _phase: usize, ctx: &mut BlockCtx) {
                self.0.run_block(ctx);
            }
        }
        self.launch_lockstep(cfg, &Adapter(kernel))
    }

    /// Launch a lockstep kernel: grid-wide barrier between phases.
    pub fn launch_lockstep<K: PhasedKernel>(&self, cfg: &Launch, kernel: &K) -> LaunchStats {
        self.validate(cfg);
        let launch_id = self.launch_counter.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(p) = &self.faults {
            if p.should_abort() {
                // The kernel never ran: report a zero tally so accounting
                // reflects that nothing moved, and make the abort visible.
                if let Some(o) = &self.obs {
                    o.tracer.instant(
                        "fault",
                        "launch-abort",
                        &[
                            ("kernel", kernel.name().to_string()),
                            ("device", self.device.name.to_string()),
                        ],
                    );
                    o.metrics.counter_add(
                        "fault_launch_aborts",
                        &[("kernel", kernel.name()), ("device", self.device.name)],
                        1,
                    );
                }
                return LaunchStats {
                    kernel: kernel.name().to_string(),
                    blocks: cfg.blocks,
                    threads_per_block: cfg.threads_per_block,
                    phases: 0,
                    tally: Tally::default(),
                };
            }
        }
        let use_pool = self.cpu_threads > 1
            && cfg.blocks > 1
            && cfg.blocks * cfg.threads_per_block >= self.parallel_threshold;

        // Take recycled slabs from the arena (allocation-free in steady
        // state); clear + zero-resize preserves the zero-init contract.
        let mut slabs = std::mem::take(&mut *self.arena.lock().unwrap());
        if slabs.len() < cfg.blocks {
            slabs.resize_with(cfg.blocks, BlockSlab::default);
        }
        let mut ctxs: Vec<BlockCtx> = slabs[..cfg.blocks]
            .iter_mut()
            .enumerate()
            .map(|(b, s)| {
                s.shared.clear();
                s.shared.resize(cfg.shared_doubles, 0.0);
                s.scratch.clear();
                s.scratch.resize(cfg.scratch_doubles, 0.0);
                BlockCtx {
                    block_id: b,
                    threads: cfg.threads_per_block,
                    device: &self.device,
                    launch_id,
                    phase: 0,
                    exclusive: !use_pool,
                    tally: Tally::default(),
                    shared: std::mem::take(&mut s.shared),
                    scratch: std::mem::take(&mut s.scratch),
                }
            })
            .collect();

        let phases = kernel.phases();
        let _kernel_span = self.obs.as_ref().map(|o| {
            let mut args = vec![
                ("device", self.device.name.to_string()),
                ("blocks", cfg.blocks.to_string()),
                ("threads_per_block", cfg.threads_per_block.to_string()),
                ("phases", phases.to_string()),
            ];
            if let Some(ctx) = &self.trace_ctx {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("kernel", kernel.name(), &args)
        });
        // Scheduler visibility: one `pool` span per pooled launch, nested
        // inside the kernel span (declared after, so it drops first).
        let _pool_span = match (&self.obs, use_pool) {
            (Some(o), true) => Some(o.tracer.span_args(
                "pool",
                "dispatch",
                &[
                    ("workers", (self.pool().workers() + 1).to_string()),
                    ("blocks", cfg.blocks.to_string()),
                ],
            )),
            _ => None,
        };
        // Wall-clock per launch (and per phase for multi-phase kernels):
        // joined with the DRAM byte tally below, this turns the roofline
        // from an offline model into a live achieved-bandwidth gauge.
        let launch_start = self.obs.as_ref().map(|_| std::time::Instant::now());
        let mut phase_us: Vec<u64> = Vec::new();
        let mut stolen = 0u64;
        for phase in 0..phases {
            let phase_start = launch_start.map(|_| std::time::Instant::now());
            let _phase_span = match (&self.obs, phases > 1) {
                (Some(o), true) => Some(o.tracer.span_args(
                    "phase",
                    "phase",
                    &[("i", phase.to_string())],
                )),
                _ => None,
            };
            if !use_pool {
                for ctx in ctxs.iter_mut() {
                    ctx.phase = phase as u32;
                    kernel.run_phase(phase, ctx);
                }
            } else {
                let ptr = CtxPtr(ctxs.as_mut_ptr());
                // Capture the Sync wrapper by reference (not its raw-pointer
                // field) so the closure itself is Sync.
                let ptr = &ptr;
                let task = move |b: usize| {
                    // Safety: the pool's atomic cursor hands each block
                    // index to exactly one participant, so the per-block
                    // contexts are accessed disjointly.
                    let ctx = unsafe { &mut *ptr.0.add(b) };
                    ctx.phase = phase as u32;
                    kernel.run_phase(phase, ctx);
                };
                stolen += self.pool().run(cfg.blocks, &task);
            }
            // The grid-wide barrier is the pool drain above; mark it so the
            // lockstep cadence is visible in the trace.
            if let (Some(o), true) = (&self.obs, phases > 1) {
                o.tracer
                    .instant("exec", "barrier", &[("after_phase", phase.to_string())]);
            }
            if let Some(s) = phase_start {
                phase_us.push(s.elapsed().as_micros() as u64);
            }
        }

        let mut tally = Tally::default();
        for ctx in &ctxs {
            tally.merge(&ctx.tally);
        }
        // Return the slabs to the arena for the next launch.
        for (s, ctx) in slabs.iter_mut().zip(ctxs) {
            s.shared = ctx.shared;
            s.scratch = ctx.scratch;
        }
        {
            let mut arena = self.arena.lock().unwrap();
            if arena.len() < slabs.len() {
                *arena = slabs;
            }
        }
        let stats = LaunchStats {
            kernel: kernel.name().to_string(),
            blocks: cfg.blocks,
            threads_per_block: cfg.threads_per_block,
            phases,
            tally,
        };
        if let Some(o) = &self.obs {
            let labels = [
                ("kernel", stats.kernel.as_str()),
                ("device", self.device.name),
            ];
            let m = &o.metrics;
            m.counter_add("launches", &labels, 1);
            m.counter_add("bytes_read", &labels, stats.tally.bytes_read);
            m.counter_add("bytes_written", &labels, stats.tally.bytes_written);
            m.counter_add("dram_bytes_read", &labels, stats.tally.dram_bytes_read);
            m.counter_add("l2_read_hits", &labels, stats.tally.l2_read_hits);
            if use_pool {
                m.counter_add("exec_block_steal", &labels, stolen);
            }
            // Live roofline attribution: cumulative DRAM bytes over
            // cumulative kernel wall-clock is the achieved bandwidth; its
            // fraction of the device's peak equals achieved-MFLUPS over
            // roofline-MFLUPS at the *measured* B/F (eq. 15 divides the
            // same bandwidth by the same byte count). Counters accumulate
            // per kernel/device; gauges expose the running attribution.
            let wall_us = launch_start.map_or(0, |s| s.elapsed().as_micros() as u64);
            m.counter_add("kernel_time_us", &labels, wall_us);
            m.counter_add("dram_bytes", &labels, stats.tally.dram_bytes());
            for (i, us) in phase_us.iter().enumerate() {
                let phase = i.to_string();
                let plabels = [
                    ("kernel", stats.kernel.as_str()),
                    ("device", self.device.name),
                    ("phase", phase.as_str()),
                ];
                m.counter_add("phase_time_us", &plabels, *us);
            }
            let total_us = m.counter("kernel_time_us", &labels).unwrap_or(0);
            let total_dram = m.counter("dram_bytes", &labels).unwrap_or(0);
            if total_us > 0 {
                // bytes/µs = 10⁶ B/s; ÷10³ → GB/s (10⁹ B/s).
                let gbps = total_dram as f64 / total_us as f64 * 1e-3;
                m.gauge_set("achieved_gbps", &labels, gbps);
                m.gauge_set(
                    "roofline_attained_pct",
                    &labels,
                    100.0 * gbps / self.device.bandwidth_gbps,
                );
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Vector add: every block handles a contiguous span; counts must be
    /// byte-exact.
    struct VecAdd<'b> {
        a: &'b GlobalBuffer<f64>,
        b: &'b GlobalBuffer<f64>,
        out: &'b GlobalBuffer<f64>,
        span: usize,
    }
    impl Kernel for VecAdd<'_> {
        fn name(&self) -> &str {
            "vec_add"
        }
        fn run_block(&self, ctx: &mut BlockCtx) {
            let base = ctx.block_id * self.span;
            for t in 0..ctx.threads {
                let i = base + t;
                if i < self.out.len() {
                    let v = ctx.read(self.a, i) + ctx.read(self.b, i);
                    ctx.write(self.out, i, v);
                }
            }
        }
    }

    #[test]
    fn vec_add_counts_and_results() {
        let n = 1000;
        let a = GlobalBuffer::from_vec((0..n).map(|i| i as f64).collect());
        let b = GlobalBuffer::from_vec(vec![10.0; n]);
        let out: GlobalBuffer<f64> = GlobalBuffer::new(n);
        let gpu = Gpu::new(DeviceSpec::v100()).with_cpu_threads(4);
        let cfg = Launch::simple(8, 128);
        let stats = gpu.launch(
            &cfg,
            &VecAdd {
                a: &a,
                b: &b,
                out: &out,
                span: 128,
            },
        );
        assert_eq!(stats.tally.reads, 2 * n as u64);
        assert_eq!(stats.tally.writes, n as u64);
        assert_eq!(stats.tally.bytes_written, 8 * n as u64);
        assert_eq!(stats.bytes_per_item(n as u64), 24.0);
        for i in 0..n {
            assert_eq!(out.get(i), i as f64 + 10.0);
        }
    }

    /// Shared memory persists within a block; scratch persists across
    /// lockstep phases.
    struct PhaseProbe<'b> {
        out: &'b GlobalBuffer<f64>,
    }
    impl PhasedKernel for PhaseProbe<'_> {
        fn name(&self) -> &str {
            "phase_probe"
        }
        fn phases(&self) -> usize {
            3
        }
        fn run_phase(&self, phase: usize, ctx: &mut BlockCtx) {
            // Accumulate phase numbers in scratch; emit in last phase.
            ctx.scratch()[0] += (phase + 1) as f64;
            if phase == 2 {
                let v = ctx.scratch()[0];
                ctx.write(self.out, ctx.block_id, v);
            }
        }
    }

    #[test]
    fn scratch_persists_across_phases() {
        let out: GlobalBuffer<f64> = GlobalBuffer::new(6);
        let gpu = Gpu::new(DeviceSpec::mi100()).with_cpu_threads(3);
        let cfg = Launch {
            blocks: 6,
            threads_per_block: 32,
            shared_doubles: 0,
            scratch_doubles: 1,
        };
        let stats = gpu.launch_lockstep(&cfg, &PhaseProbe { out: &out });
        assert_eq!(stats.phases, 3);
        for b in 0..6 {
            assert_eq!(out.get(b), 6.0); // 1 + 2 + 3
        }
    }

    /// The arena recycles slabs across launches but kernels still see
    /// zero-initialized scratch every time (a second launch must not
    /// observe the first's leftovers).
    #[test]
    fn arena_reuse_preserves_zero_init() {
        let out: GlobalBuffer<f64> = GlobalBuffer::new(6);
        let gpu = Gpu::new(DeviceSpec::v100()).with_cpu_threads(3);
        let cfg = Launch {
            blocks: 6,
            threads_per_block: 32,
            shared_doubles: 4,
            scratch_doubles: 1,
        };
        for _ in 0..3 {
            gpu.launch_lockstep(&cfg, &PhaseProbe { out: &out });
            for b in 0..6 {
                assert_eq!(out.get(b), 6.0, "stale scratch leaked across launches");
            }
        }
    }

    /// Lockstep really barriers between phases: phase 1 reads what *other*
    /// blocks wrote in phase 0.
    struct NeighborProbe<'b> {
        a: &'b GlobalBuffer<f64>,
        out: &'b GlobalBuffer<f64>,
        blocks: usize,
    }
    impl PhasedKernel for NeighborProbe<'_> {
        fn name(&self) -> &str {
            "neighbor_probe"
        }
        fn phases(&self) -> usize {
            2
        }
        fn run_phase(&self, phase: usize, ctx: &mut BlockCtx) {
            let b = ctx.block_id;
            if phase == 0 {
                ctx.write(self.a, b, (b * b) as f64);
            } else {
                let next = (b + 1) % self.blocks;
                let v = ctx.read(self.a, next);
                ctx.write(self.out, b, v);
            }
        }
    }

    #[test]
    fn lockstep_orders_cross_block_data() {
        let blocks = 16;
        let a: GlobalBuffer<f64> = GlobalBuffer::new(blocks).with_racecheck();
        let out: GlobalBuffer<f64> = GlobalBuffer::new(blocks);
        let gpu = Gpu::new(DeviceSpec::v100())
            .with_cpu_threads(8)
            .with_parallel_threshold(0);
        let cfg = Launch::simple(blocks, 32);
        gpu.launch_lockstep(
            &cfg,
            &NeighborProbe {
                a: &a,
                out: &out,
                blocks,
            },
        );
        for b in 0..blocks {
            let next = (b + 1) % blocks;
            assert_eq!(out.get(b), (next * next) as f64);
        }
    }

    /// Regression for the seed's static-chunking pathology: on a ragged
    /// grid (`blocks % workers != 0`) every block must still execute
    /// exactly once and produce its result.
    #[test]
    fn ragged_grid_all_blocks_execute() {
        for (blocks, threads) in [(7usize, 3usize), (5, 8), (13, 4), (9, 2)] {
            let n = blocks * 16;
            let a = GlobalBuffer::from_vec((0..n).map(|i| i as f64).collect());
            let b = GlobalBuffer::from_vec(vec![1.0; n]);
            let out: GlobalBuffer<f64> = GlobalBuffer::new(n);
            let gpu = Gpu::new(DeviceSpec::v100())
                .with_cpu_threads(threads)
                .with_parallel_threshold(0);
            let stats = gpu.launch(
                &Launch::simple(blocks, 16),
                &VecAdd {
                    a: &a,
                    b: &b,
                    out: &out,
                    span: 16,
                },
            );
            assert_eq!(
                stats.tally.writes, n as u64,
                "{blocks} blocks / {threads} workers"
            );
            for i in 0..n {
                assert_eq!(out.get(i), i as f64 + 1.0);
            }
        }
    }

    /// Results and merged tallies are bitwise-identical across worker
    /// counts: the pool only reorders which thread runs a block, never the
    /// per-block accounting.
    #[test]
    fn tallies_identical_across_worker_counts() {
        let n = 504; // ragged against every worker count below
        let run = |threads: usize| {
            let a = GlobalBuffer::from_vec((0..n).map(|i| (i as f64).sin()).collect());
            let b = GlobalBuffer::from_vec(vec![2.5; n]);
            let out: GlobalBuffer<f64> = GlobalBuffer::new(n).with_touch_tracking();
            let gpu = Gpu::new(DeviceSpec::v100())
                .with_cpu_threads(threads)
                .with_parallel_threshold(0);
            let stats = gpu.launch(
                &Launch::simple(9, 56),
                &VecAdd {
                    a: &a,
                    b: &b,
                    out: &out,
                    span: 56,
                },
            );
            (stats.tally, out.snapshot())
        };
        let (t1, f1) = run(1);
        for threads in [3, 8] {
            let (t, f) = run(threads);
            assert_eq!(t, t1, "tally diverged at {threads} threads");
            assert_eq!(f, f1, "fields diverged at {threads} threads");
        }
    }

    #[test]
    fn obs_records_kernel_spans_and_launch_metrics() {
        let obs = obs::Obs::shared();
        let out: GlobalBuffer<f64> = GlobalBuffer::new(6);
        let gpu = Gpu::new(DeviceSpec::v100())
            .with_cpu_threads(2)
            .with_parallel_threshold(0)
            .with_obs(obs.clone());
        let cfg = Launch {
            blocks: 6,
            threads_per_block: 32,
            shared_doubles: 0,
            scratch_doubles: 1,
        };
        gpu.launch_lockstep(&cfg, &PhaseProbe { out: &out });
        // One kernel span + one pool span + 3 phase spans (B/E each) +
        // 3 barrier instants.
        let ev = obs.tracer.events();
        assert_eq!(ev.len(), 2 + 2 + 3 * 2 + 3);
        assert_eq!(ev[0].name, "phase_probe");
        assert_eq!(ev[0].cat, "kernel");
        assert_eq!(ev[1].name, "dispatch");
        assert_eq!(ev[1].cat, "pool");
        assert!(ev.iter().filter(|e| e.ph == 'i').count() == 3);
        let labels = [("kernel", "phase_probe"), ("device", "NVIDIA V100")];
        assert_eq!(obs.metrics.counter("launches", &labels), Some(1));
        assert_eq!(
            obs.metrics.counter("bytes_written", &labels),
            Some(6 * 8),
            "6 blocks each write one f64"
        );
        assert!(
            obs.metrics.counter("exec_block_steal", &labels).is_some(),
            "pooled launches must publish the steal counter"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_block_rejected() {
        let gpu = Gpu::new(DeviceSpec::v100());
        struct Nop;
        impl Kernel for Nop {
            fn name(&self) -> &str {
                "nop"
            }
            fn run_block(&self, _ctx: &mut BlockCtx) {}
        }
        gpu.launch(&Launch::simple(1, 2048), &Nop);
    }

    #[test]
    #[should_panic(expected = "shared memory request")]
    fn oversized_shared_rejected() {
        let gpu = Gpu::new(DeviceSpec::mi100());
        struct Nop;
        impl Kernel for Nop {
            fn name(&self) -> &str {
                "nop"
            }
            fn run_block(&self, _ctx: &mut BlockCtx) {}
        }
        let cfg = Launch {
            blocks: 1,
            threads_per_block: 64,
            shared_doubles: 9000, // 72 KB > MI100's 64 KB LDS
            scratch_doubles: 0,
        };
        gpu.launch(&cfg, &Nop);
    }

    /// A kernel that violates the circular-shift discipline — writing a slot
    /// in one phase that another block reads in a later phase of the same
    /// launch — is caught by the strict race checker end to end.
    struct WrongShift<'b> {
        buf: &'b GlobalBuffer<f64>,
    }
    impl PhasedKernel for WrongShift<'_> {
        fn name(&self) -> &str {
            "wrong_shift"
        }
        fn phases(&self) -> usize {
            2
        }
        fn run_phase(&self, phase: usize, ctx: &mut BlockCtx) {
            let b = ctx.block_id;
            if phase == 0 && b == 0 {
                // Block 0 eagerly overwrites a slot…
                ctx.write(self.buf, 5, 1.0);
            }
            if phase == 1 && b == 1 {
                // …that block 1 still needed to read as old data.
                let _ = ctx.read(self.buf, 5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "stale read")]
    fn strict_checker_catches_wrong_shift_end_to_end() {
        let buf: GlobalBuffer<f64> = GlobalBuffer::new(8).with_racecheck_strict();
        let gpu = Gpu::new(DeviceSpec::v100()).with_cpu_threads(1);
        gpu.launch_lockstep(&Launch::simple(2, 32), &WrongShift { buf: &buf });
    }

    /// The same violation is caught under pooled (multi-worker) execution:
    /// the write lands in phase 0 and the read in phase 1, so detection is
    /// deterministic regardless of which worker runs which block, and the
    /// panic propagates from the pool thread to the launcher.
    #[test]
    #[should_panic(expected = "stale read")]
    fn strict_checker_fires_under_pooled_execution() {
        let buf: GlobalBuffer<f64> = GlobalBuffer::new(8).with_racecheck_strict();
        let gpu = Gpu::new(DeviceSpec::v100())
            .with_cpu_threads(4)
            .with_parallel_threshold(0);
        gpu.launch_lockstep(&Launch::simple(2, 32), &WrongShift { buf: &buf });
    }

    /// An injected launch abort skips exactly the scripted launch, leaves a
    /// zero tally (the kernel never ran), and is visible in obs.
    #[test]
    fn injected_abort_skips_one_launch() {
        let obs = obs::Obs::shared();
        let mut plan = crate::fault::FaultPlan::new();
        plan.abort_launch(1); // let launch 1 through, abort launch 2
        let plan = Arc::new(plan);
        let n = 64;
        let a = GlobalBuffer::from_vec((0..n).map(|i| i as f64).collect());
        let b = GlobalBuffer::from_vec(vec![1.0; n]);
        let out: GlobalBuffer<f64> = GlobalBuffer::new(n);
        let mut gpu = Gpu::new(DeviceSpec::v100())
            .with_cpu_threads(2)
            .with_obs(obs.clone());
        gpu.set_fault_plan(plan.clone());
        let k = VecAdd {
            a: &a,
            b: &b,
            out: &out,
            span: 16,
        };
        let s1 = gpu.launch(&Launch::simple(4, 16), &k);
        assert_eq!(s1.tally.writes, n as u64, "first launch must run");
        let s2 = gpu.launch(&Launch::simple(4, 16), &k);
        assert_eq!(s2.tally, Tally::default(), "aborted launch must tally zero");
        assert_eq!(s2.phases, 0);
        let s3 = gpu.launch(&Launch::simple(4, 16), &k);
        assert_eq!(s3.tally.writes, n as u64, "abort is one-shot");
        assert_eq!(plan.aborts_fired(), 1);
        let labels = [("kernel", "vec_add"), ("device", "NVIDIA V100")];
        assert_eq!(obs.metrics.counter("fault_launch_aborts", &labels), Some(1));
        assert!(obs
            .tracer
            .events()
            .iter()
            .any(|e| e.cat == "fault" && e.name == "launch-abort"));
    }

    /// Launch ids increment, so the race checker distinguishes launches.
    #[test]
    fn launch_ids_advance() {
        let gpu = Gpu::new(DeviceSpec::v100()).with_cpu_threads(1);
        let buf: GlobalBuffer<f64> = GlobalBuffer::new(4).with_racecheck();
        struct W<'b>(&'b GlobalBuffer<f64>);
        impl Kernel for W<'_> {
            fn name(&self) -> &str {
                "w"
            }
            fn run_block(&self, ctx: &mut BlockCtx) {
                ctx.write(self.0, 0, 1.0);
            }
        }
        // Two launches writing the same cell from block 0 — fine across
        // launches; would panic if launch ids did not advance… still block 0
        // in both, so use different grid positions via two kernels? Simpler:
        // write from block 1 of a 2-block grid in the second launch.
        gpu.launch(&Launch::simple(1, 32), &W(&buf));
        struct W2<'b>(&'b GlobalBuffer<f64>);
        impl Kernel for W2<'_> {
            fn name(&self) -> &str {
                "w2"
            }
            fn run_block(&self, ctx: &mut BlockCtx) {
                if ctx.block_id == 1 {
                    ctx.write(self.0, 0, 2.0);
                }
            }
        }
        gpu.launch(&Launch::simple(2, 32), &W2(&buf));
        assert_eq!(buf.get(0), 2.0);
    }
}
