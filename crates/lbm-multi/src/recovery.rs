//! Fault-tolerant execution: halo-transfer retry, checkpoint cadence, and
//! rollback recovery.
//!
//! The recovery loop drives any [`Simulation`] toward a target step count
//! while watching for injected or emergent faults on three channels:
//!
//! * **link failures** — transient link faults are absorbed *inside* the
//!   drivers by [`HaloRetryPolicy`]-bounded retries (failed attempts record
//!   zero link bytes, so a recovered run's link tallies are byte-identical
//!   to a fault-free run); permanent failures surface as
//!   [`RecoveryError::Step`];
//! * **launch aborts** — a skipped kernel launch can leave *stale but
//!   finite* fields that conservation checks miss, so the loop watches the
//!   fault plan's fired counters directly ([`RecoveryConfig::fault_watch`]);
//! * **state corruption** — NaN/∞ or standing physics-monitor violations,
//!   probed at every checkpoint boundary.
//!
//! On detection the solver is restored from the last healthy checkpoint and
//! the lost steps are replayed. Because every solver in this workspace is
//! bitwise-deterministic, the recovered trajectory is *identical* to an
//! uninterrupted one — the resilience tests assert equality of FNV field
//! checksums, not tolerances.

use gpu_sim::interconnect::{LinkError, MultiGpu};
use gpu_sim::FaultPlan;
use lbm_core::io::CheckpointError;
use lbm_core::{Simulation, StepError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bounded-backoff retry policy for halo transfers over faulty links.
#[derive(Clone, Copy, Debug)]
pub struct HaloRetryPolicy {
    /// Total attempts per transfer, first try included (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry, capped at 64×.
    pub backoff_base_us: u64,
}

impl Default for HaloRetryPolicy {
    fn default() -> Self {
        HaloRetryPolicy {
            max_attempts: 3,
            backoff_base_us: 20,
        }
    }
}

/// Record one halo transfer with bounded retries. Transient link failures
/// back off (capped exponential) and retry; a permanent failure or missing
/// route is surfaced immediately. A failed attempt records zero bytes (the
/// fault check precedes the tally in `MultiGpu::try_record_transfer`), so a
/// successful retry tallies exactly once.
pub(crate) fn transfer_with_retry(
    mg: &MultiGpu,
    from: usize,
    to: usize,
    bytes: u64,
    policy: &HaloRetryPolicy,
    retries: &AtomicU64,
) -> Result<(), LinkError> {
    assert!(policy.max_attempts >= 1, "at least one attempt is required");
    let mut failures = 0u32;
    loop {
        match mg.try_record_transfer(from, to, bytes) {
            Ok(()) => return Ok(()),
            Err(
                e @ (LinkError::NoRoute { .. }
                | LinkError::Down {
                    permanent: true, ..
                }),
            ) => {
                return Err(e);
            }
            Err(e) => {
                failures += 1;
                if failures >= policy.max_attempts {
                    return Err(e);
                }
                retries.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = mg.obs() {
                    let link = format!("{from}->{to}");
                    o.metrics
                        .counter_add("halo_retries", &[("link", link.as_str())], 1);
                    let ctx = mg.trace_ctx();
                    o.events.record(
                        obs::EventKind::HaloRetry,
                        ctx.map(|c| c.job_id),
                        ctx.map_or("", |c| c.tenant.as_str()),
                        &[("link", link.clone()), ("attempt", failures.to_string())],
                    );
                }
                let backoff = policy.backoff_base_us << (failures - 1).min(6);
                std::thread::sleep(std::time::Duration::from_micros(backoff));
            }
        }
    }
}

/// Recovery-loop configuration.
#[derive(Clone, Default)]
pub struct RecoveryConfig {
    /// Checkpoint (and probe health) every `checkpoint_every` steps; `0`
    /// means use the default of 16.
    pub checkpoint_every: u64,
    /// Give up after this many rollbacks (`0` → default 8).
    pub max_rollbacks: u64,
    /// Fault plan whose fired counters are polled after every step —
    /// catches launch aborts and memory corruption the instant they fire.
    pub fault_watch: Option<Arc<FaultPlan>>,
    /// Observability hub for recovery counters and rollback spans.
    pub obs: Option<Arc<obs::Obs>>,
    /// Fleet trace context attributed to rollback events (job id / tenant).
    pub ctx: Option<obs::TraceCtx>,
}

impl RecoveryConfig {
    fn cadence(&self) -> u64 {
        if self.checkpoint_every == 0 {
            16
        } else {
            self.checkpoint_every
        }
    }

    fn rollback_budget(&self) -> u64 {
        if self.max_rollbacks == 0 {
            8
        } else {
            self.max_rollbacks
        }
    }
}

/// What the recovery loop did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Checkpoints taken (including the initial one).
    pub checkpoints: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Steps discarded by rollbacks and replayed.
    pub steps_replayed: u64,
    /// Faults detected (watch-counter deltas plus failed health probes).
    pub faults_detected: u64,
    /// Halo-transfer retries performed by the driver during the run.
    pub halo_retries: u64,
}

impl RecoveryStats {
    /// Summary as a JSON value (embedded in bench records).
    pub fn summary(&self) -> obs::json::Value {
        use obs::json::Value;
        Value::obj(vec![
            ("checkpoints", Value::int(self.checkpoints)),
            ("rollbacks", Value::int(self.rollbacks)),
            ("steps_replayed", Value::int(self.steps_replayed)),
            ("faults_detected", Value::int(self.faults_detected)),
            ("halo_retries", Value::int(self.halo_retries)),
        ])
    }
}

/// Why the recovery loop gave up.
#[derive(Debug)]
pub enum RecoveryError {
    /// A step error the driver-level retry could not absorb (permanent
    /// link failure, missing route, or retry budget exhausted).
    Step(StepError),
    /// The checkpoint refused to restore (corrupt or mismatched snapshot).
    Restore(CheckpointError),
    /// The rollback budget was exhausted without reaching the target.
    GaveUp { rollbacks: u64, step: u64 },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Step(e) => write!(f, "unrecoverable step error: {e}"),
            RecoveryError::Restore(e) => write!(f, "checkpoint restore failed: {e}"),
            RecoveryError::GaveUp { rollbacks, step } => {
                write!(f, "gave up after {rollbacks} rollbacks at step {step}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<StepError> for RecoveryError {
    fn from(e: StepError) -> Self {
        RecoveryError::Step(e)
    }
}

impl From<CheckpointError> for RecoveryError {
    fn from(e: CheckpointError) -> Self {
        RecoveryError::Restore(e)
    }
}

/// Drive `sim` to `target_steps` with checkpoint/rollback recovery. Takes
/// an initial checkpoint, advances step by step, checkpoints at the
/// configured cadence (only when healthy — a corrupt state is never made a
/// rollback target), and on any detected fault restores the last checkpoint
/// and replays. Determinism makes the recovered trajectory bitwise equal to
/// an uninterrupted run.
///
/// `?Sized` so callers holding a `Box<dyn Simulation + Send>` (the fleet
/// scheduler in `lbm-serve`) can pass `&mut *boxed`.
pub fn run_with_recovery<S: Simulation + ?Sized>(
    sim: &mut S,
    target_steps: u64,
    cfg: &RecoveryConfig,
) -> Result<RecoveryStats, RecoveryError> {
    let mut stats = RecoveryStats::default();
    let base_retries = sim.halo_retries();
    let mut ckpt = sim.checkpoint();
    let mut ckpt_step = sim.steps();
    stats.checkpoints += 1;
    let mut seen_aborts = cfg.fault_watch.as_ref().map_or(0, |p| p.aborts_fired());
    let mut seen_mem = cfg.fault_watch.as_ref().map_or(0, |p| p.mem_faults_fired());

    while sim.steps() < target_steps {
        sim.try_step()?;
        let step = sim.steps();

        // Detection channel 1: watched fault counters (aborts can leave
        // stale-but-finite fields no conservation check flags).
        let mut suspect = false;
        if let Some(p) = &cfg.fault_watch {
            let (a, m) = (p.aborts_fired(), p.mem_faults_fired());
            if a > seen_aborts || m > seen_mem {
                seen_aborts = a;
                seen_mem = m;
                suspect = true;
            }
        }
        // Detection channel 2: health probe at checkpoint boundaries and at
        // the end of the run (NaN scan + monitor verdict).
        let at_boundary = step.is_multiple_of(cfg.cadence()) || step >= target_steps;
        if suspect || (at_boundary && !sim.is_healthy()) {
            stats.faults_detected += 1;
            stats.rollbacks += 1;
            if stats.rollbacks > cfg.rollback_budget() {
                return Err(RecoveryError::GaveUp {
                    rollbacks: stats.rollbacks - 1,
                    step,
                });
            }
            let span = cfg.obs.as_ref().map(|o| {
                o.metrics.counter_add("recovery_faults_detected", &[], 1);
                o.metrics.counter_add("recovery_rollbacks_total", &[], 1);
                let ctx = cfg.ctx.as_ref();
                o.events.record(
                    obs::EventKind::Rollback,
                    ctx.map(|c| c.job_id),
                    ctx.map_or("", |c| c.tenant.as_str()),
                    &[("from", step.to_string()), ("to", ckpt_step.to_string())],
                );
                o.tracer.span_args(
                    "recovery",
                    "rollback",
                    &[("from", step.to_string()), ("to", ckpt_step.to_string())],
                )
            });
            sim.restore(&ckpt)?;
            stats.steps_replayed += step - ckpt_step;
            drop(span);
            continue;
        }
        if at_boundary && step < target_steps {
            ckpt = sim.checkpoint();
            ckpt_step = step;
            stats.checkpoints += 1;
            if let Some(o) = &cfg.obs {
                o.metrics.counter_add("recovery_checkpoints_total", &[], 1);
            }
        }
    }
    sim.finish_monitor();
    stats.halo_retries = sim.halo_retries() - base_retries;
    Ok(stats)
}
