//! Fault-tolerant execution: halo-transfer retry, checkpoint cadence, and
//! rollback recovery.
//!
//! The recovery loop drives any [`Recoverable`] solver toward a target step
//! count while watching for injected or emergent faults on three channels:
//!
//! * **link failures** — transient link faults are absorbed *inside* the
//!   drivers by [`HaloRetryPolicy`]-bounded retries (failed attempts record
//!   zero link bytes, so a recovered run's link tallies are byte-identical
//!   to a fault-free run); permanent failures surface as
//!   [`RecoveryError::Link`];
//! * **launch aborts** — a skipped kernel launch can leave *stale but
//!   finite* fields that conservation checks miss, so the loop watches the
//!   fault plan's fired counters directly ([`RecoveryConfig::fault_watch`]);
//! * **state corruption** — NaN/∞ or standing physics-monitor violations,
//!   probed at every checkpoint boundary.
//!
//! On detection the solver is restored from the last healthy checkpoint and
//! the lost steps are replayed. Because every solver in this workspace is
//! bitwise-deterministic, the recovered trajectory is *identical* to an
//! uninterrupted one — the resilience tests assert equality of FNV field
//! checksums, not tolerances.

use gpu_sim::interconnect::{LinkError, MultiGpu};
use gpu_sim::FaultPlan;
use lbm_core::io::CheckpointError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bounded-backoff retry policy for halo transfers over faulty links.
#[derive(Clone, Copy, Debug)]
pub struct HaloRetryPolicy {
    /// Total attempts per transfer, first try included (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry, capped at 64×.
    pub backoff_base_us: u64,
}

impl Default for HaloRetryPolicy {
    fn default() -> Self {
        HaloRetryPolicy {
            max_attempts: 3,
            backoff_base_us: 20,
        }
    }
}

/// Record one halo transfer with bounded retries. Transient link failures
/// back off (capped exponential) and retry; a permanent failure or missing
/// route is surfaced immediately. A failed attempt records zero bytes (the
/// fault check precedes the tally in `MultiGpu::try_record_transfer`), so a
/// successful retry tallies exactly once.
pub(crate) fn transfer_with_retry(
    mg: &MultiGpu,
    from: usize,
    to: usize,
    bytes: u64,
    policy: &HaloRetryPolicy,
    retries: &AtomicU64,
) -> Result<(), LinkError> {
    assert!(policy.max_attempts >= 1, "at least one attempt is required");
    let mut failures = 0u32;
    loop {
        match mg.try_record_transfer(from, to, bytes) {
            Ok(()) => return Ok(()),
            Err(
                e @ (LinkError::NoRoute { .. }
                | LinkError::Down {
                    permanent: true, ..
                }),
            ) => {
                return Err(e);
            }
            Err(e) => {
                failures += 1;
                if failures >= policy.max_attempts {
                    return Err(e);
                }
                retries.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = mg.obs() {
                    let link = format!("{from}->{to}");
                    o.metrics
                        .counter_add("halo_retries", &[("link", link.as_str())], 1);
                }
                let backoff = policy.backoff_base_us << (failures - 1).min(6);
                std::thread::sleep(std::time::Duration::from_micros(backoff));
            }
        }
    }
}

/// Recovery-loop configuration.
#[derive(Clone, Default)]
pub struct RecoveryConfig {
    /// Checkpoint (and probe health) every `checkpoint_every` steps; `0`
    /// means use the default of 16.
    pub checkpoint_every: u64,
    /// Give up after this many rollbacks (`0` → default 8).
    pub max_rollbacks: u64,
    /// Fault plan whose fired counters are polled after every step —
    /// catches launch aborts and memory corruption the instant they fire.
    pub fault_watch: Option<Arc<FaultPlan>>,
    /// Observability hub for recovery counters and rollback spans.
    pub obs: Option<Arc<obs::Obs>>,
}

impl RecoveryConfig {
    fn cadence(&self) -> u64 {
        if self.checkpoint_every == 0 {
            16
        } else {
            self.checkpoint_every
        }
    }

    fn rollback_budget(&self) -> u64 {
        if self.max_rollbacks == 0 {
            8
        } else {
            self.max_rollbacks
        }
    }
}

/// What the recovery loop did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Checkpoints taken (including the initial one).
    pub checkpoints: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Steps discarded by rollbacks and replayed.
    pub steps_replayed: u64,
    /// Faults detected (watch-counter deltas plus failed health probes).
    pub faults_detected: u64,
    /// Halo-transfer retries performed by the driver during the run.
    pub halo_retries: u64,
}

impl RecoveryStats {
    /// Summary as a JSON value (embedded in bench records).
    pub fn summary(&self) -> obs::json::Value {
        use obs::json::Value;
        Value::obj(vec![
            ("checkpoints", Value::int(self.checkpoints)),
            ("rollbacks", Value::int(self.rollbacks)),
            ("steps_replayed", Value::int(self.steps_replayed)),
            ("faults_detected", Value::int(self.faults_detected)),
            ("halo_retries", Value::int(self.halo_retries)),
        ])
    }
}

/// Why the recovery loop gave up.
#[derive(Debug)]
pub enum RecoveryError {
    /// A link error the driver-level retry could not absorb (permanent
    /// failure, missing route, or retry budget exhausted).
    Link(LinkError),
    /// The checkpoint refused to restore (corrupt or mismatched snapshot).
    Restore(CheckpointError),
    /// The rollback budget was exhausted without reaching the target.
    GaveUp { rollbacks: u64, step: u64 },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Link(e) => write!(f, "unrecoverable link error: {e}"),
            RecoveryError::Restore(e) => write!(f, "checkpoint restore failed: {e}"),
            RecoveryError::GaveUp { rollbacks, step } => {
                write!(f, "gave up after {rollbacks} rollbacks at step {step}")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<LinkError> for RecoveryError {
    fn from(e: LinkError) -> Self {
        RecoveryError::Link(e)
    }
}

impl From<CheckpointError> for RecoveryError {
    fn from(e: CheckpointError) -> Self {
        RecoveryError::Restore(e)
    }
}

/// A solver the recovery loop can drive: checkpointable, restorable, and
/// steppable with typed halo errors. Implemented by all six drivers (the
/// three single-device solvers in `lbm-gpu` and the three sharded ones
/// here); single-device steps cannot fail on a link.
pub trait Recoverable {
    /// Serialize the full solver state (versioned, checksummed).
    fn checkpoint(&self) -> Vec<u8>;
    /// Restore a snapshot taken by [`Recoverable::checkpoint`] on an
    /// identically configured solver; rolls the physics monitor back too.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), CheckpointError>;
    /// Advance one timestep; `Err` means a halo transfer failed beyond the
    /// driver's retry budget.
    fn try_advance(&mut self) -> Result<(), LinkError>;
    /// Completed timesteps.
    fn current_step(&self) -> u64;
    /// Macroscopic fields (the health probe's input).
    fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>);
    /// Whether the attached physics monitor (if any) has no violations.
    fn monitor_ok(&self) -> bool;
    /// Force a final monitor sample at the current step.
    fn finish_monitor(&mut self);
    /// Halo-transfer retries performed so far (0 for single-device).
    fn halo_retries(&self) -> u64 {
        0
    }

    /// Health probe: every sampled field value finite and no standing
    /// monitor violation.
    fn is_healthy(&self) -> bool {
        if !self.monitor_ok() {
            return false;
        }
        let (rho, u) = self.macro_fields();
        rho.iter().all(|v| v.is_finite()) && u.iter().flatten().all(|v| v.is_finite())
    }
}

/// Drive `sim` to `target_steps` with checkpoint/rollback recovery. Takes
/// an initial checkpoint, advances step by step, checkpoints at the
/// configured cadence (only when healthy — a corrupt state is never made a
/// rollback target), and on any detected fault restores the last checkpoint
/// and replays. Determinism makes the recovered trajectory bitwise equal to
/// an uninterrupted run.
pub fn run_with_recovery<S: Recoverable>(
    sim: &mut S,
    target_steps: u64,
    cfg: &RecoveryConfig,
) -> Result<RecoveryStats, RecoveryError> {
    let mut stats = RecoveryStats::default();
    let base_retries = sim.halo_retries();
    let mut ckpt = sim.checkpoint();
    let mut ckpt_step = sim.current_step();
    stats.checkpoints += 1;
    let mut seen_aborts = cfg.fault_watch.as_ref().map_or(0, |p| p.aborts_fired());
    let mut seen_mem = cfg.fault_watch.as_ref().map_or(0, |p| p.mem_faults_fired());

    while sim.current_step() < target_steps {
        sim.try_advance()?;
        let step = sim.current_step();

        // Detection channel 1: watched fault counters (aborts can leave
        // stale-but-finite fields no conservation check flags).
        let mut suspect = false;
        if let Some(p) = &cfg.fault_watch {
            let (a, m) = (p.aborts_fired(), p.mem_faults_fired());
            if a > seen_aborts || m > seen_mem {
                seen_aborts = a;
                seen_mem = m;
                suspect = true;
            }
        }
        // Detection channel 2: health probe at checkpoint boundaries and at
        // the end of the run (NaN scan + monitor verdict).
        let at_boundary = step.is_multiple_of(cfg.cadence()) || step >= target_steps;
        if suspect || (at_boundary && !sim.is_healthy()) {
            stats.faults_detected += 1;
            stats.rollbacks += 1;
            if stats.rollbacks > cfg.rollback_budget() {
                return Err(RecoveryError::GaveUp {
                    rollbacks: stats.rollbacks - 1,
                    step,
                });
            }
            let span = cfg.obs.as_ref().map(|o| {
                o.metrics.counter_add("recovery_faults_detected", &[], 1);
                o.metrics.counter_add("recovery_rollbacks_total", &[], 1);
                o.tracer.span_args(
                    "recovery",
                    "rollback",
                    &[("from", step.to_string()), ("to", ckpt_step.to_string())],
                )
            });
            sim.restore(&ckpt)?;
            stats.steps_replayed += step - ckpt_step;
            drop(span);
            continue;
        }
        if at_boundary && step < target_steps {
            ckpt = sim.checkpoint();
            ckpt_step = step;
            stats.checkpoints += 1;
            if let Some(o) = &cfg.obs {
                o.metrics.counter_add("recovery_checkpoints_total", &[], 1);
            }
        }
    }
    sim.finish_monitor();
    stats.halo_retries = sim.halo_retries() - base_retries;
    Ok(stats)
}

mod impls {
    use super::{CheckpointError, LinkError, Recoverable};
    use lbm_core::collision::Collision;
    use lbm_lattice::Lattice;

    /// Shared trait-method bodies: everything forwards to the inherent
    /// methods (which shadow the trait ones inside the impl).
    macro_rules! recoverable_common {
        () => {
            fn checkpoint(&self) -> Vec<u8> {
                self.checkpoint()
            }
            fn restore(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
                self.restore(bytes)
            }
            fn current_step(&self) -> u64 {
                self.steps()
            }
            fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>) {
                Self::macro_fields(self)
            }
            fn monitor_ok(&self) -> bool {
                self.monitor().is_none_or(|m| m.is_ok())
            }
            fn finish_monitor(&mut self) {
                self.finish_monitor()
            }
        };
    }

    /// Single-device drivers: a step cannot fail on a link, and there are
    /// no halo retries (the trait default of 0 applies).
    macro_rules! impl_recoverable_single {
        ($ty:ty, [$($gen:tt)*]) => {
            impl<$($gen)*> Recoverable for $ty {
                recoverable_common!();
                fn try_advance(&mut self) -> Result<(), LinkError> {
                    self.step();
                    Ok(())
                }
            }
        };
    }

    /// Sharded drivers: steps can fail on a link; surface retry counts.
    macro_rules! impl_recoverable_multi {
        ($ty:ty, [$($gen:tt)*]) => {
            impl<$($gen)*> Recoverable for $ty {
                recoverable_common!();
                fn try_advance(&mut self) -> Result<(), LinkError> {
                    self.try_step()
                }
                fn halo_retries(&self) -> u64 {
                    self.halo_retries()
                }
            }
        };
    }

    impl_recoverable_single!(lbm_gpu::StSim<L, C>, [L: Lattice, C: Collision<L>]);
    impl_recoverable_single!(lbm_gpu::MrSim2D<L>, [L: Lattice]);
    impl_recoverable_single!(lbm_gpu::MrSim3D<L>, [L: Lattice]);
    impl_recoverable_multi!(crate::MultiStSim<L, C>, [L: Lattice, C: Collision<L>]);
    impl_recoverable_multi!(crate::MultiMrSim2D<L>, [L: Lattice]);
    impl_recoverable_multi!(crate::MultiMrSim3D<L>, [L: Lattice]);
}
