//! Multi-device 3D MR: slab sharding along `x` with moment-space halo
//! exchange (`M·8` = 80 bytes per D3Q19 halo node vs ST's `Q·8` = 152).
//!
//! Same design as [`crate::mr2d`]: per-shard double-buffered shift-0
//! moment lattices (the in-place circular shift is only safe when the
//! whole step is one lockstep launch), column footprints partitioned into
//! edge strips and interior, two-phase overlap schedule.

use crate::decomp::SlabDecomp;
use crate::mr2d::MrShard;
use crate::recovery::{transfer_with_retry, HaloRetryPolicy};
use crate::st::check_boundary_widths;
use crate::stats::{device_time_s, exchange_time_s, OverlapStats};
use gpu_sim::interconnect::{LinkError, MultiGpu};
use gpu_sim::{DeviceSpec, FaultPlan};
use lbm_core::geometry::{Geometry, NodeType};
use lbm_core::io::{CheckpointError, CheckpointReader, CheckpointWriter};
use lbm_core::kernels::KernelConsts;
use lbm_gpu::boundary::boundary_nodes;
use lbm_gpu::moment_lattice::MomentLattice;
use lbm_gpu::mr2d::launch_mr_bc;
use lbm_gpu::mr3d::{launch_mr3d_columns, pick_column_footprint};
use lbm_gpu::scheme::MrScheme;
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Mr3dShard {
    geom: Geometry,
    /// Interior fast-scatter eligibility over the local geometry (see
    /// `lbm_gpu::boundary::bulk_mask`).
    bulk: Vec<bool>,
    mom: [MomentLattice; 2],
    cur: usize,
    boundary: Vec<(usize, usize, usize)>,
    /// Footprint origins of the edge strips (x-range touches a cut).
    strip_cols: Vec<(usize, usize)>,
    /// Remaining owned footprint origins.
    interior_cols: Vec<(usize, usize)>,
    wx: usize,
    wy: usize,
}

/// Slab-sharded 3D MR simulation (MR-P or MR-R) across N devices.
pub struct MultiMrSim3D<L: Lattice> {
    mg: MultiGpu,
    decomp: SlabDecomp,
    shards: Vec<Mr3dShard>,
    scheme: MrScheme,
    tau: f64,
    consts: KernelConsts,
    t: u64,
    stats: OverlapStats,
    monitor: Option<obs::PhysicsMonitor>,
    retry: HaloRetryPolicy,
    halo_retries: AtomicU64,
    _l: PhantomData<L>,
}

impl<L: Lattice> MultiMrSim3D<L> {
    /// Shard a duct-type geometry (walls on the y and z extreme faces)
    /// across `n` devices. Initialized to equilibrium at rest.
    pub fn new(device: DeviceSpec, geom: Geometry, scheme: MrScheme, tau: f64, n: usize) -> Self {
        assert!(geom.nz > 1, "MultiMrSim3D requires a 3D domain");
        assert_eq!(
            L::REACH,
            1,
            "the MR sliding window requires unit streaming reach"
        );
        assert!(
            !geom.periodic[1] && !geom.periodic[2],
            "MR requires wall-terminated y and z faces"
        );
        for y in 0..geom.ny {
            for x in 0..geom.nx {
                assert!(
                    geom.node(x, y, 0).is_solid() && geom.node(x, y, geom.nz - 1).is_solid(),
                    "MR requires walls at z = 0 and z = nz−1"
                );
            }
        }
        for z in 0..geom.nz {
            for x in 0..geom.nx {
                assert!(
                    geom.node(x, 0, z).is_solid() && geom.node(x, geom.ny - 1, z).is_solid(),
                    "MR requires walls at y = 0 and y = ny−1"
                );
            }
        }
        let decomp = SlabDecomp::new(geom, n);
        check_boundary_widths(&decomp);
        let mg = MultiGpu::ring(device.clone(), n);
        let shards = (0..n)
            .map(|r| {
                let g = decomp.local_geometry(r);
                let s = decomp.slab(r);
                let (wx, wy) = pick_column_footprint::<L>(&device, s.width, g.ny, 0, 0);
                let x_origins: Vec<usize> =
                    (0..s.width / wx).map(|k| s.owned_lo() + k * wx).collect();
                let (strip_x, interior_x) = if n == 1 {
                    (Vec::new(), x_origins)
                } else {
                    MrShard::partition(x_origins, s.ghost_l, s.ghost_r)
                };
                let with_y = |xs: &[usize]| -> Vec<(usize, usize)> {
                    xs.iter()
                        .flat_map(|&x0| (0..g.ny / wy).map(move |j| (x0, j * wy)))
                        .collect()
                };
                let ln = g.len();
                let boundary = boundary_nodes(&g);
                let bulk = lbm_gpu::boundary::bulk_mask::<L>(&g);
                Mr3dShard {
                    bulk,
                    mom: [
                        MomentLattice::new(ln, L::M, 0, 0).with_touch_tracking(),
                        MomentLattice::new(ln, L::M, 0, 0).with_touch_tracking(),
                    ],
                    cur: 0,
                    boundary,
                    strip_cols: with_y(&strip_x),
                    interior_cols: with_y(&interior_x),
                    wx,
                    wy,
                    geom: g,
                }
            })
            .collect();
        let mut sim = MultiMrSim3D {
            mg,
            decomp,
            shards,
            scheme,
            tau,
            consts: KernelConsts::new::<L>(tau),
            t: 0,
            stats: OverlapStats::default(),
            monitor: None,
            retry: HaloRetryPolicy::default(),
            halo_retries: AtomicU64::new(0),
            _l: PhantomData,
        };
        sim.init_with(|_, _, _| (1.0, [0.0; 3]));
        sim
    }

    /// Limit each device's CPU worker threads.
    pub fn with_cpu_threads(mut self, n: usize) -> Self {
        self.mg = self.mg.with_cpu_threads(n);
        self
    }

    /// Force the scalar (per-node) reference kernels instead of the
    /// chunk-vectorized ones — the equivalence-test oracle.
    pub fn with_scalar_kernels(mut self) -> Self {
        self.consts.scalar = true;
        self
    }

    /// Override the minimum launch size dispatched to the worker pool
    /// (see `gpu_sim::Gpu::with_parallel_threshold`); `0` forces pooling
    /// for every multi-block launch.
    pub fn with_parallel_threshold(mut self, items: usize) -> Self {
        self.mg = self.mg.with_parallel_threshold(items);
        self
    }

    /// Mirror link traffic into a shared profiler.
    pub fn with_profiler(mut self, p: std::sync::Arc<gpu_sim::profiler::Profiler>) -> Self {
        self.mg = self.mg.with_profiler(p);
        self
    }

    /// Attach an observability hub (tracer + metrics) to every device and
    /// the interconnect.
    pub fn with_obs(mut self, obs: std::sync::Arc<obs::Obs>) -> Self {
        self.set_obs(obs);
        self
    }

    /// In-place [`MultiMrSim3D::with_obs`] (the `Simulation` trait surface).
    pub fn set_obs(&mut self, obs: std::sync::Arc<obs::Obs>) {
        self.mg.set_obs(obs);
    }

    /// Tag every device's kernel spans (and this driver's step/halo spans)
    /// with a fleet trace context, or clear it with `None`.
    pub fn set_trace_ctx(&mut self, ctx: Option<obs::TraceCtx>) {
        self.mg.set_trace_ctx(ctx);
    }

    /// Device-memory footprint of every shard's resident moment lattices.
    pub fn footprint_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.mom[0].size_bytes() + s.mom[1].size_bytes())
            .sum()
    }

    /// Enable per-step physics monitoring (mass, momentum, max |u|, NaN guard).
    pub fn with_monitor(mut self, cfg: obs::MonitorConfig) -> Self {
        self.monitor = Some(obs::PhysicsMonitor::new(cfg));
        self
    }

    /// The physics monitor, if enabled.
    pub fn monitor(&self) -> Option<&obs::PhysicsMonitor> {
        self.monitor.as_ref()
    }

    /// Mutable access to the physics monitor, if enabled.
    pub fn monitor_mut(&mut self) -> Option<&mut obs::PhysicsMonitor> {
        self.monitor.as_mut()
    }

    /// Override the halo-transfer retry policy.
    pub fn with_halo_retry(mut self, policy: HaloRetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Attach a deterministic fault plan to every device, every shard's
    /// moment lattices, and the interconnect.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.mg.set_fault_plan(plan.clone());
        for sh in &mut self.shards {
            sh.mom[0].set_fault_plan(plan.clone());
            sh.mom[1].set_fault_plan(plan.clone());
        }
        self
    }

    /// Halo-transfer retries performed so far.
    pub fn halo_retries(&self) -> u64 {
        self.halo_retries.load(Ordering::Relaxed)
    }

    /// Initialize every node — including ghosts — from a macroscopic field
    /// at **global** coordinates (no initial exchange needed).
    pub fn init_with(&mut self, field: impl Fn(usize, usize, usize) -> (f64, [f64; 3])) {
        for (r, sh) in self.shards.iter_mut().enumerate() {
            sh.cur = 0;
            for idx in 0..sh.geom.len() {
                let (lx, y, z) = sh.geom.coords(idx);
                let gx = self.decomp.global_x(r, lx);
                let (rho, u) = match sh.geom.node_at(idx) {
                    NodeType::Inlet(u_bc) => (field(gx, y, z).0, u_bc),
                    NodeType::Outlet(rho_bc) => (rho_bc, field(gx, y, z).1),
                    _ => field(gx, y, z),
                };
                let m = Moments {
                    rho,
                    u,
                    pi: Moments::pi_eq(rho, u, L::D),
                };
                sh.mom[0].set_moments::<L>(0, idx, &m);
            }
        }
        self.t = 0;
        self.stats = OverlapStats::default();
    }

    /// Advance one timestep with the two-phase overlap schedule. Panics if
    /// a halo transfer fails beyond the retry budget; use
    /// [`MultiMrSim3D::try_step`] for typed link errors.
    pub fn step(&mut self) {
        self.try_step()
            .unwrap_or_else(|e| panic!("halo exchange failed: {e}"));
    }

    /// Advance one timestep, surfacing halo-link failures. On `Err` no
    /// state has advanced (`t` and the buffer parity are unchanged) — the
    /// completed edge-strip launches are idempotent and a later retry of
    /// the whole step recomputes them bitwise-identically.
    pub fn try_step(&mut self) -> Result<(), LinkError> {
        let obs = self.mg.obs().cloned();
        let _step_span = obs.as_ref().map(|o| {
            let mut args = vec![("t", self.t.to_string())];
            if let Some(ctx) = self.mg.trace_ctx() {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("driver", "step", &args)
        });
        let n_sh = self.shards.len();
        let mut boundary_bytes = vec![0u64; n_sh];
        let mut interior_bytes = vec![0u64; n_sh];
        let mut bc_bytes = vec![0u64; n_sh];

        for (r, sh) in self.shards.iter().enumerate() {
            if !sh.strip_cols.is_empty() {
                let stats = launch_mr3d_columns::<L>(
                    self.mg.device(r),
                    &sh.mom[sh.cur],
                    &sh.mom[sh.cur ^ 1],
                    &sh.geom,
                    &self.scheme,
                    &self.consts,
                    &sh.bulk,
                    self.t,
                    sh.wx,
                    sh.wy,
                    &sh.strip_cols,
                );
                boundary_bytes[r] += stats.tally.dram_bytes();
            }
        }

        let _halo_span = obs.as_ref().map(|o| {
            let mut args = Vec::new();
            if let Some(ctx) = self.mg.trace_ctx() {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("halo", "halo-exchange", &args)
        });
        let transfers = self.exchange()?;
        drop(_halo_span);

        for (r, sh) in self.shards.iter().enumerate() {
            if !sh.interior_cols.is_empty() {
                let stats = launch_mr3d_columns::<L>(
                    self.mg.device(r),
                    &sh.mom[sh.cur],
                    &sh.mom[sh.cur ^ 1],
                    &sh.geom,
                    &self.scheme,
                    &self.consts,
                    &sh.bulk,
                    self.t,
                    sh.wx,
                    sh.wy,
                    &sh.interior_cols,
                );
                interior_bytes[r] += stats.tally.dram_bytes();
            }
        }

        for (r, sh) in self.shards.iter().enumerate() {
            if !sh.boundary.is_empty() {
                let stats = launch_mr_bc::<L>(
                    self.mg.device(r),
                    &sh.mom[sh.cur ^ 1],
                    &sh.geom,
                    self.tau,
                    self.t + 1,
                    &sh.boundary,
                    64,
                );
                bc_bytes[r] += stats.tally.dram_bytes();
            }
        }

        let spec = self.mg.spec().clone();
        let max_t = |b: &[u64]| device_time_s(&spec, b.iter().copied().max().unwrap_or(0));
        self.stats.record_step(
            max_t(&boundary_bytes),
            max_t(&interior_bytes),
            exchange_time_s(&self.mg, &transfers),
            max_t(&bc_bytes),
        );

        for sh in &mut self.shards {
            sh.cur ^= 1;
        }
        self.t += 1;
        self.sample_monitor("multi-mr3d");
        Ok(())
    }

    /// Moment-space halo exchange across every cut. The link tally is
    /// recorded (with bounded retries on transient link faults) *before*
    /// the copy: a failed transfer moves no data and records no bytes, so
    /// a successful retry tallies exactly once.
    fn exchange(&self) -> Result<Vec<(usize, usize, u64)>, LinkError> {
        let mut out = Vec::new();
        for tr in self.decomp.halo_transfers() {
            let bytes = (self.decomp.column_fluid_count(tr.gx) * L::M * 8) as u64;
            transfer_with_retry(
                &self.mg,
                tr.from,
                tr.to,
                bytes,
                &self.retry,
                &self.halo_retries,
            )?;
            let (src, dst) = (&self.shards[tr.from], &self.shards[tr.to]);
            let (sm, dm) = (&src.mom[src.cur ^ 1], &dst.mom[dst.cur ^ 1]);
            for z in 0..src.geom.nz {
                for y in 0..src.geom.ny {
                    if !src.geom.node(tr.src_lx, y, z).is_fluid_like() {
                        continue;
                    }
                    let si = src.geom.idx(tr.src_lx, y, z);
                    let di = dst.geom.idx(tr.dst_lx, y, z);
                    let m = sm.get_moments::<L>(self.t + 1, si);
                    dm.set_moments::<L>(self.t + 1, di, &m);
                }
            }
            out.push((tr.from, tr.to, bytes));
        }
        Ok(out)
    }

    /// Advance `steps` timesteps, then flush a final monitor sample if the
    /// last step fell between cadence points.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
        self.finish_monitor();
    }

    /// Force a final monitor sample at the current step (no-op when the
    /// monitor is absent or already sampled this step).
    pub fn finish_monitor(&mut self) {
        if self.monitor.is_none() {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().finish(self.t, &rho, &u);
        if let (Some(s), Some(o)) = (s, self.mg.obs()) {
            let labels = [("pattern", "multi-mr3d")];
            o.metrics.gauge_set("monitor_mass", &labels, s.mass);
            o.metrics.gauge_set("monitor_max_u", &labels, s.max_u);
            o.tracer
                .instant("monitor", "flush", &[("step", s.step.to_string())]);
        }
    }

    /// Completed timesteps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The global geometry.
    pub fn geom(&self) -> &Geometry {
        self.decomp.global()
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.shards.len()
    }

    /// The interconnect (link byte counters, report).
    pub fn interconnect(&self) -> &MultiGpu {
        &self.mg
    }

    /// Modeled overlap-schedule timing.
    pub fn stats(&self) -> &OverlapStats {
        &self.stats
    }

    /// Analytic per-step halo traffic: fluid-like halo nodes × `M·8`.
    pub fn halo_bytes_per_step(&self) -> u64 {
        (self.decomp.halo_nodes_per_step() * L::M * 8) as u64
    }

    /// Moments at a global node (owner shard, current time).
    pub fn moments_at(&self, x: usize, y: usize, z: usize) -> Moments {
        let r = self.decomp.owner_of(x);
        let sh = &self.shards[r];
        let lx = self.decomp.slab(r).owned_lo() + (x - self.decomp.slab(r).x0);
        sh.mom[sh.cur].get_moments::<L>(self.t, sh.geom.idx(lx, y, z))
    }

    /// Global density and velocity in one pass (solid nodes report zero).
    pub fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>) {
        let g = self.decomp.global();
        let mut rho = vec![0.0; g.len()];
        let mut u = vec![[0.0; 3]; g.len()];
        for idx in 0..g.len() {
            if g.node_at(idx).is_fluid_like() {
                let (x, y, z) = g.coords(idx);
                let m = self.moments_at(x, y, z);
                rho[idx] = m.rho;
                u[idx] = m.u;
            }
        }
        (rho, u)
    }

    fn sample_monitor(&mut self, pattern: &str) {
        if !self.monitor.as_ref().is_some_and(|m| m.due(self.t)) {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().observe(self.t, &rho, &u);
        if let Some(o) = self.mg.obs() {
            let labels = [("pattern", pattern)];
            o.metrics.gauge_set("monitor_mass", &labels, s.mass);
            o.metrics.gauge_set("monitor_max_u", &labels, s.max_u);
        }
    }

    /// Global velocity field (solid nodes report zero).
    pub fn velocity_field(&self) -> Vec<[f64; 3]> {
        self.macro_fields().1
    }

    /// Global density field (solid nodes report zero).
    pub fn density_field(&self) -> Vec<f64> {
        self.macro_fields().0
    }

    /// FNV-1a checksum of the global macroscopic fields (bitwise).
    pub fn field_checksum(&self) -> u64 {
        let (rho, u) = self.macro_fields();
        lbm_core::io::field_checksum(&rho, &u)
    }

    /// Serialize the full sharded state: dimensions, timestep, overlap
    /// stats, and every shard's current moment lattice (ghost columns
    /// included, so no post-restore exchange is needed).
    pub fn checkpoint(&self) -> Vec<u8> {
        let g = self.decomp.global();
        let mut w = CheckpointWriter::new("multi-mr3d");
        w.put_u64(g.nx as u64)
            .put_u64(g.ny as u64)
            .put_u64(g.nz as u64)
            .put_u64(L::M as u64)
            .put_u64(self.shards.len() as u64)
            .put_u64(self.t)
            .put_u64(self.stats.steps)
            .put_f64(self.stats.boundary_s)
            .put_f64(self.stats.interior_s)
            .put_f64(self.stats.exchange_s)
            .put_f64(self.stats.bc_s)
            .put_f64(self.stats.hidden_s)
            .put_f64(self.stats.total_s);
        for sh in &self.shards {
            w.put_f64s(&sh.mom[sh.cur].host_snapshot());
        }
        w.finish()
    }

    /// Restore a snapshot taken by [`MultiMrSim3D::checkpoint`] on an
    /// identically configured simulation. Bitwise: the restored state
    /// continues exactly as the original would have (shift-0 lattices make
    /// the slot layout timestep-independent, so the snapshot lands in
    /// buffer 0 regardless of the saved parity).
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let g = self.decomp.global();
        let mut r = CheckpointReader::open(bytes, "multi-mr3d")?;
        r.expect_u64(g.nx as u64, "nx")?;
        r.expect_u64(g.ny as u64, "ny")?;
        r.expect_u64(g.nz as u64, "nz")?;
        r.expect_u64(L::M as u64, "M")?;
        r.expect_u64(self.shards.len() as u64, "shard count")?;
        self.t = r.take_u64()?;
        self.stats = OverlapStats {
            steps: r.take_u64()?,
            boundary_s: r.take_f64()?,
            interior_s: r.take_f64()?,
            exchange_s: r.take_f64()?,
            bc_s: r.take_f64()?,
            hidden_s: r.take_f64()?,
            total_s: r.take_f64()?,
        };
        for sh in &mut self.shards {
            let data = r.take_f64s(sh.mom[0].raw_len())?;
            sh.mom[0].host_restore(&data);
            sh.cur = 0;
        }
        if let Some(m) = self.monitor.as_mut() {
            m.rollback_to(self.t);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_gpu::MrSim3D;
    use lbm_lattice::D3Q19;

    fn duct(nx: usize, ny: usize, nz: usize) -> Geometry {
        // Periodic along x, walls on the four lateral faces.
        let mut g = Geometry::new(nx, ny, nz, [true, false, false]);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    if y == 0 || y == ny - 1 || z == 0 || z == nz - 1 {
                        g.set(x, y, z, lbm_core::geometry::NodeType::Wall);
                    }
                }
            }
        }
        g
    }

    fn shear_init(x: usize, y: usize, z: usize) -> (f64, [f64; 3]) {
        (
            1.0 + 0.005 * ((x + y + z) as f64 * 0.5).sin(),
            [
                0.02 * ((y + z) as f64 * 0.6).sin(),
                0.01 * (x as f64 * 0.4).cos(),
                0.01 * ((x + y) as f64 * 0.3).sin(),
            ],
        )
    }

    /// Sharded 3D MR matches the single-device run bitwise on a periodic-x
    /// duct.
    #[test]
    fn multi_matches_single_bitwise_3d() {
        let geom = duct(12, 8, 8);
        let mut single: MrSim3D<D3Q19> = MrSim3D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_cpu_threads(2);
        single.init_with(shear_init);
        let mut multi: MultiMrSim3D<D3Q19> =
            MultiMrSim3D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 3)
                .with_cpu_threads(2);
        multi.init_with(shear_init);
        single.run(6);
        multi.run(6);
        let (us, um) = (single.velocity_field(), multi.velocity_field());
        for (a, b) in us.iter().zip(&um) {
            for k in 0..3 {
                assert_eq!(a[k], b[k], "sharding changed the arithmetic");
            }
        }
    }

    /// D3Q19 halo node costs M·8 = 80 bytes in moment space (vs 152 ST).
    #[test]
    fn halo_bytes_are_m_per_node() {
        let geom = duct(8, 6, 6);
        let mut multi: MultiMrSim3D<D3Q19> =
            MultiMrSim3D::new(DeviceSpec::mi100(), geom, MrScheme::projective(), 0.8, 2)
                .with_cpu_threads(2);
        multi.run(3);
        // 4 transfers × (6−2)·(6−2) fluid nodes × 10·8 bytes.
        let per_step = 4 * 16 * 10 * 8;
        assert_eq!(multi.halo_bytes_per_step(), per_step as u64);
        assert_eq!(multi.interconnect().total_link_bytes(), 3 * per_step as u64);
    }

    /// Executor determinism across the sharded driver: identical fields and
    /// halo traffic under 1, 3, and 8 CPU threads per device.
    #[test]
    fn executor_determinism_across_thread_counts() {
        let run = |threads: usize| {
            let geom = duct(12, 8, 8);
            let mut multi: MultiMrSim3D<D3Q19> =
                MultiMrSim3D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 3)
                    .with_cpu_threads(threads)
                    .with_parallel_threshold(0); // force pooled dispatch at any size
            multi.init_with(shear_init);
            multi.run(6);
            (
                multi.velocity_field(),
                multi.density_field(),
                multi.halo_bytes_per_step(),
                multi.interconnect().total_link_bytes(),
            )
        };
        let base = run(1);
        for threads in [3, 8] {
            let got = run(threads);
            assert_eq!(base, got, "sharded MR3D diverges at {threads} threads");
        }
    }
}
