//! Multi-device 3D MR: slab sharding along `x` with moment-space halo
//! exchange (`M·8` = 80 bytes per D3Q19 halo node vs ST's `Q·8` = 152).
//!
//! Same design as [`crate::mr2d`]: per-shard double-buffered shift-0
//! moment lattices (the in-place circular shift is only safe when the
//! whole step is one lockstep launch), column footprints partitioned into
//! edge strips and interior, two-phase overlap schedule.

use crate::decomp::SlabDecomp;
use crate::mr2d::MrShard;
use crate::st::check_boundary_widths;
use crate::stats::{device_time_s, exchange_time_s, OverlapStats};
use gpu_sim::interconnect::MultiGpu;
use gpu_sim::DeviceSpec;
use lbm_core::geometry::{Geometry, NodeType};
use lbm_gpu::boundary::boundary_nodes;
use lbm_gpu::moment_lattice::MomentLattice;
use lbm_gpu::mr2d::launch_mr_bc;
use lbm_gpu::mr3d::{launch_mr3d_columns, pick_footprint};
use lbm_gpu::scheme::MrScheme;
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;
use std::marker::PhantomData;

struct Mr3dShard {
    geom: Geometry,
    mom: [MomentLattice; 2],
    cur: usize,
    boundary: Vec<(usize, usize, usize)>,
    /// Footprint origins of the edge strips (x-range touches a cut).
    strip_cols: Vec<(usize, usize)>,
    /// Remaining owned footprint origins.
    interior_cols: Vec<(usize, usize)>,
    wx: usize,
    wy: usize,
}

/// Slab-sharded 3D MR simulation (MR-P or MR-R) across N devices.
pub struct MultiMrSim3D<L: Lattice> {
    mg: MultiGpu,
    decomp: SlabDecomp,
    shards: Vec<Mr3dShard>,
    scheme: MrScheme,
    tau: f64,
    t: u64,
    stats: OverlapStats,
    monitor: Option<obs::PhysicsMonitor>,
    _l: PhantomData<L>,
}

impl<L: Lattice> MultiMrSim3D<L> {
    /// Shard a duct-type geometry (walls on the y and z extreme faces)
    /// across `n` devices. Initialized to equilibrium at rest.
    pub fn new(device: DeviceSpec, geom: Geometry, scheme: MrScheme, tau: f64, n: usize) -> Self {
        assert!(geom.nz > 1, "MultiMrSim3D requires a 3D domain");
        assert_eq!(
            L::REACH,
            1,
            "the MR sliding window requires unit streaming reach"
        );
        assert!(
            !geom.periodic[1] && !geom.periodic[2],
            "MR requires wall-terminated y and z faces"
        );
        for y in 0..geom.ny {
            for x in 0..geom.nx {
                assert!(
                    geom.node(x, y, 0).is_solid() && geom.node(x, y, geom.nz - 1).is_solid(),
                    "MR requires walls at z = 0 and z = nz−1"
                );
            }
        }
        for z in 0..geom.nz {
            for x in 0..geom.nx {
                assert!(
                    geom.node(x, 0, z).is_solid() && geom.node(x, geom.ny - 1, z).is_solid(),
                    "MR requires walls at y = 0 and y = ny−1"
                );
            }
        }
        let decomp = SlabDecomp::new(geom, n);
        check_boundary_widths(&decomp);
        let mg = MultiGpu::ring(device, n);
        let shards = (0..n)
            .map(|r| {
                let g = decomp.local_geometry(r);
                let s = decomp.slab(r);
                let wx = pick_footprint(s.width, 8);
                let wy = pick_footprint(g.ny, 8);
                let x_origins: Vec<usize> =
                    (0..s.width / wx).map(|k| s.owned_lo() + k * wx).collect();
                let (strip_x, interior_x) = if n == 1 {
                    (Vec::new(), x_origins)
                } else {
                    MrShard::partition(x_origins, s.ghost_l, s.ghost_r)
                };
                let with_y = |xs: &[usize]| -> Vec<(usize, usize)> {
                    xs.iter()
                        .flat_map(|&x0| (0..g.ny / wy).map(move |j| (x0, j * wy)))
                        .collect()
                };
                let ln = g.len();
                let boundary = boundary_nodes(&g);
                Mr3dShard {
                    mom: [
                        MomentLattice::new(ln, L::M, 0, 0).with_touch_tracking(),
                        MomentLattice::new(ln, L::M, 0, 0).with_touch_tracking(),
                    ],
                    cur: 0,
                    boundary,
                    strip_cols: with_y(&strip_x),
                    interior_cols: with_y(&interior_x),
                    wx,
                    wy,
                    geom: g,
                }
            })
            .collect();
        let mut sim = MultiMrSim3D {
            mg,
            decomp,
            shards,
            scheme,
            tau,
            t: 0,
            stats: OverlapStats::default(),
            monitor: None,
            _l: PhantomData,
        };
        sim.init_with(|_, _, _| (1.0, [0.0; 3]));
        sim
    }

    /// Limit each device's CPU worker threads.
    pub fn with_cpu_threads(mut self, n: usize) -> Self {
        self.mg = self.mg.with_cpu_threads(n);
        self
    }

    /// Override the minimum launch size dispatched to the worker pool
    /// (see `gpu_sim::Gpu::with_parallel_threshold`); `0` forces pooling
    /// for every multi-block launch.
    pub fn with_parallel_threshold(mut self, items: usize) -> Self {
        self.mg = self.mg.with_parallel_threshold(items);
        self
    }

    /// Mirror link traffic into a shared profiler.
    pub fn with_profiler(mut self, p: std::sync::Arc<gpu_sim::profiler::Profiler>) -> Self {
        self.mg = self.mg.with_profiler(p);
        self
    }

    /// Attach an observability hub (tracer + metrics) to every device and
    /// the interconnect.
    pub fn with_obs(mut self, obs: std::sync::Arc<obs::Obs>) -> Self {
        self.mg = self.mg.with_obs(obs);
        self
    }

    /// Enable per-step physics monitoring (mass, momentum, max |u|, NaN guard).
    pub fn with_monitor(mut self, cfg: obs::MonitorConfig) -> Self {
        self.monitor = Some(obs::PhysicsMonitor::new(cfg));
        self
    }

    /// The physics monitor, if enabled.
    pub fn monitor(&self) -> Option<&obs::PhysicsMonitor> {
        self.monitor.as_ref()
    }

    /// Initialize every node — including ghosts — from a macroscopic field
    /// at **global** coordinates (no initial exchange needed).
    pub fn init_with(&mut self, field: impl Fn(usize, usize, usize) -> (f64, [f64; 3])) {
        for (r, sh) in self.shards.iter_mut().enumerate() {
            sh.cur = 0;
            for idx in 0..sh.geom.len() {
                let (lx, y, z) = sh.geom.coords(idx);
                let gx = self.decomp.global_x(r, lx);
                let (rho, u) = match sh.geom.node_at(idx) {
                    NodeType::Inlet(u_bc) => (field(gx, y, z).0, u_bc),
                    NodeType::Outlet(rho_bc) => (rho_bc, field(gx, y, z).1),
                    _ => field(gx, y, z),
                };
                let m = Moments {
                    rho,
                    u,
                    pi: Moments::pi_eq(rho, u, L::D),
                };
                sh.mom[0].set_moments::<L>(0, idx, &m);
            }
        }
        self.t = 0;
        self.stats = OverlapStats::default();
    }

    /// Advance one timestep with the two-phase overlap schedule.
    pub fn step(&mut self) {
        let obs = self.mg.obs().cloned();
        let _step_span = obs.as_ref().map(|o| {
            o.tracer
                .span_args("driver", "step", &[("t", self.t.to_string())])
        });
        let n_sh = self.shards.len();
        let mut boundary_bytes = vec![0u64; n_sh];
        let mut interior_bytes = vec![0u64; n_sh];
        let mut bc_bytes = vec![0u64; n_sh];

        for (r, sh) in self.shards.iter().enumerate() {
            if !sh.strip_cols.is_empty() {
                let stats = launch_mr3d_columns::<L>(
                    self.mg.device(r),
                    &sh.mom[sh.cur],
                    &sh.mom[sh.cur ^ 1],
                    &sh.geom,
                    &self.scheme,
                    self.tau,
                    self.t,
                    sh.wx,
                    sh.wy,
                    &sh.strip_cols,
                );
                boundary_bytes[r] += stats.tally.dram_bytes();
            }
        }

        let _halo_span = obs.as_ref().map(|o| o.tracer.span("halo", "halo-exchange"));
        let transfers = self.exchange();
        drop(_halo_span);

        for (r, sh) in self.shards.iter().enumerate() {
            if !sh.interior_cols.is_empty() {
                let stats = launch_mr3d_columns::<L>(
                    self.mg.device(r),
                    &sh.mom[sh.cur],
                    &sh.mom[sh.cur ^ 1],
                    &sh.geom,
                    &self.scheme,
                    self.tau,
                    self.t,
                    sh.wx,
                    sh.wy,
                    &sh.interior_cols,
                );
                interior_bytes[r] += stats.tally.dram_bytes();
            }
        }

        for (r, sh) in self.shards.iter().enumerate() {
            if !sh.boundary.is_empty() {
                let stats = launch_mr_bc::<L>(
                    self.mg.device(r),
                    &sh.mom[sh.cur ^ 1],
                    &sh.geom,
                    self.tau,
                    self.t + 1,
                    &sh.boundary,
                    64,
                );
                bc_bytes[r] += stats.tally.dram_bytes();
            }
        }

        let spec = self.mg.spec().clone();
        let max_t = |b: &[u64]| device_time_s(&spec, b.iter().copied().max().unwrap_or(0));
        self.stats.record_step(
            max_t(&boundary_bytes),
            max_t(&interior_bytes),
            exchange_time_s(&self.mg, &transfers),
            max_t(&bc_bytes),
        );

        for sh in &mut self.shards {
            sh.cur ^= 1;
        }
        self.t += 1;
        self.sample_monitor("multi-mr3d");
    }

    /// Moment-space halo exchange across every cut.
    fn exchange(&self) -> Vec<(usize, usize, u64)> {
        let mut out = Vec::new();
        for tr in self.decomp.halo_transfers() {
            let (src, dst) = (&self.shards[tr.from], &self.shards[tr.to]);
            let (sm, dm) = (&src.mom[src.cur ^ 1], &dst.mom[dst.cur ^ 1]);
            let mut bytes = 0u64;
            for z in 0..src.geom.nz {
                for y in 0..src.geom.ny {
                    if !src.geom.node(tr.src_lx, y, z).is_fluid_like() {
                        continue;
                    }
                    let si = src.geom.idx(tr.src_lx, y, z);
                    let di = dst.geom.idx(tr.dst_lx, y, z);
                    let m = sm.get_moments::<L>(self.t + 1, si);
                    dm.set_moments::<L>(self.t + 1, di, &m);
                    bytes += (L::M * 8) as u64;
                }
            }
            self.mg.record_transfer(tr.from, tr.to, bytes);
            out.push((tr.from, tr.to, bytes));
        }
        out
    }

    /// Advance `steps` timesteps.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Completed timesteps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The global geometry.
    pub fn geom(&self) -> &Geometry {
        self.decomp.global()
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.shards.len()
    }

    /// The interconnect (link byte counters, report).
    pub fn interconnect(&self) -> &MultiGpu {
        &self.mg
    }

    /// Modeled overlap-schedule timing.
    pub fn stats(&self) -> &OverlapStats {
        &self.stats
    }

    /// Analytic per-step halo traffic: fluid-like halo nodes × `M·8`.
    pub fn halo_bytes_per_step(&self) -> u64 {
        (self.decomp.halo_nodes_per_step() * L::M * 8) as u64
    }

    /// Moments at a global node (owner shard, current time).
    pub fn moments_at(&self, x: usize, y: usize, z: usize) -> Moments {
        let r = self.decomp.owner_of(x);
        let sh = &self.shards[r];
        let lx = self.decomp.slab(r).owned_lo() + (x - self.decomp.slab(r).x0);
        sh.mom[sh.cur].get_moments::<L>(self.t, sh.geom.idx(lx, y, z))
    }

    /// Global density and velocity in one pass (solid nodes report zero).
    fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>) {
        let g = self.decomp.global();
        let mut rho = vec![0.0; g.len()];
        let mut u = vec![[0.0; 3]; g.len()];
        for idx in 0..g.len() {
            if g.node_at(idx).is_fluid_like() {
                let (x, y, z) = g.coords(idx);
                let m = self.moments_at(x, y, z);
                rho[idx] = m.rho;
                u[idx] = m.u;
            }
        }
        (rho, u)
    }

    fn sample_monitor(&mut self, pattern: &str) {
        if !self.monitor.as_ref().is_some_and(|m| m.due(self.t)) {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().observe(self.t, &rho, &u);
        if let Some(o) = self.mg.obs() {
            let labels = [("pattern", pattern)];
            o.metrics.gauge_set("monitor_mass", &labels, s.mass);
            o.metrics.gauge_set("monitor_max_u", &labels, s.max_u);
        }
    }

    /// Global velocity field (solid nodes report zero).
    pub fn velocity_field(&self) -> Vec<[f64; 3]> {
        self.macro_fields().1
    }

    /// Global density field (solid nodes report zero).
    pub fn density_field(&self) -> Vec<f64> {
        self.macro_fields().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_gpu::MrSim3D;
    use lbm_lattice::D3Q19;

    fn duct(nx: usize, ny: usize, nz: usize) -> Geometry {
        // Periodic along x, walls on the four lateral faces.
        let mut g = Geometry::new(nx, ny, nz, [true, false, false]);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    if y == 0 || y == ny - 1 || z == 0 || z == nz - 1 {
                        g.set(x, y, z, lbm_core::geometry::NodeType::Wall);
                    }
                }
            }
        }
        g
    }

    fn shear_init(x: usize, y: usize, z: usize) -> (f64, [f64; 3]) {
        (
            1.0 + 0.005 * ((x + y + z) as f64 * 0.5).sin(),
            [
                0.02 * ((y + z) as f64 * 0.6).sin(),
                0.01 * (x as f64 * 0.4).cos(),
                0.01 * ((x + y) as f64 * 0.3).sin(),
            ],
        )
    }

    /// Sharded 3D MR matches the single-device run bitwise on a periodic-x
    /// duct.
    #[test]
    fn multi_matches_single_bitwise_3d() {
        let geom = duct(12, 8, 8);
        let mut single: MrSim3D<D3Q19> = MrSim3D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_cpu_threads(2);
        single.init_with(shear_init);
        let mut multi: MultiMrSim3D<D3Q19> =
            MultiMrSim3D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 3)
                .with_cpu_threads(2);
        multi.init_with(shear_init);
        single.run(6);
        multi.run(6);
        let (us, um) = (single.velocity_field(), multi.velocity_field());
        for (a, b) in us.iter().zip(&um) {
            for k in 0..3 {
                assert_eq!(a[k], b[k], "sharding changed the arithmetic");
            }
        }
    }

    /// D3Q19 halo node costs M·8 = 80 bytes in moment space (vs 152 ST).
    #[test]
    fn halo_bytes_are_m_per_node() {
        let geom = duct(8, 6, 6);
        let mut multi: MultiMrSim3D<D3Q19> =
            MultiMrSim3D::new(DeviceSpec::mi100(), geom, MrScheme::projective(), 0.8, 2)
                .with_cpu_threads(2);
        multi.run(3);
        // 4 transfers × (6−2)·(6−2) fluid nodes × 10·8 bytes.
        let per_step = 4 * 16 * 10 * 8;
        assert_eq!(multi.halo_bytes_per_step(), per_step as u64);
        assert_eq!(multi.interconnect().total_link_bytes(), 3 * per_step as u64);
    }

    /// Executor determinism across the sharded driver: identical fields and
    /// halo traffic under 1, 3, and 8 CPU threads per device.
    #[test]
    fn executor_determinism_across_thread_counts() {
        let run = |threads: usize| {
            let geom = duct(12, 8, 8);
            let mut multi: MultiMrSim3D<D3Q19> =
                MultiMrSim3D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 3)
                    .with_cpu_threads(threads)
                    .with_parallel_threshold(0); // force pooled dispatch at any size
            multi.init_with(shear_init);
            multi.run(6);
            (
                multi.velocity_field(),
                multi.density_field(),
                multi.halo_bytes_per_step(),
                multi.interconnect().total_link_bytes(),
            )
        };
        let base = run(1);
        for threads in [3, 8] {
            let got = run(threads);
            assert_eq!(base, got, "sharded MR3D diverges at {threads} threads");
        }
    }
}
