//! Multi-device domain decomposition with moment-space halo exchange.
//!
//! Runs one simulation sharded across N simulated GPUs ([`gpu_sim`]'s
//! [`MultiGpu`](gpu_sim::interconnect::MultiGpu)), extending the paper's
//! bandwidth argument from device memory to the interconnect: a halo node
//! costs `M·8` bytes to exchange in moment space instead of `Q·8` in
//! distribution space — the exact `M/Q` ratio of Table 2 (96/144 for
//! D2Q9, 160/304 for D3Q19 in two-lattice B/F terms; 80 vs 152 on the
//! wire per D3Q19 halo node).
//!
//! * [`decomp`] — 1D slab decomposition along `x` with one-node ghost
//!   columns, local geometries that mirror global node types, and exact
//!   per-column halo accounting.
//! * [`st`] — sharded standard representation ([`MultiStSim`]):
//!   distribution-space exchange, `Q·8` bytes per halo node.
//! * [`aa`] — sharded in-place AA-pattern ST ([`MultiAaStSim`]): one
//!   resident lattice per shard and a parity-aware exchange moving only
//!   the cut-crossing slots, on stream half-steps only.
//! * [`mr2d`] / [`mr3d`] — sharded moment representation
//!   ([`MultiMrSim2D`], [`MultiMrSim3D`]): moment-space exchange, `M·8`
//!   bytes per halo node, per-shard double-buffered shift-0 moment
//!   lattices (the in-place circular shift of Algorithm 2 is only safe
//!   when a whole step is one lockstep launch).
//! * [`sparse`] — sharded fluid-compacted drivers ([`MultiSparseStSim`],
//!   [`MultiSparseMrSim`]): per-shard tiled compaction and a per-tile halo
//!   exchange whose wire bytes scale with the cut columns' *fluid* count,
//!   not the bounding-box cross-section.
//! * [`recovery`] — checkpoint/rollback recovery loop and bounded
//!   halo-retry policy, driving any [`lbm_core::Simulation`] (the shared
//!   trait implemented by all six drivers — see [`sim_impls`]).
//! * [`stats`] — the two-phase overlap schedule's timing model
//!   (`t_step = t_boundary + max(t_interior, t_exchange) + t_bc`) and
//!   overlap efficiency.
//!
//! All three drivers are *bitwise* identical to their single-device
//! counterparts: ghosts carry exact doubles and every kernel's per-node
//! arithmetic is decomposition-independent. The test suite asserts
//! equality with `==`, not a tolerance.

pub mod aa;
pub mod decomp;
pub mod mr2d;
pub mod mr3d;
pub mod recovery;
pub mod sim_impls;
pub mod sparse;
pub mod st;
pub mod stats;

pub use aa::MultiAaStSim;
pub use decomp::{Cut, HaloTransfer, Slab, SlabDecomp};
pub use lbm_core::{Simulation, StepError};
pub use mr2d::MultiMrSim2D;
pub use mr3d::MultiMrSim3D;
pub use recovery::{
    run_with_recovery, HaloRetryPolicy, RecoveryConfig, RecoveryError, RecoveryStats,
};
pub use sparse::{MultiSparseMrSim, MultiSparseStSim};
pub use st::MultiStSim;
pub use stats::OverlapStats;
