//! Multi-device ST: slab-sharded standard representation with
//! distribution-space halo exchange (`Q·8` bytes per halo node).
//!
//! Each shard runs the same pull-scheme update as `StSim` over its owned
//! span, so the sharded trajectory is *bitwise* identical to the
//! single-device one. The per-step schedule is the two-phase overlap of
//! [`crate::stats`]: edge strips first, their freshly computed columns are
//! exchanged while the interior launch proceeds, then the inlet/outlet
//! kernel rebuilds the global `x` edges.

use crate::decomp::SlabDecomp;
use crate::recovery::{transfer_with_retry, HaloRetryPolicy};
use crate::stats::{device_time_s, exchange_time_s, OverlapStats};
use gpu_sim::interconnect::{LinkError, MultiGpu};
use gpu_sim::{DeviceSpec, FaultPlan, GlobalBuffer};
use lbm_core::collision::Collision;
use lbm_core::geometry::{Geometry, NodeType};
use lbm_core::io::{CheckpointError, CheckpointReader, CheckpointWriter};
use lbm_core::kernels::KernelConsts;
use lbm_gpu::boundary::boundary_nodes;
use lbm_gpu::st::{launch_st_bc, launch_st_pull_span};
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const MAX_Q: usize = 48;

struct StShard {
    geom: Geometry,
    f: [GlobalBuffer<f64>; 2],
    cur: usize,
    boundary: Vec<(usize, usize, usize)>,
    owned_lo: usize,
    owned_hi: usize,
    ghost_l: bool,
    ghost_r: bool,
}

impl StShard {
    /// Edge-strip spans (the owned columns adjacent to cuts), merged when
    /// a 1-wide shard's single column is both edges.
    fn strip_spans(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        if self.ghost_l {
            out.push((self.owned_lo, self.owned_lo + 1));
        }
        if self.ghost_r {
            let span = (self.owned_hi - 1, self.owned_hi);
            if out.first() != Some(&span) {
                out.push(span);
            }
        }
        out
    }

    /// The owned span not covered by edge strips.
    fn interior_span(&self) -> Option<(usize, usize)> {
        let lo = self.owned_lo + self.ghost_l as usize;
        let hi = self.owned_hi - self.ghost_r as usize;
        (lo < hi).then_some((lo, hi))
    }
}

/// Slab-sharded ST simulation across N simulated devices.
pub struct MultiStSim<L: Lattice, C: Collision<L>> {
    mg: MultiGpu,
    decomp: SlabDecomp,
    shards: Vec<StShard>,
    collision: C,
    consts: KernelConsts,
    block_size: usize,
    t: u64,
    stats: OverlapStats,
    monitor: Option<obs::PhysicsMonitor>,
    retry: HaloRetryPolicy,
    halo_retries: AtomicU64,
    _l: PhantomData<L>,
}

impl<L: Lattice, C: Collision<L>> MultiStSim<L, C> {
    /// Shard `geom` across `n` devices of one spec, joined ring-wise with
    /// the vendor's preset link. Initialized to equilibrium at rest.
    pub fn new(device: DeviceSpec, geom: Geometry, collision: C, n: usize) -> Self {
        if L::D == 2 {
            assert_eq!(geom.nz, 1, "2D lattice on a 3D domain");
        }
        assert_eq!(L::REACH, 1, "slab ghosts are one column wide");
        let decomp = SlabDecomp::new(geom, n);
        check_boundary_widths(&decomp);
        let mg = MultiGpu::ring(device, n);
        let shards = (0..n)
            .map(|r| {
                let g = decomp.local_geometry(r);
                let s = decomp.slab(r);
                let ln = g.len();
                let boundary = boundary_nodes(&g);
                StShard {
                    f: [
                        GlobalBuffer::new(L::Q * ln).with_touch_tracking(),
                        GlobalBuffer::new(L::Q * ln).with_touch_tracking(),
                    ],
                    cur: 0,
                    boundary,
                    owned_lo: s.owned_lo(),
                    owned_hi: s.owned_hi(),
                    ghost_l: s.ghost_l,
                    ghost_r: s.ghost_r,
                    geom: g,
                }
            })
            .collect();
        let mut sim = MultiStSim {
            mg,
            decomp,
            shards,
            consts: KernelConsts::new::<L>(collision.tau()),
            collision,
            block_size: 256,
            t: 0,
            stats: OverlapStats::default(),
            monitor: None,
            retry: HaloRetryPolicy::default(),
            halo_retries: AtomicU64::new(0),
            _l: PhantomData,
        };
        sim.init_with(|_, _, _| (1.0, [0.0; 3]));
        sim
    }

    /// Limit each device's CPU worker threads.
    pub fn with_cpu_threads(mut self, n: usize) -> Self {
        self.mg = self.mg.with_cpu_threads(n);
        self
    }

    /// Force the scalar (per-node) reference kernels instead of the
    /// chunk-vectorized ones — the equivalence-test oracle.
    pub fn with_scalar_kernels(mut self) -> Self {
        self.consts.scalar = true;
        self
    }

    /// Override the minimum launch size dispatched to the worker pool
    /// (see `gpu_sim::Gpu::with_parallel_threshold`); `0` forces pooling
    /// for every multi-block launch.
    pub fn with_parallel_threshold(mut self, items: usize) -> Self {
        self.mg = self.mg.with_parallel_threshold(items);
        self
    }

    /// Mirror link traffic into a shared profiler.
    pub fn with_profiler(mut self, p: std::sync::Arc<gpu_sim::profiler::Profiler>) -> Self {
        self.mg = self.mg.with_profiler(p);
        self
    }

    /// Set the thread-block size of the span kernels.
    pub fn with_block_size(mut self, bs: usize) -> Self {
        assert!(bs >= 1);
        self.block_size = bs;
        self
    }

    /// Attach one observability hub to every device and the link layer:
    /// the driver adds `step` and `halo-exchange` spans, the devices nest
    /// kernel spans, and transfers publish link metrics.
    pub fn with_obs(mut self, obs: std::sync::Arc<obs::Obs>) -> Self {
        self.set_obs(obs);
        self
    }

    /// In-place [`MultiStSim::with_obs`] (the `Simulation` trait surface).
    pub fn set_obs(&mut self, obs: std::sync::Arc<obs::Obs>) {
        self.mg.set_obs(obs);
    }

    /// Tag every device's kernel spans (and this driver's step/halo spans)
    /// with a fleet trace context, or clear it with `None`.
    pub fn set_trace_ctx(&mut self, ctx: Option<obs::TraceCtx>) {
        self.mg.set_trace_ctx(ctx);
    }

    /// Device-memory footprint of every shard's resident lattices.
    pub fn footprint_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.f[0].size_bytes() + s.f[1].size_bytes())
            .sum()
    }

    /// Attach a physics monitor over the *global* fields every
    /// `cfg.cadence` steps.
    pub fn with_monitor(mut self, cfg: obs::MonitorConfig) -> Self {
        self.monitor = Some(obs::PhysicsMonitor::new(cfg));
        self
    }

    /// The attached physics monitor, if any.
    pub fn monitor(&self) -> Option<&obs::PhysicsMonitor> {
        self.monitor.as_ref()
    }

    /// Mutable access to the physics monitor, if enabled.
    pub fn monitor_mut(&mut self) -> Option<&mut obs::PhysicsMonitor> {
        self.monitor.as_mut()
    }

    /// Override the halo-transfer retry policy.
    pub fn with_halo_retry(mut self, policy: HaloRetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Attach a deterministic fault plan to every device, every shard's
    /// distribution buffers, and the interconnect.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.mg.set_fault_plan(plan.clone());
        for sh in &mut self.shards {
            sh.f[0].set_fault_plan(plan.clone());
            sh.f[1].set_fault_plan(plan.clone());
        }
        self
    }

    /// Halo-transfer retries performed so far.
    pub fn halo_retries(&self) -> u64 {
        self.halo_retries.load(Ordering::Relaxed)
    }

    /// Cadence-gated monitor sampling over the gathered global fields.
    fn sample_monitor(&mut self, pattern: &str) {
        if !self.monitor.as_ref().is_some_and(|m| m.due(self.t)) {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().observe(self.t, &rho, &u);
        if let Some(o) = self.mg.obs() {
            o.metrics
                .gauge_set("monitor_mass", &[("pattern", pattern)], s.mass);
            o.metrics
                .gauge_set("monitor_max_u", &[("pattern", pattern)], s.max_u);
        }
    }

    /// Initialize every node — *including ghosts* — from a macroscopic
    /// field evaluated at **global** coordinates, so ghost columns start
    /// consistent with their owners and no initial exchange is needed.
    pub fn init_with(&mut self, field: impl Fn(usize, usize, usize) -> (f64, [f64; 3])) {
        let mut feq = [0.0f64; MAX_Q];
        for (r, sh) in self.shards.iter_mut().enumerate() {
            sh.cur = 0;
            let ln = sh.geom.len();
            for idx in 0..ln {
                let (lx, y, z) = sh.geom.coords(idx);
                let gx = self.decomp.global_x(r, lx);
                let (rho, u) = match sh.geom.node_at(idx) {
                    NodeType::Inlet(u_bc) => (field(gx, y, z).0, u_bc),
                    NodeType::Outlet(rho_bc) => (rho_bc, field(gx, y, z).1),
                    _ => field(gx, y, z),
                };
                let m = Moments {
                    rho,
                    u,
                    pi: Moments::pi_eq(rho, u, L::D),
                };
                self.collision.reconstruct(&m, &mut feq[..L::Q]);
                for (i, &v) in feq[..L::Q].iter().enumerate() {
                    sh.f[0].set(i * ln + idx, v);
                }
            }
        }
        self.t = 0;
        self.stats = OverlapStats::default();
    }

    /// Advance one timestep with the two-phase overlap schedule. Panics if
    /// a halo transfer fails beyond the retry budget; use
    /// [`MultiStSim::try_step`] for typed link errors.
    pub fn step(&mut self) {
        self.try_step()
            .unwrap_or_else(|e| panic!("halo exchange failed: {e}"));
    }

    /// Advance one timestep, surfacing halo-link failures. On `Err` no
    /// state has advanced (`t` and the buffer parity are unchanged) — the
    /// completed strip launches are idempotent and a later retry of the
    /// whole step recomputes them bitwise-identically.
    pub fn try_step(&mut self) -> Result<(), LinkError> {
        let obs = self.mg.obs().cloned();
        let _step_span = obs.as_ref().map(|o| {
            let mut args = vec![("t", self.t.to_string())];
            if let Some(ctx) = self.mg.trace_ctx() {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("driver", "step", &args)
        });
        let n_sh = self.shards.len();
        let mut boundary_bytes = vec![0u64; n_sh];
        let mut interior_bytes = vec![0u64; n_sh];
        let mut bc_bytes = vec![0u64; n_sh];

        // Phase 1: boundary strips — the owned edge columns whose t+1
        // values the neighbors' ghosts need.
        for (r, sh) in self.shards.iter().enumerate() {
            for (lo, hi) in sh.strip_spans() {
                let stats = launch_st_pull_span::<L, C>(
                    self.mg.device(r),
                    &sh.f[sh.cur],
                    &sh.f[sh.cur ^ 1],
                    &sh.geom,
                    &self.collision,
                    &self.consts,
                    self.block_size,
                    lo,
                    hi,
                );
                boundary_bytes[r] += stats.tally.dram_bytes();
            }
        }

        // Phase 2: halo exchange of the strip results (overlapped with the
        // interior launch in the timing model).
        let _halo_span = obs.as_ref().map(|o| {
            let mut args = Vec::new();
            if let Some(ctx) = self.mg.trace_ctx() {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("halo", "halo-exchange", &args)
        });
        let transfers = self.exchange()?;
        drop(_halo_span);

        // Phase 3: interior.
        for (r, sh) in self.shards.iter().enumerate() {
            if let Some((lo, hi)) = sh.interior_span() {
                let stats = launch_st_pull_span::<L, C>(
                    self.mg.device(r),
                    &sh.f[sh.cur],
                    &sh.f[sh.cur ^ 1],
                    &sh.geom,
                    &self.collision,
                    &self.consts,
                    self.block_size,
                    lo,
                    hi,
                );
                interior_bytes[r] += stats.tally.dram_bytes();
            }
        }

        // Phase 4: inlet/outlet rebuild on the shards owning global x edges.
        for (r, sh) in self.shards.iter().enumerate() {
            if !sh.boundary.is_empty() {
                let stats = launch_st_bc::<L, C>(
                    self.mg.device(r),
                    &sh.f[sh.cur ^ 1],
                    &sh.geom,
                    &self.collision,
                    &sh.boundary,
                    self.block_size,
                );
                bc_bytes[r] += stats.tally.dram_bytes();
            }
        }

        let spec = self.mg.spec().clone();
        let max_t = |b: &[u64]| device_time_s(&spec, b.iter().copied().max().unwrap_or(0));
        self.stats.record_step(
            max_t(&boundary_bytes),
            max_t(&interior_bytes),
            exchange_time_s(&self.mg, &transfers),
            max_t(&bc_bytes),
        );

        for sh in &mut self.shards {
            sh.cur ^= 1;
        }
        self.t += 1;
        self.sample_monitor("multi-st");
        Ok(())
    }

    /// Copy every cut's freshly computed edge columns (in `dst`, time
    /// `t+1`) into the neighbors' ghost columns. The link tally is
    /// recorded (with bounded retries on transient link faults) *before*
    /// the copy: a failed transfer moves no data and records no bytes, so
    /// a successful retry tallies exactly once.
    fn exchange(&self) -> Result<Vec<(usize, usize, u64)>, LinkError> {
        let mut out = Vec::new();
        for tr in self.decomp.halo_transfers() {
            let bytes = (self.decomp.column_fluid_count(tr.gx) * L::Q * 8) as u64;
            transfer_with_retry(
                &self.mg,
                tr.from,
                tr.to,
                bytes,
                &self.retry,
                &self.halo_retries,
            )?;
            let (src, dst) = (&self.shards[tr.from], &self.shards[tr.to]);
            let (sn, dn) = (src.geom.len(), dst.geom.len());
            let (sf, df) = (&src.f[src.cur ^ 1], &dst.f[dst.cur ^ 1]);
            for z in 0..src.geom.nz {
                for y in 0..src.geom.ny {
                    if !src.geom.node(tr.src_lx, y, z).is_fluid_like() {
                        continue;
                    }
                    let si = src.geom.idx(tr.src_lx, y, z);
                    let di = dst.geom.idx(tr.dst_lx, y, z);
                    for i in 0..L::Q {
                        df.set(i * dn + di, sf.get(i * sn + si));
                    }
                }
            }
            out.push((tr.from, tr.to, bytes));
        }
        Ok(out)
    }

    /// Advance `steps` timesteps, then flush a final monitor sample if the
    /// last step fell between cadence points.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
        self.finish_monitor();
    }

    /// Force a final monitor sample at the current step (no-op when the
    /// monitor is absent or already sampled this step).
    pub fn finish_monitor(&mut self) {
        if self.monitor.is_none() {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().finish(self.t, &rho, &u);
        if let (Some(s), Some(o)) = (s, self.mg.obs()) {
            let labels = [("pattern", "multi-st")];
            o.metrics.gauge_set("monitor_mass", &labels, s.mass);
            o.metrics.gauge_set("monitor_max_u", &labels, s.max_u);
            o.tracer
                .instant("monitor", "flush", &[("step", s.step.to_string())]);
        }
    }

    /// Completed timesteps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The global geometry.
    pub fn geom(&self) -> &Geometry {
        self.decomp.global()
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.shards.len()
    }

    /// The interconnect (link byte counters, report).
    pub fn interconnect(&self) -> &MultiGpu {
        &self.mg
    }

    /// Modeled overlap-schedule timing.
    pub fn stats(&self) -> &OverlapStats {
        &self.stats
    }

    /// Analytic per-step halo traffic: fluid-like halo nodes × `Q·8`.
    pub fn halo_bytes_per_step(&self) -> u64 {
        (self.decomp.halo_nodes_per_step() * L::Q * 8) as u64
    }

    /// Distribution at a global node (current state, owner shard).
    pub fn f_at(&self, x: usize, y: usize, z: usize) -> Vec<f64> {
        let r = self.decomp.owner_of(x);
        let sh = &self.shards[r];
        let lx = self.decomp.slab(r).owned_lo() + (x - self.decomp.slab(r).x0);
        let ln = sh.geom.len();
        let idx = sh.geom.idx(lx, y, z);
        (0..L::Q).map(|i| sh.f[sh.cur].get(i * ln + idx)).collect()
    }

    /// Moments at a global node.
    pub fn moments_at(&self, x: usize, y: usize, z: usize) -> Moments {
        Moments::from_f::<L>(&self.f_at(x, y, z))
    }

    /// Global density and velocity fields in one pass over the owning
    /// shards, without the per-node `Vec` of [`MultiStSim::f_at`] (solid
    /// nodes report zero). This is what the physics monitor samples.
    pub fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>) {
        let g = self.decomp.global();
        let mut rho_out = vec![0.0; g.len()];
        let mut u_out = vec![[0.0; 3]; g.len()];
        for (idx, rho_o) in rho_out.iter_mut().enumerate() {
            if !g.node_at(idx).is_fluid_like() {
                continue;
            }
            let (x, y, z) = g.coords(idx);
            let r = self.decomp.owner_of(x);
            let sh = &self.shards[r];
            let lx = self.decomp.slab(r).owned_lo() + (x - self.decomp.slab(r).x0);
            let ln = sh.geom.len();
            let lidx = sh.geom.idx(lx, y, z);
            let buf = &sh.f[sh.cur];
            let mut rho = 0.0;
            let mut j = [0.0f64; 3];
            for i in 0..L::Q {
                let fi = buf.get(i * ln + lidx);
                let c = L::cf(i);
                rho += fi;
                j[0] += c[0] * fi;
                j[1] += c[1] * fi;
                j[2] += c[2] * fi;
            }
            let inv_rho = 1.0 / rho;
            *rho_o = rho;
            u_out[idx] = [j[0] * inv_rho, j[1] * inv_rho, j[2] * inv_rho];
        }
        (rho_out, u_out)
    }

    /// Global velocity field (solid nodes report zero), gathered from the
    /// owning shards.
    pub fn velocity_field(&self) -> Vec<[f64; 3]> {
        self.macro_fields().1
    }

    /// Global density field (solid nodes report zero).
    pub fn density_field(&self) -> Vec<f64> {
        self.macro_fields().0
    }

    /// FNV-1a checksum of the global macroscopic fields (bitwise).
    pub fn field_checksum(&self) -> u64 {
        let (rho, u) = self.macro_fields();
        lbm_core::io::field_checksum(&rho, &u)
    }

    /// Serialize the full sharded state: dimensions, timestep, overlap
    /// stats, and every shard's current distribution buffer (ghost
    /// columns included, so no post-restore exchange is needed).
    pub fn checkpoint(&self) -> Vec<u8> {
        let g = self.decomp.global();
        let mut w = CheckpointWriter::new("multi-st");
        w.put_u64(g.nx as u64)
            .put_u64(g.ny as u64)
            .put_u64(g.nz as u64)
            .put_u64(L::Q as u64)
            .put_u64(self.shards.len() as u64)
            .put_u64(self.t)
            .put_u64(self.stats.steps)
            .put_f64(self.stats.boundary_s)
            .put_f64(self.stats.interior_s)
            .put_f64(self.stats.exchange_s)
            .put_f64(self.stats.bc_s)
            .put_f64(self.stats.hidden_s)
            .put_f64(self.stats.total_s);
        for sh in &self.shards {
            w.put_f64s(&sh.f[sh.cur].snapshot());
        }
        w.finish()
    }

    /// Restore a snapshot taken by [`MultiStSim::checkpoint`] on an
    /// identically configured simulation. Bitwise: the restored state
    /// continues exactly as the original would have (the snapshot lands in
    /// buffer 0 regardless of the saved parity).
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let g = self.decomp.global();
        let mut r = CheckpointReader::open(bytes, "multi-st")?;
        r.expect_u64(g.nx as u64, "nx")?;
        r.expect_u64(g.ny as u64, "ny")?;
        r.expect_u64(g.nz as u64, "nz")?;
        r.expect_u64(L::Q as u64, "Q")?;
        r.expect_u64(self.shards.len() as u64, "shard count")?;
        self.t = r.take_u64()?;
        self.stats = OverlapStats {
            steps: r.take_u64()?,
            boundary_s: r.take_f64()?,
            interior_s: r.take_f64()?,
            exchange_s: r.take_f64()?,
            bc_s: r.take_f64()?,
            hidden_s: r.take_f64()?,
            total_s: r.take_f64()?,
        };
        for sh in &mut self.shards {
            let n = L::Q * sh.geom.len();
            let data = r.take_f64s(n)?;
            for (i, v) in data.iter().enumerate() {
                sh.f[0].set(i, *v);
            }
            sh.cur = 0;
        }
        if let Some(m) = self.monitor.as_mut() {
            m.rollback_to(self.t);
        }
        Ok(())
    }
}

/// Inlet/outlet domains constrain the decomposition: the FD stencil of an
/// edge shard reads two columns inward (so edge shards must own ≥ 3), and
/// no cut-adjacent column may itself be a boundary column (so every shard
/// must own ≥ 2).
pub(crate) fn check_boundary_widths(decomp: &SlabDecomp) {
    if boundary_nodes(decomp.global()).is_empty() || decomp.num_shards() == 1 {
        return;
    }
    let n = decomp.num_shards();
    for (r, s) in decomp.slabs().iter().enumerate() {
        if r == 0 || r == n - 1 {
            assert!(
                s.width >= 3,
                "edge shard {r} owns {} columns; FD boundaries need ≥ 3",
                s.width
            );
        } else {
            assert!(
                s.width >= 2,
                "shard {r} owns {} columns; boundary domains need ≥ 2",
                s.width
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_core::collision::{Bgk, Projective};
    use lbm_gpu::StSim;
    use lbm_lattice::{D2Q9, D3Q19};

    fn shear_init(x: usize, y: usize, _z: usize) -> (f64, [f64; 3]) {
        (
            1.0 + 0.01 * ((x + 2 * y) as f64 * 0.3).sin(),
            [
                0.03 * (y as f64 * 0.6).sin(),
                0.01 * (x as f64 * 0.4).cos(),
                0.0,
            ],
        )
    }

    /// Sharded ST is bitwise identical to single-device ST on a periodic-x
    /// channel — same pull arithmetic, ghosts carry exact doubles.
    #[test]
    fn multi_matches_single_bitwise_2d() {
        let geom = Geometry::walls_y_periodic_x(16, 8);
        let mut single: StSim<D2Q9, _> =
            StSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8)).with_cpu_threads(2);
        single.init_with(shear_init);
        let mut multi: MultiStSim<D2Q9, _> =
            MultiStSim::new(DeviceSpec::v100(), geom, Projective::new(0.8), 4).with_cpu_threads(2);
        multi.init_with(shear_init);
        single.run(10);
        multi.run(10);
        let (us, um) = (single.velocity_field(), multi.velocity_field());
        for (a, b) in us.iter().zip(&um) {
            for k in 0..3 {
                assert_eq!(a[k], b[k], "sharding changed the arithmetic");
            }
        }
    }

    /// Same with an inlet/outlet channel: the BC kernel runs on the edge
    /// shards only and still matches bitwise.
    #[test]
    fn multi_matches_single_bitwise_channel() {
        let geom = Geometry::channel_2d(20, 10, 0.04);
        let mut single: StSim<D2Q9, _> =
            StSim::new(DeviceSpec::v100(), geom.clone(), Bgk::new(0.8)).with_cpu_threads(2);
        let mut multi: MultiStSim<D2Q9, _> =
            MultiStSim::new(DeviceSpec::v100(), geom, Bgk::new(0.8), 3).with_cpu_threads(2);
        single.run(12);
        multi.run(12);
        let (us, um) = (single.velocity_field(), multi.velocity_field());
        for (a, b) in us.iter().zip(&um) {
            for k in 0..3 {
                assert_eq!(a[k], b[k]);
            }
        }
        let (rs, rm) = (single.density_field(), multi.density_field());
        for (a, b) in rs.iter().zip(&rm) {
            assert_eq!(a, b);
        }
    }

    /// 3D duct across 2 devices.
    #[test]
    fn multi_matches_single_bitwise_3d() {
        let geom = Geometry::channel_3d(12, 7, 7, 0.03);
        let mut single: StSim<D3Q19, _> =
            StSim::new(DeviceSpec::mi100(), geom.clone(), Projective::new(0.7)).with_cpu_threads(2);
        let mut multi: MultiStSim<D3Q19, _> =
            MultiStSim::new(DeviceSpec::mi100(), geom, Projective::new(0.7), 2).with_cpu_threads(2);
        single.run(6);
        multi.run(6);
        let (us, um) = (single.velocity_field(), multi.velocity_field());
        for (a, b) in us.iter().zip(&um) {
            for k in 0..3 {
                assert_eq!(a[k], b[k]);
            }
        }
    }

    /// Halo traffic: each direction of each cut carries exactly
    /// (fluid column nodes)·Q·8 bytes per step.
    #[test]
    fn halo_bytes_are_exact() {
        let geom = Geometry::walls_y_periodic_x(16, 10);
        let mut multi: MultiStSim<D2Q9, _> =
            MultiStSim::new(DeviceSpec::v100(), geom, Projective::new(0.8), 2).with_cpu_threads(2);
        multi.run(5);
        // n = 2 periodic: 4 transfers/step, 8 fluid nodes per column.
        let per_step = 4 * 8 * 9 * 8;
        assert_eq!(multi.halo_bytes_per_step(), per_step as u64);
        assert_eq!(multi.interconnect().total_link_bytes(), 5 * per_step as u64);
    }

    /// Overlap stats: interior covers the exchange on a wide domain.
    #[test]
    fn overlap_stats_accumulate() {
        let geom = Geometry::walls_y_periodic_x(64, 16);
        let mut multi: MultiStSim<D2Q9, _> =
            MultiStSim::new(DeviceSpec::v100(), geom, Projective::new(0.8), 2).with_cpu_threads(2);
        multi.run(3);
        let s = multi.stats();
        assert_eq!(s.steps, 3);
        assert!(s.boundary_s > 0.0 && s.interior_s > 0.0 && s.exchange_s > 0.0);
        assert!(s.total_s >= s.boundary_s + s.interior_s.max(s.exchange_s));
        assert!(s.overlap_efficiency() > 0.0 && s.overlap_efficiency() <= 1.0);
    }

    /// Obs integration: step spans nest per-device kernel spans and the
    /// halo-exchange span; link metrics accumulate; monitor sees a
    /// conserved global mass.
    #[test]
    fn obs_and_monitor_wire_through() {
        let obs = obs::Obs::shared();
        let geom = Geometry::walls_y_periodic_x(16, 8);
        let mut multi: MultiStSim<D2Q9, _> =
            MultiStSim::new(DeviceSpec::v100(), geom, Projective::new(0.8), 2)
                .with_cpu_threads(2)
                .with_obs(obs.clone())
                .with_monitor(obs::MonitorConfig {
                    cadence: 2,
                    ..Default::default()
                });
        multi.init_with(shear_init);
        multi.run(4);
        let ev = obs.tracer.events();
        assert_eq!(
            ev.iter()
                .filter(|e| e.ph == 'B' && e.name == "step")
                .count(),
            4
        );
        assert_eq!(
            ev.iter()
                .filter(|e| e.ph == 'B' && e.name == "halo-exchange")
                .count(),
            4
        );
        assert!(ev.iter().any(|e| e.ph == 'B' && e.name == "st-bulk-span"));
        // Link metrics: n = 2 periodic ring has transfers both ways.
        assert!(obs
            .metrics
            .counter("link_transfer_bytes", &[("link", "NVLink2[0->1]")])
            .is_some_and(|b| b > 0));
        let m = multi.monitor().unwrap();
        assert_eq!(m.samples().len(), 2);
        assert!(m.is_ok(), "{:?}", m.violations());
        assert!(m.mass_drift() <= 1e-10);
    }

    #[test]
    #[should_panic(expected = "FD boundaries need ≥ 3")]
    fn narrow_edge_shards_rejected_for_channels() {
        let geom = Geometry::channel_2d(8, 6, 0.04);
        let _ = MultiStSim::<D2Q9, _>::new(DeviceSpec::v100(), geom, Bgk::new(0.8), 4);
    }

    /// Executor determinism across the sharded driver: identical fields and
    /// halo traffic under 1, 3, and 8 CPU threads per device.
    #[test]
    fn executor_determinism_across_thread_counts() {
        let run = |threads: usize| {
            let geom = Geometry::walls_y_periodic_x(16, 8);
            let mut multi: MultiStSim<D2Q9, _> =
                MultiStSim::new(DeviceSpec::v100(), geom, Projective::new(0.8), 4)
                    .with_cpu_threads(threads)
                    .with_parallel_threshold(0); // force pooled dispatch at any size
            multi.init_with(shear_init);
            multi.run(8);
            (
                multi.velocity_field(),
                multi.density_field(),
                multi.halo_bytes_per_step(),
                multi.interconnect().total_link_bytes(),
            )
        };
        let base = run(1);
        for threads in [3, 8] {
            let got = run(threads);
            assert_eq!(base, got, "sharded ST diverges at {threads} threads");
        }
    }
}
