//! Modeled timing of the two-phase overlap schedule.
//!
//! Every step is scheduled as: boundary strips first, then the halo
//! exchange concurrently with the interior launch, then the boundary-
//! condition kernel:
//!
//! ```text
//! t_step = t_boundary + max(t_interior, t_exchange) + t_bc
//! ```
//!
//! Device phase times are DRAM-bound (`bytes / BW`, the same model as the
//! roofline eq. 15); exchange time comes from the link spec (latency +
//! `bytes / link BW`, full duplex per link). The *overlap efficiency* is
//! the fraction of exchange time hidden behind the interior launch —
//! 1.0 when the interior is long enough to cover the exchange entirely.

use gpu_sim::interconnect::MultiGpu;
use gpu_sim::DeviceSpec;

/// Accumulated per-phase modeled times over all steps.
#[derive(Clone, Copy, Debug, Default)]
pub struct OverlapStats {
    pub steps: u64,
    /// Σ max-over-devices boundary-strip time.
    pub boundary_s: f64,
    /// Σ max-over-devices interior time.
    pub interior_s: f64,
    /// Σ max-over-links exchange time.
    pub exchange_s: f64,
    /// Σ max-over-devices boundary-condition kernel time.
    pub bc_s: f64,
    /// Σ min(interior, exchange): exchange time hidden behind compute.
    pub hidden_s: f64,
    /// Σ per-step critical path.
    pub total_s: f64,
}

impl OverlapStats {
    pub(crate) fn record_step(&mut self, boundary: f64, interior: f64, exchange: f64, bc: f64) {
        self.steps += 1;
        self.boundary_s += boundary;
        self.interior_s += interior;
        self.exchange_s += exchange;
        self.bc_s += bc;
        self.hidden_s += interior.min(exchange);
        self.total_s += boundary + interior.max(exchange) + bc;
    }

    /// Fraction of exchange time hidden behind the interior launch
    /// (1.0 when nothing was exchanged).
    pub fn overlap_efficiency(&self) -> f64 {
        if self.exchange_s <= 0.0 {
            return 1.0;
        }
        self.hidden_s / self.exchange_s
    }

    /// Exchange time left on the critical path.
    pub fn exposed_exchange_s(&self) -> f64 {
        self.exchange_s - self.hidden_s
    }

    /// Modeled MFLUPS of the sharded run: global fluid updates over the
    /// accumulated critical path.
    pub fn modeled_mflups(&self, fluid_nodes: usize) -> f64 {
        if self.total_s <= 0.0 {
            return f64::NAN;
        }
        (fluid_nodes as f64 * self.steps as f64) / (1e6 * self.total_s)
    }
}

/// DRAM-bound time for one device phase moving `bytes`.
pub(crate) fn device_time_s(spec: &DeviceSpec, bytes: u64) -> f64 {
    bytes as f64 / (spec.bandwidth_gbps * 1e9)
}

/// Modeled exchange time of one step: per-link, both directions run full
/// duplex; all links run concurrently, so the step waits on the slowest.
pub(crate) fn exchange_time_s(mg: &MultiGpu, transfers: &[(usize, usize, u64)]) -> f64 {
    let mut t = 0.0f64;
    for link in mg.links() {
        let fwd: u64 = transfers
            .iter()
            .filter(|(f, to, _)| *f == link.a && *to == link.b)
            .map(|x| x.2)
            .sum();
        let rev: u64 = transfers
            .iter()
            .filter(|(f, to, _)| *f == link.b && *to == link.a)
            .map(|x| x.2)
            .sum();
        if fwd + rev > 0 {
            t = t.max(link.exchange_time_s(fwd, rev));
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_efficiency_tracks_hidden_fraction() {
        let mut s = OverlapStats::default();
        // Interior fully covers the exchange.
        s.record_step(1e-6, 10e-6, 4e-6, 0.5e-6);
        assert!((s.overlap_efficiency() - 1.0).abs() < 1e-12);
        assert!((s.total_s - 11.5e-6).abs() < 1e-18);
        // Exchange-bound step: only part hides.
        s.record_step(1e-6, 2e-6, 6e-6, 0.5e-6);
        assert!((s.overlap_efficiency() - 6e-6 / 10e-6).abs() < 1e-12);
        assert!((s.exposed_exchange_s() - 4e-6).abs() < 1e-18);
    }

    #[test]
    fn exchange_time_takes_slowest_link() {
        let mg = MultiGpu::ring(DeviceSpec::v100(), 4);
        // 1 MB on link (0,1) fwd; 2 MB on link (1,2) rev.
        let t = exchange_time_s(&mg, &[(0, 1, 1 << 20), (2, 1, 2 << 20)]);
        let expect = mg.link_spec().transfer_time_s(2 << 20);
        assert!((t - expect).abs() < 1e-15);
        // Opposite directions of one link overlap (full duplex).
        let t2 = exchange_time_s(&mg, &[(0, 1, 1 << 20), (1, 0, 1 << 20)]);
        assert!((t2 - mg.link_spec().transfer_time_s(1 << 20)).abs() < 1e-15);
    }
}
