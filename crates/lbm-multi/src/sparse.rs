//! Multi-device sparse (indirect-addressing) drivers: slab-sharded
//! fluid-compacted ST and MR with **per-tile** halo exchange.
//!
//! Each shard builds its own tiled [`FluidIndex`] over the local geometry
//! (ghost columns included in storage, excluded from the active lists via
//! [`FluidIndex::retain_active`]) and its own link table, so the per-shard
//! update is exactly the single-device sparse kernel over the owned nodes.
//! The halo exchange walks the sender's tiles: every tile holding nodes of
//! the exchanged column issues its own transfer, sized by *that tile's*
//! fluid count in the column. Summed over tiles this is the column's fluid
//! count — the wire bytes scale with the fluid-node population of the cut,
//! not the bounding-box cross-section, which is the sparse-storage
//! argument extended to the interconnect:
//!
//! ```text
//!   bytes/cut/step = (fluid nodes in cut column) × Q·8   (sparse ST)
//!                  = (fluid nodes in cut column) × M·8   (sparse MR)
//! ```
//!
//! The sparse MR shards are double-buffered even though the single-device
//! driver updates in place: the multi-device step is not one lockstep
//! launch (update, then exchange), so a failed halo transfer must leave
//! the time-`t` moments untouched for the step to be retried
//! bitwise-identically. Ghost values carry exact doubles, so both drivers
//! are *bitwise* identical to their single-device counterparts.

use crate::decomp::SlabDecomp;
use crate::recovery::{transfer_with_retry, HaloRetryPolicy};
use gpu_sim::interconnect::{LinkError, MultiGpu};
use gpu_sim::{DeviceSpec, FaultPlan, GlobalBuffer};
use lbm_core::collision::Collision;
use lbm_core::geometry::Geometry;
use lbm_core::io::{CheckpointError, CheckpointReader, CheckpointWriter};
use lbm_gpu::scheme::MrScheme;
use lbm_gpu::sparse::{
    build_neighbor_table, launch_sparse_st, validate_sparse_geometry, FluidIndex, SparseBuildError,
};
use lbm_gpu::sparse_mr::launch_sparse_mr;
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const MAX_Q: usize = 48;
const MAX_M: usize = 16;

/// One shard of a sparse decomposition: local geometry, its tiled fluid
/// compaction (ghost columns stored but inactive), the local link table,
/// and two compacted state buffers (`Q·nf` doubles for ST, `M·nf` for MR).
struct SparseShard {
    geom: Geometry,
    index: FluidIndex,
    table: GlobalBuffer<u32>,
    bufs: [GlobalBuffer<f64>; 2],
    cur: usize,
}

/// Build shard `r`: local compaction + link table, ghost columns dropped
/// from the active lists, `dpn` doubles of state per fluid node.
fn build_shard<L: Lattice>(
    decomp: &SlabDecomp,
    r: usize,
    dpn: usize,
) -> Result<SparseShard, SparseBuildError> {
    let g = decomp.local_geometry(r);
    let mut index = FluidIndex::build(&g);
    if index.is_empty() {
        return Err(SparseBuildError::NoFluidNodes);
    }
    let table =
        GlobalBuffer::from_vec(build_neighbor_table::<L>(&g, &index)?).with_touch_tracking();
    let s = decomp.slab(r);
    let (lo, hi) = (s.owned_lo(), s.owned_hi());
    index.retain_active(|idx| {
        let (lx, _, _) = g.coords(idx);
        lx >= lo && lx < hi
    });
    let nf = index.len();
    Ok(SparseShard {
        geom: g,
        index,
        table,
        bufs: [
            GlobalBuffer::new(dpn * nf).with_touch_tracking(),
            GlobalBuffer::new(dpn * nf).with_touch_tracking(),
        ],
        cur: 0,
    })
}

/// Per-tile halo exchange of the freshly computed (`cur ^ 1`) buffers:
/// every sender tile with nodes in the exchanged column issues one
/// transfer of `(tile nodes in column) × dpn·8` bytes, tallied through the
/// interconnect *before* the copy — a failed transfer moves no data and
/// records no bytes, so a retried step tallies exactly once.
fn exchange_tiled(
    mg: &MultiGpu,
    decomp: &SlabDecomp,
    shards: &[SparseShard],
    dpn: usize,
    retry: &HaloRetryPolicy,
    retries: &AtomicU64,
) -> Result<(), LinkError> {
    for tr in decomp.halo_transfers() {
        let (src, dst) = (&shards[tr.from], &shards[tr.to]);
        let (snf, dnf) = (src.index.len(), dst.index.len());
        let (sb, db) = (&src.bufs[src.cur ^ 1], &dst.bufs[dst.cur ^ 1]);
        for tile in src.index.tiles() {
            let mut pairs = Vec::new();
            for cid in tile.lo..tile.hi {
                let idx = src.index.nodes[cid as usize];
                let (lx, y, z) = src.geom.coords(idx);
                if lx == tr.src_lx {
                    let dcid = dst.index.compact[dst.geom.idx(tr.dst_lx, y, z)];
                    pairs.push((cid as usize, dcid));
                }
            }
            if pairs.is_empty() {
                continue;
            }
            let bytes = (pairs.len() * dpn * 8) as u64;
            transfer_with_retry(mg, tr.from, tr.to, bytes, retry, retries)?;
            for (scid, dcid) in &pairs {
                for m in 0..dpn {
                    db.set(m * dnf + dcid, sb.get(m * snf + scid));
                }
            }
        }
    }
    Ok(())
}

/// Locate a global fluid node in its owner shard: `(shard, compact id)`.
fn locate(
    decomp: &SlabDecomp,
    shards: &[SparseShard],
    x: usize,
    y: usize,
    z: usize,
) -> (usize, usize) {
    let r = decomp.owner_of(x);
    let sh = &shards[r];
    let lx = decomp.slab(r).owned_lo() + (x - decomp.slab(r).x0);
    (r, sh.index.compact[sh.geom.idx(lx, y, z)])
}

macro_rules! sparse_multi_common {
    ($name:ident, $pattern:literal, $dpn:expr) => {
        /// Limit each device's CPU worker threads.
        pub fn with_cpu_threads(mut self, n: usize) -> Self {
            self.mg = self.mg.with_cpu_threads(n);
            self
        }

        /// Override the minimum launch size dispatched to the worker pool;
        /// `0` forces pooling for every multi-block launch.
        pub fn with_parallel_threshold(mut self, items: usize) -> Self {
            self.mg = self.mg.with_parallel_threshold(items);
            self
        }

        /// Mirror link traffic into a shared profiler.
        pub fn with_profiler(mut self, p: Arc<gpu_sim::profiler::Profiler>) -> Self {
            self.mg = self.mg.with_profiler(p);
            self
        }

        /// Attach one observability hub to every device and the link layer.
        pub fn with_obs(mut self, obs: Arc<obs::Obs>) -> Self {
            self.set_obs(obs);
            self
        }

        /// In-place [`Self::with_obs`] (the `Simulation` trait surface).
        pub fn set_obs(&mut self, obs: Arc<obs::Obs>) {
            self.mg.set_obs(obs);
        }

        /// Tag every device's kernel spans (and the step/halo spans) with a
        /// fleet trace context, or clear it with `None`.
        pub fn set_trace_ctx(&mut self, ctx: Option<obs::TraceCtx>) {
            self.mg.set_trace_ctx(ctx);
        }

        /// Attach a physics monitor over the *global* fields.
        pub fn with_monitor(mut self, cfg: obs::MonitorConfig) -> Self {
            self.monitor = Some(obs::PhysicsMonitor::new(cfg));
            self
        }

        /// The attached physics monitor, if any.
        pub fn monitor(&self) -> Option<&obs::PhysicsMonitor> {
            self.monitor.as_ref()
        }

        /// Mutable access to the physics monitor, if enabled.
        pub fn monitor_mut(&mut self) -> Option<&mut obs::PhysicsMonitor> {
            self.monitor.as_mut()
        }

        /// Override the halo-transfer retry policy.
        pub fn with_halo_retry(mut self, policy: HaloRetryPolicy) -> Self {
            self.retry = policy;
            self
        }

        /// Attach a deterministic fault plan to every device, every shard's
        /// state buffers, and the interconnect.
        pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
            self.mg.set_fault_plan(plan.clone());
            for sh in &mut self.shards {
                sh.bufs[0].set_fault_plan(plan.clone());
                sh.bufs[1].set_fault_plan(plan.clone());
            }
            self
        }

        /// Halo-transfer retries performed so far.
        pub fn halo_retries(&self) -> u64 {
            self.halo_retries.load(Ordering::Relaxed)
        }

        /// Monitor/metric pattern label for this driver.
        pub fn pattern_label(&self) -> &'static str {
            $pattern
        }

        /// Advance one timestep. Panics if a halo transfer fails beyond the
        /// retry budget; use `try_step` for typed link errors.
        pub fn step(&mut self) {
            self.try_step()
                .unwrap_or_else(|e| panic!("halo exchange failed: {e}"));
        }

        /// Advance `steps` timesteps, then flush the monitor.
        pub fn run(&mut self, steps: usize) {
            for _ in 0..steps {
                self.step();
            }
            self.finish_monitor();
        }

        /// Force a final monitor sample at the current step.
        pub fn finish_monitor(&mut self) {
            if self.monitor.is_none() {
                return;
            }
            let (rho, u) = self.macro_fields();
            let s = self.monitor.as_mut().unwrap().finish(self.t, &rho, &u);
            if let (Some(s), Some(o)) = (s, self.mg.obs()) {
                let labels = [("pattern", self.pattern_label())];
                o.metrics.gauge_set("monitor_mass", &labels, s.mass);
                o.metrics.gauge_set("monitor_max_u", &labels, s.max_u);
                o.tracer
                    .instant("monitor", "flush", &[("step", s.step.to_string())]);
            }
        }

        /// Cadence-gated monitor sampling over the gathered global fields.
        fn sample_monitor(&mut self) {
            if !self.monitor.as_ref().is_some_and(|m| m.due(self.t)) {
                return;
            }
            let (rho, u) = self.macro_fields();
            let s = self.monitor.as_mut().unwrap().observe(self.t, &rho, &u);
            if let Some(o) = self.mg.obs() {
                let labels = [("pattern", self.pattern_label())];
                o.metrics.gauge_set("monitor_mass", &labels, s.mass);
                o.metrics.gauge_set("monitor_max_u", &labels, s.max_u);
            }
        }

        /// Completed timesteps.
        pub fn steps(&self) -> u64 {
            self.t
        }

        /// The global geometry.
        pub fn geom(&self) -> &Geometry {
            self.decomp.global()
        }

        /// Number of devices.
        pub fn num_devices(&self) -> usize {
            self.shards.len()
        }

        /// The interconnect (link byte counters, report).
        pub fn interconnect(&self) -> &MultiGpu {
            &self.mg
        }

        /// Analytic per-step halo traffic: fluid-like cut-column nodes ×
        /// state payload — proportional to fluid count, not box volume.
        pub fn halo_bytes_per_step(&self) -> u64 {
            (self.decomp.halo_nodes_per_step() * $dpn * 8) as u64
        }

        /// Device-memory footprint of every shard's compacted buffers and
        /// link tables.
        pub fn footprint_bytes(&self) -> usize {
            self.shards
                .iter()
                .map(|s| s.bufs[0].size_bytes() + s.bufs[1].size_bytes() + s.table.size_bytes())
                .sum()
        }

        /// Global velocity field (solid nodes report zero).
        pub fn velocity_field(&self) -> Vec<[f64; 3]> {
            self.macro_fields().1
        }

        /// Global density field (solid nodes report zero).
        pub fn density_field(&self) -> Vec<f64> {
            self.macro_fields().0
        }

        /// FNV-1a checksum of the global macroscopic fields (bitwise).
        pub fn field_checksum(&self) -> u64 {
            let (rho, u) = self.macro_fields();
            lbm_core::io::field_checksum(&rho, &u)
        }
    };
}

/// Slab-sharded sparse ST simulation across N simulated devices.
pub struct MultiSparseStSim<L: Lattice, C: Collision<L>> {
    mg: MultiGpu,
    decomp: SlabDecomp,
    shards: Vec<SparseShard>,
    collision: C,
    t: u64,
    monitor: Option<obs::PhysicsMonitor>,
    retry: HaloRetryPolicy,
    halo_retries: AtomicU64,
    _l: PhantomData<L>,
}

impl<L: Lattice, C: Collision<L>> MultiSparseStSim<L, C> {
    /// Shard `geom` across `n` devices, panicking on an unsupported
    /// geometry. Use [`MultiSparseStSim::try_new`] where build failures
    /// must be handled.
    pub fn new(device: DeviceSpec, geom: Geometry, collision: C, n: usize) -> Self {
        Self::try_new(device, geom, collision, n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Shard `geom` (fluid/wall/periodic only) across `n` devices joined
    /// ring-wise. Initialized to equilibrium at rest.
    pub fn try_new(
        device: DeviceSpec,
        geom: Geometry,
        collision: C,
        n: usize,
    ) -> Result<Self, SparseBuildError> {
        if L::D == 2 {
            assert_eq!(geom.nz, 1, "2D lattice on a 3D domain");
        }
        assert_eq!(L::REACH, 1, "slab ghosts are one column wide");
        validate_sparse_geometry(&geom)?;
        if geom.fluid_count() == 0 {
            return Err(SparseBuildError::NoFluidNodes);
        }
        let decomp = SlabDecomp::new(geom, n);
        let shards = (0..n)
            .map(|r| build_shard::<L>(&decomp, r, L::Q))
            .collect::<Result<Vec<_>, _>>()?;
        let mut sim = MultiSparseStSim {
            mg: MultiGpu::ring(device, n),
            decomp,
            shards,
            collision,
            t: 0,
            monitor: None,
            retry: HaloRetryPolicy::default(),
            halo_retries: AtomicU64::new(0),
            _l: PhantomData,
        };
        sim.init_with(|_, _, _| (1.0, [0.0; 3]));
        Ok(sim)
    }

    sparse_multi_common!(MultiSparseStSim, "multi-sparse-st", L::Q);

    /// Initialize every fluid node — *including ghosts* — from a
    /// macroscopic field at **global** coordinates, so ghost columns start
    /// consistent with their owners and no initial exchange is needed.
    pub fn init_with(&mut self, field: impl Fn(usize, usize, usize) -> (f64, [f64; 3])) {
        let mut feq = [0.0f64; MAX_Q];
        for (r, sh) in self.shards.iter_mut().enumerate() {
            sh.cur = 0;
            let nf = sh.index.len();
            for (cid, &idx) in sh.index.nodes.iter().enumerate() {
                let (lx, y, z) = sh.geom.coords(idx);
                let gx = self.decomp.global_x(r, lx);
                let (rho, u) = field(gx, y, z);
                let m = Moments {
                    rho,
                    u,
                    pi: Moments::pi_eq(rho, u, L::D),
                };
                self.collision.reconstruct(&m, &mut feq[..L::Q]);
                for (i, &v) in feq[..L::Q].iter().enumerate() {
                    sh.bufs[0].set(i * nf + cid, v);
                }
            }
        }
        self.t = 0;
    }

    /// Advance one timestep, surfacing halo-link failures. On `Err` no
    /// state has advanced (`t` and the buffer parity are unchanged) — the
    /// completed update launches are idempotent and a retried step
    /// recomputes them bitwise-identically.
    pub fn try_step(&mut self) -> Result<(), LinkError> {
        let obs = self.mg.obs().cloned();
        let _step_span = obs.as_ref().map(|o| {
            let mut args = vec![("t", self.t.to_string())];
            if let Some(ctx) = self.mg.trace_ctx() {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("driver", "step", &args)
        });

        // Update every shard's owned (active) nodes: read t, write t+1.
        for (r, sh) in self.shards.iter().enumerate() {
            launch_sparse_st::<L, C>(
                self.mg.device(r),
                &sh.bufs[sh.cur],
                &sh.bufs[sh.cur ^ 1],
                &sh.table,
                &sh.index,
                &self.collision,
            );
        }

        // Per-tile halo exchange of the freshly computed edge columns.
        let _halo_span = obs.as_ref().map(|o| {
            let mut args = Vec::new();
            if let Some(ctx) = self.mg.trace_ctx() {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("halo", "halo-exchange", &args)
        });
        exchange_tiled(
            &self.mg,
            &self.decomp,
            &self.shards,
            L::Q,
            &self.retry,
            &self.halo_retries,
        )?;
        drop(_halo_span);

        for sh in &mut self.shards {
            sh.cur ^= 1;
        }
        self.t += 1;
        self.sample_monitor();
        Ok(())
    }

    /// Global density and velocity in one pass over the owning shards
    /// (solid nodes report zero).
    pub fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>) {
        let g = self.decomp.global();
        let mut rho_out = vec![0.0; g.len()];
        let mut u_out = vec![[0.0; 3]; g.len()];
        let mut f_loc = [0.0f64; MAX_Q];
        for idx in 0..g.len() {
            if !g.node_at(idx).is_fluid_like() {
                continue;
            }
            let (x, y, z) = g.coords(idx);
            let (r, cid) = locate(&self.decomp, &self.shards, x, y, z);
            let sh = &self.shards[r];
            let nf = sh.index.len();
            for (i, f) in f_loc.iter_mut().enumerate().take(L::Q) {
                *f = sh.bufs[sh.cur].get(i * nf + cid);
            }
            let m = Moments::from_f::<L>(&f_loc[..L::Q]);
            rho_out[idx] = m.rho;
            u_out[idx] = m.u;
        }
        (rho_out, u_out)
    }

    /// Serialize the full sharded state (LBCK flavor `"multi-sparse-st"`):
    /// dimensions, timestep, and every shard's current compacted lattice
    /// (ghost nodes included, so no post-restore exchange is needed).
    pub fn checkpoint(&self) -> Vec<u8> {
        let g = self.decomp.global();
        let mut w = CheckpointWriter::new("multi-sparse-st");
        w.put_u64(g.nx as u64)
            .put_u64(g.ny as u64)
            .put_u64(g.nz as u64)
            .put_u64(L::Q as u64)
            .put_u64(self.shards.len() as u64)
            .put_u64(self.t);
        for sh in &self.shards {
            w.put_f64s(&sh.bufs[sh.cur].snapshot());
        }
        w.finish()
    }

    /// Restore a [`MultiSparseStSim::checkpoint`] snapshot on an
    /// identically configured simulation (bitwise; the snapshot lands in
    /// buffer 0 regardless of the saved parity).
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let g = self.decomp.global();
        let mut r = CheckpointReader::open(bytes, "multi-sparse-st")?;
        r.expect_u64(g.nx as u64, "nx")?;
        r.expect_u64(g.ny as u64, "ny")?;
        r.expect_u64(g.nz as u64, "nz")?;
        r.expect_u64(L::Q as u64, "Q")?;
        r.expect_u64(self.shards.len() as u64, "shard count")?;
        self.t = r.take_u64()?;
        for sh in &mut self.shards {
            let data = r.take_f64s(sh.bufs[0].len())?;
            for (i, v) in data.iter().enumerate() {
                sh.bufs[0].set(i, *v);
            }
            sh.cur = 0;
        }
        if let Some(m) = self.monitor.as_mut() {
            m.rollback_to(self.t);
        }
        Ok(())
    }
}

/// Slab-sharded sparse MR simulation (MR-P or MR-R) across N devices.
pub struct MultiSparseMrSim<L: Lattice> {
    mg: MultiGpu,
    decomp: SlabDecomp,
    shards: Vec<SparseShard>,
    scheme: MrScheme,
    tau: f64,
    scalar: bool,
    t: u64,
    monitor: Option<obs::PhysicsMonitor>,
    retry: HaloRetryPolicy,
    halo_retries: AtomicU64,
    _l: PhantomData<L>,
}

impl<L: Lattice> MultiSparseMrSim<L> {
    /// Shard `geom` across `n` devices, panicking on an unsupported
    /// geometry. Use [`MultiSparseMrSim::try_new`] where build failures
    /// must be handled.
    pub fn new(device: DeviceSpec, geom: Geometry, scheme: MrScheme, tau: f64, n: usize) -> Self {
        Self::try_new(device, geom, scheme, tau, n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Shard `geom` (fluid/wall/periodic only) across `n` devices joined
    /// ring-wise. Initialized to equilibrium at rest.
    pub fn try_new(
        device: DeviceSpec,
        geom: Geometry,
        scheme: MrScheme,
        tau: f64,
        n: usize,
    ) -> Result<Self, SparseBuildError> {
        if L::D == 2 {
            assert_eq!(geom.nz, 1, "2D lattice on a 3D domain");
        }
        assert_eq!(L::REACH, 1, "slab ghosts are one column wide");
        validate_sparse_geometry(&geom)?;
        if geom.fluid_count() == 0 {
            return Err(SparseBuildError::NoFluidNodes);
        }
        let decomp = SlabDecomp::new(geom, n);
        let shards = (0..n)
            .map(|r| build_shard::<L>(&decomp, r, L::M))
            .collect::<Result<Vec<_>, _>>()?;
        let mut sim = MultiSparseMrSim {
            mg: MultiGpu::ring(device, n),
            decomp,
            shards,
            scheme,
            tau,
            scalar: false,
            t: 0,
            monitor: None,
            retry: HaloRetryPolicy::default(),
            halo_retries: AtomicU64::new(0),
            _l: PhantomData,
        };
        sim.init_with(|_, _, _| (1.0, [0.0; 3]));
        Ok(sim)
    }

    sparse_multi_common!(MultiSparseMrSim, "multi-sparse-mr", L::M);

    /// Force the original per-node scalar kernels (bitwise-identical to
    /// the default vectorized lane path; used by the equivalence tests).
    pub fn with_scalar_kernels(mut self) -> Self {
        self.scalar = true;
        self
    }

    /// Initialize every fluid node's moments — including ghosts — from a
    /// macroscopic field at **global** coordinates.
    pub fn init_with(&mut self, field: impl Fn(usize, usize, usize) -> (f64, [f64; 3])) {
        let mut packed = [0.0f64; MAX_M];
        for (r, sh) in self.shards.iter_mut().enumerate() {
            sh.cur = 0;
            let nf = sh.index.len();
            for (cid, &idx) in sh.index.nodes.iter().enumerate() {
                let (lx, y, z) = sh.geom.coords(idx);
                let gx = self.decomp.global_x(r, lx);
                let (rho, u) = field(gx, y, z);
                let m = Moments {
                    rho,
                    u,
                    pi: Moments::pi_eq(rho, u, L::D),
                };
                m.pack::<L>(&mut packed[..L::M]);
                for (mi, &pv) in packed.iter().enumerate().take(L::M) {
                    sh.bufs[0].set(mi * nf + cid, pv);
                }
            }
        }
        self.t = 0;
    }

    /// Advance one timestep, surfacing halo-link failures. On `Err` no
    /// state has advanced — the time-`t` buffer is never written (the
    /// sharded update is double-buffered, unlike the in-place single-device
    /// driver), so a retried step recomputes bitwise-identically.
    pub fn try_step(&mut self) -> Result<(), LinkError> {
        let obs = self.mg.obs().cloned();
        let _step_span = obs.as_ref().map(|o| {
            let mut args = vec![("t", self.t.to_string())];
            if let Some(ctx) = self.mg.trace_ctx() {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("driver", "step", &args)
        });

        // Update every shard's owned (active) nodes: read t, write t+1.
        for (r, sh) in self.shards.iter().enumerate() {
            launch_sparse_mr::<L>(
                self.mg.device(r),
                &sh.bufs[sh.cur],
                &sh.bufs[sh.cur ^ 1],
                &sh.table,
                &sh.index,
                &self.scheme,
                self.tau,
                self.scalar,
            );
        }

        // Per-tile moment-space halo exchange: M·8 bytes per fluid node.
        let _halo_span = obs.as_ref().map(|o| {
            let mut args = Vec::new();
            if let Some(ctx) = self.mg.trace_ctx() {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("halo", "halo-exchange", &args)
        });
        exchange_tiled(
            &self.mg,
            &self.decomp,
            &self.shards,
            L::M,
            &self.retry,
            &self.halo_retries,
        )?;
        drop(_halo_span);

        for sh in &mut self.shards {
            sh.cur ^= 1;
        }
        self.t += 1;
        self.sample_monitor();
        Ok(())
    }

    /// Global density and velocity in one pass over the owning shards
    /// (solid nodes report zero).
    pub fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>) {
        let g = self.decomp.global();
        let mut rho_out = vec![0.0; g.len()];
        let mut u_out = vec![[0.0; 3]; g.len()];
        for idx in 0..g.len() {
            if !g.node_at(idx).is_fluid_like() {
                continue;
            }
            let (x, y, z) = g.coords(idx);
            let (r, cid) = locate(&self.decomp, &self.shards, x, y, z);
            let sh = &self.shards[r];
            let nf = sh.index.len();
            rho_out[idx] = sh.bufs[sh.cur].get(cid);
            for (a, ua) in u_out[idx].iter_mut().enumerate().take(L::D) {
                *ua = sh.bufs[sh.cur].get((1 + a) * nf + cid);
            }
        }
        (rho_out, u_out)
    }

    /// Serialize the full sharded state (LBCK flavor `"multi-sparse-mr"`).
    pub fn checkpoint(&self) -> Vec<u8> {
        let g = self.decomp.global();
        let mut w = CheckpointWriter::new("multi-sparse-mr");
        w.put_u64(g.nx as u64)
            .put_u64(g.ny as u64)
            .put_u64(g.nz as u64)
            .put_u64(L::M as u64)
            .put_u64(self.shards.len() as u64)
            .put_u64(self.t);
        for sh in &self.shards {
            w.put_f64s(&sh.bufs[sh.cur].snapshot());
        }
        w.finish()
    }

    /// Restore a [`MultiSparseMrSim::checkpoint`] snapshot on an
    /// identically configured simulation (bitwise).
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let g = self.decomp.global();
        let mut r = CheckpointReader::open(bytes, "multi-sparse-mr")?;
        r.expect_u64(g.nx as u64, "nx")?;
        r.expect_u64(g.ny as u64, "ny")?;
        r.expect_u64(g.nz as u64, "nz")?;
        r.expect_u64(L::M as u64, "M")?;
        r.expect_u64(self.shards.len() as u64, "shard count")?;
        self.t = r.take_u64()?;
        for sh in &mut self.shards {
            let data = r.take_f64s(sh.bufs[0].len())?;
            for (i, v) in data.iter().enumerate() {
                sh.bufs[0].set(i, *v);
            }
            sh.cur = 0;
        }
        if let Some(m) = self.monitor.as_mut() {
            m.rollback_to(self.t);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_core::collision::Projective;
    use lbm_core::geometry::NodeType;
    use lbm_gpu::{SparseMrSim2D, StSparseSim};
    use lbm_lattice::D2Q9;

    fn obstacle_geom() -> Geometry {
        Geometry::walls_y_periodic_x(24, 12).with_cylinder(10.5, 5.5, 2.6)
    }

    fn shear_init(x: usize, y: usize, _z: usize) -> (f64, [f64; 3]) {
        (
            1.0 + 0.01 * ((x + 2 * y) as f64 * 0.3).sin(),
            [
                0.03 * (y as f64 * 0.6).sin(),
                0.01 * (x as f64 * 0.4).cos(),
                0.0,
            ],
        )
    }

    /// Sharded sparse ST is bitwise identical to the single-device sparse
    /// driver on an obstacle domain: ghosts carry exact doubles and the
    /// per-node pull arithmetic is decomposition-independent.
    #[test]
    fn multi_sparse_st_matches_single_bitwise() {
        let geom = obstacle_geom();
        let mut single: StSparseSim<D2Q9, _> =
            StSparseSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8))
                .with_cpu_threads(2);
        single.init_with(shear_init);
        let mut multi: MultiSparseStSim<D2Q9, _> =
            MultiSparseStSim::new(DeviceSpec::v100(), geom, Projective::new(0.8), 3)
                .with_cpu_threads(2);
        multi.init_with(shear_init);
        single.run(10);
        multi.run(10);
        let (us, um) = (single.velocity_field(), multi.velocity_field());
        for (a, b) in us.iter().zip(&um) {
            for k in 0..3 {
                assert_eq!(a[k], b[k], "sharding changed the arithmetic");
            }
        }
        assert_eq!(single.field_checksum(), multi.field_checksum());
    }

    /// Sharded sparse MR is bitwise identical to the single-device sparse
    /// MR driver (which is itself bitwise-equal to dense MR), for both
    /// collision schemes.
    #[test]
    fn multi_sparse_mr_matches_single_bitwise() {
        for scheme in [MrScheme::projective(), MrScheme::recursive::<D2Q9>()] {
            let geom = obstacle_geom();
            let mut single: SparseMrSim2D =
                SparseMrSim2D::new(DeviceSpec::v100(), geom.clone(), scheme.clone(), 0.8)
                    .with_cpu_threads(2);
            single.init_with(shear_init);
            let mut multi: MultiSparseMrSim<D2Q9> =
                MultiSparseMrSim::new(DeviceSpec::v100(), geom, scheme, 0.8, 4).with_cpu_threads(2);
            multi.init_with(shear_init);
            single.run(8);
            multi.run(8);
            assert_eq!(single.field_checksum(), multi.field_checksum());
        }
    }

    /// The tentpole wire-byte claim: per-tile transfers sum to (cut-column
    /// fluid nodes) × payload, so interconnect traffic scales with the
    /// fluid population of the cut columns — not the box cross-section —
    /// and the MR exchange carries M/Q of the ST bytes.
    #[test]
    fn halo_bytes_scale_with_fluid_count_not_box_volume() {
        // Solid band across the lower half of every column: the cut
        // columns' fluid population halves, and so must the wire bytes.
        let mut geom = Geometry::walls_y_periodic_x(16, 18);
        for y in 1..9 {
            for x in 0..16 {
                geom.set(x, y, 0, NodeType::Wall);
            }
        }
        let full = Geometry::walls_y_periodic_x(16, 18);
        let steps = 5;

        let run_st = |g: Geometry| {
            let mut m: MultiSparseStSim<D2Q9, _> =
                MultiSparseStSim::new(DeviceSpec::v100(), g, Projective::new(0.8), 2)
                    .with_cpu_threads(2);
            m.run(steps);
            assert_eq!(
                m.interconnect().total_link_bytes(),
                steps as u64 * m.halo_bytes_per_step(),
                "per-tile transfers must sum to the analytic halo traffic"
            );
            m.halo_bytes_per_step()
        };
        // 2 shards periodic: 4 transfers/step. Full box: 16 fluid/column.
        assert_eq!(run_st(full.clone()), 4 * 16 * 9 * 8);
        // Half-solid box: 8 fluid/column — wire bytes halve with porosity.
        assert_eq!(run_st(geom.clone()), 4 * 8 * 9 * 8);

        // Sparse MR moves M·8 per halo node instead of Q·8.
        let mut mr: MultiSparseMrSim<D2Q9> =
            MultiSparseMrSim::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 2)
                .with_cpu_threads(2);
        mr.run(steps);
        assert_eq!(mr.halo_bytes_per_step(), 4 * 8 * 6 * 8);
        assert_eq!(
            mr.interconnect().total_link_bytes(),
            steps as u64 * mr.halo_bytes_per_step()
        );
    }

    /// LBCK round-trips for both sharded sparse flavors are bitwise.
    #[test]
    fn checkpoint_roundtrips_are_bitwise() {
        let geom = obstacle_geom();
        let mk_st = || {
            let mut s: MultiSparseStSim<D2Q9, _> =
                MultiSparseStSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8), 2)
                    .with_cpu_threads(1);
            s.init_with(shear_init);
            s
        };
        let mut a = mk_st();
        a.run(4);
        let snap = a.checkpoint();
        a.run(3);
        let mut b = mk_st();
        b.restore(&snap).unwrap();
        assert_eq!(b.steps(), 4);
        b.run(3);
        assert_eq!(a.field_checksum(), b.field_checksum());

        let mk_mr = || {
            let mut s: MultiSparseMrSim<D2Q9> = MultiSparseMrSim::new(
                DeviceSpec::v100(),
                geom.clone(),
                MrScheme::projective(),
                0.8,
                3,
            )
            .with_cpu_threads(1);
            s.init_with(shear_init);
            s
        };
        let mut a = mk_mr();
        a.run(4);
        let snap = a.checkpoint();
        a.run(3);
        let mut b = mk_mr();
        b.restore(&snap).unwrap();
        b.run(3);
        assert_eq!(a.field_checksum(), b.field_checksum());
        // Mismatched flavor is refused.
        assert!(b.restore(&mk_st().checkpoint()).is_err());
    }

    /// Typed build errors for the service layer: unsupported node types and
    /// all-solid domains are rejected without panicking.
    #[test]
    fn try_new_surfaces_typed_errors() {
        let geom = Geometry::channel_2d(12, 8, 0.04);
        let err = MultiSparseStSim::<D2Q9, Projective>::try_new(
            DeviceSpec::v100(),
            geom.clone(),
            Projective::new(0.8),
            2,
        )
        .err()
        .expect("inlet geometry must be rejected");
        assert!(
            matches!(err, SparseBuildError::UnsupportedNode(_)),
            "{err:?}"
        );
        let err = MultiSparseMrSim::<D2Q9>::try_new(
            DeviceSpec::v100(),
            geom,
            MrScheme::projective(),
            0.8,
            2,
        )
        .err()
        .expect("inlet geometry must be rejected");
        assert!(
            matches!(err, SparseBuildError::UnsupportedNode(_)),
            "{err:?}"
        );
    }

    /// Executor determinism: identical fields and halo traffic under 1 and
    /// 8 CPU threads per device with forced pooled dispatch.
    #[test]
    fn executor_determinism_across_thread_counts() {
        let run = |threads: usize| {
            let geom = obstacle_geom();
            let mut multi: MultiSparseMrSim<D2Q9> =
                MultiSparseMrSim::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 3)
                    .with_cpu_threads(threads)
                    .with_parallel_threshold(0);
            multi.init_with(shear_init);
            multi.run(6);
            (
                multi.field_checksum(),
                multi.interconnect().total_link_bytes(),
            )
        };
        let base = run(1);
        assert_eq!(base, run(8), "sharded sparse MR diverges at 8 threads");
    }

    /// Obs integration: step and halo-exchange spans, link metrics, and a
    /// conserving physics monitor.
    #[test]
    fn obs_and_monitor_wire_through() {
        let hub = obs::Obs::shared();
        let geom = obstacle_geom();
        let mut multi: MultiSparseStSim<D2Q9, _> =
            MultiSparseStSim::new(DeviceSpec::v100(), geom, Projective::new(0.8), 2)
                .with_cpu_threads(2)
                .with_obs(hub.clone())
                .with_monitor(obs::MonitorConfig {
                    cadence: 2,
                    ..Default::default()
                });
        multi.init_with(shear_init);
        multi.run(4);
        let ev = hub.tracer.events();
        assert_eq!(
            ev.iter()
                .filter(|e| e.ph == 'B' && e.name == "step")
                .count(),
            4
        );
        assert_eq!(
            ev.iter()
                .filter(|e| e.ph == 'B' && e.name == "halo-exchange")
                .count(),
            4
        );
        assert!(hub
            .metrics
            .counter("link_transfer_bytes", &[("link", "NVLink2[0->1]")])
            .is_some_and(|b| b > 0));
        let m = multi.monitor().unwrap();
        assert_eq!(m.samples().len(), 2);
        assert!(m.is_ok(), "{:?}", m.violations());
        assert!(m.mass_drift() <= 1e-10);
    }
}
