//! Multi-device 2D MR: slab-sharded moment representation with
//! *moment-space* halo exchange — `M·8` bytes per halo node instead of the
//! ST pattern's `Q·8`, the paper's bandwidth argument extended to the
//! interconnect (96 vs 144 bytes for D2Q9).
//!
//! Each shard stores two shift-0 moment lattices and alternates between
//! them. The single-device `MrSim2D` updates one lattice in place under
//! circular shifting, which is only safe when the whole step is one
//! lockstep launch; splitting the step into boundary-strip and interior
//! launches would let a later launch clobber slots an earlier one still
//! needed. Double buffering removes the hazard at `2M` doubles per node —
//! and `MrSim2D`'s `double_buffer_matches_single` test proves the
//! trajectory is bitwise unchanged.

use crate::decomp::SlabDecomp;
use crate::st::check_boundary_widths;
use crate::stats::{device_time_s, exchange_time_s, OverlapStats};
use gpu_sim::interconnect::MultiGpu;
use gpu_sim::DeviceSpec;
use lbm_core::geometry::{Geometry, NodeType};
use lbm_gpu::boundary::boundary_nodes;
use lbm_gpu::moment_lattice::MomentLattice;
use lbm_gpu::mr2d::{launch_mr2d_columns, launch_mr_bc, pick_column_width};
use lbm_gpu::scheme::MrScheme;
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;
use std::marker::PhantomData;

pub(crate) struct MrShard {
    pub geom: Geometry,
    pub mom: [MomentLattice; 2],
    pub cur: usize,
    pub boundary: Vec<(usize, usize, usize)>,
    /// Local x origins of the edge column blocks (computed in phase 1).
    pub strip_cols: Vec<usize>,
    /// Local x origins of the remaining owned column blocks.
    pub interior_cols: Vec<usize>,
    pub col_w: usize,
}

impl MrShard {
    /// Partition a shard's owned column blocks into edge strips and
    /// interior. `origins` are the owned block origins in local x.
    pub fn partition(
        origins: Vec<usize>,
        ghost_l: bool,
        ghost_r: bool,
    ) -> (Vec<usize>, Vec<usize>) {
        let mut strips = Vec::new();
        let mut interior = Vec::new();
        let last = origins.len() - 1;
        for (k, x0) in origins.into_iter().enumerate() {
            if (k == 0 && ghost_l) || (k == last && ghost_r) {
                strips.push(x0);
            } else {
                interior.push(x0);
            }
        }
        (strips, interior)
    }
}

/// Slab-sharded 2D MR simulation (MR-P or MR-R) across N devices.
pub struct MultiMrSim2D<L: Lattice> {
    mg: MultiGpu,
    decomp: SlabDecomp,
    shards: Vec<MrShard>,
    scheme: MrScheme,
    tau: f64,
    tile_h: usize,
    t: u64,
    stats: OverlapStats,
    monitor: Option<obs::PhysicsMonitor>,
    _l: PhantomData<L>,
}

impl<L: Lattice> MultiMrSim2D<L> {
    /// Shard a channel-type geometry (walls at `y = 0` and `y = ny−1`)
    /// across `n` devices. Initialized to equilibrium at rest.
    pub fn new(device: DeviceSpec, geom: Geometry, scheme: MrScheme, tau: f64, n: usize) -> Self {
        assert_eq!(geom.nz, 1, "MultiMrSim2D requires a 2D domain");
        assert_eq!(
            L::REACH,
            1,
            "the MR sliding window requires unit streaming reach"
        );
        assert!(!geom.periodic[1], "MR requires wall-terminated y faces");
        for x in 0..geom.nx {
            assert!(
                geom.node(x, 0, 0).is_solid() && geom.node(x, geom.ny - 1, 0).is_solid(),
                "MR requires walls at y = 0 and y = ny−1"
            );
        }
        let decomp = SlabDecomp::new(geom, n);
        check_boundary_widths(&decomp);
        let mg = MultiGpu::ring(device, n);
        let shards = (0..n)
            .map(|r| {
                let g = decomp.local_geometry(r);
                let s = decomp.slab(r);
                let col_w = pick_column_width(s.width, 32);
                let origins: Vec<usize> = (0..s.width / col_w)
                    .map(|k| s.owned_lo() + k * col_w)
                    .collect();
                let (strip_cols, interior_cols) = if n == 1 {
                    (Vec::new(), origins)
                } else {
                    MrShard::partition(origins, s.ghost_l, s.ghost_r)
                };
                let ln = g.len();
                let boundary = boundary_nodes(&g);
                MrShard {
                    mom: [
                        MomentLattice::new(ln, L::M, 0, 0).with_touch_tracking(),
                        MomentLattice::new(ln, L::M, 0, 0).with_touch_tracking(),
                    ],
                    cur: 0,
                    boundary,
                    strip_cols,
                    interior_cols,
                    col_w,
                    geom: g,
                }
            })
            .collect();
        let mut sim = MultiMrSim2D {
            mg,
            decomp,
            shards,
            scheme,
            tau,
            tile_h: 1,
            t: 0,
            stats: OverlapStats::default(),
            monitor: None,
            _l: PhantomData,
        };
        sim.init_with(|_, _, _| (1.0, [0.0; 3]));
        sim
    }

    /// Limit each device's CPU worker threads.
    pub fn with_cpu_threads(mut self, n: usize) -> Self {
        self.mg = self.mg.with_cpu_threads(n);
        self
    }

    /// Override the minimum launch size dispatched to the worker pool
    /// (see `gpu_sim::Gpu::with_parallel_threshold`); `0` forces pooling
    /// for every multi-block launch.
    pub fn with_parallel_threshold(mut self, items: usize) -> Self {
        self.mg = self.mg.with_parallel_threshold(items);
        self
    }

    /// Mirror link traffic into a shared profiler.
    pub fn with_profiler(mut self, p: std::sync::Arc<gpu_sim::profiler::Profiler>) -> Self {
        self.mg = self.mg.with_profiler(p);
        self
    }

    /// Attach an observability hub (tracer + metrics) to every device and
    /// the interconnect.
    pub fn with_obs(mut self, obs: std::sync::Arc<obs::Obs>) -> Self {
        self.mg = self.mg.with_obs(obs);
        self
    }

    /// Enable per-step physics monitoring (mass, momentum, max |u|, NaN guard).
    pub fn with_monitor(mut self, cfg: obs::MonitorConfig) -> Self {
        self.monitor = Some(obs::PhysicsMonitor::new(cfg));
        self
    }

    /// The physics monitor, if enabled.
    pub fn monitor(&self) -> Option<&obs::PhysicsMonitor> {
        self.monitor.as_ref()
    }

    /// Initialize every node — including ghosts — from a macroscopic field
    /// at **global** coordinates (no initial exchange needed).
    pub fn init_with(&mut self, field: impl Fn(usize, usize, usize) -> (f64, [f64; 3])) {
        for (r, sh) in self.shards.iter_mut().enumerate() {
            sh.cur = 0;
            for idx in 0..sh.geom.len() {
                let (lx, y, z) = sh.geom.coords(idx);
                let gx = self.decomp.global_x(r, lx);
                let (rho, u) = match sh.geom.node_at(idx) {
                    NodeType::Inlet(u_bc) => (field(gx, y, z).0, u_bc),
                    NodeType::Outlet(rho_bc) => (rho_bc, field(gx, y, z).1),
                    _ => field(gx, y, z),
                };
                let m = Moments {
                    rho,
                    u,
                    pi: Moments::pi_eq(rho, u, L::D),
                };
                sh.mom[0].set_moments::<L>(0, idx, &m);
            }
        }
        self.t = 0;
        self.stats = OverlapStats::default();
    }

    /// Advance one timestep with the two-phase overlap schedule.
    pub fn step(&mut self) {
        let obs = self.mg.obs().cloned();
        let _step_span = obs.as_ref().map(|o| {
            o.tracer
                .span_args("driver", "step", &[("t", self.t.to_string())])
        });
        let n_sh = self.shards.len();
        let mut boundary_bytes = vec![0u64; n_sh];
        let mut interior_bytes = vec![0u64; n_sh];
        let mut bc_bytes = vec![0u64; n_sh];

        // Phase 1: edge column blocks.
        for (r, sh) in self.shards.iter().enumerate() {
            if !sh.strip_cols.is_empty() {
                let stats = launch_mr2d_columns::<L>(
                    self.mg.device(r),
                    &sh.mom[sh.cur],
                    &sh.mom[sh.cur ^ 1],
                    &sh.geom,
                    &self.scheme,
                    self.tau,
                    self.t,
                    sh.col_w,
                    self.tile_h,
                    &sh.strip_cols,
                );
                boundary_bytes[r] += stats.tally.dram_bytes();
            }
        }

        // Phase 2: moment-space halo exchange (overlaps the interior).
        let _halo_span = obs.as_ref().map(|o| o.tracer.span("halo", "halo-exchange"));
        let transfers = self.exchange();
        drop(_halo_span);

        // Phase 3: interior column blocks.
        for (r, sh) in self.shards.iter().enumerate() {
            if !sh.interior_cols.is_empty() {
                let stats = launch_mr2d_columns::<L>(
                    self.mg.device(r),
                    &sh.mom[sh.cur],
                    &sh.mom[sh.cur ^ 1],
                    &sh.geom,
                    &self.scheme,
                    self.tau,
                    self.t,
                    sh.col_w,
                    self.tile_h,
                    &sh.interior_cols,
                );
                interior_bytes[r] += stats.tally.dram_bytes();
            }
        }

        // Phase 4: inlet/outlet rebuild (native to moment space).
        for (r, sh) in self.shards.iter().enumerate() {
            if !sh.boundary.is_empty() {
                let stats = launch_mr_bc::<L>(
                    self.mg.device(r),
                    &sh.mom[sh.cur ^ 1],
                    &sh.geom,
                    self.tau,
                    self.t + 1,
                    &sh.boundary,
                    64,
                );
                bc_bytes[r] += stats.tally.dram_bytes();
            }
        }

        let spec = self.mg.spec().clone();
        let max_t = |b: &[u64]| device_time_s(&spec, b.iter().copied().max().unwrap_or(0));
        self.stats.record_step(
            max_t(&boundary_bytes),
            max_t(&interior_bytes),
            exchange_time_s(&self.mg, &transfers),
            max_t(&bc_bytes),
        );

        for sh in &mut self.shards {
            sh.cur ^= 1;
        }
        self.t += 1;
        self.sample_monitor("multi-mr2d");
    }

    /// Copy each cut's freshly computed edge columns — as `M` moments per
    /// node, not `Q` populations — into the neighbors' ghost columns.
    fn exchange(&self) -> Vec<(usize, usize, u64)> {
        let mut out = Vec::new();
        for tr in self.decomp.halo_transfers() {
            let (src, dst) = (&self.shards[tr.from], &self.shards[tr.to]);
            let (sm, dm) = (&src.mom[src.cur ^ 1], &dst.mom[dst.cur ^ 1]);
            let mut bytes = 0u64;
            for z in 0..src.geom.nz {
                for y in 0..src.geom.ny {
                    if !src.geom.node(tr.src_lx, y, z).is_fluid_like() {
                        continue;
                    }
                    let si = src.geom.idx(tr.src_lx, y, z);
                    let di = dst.geom.idx(tr.dst_lx, y, z);
                    let m = sm.get_moments::<L>(self.t + 1, si);
                    dm.set_moments::<L>(self.t + 1, di, &m);
                    bytes += (L::M * 8) as u64;
                }
            }
            self.mg.record_transfer(tr.from, tr.to, bytes);
            out.push((tr.from, tr.to, bytes));
        }
        out
    }

    /// Advance `steps` timesteps.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Completed timesteps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The global geometry.
    pub fn geom(&self) -> &Geometry {
        self.decomp.global()
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.shards.len()
    }

    /// The interconnect (link byte counters, report).
    pub fn interconnect(&self) -> &MultiGpu {
        &self.mg
    }

    /// Modeled overlap-schedule timing.
    pub fn stats(&self) -> &OverlapStats {
        &self.stats
    }

    /// Analytic per-step halo traffic: fluid-like halo nodes × `M·8`.
    pub fn halo_bytes_per_step(&self) -> u64 {
        (self.decomp.halo_nodes_per_step() * L::M * 8) as u64
    }

    /// Moments at a global node (owner shard, current time).
    pub fn moments_at(&self, x: usize, y: usize, z: usize) -> Moments {
        let r = self.decomp.owner_of(x);
        let sh = &self.shards[r];
        let lx = self.decomp.slab(r).owned_lo() + (x - self.decomp.slab(r).x0);
        sh.mom[sh.cur].get_moments::<L>(self.t, sh.geom.idx(lx, y, z))
    }

    /// Global density and velocity in one pass (solid nodes report zero).
    fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>) {
        let g = self.decomp.global();
        let mut rho = vec![0.0; g.len()];
        let mut u = vec![[0.0; 3]; g.len()];
        for idx in 0..g.len() {
            if g.node_at(idx).is_fluid_like() {
                let (x, y, z) = g.coords(idx);
                let m = self.moments_at(x, y, z);
                rho[idx] = m.rho;
                u[idx] = m.u;
            }
        }
        (rho, u)
    }

    fn sample_monitor(&mut self, pattern: &str) {
        if !self.monitor.as_ref().is_some_and(|m| m.due(self.t)) {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().observe(self.t, &rho, &u);
        if let Some(o) = self.mg.obs() {
            let labels = [("pattern", pattern)];
            o.metrics.gauge_set("monitor_mass", &labels, s.mass);
            o.metrics.gauge_set("monitor_max_u", &labels, s.max_u);
        }
    }

    /// Global velocity field (solid nodes report zero).
    pub fn velocity_field(&self) -> Vec<[f64; 3]> {
        self.macro_fields().1
    }

    /// Global density field (solid nodes report zero).
    pub fn density_field(&self) -> Vec<f64> {
        self.macro_fields().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_gpu::MrSim2D;
    use lbm_lattice::D2Q9;

    fn shear_init(x: usize, y: usize, _z: usize) -> (f64, [f64; 3]) {
        (
            1.0 + 0.01 * ((2 * x + y) as f64 * 0.4).sin(),
            [
                0.02 * (y as f64 * 0.7).sin(),
                0.01 * (x as f64 * 0.5).cos(),
                0.0,
            ],
        )
    }

    /// Sharded MR-P matches single-device MR-P bitwise on a periodic-x
    /// channel: the ghost moments are exact copies and the column kernel's
    /// per-node arithmetic is decomposition-independent.
    #[test]
    fn multi_matches_single_bitwise() {
        let geom = Geometry::walls_y_periodic_x(16, 8);
        let mut single: MrSim2D<D2Q9> = MrSim2D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_cpu_threads(2);
        single.init_with(shear_init);
        let mut multi: MultiMrSim2D<D2Q9> =
            MultiMrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 4)
                .with_cpu_threads(2);
        multi.init_with(shear_init);
        single.run(10);
        multi.run(10);
        let (us, um) = (single.velocity_field(), multi.velocity_field());
        for (a, b) in us.iter().zip(&um) {
            for k in 0..3 {
                assert_eq!(a[k], b[k], "sharding changed the arithmetic");
            }
        }
        let (rs, rm) = (single.density_field(), multi.density_field());
        for (a, b) in rs.iter().zip(&rm) {
            assert_eq!(a, b);
        }
    }

    /// MR-R on an inlet/outlet channel matches to roundoff (the FD stencil
    /// runs on the edge shards with identical inputs, so this is bitwise
    /// too).
    #[test]
    fn multi_matches_single_channel_recursive() {
        let geom = Geometry::channel_2d(20, 10, 0.04);
        let mut single: MrSim2D<D2Q9> = MrSim2D::new(
            DeviceSpec::mi100(),
            geom.clone(),
            MrScheme::recursive::<D2Q9>(),
            0.75,
        )
        .with_cpu_threads(2);
        let mut multi: MultiMrSim2D<D2Q9> = MultiMrSim2D::new(
            DeviceSpec::mi100(),
            geom,
            MrScheme::recursive::<D2Q9>(),
            0.75,
            3,
        )
        .with_cpu_threads(2);
        single.run(12);
        multi.run(12);
        let (us, um) = (single.velocity_field(), multi.velocity_field());
        for (a, b) in us.iter().zip(&um) {
            for k in 0..3 {
                assert_eq!(a[k], b[k]);
            }
        }
    }

    /// The moment-space exchange moves exactly M/Q of the ST halo bytes:
    /// 96/144 per D2Q9 halo node.
    #[test]
    fn halo_bytes_are_m_per_node() {
        let geom = Geometry::walls_y_periodic_x(16, 10);
        let mut multi: MultiMrSim2D<D2Q9> =
            MultiMrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 2)
                .with_cpu_threads(2);
        multi.run(4);
        let per_step = 4 * 8 * 6 * 8; // 4 transfers × 8 fluid nodes × M·8
        assert_eq!(multi.halo_bytes_per_step(), per_step as u64);
        assert_eq!(multi.interconnect().total_link_bytes(), 4 * per_step as u64);
    }

    /// Step/halo spans, link metrics, and the physics monitor all flow
    /// through the sharded MR driver.
    #[test]
    fn obs_and_monitor_wire_through() {
        let hub = obs::Obs::shared();
        let geom = Geometry::walls_y_periodic_x(16, 8);
        let mut multi: MultiMrSim2D<D2Q9> =
            MultiMrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 2)
                .with_cpu_threads(2)
                .with_obs(hub.clone())
                .with_monitor(obs::MonitorConfig {
                    cadence: 2,
                    ..Default::default()
                });
        multi.init_with(|x, y, _| (1.0 + 0.01 * ((x + y) as f64).sin(), [0.0; 3]));
        multi.run(4);

        let events = hub.tracer.events();
        let steps = events
            .iter()
            .filter(|e| e.ph == 'B' && e.name == "step")
            .count();
        assert_eq!(steps, 4);
        let halos = events
            .iter()
            .filter(|e| e.ph == 'B' && e.name == "halo-exchange")
            .count();
        assert_eq!(halos, 4);
        assert!(
            hub.metrics
                .counter("link_transfer_bytes", &[("link", "NVLink2[0->1]")])
                .unwrap_or(0)
                > 0
        );

        let mon = multi.monitor().unwrap();
        assert_eq!(mon.samples().len(), 2);
        assert!(mon.is_ok(), "violations: {:?}", mon.violations());
        assert!(mon.mass_drift() <= 1e-10);
    }

    /// Mass is conserved across the cuts.
    #[test]
    fn conserves_mass() {
        let geom = Geometry::walls_y_periodic_x(16, 8);
        let mut multi: MultiMrSim2D<D2Q9> =
            MultiMrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 4)
                .with_cpu_threads(2);
        multi.init_with(|x, y, _| (1.0 + 0.01 * ((x + y) as f64).sin(), [0.0; 3]));
        let mass = |s: &MultiMrSim2D<D2Q9>| -> f64 { s.density_field().iter().sum() };
        let m0 = mass(&multi);
        multi.run(20);
        let m1 = mass(&multi);
        assert!((m0 - m1).abs() < 1e-9 * m0, "mass drift {}", m1 - m0);
    }

    /// Executor determinism across the sharded driver: identical fields and
    /// halo traffic under 1, 3, and 8 CPU threads per device.
    #[test]
    fn executor_determinism_across_thread_counts() {
        let run = |threads: usize| {
            let geom = Geometry::walls_y_periodic_x(16, 8);
            let mut multi: MultiMrSim2D<D2Q9> =
                MultiMrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 4)
                    .with_cpu_threads(threads)
                    .with_parallel_threshold(0); // force pooled dispatch at any size
            multi.init_with(shear_init);
            multi.run(8);
            (
                multi.velocity_field(),
                multi.density_field(),
                multi.halo_bytes_per_step(),
                multi.interconnect().total_link_bytes(),
            )
        };
        let base = run(1);
        for threads in [3, 8] {
            let got = run(threads);
            assert_eq!(base, got, "sharded MR2D diverges at {threads} threads");
        }
    }
}
