//! Multi-device 2D MR: slab-sharded moment representation with
//! *moment-space* halo exchange — `M·8` bytes per halo node instead of the
//! ST pattern's `Q·8`, the paper's bandwidth argument extended to the
//! interconnect (96 vs 144 bytes for D2Q9).
//!
//! Each shard stores two shift-0 moment lattices and alternates between
//! them. The single-device `MrSim2D` updates one lattice in place under
//! circular shifting, which is only safe when the whole step is one
//! lockstep launch; splitting the step into boundary-strip and interior
//! launches would let a later launch clobber slots an earlier one still
//! needed. Double buffering removes the hazard at `2M` doubles per node —
//! and `MrSim2D`'s `double_buffer_matches_single` test proves the
//! trajectory is bitwise unchanged.

use crate::decomp::SlabDecomp;
use crate::recovery::{transfer_with_retry, HaloRetryPolicy};
use crate::st::check_boundary_widths;
use crate::stats::{device_time_s, exchange_time_s, OverlapStats};
use gpu_sim::interconnect::{LinkError, MultiGpu};
use gpu_sim::{DeviceSpec, FaultPlan};
use lbm_core::geometry::{Geometry, NodeType};
use lbm_core::io::{CheckpointError, CheckpointReader, CheckpointWriter};
use lbm_core::kernels::KernelConsts;
use lbm_gpu::boundary::boundary_nodes;
use lbm_gpu::moment_lattice::MomentLattice;
use lbm_gpu::mr2d::{launch_mr2d_columns, launch_mr_bc, pick_column_width};
use lbm_gpu::scheme::MrScheme;
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub(crate) struct MrShard {
    pub geom: Geometry,
    /// Interior fast-scatter eligibility over the local geometry (see
    /// `lbm_gpu::boundary::bulk_mask`).
    pub bulk: Vec<bool>,
    pub mom: [MomentLattice; 2],
    pub cur: usize,
    pub boundary: Vec<(usize, usize, usize)>,
    /// Local x origins of the edge column blocks (computed in phase 1).
    pub strip_cols: Vec<usize>,
    /// Local x origins of the remaining owned column blocks.
    pub interior_cols: Vec<usize>,
    pub col_w: usize,
}

impl MrShard {
    /// Partition a shard's owned column blocks into edge strips and
    /// interior. `origins` are the owned block origins in local x.
    pub fn partition(
        origins: Vec<usize>,
        ghost_l: bool,
        ghost_r: bool,
    ) -> (Vec<usize>, Vec<usize>) {
        let mut strips = Vec::new();
        let mut interior = Vec::new();
        let last = origins.len() - 1;
        for (k, x0) in origins.into_iter().enumerate() {
            if (k == 0 && ghost_l) || (k == last && ghost_r) {
                strips.push(x0);
            } else {
                interior.push(x0);
            }
        }
        (strips, interior)
    }
}

/// Slab-sharded 2D MR simulation (MR-P or MR-R) across N devices.
pub struct MultiMrSim2D<L: Lattice> {
    mg: MultiGpu,
    decomp: SlabDecomp,
    shards: Vec<MrShard>,
    scheme: MrScheme,
    tau: f64,
    consts: KernelConsts,
    tile_h: usize,
    t: u64,
    stats: OverlapStats,
    monitor: Option<obs::PhysicsMonitor>,
    retry: HaloRetryPolicy,
    halo_retries: AtomicU64,
    _l: PhantomData<L>,
}

impl<L: Lattice> MultiMrSim2D<L> {
    /// Shard a channel-type geometry (walls at `y = 0` and `y = ny−1`)
    /// across `n` devices. Initialized to equilibrium at rest.
    pub fn new(device: DeviceSpec, geom: Geometry, scheme: MrScheme, tau: f64, n: usize) -> Self {
        assert_eq!(geom.nz, 1, "MultiMrSim2D requires a 2D domain");
        assert_eq!(
            L::REACH,
            1,
            "the MR sliding window requires unit streaming reach"
        );
        assert!(!geom.periodic[1], "MR requires wall-terminated y faces");
        for x in 0..geom.nx {
            assert!(
                geom.node(x, 0, 0).is_solid() && geom.node(x, geom.ny - 1, 0).is_solid(),
                "MR requires walls at y = 0 and y = ny−1"
            );
        }
        let decomp = SlabDecomp::new(geom, n);
        check_boundary_widths(&decomp);
        let mg = MultiGpu::ring(device, n);
        let shards = (0..n)
            .map(|r| {
                let g = decomp.local_geometry(r);
                let s = decomp.slab(r);
                let col_w = pick_column_width(s.width, 32);
                let origins: Vec<usize> = (0..s.width / col_w)
                    .map(|k| s.owned_lo() + k * col_w)
                    .collect();
                let (strip_cols, interior_cols) = if n == 1 {
                    (Vec::new(), origins)
                } else {
                    MrShard::partition(origins, s.ghost_l, s.ghost_r)
                };
                let ln = g.len();
                let boundary = boundary_nodes(&g);
                let bulk = lbm_gpu::boundary::bulk_mask::<L>(&g);
                MrShard {
                    bulk,
                    mom: [
                        MomentLattice::new(ln, L::M, 0, 0).with_touch_tracking(),
                        MomentLattice::new(ln, L::M, 0, 0).with_touch_tracking(),
                    ],
                    cur: 0,
                    boundary,
                    strip_cols,
                    interior_cols,
                    col_w,
                    geom: g,
                }
            })
            .collect();
        let mut sim = MultiMrSim2D {
            mg,
            decomp,
            shards,
            scheme,
            tau,
            consts: KernelConsts::new::<L>(tau),
            tile_h: 1,
            t: 0,
            stats: OverlapStats::default(),
            monitor: None,
            retry: HaloRetryPolicy::default(),
            halo_retries: AtomicU64::new(0),
            _l: PhantomData,
        };
        sim.init_with(|_, _, _| (1.0, [0.0; 3]));
        sim
    }

    /// Limit each device's CPU worker threads.
    pub fn with_cpu_threads(mut self, n: usize) -> Self {
        self.mg = self.mg.with_cpu_threads(n);
        self
    }

    /// Force the scalar (per-node) reference kernels instead of the
    /// chunk-vectorized ones — the equivalence-test oracle.
    pub fn with_scalar_kernels(mut self) -> Self {
        self.consts.scalar = true;
        self
    }

    /// Override the minimum launch size dispatched to the worker pool
    /// (see `gpu_sim::Gpu::with_parallel_threshold`); `0` forces pooling
    /// for every multi-block launch.
    pub fn with_parallel_threshold(mut self, items: usize) -> Self {
        self.mg = self.mg.with_parallel_threshold(items);
        self
    }

    /// Mirror link traffic into a shared profiler.
    pub fn with_profiler(mut self, p: std::sync::Arc<gpu_sim::profiler::Profiler>) -> Self {
        self.mg = self.mg.with_profiler(p);
        self
    }

    /// Attach an observability hub (tracer + metrics) to every device and
    /// the interconnect.
    pub fn with_obs(mut self, obs: std::sync::Arc<obs::Obs>) -> Self {
        self.set_obs(obs);
        self
    }

    /// In-place [`MultiMrSim2D::with_obs`] (the `Simulation` trait surface).
    pub fn set_obs(&mut self, obs: std::sync::Arc<obs::Obs>) {
        self.mg.set_obs(obs);
    }

    /// Tag every device's kernel spans (and this driver's step/halo spans)
    /// with a fleet trace context, or clear it with `None`.
    pub fn set_trace_ctx(&mut self, ctx: Option<obs::TraceCtx>) {
        self.mg.set_trace_ctx(ctx);
    }

    /// Device-memory footprint of every shard's resident moment lattices.
    pub fn footprint_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.mom[0].size_bytes() + s.mom[1].size_bytes())
            .sum()
    }

    /// Enable per-step physics monitoring (mass, momentum, max |u|, NaN guard).
    pub fn with_monitor(mut self, cfg: obs::MonitorConfig) -> Self {
        self.monitor = Some(obs::PhysicsMonitor::new(cfg));
        self
    }

    /// The physics monitor, if enabled.
    pub fn monitor(&self) -> Option<&obs::PhysicsMonitor> {
        self.monitor.as_ref()
    }

    /// Mutable access to the physics monitor, if enabled.
    pub fn monitor_mut(&mut self) -> Option<&mut obs::PhysicsMonitor> {
        self.monitor.as_mut()
    }

    /// Override the halo-transfer retry policy.
    pub fn with_halo_retry(mut self, policy: HaloRetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Attach a deterministic fault plan to every device, every shard's
    /// moment lattices, and the interconnect.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.mg.set_fault_plan(plan.clone());
        for sh in &mut self.shards {
            sh.mom[0].set_fault_plan(plan.clone());
            sh.mom[1].set_fault_plan(plan.clone());
        }
        self
    }

    /// Halo-transfer retries performed so far.
    pub fn halo_retries(&self) -> u64 {
        self.halo_retries.load(Ordering::Relaxed)
    }

    /// Initialize every node — including ghosts — from a macroscopic field
    /// at **global** coordinates (no initial exchange needed).
    pub fn init_with(&mut self, field: impl Fn(usize, usize, usize) -> (f64, [f64; 3])) {
        for (r, sh) in self.shards.iter_mut().enumerate() {
            sh.cur = 0;
            for idx in 0..sh.geom.len() {
                let (lx, y, z) = sh.geom.coords(idx);
                let gx = self.decomp.global_x(r, lx);
                let (rho, u) = match sh.geom.node_at(idx) {
                    NodeType::Inlet(u_bc) => (field(gx, y, z).0, u_bc),
                    NodeType::Outlet(rho_bc) => (rho_bc, field(gx, y, z).1),
                    _ => field(gx, y, z),
                };
                let m = Moments {
                    rho,
                    u,
                    pi: Moments::pi_eq(rho, u, L::D),
                };
                sh.mom[0].set_moments::<L>(0, idx, &m);
            }
        }
        self.t = 0;
        self.stats = OverlapStats::default();
    }

    /// Advance one timestep with the two-phase overlap schedule. Panics if
    /// a halo transfer fails beyond the retry budget; use
    /// [`MultiMrSim2D::try_step`] for typed link errors.
    pub fn step(&mut self) {
        self.try_step()
            .unwrap_or_else(|e| panic!("halo exchange failed: {e}"));
    }

    /// Advance one timestep, surfacing halo-link failures. On `Err` no
    /// state has advanced (`t` and the buffer parity are unchanged) — the
    /// completed edge-strip launches are idempotent and a later retry of
    /// the whole step recomputes them bitwise-identically.
    pub fn try_step(&mut self) -> Result<(), LinkError> {
        let obs = self.mg.obs().cloned();
        let _step_span = obs.as_ref().map(|o| {
            let mut args = vec![("t", self.t.to_string())];
            if let Some(ctx) = self.mg.trace_ctx() {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("driver", "step", &args)
        });
        let n_sh = self.shards.len();
        let mut boundary_bytes = vec![0u64; n_sh];
        let mut interior_bytes = vec![0u64; n_sh];
        let mut bc_bytes = vec![0u64; n_sh];

        // Phase 1: edge column blocks.
        for (r, sh) in self.shards.iter().enumerate() {
            if !sh.strip_cols.is_empty() {
                let stats = launch_mr2d_columns::<L>(
                    self.mg.device(r),
                    &sh.mom[sh.cur],
                    &sh.mom[sh.cur ^ 1],
                    &sh.geom,
                    &self.scheme,
                    &self.consts,
                    &sh.bulk,
                    self.t,
                    sh.col_w,
                    self.tile_h,
                    &sh.strip_cols,
                );
                boundary_bytes[r] += stats.tally.dram_bytes();
            }
        }

        // Phase 2: moment-space halo exchange (overlaps the interior).
        let _halo_span = obs.as_ref().map(|o| {
            let mut args = Vec::new();
            if let Some(ctx) = self.mg.trace_ctx() {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("halo", "halo-exchange", &args)
        });
        let transfers = self.exchange()?;
        drop(_halo_span);

        // Phase 3: interior column blocks.
        for (r, sh) in self.shards.iter().enumerate() {
            if !sh.interior_cols.is_empty() {
                let stats = launch_mr2d_columns::<L>(
                    self.mg.device(r),
                    &sh.mom[sh.cur],
                    &sh.mom[sh.cur ^ 1],
                    &sh.geom,
                    &self.scheme,
                    &self.consts,
                    &sh.bulk,
                    self.t,
                    sh.col_w,
                    self.tile_h,
                    &sh.interior_cols,
                );
                interior_bytes[r] += stats.tally.dram_bytes();
            }
        }

        // Phase 4: inlet/outlet rebuild (native to moment space).
        for (r, sh) in self.shards.iter().enumerate() {
            if !sh.boundary.is_empty() {
                let stats = launch_mr_bc::<L>(
                    self.mg.device(r),
                    &sh.mom[sh.cur ^ 1],
                    &sh.geom,
                    self.tau,
                    self.t + 1,
                    &sh.boundary,
                    64,
                );
                bc_bytes[r] += stats.tally.dram_bytes();
            }
        }

        let spec = self.mg.spec().clone();
        let max_t = |b: &[u64]| device_time_s(&spec, b.iter().copied().max().unwrap_or(0));
        self.stats.record_step(
            max_t(&boundary_bytes),
            max_t(&interior_bytes),
            exchange_time_s(&self.mg, &transfers),
            max_t(&bc_bytes),
        );

        for sh in &mut self.shards {
            sh.cur ^= 1;
        }
        self.t += 1;
        self.sample_monitor("multi-mr2d");
        Ok(())
    }

    /// Copy each cut's freshly computed edge columns — as `M` moments per
    /// node, not `Q` populations — into the neighbors' ghost columns. The
    /// link tally is recorded (with bounded retries on transient link
    /// faults) *before* the copy: a failed transfer moves no data and
    /// records no bytes, so a successful retry tallies exactly once.
    fn exchange(&self) -> Result<Vec<(usize, usize, u64)>, LinkError> {
        let mut out = Vec::new();
        for tr in self.decomp.halo_transfers() {
            let bytes = (self.decomp.column_fluid_count(tr.gx) * L::M * 8) as u64;
            transfer_with_retry(
                &self.mg,
                tr.from,
                tr.to,
                bytes,
                &self.retry,
                &self.halo_retries,
            )?;
            let (src, dst) = (&self.shards[tr.from], &self.shards[tr.to]);
            let (sm, dm) = (&src.mom[src.cur ^ 1], &dst.mom[dst.cur ^ 1]);
            for z in 0..src.geom.nz {
                for y in 0..src.geom.ny {
                    if !src.geom.node(tr.src_lx, y, z).is_fluid_like() {
                        continue;
                    }
                    let si = src.geom.idx(tr.src_lx, y, z);
                    let di = dst.geom.idx(tr.dst_lx, y, z);
                    let m = sm.get_moments::<L>(self.t + 1, si);
                    dm.set_moments::<L>(self.t + 1, di, &m);
                }
            }
            out.push((tr.from, tr.to, bytes));
        }
        Ok(out)
    }

    /// Advance `steps` timesteps, then flush a final monitor sample if the
    /// last step fell between cadence points.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
        self.finish_monitor();
    }

    /// Force a final monitor sample at the current step (no-op when the
    /// monitor is absent or already sampled this step).
    pub fn finish_monitor(&mut self) {
        if self.monitor.is_none() {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().finish(self.t, &rho, &u);
        if let (Some(s), Some(o)) = (s, self.mg.obs()) {
            let labels = [("pattern", "multi-mr2d")];
            o.metrics.gauge_set("monitor_mass", &labels, s.mass);
            o.metrics.gauge_set("monitor_max_u", &labels, s.max_u);
            o.tracer
                .instant("monitor", "flush", &[("step", s.step.to_string())]);
        }
    }

    /// Completed timesteps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The global geometry.
    pub fn geom(&self) -> &Geometry {
        self.decomp.global()
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.shards.len()
    }

    /// The interconnect (link byte counters, report).
    pub fn interconnect(&self) -> &MultiGpu {
        &self.mg
    }

    /// Modeled overlap-schedule timing.
    pub fn stats(&self) -> &OverlapStats {
        &self.stats
    }

    /// Analytic per-step halo traffic: fluid-like halo nodes × `M·8`.
    pub fn halo_bytes_per_step(&self) -> u64 {
        (self.decomp.halo_nodes_per_step() * L::M * 8) as u64
    }

    /// Moments at a global node (owner shard, current time).
    pub fn moments_at(&self, x: usize, y: usize, z: usize) -> Moments {
        let r = self.decomp.owner_of(x);
        let sh = &self.shards[r];
        let lx = self.decomp.slab(r).owned_lo() + (x - self.decomp.slab(r).x0);
        sh.mom[sh.cur].get_moments::<L>(self.t, sh.geom.idx(lx, y, z))
    }

    /// Global density and velocity in one pass (solid nodes report zero).
    pub fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>) {
        let g = self.decomp.global();
        let mut rho = vec![0.0; g.len()];
        let mut u = vec![[0.0; 3]; g.len()];
        for idx in 0..g.len() {
            if g.node_at(idx).is_fluid_like() {
                let (x, y, z) = g.coords(idx);
                let m = self.moments_at(x, y, z);
                rho[idx] = m.rho;
                u[idx] = m.u;
            }
        }
        (rho, u)
    }

    fn sample_monitor(&mut self, pattern: &str) {
        if !self.monitor.as_ref().is_some_and(|m| m.due(self.t)) {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().observe(self.t, &rho, &u);
        if let Some(o) = self.mg.obs() {
            let labels = [("pattern", pattern)];
            o.metrics.gauge_set("monitor_mass", &labels, s.mass);
            o.metrics.gauge_set("monitor_max_u", &labels, s.max_u);
        }
    }

    /// Global velocity field (solid nodes report zero).
    pub fn velocity_field(&self) -> Vec<[f64; 3]> {
        self.macro_fields().1
    }

    /// Global density field (solid nodes report zero).
    pub fn density_field(&self) -> Vec<f64> {
        self.macro_fields().0
    }

    /// FNV-1a checksum of the global macroscopic fields (bitwise).
    pub fn field_checksum(&self) -> u64 {
        let (rho, u) = self.macro_fields();
        lbm_core::io::field_checksum(&rho, &u)
    }

    /// Serialize the full sharded state: dimensions, timestep, overlap
    /// stats, and every shard's current moment lattice (ghost columns
    /// included, so no post-restore exchange is needed).
    pub fn checkpoint(&self) -> Vec<u8> {
        let g = self.decomp.global();
        let mut w = CheckpointWriter::new("multi-mr2d");
        w.put_u64(g.nx as u64)
            .put_u64(g.ny as u64)
            .put_u64(L::M as u64)
            .put_u64(self.shards.len() as u64)
            .put_u64(self.t)
            .put_u64(self.stats.steps)
            .put_f64(self.stats.boundary_s)
            .put_f64(self.stats.interior_s)
            .put_f64(self.stats.exchange_s)
            .put_f64(self.stats.bc_s)
            .put_f64(self.stats.hidden_s)
            .put_f64(self.stats.total_s);
        for sh in &self.shards {
            w.put_f64s(&sh.mom[sh.cur].host_snapshot());
        }
        w.finish()
    }

    /// Restore a snapshot taken by [`MultiMrSim2D::checkpoint`] on an
    /// identically configured simulation. Bitwise: the restored state
    /// continues exactly as the original would have (shift-0 lattices make
    /// the slot layout timestep-independent, so the snapshot lands in
    /// buffer 0 regardless of the saved parity).
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let g = self.decomp.global();
        let mut r = CheckpointReader::open(bytes, "multi-mr2d")?;
        r.expect_u64(g.nx as u64, "nx")?;
        r.expect_u64(g.ny as u64, "ny")?;
        r.expect_u64(L::M as u64, "M")?;
        r.expect_u64(self.shards.len() as u64, "shard count")?;
        self.t = r.take_u64()?;
        self.stats = OverlapStats {
            steps: r.take_u64()?,
            boundary_s: r.take_f64()?,
            interior_s: r.take_f64()?,
            exchange_s: r.take_f64()?,
            bc_s: r.take_f64()?,
            hidden_s: r.take_f64()?,
            total_s: r.take_f64()?,
        };
        for sh in &mut self.shards {
            let data = r.take_f64s(sh.mom[0].raw_len())?;
            sh.mom[0].host_restore(&data);
            sh.cur = 0;
        }
        if let Some(m) = self.monitor.as_mut() {
            m.rollback_to(self.t);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_gpu::MrSim2D;
    use lbm_lattice::D2Q9;

    fn shear_init(x: usize, y: usize, _z: usize) -> (f64, [f64; 3]) {
        (
            1.0 + 0.01 * ((2 * x + y) as f64 * 0.4).sin(),
            [
                0.02 * (y as f64 * 0.7).sin(),
                0.01 * (x as f64 * 0.5).cos(),
                0.0,
            ],
        )
    }

    /// Sharded MR-P matches single-device MR-P bitwise on a periodic-x
    /// channel: the ghost moments are exact copies and the column kernel's
    /// per-node arithmetic is decomposition-independent.
    #[test]
    fn multi_matches_single_bitwise() {
        let geom = Geometry::walls_y_periodic_x(16, 8);
        let mut single: MrSim2D<D2Q9> = MrSim2D::new(
            DeviceSpec::v100(),
            geom.clone(),
            MrScheme::projective(),
            0.8,
        )
        .with_cpu_threads(2);
        single.init_with(shear_init);
        let mut multi: MultiMrSim2D<D2Q9> =
            MultiMrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 4)
                .with_cpu_threads(2);
        multi.init_with(shear_init);
        single.run(10);
        multi.run(10);
        let (us, um) = (single.velocity_field(), multi.velocity_field());
        for (a, b) in us.iter().zip(&um) {
            for k in 0..3 {
                assert_eq!(a[k], b[k], "sharding changed the arithmetic");
            }
        }
        let (rs, rm) = (single.density_field(), multi.density_field());
        for (a, b) in rs.iter().zip(&rm) {
            assert_eq!(a, b);
        }
    }

    /// MR-R on an inlet/outlet channel matches to roundoff (the FD stencil
    /// runs on the edge shards with identical inputs, so this is bitwise
    /// too).
    #[test]
    fn multi_matches_single_channel_recursive() {
        let geom = Geometry::channel_2d(20, 10, 0.04);
        let mut single: MrSim2D<D2Q9> = MrSim2D::new(
            DeviceSpec::mi100(),
            geom.clone(),
            MrScheme::recursive::<D2Q9>(),
            0.75,
        )
        .with_cpu_threads(2);
        let mut multi: MultiMrSim2D<D2Q9> = MultiMrSim2D::new(
            DeviceSpec::mi100(),
            geom,
            MrScheme::recursive::<D2Q9>(),
            0.75,
            3,
        )
        .with_cpu_threads(2);
        single.run(12);
        multi.run(12);
        let (us, um) = (single.velocity_field(), multi.velocity_field());
        for (a, b) in us.iter().zip(&um) {
            for k in 0..3 {
                assert_eq!(a[k], b[k]);
            }
        }
    }

    /// The moment-space exchange moves exactly M/Q of the ST halo bytes:
    /// 96/144 per D2Q9 halo node.
    #[test]
    fn halo_bytes_are_m_per_node() {
        let geom = Geometry::walls_y_periodic_x(16, 10);
        let mut multi: MultiMrSim2D<D2Q9> =
            MultiMrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 2)
                .with_cpu_threads(2);
        multi.run(4);
        let per_step = 4 * 8 * 6 * 8; // 4 transfers × 8 fluid nodes × M·8
        assert_eq!(multi.halo_bytes_per_step(), per_step as u64);
        assert_eq!(multi.interconnect().total_link_bytes(), 4 * per_step as u64);
    }

    /// Step/halo spans, link metrics, and the physics monitor all flow
    /// through the sharded MR driver.
    #[test]
    fn obs_and_monitor_wire_through() {
        let hub = obs::Obs::shared();
        let geom = Geometry::walls_y_periodic_x(16, 8);
        let mut multi: MultiMrSim2D<D2Q9> =
            MultiMrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 2)
                .with_cpu_threads(2)
                .with_obs(hub.clone())
                .with_monitor(obs::MonitorConfig {
                    cadence: 2,
                    ..Default::default()
                });
        multi.init_with(|x, y, _| (1.0 + 0.01 * ((x + y) as f64).sin(), [0.0; 3]));
        multi.run(4);

        let events = hub.tracer.events();
        let steps = events
            .iter()
            .filter(|e| e.ph == 'B' && e.name == "step")
            .count();
        assert_eq!(steps, 4);
        let halos = events
            .iter()
            .filter(|e| e.ph == 'B' && e.name == "halo-exchange")
            .count();
        assert_eq!(halos, 4);
        assert!(
            hub.metrics
                .counter("link_transfer_bytes", &[("link", "NVLink2[0->1]")])
                .unwrap_or(0)
                > 0
        );

        let mon = multi.monitor().unwrap();
        assert_eq!(mon.samples().len(), 2);
        assert!(mon.is_ok(), "violations: {:?}", mon.violations());
        assert!(mon.mass_drift() <= 1e-10);
    }

    /// Mass is conserved across the cuts.
    #[test]
    fn conserves_mass() {
        let geom = Geometry::walls_y_periodic_x(16, 8);
        let mut multi: MultiMrSim2D<D2Q9> =
            MultiMrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 4)
                .with_cpu_threads(2);
        multi.init_with(|x, y, _| (1.0 + 0.01 * ((x + y) as f64).sin(), [0.0; 3]));
        let mass = |s: &MultiMrSim2D<D2Q9>| -> f64 { s.density_field().iter().sum() };
        let m0 = mass(&multi);
        multi.run(20);
        let m1 = mass(&multi);
        assert!((m0 - m1).abs() < 1e-9 * m0, "mass drift {}", m1 - m0);
    }

    /// Executor determinism across the sharded driver: identical fields and
    /// halo traffic under 1, 3, and 8 CPU threads per device.
    #[test]
    fn executor_determinism_across_thread_counts() {
        let run = |threads: usize| {
            let geom = Geometry::walls_y_periodic_x(16, 8);
            let mut multi: MultiMrSim2D<D2Q9> =
                MultiMrSim2D::new(DeviceSpec::v100(), geom, MrScheme::projective(), 0.8, 4)
                    .with_cpu_threads(threads)
                    .with_parallel_threshold(0); // force pooled dispatch at any size
            multi.init_with(shear_init);
            multi.run(8);
            (
                multi.velocity_field(),
                multi.density_field(),
                multi.halo_bytes_per_step(),
                multi.interconnect().total_link_bytes(),
            )
        };
        let base = run(1);
        for threads in [3, 8] {
            let got = run(threads);
            assert_eq!(base, got, "sharded MR2D diverges at {threads} threads");
        }
    }
}
