//! 1D slab decomposition of a global domain along `x`.
//!
//! Each of `N` shards owns a contiguous span of `x` columns plus a one-node
//! ghost column at every cut (the lattice streaming reach is 1). Ghost
//! columns are *read-only* mirrors of the neighbor's edge column: the
//! drivers never compute them, only overwrite them during the halo
//! exchange. Local geometries copy node classifications from the global
//! domain (with periodic wrap for the ghosts of the outermost shards), so
//! every kernel sees exactly the node types the single-device run sees —
//! which is what makes the sharded update bitwise identical.

use lbm_core::geometry::Geometry;

/// One shard's span of the global domain.
#[derive(Clone, Copy, Debug)]
pub struct Slab {
    /// Global `x` of the first owned column.
    pub x0: usize,
    /// Owned columns.
    pub width: usize,
    /// Whether a ghost column precedes the owned span (a cut or the
    /// periodic wrap lies to the left).
    pub ghost_l: bool,
    /// Whether a ghost column follows the owned span.
    pub ghost_r: bool,
}

impl Slab {
    /// Local domain width: owned columns plus ghosts.
    #[inline]
    pub fn local_nx(&self) -> usize {
        self.width + self.ghost_l as usize + self.ghost_r as usize
    }

    /// Local `x` of the first owned column.
    #[inline]
    pub fn owned_lo(&self) -> usize {
        self.ghost_l as usize
    }

    /// One past the local `x` of the last owned column.
    #[inline]
    pub fn owned_hi(&self) -> usize {
        self.owned_lo() + self.width
    }
}

/// A cut between two adjacent shards (including the periodic wrap cut).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cut {
    /// Shard owning the columns left of the cut.
    pub left: usize,
    /// Shard owning the columns right of the cut.
    pub right: usize,
}

/// One direction of a cut's halo exchange: the sender's owned edge column
/// is copied into the receiver's ghost column.
#[derive(Clone, Copy, Debug)]
pub struct HaloTransfer {
    pub from: usize,
    pub to: usize,
    /// Sender-local `x` of the exchanged (owned) column.
    pub src_lx: usize,
    /// Receiver-local `x` of the ghost column being filled.
    pub dst_lx: usize,
    /// Global `x` of the column (for byte accounting).
    pub gx: usize,
}

/// The full decomposition: global geometry, per-shard slabs, and cuts.
pub struct SlabDecomp {
    global: Geometry,
    slabs: Vec<Slab>,
    cuts: Vec<Cut>,
}

impl SlabDecomp {
    /// Split `global` into `n` slabs of near-equal width (the first
    /// `nx mod n` slabs get one extra column).
    pub fn new(global: Geometry, n: usize) -> Self {
        assert!(n > 0, "need at least one shard");
        assert!(global.nx >= n, "fewer columns than shards");
        let wrap = global.periodic[0] && n > 1;
        let (base, extra) = (global.nx / n, global.nx % n);
        let mut slabs = Vec::with_capacity(n);
        let mut x0 = 0;
        for r in 0..n {
            let width = base + (r < extra) as usize;
            slabs.push(Slab {
                x0,
                width,
                ghost_l: r > 0 || wrap,
                ghost_r: r < n - 1 || wrap,
            });
            x0 += width;
        }
        let mut cuts: Vec<Cut> = (0..n - 1)
            .map(|r| Cut {
                left: r,
                right: r + 1,
            })
            .collect();
        if wrap {
            cuts.push(Cut {
                left: n - 1,
                right: 0,
            });
        }
        SlabDecomp {
            global,
            slabs,
            cuts,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.slabs.len()
    }

    /// The global geometry.
    pub fn global(&self) -> &Geometry {
        &self.global
    }

    pub fn slab(&self, r: usize) -> &Slab {
        &self.slabs[r]
    }

    pub fn slabs(&self) -> &[Slab] {
        &self.slabs
    }

    /// All cuts, including the periodic wrap cut for `n > 1`.
    pub fn cuts(&self) -> &[Cut] {
        &self.cuts
    }

    /// Global `x` of shard `r`'s local column `lx` (ghosts wrap).
    #[inline]
    pub fn global_x(&self, r: usize, lx: usize) -> usize {
        let s = &self.slabs[r];
        let nx = self.global.nx;
        (s.x0 + nx + lx - s.owned_lo()) % nx
    }

    /// The shard owning global column `gx`.
    pub fn owner_of(&self, gx: usize) -> usize {
        debug_assert!(gx < self.global.nx);
        self.slabs
            .iter()
            .position(|s| gx >= s.x0 && gx < s.x0 + s.width)
            .expect("column outside every slab")
    }

    /// Shard `r`'s local geometry: its owned span plus ghost columns, node
    /// types copied from the global domain. For `n ≥ 2` the local `x` axis
    /// is never periodic — the ghost columns carry what periodicity (or a
    /// neighbor shard) would have supplied.
    pub fn local_geometry(&self, r: usize) -> Geometry {
        let n = self.num_shards();
        if n == 1 {
            return self.global.clone();
        }
        let s = &self.slabs[r];
        let (ny, nz) = (self.global.ny, self.global.nz);
        let periodic = [false, self.global.periodic[1], self.global.periodic[2]];
        let mut g = Geometry::new(s.local_nx(), ny, nz, periodic);
        for lx in 0..s.local_nx() {
            let gx = self.global_x(r, lx);
            for z in 0..nz {
                for y in 0..ny {
                    g.set(lx, y, z, self.global.node(gx, y, z));
                }
            }
        }
        g
    }

    /// Fluid-like nodes in global column `gx` — the nodes whose state a
    /// halo exchange of that column must carry (walls are never exchanged:
    /// the pull update resolves solid neighbors from its own node).
    pub fn column_fluid_count(&self, gx: usize) -> usize {
        let mut count = 0;
        for z in 0..self.global.nz {
            for y in 0..self.global.ny {
                if self.global.node(gx, y, z).is_fluid_like() {
                    count += 1;
                }
            }
        }
        count
    }

    /// The two directed transfers of every cut, in cut order.
    pub fn halo_transfers(&self) -> Vec<HaloTransfer> {
        let mut out = Vec::with_capacity(2 * self.cuts.len());
        for c in &self.cuts {
            let (l, r) = (&self.slabs[c.left], &self.slabs[c.right]);
            // Left shard's rightmost owned column → right shard's left ghost.
            out.push(HaloTransfer {
                from: c.left,
                to: c.right,
                src_lx: l.owned_hi() - 1,
                dst_lx: 0,
                gx: l.x0 + l.width - 1,
            });
            // Right shard's leftmost owned column → left shard's right ghost.
            out.push(HaloTransfer {
                from: c.right,
                to: c.left,
                src_lx: r.owned_lo(),
                dst_lx: l.local_nx() - 1,
                gx: r.x0,
            });
        }
        out
    }

    /// Total fluid-like halo nodes exchanged per step (both directions of
    /// every cut). Multiplied by `Q·8` (ST) or `M·8` (MR) this is the
    /// analytic per-step interconnect traffic.
    pub fn halo_nodes_per_step(&self) -> usize {
        self.halo_transfers()
            .iter()
            .map(|t| self.column_fluid_count(t.gx))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_equal_widths_cover_domain() {
        let d = SlabDecomp::new(Geometry::walls_y_periodic_x(13, 6), 4);
        let widths: Vec<usize> = d.slabs().iter().map(|s| s.width).collect();
        assert_eq!(widths, vec![4, 3, 3, 3]);
        assert_eq!(d.slabs().iter().map(|s| s.width).sum::<usize>(), 13);
        for gx in 0..13 {
            let r = d.owner_of(gx);
            let s = d.slab(r);
            assert!(gx >= s.x0 && gx < s.x0 + s.width);
        }
    }

    #[test]
    fn periodic_decomp_has_wrap_cut_and_full_ghosts() {
        let d = SlabDecomp::new(Geometry::walls_y_periodic_x(12, 6), 3);
        assert_eq!(d.cuts().len(), 3);
        assert_eq!(*d.cuts().last().unwrap(), Cut { left: 2, right: 0 });
        for s in d.slabs() {
            assert!(s.ghost_l && s.ghost_r);
            assert_eq!(s.local_nx(), s.width + 2);
        }
        // Shard 0's left ghost wraps to the last global column.
        assert_eq!(d.global_x(0, 0), 11);
        assert_eq!(d.global_x(0, 1), 0);
    }

    #[test]
    fn channel_decomp_has_open_ends() {
        let d = SlabDecomp::new(Geometry::channel_2d(16, 8, 0.04), 4);
        assert_eq!(d.cuts().len(), 3);
        assert!(!d.slab(0).ghost_l && d.slab(0).ghost_r);
        assert!(d.slab(3).ghost_l && !d.slab(3).ghost_r);
        assert!(d.slab(1).ghost_l && d.slab(1).ghost_r);
        // Shard 0's local x equals global x (no left ghost).
        assert_eq!(d.global_x(0, 0), 0);
        assert_eq!(d.global_x(1, 0), 3); // ghost mirrors column 3
    }

    #[test]
    fn local_geometry_copies_node_types() {
        let d = SlabDecomp::new(Geometry::channel_2d(16, 8, 0.04), 4);
        let g0 = d.local_geometry(0);
        assert!(matches!(
            g0.node(0, 3, 0),
            lbm_core::geometry::NodeType::Inlet(_)
        ));
        assert!(!g0.periodic[0]);
        // Walls propagate into every local geometry.
        for r in 0..4 {
            let g = d.local_geometry(r);
            for lx in 0..g.nx {
                assert!(g.node(lx, 0, 0).is_solid());
                assert!(g.node(lx, 7, 0).is_solid());
            }
        }
    }

    #[test]
    fn halo_transfers_pair_up() {
        let d = SlabDecomp::new(Geometry::walls_y_periodic_x(12, 6), 2);
        // n = 2 periodic: two cuts, four transfers, all between 0 and 1.
        let ts = d.halo_transfers();
        assert_eq!(ts.len(), 4);
        assert!(ts.iter().all(|t| t.from != t.to));
        // Each column has ny − 2 = 4 fluid nodes (two walls).
        assert_eq!(d.halo_nodes_per_step(), 4 * 4);
    }

    #[test]
    fn single_shard_has_no_cuts() {
        let d = SlabDecomp::new(Geometry::walls_y_periodic_x(8, 4), 1);
        assert!(d.cuts().is_empty());
        assert!(d.halo_transfers().is_empty());
        assert_eq!(d.local_geometry(0).nx, 8);
        assert!(d.local_geometry(0).periodic[0]);
    }
}
