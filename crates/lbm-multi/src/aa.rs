//! Multi-device AA-pattern ST: slab-sharded in-place propagation with
//! parity-aware halo exchange.
//!
//! Each shard holds **one** `Q·8`-per-node lattice (half of
//! [`crate::MultiStSim`]'s residency) and runs the same two half-steps as
//! [`lbm_gpu::AaStSim`] over its owned span:
//!
//! * **Stream half-step** (even `t`): the edge nodes *gather* from the
//!   ghost column and *push* into it, so the cut protocol is two partial
//!   exchanges around one launch. Pre-exchange: each owned edge column's
//!   cut-crossing slots (`{s : c_s·x̂ = −1}` for a left ghost, `+1` for a
//!   right ghost — the slots the neighbor's gather reads) are copied into
//!   the adjacent ghost. Post-exchange: the same slots of each ghost — now
//!   holding the neighbor-bound *pushes* — are copied back into the owner's
//!   edge column, guarded per `(cell, slot)` by "the pushing node is
//!   Fluid"; where it is not (a wall or the domain edge sits across the
//!   cut), the owner already stored the value itself through the local
//!   bounce rules and the ghost slot is stale.
//! * **Collide half-step** (odd `t`): node-local, no exchange at all.
//!
//! Only `REACH = 1` cut-crossing slots move: 3 of 9 (D2Q9) or 5 of 19
//! (D3Q19) populations, twice per two-step cycle — 2·3/9 = ⅔ of one ST
//! exchange per cycle where ST pays 2 full-`Q` exchanges, a 3× wire
//! saving on top of the halved residency. The cost: the stream launch both
//! reads and writes the cut columns, so neither exchange can overlap
//! compute (the stats record the exchange as exposed time).
//!
//! Bitwise: every per-node read resolves to the same value the
//! single-device [`lbm_gpu::AaStSim`] reads, so the sharded trajectory is
//! identical with `==`, at both parities.

use crate::decomp::SlabDecomp;
use crate::recovery::{transfer_with_retry, HaloRetryPolicy};
use crate::stats::{device_time_s, exchange_time_s, OverlapStats};
use gpu_sim::interconnect::{LinkError, MultiGpu};
use gpu_sim::{DeviceSpec, FaultPlan, GlobalBuffer};
use lbm_core::collision::Collision;
use lbm_core::geometry::{Geometry, NodeType};
use lbm_core::io::{CheckpointError, CheckpointReader, CheckpointWriter};
use lbm_core::kernels::{aa_slot, KernelConsts};
use lbm_gpu::aa::{launch_aa_collide_span, launch_aa_stream_span};
use lbm_gpu::boundary::boundary_nodes;
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct AaShard {
    geom: Geometry,
    a: GlobalBuffer<f64>,
    owned_lo: usize,
    owned_hi: usize,
}

/// Slab-sharded AA-pattern ST simulation across N simulated devices.
pub struct MultiAaStSim<L: Lattice, C: Collision<L>> {
    mg: MultiGpu,
    decomp: SlabDecomp,
    shards: Vec<AaShard>,
    collision: C,
    consts: KernelConsts,
    block_size: usize,
    t: u64,
    /// A stream half-step's post-exchange failed after the launch mutated
    /// the lattice in place; the next `try_step` must finish that exchange
    /// (idempotent: it only reads ghosts and writes edge columns) before
    /// the step can complete.
    post_pending: bool,
    stats: OverlapStats,
    monitor: Option<obs::PhysicsMonitor>,
    retry: HaloRetryPolicy,
    halo_retries: AtomicU64,
    _l: PhantomData<L>,
}

impl<L: Lattice, C: Collision<L>> MultiAaStSim<L, C> {
    /// Shard `geom` across `n` devices of one spec, joined ring-wise with
    /// the vendor's preset link. Initialized to equilibrium at rest.
    pub fn new(device: DeviceSpec, geom: Geometry, collision: C, n: usize) -> Self {
        if L::D == 2 {
            assert_eq!(geom.nz, 1, "2D lattice on a 3D domain");
        }
        assert_eq!(L::REACH, 1, "slab ghosts are one column wide");
        assert!(
            boundary_nodes(&geom).is_empty(),
            "AA-pattern streaming does not support inlet/outlet boundaries"
        );
        let decomp = SlabDecomp::new(geom, n);
        let mg = MultiGpu::ring(device, n);
        let shards = (0..n)
            .map(|r| {
                let g = decomp.local_geometry(r);
                let s = decomp.slab(r);
                let ln = g.len();
                AaShard {
                    a: GlobalBuffer::new(L::Q * ln).with_touch_tracking(),
                    owned_lo: s.owned_lo(),
                    owned_hi: s.owned_hi(),
                    geom: g,
                }
            })
            .collect();
        let mut sim = MultiAaStSim {
            mg,
            decomp,
            shards,
            consts: KernelConsts::new::<L>(collision.tau()),
            collision,
            block_size: 256,
            t: 0,
            post_pending: false,
            stats: OverlapStats::default(),
            monitor: None,
            retry: HaloRetryPolicy::default(),
            halo_retries: AtomicU64::new(0),
            _l: PhantomData,
        };
        sim.init_with(|_, _, _| (1.0, [0.0; 3]));
        sim
    }

    /// Limit each device's CPU worker threads.
    pub fn with_cpu_threads(mut self, n: usize) -> Self {
        self.mg = self.mg.with_cpu_threads(n);
        self
    }

    /// Force the scalar (per-node) reference kernels instead of the
    /// chunk-vectorized ones — the equivalence-test oracle.
    pub fn with_scalar_kernels(mut self) -> Self {
        self.consts.scalar = true;
        self
    }

    /// Override the minimum launch size dispatched to the worker pool
    /// (see `gpu_sim::Gpu::with_parallel_threshold`); `0` forces pooling
    /// for every multi-block launch.
    pub fn with_parallel_threshold(mut self, items: usize) -> Self {
        self.mg = self.mg.with_parallel_threshold(items);
        self
    }

    /// Mirror link traffic into a shared profiler.
    pub fn with_profiler(mut self, p: std::sync::Arc<gpu_sim::profiler::Profiler>) -> Self {
        self.mg = self.mg.with_profiler(p);
        self
    }

    /// Set the thread-block size of the span kernels.
    pub fn with_block_size(mut self, bs: usize) -> Self {
        assert!(bs >= 1);
        self.block_size = bs;
        self
    }

    /// Attach one observability hub to every device and the link layer.
    pub fn with_obs(mut self, obs: std::sync::Arc<obs::Obs>) -> Self {
        self.set_obs(obs);
        self
    }

    /// In-place [`MultiAaStSim::with_obs`] (the `Simulation` trait surface).
    pub fn set_obs(&mut self, obs: std::sync::Arc<obs::Obs>) {
        self.mg.set_obs(obs);
    }

    /// Tag every device's kernel spans (and this driver's step/halo spans)
    /// with a fleet trace context, or clear it with `None`.
    pub fn set_trace_ctx(&mut self, ctx: Option<obs::TraceCtx>) {
        self.mg.set_trace_ctx(ctx);
    }

    /// Device-memory footprint: every shard's single resident lattice —
    /// half of [`crate::MultiStSim::footprint_bytes`] shard for shard.
    pub fn footprint_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.a.size_bytes()).sum()
    }

    /// Attach a physics monitor over the *global* fields every
    /// `cfg.cadence` steps.
    pub fn with_monitor(mut self, cfg: obs::MonitorConfig) -> Self {
        self.monitor = Some(obs::PhysicsMonitor::new(cfg));
        self
    }

    /// The attached physics monitor, if any.
    pub fn monitor(&self) -> Option<&obs::PhysicsMonitor> {
        self.monitor.as_ref()
    }

    /// Mutable access to the physics monitor, if enabled.
    pub fn monitor_mut(&mut self) -> Option<&mut obs::PhysicsMonitor> {
        self.monitor.as_mut()
    }

    /// Override the halo-transfer retry policy.
    pub fn with_halo_retry(mut self, policy: HaloRetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Attach a deterministic fault plan to every device, every shard's
    /// lattice, and the interconnect.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.mg.set_fault_plan(plan.clone());
        for sh in &mut self.shards {
            sh.a.set_fault_plan(plan.clone());
        }
        self
    }

    /// Halo-transfer retries performed so far.
    pub fn halo_retries(&self) -> u64 {
        self.halo_retries.load(Ordering::Relaxed)
    }

    fn sample_monitor(&mut self) {
        if !self.monitor.as_ref().is_some_and(|m| m.due(self.t)) {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().observe(self.t, &rho, &u);
        if let Some(o) = self.mg.obs() {
            let labels = [("pattern", "multi-aa-st")];
            o.metrics.gauge_set("monitor_mass", &labels, s.mass);
            o.metrics.gauge_set("monitor_max_u", &labels, s.max_u);
        }
    }

    /// Initialize every node — *including ghosts* — from a macroscopic
    /// field evaluated at **global** coordinates into the even-parity slot
    /// layout, so ghost columns start consistent with their owners.
    pub fn init_with(&mut self, field: impl Fn(usize, usize, usize) -> (f64, [f64; 3])) {
        let mut feq = [0.0f64; 48];
        for (r, sh) in self.shards.iter_mut().enumerate() {
            let ln = sh.geom.len();
            for idx in 0..ln {
                let (lx, y, z) = sh.geom.coords(idx);
                let gx = self.decomp.global_x(r, lx);
                let (rho, u) = field(gx, y, z);
                let m = Moments {
                    rho,
                    u,
                    pi: Moments::pi_eq(rho, u, L::D),
                };
                self.collision.reconstruct(&m, &mut feq[..L::Q]);
                for (i, &v) in feq[..L::Q].iter().enumerate() {
                    sh.a.set(aa_slot::<L>(0, i) * ln + idx, v);
                }
            }
        }
        self.t = 0;
        self.post_pending = false;
        self.stats = OverlapStats::default();
    }

    /// Advance one timestep. Panics if a halo transfer fails beyond the
    /// retry budget; use [`MultiAaStSim::try_step`] for typed link errors.
    pub fn step(&mut self) {
        self.try_step()
            .unwrap_or_else(|e| panic!("halo exchange failed: {e}"));
    }

    /// Advance one timestep, surfacing halo-link failures. A failure in the
    /// *pre*-exchange leaves no owned state mutated — retrying the whole
    /// step is safe. A failure in the *post*-exchange arrives after the
    /// in-place launch, so the step is parked half-done: the next
    /// `try_step` call finishes the pending exchange (and only then counts
    /// the step) instead of recomputing over clobbered inputs.
    pub fn try_step(&mut self) -> Result<(), LinkError> {
        let obs = self.mg.obs().cloned();
        let _step_span = obs.as_ref().map(|o| {
            let mut args = vec![("t", self.t.to_string())];
            if let Some(ctx) = self.mg.trace_ctx() {
                ctx.append_args(&mut args);
            }
            o.tracer.span_args("driver", "step", &args)
        });
        if self.post_pending {
            let transfers = self.exchange(Phase::Post)?;
            self.post_pending = false;
            self.stats
                .record_step(0.0, 0.0, exchange_time_s(&self.mg, &transfers), 0.0);
            self.t += 1;
            self.sample_monitor();
            return Ok(());
        }
        let mut launch_bytes = vec![0u64; self.shards.len()];
        let mut exchange_s = 0.0;
        if self.t.is_multiple_of(2) {
            // Stream half-step: pre-exchange, one in-place launch per
            // shard, post-exchange. Neither exchange can overlap the
            // launch — it reads and rewrites the cut columns.
            let mut halo_args = Vec::new();
            if let Some(ctx) = self.mg.trace_ctx() {
                ctx.append_args(&mut halo_args);
            }
            let pre_span = obs
                .as_ref()
                .map(|o| o.tracer.span_args("halo", "halo-exchange", &halo_args));
            let pre = self.exchange(Phase::Pre)?;
            drop(pre_span);
            for (r, sh) in self.shards.iter().enumerate() {
                let stats = launch_aa_stream_span::<L, C>(
                    self.mg.device(r),
                    &sh.a,
                    &sh.geom,
                    &self.collision,
                    &self.consts,
                    self.block_size,
                    sh.owned_lo,
                    sh.owned_hi,
                );
                launch_bytes[r] += stats.tally.dram_bytes();
            }
            let post_span = obs
                .as_ref()
                .map(|o| o.tracer.span_args("halo", "halo-exchange", &halo_args));
            let post = match self.exchange(Phase::Post) {
                Ok(t) => t,
                Err(e) => {
                    self.post_pending = true;
                    return Err(e);
                }
            };
            drop(post_span);
            exchange_s = exchange_time_s(&self.mg, &pre) + exchange_time_s(&self.mg, &post);
        } else {
            // Collide half-step: node-local, no exchange.
            for (r, sh) in self.shards.iter().enumerate() {
                let stats = launch_aa_collide_span::<L, C>(
                    self.mg.device(r),
                    &sh.a,
                    &sh.geom,
                    &self.collision,
                    &self.consts,
                    self.block_size,
                    sh.owned_lo,
                    sh.owned_hi,
                );
                launch_bytes[r] += stats.tally.dram_bytes();
            }
        }
        let spec = self.mg.spec().clone();
        let launch_s = device_time_s(&spec, launch_bytes.iter().copied().max().unwrap_or(0));
        self.stats.record_step(0.0, launch_s, exchange_s, 0.0);
        self.t += 1;
        self.sample_monitor();
        Ok(())
    }

    /// Run one exchange phase over every cut. Pre copies owned edge
    /// columns into ghosts; post copies ghosts back into the neighbor's
    /// edge columns with the pushing-node guard. Link tallies are recorded
    /// (with bounded retries) before each copy, so a failed transfer moves
    /// no data and a successful retry tallies exactly once.
    fn exchange(&self, phase: Phase) -> Result<Vec<(usize, usize, u64)>, LinkError> {
        let mut out = Vec::new();
        for tr in self.decomp.halo_transfers() {
            // Ghost side determines which slots cross this cut direction.
            let ghost_left = tr.dst_lx == 0;
            let dir = if ghost_left { -1 } else { 1 };
            let slots: Vec<usize> = (0..L::Q).filter(|&s| L::C[s][0] == dir).collect();
            let bytes = (self.decomp.column_fluid_count(tr.gx) * slots.len() * 8) as u64;
            // Post reverses the roles: the ghost holder sends back to the
            // column owner.
            let (from, to) = match phase {
                Phase::Pre => (tr.from, tr.to),
                Phase::Post => (tr.to, tr.from),
            };
            transfer_with_retry(&self.mg, from, to, bytes, &self.retry, &self.halo_retries)?;
            let owner = &self.shards[tr.from];
            let holder = &self.shards[tr.to];
            let (on, hn) = (owner.geom.len(), holder.geom.len());
            for z in 0..owner.geom.nz {
                for y in 0..owner.geom.ny {
                    if !owner.geom.node(tr.src_lx, y, z).is_fluid_like() {
                        continue;
                    }
                    let oi = owner.geom.idx(tr.src_lx, y, z);
                    let hi = holder.geom.idx(tr.dst_lx, y, z);
                    for &s in &slots {
                        match phase {
                            Phase::Pre => holder.a.set(s * hn + hi, owner.a.get(s * on + oi)),
                            Phase::Post => {
                                // Only slots a Fluid node actually pushed:
                                // where the pushing cell across the cut is
                                // solid or absent, the owner stored this
                                // slot itself via the local bounce rules.
                                let c = L::C[s];
                                let pusher =
                                    holder.geom.neighbor(tr.dst_lx, y, z, [-c[0], -c[1], -c[2]]);
                                let pushed = pusher.is_some_and(|(px, py, pz)| {
                                    matches!(holder.geom.node(px, py, pz), NodeType::Fluid)
                                });
                                if pushed {
                                    owner.a.set(s * on + oi, holder.a.get(s * hn + hi));
                                }
                            }
                        }
                    }
                }
            }
            out.push((from, to, bytes));
        }
        Ok(out)
    }

    /// Advance `steps` timesteps, then flush a final monitor sample.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
        self.finish_monitor();
    }

    /// Force a final monitor sample at the current step.
    pub fn finish_monitor(&mut self) {
        if self.monitor.is_none() {
            return;
        }
        let (rho, u) = self.macro_fields();
        let s = self.monitor.as_mut().unwrap().finish(self.t, &rho, &u);
        if let (Some(s), Some(o)) = (s, self.mg.obs()) {
            let labels = [("pattern", "multi-aa-st")];
            o.metrics.gauge_set("monitor_mass", &labels, s.mass);
            o.metrics.gauge_set("monitor_max_u", &labels, s.max_u);
            o.tracer
                .instant("monitor", "flush", &[("step", s.step.to_string())]);
        }
    }

    /// Completed timesteps.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The global geometry.
    pub fn geom(&self) -> &Geometry {
        self.decomp.global()
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.shards.len()
    }

    /// The interconnect (link byte counters, report).
    pub fn interconnect(&self) -> &MultiGpu {
        &self.mg
    }

    /// Modeled schedule timing (the exchange is always exposed — AA cannot
    /// overlap it with the in-place launch).
    pub fn stats(&self) -> &OverlapStats {
        &self.stats
    }

    /// Analytic interconnect traffic of one two-step AA cycle: each cut
    /// direction moves its crossing slots twice (pre + post) per stream
    /// half-step, and the collide half-step moves nothing.
    pub fn halo_bytes_per_cycle(&self) -> u64 {
        self.decomp
            .halo_transfers()
            .iter()
            .map(|tr| {
                let dir = if tr.dst_lx == 0 { -1 } else { 1 };
                let crossing = (0..L::Q).filter(|&s| L::C[s][0] == dir).count();
                2 * (self.decomp.column_fluid_count(tr.gx) * crossing * 8) as u64
            })
            .sum()
    }

    /// Distribution at a global node, un-permuted to natural direction
    /// order regardless of the current parity.
    pub fn f_at(&self, x: usize, y: usize, z: usize) -> Vec<f64> {
        let r = self.decomp.owner_of(x);
        let sh = &self.shards[r];
        let lx = sh.owned_lo + (x - self.decomp.slab(r).x0);
        let ln = sh.geom.len();
        let idx = sh.geom.idx(lx, y, z);
        (0..L::Q)
            .map(|i| sh.a.get(aa_slot::<L>(self.t, i) * ln + idx))
            .collect()
    }

    /// Moments at a global node.
    pub fn moments_at(&self, x: usize, y: usize, z: usize) -> Moments {
        Moments::from_f::<L>(&self.f_at(x, y, z))
    }

    /// Global density and velocity fields (solid nodes report zero),
    /// gathered from the owning shards through the parity slot map.
    pub fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>) {
        let g = self.decomp.global();
        let mut rho_out = vec![0.0; g.len()];
        let mut u_out = vec![[0.0; 3]; g.len()];
        for (idx, rho_o) in rho_out.iter_mut().enumerate() {
            if !g.node_at(idx).is_fluid_like() {
                continue;
            }
            let (x, y, z) = g.coords(idx);
            let r = self.decomp.owner_of(x);
            let sh = &self.shards[r];
            let lx = sh.owned_lo + (x - self.decomp.slab(r).x0);
            let ln = sh.geom.len();
            let lidx = sh.geom.idx(lx, y, z);
            let mut rho = 0.0;
            let mut j = [0.0f64; 3];
            for i in 0..L::Q {
                let fi = sh.a.get(aa_slot::<L>(self.t, i) * ln + lidx);
                let c = L::cf(i);
                rho += fi;
                j[0] += c[0] * fi;
                j[1] += c[1] * fi;
                j[2] += c[2] * fi;
            }
            let inv_rho = 1.0 / rho;
            *rho_o = rho;
            u_out[idx] = [j[0] * inv_rho, j[1] * inv_rho, j[2] * inv_rho];
        }
        (rho_out, u_out)
    }

    /// Global velocity field (solid nodes report zero).
    pub fn velocity_field(&self) -> Vec<[f64; 3]> {
        self.macro_fields().1
    }

    /// Global density field (solid nodes report zero).
    pub fn density_field(&self) -> Vec<f64> {
        self.macro_fields().0
    }

    /// FNV-1a checksum of the global macroscopic fields (bitwise).
    pub fn field_checksum(&self) -> u64 {
        let (rho, u) = self.macro_fields();
        lbm_core::io::field_checksum(&rho, &u)
    }

    /// Serialize the full sharded state (ghost columns included). The
    /// flavor tag carries the step parity, so a restore can only land on
    /// the half of the AA cycle the snapshot was taken at.
    pub fn checkpoint(&self) -> Vec<u8> {
        let g = self.decomp.global();
        let flavor = lbm_core::io::parity_flavor("aa-st-multi", self.t);
        let mut w = CheckpointWriter::new(&flavor);
        w.put_u64(g.nx as u64)
            .put_u64(g.ny as u64)
            .put_u64(g.nz as u64)
            .put_u64(L::Q as u64)
            .put_u64(self.shards.len() as u64)
            .put_u64(self.t)
            .put_u64(self.stats.steps)
            .put_f64(self.stats.boundary_s)
            .put_f64(self.stats.interior_s)
            .put_f64(self.stats.exchange_s)
            .put_f64(self.stats.bc_s)
            .put_f64(self.stats.hidden_s)
            .put_f64(self.stats.total_s);
        for sh in &self.shards {
            w.put_f64s(&sh.a.snapshot());
        }
        w.finish()
    }

    /// Restore a [`MultiAaStSim::checkpoint`] snapshot on an identically
    /// configured simulation. The parity baked into the flavor tag is
    /// cross-checked against the stored step counter.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let g = self.decomp.global();
        let (mut r, which) =
            CheckpointReader::open_any(bytes, &["aa-st-multi+even", "aa-st-multi+odd"])?;
        r.expect_u64(g.nx as u64, "nx")?;
        r.expect_u64(g.ny as u64, "ny")?;
        r.expect_u64(g.nz as u64, "nz")?;
        r.expect_u64(L::Q as u64, "Q")?;
        r.expect_u64(self.shards.len() as u64, "shard count")?;
        let t = r.take_u64()?;
        if t % 2 != which as u64 {
            return Err(CheckpointError::Mismatch(format!(
                "flavor parity ({}) disagrees with stored step counter {t}",
                if which == 0 { "even" } else { "odd" }
            )));
        }
        let stats = OverlapStats {
            steps: r.take_u64()?,
            boundary_s: r.take_f64()?,
            interior_s: r.take_f64()?,
            exchange_s: r.take_f64()?,
            bc_s: r.take_f64()?,
            hidden_s: r.take_f64()?,
            total_s: r.take_f64()?,
        };
        for sh in &mut self.shards {
            let n = L::Q * sh.geom.len();
            let data = r.take_f64s(n)?;
            for (i, v) in data.iter().enumerate() {
                sh.a.set(i, *v);
            }
        }
        self.t = t;
        self.stats = stats;
        self.post_pending = false;
        if let Some(m) = self.monitor.as_mut() {
            m.rollback_to(self.t);
        }
        Ok(())
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Phase {
    Pre,
    Post,
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_core::collision::{Bgk, Projective};
    use lbm_gpu::AaStSim;
    use lbm_lattice::{D2Q9, D3Q19};

    fn shear_init(x: usize, y: usize, z: usize) -> (f64, [f64; 3]) {
        (
            1.0 + 0.01 * ((x + 2 * y + z) as f64 * 0.3).sin(),
            [
                0.03 * ((y + z) as f64 * 0.6).sin(),
                0.01 * (x as f64 * 0.4).cos(),
                0.0,
            ],
        )
    }

    /// Lid-driven-style domain: periodic x, wall bottom, moving lid top —
    /// exercises the MovingWall gain rules at the cut columns.
    fn lid_geom(nx: usize, ny: usize) -> Geometry {
        let mut g = Geometry::walls_y_periodic_x(nx, ny);
        for x in 0..nx {
            g.set(x, ny - 1, 0, NodeType::MovingWall([0.05, 0.0, 0.0]));
        }
        g
    }

    /// Sharded AA is bitwise identical to single-device AA at *every* step
    /// count — both parities — including MovingWall gains at the cuts.
    #[test]
    fn multi_matches_single_bitwise_both_parities_2d() {
        for steps in [7usize, 8] {
            let geom = lid_geom(16, 8);
            let mut single: AaStSim<D2Q9, _> =
                AaStSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8))
                    .with_cpu_threads(2);
            single.init_with(shear_init);
            let mut multi: MultiAaStSim<D2Q9, _> =
                MultiAaStSim::new(DeviceSpec::v100(), geom, Projective::new(0.8), 3)
                    .with_cpu_threads(2);
            multi.init_with(shear_init);
            single.run(steps);
            multi.run(steps);
            assert_eq!(
                single.field_checksum(),
                multi.field_checksum(),
                "diverged at {steps} steps"
            );
            let (us, um) = (single.velocity_field(), multi.velocity_field());
            for (a, b) in us.iter().zip(&um) {
                for k in 0..3 {
                    assert_eq!(a[k], b[k], "sharding changed the arithmetic");
                }
            }
        }
    }

    /// 3D walled duct across 2 devices, odd and even step counts.
    #[test]
    fn multi_matches_single_bitwise_3d() {
        let mut geom = Geometry::new(12, 7, 7, [true, false, false]);
        for z in 0..7 {
            for x in 0..12 {
                geom.set(x, 0, z, NodeType::Wall);
                geom.set(x, 6, z, NodeType::Wall);
            }
        }
        for y in 0..7 {
            for x in 0..12 {
                geom.set(x, y, 0, NodeType::Wall);
                geom.set(x, y, 6, NodeType::Wall);
            }
        }
        for steps in [5usize, 6] {
            let mut single: AaStSim<D3Q19, _> =
                AaStSim::new(DeviceSpec::mi100(), geom.clone(), Bgk::new(0.7)).with_cpu_threads(2);
            single.init_with(shear_init);
            let mut multi: MultiAaStSim<D3Q19, _> =
                MultiAaStSim::new(DeviceSpec::mi100(), geom.clone(), Bgk::new(0.7), 2)
                    .with_cpu_threads(2);
            multi.init_with(shear_init);
            single.run(steps);
            multi.run(steps);
            assert_eq!(single.field_checksum(), multi.field_checksum());
        }
    }

    /// Per-cycle halo traffic: only the cut-crossing slots move (3 of 9
    /// for D2Q9), twice per stream step — 3× less wire than sharded ST
    /// over a two-step cycle. The link tally matches the analytic figure
    /// exactly, and the footprint is half of two-lattice sharding.
    #[test]
    fn halo_bytes_and_footprint_are_exact() {
        let geom = Geometry::walls_y_periodic_x(16, 10);
        let mut multi: MultiAaStSim<D2Q9, _> =
            MultiAaStSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8), 2)
                .with_cpu_threads(2);
        multi.run(4); // two full cycles
                      // n = 2 periodic: 2 cuts → 4 directed transfers, each crossing 3
                      // slots over 8 fluid column nodes, pre + post per stream step.
        let per_cycle = 2 * 4 * 8 * 3 * 8;
        assert_eq!(multi.halo_bytes_per_cycle(), per_cycle as u64);
        assert_eq!(
            multi.interconnect().total_link_bytes(),
            2 * per_cycle as u64
        );
        // ST exchanges full-Q columns every step: 2 · 4 · 8 · 9 · 8 per
        // cycle — exactly 3× the AA wire traffic.
        let st_cycle = 2 * 4 * 8 * 9 * 8;
        assert_eq!(3 * multi.halo_bytes_per_cycle(), st_cycle as u64);
        // One lattice per shard: shard lattices total (16 + 2·2) · 10 · 9
        // doubles (each shard owns 8 columns + 2 ghosts).
        assert_eq!(multi.footprint_bytes(), 20 * 10 * 9 * 8);
    }

    /// Checkpoint at odd parity restores bitwise mid-cycle; a two-lattice
    /// multi-ST snapshot is rejected as a foreign flavor.
    #[test]
    fn checkpoint_round_trips_at_odd_parity() {
        let geom = lid_geom(12, 6);
        let mk = || {
            let mut s: MultiAaStSim<D2Q9, _> =
                MultiAaStSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8), 2)
                    .with_cpu_threads(2);
            s.init_with(shear_init);
            s
        };
        let mut a = mk();
        a.run(3);
        let snap = a.checkpoint();
        a.run(4);
        let mut b = mk();
        b.restore(&snap).unwrap();
        assert_eq!(b.steps(), 3);
        b.run(4);
        assert_eq!(a.field_checksum(), b.field_checksum());

        let st: crate::MultiStSim<D2Q9, _> =
            crate::MultiStSim::new(DeviceSpec::v100(), geom.clone(), Projective::new(0.8), 2);
        assert!(matches!(
            b.restore(&st.checkpoint()),
            Err(CheckpointError::WrongFlavor { .. })
        ));
    }

    /// Executor determinism: identical fields and link traffic under 1, 3,
    /// and 8 CPU threads per device with forced pooling.
    #[test]
    fn executor_determinism_across_thread_counts() {
        let run = |threads: usize| {
            let geom = lid_geom(16, 8);
            let mut multi: MultiAaStSim<D2Q9, _> =
                MultiAaStSim::new(DeviceSpec::v100(), geom, Projective::new(0.8), 4)
                    .with_cpu_threads(threads)
                    .with_parallel_threshold(0);
            multi.init_with(shear_init);
            multi.run(8);
            (
                multi.velocity_field(),
                multi.density_field(),
                multi.interconnect().total_link_bytes(),
            )
        };
        let base = run(1);
        for threads in [3, 8] {
            let got = run(threads);
            assert_eq!(base, got, "sharded AA diverges at {threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "does not support inlet/outlet")]
    fn rejects_inlet_outlet_geometries() {
        let geom = Geometry::channel_2d(12, 6, 0.04);
        let _ = MultiAaStSim::<D2Q9, _>::new(DeviceSpec::v100(), geom, Bgk::new(0.8), 2);
    }
}
