//! [`Simulation`] implementations for the three slab-sharded drivers.
//!
//! The multi-device drivers differ from the single-device ones in two ways
//! the trait has to surface: a step can fail when an inter-device link goes
//! down (`try_step`), and halo exchanges may be retried under a
//! [`gpu_sim::interconnect::HaloRetryPolicy`] (`halo_retries`). Link errors
//! are mirrored into the substrate-agnostic [`lbm_core::StepError`] so
//! callers in `lbm-core` / `lbm-serve` never need to name `gpu_sim` types.

use crate::{
    MultiAaStSim, MultiMrSim2D, MultiMrSim3D, MultiSparseMrSim, MultiSparseStSim, MultiStSim,
};
use gpu_sim::interconnect::LinkError;
use lbm_core::collision::Collision;
use lbm_core::io::CheckpointError;
use lbm_core::sim::Simulation;
use lbm_core::StepError;
use lbm_lattice::Lattice;
use std::sync::Arc;

/// Mirror a substrate [`LinkError`] into the core [`StepError`].
///
/// A free function rather than `From`: both types live in other crates, so
/// the orphan rule forbids the impl.
pub fn step_error_from_link(e: LinkError) -> StepError {
    match e {
        LinkError::Down {
            from,
            to,
            permanent,
        } => StepError::Link {
            from,
            to,
            permanent,
        },
        LinkError::NoRoute { from, to } => StepError::NoRoute { from, to },
    }
}

macro_rules! impl_simulation_multi {
    ($ty:ty, [$($gen:tt)*]) => {
        impl<$($gen)*> Simulation for $ty {
            fn step(&mut self) {
                self.step()
            }
            fn try_step(&mut self) -> Result<(), StepError> {
                self.try_step().map_err(step_error_from_link)
            }
            fn steps(&self) -> u64 {
                self.steps()
            }
            fn checkpoint(&self) -> Vec<u8> {
                self.checkpoint()
            }
            fn restore(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
                self.restore(bytes)
            }
            fn field_checksum(&self) -> u64 {
                self.field_checksum()
            }
            fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>) {
                Self::macro_fields(self)
            }
            fn set_obs(&mut self, obs: Arc<obs::Obs>) {
                self.set_obs(obs)
            }
            fn set_trace_ctx(&mut self, ctx: Option<obs::TraceCtx>) {
                self.set_trace_ctx(ctx)
            }
            fn monitor_ok(&self) -> bool {
                self.monitor().is_none_or(|m| m.is_ok())
            }
            fn finish_monitor(&mut self) {
                self.finish_monitor()
            }
            fn halo_retries(&self) -> u64 {
                self.halo_retries()
            }
            fn fluid_nodes(&self) -> usize {
                self.geom().fluid_count()
            }
            fn footprint_bytes(&self) -> usize {
                self.footprint_bytes()
            }
        }
    };
}

impl_simulation_multi!(MultiStSim<L, C>, [L: Lattice, C: Collision<L>]);
impl_simulation_multi!(MultiAaStSim<L, C>, [L: Lattice, C: Collision<L>]);
impl_simulation_multi!(MultiMrSim2D<L>, [L: Lattice]);
impl_simulation_multi!(MultiMrSim3D<L>, [L: Lattice]);
impl_simulation_multi!(MultiSparseStSim<L, C>, [L: Lattice, C: Collision<L>]);
impl_simulation_multi!(MultiSparseMrSim<L>, [L: Lattice]);

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use lbm_core::sim::Simulation;
    use lbm_core::Geometry;
    use lbm_gpu::MrScheme;
    use lbm_lattice::D2Q9;

    #[test]
    fn link_error_mirrors_into_step_error() {
        let e = step_error_from_link(LinkError::Down {
            from: 0,
            to: 1,
            permanent: true,
        });
        assert!(matches!(
            e,
            StepError::Link {
                from: 0,
                to: 1,
                permanent: true
            }
        ));
        let e = step_error_from_link(LinkError::NoRoute { from: 2, to: 0 });
        assert!(matches!(e, StepError::NoRoute { from: 2, to: 0 }));
    }

    /// A sharded MR driver behind `dyn Simulation` matches its inherent run.
    #[test]
    fn trait_object_drives_multi_mr2d() {
        let geom = Geometry::walls_y_periodic_x(16, 8);
        let mk = || {
            let mut s: MultiMrSim2D<D2Q9> = MultiMrSim2D::new(
                DeviceSpec::v100(),
                geom.clone(),
                MrScheme::projective(),
                0.9,
                2,
            )
            .with_cpu_threads(1);
            s.init_with(|x, y, _| (1.0, [0.03 * (y as f64 * 0.5).sin(), 0.01 * x as f64, 0.0]));
            s
        };
        let mut inherent = mk();
        inherent.run(4);

        let mut boxed: Box<dyn Simulation + Send> = Box::new(mk());
        for _ in 0..4 {
            boxed.try_step().unwrap();
        }
        assert_eq!(boxed.steps(), 4);
        assert_eq!(boxed.field_checksum(), inherent.field_checksum());
        assert_eq!(boxed.halo_retries(), 0);
    }
}
