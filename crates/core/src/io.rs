//! Field output: CSV profiles and legacy-ASCII VTK structured points, for
//! inspecting example results with standard tools.

use crate::geometry::Geometry;
use std::io::{self, Write};

/// Write a velocity/density field as CSV rows `x,y,z,rho,ux,uy,uz`.
pub fn write_csv<W: Write>(
    w: &mut W,
    geom: &Geometry,
    rho: &[f64],
    u: &[[f64; 3]],
) -> io::Result<()> {
    writeln!(w, "x,y,z,rho,ux,uy,uz")?;
    for idx in 0..geom.len() {
        let (x, y, z) = geom.coords(idx);
        writeln!(
            w,
            "{x},{y},{z},{:.9},{:.9},{:.9},{:.9}",
            rho[idx], u[idx][0], u[idx][1], u[idx][2]
        )?;
    }
    Ok(())
}

/// Write a legacy-ASCII VTK `STRUCTURED_POINTS` dataset with density and
/// velocity point data (openable with ParaView).
pub fn write_vtk<W: Write>(
    w: &mut W,
    geom: &Geometry,
    rho: &[f64],
    u: &[[f64; 3]],
) -> io::Result<()> {
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "lbm-mr field output")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET STRUCTURED_POINTS")?;
    writeln!(w, "DIMENSIONS {} {} {}", geom.nx, geom.ny, geom.nz)?;
    writeln!(w, "ORIGIN 0 0 0")?;
    writeln!(w, "SPACING 1 1 1")?;
    writeln!(w, "POINT_DATA {}", geom.len())?;
    writeln!(w, "SCALARS density double 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for v in rho {
        writeln!(w, "{v:.9}")?;
    }
    writeln!(w, "VECTORS velocity double")?;
    for v in u {
        writeln!(w, "{:.9} {:.9} {:.9}", v[0], v[1], v[2])?;
    }
    Ok(())
}

/// Write a single column profile `y,value` — handy for plotting Poiseuille
/// profiles.
pub fn write_profile<W: Write>(w: &mut W, values: &[(f64, f64)]) -> io::Result<()> {
    writeln!(w, "coord,value")?;
    for (c, v) in values {
        writeln!(w, "{c},{v:.9}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig() -> (Geometry, Vec<f64>, Vec<[f64; 3]>) {
        let geom = Geometry::periodic_2d(2, 2);
        let rho = vec![1.0, 1.1, 0.9, 1.0];
        let u = vec![[0.1, 0.0, 0.0]; 4];
        (geom, rho, u)
    }

    #[test]
    fn csv_has_header_and_rows() {
        let (g, rho, u) = rig();
        let mut buf = Vec::new();
        write_csv(&mut buf, &g, &rho, &u).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("x,y,z,"));
        assert!(lines[1].starts_with("0,0,0,1.0"));
    }

    #[test]
    fn vtk_structure() {
        let (g, rho, u) = rig();
        let mut buf = Vec::new();
        write_vtk(&mut buf, &g, &rho, &u).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("DATASET STRUCTURED_POINTS"));
        assert!(s.contains("DIMENSIONS 2 2 1"));
        assert!(s.contains("SCALARS density"));
        assert!(s.contains("VECTORS velocity"));
    }

    #[test]
    fn profile_format() {
        let mut buf = Vec::new();
        write_profile(&mut buf, &[(0.0, 0.5), (1.0, 0.25)]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.lines().count(), 3);
    }
}
