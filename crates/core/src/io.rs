//! Field output (CSV profiles, legacy-ASCII VTK structured points) and the
//! checkpoint codec the resilience layer snapshots driver state through.
//!
//! # Checkpoint format
//!
//! A checkpoint is a little-endian binary blob:
//!
//! ```text
//! magic   [u8; 4]   = "LBCK"
//! version u32       = 1
//! flavor  u64       = FNV-1a of the producing driver's flavor string
//! len     u64       = payload length in bytes
//! fnv     u64       = FNV-1a of the payload bytes
//! payload [u8; len] = driver-defined sequence of u64 / f64 words
//! ```
//!
//! The payload is written and read as raw IEEE-754 bit patterns
//! ([`f64::to_bits`]), so a restore reproduces the saved state *bitwise* —
//! the property the recovery loop's replay-equivalence guarantee rests on.
//! The flavor tag prevents restoring, say, an MR snapshot into an ST
//! driver; the payload checksum catches torn or corrupted snapshots.

use crate::geometry::Geometry;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

// ---------------------------------------------------------------------------
// FNV-1a checksums
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental 64-bit FNV-1a hasher (std-only; used for checkpoint payload
/// checksums and field fingerprints).
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Bitwise fingerprint of a macroscopic field: FNV-1a over the IEEE-754
/// bit patterns of `rho` then `u`, in index order. Two runs whose final
/// fields hash equal are bitwise-identical — the acceptance criterion for
/// fault recovery.
pub fn field_checksum(rho: &[f64], u: &[[f64; 3]]) -> u64 {
    let mut h = Fnv64::new();
    for v in rho {
        h.update(&v.to_bits().to_le_bytes());
    }
    for v in u {
        for c in v {
            h.update(&c.to_bits().to_le_bytes());
        }
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Checkpoint codec
// ---------------------------------------------------------------------------

/// Leading magic of every checkpoint blob.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"LBCK";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint failed to restore.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The format version is not [`CHECKPOINT_VERSION`].
    BadVersion(u32),
    /// The blob was produced by a different driver flavor.
    WrongFlavor { expected: String, found: u64 },
    /// The blob ends before its declared payload does.
    Truncated,
    /// The payload checksum does not match — corrupted snapshot.
    ChecksumMismatch,
    /// The payload disagrees with the restoring driver's configuration
    /// (dimensions, lattice, shard count, …).
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(
                f,
                "unsupported checkpoint version {v} (expected {CHECKPOINT_VERSION})"
            ),
            CheckpointError::WrongFlavor { expected, found } => write!(
                f,
                "checkpoint flavor mismatch: expected \"{expected}\", found tag {found:#x}"
            ),
            CheckpointError::Truncated => write!(f, "truncated checkpoint"),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint payload checksum mismatch"),
            CheckpointError::Mismatch(s) => write!(f, "checkpoint/driver mismatch: {s}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Builder for a checkpoint blob: append words, then [`finish`] to get the
/// framed, checksummed bytes.
///
/// [`finish`]: CheckpointWriter::finish
pub struct CheckpointWriter {
    flavor: u64,
    payload: Vec<u8>,
}

impl CheckpointWriter {
    /// Start a checkpoint for the given driver flavor string (e.g.
    /// `"st-sim"`, `"multi-mr2d"`).
    pub fn new(flavor: &str) -> Self {
        CheckpointWriter {
            flavor: fnv1a(flavor.as_bytes()),
            payload: Vec::new(),
        }
    }

    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.payload.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `f64` as its raw bit pattern (bitwise round trip).
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.put_u64(v.to_bits())
    }

    /// Append a whole slice of `f64`s as raw bit patterns.
    pub fn put_f64s(&mut self, vs: &[f64]) -> &mut Self {
        self.payload.reserve(vs.len() * 8);
        for v in vs {
            self.payload.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self
    }

    /// Frame the payload: magic, version, flavor tag, length, checksum.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 32);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.flavor.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Flavor string for a parity-tagged checkpoint: in-place (single-lattice)
/// drivers suffix their base flavor with the step parity, so a restore can
/// only land on the matching half of the two-step AA cycle. `"aa-st"` at
/// step 7 becomes `"aa-st+odd"`.
pub fn parity_flavor(base: &str, steps: u64) -> String {
    format!(
        "{base}+{}",
        if steps.is_multiple_of(2) {
            "even"
        } else {
            "odd"
        }
    )
}

/// Sequential reader over a validated checkpoint payload.
#[derive(Debug)]
pub struct CheckpointReader<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> CheckpointReader<'a> {
    /// Validate framing, version, flavor, and checksum; on success return a
    /// reader positioned at the start of the payload.
    pub fn open(bytes: &'a [u8], flavor: &str) -> Result<Self, CheckpointError> {
        if bytes.len() < 32 {
            return Err(if bytes.starts_with(&CHECKPOINT_MAGIC) || bytes.len() < 4 {
                CheckpointError::Truncated
            } else {
                CheckpointError::BadMagic
            });
        }
        if bytes[..4] != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let found = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        if found != fnv1a(flavor.as_bytes()) {
            return Err(CheckpointError::WrongFlavor {
                expected: flavor.to_string(),
                found,
            });
        }
        let len = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        let sum = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        let payload = bytes.get(32..32 + len).ok_or(CheckpointError::Truncated)?;
        if fnv1a(payload) != sum {
            return Err(CheckpointError::ChecksumMismatch);
        }
        Ok(CheckpointReader { payload, pos: 0 })
    }

    /// Like [`CheckpointReader::open`], but accept any of several flavor
    /// strings; returns the reader plus the index of the flavor that
    /// matched. Parity-tagged drivers use this to discover which half-cycle
    /// a snapshot was taken at before committing to a restore path.
    pub fn open_any(bytes: &'a [u8], flavors: &[&str]) -> Result<(Self, usize), CheckpointError> {
        let mut last = CheckpointError::BadMagic;
        for (k, flavor) in flavors.iter().enumerate() {
            match Self::open(bytes, flavor) {
                Ok(r) => return Ok((r, k)),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    pub fn take_u64(&mut self) -> Result<u64, CheckpointError> {
        let bytes = self
            .payload
            .get(self.pos..self.pos + 8)
            .ok_or(CheckpointError::Truncated)?;
        self.pos += 8;
        Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    pub fn take_f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Read `n` raw-bit `f64`s.
    pub fn take_f64s(&mut self, n: usize) -> Result<Vec<f64>, CheckpointError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.take_f64()?);
        }
        Ok(out)
    }

    /// Expect a specific `u64` (configuration guards: dims, Q, M, …).
    pub fn expect_u64(&mut self, expected: u64, what: &str) -> Result<(), CheckpointError> {
        let got = self.take_u64()?;
        if got != expected {
            return Err(CheckpointError::Mismatch(format!(
                "{what}: checkpoint has {got}, driver has {expected}"
            )));
        }
        Ok(())
    }

    /// Unconsumed payload bytes (0 after a complete read-back).
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }
}

/// Write a velocity/density field as CSV rows `x,y,z,rho,ux,uy,uz`.
pub fn write_csv<W: Write>(
    w: &mut W,
    geom: &Geometry,
    rho: &[f64],
    u: &[[f64; 3]],
) -> io::Result<()> {
    writeln!(w, "x,y,z,rho,ux,uy,uz")?;
    for idx in 0..geom.len() {
        let (x, y, z) = geom.coords(idx);
        writeln!(
            w,
            "{x},{y},{z},{:.9},{:.9},{:.9},{:.9}",
            rho[idx], u[idx][0], u[idx][1], u[idx][2]
        )?;
    }
    Ok(())
}

/// Write a legacy-ASCII VTK `STRUCTURED_POINTS` dataset with density and
/// velocity point data (openable with ParaView).
pub fn write_vtk<W: Write>(
    w: &mut W,
    geom: &Geometry,
    rho: &[f64],
    u: &[[f64; 3]],
) -> io::Result<()> {
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "lbm-mr field output")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET STRUCTURED_POINTS")?;
    writeln!(w, "DIMENSIONS {} {} {}", geom.nx, geom.ny, geom.nz)?;
    writeln!(w, "ORIGIN 0 0 0")?;
    writeln!(w, "SPACING 1 1 1")?;
    writeln!(w, "POINT_DATA {}", geom.len())?;
    writeln!(w, "SCALARS density double 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for v in rho {
        writeln!(w, "{v:.9}")?;
    }
    writeln!(w, "VECTORS velocity double")?;
    for v in u {
        writeln!(w, "{:.9} {:.9} {:.9}", v[0], v[1], v[2])?;
    }
    Ok(())
}

/// Write a single column profile `y,value` — handy for plotting Poiseuille
/// profiles.
pub fn write_profile<W: Write>(w: &mut W, values: &[(f64, f64)]) -> io::Result<()> {
    writeln!(w, "coord,value")?;
    for (c, v) in values {
        writeln!(w, "{c},{v:.9}")?;
    }
    Ok(())
}

/// Write a CSV field to `path` through a [`BufWriter`] — one syscall per
/// 8 KiB instead of one per node (the satellite fix for the examples'
/// bare-`File` writers).
pub fn write_csv_file<P: AsRef<Path>>(
    path: P,
    geom: &Geometry,
    rho: &[f64],
    u: &[[f64; 3]],
) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_csv(&mut w, geom, rho, u)?;
    w.flush()
}

/// Write a VTK field to `path` through a [`BufWriter`]; see
/// [`write_csv_file`].
pub fn write_vtk_file<P: AsRef<Path>>(
    path: P,
    geom: &Geometry,
    rho: &[f64],
    u: &[[f64; 3]],
) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_vtk(&mut w, geom, rho, u)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig() -> (Geometry, Vec<f64>, Vec<[f64; 3]>) {
        let geom = Geometry::periodic_2d(2, 2);
        let rho = vec![1.0, 1.1, 0.9, 1.0];
        let u = vec![[0.1, 0.0, 0.0]; 4];
        (geom, rho, u)
    }

    #[test]
    fn csv_has_header_and_rows() {
        let (g, rho, u) = rig();
        let mut buf = Vec::new();
        write_csv(&mut buf, &g, &rho, &u).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("x,y,z,"));
        assert!(lines[1].starts_with("0,0,0,1.0"));
    }

    #[test]
    fn vtk_structure() {
        let (g, rho, u) = rig();
        let mut buf = Vec::new();
        write_vtk(&mut buf, &g, &rho, &u).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("DATASET STRUCTURED_POINTS"));
        assert!(s.contains("DIMENSIONS 2 2 1"));
        assert!(s.contains("SCALARS density"));
        assert!(s.contains("VECTORS velocity"));
    }

    #[test]
    fn profile_format() {
        let mut buf = Vec::new();
        write_profile(&mut buf, &[(0.0, 0.5), (1.0, 0.25)]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.lines().count(), 3);
    }

    /// The io round-trip satellite: re-parse the CSV and check every value
    /// to the printed precision (9 decimal places).
    #[test]
    fn csv_round_trips_to_printed_precision() {
        let geom = Geometry::periodic_2d(3, 2);
        let rho: Vec<f64> = (0..6)
            .map(|i| 1.0 + 0.01 * (i as f64 * 0.7).sin())
            .collect();
        let u: Vec<[f64; 3]> = (0..6)
            .map(|i| {
                [
                    0.05 * (i as f64 * 0.3).cos(),
                    -0.02 * (i as f64 * 1.1).sin(),
                    0.0,
                ]
            })
            .collect();
        let mut buf = Vec::new();
        write_csv(&mut buf, &geom, &rho, &u).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let mut rows = 0;
        for line in s.lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 7, "bad row: {line}");
            let (x, y, z): (usize, usize, usize) = (
                cols[0].parse().unwrap(),
                cols[1].parse().unwrap(),
                cols[2].parse().unwrap(),
            );
            let idx = geom.idx(x, y, z);
            let vals: Vec<f64> = cols[3..].iter().map(|c| c.parse().unwrap()).collect();
            let expect = [rho[idx], u[idx][0], u[idx][1], u[idx][2]];
            for (got, want) in vals.iter().zip(expect) {
                assert!(
                    (got - want).abs() < 5e-10,
                    "reparsed {got} vs written {want} beyond printed precision"
                );
            }
            rows += 1;
        }
        assert_eq!(rows, geom.len());
    }

    /// Buffered file helpers produce byte-identical output to the in-memory
    /// writers.
    #[test]
    fn buffered_file_writers_match_in_memory() {
        let (g, rho, u) = rig();
        let dir = std::env::temp_dir().join("lbm_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv_path = dir.join("field.csv");
        let vtk_path = dir.join("field.vtk");
        write_csv_file(&csv_path, &g, &rho, &u).unwrap();
        write_vtk_file(&vtk_path, &g, &rho, &u).unwrap();
        let mut mem_csv = Vec::new();
        write_csv(&mut mem_csv, &g, &rho, &u).unwrap();
        let mut mem_vtk = Vec::new();
        write_vtk(&mut mem_vtk, &g, &rho, &u).unwrap();
        assert_eq!(std::fs::read(&csv_path).unwrap(), mem_csv);
        assert_eq!(std::fs::read(&vtk_path).unwrap(), mem_vtk);
        let _ = std::fs::remove_file(csv_path);
        let _ = std::fs::remove_file(vtk_path);
    }

    #[test]
    fn checkpoint_codec_round_trips_bitwise() {
        let fields = [1.0, -0.0, f64::MIN_POSITIVE, 1.0 / 3.0, -2.5e300];
        let mut w = CheckpointWriter::new("test-driver");
        w.put_u64(42).put_f64(0.1 + 0.2).put_f64s(&fields);
        let blob = w.finish();
        let mut r = CheckpointReader::open(&blob, "test-driver").unwrap();
        assert_eq!(r.take_u64().unwrap(), 42);
        assert_eq!(r.take_f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        let back = r.take_f64s(fields.len()).unwrap();
        for (a, b) in back.iter().zip(&fields) {
            assert_eq!(a.to_bits(), b.to_bits(), "bitwise round trip failed");
        }
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.take_u64(), Err(CheckpointError::Truncated));
    }

    #[test]
    fn checkpoint_rejects_corruption_and_mismatches() {
        let mut w = CheckpointWriter::new("flavor-a");
        w.put_u64(7).put_u64(9);
        let blob = w.finish();

        // Wrong flavor.
        assert!(matches!(
            CheckpointReader::open(&blob, "flavor-b"),
            Err(CheckpointError::WrongFlavor { .. })
        ));
        // Flipped payload byte → checksum mismatch.
        let mut bad = blob.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert_eq!(
            CheckpointReader::open(&bad, "flavor-a").unwrap_err(),
            CheckpointError::ChecksumMismatch
        );
        // Truncated payload.
        assert_eq!(
            CheckpointReader::open(&blob[..blob.len() - 4], "flavor-a").unwrap_err(),
            CheckpointError::Truncated
        );
        // Bad magic.
        let mut nom = blob.clone();
        nom[0] = b'X';
        assert_eq!(
            CheckpointReader::open(&nom, "flavor-a").unwrap_err(),
            CheckpointError::BadMagic
        );
        // Bad version.
        let mut ver = blob.clone();
        ver[4] = 99;
        assert!(matches!(
            CheckpointReader::open(&ver, "flavor-a"),
            Err(CheckpointError::BadVersion(99))
        ));
        // Configuration guard.
        let mut r = CheckpointReader::open(&blob, "flavor-a").unwrap();
        r.expect_u64(7, "q").unwrap();
        assert!(matches!(
            r.expect_u64(10, "nx"),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn parity_flavor_tags_half_cycle() {
        assert_eq!(parity_flavor("aa-st", 0), "aa-st+even");
        assert_eq!(parity_flavor("aa-st", 7), "aa-st+odd");
        assert_eq!(parity_flavor("mr2d-twist", 12), "mr2d-twist+even");
    }

    #[test]
    fn open_any_discovers_the_matching_flavor() {
        let mut w = CheckpointWriter::new("aa-st+odd");
        w.put_u64(3);
        let blob = w.finish();
        let (mut r, which) =
            CheckpointReader::open_any(&blob, &["aa-st+even", "aa-st+odd"]).unwrap();
        assert_eq!(which, 1);
        assert_eq!(r.take_u64().unwrap(), 3);
        // No flavor matches → the error reports the last candidate tried.
        assert!(matches!(
            CheckpointReader::open_any(&blob, &["st", "mr2d"]),
            Err(CheckpointError::WrongFlavor { .. })
        ));
    }

    #[test]
    fn field_checksum_is_bit_sensitive() {
        let rho = vec![1.0, 1.5];
        let u = vec![[0.1, 0.0, 0.0], [0.0, 0.2, 0.0]];
        let a = field_checksum(&rho, &u);
        assert_eq!(a, field_checksum(&rho, &u), "checksum must be stable");
        let mut rho2 = rho.clone();
        rho2[1] = f64::from_bits(rho2[1].to_bits() ^ 1); // one ULP
        assert_ne!(a, field_checksum(&rho2, &u));
        let mut u2 = u.clone();
        u2[0][2] = -0.0; // sign of zero is a bit flip too
        assert_ne!(a, field_checksum(&rho, &u2));
    }
}
