//! 3D specializations of the reference solver (D3Q19 as in the paper's
//! evaluation; D3Q27 for the future-work lattice).

use crate::collision::Collision;
use crate::solver::Solver;
use lbm_lattice::{D3Q19, D3Q27, D3Q39};

/// The D3Q19 reference solver (paper's 3D "ST" implementation).
pub type Solver3D<C> = Solver<D3Q19, C>;

/// Reference solver on the D3Q27 lattice (paper §5 future work).
pub type Solver3DQ27<C> = Solver<D3Q27, C>;

/// Reference solver on the multi-speed D3Q39 lattice (paper §5 future
/// work). Note its different sound speed: ν = (2/3)(τ − ½).
pub type Solver3DQ39<C> = Solver<D3Q39, C>;

/// Convenience constructor mirroring [`Solver::new`].
pub fn solver_3d<C: Collision<D3Q19>>(geom: crate::Geometry, collision: C) -> Solver3D<C> {
    Solver::new(geom, collision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::{Bgk, Projective, Recursive};
    use crate::geometry::Geometry;

    /// A 3D periodic shear wave decays viscously; its decay rate pins the
    /// 3D viscosity relation just like Taylor–Green does in 2D:
    /// u_x(z) = u0 sin(k z) decays as exp(−ν k² t).
    fn shear_wave_decay<C: Collision<D3Q19>>(collision: C, tau: f64) {
        let n = 16;
        let u0 = 0.02;
        let geom = Geometry::periodic_3d(4, 4, n);
        let mut s = Solver3D::new(geom, collision).with_threads(2);
        let k = 2.0 * std::f64::consts::PI / n as f64;
        s.init_with(|_, _, z| (1.0, [u0 * (k * z as f64).sin(), 0.0, 0.0]));
        let amp = |s: &Solver3D<C>| -> f64 {
            let u = s.velocity_field();
            let g = s.geom();
            (0..n)
                .map(|z| u[g.idx(1, 1, z)][0] * (k * z as f64).sin())
                .sum::<f64>()
                * 2.0
                / n as f64
        };
        let a0 = amp(&s);
        let steps = 150;
        s.run(steps);
        let a1 = amp(&s);
        let nu = crate::units::nu_from_tau(tau);
        let expect = (-nu * k * k * steps as f64).exp();
        let got = a1 / a0;
        let rel = (got - expect).abs() / expect;
        assert!(rel < 0.02, "decay {got:.5} vs {expect:.5} (rel {rel:.4})");
    }

    #[test]
    fn shear_wave_bgk() {
        shear_wave_decay(Bgk::new(0.9), 0.9);
    }

    #[test]
    fn shear_wave_projective() {
        shear_wave_decay(Projective::new(0.9), 0.9);
    }

    #[test]
    fn shear_wave_recursive() {
        shear_wave_decay(Recursive::new::<D3Q19>(0.9), 0.9);
    }

    /// The multi-speed D3Q39 lattice reproduces the viscous decay with its
    /// *own* sound speed: ν = c_s²(τ − ½) with c_s² = 2/3 — twice the
    /// single-speed viscosity at equal τ. This pins the multi-speed
    /// machinery (streaming reach 3, per-lattice c_s²) end to end.
    #[test]
    fn q39_shear_wave_multispeed_viscosity() {
        let n = 32;
        let u0 = 0.015;
        let tau = 0.7;
        let geom = Geometry::periodic_3d(6, 6, n);
        let mut s: Solver3DQ39<_> = Solver::new(geom, Bgk::new(tau)).with_threads(2);
        let k = 2.0 * std::f64::consts::PI / n as f64;
        s.init_with(|_, _, z| (1.0, [u0 * (k * z as f64).sin(), 0.0, 0.0]));
        let amp = |s: &Solver3DQ39<Bgk>| -> f64 {
            let u = s.velocity_field();
            let g = s.geom();
            (0..n)
                .map(|z| u[g.idx(2, 2, z)][0] * (k * z as f64).sin())
                .sum::<f64>()
                * 2.0
                / n as f64
        };
        let a0 = amp(&s);
        let steps = 120;
        s.run(steps);
        let a1 = amp(&s);
        let nu = crate::units::nu_from_tau_cs2(tau, 2.0 / 3.0);
        let expect = (-nu * k * k * steps as f64).exp();
        let got = a1 / a0;
        let rel = (got - expect).abs() / expect;
        assert!(
            rel < 0.03,
            "Q39 decay {got:.5} vs {expect:.5} (rel {rel:.4})"
        );
        // Sanity: using the *wrong* (single-speed) viscosity would be far
        // off — the lattice's own c_s² is what matters.
        let wrong = (-crate::units::nu_from_tau(tau) * k * k * steps as f64).exp();
        assert!(
            (got - wrong).abs() / wrong > 0.05,
            "test not discriminating"
        );
    }

    /// D3Q27 runs the same physics (future-work lattice).
    #[test]
    fn q27_shear_wave() {
        let n = 12;
        let u0 = 0.02;
        let geom = Geometry::periodic_3d(4, 4, n);
        let mut s: Solver3DQ27<_> = Solver::new(geom, Recursive::new::<D3Q27>(0.8));
        let k = 2.0 * std::f64::consts::PI / n as f64;
        s.init_with(|_, _, z| (1.0, [u0 * (k * z as f64).sin(), 0.0, 0.0]));
        let m0 = s.mass();
        s.run(50);
        assert!((s.mass() - m0).abs() < 1e-10 * m0);
        // Amplitude decreased.
        let u = s.velocity_field();
        let g = s.geom();
        let peak = u[g.idx(1, 1, n / 4)][0];
        assert!(peak > 0.0 && peak < u0);
    }
}
