//! The standard distribution-representation (ST) reference solver —
//! Algorithm 1 of the paper, generic over lattice and collision operator.
//!
//! Two full lattices are stored in structure-of-arrays layout
//! (`f[dir · n + node]`) and updated with the *pull* scheme: each node
//! gathers post-collision populations from its neighbors' previous state,
//! computes macroscopics, collides, and writes its own post-collision state
//! to the destination lattice. Walls are halfway bounce-back resolved during
//! the gather; inlet/outlet nodes are rebuilt from the finite-difference
//! moment state in a second pass.
//!
//! This is both the performance baseline ("ST") and the numerical ground
//! truth for the GPU-substrate kernels: the MR kernels must reproduce its
//! density and velocity fields to floating-point roundoff when paired with
//! the same (regularized) collision operator.

use crate::boundary::{boundary_node_moments, WallGains};
use crate::collision::Collision;
use crate::geometry::{Geometry, NodeType};
use crate::par::{self, SendPtr};
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;
use std::io::{self, Read, Write};
use std::marker::PhantomData;

/// Upper bound on Q across supported lattices, sizing stack scratch arrays.
pub const MAX_Q: usize = 48;

/// Generic two-lattice pull solver. See the module docs.
pub struct Solver<L: Lattice, C: Collision<L>> {
    geom: Geometry,
    /// Two full SoA lattices; `cur` indexes the one holding the current
    /// post-collision state.
    f: [Vec<f64>; 2],
    cur: usize,
    collision: C,
    threads: usize,
    steps: u64,
    /// Flat indices of inlet/outlet nodes, rebuilt each step in phase 2.
    boundary_nodes: Vec<usize>,
    _lat: PhantomData<L>,
}

impl<L: Lattice, C: Collision<L>> Solver<L, C> {
    /// Create a solver over `geom`, initialized to equilibrium at `ρ = 1`
    /// and zero velocity (inlet nodes start at their prescribed velocity).
    pub fn new(geom: Geometry, collision: C) -> Self {
        assert!(L::Q <= MAX_Q);
        if L::D == 2 {
            assert_eq!(geom.nz, 1, "2D lattice on a 3D domain");
        }
        let n = geom.len();
        let boundary_nodes: Vec<usize> = (0..n)
            .filter(|&i| matches!(geom.node_at(i), NodeType::Inlet(_) | NodeType::Outlet(_)))
            .collect();
        if !boundary_nodes.is_empty() {
            assert!(
                geom.nx >= 5,
                "inlet/outlet boundaries need nx ≥ 5 for the FD stencils"
            );
        }
        let mut s = Solver {
            geom,
            f: [vec![0.0; L::Q * n], vec![0.0; L::Q * n]],
            cur: 0,
            collision,
            threads: par::num_threads(),
            steps: 0,
            boundary_nodes,
            _lat: PhantomData,
        };
        s.init_with(|_, _, _| (1.0, [0.0; 3]));
        s
    }

    /// Set the worker-thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Re-initialize every node to the *operator-consistent* equilibrium of
    /// the given macroscopic field: the collision operator's reconstruction
    /// of `{ρ, u, Π_eq}`. For BGK and projective regularization this is the
    /// second-order equilibrium (eq. 4); for recursive regularization it is
    /// the extended equilibrium including the ρuuu/ρuuuu Hermite terms —
    /// which is also what the moment representation produces from the same
    /// moment state, so cross-representation comparisons start identically.
    /// Inlet nodes use their prescribed velocity instead of the field's.
    pub fn init_with(&mut self, field: impl Fn(usize, usize, usize) -> (f64, [f64; 3])) {
        let n = self.geom.len();
        let mut feq = [0.0f64; MAX_Q];
        for idx in 0..n {
            let (x, y, z) = self.geom.coords(idx);
            let (rho, u) = match self.geom.node_at(idx) {
                NodeType::Inlet(u_bc) => (field(x, y, z).0, u_bc),
                NodeType::Outlet(rho_bc) => (rho_bc, field(x, y, z).1),
                _ => field(x, y, z),
            };
            let m = Moments {
                rho,
                u,
                pi: Moments::pi_eq(rho, u, L::D),
            };
            self.collision.reconstruct(&m, &mut feq[..L::Q]);
            for i in 0..L::Q {
                self.f[self.cur][i * n + idx] = feq[i];
            }
        }
        self.steps = 0;
    }

    /// Advance one timestep (streaming + collision + boundary rebuild).
    pub fn step(&mut self) {
        let n = self.geom.len();
        let q = L::Q;
        let geom = &self.geom;
        let collision = &self.collision;
        let (src, dst) = {
            let (a, b) = self.f.split_at_mut(1);
            if self.cur == 0 {
                (&a[0][..], &mut b[0][..])
            } else {
                (&b[0][..], &mut a[0][..])
            }
        };

        // Phase 1: pull + collide on bulk fluid nodes. The moving-wall
        // per-direction constants are hoisted out of the gather loop
        // (bitwise-equal to the inline form; see `WallGains`).
        let gains = WallGains::build::<L>(1.0);
        let gains = &gains;
        let dstp = SendPtr::new(dst);
        par::parallel_ranges(n, self.threads, |range| {
            let mut f_loc = [0.0f64; MAX_Q];
            for idx in range {
                if !matches!(geom.node_at(idx), NodeType::Fluid) {
                    continue;
                }
                let (x, y, z) = geom.coords(idx);
                for i in 0..q {
                    let c = L::C[i];
                    f_loc[i] = match geom.neighbor(x, y, z, [-c[0], -c[1], -c[2]]) {
                        Some((px, py, pz)) => {
                            let nidx = geom.idx(px, py, pz);
                            match geom.node_at(nidx) {
                                t if t.is_fluid_like() => src[i * n + nidx],
                                NodeType::Wall => src[L::OPP[i] * n + idx],
                                NodeType::MovingWall(uw) => {
                                    src[L::OPP[i] * n + idx] + gains.gain(i, uw)
                                }
                                _ => unreachable!("non-solid, non-fluid node"),
                            }
                        }
                        // Off a non-periodic edge with no boundary node:
                        // treat as a resting wall.
                        None => src[L::OPP[i] * n + idx],
                    };
                }
                collision.collide(&mut f_loc[..q]);
                for i in 0..q {
                    // Safety: each node index is visited by exactly one
                    // thread; writes for node `idx` touch only offsets
                    // `i·n + idx`.
                    unsafe { dstp.write(i * n + idx, f_loc[i]) };
                }
            }
        });

        // Phase 2: rebuild inlet/outlet nodes from the FD moment state.
        // 2a: compute (reads fluid nodes of dst, no writes).
        let tau = collision.tau();
        let mut updates: Vec<(usize, [f64; MAX_Q])> = Vec::with_capacity(self.boundary_nodes.len());
        {
            let dst_ro: &[f64] = dst;
            let macro_at = |x: usize, y: usize, z: usize| -> (f64, [f64; 3]) {
                let idx = geom.idx(x, y, z);
                let mut rho = 0.0;
                let mut j = [0.0f64; 3];
                for i in 0..q {
                    let fi = dst_ro[i * n + idx];
                    let c = L::cf(i);
                    rho += fi;
                    j[0] += c[0] * fi;
                    j[1] += c[1] * fi;
                    j[2] += c[2] * fi;
                }
                (rho, [j[0] / rho, j[1] / rho, j[2] / rho])
            };
            for &idx in &self.boundary_nodes {
                let (x, y, z) = geom.coords(idx);
                let m = boundary_node_moments::<L>(geom, x, y, z, tau, &macro_at);
                let mut out = [0.0f64; MAX_Q];
                collision.reconstruct(&m, &mut out[..q]);
                updates.push((idx, out));
            }
        }
        // 2b: write.
        for (idx, out) in updates {
            for i in 0..q {
                dst[i * n + idx] = out[i];
            }
        }

        self.cur ^= 1;
        self.steps += 1;
    }

    /// Advance `steps` timesteps.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Number of completed timesteps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Domain geometry.
    pub fn geom(&self) -> &Geometry {
        &self.geom
    }

    /// The collision operator.
    pub fn collision(&self) -> &C {
        &self.collision
    }

    /// Distribution at a node (current post-collision state).
    pub fn f_at(&self, x: usize, y: usize, z: usize) -> Vec<f64> {
        let n = self.geom.len();
        let idx = self.geom.idx(x, y, z);
        (0..L::Q).map(|i| self.f[self.cur][i * n + idx]).collect()
    }

    /// Moments at a node (of the current post-collision state).
    pub fn moments_at(&self, x: usize, y: usize, z: usize) -> Moments {
        Moments::from_f::<L>(&self.f_at(x, y, z))
    }

    /// Density field over the whole domain (solid nodes report 0).
    pub fn density_field(&self) -> Vec<f64> {
        let n = self.geom.len();
        let mut out = vec![0.0; n];
        for idx in 0..n {
            if self.geom.node_at(idx).is_fluid_like() {
                let mut rho = 0.0;
                for i in 0..L::Q {
                    rho += self.f[self.cur][i * n + idx];
                }
                out[idx] = rho;
            }
        }
        out
    }

    /// Velocity field over the whole domain (solid nodes report zero).
    pub fn velocity_field(&self) -> Vec<[f64; 3]> {
        let n = self.geom.len();
        let mut out = vec![[0.0; 3]; n];
        for idx in 0..n {
            if self.geom.node_at(idx).is_fluid_like() {
                let mut rho = 0.0;
                let mut j = [0.0f64; 3];
                for i in 0..L::Q {
                    let fi = self.f[self.cur][i * n + idx];
                    let c = L::cf(i);
                    rho += fi;
                    j[0] += c[0] * fi;
                    j[1] += c[1] * fi;
                    j[2] += c[2] * fi;
                }
                out[idx] = [j[0] / rho, j[1] / rho, j[2] / rho];
            }
        }
        out
    }

    /// Hydrodynamic force on the solid nodes selected by `is_target`,
    /// evaluated by the momentum-exchange method over halfway-bounce-back
    /// links: each fluid→solid link transfers `c_i (2 f*_i + gain)` of
    /// momentum per step, where `gain` is the moving-wall correction.
    pub fn force_on(&self, is_target: impl Fn(usize, usize, usize) -> bool) -> [f64; 3] {
        let n = self.geom.len();
        let f = &self.f[self.cur];
        let gains = WallGains::build::<L>(1.0);
        let mut force = [0.0f64; 3];
        for idx in 0..n {
            if !self.geom.node_at(idx).is_fluid_like() {
                continue;
            }
            let (x, y, z) = self.geom.coords(idx);
            for i in 0..L::Q {
                let c = L::C[i];
                let Some((sx, sy, sz)) = self.geom.neighbor(x, y, z, c) else {
                    continue;
                };
                let node = self.geom.node(sx, sy, sz);
                if !node.is_solid() || !is_target(sx, sy, sz) {
                    continue;
                }
                let gain = match node {
                    NodeType::MovingWall(uw) => gains.gain(L::OPP[i], uw),
                    _ => 0.0,
                };
                let transfer = 2.0 * f[i * n + idx] + gain;
                let cf = L::cf(i);
                for a in 0..3 {
                    force[a] += cf[a] * transfer;
                }
            }
        }
        force
    }

    /// Serialize the current state (header + post-collision lattice) to a
    /// writer. The format is versioned and validated by [`Solver::load_state`].
    pub fn save_state<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(b"LBMR0001")?;
        w.write_all(&(L::Q as u64).to_le_bytes())?;
        w.write_all(&(self.geom.nx as u64).to_le_bytes())?;
        w.write_all(&(self.geom.ny as u64).to_le_bytes())?;
        w.write_all(&(self.geom.nz as u64).to_le_bytes())?;
        w.write_all(&self.steps.to_le_bytes())?;
        for v in &self.f[self.cur] {
            w.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }

    /// Restore a state saved by [`Solver::save_state`]. The lattice and
    /// domain dimensions must match; the step counter is restored too, so a
    /// resumed run is bitwise identical to an uninterrupted one.
    pub fn load_state<R: Read>(&mut self, r: &mut R) -> io::Result<()> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != b"LBMR0001" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad checkpoint magic",
            ));
        }
        let mut u64buf = [0u8; 8];
        let mut read_u64 = |r: &mut R| -> io::Result<u64> {
            r.read_exact(&mut u64buf)?;
            Ok(u64::from_le_bytes(u64buf))
        };
        let (q, nx, ny, nz) = (read_u64(r)?, read_u64(r)?, read_u64(r)?, read_u64(r)?);
        if q as usize != L::Q
            || nx as usize != self.geom.nx
            || ny as usize != self.geom.ny
            || nz as usize != self.geom.nz
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint is {q}v {nx}×{ny}×{nz}, solver is {}v {}×{}×{}",
                    L::Q,
                    self.geom.nx,
                    self.geom.ny,
                    self.geom.nz
                ),
            ));
        }
        self.steps = read_u64(r)?;
        let mut fbuf = [0u8; 8];
        for v in self.f[self.cur].iter_mut() {
            r.read_exact(&mut fbuf)?;
            *v = f64::from_le_bytes(fbuf);
        }
        Ok(())
    }

    /// Total mass over fluid-like nodes.
    pub fn mass(&self) -> f64 {
        let n = self.geom.len();
        let mut total = 0.0;
        for idx in 0..n {
            if self.geom.node_at(idx).is_fluid_like() {
                for i in 0..L::Q {
                    total += self.f[self.cur][i * n + idx];
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::{Bgk, Projective, Recursive};
    use lbm_lattice::{D2Q9, D3Q19};

    /// A uniform resting fluid in a periodic box is a fixed point.
    #[test]
    fn rest_state_is_stationary() {
        let geom = Geometry::periodic_2d(8, 8);
        let mut s: Solver<D2Q9, _> = Solver::new(geom, Bgk::new(0.8)).with_threads(2);
        s.run(5);
        for rho in s.density_field() {
            assert!((rho - 1.0).abs() < 1e-14);
        }
        for u in s.velocity_field() {
            assert!(u.iter().all(|&c| c.abs() < 1e-14));
        }
    }

    /// Mass is conserved exactly on a periodic domain for every operator.
    #[test]
    fn periodic_mass_conservation() {
        fn check<C: Collision<D2Q9>>(c: C) {
            let geom = Geometry::periodic_2d(12, 10);
            let mut s: Solver<D2Q9, C> = Solver::new(geom, c).with_threads(2);
            s.init_with(|x, y, _| {
                (
                    1.0 + 0.01 * ((x * 3 + y) as f64).sin(),
                    [
                        0.02 * (y as f64 * 0.7).cos(),
                        0.02 * (x as f64 * 0.5).sin(),
                        0.0,
                    ],
                )
            });
            let m0 = s.mass();
            s.run(20);
            let m1 = s.mass();
            assert!((m0 - m1).abs() < 1e-10 * m0, "mass drift {}", m1 - m0);
        }
        check(Bgk::new(0.9));
        check(Projective::new(0.9));
        check(Recursive::new::<D2Q9>(0.9));
    }

    /// Momentum is conserved on a fully periodic domain (no walls).
    #[test]
    fn periodic_momentum_conservation() {
        let geom = Geometry::periodic_2d(10, 10);
        let mut s: Solver<D2Q9, _> = Solver::new(geom, Projective::new(0.8));
        s.init_with(|x, y, _| {
            (
                1.0,
                [
                    0.03 * ((y as f64) * 0.63).sin(),
                    0.03 * ((x as f64) * 0.63).cos(),
                    0.0,
                ],
            )
        });
        let mom0: f64 = s
            .velocity_field()
            .iter()
            .zip(s.density_field())
            .map(|(u, r)| u[0] * r)
            .sum();
        s.run(25);
        let mom1: f64 = s
            .velocity_field()
            .iter()
            .zip(s.density_field())
            .map(|(u, r)| u[0] * r)
            .sum();
        assert!(
            (mom0 - mom1).abs() < 1e-10,
            "momentum drift {}",
            mom1 - mom0
        );
    }

    /// Thread count must not change the trajectory (bitwise determinism of
    /// the parallel decomposition).
    #[test]
    fn thread_count_invariance() {
        let build = |threads: usize| {
            let geom = Geometry::channel_2d(16, 10, 0.04);
            let mut s: Solver<D2Q9, _> =
                Solver::new(geom, Projective::new(0.7)).with_threads(threads);
            s.run(15);
            s.velocity_field()
        };
        let u1 = build(1);
        let u4 = build(4);
        for (a, b) in u1.iter().zip(&u4) {
            for k in 0..3 {
                assert_eq!(a[k], b[k], "parallel execution changed the result");
            }
        }
    }

    /// Channel flow spins up and transports fluid: after some steps the
    /// centerline velocity is positive and bounded by the inlet maximum…
    #[test]
    fn channel_2d_spins_up() {
        let geom = Geometry::channel_2d(24, 10, 0.04);
        let mut s: Solver<D2Q9, _> = Solver::new(geom, Bgk::new(0.8));
        s.run(200);
        let u = s.velocity_field();
        let g = s.geom();
        let mid = u[g.idx(12, 5, 0)];
        assert!(mid[0] > 0.005, "centerline u_x = {}", mid[0]);
        assert!(mid[0] < 0.2);
        // No-slip: the fluid row adjacent to the wall moves slower than the
        // centerline.
        let near_wall = u[g.idx(12, 1, 0)];
        assert!(near_wall[0] < mid[0]);
    }

    /// The same in 3D with D3Q19.
    #[test]
    fn channel_3d_spins_up() {
        let geom = Geometry::channel_3d(16, 8, 8, 0.03);
        let mut s: Solver<D3Q19, _> = Solver::new(geom, Projective::new(0.75)).with_threads(4);
        s.run(120);
        let u = s.velocity_field();
        let g = s.geom();
        let mid = u[g.idx(8, 4, 4)];
        assert!(mid[0] > 0.003, "centerline u_x = {}", mid[0]);
        let near_wall = u[g.idx(8, 1, 4)];
        assert!(near_wall[0] < mid[0]);
    }

    /// Checkpoint round-trip: save mid-run, continue, then restore and
    /// continue again — the two continuations are bitwise identical.
    #[test]
    fn checkpoint_resume_is_bitwise() {
        let geom = Geometry::channel_2d(16, 10, 0.04);
        let mut s: Solver<D2Q9, _> = Solver::new(geom, Projective::new(0.8)).with_threads(2);
        s.run(10);
        let mut snap = Vec::new();
        s.save_state(&mut snap).unwrap();
        s.run(7);
        let a = s.velocity_field();
        let steps_a = s.steps();
        // Restore into the same solver and replay.
        s.load_state(&mut snap.as_slice()).unwrap();
        assert_eq!(s.steps(), 10);
        s.run(7);
        let b = s.velocity_field();
        assert_eq!(s.steps(), steps_a);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y, "resumed trajectory diverged");
        }
    }

    /// Checkpoints validate their header.
    #[test]
    fn checkpoint_rejects_mismatched_domain() {
        let mut s1: Solver<D2Q9, _> = Solver::new(Geometry::periodic_2d(8, 8), Bgk::new(0.8));
        let mut snap = Vec::new();
        s1.save_state(&mut snap).unwrap();
        s1.run(1);
        let mut s2: Solver<D2Q9, _> = Solver::new(Geometry::periodic_2d(10, 8), Bgk::new(0.8));
        assert!(s2.load_state(&mut snap.as_slice()).is_err());
        // Corrupted magic is rejected too.
        snap[0] = b'X';
        let mut s3: Solver<D2Q9, _> = Solver::new(Geometry::periodic_2d(8, 8), Bgk::new(0.8));
        assert!(s3.load_state(&mut snap.as_slice()).is_err());
    }

    /// Lid-driven cavity: the lid drags fluid; total mass stays bounded.
    #[test]
    fn cavity_lid_drags_fluid() {
        let geom = Geometry::cavity_2d(12, 0.08);
        let mut s: Solver<D2Q9, _> = Solver::new(geom, Bgk::new(0.8));
        s.run(150);
        let u = s.velocity_field();
        let g = s.geom();
        // Fluid just under the lid moves with the lid (positive x).
        let under_lid = u[g.idx(6, 10, 0)];
        assert!(under_lid[0] > 1e-3, "u under lid = {}", under_lid[0]);
        // Deep fluid barely moves.
        let deep = u[g.idx(6, 2, 0)];
        assert!(deep[0].abs() < under_lid[0]);
    }
}
