//! Closed-form flow solutions used by validation tests and examples.

use std::f64::consts::PI;

/// Plane-Poiseuille streamwise velocity at lattice row `y` in a channel of
/// `ny` rows whose walls are halfway-bounce-back planes at `y = −1/2` and
/// `y = ny − 1/2`… more precisely, with halfway bounce-back the no-slip
/// plane sits half a lattice spacing outside the outermost *wall* nodes at
/// `y = 0` and `y = ny−1`, i.e. at `y = 1/2` and `y = ny − 3/2`.
///
/// Returns `u_max · 4 s (1 − s)` with `s` the normalized wall distance.
pub fn poiseuille_profile(y: usize, ny: usize, u_max: f64) -> f64 {
    // Effective channel: from y=0.5 to y=ny-1.5 (distance between no-slip
    // planes), width H = ny - 2.
    let h = (ny as f64) - 2.0;
    let s = (y as f64 - 0.5) / h;
    if !(0.0..=1.0).contains(&s) {
        return 0.0;
    }
    u_max * 4.0 * s * (1.0 - s)
}

/// The 2D Taylor–Green vortex on a `[0, nx) × [0, ny)` periodic box:
/// initial velocity field at node `(x, y)` with amplitude `u0`.
pub fn taylor_green_velocity(x: usize, y: usize, nx: usize, ny: usize, u0: f64) -> [f64; 3] {
    let kx = 2.0 * PI / nx as f64;
    let ky = 2.0 * PI / ny as f64;
    let (fx, fy) = (kx * x as f64, ky * y as f64);
    // Divergence-free: u = u0 [cos(kx x) sin(ky y) kx-normalized pair].
    let norm = (ky / kx).sqrt();
    [
        u0 * norm * fx.cos() * fy.sin(),
        -u0 / norm * fx.sin() * fy.cos(),
        0.0,
    ]
}

/// Taylor–Green kinetic-energy decay factor after `t` steps:
/// `E(t)/E(0) = exp(−2 ν (k_x² + k_y²) t)`.
pub fn taylor_green_decay(nx: usize, ny: usize, nu: f64, t: f64) -> f64 {
    let kx = 2.0 * PI / nx as f64;
    let ky = 2.0 * PI / ny as f64;
    (-2.0 * nu * (kx * kx + ky * ky) * t).exp()
}

/// Pressure (density) field of the Taylor–Green vortex at `t = 0`:
/// `ρ = ρ0 (1 − u0²/(4 c_s²) (cos 2kx x · ky/kx + cos 2ky y · kx/ky))`.
pub fn taylor_green_density(x: usize, y: usize, nx: usize, ny: usize, u0: f64, rho0: f64) -> f64 {
    let kx = 2.0 * PI / nx as f64;
    let ky = 2.0 * PI / ny as f64;
    let cs2 = 1.0 / 3.0;
    let a = (ky / kx) * (2.0 * kx * x as f64).cos() + (kx / ky) * (2.0 * ky * y as f64).cos();
    rho0 * (1.0 - u0 * u0 / (4.0 * cs2) * a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poiseuille_is_symmetric_and_peaked() {
        let ny = 34;
        let u = |y| poiseuille_profile(y, ny, 0.1);
        for y in 1..ny - 1 {
            let ym = ny - 1 - y;
            assert!((u(y) - u(ym)).abs() < 1e-12, "asymmetry at {y}");
        }
        // Peak near the centerline, close to u_max.
        let peak = (1..ny - 1).map(u).fold(0.0f64, f64::max);
        assert!(peak <= 0.1 + 1e-12);
        assert!(peak > 0.099);
        // Vanishes at the no-slip planes (just outside the fluid rows).
        assert!(u(1) > 0.0);
        assert_eq!(u(0), 0.0 * u(0)); // wall row: still finite but tiny
    }

    #[test]
    fn taylor_green_is_divergence_free_discretely() {
        let (nx, ny) = (32, 32);
        // Central-difference divergence should vanish to O(k²·roundoff of
        // the trig identities) — the field is exactly divergence-free in the
        // continuum; discretely it is small.
        let mut max_div: f64 = 0.0;
        for y in 0..ny {
            for x in 0..nx {
                let xp = taylor_green_velocity((x + 1) % nx, y, nx, ny, 0.05);
                let xm = taylor_green_velocity((x + nx - 1) % nx, y, nx, ny, 0.05);
                let yp = taylor_green_velocity(x, (y + 1) % ny, nx, ny, 0.05);
                let ym = taylor_green_velocity(x, (y + ny - 1) % ny, nx, ny, 0.05);
                let div = (xp[0] - xm[0]) / 2.0 + (yp[1] - ym[1]) / 2.0;
                max_div = max_div.max(div.abs());
            }
        }
        assert!(max_div < 1e-3, "max discrete divergence {max_div}");
    }

    #[test]
    fn decay_factor_monotone() {
        let d1 = taylor_green_decay(32, 32, 0.01, 100.0);
        let d2 = taylor_green_decay(32, 32, 0.01, 200.0);
        assert!(d1 > d2);
        assert!(d1 < 1.0);
        assert!((taylor_green_decay(32, 32, 0.01, 0.0) - 1.0).abs() < 1e-15);
    }
}
