//! Recursive regularization (Malaspinas 2015) — paper §2.3.

use super::{collide_and_map_recursive, Collision};
use lbm_lattice::gram::HigherBasis;
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;

/// Recursive-regularization collision: like [`super::Projective`], but the
/// third- and fourth-order Hermite coefficients are rebuilt from the
/// recursion relations on `{ρ, u, Π^neq}` and relaxed alongside Π
/// (eqs. 12–14). Run in the moment representation this is the paper's
/// **MR-R** propagation pattern.
///
/// The operator owns the lattice-orthogonalized higher-order basis table
/// (built once at construction), so per-node collisions are allocation-free.
#[derive(Clone, Debug)]
pub struct Recursive {
    tau: f64,
    basis: HigherBasis,
}

impl Recursive {
    /// Create a recursive-regularization operator for lattice `L` with
    /// relaxation time `tau`.
    ///
    /// Panics if `L` has no representable higher-order components (e.g.
    /// D3Q15, for which only the projective scheme is provided).
    pub fn new<L: Lattice>(tau: f64) -> Self {
        assert!(tau > 0.5, "regularized LBM requires τ > 1/2, got {tau}");
        assert!(
            L::supports_recursive(),
            "{} has no recursive-regularization component tables",
            L::NAME
        );
        Recursive {
            tau,
            basis: HigherBasis::new::<L>(),
        }
    }

    /// The orthogonalized higher-order basis (shared with the MR-R kernel).
    pub fn basis(&self) -> &HigherBasis {
        &self.basis
    }
}

impl<L: Lattice> Collision<L> for Recursive {
    fn name(&self) -> &'static str {
        "REG-R"
    }

    fn tau(&self) -> f64 {
        self.tau
    }

    fn collide(&self, f: &mut [f64]) {
        debug_assert_eq!(f.len(), L::Q);
        debug_assert_eq!(
            self.basis.h3.len(),
            L::H3_COMPONENTS.len(),
            "Recursive operator constructed for a different lattice"
        );
        let m = Moments::from_f::<L>(f);
        collide_and_map_recursive::<L>(&m, self.tau, &self.basis, f);
    }

    fn reconstruct(&self, m: &Moments, out: &mut [f64]) {
        collide_and_map_recursive::<L>(m, self.tau, &self.basis, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_lattice::equilibrium::equilibrium;
    use lbm_lattice::{D2Q9, D3Q19, D3Q27};

    /// At zero velocity the recursion terms vanish (a_eq = ρ·0, a_neq has a
    /// u factor in every term), so recursive and projective agree exactly.
    #[test]
    fn agrees_with_projective_at_zero_velocity() {
        let mut f = vec![0.0; D3Q19::Q];
        equilibrium::<D3Q19>(1.0, [0.0; 3], &mut f);
        for (i, v) in f.iter_mut().enumerate() {
            // Perturb only even-parity structure so u stays ~0: scale pairs
            // of opposite directions identically.
            let j = D3Q19::OPP[i].min(i);
            *v *= 1.0 + 0.04 * ((j as f64) * 0.9).sin();
        }
        let m = Moments::from_f::<D3Q19>(&f);
        assert!(m.u.iter().all(|&u| u.abs() < 1e-14));

        let tau = 0.75;
        let mut f_r = f.clone();
        let mut f_p = f.clone();
        Collision::<D3Q19>::collide(&Recursive::new::<D3Q19>(tau), &mut f_r);
        Collision::<D3Q19>::collide(&super::super::Projective::new(tau), &mut f_p);
        for i in 0..D3Q19::Q {
            assert!((f_r[i] - f_p[i]).abs() < 1e-13, "dir {i}");
        }
    }

    /// The recursive and projective operators differ at finite velocity and
    /// finite Π^neq (the higher-order terms are active).
    #[test]
    fn differs_from_projective_at_finite_velocity() {
        let mut f = vec![0.0; D2Q9::Q];
        equilibrium::<D2Q9>(1.0, [0.08, 0.03, 0.0], &mut f);
        for (i, v) in f.iter_mut().enumerate() {
            *v *= 1.0 + 0.05 * (i as f64).cos();
        }
        let tau = 0.75;
        let mut f_r = f.clone();
        let mut f_p = f.clone();
        Collision::<D2Q9>::collide(&Recursive::new::<D2Q9>(tau), &mut f_r);
        Collision::<D2Q9>::collide(&super::super::Projective::new(tau), &mut f_p);
        let diff: f64 = f_r.iter().zip(&f_p).map(|(a, b)| (a - b).abs()).sum();
        assert!(
            diff > 1e-8,
            "operators unexpectedly identical (diff {diff})"
        );
    }

    #[test]
    fn works_on_d3q27() {
        let mut f = vec![0.0; D3Q27::Q];
        equilibrium::<D3Q27>(1.0, [0.02, -0.03, 0.05], &mut f);
        for (i, v) in f.iter_mut().enumerate() {
            *v *= 1.0 + 0.03 * (i as f64 * 0.31).sin();
        }
        let before = Moments::from_f::<D3Q27>(&f);
        let op = Recursive::new::<D3Q27>(0.9);
        Collision::<D3Q27>::collide(&op, &mut f);
        let after = Moments::from_f::<D3Q27>(&f);
        assert!((before.rho - after.rho).abs() < 1e-13);
        for a in 0..3 {
            assert!((before.u[a] - after.u[a]).abs() < 1e-13);
        }
    }

    #[test]
    #[should_panic(expected = "no recursive-regularization")]
    fn rejects_unsupported_lattice() {
        let _ = Recursive::new::<lbm_lattice::D3Q15>(0.8);
    }
}
