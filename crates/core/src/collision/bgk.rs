//! The standard BGK (single-relaxation-time) collision operator, eq. (6).

use super::Collision;
use lbm_lattice::equilibrium::{equilibrium_i, f_from_moments};
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;

/// `f* = f_eq + (1 − 1/τ)(f − f_eq)`: the operator used by the paper's ST
/// reference implementation (Algorithm 1, lines 20–26).
#[derive(Copy, Clone, Debug)]
pub struct Bgk {
    tau: f64,
    inv_tau: f64,
}

impl Bgk {
    /// Create a BGK operator with relaxation time `tau` (> 0.5 for positive
    /// viscosity).
    pub fn new(tau: f64) -> Self {
        assert!(tau > 0.5, "BGK requires τ > 1/2, got {tau}");
        Bgk {
            tau,
            inv_tau: 1.0 / tau,
        }
    }
}

impl<L: Lattice> Collision<L> for Bgk {
    fn name(&self) -> &'static str {
        "BGK"
    }

    fn tau(&self) -> f64 {
        self.tau
    }

    fn collide(&self, f: &mut [f64]) {
        debug_assert_eq!(f.len(), L::Q);
        // Macroscopics (Algorithm 1, lines 11–19).
        let mut rho = 0.0;
        let mut j = [0.0f64; 3];
        for i in 0..L::Q {
            let fi = f[i];
            let c = L::cf(i);
            rho += fi;
            j[0] += c[0] * fi;
            j[1] += c[1] * fi;
            j[2] += c[2] * fi;
        }
        let inv_rho = 1.0 / rho;
        let u = [j[0] * inv_rho, j[1] * inv_rho, j[2] * inv_rho];
        let usq = u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
        // Relaxation (Algorithm 1, lines 21–26).
        let om = self.inv_tau;
        for i in 0..L::Q {
            let feq = equilibrium_i::<L>(i, rho, u, usq);
            f[i] += om * (feq - f[i]);
        }
    }

    /// Chunk-vectorized BGK over SoA storage; bitwise-identical to the
    /// per-node `collide` (see `crate::kernels`).
    fn collide_soa(&self, f: &mut [f64], stride: usize, base: usize, count: usize) {
        crate::kernels::bgk_collide_soa::<L>(f, stride, base, count, self.inv_tau);
    }

    /// For boundary reconstruction the BGK reference uses the regularized
    /// (projective) rebuild — the standard practice for the Latt
    /// finite-difference boundary condition.
    fn reconstruct(&self, m: &Moments, out: &mut [f64]) {
        let mut pi = m.pi;
        super::collide_pi(m.rho, m.u, &mut pi, L::D, self.tau);
        f_from_moments::<L>(m.rho, m.u, &pi, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_lattice::equilibrium::equilibrium;
    use lbm_lattice::D2Q9;

    #[test]
    #[should_panic(expected = "τ > 1/2")]
    fn rejects_unphysical_tau() {
        let _ = Bgk::new(0.4);
    }

    /// BGK contracts toward equilibrium: ‖f* − f_eq‖ = (1−1/τ)‖f − f_eq‖.
    #[test]
    fn geometric_contraction() {
        let tau = 0.8;
        let mut feq = vec![0.0; D2Q9::Q];
        equilibrium::<D2Q9>(1.0, [0.03, 0.01, 0.0], &mut feq);
        let mut f: Vec<f64> = feq
            .iter()
            .enumerate()
            .map(|(i, &v)| v + 1e-3 * (i as f64 - 4.0))
            .collect();
        // Make the perturbation mass/momentum free? Not needed: compare to
        // the *local* equilibrium of f, which shifts with the perturbation.
        let op = Bgk::new(tau);
        let m = lbm_lattice::moments::Moments::from_f::<D2Q9>(&f);
        let mut feq_local = vec![0.0; D2Q9::Q];
        equilibrium::<D2Q9>(m.rho, m.u, &mut feq_local);
        let before: f64 = f.iter().zip(&feq_local).map(|(a, b)| (a - b).powi(2)).sum();
        Collision::<D2Q9>::collide(&op, &mut f);
        let after: f64 = f.iter().zip(&feq_local).map(|(a, b)| (a - b).powi(2)).sum();
        let ratio = (after / before).sqrt();
        assert!(
            (ratio - (1.0 - 1.0 / tau).abs()).abs() < 1e-10,
            "ratio {ratio}"
        );
    }
}
