//! Collision operators.
//!
//! Three operators, matching the paper's evaluation matrix:
//!
//! * [`Bgk`] — the standard single-relaxation-time operator (eq. 6), used by
//!   the ST reference implementation.
//! * [`Projective`] — projective regularization (Latt & Chopard 2006,
//!   eqs. 8–11): the non-equilibrium part is projected onto the second-order
//!   Hermite moment before relaxation ("MR-P" when run in the moment
//!   representation).
//! * [`Recursive`] — recursive regularization (Malaspinas 2015,
//!   eqs. 12–14): third- and fourth-order Hermite coefficients are rebuilt
//!   recursively from `{ρ, u, Π^neq}` ("MR-R").
//!
//! The moment-space forms used by the moment-representation GPU kernels —
//! [`collide_pi`] (eq. 10) and the collide-and-map routines — live here too,
//! and the distribution-space operators are implemented *on top of them*, so
//! the ST and MR code paths share the same arithmetic by construction.

mod bgk;
mod projective;
mod recursive;

pub use bgk::Bgk;
pub use projective::Projective;
pub use recursive::Recursive;

use lbm_lattice::equilibrium::{f_from_moments, f_from_moments_recursive};
use lbm_lattice::gram::HigherBasis;
use lbm_lattice::moments::Moments;
use lbm_lattice::recursion;
use lbm_lattice::{Lattice, PAIRS};

/// Maximum number of stored higher-order components across supported
/// lattices (D3Q27 has 7 third-order components).
pub const MAX_HO: usize = 8;

/// A collision operator applied at a single lattice node.
///
/// `collide` transforms pre-collision populations into post-collision
/// populations in place; `reconstruct` builds the post-collision populations
/// directly from a *pre-collision* moment state (used by the regularized
/// inlet/outlet boundary condition and by cross-representation tests).
pub trait Collision<L: Lattice>: Send + Sync {
    /// Short identifier used in reports ("BGK", "REG-P", "REG-R").
    fn name(&self) -> &'static str;

    /// Relaxation time τ.
    fn tau(&self) -> f64;

    /// In-place collision on one node's populations (`f.len() == Q`).
    fn collide(&self, f: &mut [f64]);

    /// Post-collision populations from a pre-collision moment state.
    fn reconstruct(&self, m: &Moments, out: &mut [f64]);

    /// In-place collision over `count` nodes stored SoA in
    /// `f[i*stride + base + j]`. The default gathers each node into a packed
    /// buffer and applies [`Collision::collide`]; operators with a
    /// vectorized form (e.g. [`Bgk`]) override it with a bitwise-identical
    /// chunked kernel from [`crate::kernels`].
    fn collide_soa(&self, f: &mut [f64], stride: usize, base: usize, count: usize) {
        let mut node = [0.0f64; crate::kernels::MAX_Q];
        for j in 0..count {
            for i in 0..L::Q {
                node[i] = f[i * stride + base + j];
            }
            self.collide(&mut node[..L::Q]);
            for i in 0..L::Q {
                f[i * stride + base + j] = node[i];
            }
        }
    }
}

/// Moment-space collision, eq. (10): `Π* = Π^eq + (1 − 1/τ) Π^neq`,
/// performed in place on the canonical Π array. Density and momentum are
/// conserved and untouched.
#[inline]
pub fn collide_pi(rho: f64, u: [f64; 3], pi: &mut [f64; 6], d: usize, tau: f64) {
    let omega = 1.0 - 1.0 / tau;
    for (k, &(a, b)) in PAIRS.iter().enumerate() {
        if b >= d {
            continue;
        }
        let eq = rho * u[a] * u[b];
        pi[k] = eq + omega * (pi[k] - eq);
    }
}

/// Projective collide-and-map: from a pre-collision moment state, produce
/// the post-collision distribution (eqs. 10 + 11). This is the inner loop of
/// the MR-P kernel and of the [`Projective`] operator.
#[inline]
pub fn collide_and_map_projective<L: Lattice>(m: &Moments, tau: f64, out: &mut [f64]) {
    let mut pi = m.pi;
    collide_pi(m.rho, m.u, &mut pi, L::D, tau);
    f_from_moments::<L>(m.rho, m.u, &pi, out);
}

/// Recursive collide-and-map: additionally derives the higher-order Hermite
/// coefficients from the recursion relations, relaxes them (eqs. 12–13), and
/// reconstructs with eq. (14). Inner loop of the MR-R kernel and of the
/// [`Recursive`] operator.
#[inline]
pub fn collide_and_map_recursive<L: Lattice>(
    m: &Moments,
    tau: f64,
    basis: &HigherBasis,
    out: &mut [f64],
) {
    let omega = 1.0 - 1.0 / tau;
    let pi_neq = m.pi_neq(L::D);

    // Post-collision second-order moment (eq. 10).
    let mut pi_star = m.pi;
    collide_pi(m.rho, m.u, &mut pi_star, L::D, tau);

    // Higher-order coefficients: a* = a_eq + (1 − 1/τ) a_neq (eqs. 12–13),
    // with a_neq from the recursion relations on {ρ, u, Π^neq}.
    let mut a3 = [0.0f64; MAX_HO];
    for (k, &(idx, _)) in L::H3_COMPONENTS.iter().enumerate() {
        let eq = recursion::a3_eq(m.rho, m.u, idx);
        let neq = recursion::a3_neq(L::D, m.u, &pi_neq, idx);
        a3[k] = eq + omega * neq;
    }
    let mut a4 = [0.0f64; MAX_HO];
    for (k, &(idx, _)) in L::H4_COMPONENTS.iter().enumerate() {
        let eq = recursion::a4_eq(m.rho, m.u, idx);
        let neq = recursion::a4_neq(L::D, m.u, &pi_neq, idx);
        a4[k] = eq + omega * neq;
    }

    f_from_moments_recursive::<L>(
        m.rho,
        m.u,
        &pi_star,
        &a3[..L::H3_COMPONENTS.len()],
        &a4[..L::H4_COMPONENTS.len()],
        basis,
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_lattice::equilibrium::equilibrium;
    use lbm_lattice::{D2Q9, D3Q19};

    fn perturbed_state<L: Lattice>() -> Vec<f64> {
        let mut f = vec![0.0; L::Q];
        equilibrium::<L>(1.02, [0.04, -0.02, 0.01], &mut f);
        // Deterministic perturbation that leaves f positive.
        for (i, v) in f.iter_mut().enumerate() {
            *v *= 1.0 + 0.05 * ((i as f64 * 1.7).sin());
        }
        f
    }

    /// All operators conserve mass and momentum exactly.
    #[test]
    fn operators_conserve() {
        fn check<L: Lattice>(op: &dyn Collision<L>) {
            let mut f = perturbed_state::<L>();
            let before = Moments::from_f::<L>(&f);
            op.collide(&mut f);
            let after = Moments::from_f::<L>(&f);
            assert!((before.rho - after.rho).abs() < 1e-13, "{} mass", op.name());
            for a in 0..L::D {
                assert!(
                    (before.rho * before.u[a] - after.rho * after.u[a]).abs() < 1e-13,
                    "{} momentum[{a}]",
                    op.name()
                );
            }
        }
        check::<D2Q9>(&Bgk::new(0.8));
        check::<D2Q9>(&Projective::new(0.8));
        check::<D2Q9>(&Recursive::new::<D2Q9>(0.8));
        check::<D3Q19>(&Bgk::new(0.7));
        check::<D3Q19>(&Projective::new(0.7));
        check::<D3Q19>(&Recursive::new::<D3Q19>(0.7));
    }

    /// All operators relax Π toward Π_eq with factor (1 − 1/τ).
    #[test]
    fn pi_relaxation_factor() {
        fn check<L: Lattice>(op: &dyn Collision<L>, tau: f64) {
            let mut f = perturbed_state::<L>();
            let before = Moments::from_f::<L>(&f);
            let pi_neq_before = before.pi_neq(L::D);
            op.collide(&mut f);
            let after = Moments::from_f::<L>(&f);
            let pi_neq_after = after.pi_neq(L::D);
            let omega = 1.0 - 1.0 / tau;
            for k in 0..6 {
                assert!(
                    (pi_neq_after[k] - omega * pi_neq_before[k]).abs() < 1e-12,
                    "{} pi_neq[{k}]: {} vs {}",
                    op.name(),
                    pi_neq_after[k],
                    omega * pi_neq_before[k]
                );
            }
        }
        check::<D2Q9>(&Bgk::new(0.9), 0.9);
        check::<D2Q9>(&Projective::new(0.9), 0.9);
        check::<D2Q9>(&Recursive::new::<D2Q9>(0.9), 0.9);
        check::<D3Q19>(&Projective::new(0.65), 0.65);
        check::<D3Q19>(&Recursive::new::<D3Q19>(0.65), 0.65);
    }

    /// At equilibrium every operator is the identity.
    #[test]
    fn equilibrium_is_fixed_point() {
        fn check<L: Lattice>(op: &dyn Collision<L>) {
            // Velocity restricted to the lattice dimension: a spurious
            // z-component on D2Q9 would enter |u|² but not the moments.
            let mut u = [0.05, 0.02, -0.01];
            for a in L::D..3 {
                u[a] = 0.0;
            }
            let mut f = vec![0.0; L::Q];
            equilibrium::<L>(1.0, u, &mut f);
            let orig = f.clone();
            op.collide(&mut f);
            for i in 0..L::Q {
                assert!(
                    (f[i] - orig[i]).abs() < 1e-13,
                    "{} dir {i}: {} vs {}",
                    op.name(),
                    f[i],
                    orig[i]
                );
            }
        }
        check::<D2Q9>(&Bgk::new(0.8));
        check::<D2Q9>(&Projective::new(0.8));
        check::<D3Q19>(&Bgk::new(1.1));
        check::<D3Q19>(&Projective::new(1.1));
    }

    /// The recursive operator's fixed point is the *extended* equilibrium
    /// (second-order feq is not fixed — the ρuuu terms are added). One
    /// application of RR to an equilibrium state lands on the extended
    /// equilibrium; from there the operator is the identity.
    #[test]
    fn recursive_fixed_point_is_extended_equilibrium() {
        fn check<L: Lattice>(op: &Recursive) {
            let mut u = [0.05, 0.02, -0.01];
            for a in L::D..3 {
                u[a] = 0.0;
            }
            let mut f = vec![0.0; L::Q];
            equilibrium::<L>(1.0, u, &mut f);
            Collision::<L>::collide(op, &mut f);
            let once = f.clone();
            Collision::<L>::collide(op, &mut f);
            for i in 0..L::Q {
                assert!(
                    (f[i] - once[i]).abs() < 1e-14,
                    "{} dir {i}: {} vs {}",
                    L::NAME,
                    f[i],
                    once[i]
                );
            }
        }
        check::<D2Q9>(&Recursive::new::<D2Q9>(0.8));
        check::<D3Q19>(&Recursive::new::<D3Q19>(1.1));
    }

    /// With τ = 1 BGK and projective regularization both collapse to the
    /// second-order equilibrium; recursive regularization collapses to the
    /// *extended* equilibrium (it keeps the ρuuu / ρuuuu Hermite terms), so
    /// its moments — but not its populations — match.
    #[test]
    fn tau_one_collapses_to_equilibrium() {
        let mut f_b = perturbed_state::<D2Q9>();
        let mut f_p = f_b.clone();
        let mut f_r = f_b.clone();
        Collision::<D2Q9>::collide(&Bgk::new(1.0), &mut f_b);
        Collision::<D2Q9>::collide(&Projective::new(1.0), &mut f_p);
        Collision::<D2Q9>::collide(&Recursive::new::<D2Q9>(1.0), &mut f_r);
        for i in 0..D2Q9::Q {
            assert!((f_b[i] - f_p[i]).abs() < 1e-13);
        }
        let mp = Moments::from_f::<D2Q9>(&f_p);
        let mr = Moments::from_f::<D2Q9>(&f_r);
        assert!((mp.rho - mr.rho).abs() < 1e-13);
        for k in 0..6 {
            assert!((mp.pi[k] - mr.pi[k]).abs() < 1e-13, "pi[{k}]");
        }
        // The recursive populations carry the extra equilibrium terms: they
        // genuinely differ from the second-order equilibrium.
        let diff: f64 = f_p.iter().zip(&f_r).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-9, "expected higher-order equilibrium terms");
    }

    /// The projective operator agrees with the explicit eq. (9) form:
    /// `f* = f_eq + (1 − 1/τ) ω/(2c_s⁴) H⁽²⁾:Π^neq`.
    #[test]
    fn projective_matches_eq9() {
        use lbm_lattice::{hermite, CS4};
        let f0 = perturbed_state::<D3Q19>();
        let tau = 0.77;
        let m = Moments::from_f::<D3Q19>(&f0);
        let pi_neq = m.pi_neq(3);

        let mut via_op = f0.clone();
        Collision::<D3Q19>::collide(&Projective::new(tau), &mut via_op);

        let mut feq = vec![0.0; D3Q19::Q];
        equilibrium::<D3Q19>(m.rho, m.u, &mut feq);
        for i in 0..D3Q19::Q {
            let c = D3Q19::cf(i);
            let mut h2pi = 0.0;
            for (k, &(a, b)) in PAIRS.iter().enumerate() {
                let mult = if a == b { 1.0 } else { 2.0 };
                h2pi += mult * hermite::h2::<D3Q19>(c, a, b) * pi_neq[k];
            }
            let explicit = feq[i] + (1.0 - 1.0 / tau) * D3Q19::W[i] / (2.0 * CS4) * h2pi;
            assert!(
                (via_op[i] - explicit).abs() < 1e-13,
                "dir {i}: {} vs {explicit}",
                via_op[i]
            );
        }
    }

    /// Collide-and-map from moments agrees with from_f → collide for the
    /// regularized operators (the MR kernels rely on this identity).
    #[test]
    fn collide_and_map_matches_distribution_path() {
        let f0 = perturbed_state::<D3Q19>();
        let tau = 0.82;
        let m = Moments::from_f::<D3Q19>(&f0);

        let mut via_dist = f0.clone();
        Collision::<D3Q19>::collide(&Projective::new(tau), &mut via_dist);
        let mut via_mom = vec![0.0; D3Q19::Q];
        collide_and_map_projective::<D3Q19>(&m, tau, &mut via_mom);
        for i in 0..D3Q19::Q {
            assert!((via_dist[i] - via_mom[i]).abs() < 1e-14);
        }

        let rec = Recursive::new::<D3Q19>(tau);
        let mut via_dist_r = f0.clone();
        Collision::<D3Q19>::collide(&rec, &mut via_dist_r);
        let mut via_mom_r = vec![0.0; D3Q19::Q];
        collide_and_map_recursive::<D3Q19>(&m, tau, rec.basis(), &mut via_mom_r);
        for i in 0..D3Q19::Q {
            assert!((via_dist_r[i] - via_mom_r[i]).abs() < 1e-14);
        }
    }

    /// Regularized collisions are idempotent in the information they keep:
    /// colliding the reconstruction of a node's moments equals
    /// reconstructing the collided moments.
    #[test]
    fn regularization_is_lossless_compression() {
        let f0 = perturbed_state::<D2Q9>();
        let tau = 0.71;
        let m = Moments::from_f::<D2Q9>(&f0);
        // Path A: collide-and-map, then recompute moments.
        let mut fa = vec![0.0; D2Q9::Q];
        collide_and_map_projective::<D2Q9>(&m, tau, &mut fa);
        let ma = Moments::from_f::<D2Q9>(&fa);
        // Path B: collide the moments directly.
        let mut pi_b = m.pi;
        collide_pi(m.rho, m.u, &mut pi_b, 2, tau);
        for k in [0usize, 1, 3] {
            assert!((ma.pi[k] - pi_b[k]).abs() < 1e-13);
        }
        assert!((ma.rho - m.rho).abs() < 1e-13);
    }
}
