//! Projective regularization (Latt & Chopard 2006) — paper §2.2.

use super::{collide_and_map_projective, Collision};
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;

/// Projective-regularization collision: the non-equilibrium distribution is
/// replaced by its projection onto the second-order Hermite moment before
/// relaxation (eqs. 8–11). Run in the moment representation this is the
/// paper's **MR-P** propagation pattern.
#[derive(Copy, Clone, Debug)]
pub struct Projective {
    tau: f64,
}

impl Projective {
    /// Create a projective-regularization operator with relaxation time
    /// `tau`.
    pub fn new(tau: f64) -> Self {
        assert!(tau > 0.5, "regularized LBM requires τ > 1/2, got {tau}");
        Projective { tau }
    }
}

impl<L: Lattice> Collision<L> for Projective {
    fn name(&self) -> &'static str {
        "REG-P"
    }

    fn tau(&self) -> f64 {
        self.tau
    }

    fn collide(&self, f: &mut [f64]) {
        debug_assert_eq!(f.len(), L::Q);
        let m = Moments::from_f::<L>(f);
        collide_and_map_projective::<L>(&m, self.tau, f);
    }

    fn reconstruct(&self, m: &Moments, out: &mut [f64]) {
        collide_and_map_projective::<L>(m, self.tau, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_lattice::equilibrium::equilibrium;
    use lbm_lattice::{D2Q9, D3Q19};

    /// Projective collision discards information outside {ρ, u, Π}: applying
    /// it twice with τ → two different values must give the same result as
    /// collide(τ₂) ∘ collide(τ₁) where the second collision sees only the
    /// regularized state. Concretely: collide is idempotent at τ = ∞ limit…
    /// we test the practical property that a second collision with the same
    /// τ acting on the output equals collide applied to the *moments* of the
    /// output (no hidden state).
    #[test]
    fn output_is_fully_moment_determined() {
        let mut f = vec![0.0; D2Q9::Q];
        equilibrium::<D2Q9>(1.0, [0.02, 0.04, 0.0], &mut f);
        for (i, v) in f.iter_mut().enumerate() {
            *v *= 1.0 + 0.03 * ((i * i) as f64).cos();
        }
        let op = Projective::new(0.8);
        Collision::<D2Q9>::collide(&op, &mut f);
        // Rebuild from moments alone and compare.
        let m = Moments::from_f::<D2Q9>(&f);
        let mut rebuilt = vec![0.0; D2Q9::Q];
        lbm_lattice::equilibrium::f_from_moments::<D2Q9>(m.rho, m.u, &m.pi, &mut rebuilt);
        for i in 0..D2Q9::Q {
            assert!((f[i] - rebuilt[i]).abs() < 1e-13, "dir {i}");
        }
    }

    /// Regularization + collision commute with the moment projection: the
    /// moments of the collided distribution equal the collided moments.
    #[test]
    fn commutes_with_moment_projection() {
        let mut f = vec![0.0; D3Q19::Q];
        equilibrium::<D3Q19>(0.98, [0.01, 0.05, -0.03], &mut f);
        for (i, v) in f.iter_mut().enumerate() {
            *v *= 1.0 + 0.02 * (i as f64).sin();
        }
        let tau = 0.66;
        let m0 = Moments::from_f::<D3Q19>(&f);
        let op = Projective::new(tau);
        Collision::<D3Q19>::collide(&op, &mut f);
        let m1 = Moments::from_f::<D3Q19>(&f);
        let mut pi_expect = m0.pi;
        super::super::collide_pi(m0.rho, m0.u, &mut pi_expect, 3, tau);
        for k in 0..6 {
            assert!((m1.pi[k] - pi_expect[k]).abs() < 1e-13);
        }
    }
}
