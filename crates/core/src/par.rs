//! Minimal data-parallel helpers built on `std::thread::scope`.
//!
//! The solvers update disjoint node sets per thread, writing to strided
//! locations of a shared output lattice (SoA layout: direction-major), so a
//! slice split is not expressible with safe `split_at_mut`. [`SendPtr`]
//! carries the raw base pointer across the scope with the usual disjointness
//! contract; every use site documents why its writes are disjoint.

use std::ops::Range;

/// Number of worker threads: `LBM_THREADS` env override, else the machine's
/// available parallelism.
pub fn num_threads() -> usize {
    if let Ok(s) = std::env::var("LBM_THREADS") {
        if let Ok(n) = s.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split `0..n` into `threads` contiguous ranges of near-equal size and run
/// `body` on each range in parallel. With `threads == 1` the body runs
/// inline (no spawn), which keeps single-threaded benchmarks clean.
pub fn parallel_ranges<F>(n: usize, threads: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        body(0..n);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let body = &body;
            s.spawn(move || body(lo..hi));
        }
    });
}

/// A raw mutable pointer that may be shared across scoped threads.
///
/// # Safety contract
/// Callers must guarantee that concurrent users write disjoint elements and
/// that the pointee outlives the scope (both hold for the solvers: each
/// thread owns a contiguous range of node indices, and all writes for node
/// `idx` touch only offsets `dir·n + idx`).
#[derive(Copy, Clone)]
pub struct SendPtr<T>(pub *mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Create from a mutable slice; the pointer stays valid while the slice
    /// borrow is alive in the caller.
    pub fn new(slice: &mut [T]) -> Self {
        SendPtr(slice.as_mut_ptr())
    }

    /// Write `value` at `offset`.
    ///
    /// # Safety
    /// `offset` must be in bounds and not concurrently written by another
    /// thread.
    #[inline(always)]
    pub unsafe fn write(&self, offset: usize, value: T) {
        unsafe { self.0.add(offset).write(value) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn ranges_cover_exactly_once() {
        for n in [0usize, 1, 7, 100, 1001] {
            for threads in [1usize, 2, 3, 8] {
                let counter = AtomicUsize::new(0);
                let sum = AtomicUsize::new(0);
                parallel_ranges(n, threads, |r| {
                    counter.fetch_add(r.len(), Ordering::Relaxed);
                    sum.fetch_add(r.sum::<usize>(), Ordering::Relaxed);
                });
                assert_eq!(counter.load(Ordering::Relaxed), n);
                assert_eq!(sum.load(Ordering::Relaxed), n * n.saturating_sub(1) / 2);
            }
        }
    }

    #[test]
    fn sendptr_disjoint_writes() {
        let n = 1000;
        let mut data = vec![0u64; n];
        let p = SendPtr::new(&mut data);
        parallel_ranges(n, 4, |r| {
            for i in r {
                // Safety: ranges are disjoint.
                unsafe { p.write(i, i as u64 * 3) };
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u64 * 3);
        }
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
