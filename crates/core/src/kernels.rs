//! Vectorizable structure-of-arrays collision kernels.
//!
//! The moment-representation hot path used to walk each segment one node at
//! a time: gather the node's `M` moments out of the SoA scratch rows into a
//! packed `[f64; M]`, `Moments::unpack` it, collide, and map back to
//! distribution space. Every step of that chain is scalar, and on the
//! software-GPU executor (which runs on CPU cores) the Hermite arithmetic —
//! not the byte traffic — dominates wall-clock, inverting the paper's
//! bandwidth argument (ROADMAP item 1).
//!
//! This module restructures the per-segment work into `LANES`-node chunks
//! held in flat `[f64; LANES]` lane arrays. Each arithmetic step becomes a
//! fixed-trip-count loop over independent lanes, which the autovectorizer
//! turns into packed SIMD; the strided `flat[m] = scratch[m*len + j]` gather
//! disappears because the chunk loaders read the SoA rows directly
//! (contiguous `LANES`-wide slices per moment row).
//!
//! **Bitwise contract.** Every chunk kernel performs, per lane, exactly the
//! floating-point operation tree of its scalar counterpart in
//! [`crate::collision`] / `lbm_lattice`: same association, same division
//! sites, same accumulation order over directions and Hermite components.
//! Lanes are independent nodes, so vectorizing across lanes cannot reorder
//! any per-node sum. The `tests/kernel_equivalence.rs` suite holds all six
//! drivers to FNV-checksum identity between the scalar and vectorized
//! paths; the determinism contract of `lbm-serve` and the resilience layer
//! depends on it.
//!
//! Ragged tails (`len % LANES != 0`) replicate the last valid node into the
//! unused lanes so every chunk runs the full fixed trip count; stores write
//! only the valid lanes.

use crate::boundary::bounce_back::WallGains;
use crate::collision::MAX_HO;
use lbm_lattice::gram::HigherBasis;
use lbm_lattice::moments::{pair_index_3d, pairs_storage_to_canonical};
use lbm_lattice::{hermite, sym_pairs, Lattice, PAIRS};

/// SIMD chunk width in nodes. Eight f64 lanes fill two AVX2 registers (or
/// four SSE2 ones) and keep the per-chunk lane state comfortably inside L1.
pub const LANES: usize = 8;

/// Upper bound on `L::Q` across supported lattices (D3Q27 has 27); sized
/// with headroom so stack lane blocks stay fixed-size.
pub const MAX_Q: usize = 48;

/// Upper bound on `L::M` (moment count): D3Q27 stores 10, bound 16 leaves
/// headroom for extended moment sets. Drivers assert against this instead
/// of silently overrunning their `[f64; 16]` staging buffers.
pub const MAX_M: usize = 16;

/// One chunk worth of per-direction populations: `f[i][l]` is direction `i`
/// of the chunk's `l`-th node.
pub type LaneBlock = [[f64; LANES]; MAX_Q];

/// Loop-invariant constants of the per-node update, built once at driver
/// construction and borrowed by every launch: the fixed-τ relaxation
/// factor, the per-direction moving-wall gain coefficients, and the
/// scalar/vectorized path toggle used by the equivalence tests.
#[derive(Clone)]
pub struct KernelConsts {
    /// Relaxation time τ.
    pub tau: f64,
    /// Relaxation factor `ω = 1 − 1/τ` (eq. 10), the exact f64 the scalar
    /// path recomputes per node.
    pub omega: f64,
    /// Hoisted moving-wall bounce-back constants (`ρ_w = 1`).
    pub gains: WallGains,
    /// When set, drivers run the original per-node scalar kernels; the
    /// default is the vectorized chunk path. The two are bitwise-identical.
    pub scalar: bool,
}

impl KernelConsts {
    /// Build for lattice `L`; asserts the lattice fits the fixed-size lane
    /// buffers so a future velocity set cannot silently overrun them.
    pub fn new<L: Lattice>(tau: f64) -> Self {
        assert!(
            L::Q <= MAX_Q,
            "{}: Q = {} exceeds MAX_Q = {MAX_Q}",
            L::NAME,
            L::Q
        );
        assert!(
            L::M <= MAX_M,
            "{}: M = {} exceeds MAX_M = {MAX_M}",
            L::NAME,
            L::M
        );
        KernelConsts {
            tau,
            omega: 1.0 - 1.0 / tau,
            gains: WallGains::build::<L>(1.0),
            scalar: false,
        }
    }
}

/// All direction indices of `L` — the unmasked reconstruction set.
pub fn dirs_all<L: Lattice>() -> Vec<usize> {
    (0..L::Q).collect()
}

/// Storage slot of direction `i` in a single-lattice AA-pattern buffer at
/// step parity `parity`. The AA invariant keeps the lattice in *reversed*
/// slots at even times (each post-collision `f_i` lives in slot `OPP[i]`)
/// and in *natural* slots at odd times (the push half-step pre-streams the
/// next step's inputs into place). Every lane path that touches an AA
/// buffer — gather, flush, field reduction, init — routes its direction
/// index through this one function so the parity convention cannot drift
/// between kernels.
#[inline(always)]
pub fn aa_slot<L: Lattice>(parity: u64, i: usize) -> usize {
    if parity.is_multiple_of(2) {
        L::OPP[i]
    } else {
        i
    }
}

/// Direction indices whose y velocity component equals `cy`. A column
/// kernel's y-halo row only ever stores the directions pointing into the
/// footprint (`cy = +1` below it, `cy = −1` above it): every other
/// direction fails the footprint test or the `src_in_col` bounce-back
/// guard, so restricting the reconstruction to this set is bitwise-neutral.
pub fn dirs_with_cy<L: Lattice>(cy: i32) -> Vec<usize> {
    (0..L::Q).filter(|&i| L::C[i][1] == cy).collect()
}

/// Load `LANES` nodes' moments from SoA rows (`moms[m*len + j]`) into lane
/// arrays, mapping storage Π slots to canonical [`PAIRS`] slots. Full
/// chunks copy contiguous row slices; ragged tails clamp to the last valid
/// node so unused lanes replicate it.
#[inline(always)]
#[allow(clippy::type_complexity)]
fn load_moment_lanes<L: Lattice>(
    moms: &[f64],
    len: usize,
    j0: usize,
) -> ([f64; LANES], [[f64; LANES]; 3], [[f64; LANES]; 6]) {
    let mut rho = [0.0f64; LANES];
    let mut u = [[0.0f64; LANES]; 3];
    let mut pi = [[0.0f64; LANES]; 6];
    let np = sym_pairs(L::D);
    if j0 + LANES <= len {
        rho.copy_from_slice(&moms[j0..j0 + LANES]);
        for a in 0..L::D {
            u[a].copy_from_slice(&moms[(1 + a) * len + j0..][..LANES]);
        }
        for k in 0..np {
            pi[pairs_storage_to_canonical(L::D, k)]
                .copy_from_slice(&moms[(1 + L::D + k) * len + j0..][..LANES]);
        }
    } else {
        for l in 0..LANES {
            let j = (j0 + l).min(len - 1);
            rho[l] = moms[j];
            for a in 0..L::D {
                u[a][l] = moms[(1 + a) * len + j];
            }
            for k in 0..np {
                pi[pairs_storage_to_canonical(L::D, k)][l] = moms[(1 + L::D + k) * len + j];
            }
        }
    }
    (rho, u, pi)
}

/// Lane-wise moment-space collision, eq. (10): the per-lane operation tree
/// of [`crate::collision::collide_pi`] with ω hoisted.
#[inline(always)]
fn collide_pi_lanes<L: Lattice>(
    rho: &[f64; LANES],
    u: &[[f64; LANES]; 3],
    pi: &mut [[f64; LANES]; 6],
    omega: f64,
) {
    for (k, &(a, b)) in PAIRS.iter().enumerate() {
        if b >= L::D {
            continue;
        }
        let (ua, ub) = (&u[a], &u[b]);
        let pk = &mut pi[k];
        for l in 0..LANES {
            let eq = rho[l] * ua[l] * ub[l];
            pk[l] = eq + omega * (pk[l] - eq);
        }
    }
}

/// Lane-wise projective reconstruction, eq. (11): per lane, exactly
/// `lbm_lattice::equilibrium::f_from_moments` (same [`H2Map`] coefficients,
/// same slot order, same division sites).
///
/// [`H2Map`]: lbm_lattice::equilibrium::H2Map
#[inline(always)]
fn reconstruct_lanes<L: Lattice>(
    rho: &[f64; LANES],
    u: &[[f64; LANES]; 3],
    pi_star: &[[f64; LANES]; 6],
    dirs: &[usize],
    out: &mut [[f64; LANES]],
) {
    let map = L::h2map();
    let cs2 = L::CS2;
    let inv_cs2 = 1.0 / cs2;
    let inv_2cs4 = 1.0 / (2.0 * cs2 * cs2);
    let nk = sym_pairs(L::D); // const-folds at monomorphization, unlike map.nk()
    debug_assert_eq!(map.ks().len(), nk);
    // Densify the canonical Π* slots once per chunk so the per-direction
    // contraction walks contiguous lanes with a compile-time trip count
    // instead of chasing `ks` indirections 19 times over.
    let mut pi_k = [[0.0f64; LANES]; 6];
    for (j, &k) in map.ks().iter().enumerate() {
        pi_k[j] = pi_star[k];
    }
    let mut one = |i: usize| {
        let c = map.c(i);
        let row = map.coeff(i);
        let w = L::W[i];
        let mut cu = [0.0f64; LANES];
        for l in 0..LANES {
            cu[l] = c[0] * u[0][l] + c[1] * u[1][l] + c[2] * u[2][l];
        }
        let mut h2pi = [0.0f64; LANES];
        for j in 0..nk {
            let rj = row[j];
            let pk = &pi_k[j];
            for l in 0..LANES {
                h2pi[l] += rj * pk[l];
            }
        }
        let o = &mut out[i];
        for l in 0..LANES {
            o[l] = w * (rho[l] + rho[l] * cu[l] * inv_cs2 + h2pi[l] * inv_2cs4);
        }
    };
    // The unmasked hot path keeps the contiguous counted loop — an
    // indirect index list defeats the vectorizer's range analysis.
    if dirs.len() == L::Q {
        for i in 0..L::Q {
            one(i);
        }
    } else {
        for &i in dirs {
            one(i);
        }
    }
}

/// Projective collide-and-map (MR-P) over one chunk: unpack + collide +
/// reconstruct fused into a single pass over the SoA rows. Writes the
/// post-collision populations of nodes `j0 .. min(j0+LANES, len)` into
/// `out[i][l]` for the directions in `dirs` only (tail lanes replicate the
/// last node; unlisted directions are left untouched and must not be
/// read). Column kernels pass a restricted `dirs` for halo rows, whose
/// scatter can only ever store the directions pointing into the footprint.
#[inline]
pub fn mr_p_collide_chunk<L: Lattice>(
    moms: &[f64],
    len: usize,
    j0: usize,
    omega: f64,
    dirs: &[usize],
    out: &mut [[f64; LANES]],
) {
    let (rho, u, mut pi) = load_moment_lanes::<L>(moms, len, j0);
    collide_pi_lanes::<L>(&rho, &u, &mut pi, omega);
    reconstruct_lanes::<L>(&rho, &u, &pi, dirs, &mut out[..L::Q]);
}

/// Recursive collide-and-map (MR-R) over one chunk: additionally rebuilds
/// and relaxes the higher-order Hermite coefficients (eqs. 12–14), lane-wise
/// with the exact scalar operation order of
/// [`crate::collision::collide_and_map_recursive`].
#[inline]
pub fn mr_r_collide_chunk<L: Lattice>(
    moms: &[f64],
    len: usize,
    j0: usize,
    omega: f64,
    basis: &HigherBasis,
    dirs: &[usize],
    out: &mut [[f64; LANES]],
) {
    let (rho, u, mut pi) = load_moment_lanes::<L>(moms, len, j0);

    // Π^neq = Π − Π^eq on all six canonical slots (out-of-plane slots stay
    // +0.0 exactly as the scalar `Moments::pi_neq` produces), fused with
    // the Π collide — `eq + ω·(Π − eq)` reuses the Π^eq already in hand,
    // the identical expression `collide_pi_lanes` forms.
    let mut pi_neq = [[0.0f64; LANES]; 6];
    for (k, &(a, b)) in PAIRS.iter().enumerate() {
        if b >= L::D {
            continue;
        }
        let (ua, ub) = (&u[a], &u[b]);
        let (nk, pk) = (&mut pi_neq[k], &mut pi[k]);
        for l in 0..LANES {
            let eq = rho[l] * ua[l] * ub[l];
            nk[l] = pk[l] - eq;
            pk[l] = eq + omega * nk[l];
        }
    }

    // a* = a_eq + ω a_neq (eqs. 12–13), recursion relations on {ρ, u, Π^neq},
    // laid out contiguously (a⁽³⁾* then a⁽⁴⁾*) for the fused contraction.
    let n3 = L::H3_COMPONENTS.len();
    let mut a34 = [[0.0f64; LANES]; 2 * MAX_HO];
    for (k, &(idx, _)) in L::H3_COMPONENTS.iter().enumerate() {
        let [a, b, g] = idx;
        let kbg = pair_index_3d(L::D, b, g);
        let kag = pair_index_3d(L::D, a, g);
        let kab = pair_index_3d(L::D, a, b);
        let lane = &mut a34[k];
        for l in 0..LANES {
            let eq = rho[l] * u[a][l] * u[b][l] * u[g][l];
            let neq =
                u[a][l] * pi_neq[kbg][l] + u[b][l] * pi_neq[kag][l] + u[g][l] * pi_neq[kab][l];
            lane[l] = eq + omega * neq;
        }
    }
    for (k, &(idx, _)) in L::H4_COMPONENTS.iter().enumerate() {
        let [a, b, g, e] = idx;
        let kge = pair_index_3d(L::D, g, e);
        let kbe = pair_index_3d(L::D, b, e);
        let kbg = pair_index_3d(L::D, b, g);
        let kae = pair_index_3d(L::D, a, e);
        let kag = pair_index_3d(L::D, a, g);
        let kab = pair_index_3d(L::D, a, b);
        let lane = &mut a34[n3 + k];
        for l in 0..LANES {
            let eq = rho[l] * u[a][l] * u[b][l] * u[g][l] * u[e][l];
            let neq = u[a][l] * u[b][l] * pi_neq[kge][l]
                + u[a][l] * u[g][l] * pi_neq[kbe][l]
                + u[a][l] * u[e][l] * pi_neq[kbg][l]
                + u[b][l] * u[g][l] * pi_neq[kae][l]
                + u[b][l] * u[e][l] * pi_neq[kag][l]
                + u[g][l] * u[e][l] * pi_neq[kab][l];
            lane[l] = eq + omega * neq;
        }
    }

    reconstruct_lanes::<L>(&rho, &u, &pi, dirs, &mut out[..L::Q]);

    // Higher-order contributions of eq. (14), through the fused
    // [`HigherBasis::nz34`] list — the same precomputed `(c·mult)·h`
    // coefficients in the same nz3-then-cf4 order the scalar loop walks,
    // so the accumulation is bitwise-neutral.
    let mut one = |i: usize| {
        let mut extra = [0.0f64; LANES];
        for &(k, cf) in basis.nz34(i) {
            let lane = &a34[k as usize];
            for l in 0..LANES {
                extra[l] += cf * lane[l];
            }
        }
        let w = L::W[i];
        let o = &mut out[i];
        for l in 0..LANES {
            o[l] += w * extra[l];
        }
    };
    if dirs.len() == L::Q {
        for i in 0..L::Q {
            one(i);
        }
    } else {
        for &i in dirs {
            one(i);
        }
    }
}

/// Moments of one chunk of post-streaming populations (`f[i][l]`, tail
/// lanes replicating the last node), written SoA into
/// `moms[m*len + j0 ..]` for the valid lanes — the lane-wise fusion of
/// `Moments::from_f` + `Moments::pack` used by the MR finalize passes.
#[inline]
pub fn moments_from_f_lanes<L: Lattice>(
    f: &[[f64; LANES]],
    moms: &mut [f64],
    len: usize,
    j0: usize,
) {
    let cnt = LANES.min(len - j0);
    let mut rho = [0.0f64; LANES];
    let mut jm = [[0.0f64; LANES]; 3];
    for i in 0..L::Q {
        let fi = &f[i];
        let c = L::cf(i);
        for l in 0..LANES {
            rho[l] += fi[l];
        }
        for a in 0..3 {
            let ca = c[a];
            let ja = &mut jm[a];
            for l in 0..LANES {
                ja[l] += ca * fi[l];
            }
        }
    }
    let mut u = [[0.0f64; LANES]; 3];
    {
        let mut inv_rho = [0.0f64; LANES];
        for l in 0..LANES {
            inv_rho[l] = 1.0 / rho[l];
        }
        for a in 0..3 {
            for l in 0..LANES {
                u[a][l] = jm[a][l] * inv_rho[l];
            }
        }
    }
    moms[j0..j0 + cnt].copy_from_slice(&rho[..cnt]);
    for a in 0..L::D {
        moms[(1 + a) * len + j0..][..cnt].copy_from_slice(&u[a][..cnt]);
    }
    // Π rows in storage order (2D: xx, xy, yy), accumulated over directions
    // in the exact order of `Moments::from_f`.
    let mut kp = 0;
    for &(a, b) in PAIRS.iter() {
        if b >= L::D {
            continue;
        }
        let mut s = [0.0f64; LANES];
        for i in 0..L::Q {
            let h = hermite::h2::<L>(L::cf(i), a, b);
            let fi = &f[i];
            for l in 0..LANES {
                s[l] += h * fi[l];
            }
        }
        moms[(1 + L::D + kp) * len + j0..][..cnt].copy_from_slice(&s[..cnt]);
        kp += 1;
    }
}

/// Vectorized BGK relaxation over `count` nodes stored SoA in
/// `f[i*stride + base + j]` — the chunked form of [`crate::collision::Bgk`]
/// with the per-lane operation tree of the scalar `collide`.
pub fn bgk_collide_soa<L: Lattice>(
    f: &mut [f64],
    stride: usize,
    base: usize,
    count: usize,
    inv_tau: f64,
) {
    let cs2 = L::CS2;
    let inv_cs2 = 1.0 / cs2;
    let inv_2cs4 = 1.0 / (2.0 * cs2 * cs2);
    let mut j0 = 0;
    while j0 < count {
        let cnt = LANES.min(count - j0);
        let mut fl = [[0.0f64; LANES]; MAX_Q];
        for i in 0..L::Q {
            let src = &f[i * stride + base + j0..];
            let lane = &mut fl[i];
            if cnt == LANES {
                lane.copy_from_slice(&src[..LANES]);
            } else {
                for l in 0..LANES {
                    lane[l] = src[l.min(cnt - 1)];
                }
            }
        }
        let mut rho = [0.0f64; LANES];
        let mut jm = [[0.0f64; LANES]; 3];
        for i in 0..L::Q {
            let fi = &fl[i];
            let c = L::cf(i);
            for l in 0..LANES {
                rho[l] += fi[l];
            }
            for a in 0..3 {
                let ca = c[a];
                let ja = &mut jm[a];
                for l in 0..LANES {
                    ja[l] += ca * fi[l];
                }
            }
        }
        let mut u = [[0.0f64; LANES]; 3];
        let mut usq = [0.0f64; LANES];
        for l in 0..LANES {
            let inv_rho = 1.0 / rho[l];
            u[0][l] = jm[0][l] * inv_rho;
            u[1][l] = jm[1][l] * inv_rho;
            u[2][l] = jm[2][l] * inv_rho;
            usq[l] = u[0][l] * u[0][l] + u[1][l] * u[1][l] + u[2][l] * u[2][l];
        }
        for i in 0..L::Q {
            let c = L::cf(i);
            let w = L::W[i];
            let lane = &mut fl[i];
            for l in 0..LANES {
                let cu = c[0] * u[0][l] + c[1] * u[1][l] + c[2] * u[2][l];
                let feq = w * rho[l] * (1.0 + cu * inv_cs2 + (cu * cu - cs2 * usq[l]) * inv_2cs4);
                lane[l] += inv_tau * (feq - lane[l]);
            }
        }
        for i in 0..L::Q {
            f[i * stride + base + j0..][..cnt].copy_from_slice(&fl[i][..cnt]);
        }
        j0 += LANES;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collision::{collide_and_map_projective, collide_and_map_recursive};
    use lbm_lattice::equilibrium::equilibrium;
    use lbm_lattice::moments::Moments;
    use lbm_lattice::{D2Q9, D3Q19};

    /// A small bank of perturbed near-equilibrium states, packed SoA.
    fn soa_states<L: Lattice>(n: usize) -> (Vec<f64>, Vec<Moments>) {
        let mut moms = vec![0.0; L::M * n];
        let mut nodes = Vec::with_capacity(n);
        for j in 0..n {
            let s = j as f64;
            let mut f = vec![0.0; L::Q];
            let u = [0.03 * (s * 0.7).sin(), -0.02 * (s * 1.3).cos(), 0.0];
            equilibrium::<L>(1.0 + 0.05 * (s * 0.31).sin(), u, &mut f);
            for (i, v) in f.iter_mut().enumerate() {
                *v *= 1.0 + 0.01 * ((i as f64) + s).sin();
            }
            let m = Moments::from_f::<L>(&f);
            let mut flat = vec![0.0; L::M];
            m.pack::<L>(&mut flat);
            for (mi, &v) in flat.iter().enumerate() {
                moms[mi * n + j] = v;
            }
            nodes.push(m);
        }
        (moms, nodes)
    }

    fn chunks_match_scalar<L: Lattice>(n: usize) {
        let tau = 0.81;
        let omega = 1.0 - 1.0 / tau;
        let (moms, nodes) = soa_states::<L>(n);
        let basis = HigherBasis::new::<L>();
        let all = dirs_all::<L>();
        let mut want_p = vec![0.0; L::Q];
        let mut want_r = vec![0.0; L::Q];
        let mut out = [[0.0f64; LANES]; MAX_Q];
        let mut j0 = 0;
        while j0 < n {
            let cnt = LANES.min(n - j0);
            mr_p_collide_chunk::<L>(&moms, n, j0, omega, &all, &mut out);
            for l in 0..cnt {
                collide_and_map_projective::<L>(&nodes[j0 + l], tau, &mut want_p);
                for i in 0..L::Q {
                    assert_eq!(out[i][l].to_bits(), want_p[i].to_bits(), "MR-P i={i}");
                }
            }
            mr_r_collide_chunk::<L>(&moms, n, j0, omega, &basis, &all, &mut out);
            for l in 0..cnt {
                collide_and_map_recursive::<L>(&nodes[j0 + l], tau, &basis, &mut want_r);
                for i in 0..L::Q {
                    assert_eq!(out[i][l].to_bits(), want_r[i].to_bits(), "MR-R i={i}");
                }
            }
            j0 += LANES;
        }
    }

    /// A masked-direction chunk writes exactly the listed directions and
    /// leaves the rest untouched.
    #[test]
    fn masked_dirs_match_and_spare_the_rest() {
        type L = lbm_lattice::D3Q19;
        let n = 9;
        let omega = 1.0 - 1.0 / 0.81;
        let (moms, _) = soa_states::<L>(n);
        let basis = HigherBasis::new::<L>();
        let all = dirs_all::<L>();
        let up = dirs_with_cy::<L>(1);
        assert_eq!(up.len(), 5);
        let mut full = [[0.0f64; LANES]; MAX_Q];
        let mut masked = [[7.5f64; LANES]; MAX_Q];
        mr_r_collide_chunk::<L>(&moms, n, 0, omega, &basis, &all, &mut full);
        mr_r_collide_chunk::<L>(&moms, n, 0, omega, &basis, &up, &mut masked);
        for i in 0..L::Q {
            for l in 0..LANES {
                if up.contains(&i) {
                    assert_eq!(masked[i][l].to_bits(), full[i][l].to_bits());
                } else {
                    assert_eq!(masked[i][l], 7.5, "dir {i} was touched");
                }
            }
        }
    }

    /// Chunked MR collide-and-map is bitwise-identical to the scalar chain,
    /// including ragged tails.
    #[test]
    fn mr_chunks_bitwise_match() {
        chunks_match_scalar::<D2Q9>(16);
        chunks_match_scalar::<D2Q9>(13);
        chunks_match_scalar::<D2Q9>(3);
        chunks_match_scalar::<D3Q19>(11);
    }

    /// Fused from_f + pack round-trips bitwise against the scalar pair.
    #[test]
    fn moments_from_f_lanes_bitwise_match() {
        fn check<L: Lattice>(n: usize) {
            let mut fs = Vec::with_capacity(n);
            for j in 0..n {
                let s = j as f64;
                let mut f = vec![0.0; L::Q];
                equilibrium::<L>(
                    1.0 + 0.04 * (s * 0.77).cos(),
                    [0.02 * s.sin(), 0.015 * (s * 0.5).cos(), 0.0],
                    &mut f,
                );
                for (i, v) in f.iter_mut().enumerate() {
                    *v *= 1.0 + 0.008 * ((i as f64) - s).cos();
                }
                fs.push(f);
            }
            let mut got = vec![0.0; L::M * n];
            let mut lanes = [[0.0f64; LANES]; MAX_Q];
            let mut j0 = 0;
            while j0 < n {
                for l in 0..LANES {
                    let j = (j0 + l).min(n - 1);
                    for i in 0..L::Q {
                        lanes[i][l] = fs[j][i];
                    }
                }
                moments_from_f_lanes::<L>(&lanes[..L::Q], &mut got, n, j0);
                j0 += LANES;
            }
            let mut flat = vec![0.0; L::M];
            for j in 0..n {
                Moments::from_f::<L>(&fs[j]).pack::<L>(&mut flat);
                for (mi, &v) in flat.iter().enumerate() {
                    assert_eq!(got[mi * n + j].to_bits(), v.to_bits(), "m={mi} j={j}");
                }
            }
        }
        check::<D2Q9>(16);
        check::<D2Q9>(9);
        check::<D3Q19>(7);
    }

    /// Chunked BGK matches the scalar operator bitwise on SoA storage.
    #[test]
    fn bgk_soa_bitwise_match() {
        use crate::collision::{Bgk, Collision};
        fn check<L: Lattice>(n: usize) {
            let stride = n + 3;
            let base = 1;
            let mut soa = vec![0.0; L::Q * stride];
            let mut per_node = Vec::with_capacity(n);
            for j in 0..n {
                let s = j as f64;
                let mut f = vec![0.0; L::Q];
                equilibrium::<L>(
                    1.0 + 0.03 * (s * 0.41).sin(),
                    [0.025 * (s * 0.9).cos(), -0.01 * s.sin(), 0.0],
                    &mut f,
                );
                for (i, v) in f.iter_mut().enumerate() {
                    *v *= 1.0 + 0.012 * ((i as f64) * 0.3 + s).sin();
                }
                for i in 0..L::Q {
                    soa[i * stride + base + j] = f[i];
                }
                per_node.push(f);
            }
            let bgk = Bgk::new(0.77);
            bgk_collide_soa::<L>(&mut soa, stride, base, n, 1.0 / 0.77);
            for j in 0..n {
                Collision::<L>::collide(&bgk, &mut per_node[j]);
                for i in 0..L::Q {
                    assert_eq!(
                        soa[i * stride + base + j].to_bits(),
                        per_node[j][i].to_bits(),
                        "i={i} j={j}"
                    );
                }
            }
        }
        check::<D2Q9>(19);
        check::<D3Q19>(8);
    }

    /// The consts builder rejects lattices that would overrun the fixed
    /// lane buffers (exercised via the bound values themselves).
    #[test]
    fn consts_bounds() {
        let c = KernelConsts::new::<D3Q19>(0.8);
        assert_eq!(c.omega, 1.0 - 1.0 / 0.8);
        assert!(!c.scalar);
        const { assert!(D3Q19::Q <= MAX_Q && D3Q19::M <= MAX_M) };
    }
}
