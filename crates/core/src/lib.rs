//! Reference lattice Boltzmann solvers and physics.
//!
//! This crate implements the paper's numerics independently of any GPU
//! concern:
//!
//! * [`collision`] — the three collision operators evaluated in the paper:
//!   BGK (eq. 6), projective regularization (eqs. 8–11, "MR-P"), and
//!   recursive regularization (eqs. 12–14, "MR-R"), plus the moment-space
//!   collision (eq. 10) used by the moment-representation kernels.
//! * [`boundary`] — halfway bounce-back walls, moving walls, and the
//!   Latt-2008 finite-difference inlet/outlet conditions the paper uses for
//!   its channel flows.
//! * [`geometry`] — node classification and domain builders (2D/3D channel,
//!   fully periodic box, lid-driven cavity).
//! * [`solver2d`] / [`solver3d`] — the *standard distribution representation*
//!   reference solvers (two lattices, pull scheme — Algorithm 1 of the
//!   paper), parallelized over CPU threads. These are the ground truth the
//!   GPU-substrate kernels are validated against, bit-for-bit up to
//!   floating-point roundoff.
//! * [`analytic`] — closed-form solutions (plane Poiseuille, Taylor–Green
//!   vortex) used by the validation tests and examples.
//! * [`diagnostics`] / [`io`] / [`units`] — observables, field output, and
//!   lattice-unit conversions.
//! * [`sim`] — the [`Simulation`] trait: the uniform driver surface
//!   (step/checkpoint/restore/checksum/observe) implemented by all six
//!   GPU-substrate drivers and consumed by the recovery loop and the
//!   `lbm-serve` fleet scheduler.

#![allow(clippy::needless_range_loop)] // indexed loops are the idiom in stencil kernels
pub mod analytic;
pub mod boundary;
pub mod collision;
pub mod diagnostics;
pub mod geometry;
pub mod io;
pub mod kernels;
pub mod par;
pub mod sim;
pub mod solver;
pub mod solver2d;
pub mod solver3d;
pub mod units;

pub use geometry::{Geometry, NodeType};
pub use sim::{Simulation, StepError};
pub use solver::Solver;
pub use solver2d::Solver2D;
pub use solver3d::Solver3D;
