//! The driver-facing simulation surface shared by every solver in the
//! workspace.
//!
//! Six drivers (ST / MR-P / MR-R × single / multi-device) historically
//! exposed the same inherent-method convention — `step`, `checkpoint`,
//! `restore`, `field_checksum`, `with_obs`, … — duplicated six ways with
//! nothing enforcing agreement. [`Simulation`] names that surface once, as
//! an object-safe trait, so schedulers (`lbm-serve`), the recovery loop
//! (`lbm-multi::recovery`), and tests can drive any driver through a
//! `Box<dyn Simulation + Send>` without knowing its pattern, lattice, or
//! sharding.
//!
//! The trait lives here (below `gpu-sim` in the crate graph) so it can be
//! implemented by both the single-device drivers in `lbm-gpu` and the
//! sharded ones in `lbm-multi`. Interconnect failures surface as the
//! substrate-agnostic [`StepError`] — a mirror of `gpu-sim`'s `LinkError`
//! that this crate cannot name directly.

use crate::io::CheckpointError;
use std::sync::Arc;

/// Why a timestep could not complete. Single-device drivers never fail a
/// step; sharded drivers surface halo-exchange failures that outlasted the
/// driver's retry budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepError {
    /// A device-to-device transfer failed. Transient failures may succeed
    /// if the whole step is replayed; permanent ones never will.
    Link {
        from: usize,
        to: usize,
        permanent: bool,
    },
    /// The exchange schedule asked for a transfer between non-neighbors —
    /// a programming error, never retryable.
    NoRoute { from: usize, to: usize },
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepError::Link {
                from,
                to,
                permanent,
            } => write!(
                f,
                "link {from}->{to} failed ({})",
                if *permanent { "permanent" } else { "transient" }
            ),
            StepError::NoRoute { from, to } => {
                write!(f, "no route between devices {from} and {to}")
            }
        }
    }
}

impl std::error::Error for StepError {}

/// The uniform driver surface: advance, snapshot, restore, fingerprint,
/// observe. Object-safe — schedulers hold `Box<dyn Simulation + Send>`.
///
/// Implementations must be *deterministic*: two identically configured
/// simulations advanced the same number of steps produce bitwise-identical
/// fields (and therefore equal [`Simulation::field_checksum`]s), regardless
/// of CPU thread counts or whether the run was interrupted by a
/// checkpoint/restore round trip. Every scheduler-level guarantee in
/// `lbm-serve` (eviction transparency, recovery transparency) rests on this
/// contract.
pub trait Simulation {
    /// Advance one timestep. Panics on unrecoverable interconnect failure;
    /// use [`Simulation::try_step`] where that must be handled.
    fn step(&mut self);

    /// Advance one timestep, surfacing halo failures that outlasted the
    /// driver's retry budget. Single-device drivers cannot fail.
    fn try_step(&mut self) -> Result<(), StepError> {
        self.step();
        Ok(())
    }

    /// Completed timesteps.
    fn steps(&self) -> u64;

    /// Serialize the full solver state as a versioned, checksummed LBCK
    /// snapshot (lattice, step counter, traffic accumulator).
    fn checkpoint(&self) -> Vec<u8>;

    /// Restore a [`Simulation::checkpoint`] snapshot taken on an
    /// identically configured simulation; rolls the physics monitor back
    /// too. Resuming replays the exact uninterrupted trajectory.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), CheckpointError>;

    /// FNV-1a fingerprint of the macroscopic fields (bitwise-sensitive).
    fn field_checksum(&self) -> u64;

    /// Density and velocity fields (solid nodes report zero).
    fn macro_fields(&self) -> (Vec<f64>, Vec<[f64; 3]>);

    /// Attach an observability hub: step spans, kernel spans, and launch
    /// metrics flow through it from this point on.
    fn set_obs(&mut self, obs: Arc<obs::Obs>);

    /// Builder-style [`Simulation::set_obs`].
    fn with_obs(mut self, obs: Arc<obs::Obs>) -> Self
    where
        Self: Sized,
    {
        self.set_obs(obs);
        self
    }

    /// Attach (or clear) the fleet trace context: the job identity the
    /// scheduler assigned this simulation. Drivers append its args to the
    /// step/halo/kernel spans they emit, so one job's spans are filterable
    /// across executors, evictions, and resumes. Pure annotation — never
    /// affects stepping, tallies, or checksums. Default: ignored (solo
    /// runs have no job identity).
    fn set_trace_ctx(&mut self, ctx: Option<obs::fleet::TraceCtx>) {
        let _ = ctx;
    }

    /// Whether the attached physics monitor (if any) has no violations.
    fn monitor_ok(&self) -> bool {
        true
    }

    /// Force a final monitor sample at the current step (no-op without a
    /// monitor).
    fn finish_monitor(&mut self) {}

    /// Halo-transfer retries performed so far (0 for single-device).
    fn halo_retries(&self) -> u64 {
        0
    }

    /// Fluid lattice nodes — the unit of MFLUPS throughput and of
    /// per-tenant residency quotas.
    fn fluid_nodes(&self) -> usize;

    /// Device-memory footprint of the resident lattices, in bytes.
    fn footprint_bytes(&self) -> usize;

    /// Resident device bytes this simulation holds for quota purposes —
    /// the number the `lbm-serve` ledger charges a tenant. Defaults to
    /// [`Simulation::footprint_bytes`]; drivers whose footprint includes
    /// non-lattice scratch can override. Single-lattice (in-place) drivers
    /// report exactly `Q·8·n` / `M·8·n` here, half of their two-lattice
    /// counterparts.
    fn resident_bytes(&self) -> usize {
        self.footprint_bytes()
    }

    /// Health probe: every sampled field value finite and no standing
    /// monitor violation.
    fn is_healthy(&self) -> bool {
        if !self.monitor_ok() {
            return false;
        }
        let (rho, u) = self.macro_fields();
        rho.iter().all(|v| v.is_finite()) && u.iter().flatten().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_error_displays_both_variants() {
        let e = StepError::Link {
            from: 0,
            to: 1,
            permanent: true,
        };
        assert_eq!(e.to_string(), "link 0->1 failed (permanent)");
        let e = StepError::NoRoute { from: 2, to: 0 };
        assert_eq!(e.to_string(), "no route between devices 2 and 0");
    }
}
