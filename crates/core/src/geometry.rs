//! Domain geometry: node classification and builders for the flows the
//! paper evaluates (rectangular 2D/3D channels) plus the periodic box and
//! lid-driven cavity used by the validation examples.
//!
//! The domain is a dense Cartesian box of `nx × ny × nz` nodes (`nz = 1` in
//! 2D) indexed `idx = z·nx·ny + y·nx + x` — the same linearization as
//! Algorithm 1 of the paper, so flat indices are comparable across the
//! reference and GPU-substrate solvers.

/// Classification of a lattice node.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum NodeType {
    /// Bulk fluid updated by the standard collide–stream cycle.
    Fluid,
    /// Solid wall: populations streaming into it are bounced back.
    Wall,
    /// Moving solid wall (lid-driven cavity): bounce-back with momentum
    /// transfer `−2 ω_i ρ (c_i·u_w)/c_s²`.
    MovingWall([f64; 3]),
    /// Velocity inlet: the Latt finite-difference condition prescribes the
    /// stored velocity and reconstructs a regularized distribution.
    Inlet([f64; 3]),
    /// Pressure outlet: density is pinned to the stored value; velocity is
    /// extrapolated from the interior.
    Outlet(f64),
}

impl NodeType {
    /// Whether populations stream *through* this node normally.
    #[inline]
    pub fn is_fluid_like(self) -> bool {
        matches!(
            self,
            NodeType::Fluid | NodeType::Inlet(_) | NodeType::Outlet(_)
        )
    }

    /// Whether this node reflects populations (any kind of wall).
    #[inline]
    pub fn is_solid(self) -> bool {
        matches!(self, NodeType::Wall | NodeType::MovingWall(_))
    }
}

/// A rectangular lattice domain with per-node classification and optional
/// periodicity per axis.
#[derive(Clone, Debug)]
pub struct Geometry {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Periodic wrap per axis. Non-periodic axes must be terminated by
    /// Wall/Inlet/Outlet nodes.
    pub periodic: [bool; 3],
    nodes: Vec<NodeType>,
}

impl Geometry {
    /// An all-fluid box with the given periodicity.
    pub fn new(nx: usize, ny: usize, nz: usize, periodic: [bool; 3]) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0);
        Geometry {
            nx,
            ny,
            nz,
            periodic,
            nodes: vec![NodeType::Fluid; nx * ny * nz],
        }
    }

    /// Fully periodic box (used by the Taylor–Green validation).
    pub fn periodic_2d(nx: usize, ny: usize) -> Self {
        Self::new(nx, ny, 1, [true, true, true])
    }

    /// Fully periodic 3D box.
    pub fn periodic_3d(nx: usize, ny: usize, nz: usize) -> Self {
        Self::new(nx, ny, nz, [true, true, true])
    }

    /// The paper's 2D benchmark: a rectangular channel, bounce-back walls at
    /// `y = 0` and `y = ny−1`, velocity inlet at `x = 0`, pressure outlet at
    /// `x = nx−1`.
    pub fn channel_2d(nx: usize, ny: usize, u_inlet: f64) -> Self {
        let mut g = Self::new(nx, ny, 1, [false, false, true]);
        for x in 0..nx {
            g.set(x, 0, 0, NodeType::Wall);
            g.set(x, ny - 1, 0, NodeType::Wall);
        }
        for y in 1..ny - 1 {
            g.set(0, y, 0, NodeType::Inlet([u_inlet, 0.0, 0.0]));
            g.set(nx - 1, y, 0, NodeType::Outlet(1.0));
        }
        g
    }

    /// 2D channel with a parabolic (Poiseuille) inlet profile of peak
    /// velocity `u_max` between the walls.
    pub fn channel_2d_poiseuille(nx: usize, ny: usize, u_max: f64) -> Self {
        let mut g = Self::channel_2d(nx, ny, 0.0);
        for y in 1..ny - 1 {
            let u = crate::analytic::poiseuille_profile(y, ny, u_max);
            g.set(0, y, 0, NodeType::Inlet([u, 0.0, 0.0]));
        }
        g
    }

    /// The paper's 3D benchmark: rectangular duct along `x`, bounce-back on
    /// all four lateral faces (`y`/`z` extremes), inlet/outlet on `x`.
    pub fn channel_3d(nx: usize, ny: usize, nz: usize, u_inlet: f64) -> Self {
        let mut g = Self::new(nx, ny, nz, [false, false, false]);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let lateral_wall = y == 0 || y == ny - 1 || z == 0 || z == nz - 1;
                    if lateral_wall {
                        g.set(x, y, z, NodeType::Wall);
                    } else if x == 0 {
                        g.set(x, y, z, NodeType::Inlet([u_inlet, 0.0, 0.0]));
                    } else if x == nx - 1 {
                        g.set(x, y, z, NodeType::Outlet(1.0));
                    }
                }
            }
        }
        g
    }

    /// 2D plane-Poiseuille test rig: periodic along `x`, walls on `y`,
    /// driven by inlet/outlet replaced with a body force elsewhere — here we
    /// keep walls only and let callers drive the flow.
    pub fn walls_y_periodic_x(nx: usize, ny: usize) -> Self {
        let mut g = Self::new(nx, ny, 1, [true, false, true]);
        for x in 0..nx {
            g.set(x, 0, 0, NodeType::Wall);
            g.set(x, ny - 1, 0, NodeType::Wall);
        }
        g
    }

    /// Carve a solid circular cylinder (2D) or circular column (3D, axis
    /// along z) of radius `r` centered at `(cx, cy)` into the domain —
    /// the classic flow-past-a-cylinder obstacle.
    pub fn with_cylinder(mut self, cx: f64, cy: f64, r: f64) -> Self {
        for z in 0..self.nz {
            for y in 0..self.ny {
                for x in 0..self.nx {
                    let (dx, dy) = (x as f64 - cx, y as f64 - cy);
                    if dx * dx + dy * dy <= r * r {
                        self.set(x, y, z, NodeType::Wall);
                    }
                }
            }
        }
        self
    }

    /// Lid-driven cavity: stationary walls on three sides, a moving lid with
    /// velocity `(u_lid, 0, 0)` at `y = ny−1`.
    pub fn cavity_2d(n: usize, u_lid: f64) -> Self {
        let mut g = Self::new(n, n, 1, [false, false, true]);
        for x in 0..n {
            g.set(x, 0, 0, NodeType::Wall);
            g.set(x, n - 1, 0, NodeType::MovingWall([u_lid, 0.0, 0.0]));
        }
        for y in 1..n - 1 {
            g.set(0, y, 0, NodeType::Wall);
            g.set(n - 1, y, 0, NodeType::Wall);
        }
        g
    }

    /// Total number of nodes (fluid and solid).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the domain has no nodes (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of fluid-like nodes (fluid + inlet + outlet) — the "fluid
    /// lattice points" of the paper's MFLUPS metric.
    pub fn fluid_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_fluid_like()).count()
    }

    /// Flat index of `(x, y, z)`.
    #[inline(always)]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        (z * self.ny + y) * self.nx + x
    }

    /// Inverse of [`Geometry::idx`].
    #[inline(always)]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let x = idx % self.nx;
        let y = (idx / self.nx) % self.ny;
        let z = idx / (self.nx * self.ny);
        (x, y, z)
    }

    /// Node classification at `(x, y, z)`.
    #[inline(always)]
    pub fn node(&self, x: usize, y: usize, z: usize) -> NodeType {
        self.nodes[self.idx(x, y, z)]
    }

    /// Node classification at a flat index.
    #[inline(always)]
    pub fn node_at(&self, idx: usize) -> NodeType {
        self.nodes[idx]
    }

    /// Set the classification of a node.
    pub fn set(&mut self, x: usize, y: usize, z: usize, t: NodeType) {
        let i = self.idx(x, y, z);
        self.nodes[i] = t;
    }

    /// Neighbor coordinates in direction `c` (a lattice velocity), honoring
    /// periodic wrap. Returns `None` if the neighbor falls outside a
    /// non-periodic axis (possible only for boundary-adjacent reads, which
    /// the solvers treat as bounce-back).
    #[inline(always)]
    pub fn neighbor(
        &self,
        x: usize,
        y: usize,
        z: usize,
        c: [i32; 3],
    ) -> Option<(usize, usize, usize)> {
        let dims = [self.nx as i64, self.ny as i64, self.nz as i64];
        let mut p = [
            x as i64 + c[0] as i64,
            y as i64 + c[1] as i64,
            z as i64 + c[2] as i64,
        ];
        for a in 0..3 {
            if p[a] < 0 || p[a] >= dims[a] {
                if self.periodic[a] {
                    p[a] = p[a].rem_euclid(dims[a]);
                } else {
                    return None;
                }
            }
        }
        Some((p[0] as usize, p[1] as usize, p[2] as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_coords_roundtrip() {
        let g = Geometry::new(7, 5, 3, [false; 3]);
        for z in 0..3 {
            for y in 0..5 {
                for x in 0..7 {
                    assert_eq!(g.coords(g.idx(x, y, z)), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn channel_2d_classification() {
        let g = Geometry::channel_2d(10, 6, 0.05);
        assert_eq!(g.node(3, 0, 0), NodeType::Wall);
        assert_eq!(g.node(3, 5, 0), NodeType::Wall);
        assert!(matches!(g.node(0, 2, 0), NodeType::Inlet(_)));
        assert!(matches!(g.node(9, 2, 0), NodeType::Outlet(_)));
        assert_eq!(g.node(4, 3, 0), NodeType::Fluid);
        // Corners belong to the walls.
        assert_eq!(g.node(0, 0, 0), NodeType::Wall);
        assert_eq!(g.node(9, 5, 0), NodeType::Wall);
    }

    #[test]
    fn channel_3d_classification() {
        let g = Geometry::channel_3d(8, 6, 5, 0.02);
        assert_eq!(g.node(4, 0, 2), NodeType::Wall);
        assert_eq!(g.node(4, 5, 2), NodeType::Wall);
        assert_eq!(g.node(4, 2, 0), NodeType::Wall);
        assert_eq!(g.node(4, 2, 4), NodeType::Wall);
        assert!(matches!(g.node(0, 2, 2), NodeType::Inlet(_)));
        assert!(matches!(g.node(7, 2, 2), NodeType::Outlet(_)));
        assert_eq!(g.node(3, 2, 2), NodeType::Fluid);
    }

    #[test]
    fn periodic_neighbor_wraps() {
        let g = Geometry::periodic_2d(4, 4);
        assert_eq!(g.neighbor(0, 0, 0, [-1, 0, 0]), Some((3, 0, 0)));
        assert_eq!(g.neighbor(3, 3, 0, [1, 1, 0]), Some((0, 0, 0)));
    }

    #[test]
    fn nonperiodic_neighbor_clips() {
        let g = Geometry::channel_2d(5, 5, 0.0);
        assert_eq!(g.neighbor(0, 2, 0, [-1, 0, 0]), None);
        assert_eq!(g.neighbor(4, 2, 0, [1, 0, 0]), None);
        assert_eq!(g.neighbor(2, 2, 0, [1, 0, 0]), Some((3, 2, 0)));
    }

    #[test]
    fn fluid_count_excludes_walls() {
        let g = Geometry::channel_2d(10, 6, 0.0);
        // 2 wall rows of 10 nodes each.
        assert_eq!(g.fluid_count(), 10 * 6 - 20);
    }

    #[test]
    fn cavity_has_moving_lid() {
        let g = Geometry::cavity_2d(8, 0.1);
        assert!(matches!(g.node(3, 7, 0), NodeType::MovingWall(_)));
        assert_eq!(g.node(0, 3, 0), NodeType::Wall);
        assert_eq!(g.node(3, 3, 0), NodeType::Fluid);
    }

    #[test]
    fn cylinder_carves_solid_disk() {
        let g = Geometry::channel_2d(40, 20, 0.05).with_cylinder(12.0, 10.0, 3.5);
        assert!(g.node(12, 10, 0).is_solid());
        assert!(g.node(12, 13, 0).is_solid());
        assert!(g.node(12, 14, 0) == NodeType::Fluid);
        assert!(g.node(30, 10, 0) == NodeType::Fluid);
        // The obstacle reduces the fluid count by roughly πr².
        let without = Geometry::channel_2d(40, 20, 0.05).fluid_count();
        let with = g.fluid_count();
        let carved = (without - with) as f64;
        assert!((carved - std::f64::consts::PI * 3.5 * 3.5).abs() < 10.0);
    }

    #[test]
    fn poiseuille_inlet_profile_is_parabolic() {
        let g = Geometry::channel_2d_poiseuille(16, 11, 0.1);
        let mid = match g.node(0, 5, 0) {
            NodeType::Inlet(u) => u[0],
            _ => panic!("not an inlet"),
        };
        let near_wall = match g.node(0, 1, 0) {
            NodeType::Inlet(u) => u[0],
            _ => panic!("not an inlet"),
        };
        assert!(mid > near_wall);
        assert!(mid <= 0.1 + 1e-12);
    }
}
