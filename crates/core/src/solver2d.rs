//! 2D specialization of the reference solver plus physical validation
//! against analytic solutions.

use crate::collision::Collision;
use crate::solver::Solver;
use lbm_lattice::D2Q9;

/// The D2Q9 reference solver (paper's 2D "ST" implementation).
pub type Solver2D<C> = Solver<D2Q9, C>;

/// Convenience constructor mirroring [`Solver::new`].
pub fn solver_2d<C: Collision<D2Q9>>(geom: crate::Geometry, collision: C) -> Solver2D<C> {
    Solver::new(geom, collision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;
    use crate::collision::{Bgk, Projective, Recursive};
    use crate::geometry::Geometry;
    use crate::units;

    /// Taylor–Green vortex: kinetic energy must decay at the viscous rate
    /// `exp(−2ν(kx²+ky²)t)` within a small tolerance. This pins the
    /// viscosity–τ relation ν = c_s²(τ − 1/2) end to end.
    fn taylor_green_decay_rate<C: Collision<D2Q9>>(collision: C, tau: f64) {
        let (nx, ny) = (32, 32);
        let u0 = 0.02;
        let geom = Geometry::periodic_2d(nx, ny);
        let mut s = Solver2D::new(geom, collision).with_threads(2);
        s.init_with(|x, y, _| {
            (
                analytic::taylor_green_density(x, y, nx, ny, u0, 1.0),
                analytic::taylor_green_velocity(x, y, nx, ny, u0),
            )
        });
        let e0: f64 = s
            .velocity_field()
            .iter()
            .map(|u| u[0] * u[0] + u[1] * u[1])
            .sum();
        let steps = 200;
        s.run(steps);
        let e1: f64 = s
            .velocity_field()
            .iter()
            .map(|u| u[0] * u[0] + u[1] * u[1])
            .sum();
        let nu = units::nu_from_tau(tau);
        let expect = analytic::taylor_green_decay(nx, ny, nu, steps as f64);
        let got = e1 / e0;
        let rel = (got - expect).abs() / expect;
        assert!(
            rel < 0.02,
            "decay {got:.5} vs analytic {expect:.5} (rel {rel:.4})"
        );
    }

    #[test]
    fn taylor_green_bgk() {
        taylor_green_decay_rate(Bgk::new(0.8), 0.8);
    }

    #[test]
    fn taylor_green_projective() {
        taylor_green_decay_rate(Projective::new(0.8), 0.8);
    }

    #[test]
    fn taylor_green_recursive() {
        taylor_green_decay_rate(Recursive::new::<D2Q9>(0.8), 0.8);
    }

    /// Channel flow with a parabolic inlet must converge to the analytic
    /// Poiseuille profile in the interior.
    #[test]
    fn poiseuille_profile_develops() {
        let (nx, ny) = (48, 18);
        let u_max = 0.05;
        let geom = Geometry::channel_2d_poiseuille(nx, ny, u_max);
        let mut s = Solver2D::new(geom, Projective::new(0.8)).with_threads(2);
        s.run(3000);
        let u = s.velocity_field();
        let g = s.geom();
        // Compare mid-channel column against the analytic profile.
        let x = nx / 2;
        let mut max_rel: f64 = 0.0;
        for y in 1..ny - 1 {
            let want = analytic::poiseuille_profile(y, ny, u_max);
            let got = u[g.idx(x, y, 0)][0];
            let rel = (got - want).abs() / u_max;
            max_rel = max_rel.max(rel);
        }
        assert!(max_rel < 0.03, "max relative deviation {max_rel:.4}");
    }
}
