//! Flow observables used by tests, examples, and the benchmark harness.

use crate::geometry::Geometry;

/// Total kinetic energy `Σ ρ |u|² / 2` over fluid-like nodes.
pub fn kinetic_energy(geom: &Geometry, rho: &[f64], u: &[[f64; 3]]) -> f64 {
    let mut e = 0.0;
    for idx in 0..geom.len() {
        if geom.node_at(idx).is_fluid_like() {
            let usq = u[idx][0] * u[idx][0] + u[idx][1] * u[idx][1] + u[idx][2] * u[idx][2];
            e += 0.5 * rho[idx] * usq;
        }
    }
    e
}

/// Maximum velocity magnitude over fluid-like nodes.
pub fn max_velocity(geom: &Geometry, u: &[[f64; 3]]) -> f64 {
    let mut m: f64 = 0.0;
    for idx in 0..geom.len() {
        if geom.node_at(idx).is_fluid_like() {
            let usq = u[idx][0] * u[idx][0] + u[idx][1] * u[idx][1] + u[idx][2] * u[idx][2];
            m = m.max(usq);
        }
    }
    m.sqrt()
}

/// Density extremes over fluid-like nodes — a cheap stability monitor
/// (density excursions precede blow-up).
pub fn density_range(geom: &Geometry, rho: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for idx in 0..geom.len() {
        if geom.node_at(idx).is_fluid_like() {
            lo = lo.min(rho[idx]);
            hi = hi.max(rho[idx]);
        }
    }
    (lo, hi)
}

/// Relative L2 error of a velocity component against a reference function,
/// over fluid-like nodes: `‖got − want‖₂ / ‖want‖₂`.
pub fn l2_velocity_error(
    geom: &Geometry,
    u: &[[f64; 3]],
    component: usize,
    want: impl Fn(usize, usize, usize) -> f64,
) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for idx in 0..geom.len() {
        if geom.node_at(idx).is_fluid_like() {
            let (x, y, z) = geom.coords(idx);
            let w = want(x, y, z);
            let d = u[idx][component] - w;
            num += d * d;
            den += w * w;
        }
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

/// True if any field value is non-finite — the solver has blown up.
pub fn has_diverged(rho: &[f64], u: &[[f64; 3]]) -> bool {
    rho.iter().any(|v| !v.is_finite()) || u.iter().any(|v| v.iter().any(|c| !c.is_finite()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig() -> (Geometry, Vec<f64>, Vec<[f64; 3]>) {
        let geom = Geometry::periodic_2d(4, 4);
        let n = geom.len();
        let rho = vec![1.0; n];
        let mut u = vec![[0.0; 3]; n];
        u[0] = [0.3, 0.4, 0.0]; // |u| = 0.5
        (geom, rho, u)
    }

    #[test]
    fn kinetic_energy_of_single_mover() {
        let (g, rho, u) = rig();
        assert!((kinetic_energy(&g, &rho, &u) - 0.5 * 0.25).abs() < 1e-15);
    }

    #[test]
    fn max_velocity_finds_peak() {
        let (g, _, u) = rig();
        assert!((max_velocity(&g, &u) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn density_range_detects_spread() {
        let (g, mut rho, _) = rig();
        rho[3] = 1.2;
        rho[7] = 0.9;
        let (lo, hi) = density_range(&g, &rho);
        assert_eq!((lo, hi), (0.9, 1.2));
    }

    #[test]
    fn l2_error_zero_on_exact_match() {
        let (g, _, u) = rig();
        let err = l2_velocity_error(
            &g,
            &u,
            0,
            |x, y, _| {
                if x == 0 && y == 0 {
                    0.3
                } else {
                    0.0
                }
            },
        );
        assert!(err < 1e-15);
    }

    #[test]
    fn divergence_detector() {
        let (_, mut rho, u) = rig();
        assert!(!has_diverged(&rho, &u));
        rho[1] = f64::NAN;
        assert!(has_diverged(&rho, &u));
    }
}
