//! Lattice-unit relations: viscosity, relaxation time, Reynolds and Mach
//! numbers.

use lbm_lattice::CS2;

/// Kinematic viscosity from relaxation time: `ν = c_s² (τ − 1/2)`,
/// for the standard single-speed lattices (c_s² = 1/3).
#[inline]
pub fn nu_from_tau(tau: f64) -> f64 {
    nu_from_tau_cs2(tau, CS2)
}

/// [`nu_from_tau`] for a lattice with an arbitrary sound speed (multi-speed
/// sets like D3Q39 have c_s² = 2/3).
#[inline]
pub fn nu_from_tau_cs2(tau: f64, cs2: f64) -> f64 {
    cs2 * (tau - 0.5)
}

/// Relaxation time from kinematic viscosity: `τ = ν/c_s² + 1/2`.
#[inline]
pub fn tau_from_nu(nu: f64) -> f64 {
    tau_from_nu_cs2(nu, CS2)
}

/// [`tau_from_nu`] for an arbitrary sound speed.
#[inline]
pub fn tau_from_nu_cs2(nu: f64, cs2: f64) -> f64 {
    nu / cs2 + 0.5
}

/// Reynolds number `Re = U L / ν` in lattice units.
#[inline]
pub fn reynolds(u: f64, l: f64, nu: f64) -> f64 {
    u * l / nu
}

/// Relaxation time that realizes a target Reynolds number for a flow with
/// characteristic velocity `u` and length `l` (both in lattice units).
#[inline]
pub fn tau_for_reynolds(re: f64, u: f64, l: f64) -> f64 {
    tau_from_nu(u * l / re)
}

/// Mach number with respect to the lattice speed of sound.
#[inline]
pub fn mach(u: f64) -> f64 {
    u / CS2.sqrt()
}

/// Whether a velocity is inside the usual low-Mach validity envelope of the
/// second-order equilibrium (`Ma ≲ 0.3`).
#[inline]
pub fn is_low_mach(u: f64) -> bool {
    mach(u) < 0.3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nu_tau_roundtrip() {
        for tau in [0.51, 0.8, 1.0, 1.7] {
            assert!((tau_from_nu(nu_from_tau(tau)) - tau).abs() < 1e-15);
        }
    }

    #[test]
    fn tau_one_gives_sixth() {
        assert!((nu_from_tau(1.0) - 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn reynolds_and_tau() {
        let (re, u, l) = (100.0, 0.05, 64.0);
        let tau = tau_for_reynolds(re, u, l);
        let nu = nu_from_tau(tau);
        assert!((reynolds(u, l, nu) - re).abs() < 1e-9);
        assert!(tau > 0.5);
    }

    #[test]
    fn mach_envelope() {
        assert!(is_low_mach(0.1));
        assert!(!is_low_mach(0.3));
        assert!((mach(CS2.sqrt()) - 1.0).abs() < 1e-15);
    }
}
