//! Finite-difference inlet/outlet conditions (Latt et al. 2008, the paper's
//! ref. \[6\]), formulated in moment space.
//!
//! A boundary node's state is defined entirely by `{ρ, u, Π}`:
//!
//! * a **velocity inlet** prescribes `u` and extrapolates `ρ` from the
//!   first interior node;
//! * a **pressure outlet** prescribes `ρ` and extrapolates `u`;
//! * in both cases `Π^neq` is estimated from the first-order Chapman–Enskog
//!   relation `Π^neq = −2 ρ c_s² τ S`, with the strain rate `S` computed by
//!   finite differences: second-order one-sided along the face normal,
//!   central along the tangents.
//!
//! The function returns the node's *pre-collision* moment state. The ST
//! solver reconstructs populations via the collision operator's regularized
//! rebuild; the MR kernels simply store the moments — which is exactly why
//! the paper pairs this boundary condition with the moment representation.

use crate::geometry::{Geometry, NodeType};
use lbm_lattice::moments::Moments;
use lbm_lattice::{Lattice, PAIRS};

/// Velocity of a node on the inlet/outlet face for tangential differencing.
fn face_velocity(
    geom: &Geometry,
    x: usize,
    y: usize,
    z: usize,
    s: i64,
    macro_at: &impl Fn(usize, usize, usize) -> (f64, [f64; 3]),
) -> [f64; 3] {
    match geom.node(x, y, z) {
        NodeType::Inlet(u) => u,
        NodeType::MovingWall(u) => u,
        NodeType::Wall => [0.0; 3],
        NodeType::Outlet(_) => {
            // Extrapolate from the first interior node along the normal.
            let xi = (x as i64 + s) as usize;
            macro_at(xi, y, z).1
        }
        NodeType::Fluid => macro_at(x, y, z).1,
    }
}

/// Compute the pre-collision moment state of an inlet or outlet node on an
/// `x`-face of the domain.
///
/// `macro_at` must return `(ρ, u)` of *interior* nodes at the new time
/// level. Panics if the node is not on an `x` extreme or is not an
/// inlet/outlet.
pub fn boundary_node_moments<L: Lattice>(
    geom: &Geometry,
    x: usize,
    y: usize,
    z: usize,
    tau: f64,
    macro_at: &impl Fn(usize, usize, usize) -> (f64, [f64; 3]),
) -> Moments {
    let node = geom.node(x, y, z);
    // Inward normal direction along x: +1 on the low face, −1 on the high.
    let s: i64 = if x == 0 {
        1
    } else if x == geom.nx - 1 {
        -1
    } else {
        panic!("inlet/outlet node not on an x face: ({x},{y},{z})")
    };
    let x1 = (x as i64 + s) as usize;
    let x2 = (x as i64 + 2 * s) as usize;
    let (rho1, u1) = macro_at(x1, y, z);
    let (_, u2) = macro_at(x2, y, z);

    let (rho, u) = match node {
        NodeType::Inlet(u_bc) => (rho1, u_bc),
        NodeType::Outlet(rho_bc) => (rho_bc, u1),
        other => panic!("not an inlet/outlet node: {other:?}"),
    };

    // Velocity gradient tensor g[a][b] = ∂_a u_b.
    let mut grad = [[0.0f64; 3]; 3];
    // Normal (x) derivative: second-order one-sided,
    // ∂x u = s (−3 u₀ + 4 u₁ − u₂) / 2.
    for b in 0..3 {
        grad[0][b] = s as f64 * (-3.0 * u[b] + 4.0 * u1[b] - u2[b]) / 2.0;
    }
    // Tangential derivatives: central differences over the face, falling
    // back to one-sided at the domain edge (adjacent to wall corners the
    // wall's no-slip velocity participates, as it should).
    let d = if geom.nz == 1 { 2 } else { 3 };
    for a in 1..d {
        let (hi, lo) = match a {
            1 => (
                (y + 1 < geom.ny).then(|| face_velocity(geom, x, y + 1, z, s, macro_at)),
                (y > 0).then(|| face_velocity(geom, x, y - 1, z, s, macro_at)),
            ),
            _ => (
                (z + 1 < geom.nz).then(|| face_velocity(geom, x, y, z + 1, s, macro_at)),
                (z > 0).then(|| face_velocity(geom, x, y, z - 1, s, macro_at)),
            ),
        };
        for b in 0..3 {
            grad[a][b] = match (lo, hi) {
                (Some(l), Some(h)) => (h[b] - l[b]) / 2.0,
                (None, Some(h)) => h[b] - u[b],
                (Some(l), None) => u[b] - l[b],
                (None, None) => 0.0,
            };
        }
    }

    // Π^neq = −2 ρ c_s² τ S, S = (∇u + ∇uᵀ)/2.
    let mut pi = Moments::pi_eq(rho, u, d);
    for (k, &(a, b)) in PAIRS.iter().enumerate() {
        if b >= d {
            continue;
        }
        let strain = 0.5 * (grad[a][b] + grad[b][a]);
        pi[k] += -2.0 * rho * L::CS2 * tau * strain;
    }

    Moments { rho, u, pi }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_lattice::{CS2, D2Q9};

    /// Uniform flow: zero gradients, Π = Π_eq, ρ extrapolated.
    #[test]
    fn uniform_inlet_state() {
        let geom = Geometry::channel_2d(10, 8, 0.05);
        let macro_at = |_x: usize, _y: usize, _z: usize| (1.02, [0.05, 0.0, 0.0]);
        let m = boundary_node_moments::<D2Q9>(&geom, 0, 3, 0, 0.8, &macro_at);
        assert!((m.rho - 1.02).abs() < 1e-15);
        assert!((m.u[0] - 0.05).abs() < 1e-15);
        assert_eq!(m.u[1], 0.0);
        let pi_eq = Moments::pi_eq(m.rho, m.u, 2);
        for k in 0..6 {
            assert!((m.pi[k] - pi_eq[k]).abs() < 1e-12, "pi[{k}]");
        }
    }

    /// Outlet pins the density and copies the interior velocity.
    #[test]
    fn outlet_state() {
        let geom = Geometry::channel_2d(10, 8, 0.05);
        let macro_at = |_x: usize, _y: usize, _z: usize| (1.3, [0.04, 0.01, 0.0]);
        let m = boundary_node_moments::<D2Q9>(&geom, 9, 3, 0, 0.8, &macro_at);
        assert!((m.rho - 1.0).abs() < 1e-15, "outlet density pinned");
        assert!((m.u[0] - 0.04).abs() < 1e-15);
        assert!((m.u[1] - 0.01).abs() < 1e-15);
    }

    /// A linear shear u_x(x) gives the expected Π^neq_xx from the one-sided
    /// stencil: with u(x) = a + b·x the stencil is exact.
    #[test]
    fn linear_normal_gradient_is_exact() {
        let geom = Geometry::channel_2d(10, 8, 0.0);
        let b = 1e-3;
        // Interior field u_x = b·x; prescribed inlet velocity must match
        // u_x(0) = 0 for consistency (Inlet([0,…]) from the builder).
        let macro_at = |x: usize, _y: usize, _z: usize| (1.0, [b * x as f64, 0.0, 0.0]);
        let tau = 0.9;
        let m = boundary_node_moments::<D2Q9>(&geom, 0, 3, 0, tau, &macro_at);
        // ∂x u_x = b exactly; S_xx = b; Π^neq_xx = −2 ρ c_s² τ b.
        let pi_eq = Moments::pi_eq(m.rho, m.u, 2);
        let want = -2.0 * 1.0 * CS2 * tau * b;
        assert!(
            ((m.pi[0] - pi_eq[0]) - want).abs() < 1e-15,
            "{} vs {want}",
            m.pi[0] - pi_eq[0]
        );
    }

    /// Tangential shear at the inlet: a Poiseuille-like profile produces a
    /// Π^neq_xy consistent with ∂y u_x by central differences.
    #[test]
    fn tangential_gradient_from_profile() {
        let ny = 16;
        let geom = Geometry::channel_2d_poiseuille(12, ny, 0.1);
        let macro_at = |_x: usize, y: usize, _z: usize| {
            (
                1.0,
                [crate::analytic::poiseuille_profile(y, ny, 0.1), 0.0, 0.0],
            )
        };
        let tau = 0.75;
        let y = 5;
        let m = boundary_node_moments::<D2Q9>(&geom, 0, y, 0, tau, &macro_at);
        let dudy = (crate::analytic::poiseuille_profile(y + 1, ny, 0.1)
            - crate::analytic::poiseuille_profile(y - 1, ny, 0.1))
            / 2.0;
        let pi_eq = Moments::pi_eq(m.rho, m.u, 2);
        let want = -2.0 * CS2 * tau * 0.5 * dudy; // S_xy = dudy/2, ρ = 1
        let got = m.pi[1] - pi_eq[1];
        assert!((got - want).abs() < 1e-12, "Π^neq_xy {got} vs {want}");
    }

    #[test]
    #[should_panic(expected = "not an inlet/outlet")]
    fn rejects_fluid_node() {
        // All-fluid box: the node at x = 0 is Fluid, not a boundary node.
        let geom = Geometry::new(10, 8, 1, [false, false, true]);
        let macro_at = |_x: usize, _y: usize, _z: usize| (1.0, [0.0; 3]);
        let _ = boundary_node_moments::<D2Q9>(&geom, 0, 3, 0, 0.8, &macro_at);
    }

    #[test]
    #[should_panic(expected = "not on an x face")]
    fn rejects_interior_node() {
        let geom = Geometry::channel_2d(10, 8, 0.05);
        let macro_at = |_x: usize, _y: usize, _z: usize| (1.0, [0.0; 3]);
        let _ = boundary_node_moments::<D2Q9>(&geom, 5, 3, 0, 0.8, &macro_at);
    }
}
