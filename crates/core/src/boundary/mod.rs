//! Boundary conditions.
//!
//! The paper's channel flows use two kinds of boundaries (§4):
//!
//! * **halfway bounce-back** at the channel walls — implemented during
//!   streaming by both representations ([`bounce_back`] provides the shared
//!   moving-wall momentum correction);
//! * **finite-difference velocity/pressure conditions** at the inlet and
//!   outlet (Latt et al. 2008, ref. \[6\]) — implemented in moment space
//!   ([`inlet_outlet`]), which is precisely why they compose naturally with
//!   the moment representation: the boundary node's state is *defined* by
//!   `{ρ, u, Π}` with `Π^neq` estimated from finite-difference velocity
//!   gradients.

pub mod bounce_back;
pub mod inlet_outlet;

pub use bounce_back::{moving_wall_gain, WallGains};
pub use inlet_outlet::boundary_node_moments;
