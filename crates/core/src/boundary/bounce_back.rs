//! Halfway bounce-back, including the moving-wall momentum correction.
//!
//! In the *pull* scheme (Algorithm 1), a fluid node `x` whose neighbor
//! `x − c_i` is solid receives its own reflected post-collision population:
//! `f_i(x, t+1) = f*_{ī}(x, t)`, with `ī = OPP[i]`. For a wall moving at
//! `u_w` the Ladd momentum correction adds `2 ω_i ρ (c_i·u_w)/c_s²`.
//! The same rule appears in *push* form inside the MR kernels: a population
//! leaving `x` toward a wall in direction `j` is deposited back at `x` in
//! direction `OPP[j]` with the correction for `i = OPP[j]`.

use lbm_lattice::Lattice;

/// The additive momentum-correction term for a population arriving at a
/// fluid node in direction `i` after reflecting off a wall moving with
/// velocity `u_w`: `2 ω_i ρ_w (c_i · u_w) / c_s²`.
///
/// `rho_w` is the wall-adjacent density estimate; the standard low-Mach
/// approximation `ρ_w = 1` is what the solvers pass.
#[inline(always)]
pub fn moving_wall_gain<L: Lattice>(i: usize, u_w: [f64; 3], rho_w: f64) -> f64 {
    let c = L::cf(i);
    let cu = c[0] * u_w[0] + c[1] * u_w[1] + c[2] * u_w[2];
    2.0 * L::W[i] * rho_w * cu / L::CS2
}

/// Per-direction moving-wall constants, hoisted out of the streaming inner
/// loops (the inline form re-derives `2 ω_i ρ_w` on every solid-neighbor
/// hit). `coeff[i]` stores the exact f64 product `2.0 · W[i] · ρ_w` the
/// inline expression forms left-to-right, and [`WallGains::gain`] finishes
/// with the same `· (c_i·u_w) / c_s²` association and division, so the
/// result is bitwise-identical to [`moving_wall_gain`].
#[derive(Clone)]
pub struct WallGains {
    coeff: Vec<f64>,
    c: Vec<[f64; 3]>,
    cs2: f64,
}

impl WallGains {
    /// Build the per-direction table for lattice `L` at wall density
    /// `rho_w` (the solvers use the low-Mach estimate `ρ_w = 1`).
    pub fn build<L: Lattice>(rho_w: f64) -> Self {
        WallGains {
            coeff: (0..L::Q).map(|i| 2.0 * L::W[i] * rho_w).collect(),
            c: (0..L::Q).map(L::cf).collect(),
            cs2: L::CS2,
        }
    }

    /// The momentum-correction gain for direction `i` against a wall moving
    /// at `u_w`; bitwise-equal to [`moving_wall_gain`].
    #[inline(always)]
    pub fn gain(&self, i: usize, u_w: [f64; 3]) -> f64 {
        let c = self.c[i];
        let cu = c[0] * u_w[0] + c[1] * u_w[1] + c[2] * u_w[2];
        self.coeff[i] * cu / self.cs2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_lattice::{D2Q9, D3Q19};

    /// The hoisted per-direction table reproduces the inline expression
    /// bit-for-bit.
    #[test]
    fn hoisted_gains_bitwise_equal() {
        let uw = [0.1, -0.04, 0.02];
        let g = WallGains::build::<D3Q19>(1.0);
        for i in 0..D3Q19::Q {
            assert_eq!(
                g.gain(i, uw).to_bits(),
                moving_wall_gain::<D3Q19>(i, uw, 1.0).to_bits()
            );
        }
    }

    /// A stationary wall adds nothing.
    #[test]
    fn stationary_wall_no_gain() {
        for i in 0..D2Q9::Q {
            assert_eq!(moving_wall_gain::<D2Q9>(i, [0.0; 3], 1.0), 0.0);
        }
    }

    /// Opposite directions get opposite gains (momentum is injected along
    /// the wall velocity).
    #[test]
    fn gains_are_antisymmetric() {
        let uw = [0.1, 0.02, 0.0];
        for i in 0..D3Q19::Q {
            let g = moving_wall_gain::<D3Q19>(i, uw, 1.0);
            let go = moving_wall_gain::<D3Q19>(D3Q19::OPP[i], uw, 1.0);
            assert!((g + go).abs() < 1e-15);
        }
    }

    /// Summed over all directions the corrections carry net momentum
    /// `Σ_i c_i · 2ω_i ρ (c_i·u_w)/c_s² = 2 ρ u_w` per reflecting node —
    /// the classic Ladd result.
    #[test]
    fn net_momentum_injection() {
        let uw = [0.07, -0.03, 0.01];
        let mut net = [0.0f64; 3];
        for i in 0..D3Q19::Q {
            let g = moving_wall_gain::<D3Q19>(i, uw, 1.0);
            let c = D3Q19::cf(i);
            for a in 0..3 {
                net[a] += c[a] * g;
            }
        }
        for a in 0..3 {
            assert!((net[a] - 2.0 * uw[a]).abs() < 1e-14, "axis {a}: {}", net[a]);
        }
    }
}
