//! Harness utilities shared by the `reproduce` binary and the Criterion
//! benches: run one configuration of (device, pattern, lattice, size),
//! collect the measured B/F from the traffic ledger, and map it through the
//! roofline/efficiency models to the modeled MFLUPS the paper reports.
//!
//! Absolute figure/table sizes in the paper reach tens of millions of
//! nodes; the harness measures B/F on a moderate domain (B/F is
//! size-independent up to boundary effects — verified by a test below) and
//! evaluates the size sweep through the saturation model. The CPU wall-clock
//! MFLUPS of the substrate itself is also reported as a genuinely measured,
//! but hardware-incomparable, series.

#![allow(clippy::needless_range_loop)] // indexed loops are the idiom in stencil kernels
use gpu_sim::efficiency::{modeled_mflups, Pattern};
use gpu_sim::DeviceSpec;
use lbm_core::collision::Bgk;
use lbm_core::Geometry;
use lbm_gpu::{AaStSim, MrScheme, MrSim2D, MrSim3D, StSim};
use lbm_lattice::{D2Q9, D3Q19, D3Q27, D3Q39};
use std::time::Instant;

/// Result of one harness run.
#[derive(Clone, Debug)]
pub struct RunResult {
    pub device: &'static str,
    pub pattern: Pattern,
    pub lattice: &'static str,
    pub fluid_nodes: usize,
    pub steps: usize,
    /// DRAM bytes per fluid lattice update, from the traffic ledger.
    pub measured_bpf: f64,
    /// Wall-clock MFLUPS of the substrate run on this CPU.
    pub wall_mflups: f64,
}

impl RunResult {
    /// Modeled throughput at `nodes` fluid nodes on the run's device.
    pub fn modeled_mflups(&self, dev: &DeviceSpec, nodes: usize) -> f64 {
        let dim = if self.lattice.starts_with("D2") { 2 } else { 3 };
        modeled_mflups(dev, self.pattern, dim, self.measured_bpf, nodes)
    }
}

/// Default relaxation time for the harness flows.
pub const TAU: f64 = 0.8;

fn shear_init_2d(_x: usize, y: usize, _z: usize) -> (f64, [f64; 3]) {
    (1.0, [0.04 * (y as f64 * 0.37).sin(), 0.0, 0.0])
}

fn shear_init_3d(_x: usize, y: usize, z: usize) -> (f64, [f64; 3]) {
    (1.0, [0.03 * ((y + z) as f64 * 0.31).sin(), 0.0, 0.0])
}

/// Bulk-dominated 2D benchmark domain: walls in y, periodic in x.
pub fn bench_geometry_2d(nx: usize, ny: usize) -> Geometry {
    Geometry::walls_y_periodic_x(nx, ny)
}

/// Bulk-dominated 3D benchmark domain: walls in y and z, periodic in x.
pub fn bench_geometry_3d(nx: usize, ny: usize, nz: usize) -> Geometry {
    let mut g = Geometry::new(nx, ny, nz, [true, false, false]);
    for z in 0..nz {
        for x in 0..nx {
            g.set(x, 0, z, lbm_core::NodeType::Wall);
            g.set(x, ny - 1, z, lbm_core::NodeType::Wall);
        }
    }
    for y in 0..ny {
        for x in 0..nx {
            g.set(x, y, 0, lbm_core::NodeType::Wall);
            g.set(x, y, nz - 1, lbm_core::NodeType::Wall);
        }
    }
    g
}

/// Run a 2D configuration and collect its measurements.
pub fn run_2d(
    device: DeviceSpec,
    pattern: Pattern,
    nx: usize,
    ny: usize,
    steps: usize,
) -> RunResult {
    let name = device.name;
    let geom = bench_geometry_2d(nx, ny);
    let fluid = geom.fluid_count();
    match pattern {
        Pattern::Standard => {
            let mut sim: StSim<D2Q9, _> = StSim::new(device, geom, Bgk::new(TAU));
            sim.init_with(shear_init_2d);
            let t0 = Instant::now();
            sim.run(steps);
            finish(name, pattern, "D2Q9", fluid, steps, sim.measured_bpf(), t0)
        }
        Pattern::StandardAa => {
            let mut sim: AaStSim<D2Q9, _> = AaStSim::new(device, geom, Bgk::new(TAU));
            sim.init_with(shear_init_2d);
            let t0 = Instant::now();
            sim.run(steps);
            finish(name, pattern, "D2Q9", fluid, steps, sim.measured_bpf(), t0)
        }
        Pattern::MomentProjective | Pattern::MomentRecursive => {
            let scheme = if pattern == Pattern::MomentProjective {
                MrScheme::projective()
            } else {
                MrScheme::recursive::<D2Q9>()
            };
            let mut sim: MrSim2D<D2Q9> = MrSim2D::new(device, geom, scheme, TAU);
            sim.init_with(shear_init_2d);
            let t0 = Instant::now();
            sim.run(steps);
            finish(name, pattern, "D2Q9", fluid, steps, sim.measured_bpf(), t0)
        }
        Pattern::MomentTwist => {
            let mut sim: MrSim2D<D2Q9> =
                MrSim2D::new(device, geom, MrScheme::projective(), TAU).with_twist();
            sim.init_with(shear_init_2d);
            let t0 = Instant::now();
            sim.run(steps);
            finish(name, pattern, "D2Q9", fluid, steps, sim.measured_bpf(), t0)
        }
    }
}

/// Run a 3D configuration and collect its measurements.
pub fn run_3d(
    device: DeviceSpec,
    pattern: Pattern,
    nx: usize,
    ny: usize,
    nz: usize,
    steps: usize,
) -> RunResult {
    let name = device.name;
    let geom = bench_geometry_3d(nx, ny, nz);
    let fluid = geom.fluid_count();
    match pattern {
        Pattern::Standard => {
            let mut sim: StSim<D3Q19, _> = StSim::new(device, geom, Bgk::new(TAU));
            sim.init_with(shear_init_3d);
            let t0 = Instant::now();
            sim.run(steps);
            finish(name, pattern, "D3Q19", fluid, steps, sim.measured_bpf(), t0)
        }
        Pattern::StandardAa => {
            let mut sim: AaStSim<D3Q19, _> = AaStSim::new(device, geom, Bgk::new(TAU));
            sim.init_with(shear_init_3d);
            let t0 = Instant::now();
            sim.run(steps);
            finish(name, pattern, "D3Q19", fluid, steps, sim.measured_bpf(), t0)
        }
        Pattern::MomentProjective | Pattern::MomentRecursive => {
            let scheme = if pattern == Pattern::MomentProjective {
                MrScheme::projective()
            } else {
                MrScheme::recursive::<D3Q19>()
            };
            let mut sim: MrSim3D<D3Q19> = MrSim3D::new(device, geom, scheme, TAU);
            sim.init_with(shear_init_3d);
            let t0 = Instant::now();
            sim.run(steps);
            finish(name, pattern, "D3Q19", fluid, steps, sim.measured_bpf(), t0)
        }
        Pattern::MomentTwist => {
            let mut sim: MrSim3D<D3Q19> =
                MrSim3D::new(device, geom, MrScheme::projective(), TAU).with_twist();
            sim.init_with(shear_init_3d);
            let t0 = Instant::now();
            sim.run(steps);
            finish(name, pattern, "D3Q19", fluid, steps, sim.measured_bpf(), t0)
        }
    }
}

fn finish(
    device: &'static str,
    pattern: Pattern,
    lattice: &'static str,
    fluid_nodes: usize,
    steps: usize,
    measured_bpf: f64,
    t0: Instant,
) -> RunResult {
    let dt = t0.elapsed().as_secs_f64();
    let wall_mflups = fluid_nodes as f64 * steps as f64 / dt / 1e6;
    RunResult {
        device,
        pattern,
        lattice,
        fluid_nodes,
        steps,
        measured_bpf,
        wall_mflups,
    }
}

/// Run a 3D configuration on the D3Q27 lattice (paper §5 future work:
/// "lattices with a large number of components, such as the single-speed
/// D3Q27"). The MR advantage grows: 2Q·8 = 432 vs 2M·8 = 160 B/F.
pub fn run_3d_q27(
    device: DeviceSpec,
    pattern: Pattern,
    nx: usize,
    ny: usize,
    nz: usize,
    steps: usize,
) -> RunResult {
    let name = device.name;
    let geom = bench_geometry_3d(nx, ny, nz);
    let fluid = geom.fluid_count();
    match pattern {
        Pattern::Standard => {
            let mut sim: StSim<D3Q27, _> = StSim::new(device, geom, Bgk::new(TAU));
            sim.init_with(shear_init_3d);
            let t0 = Instant::now();
            sim.run(steps);
            finish(name, pattern, "D3Q27", fluid, steps, sim.measured_bpf(), t0)
        }
        Pattern::StandardAa => {
            let mut sim: AaStSim<D3Q27, _> = AaStSim::new(device, geom, Bgk::new(TAU));
            sim.init_with(shear_init_3d);
            let t0 = Instant::now();
            sim.run(steps);
            finish(name, pattern, "D3Q27", fluid, steps, sim.measured_bpf(), t0)
        }
        Pattern::MomentProjective | Pattern::MomentRecursive => {
            let scheme = if pattern == Pattern::MomentProjective {
                MrScheme::projective()
            } else {
                MrScheme::recursive::<D3Q27>()
            };
            let mut sim: MrSim3D<D3Q27> = MrSim3D::new(device, geom, scheme, TAU);
            sim.init_with(shear_init_3d);
            let t0 = Instant::now();
            sim.run(steps);
            finish(name, pattern, "D3Q27", fluid, steps, sim.measured_bpf(), t0)
        }
        Pattern::MomentTwist => {
            let mut sim: MrSim3D<D3Q27> =
                MrSim3D::new(device, geom, MrScheme::projective(), TAU).with_twist();
            sim.init_with(shear_init_3d);
            let t0 = Instant::now();
            sim.run(steps);
            finish(name, pattern, "D3Q27", fluid, steps, sim.measured_bpf(), t0)
        }
    }
}

/// Run the multi-speed D3Q39 lattice through the ST pattern on a fully
/// periodic box (multi-speed wall treatment is out of scope — the paper
/// names D3Q39 only as future work). The measured B/F should be
/// 2Q·8 = 624; the moment representation would still need only
/// 2M·8 = 160, a projected ×3.9.
pub fn run_3d_q39_st(device: DeviceSpec, n: usize, steps: usize) -> RunResult {
    let name = device.name;
    let geom = Geometry::periodic_3d(n, n, n);
    let fluid = geom.fluid_count();
    let mut sim: StSim<D3Q39, _> = StSim::new(device, geom, Bgk::new(TAU));
    sim.init_with(|_, y, z| (1.0, [0.02 * ((y + z) as f64 * 0.4).sin(), 0.0, 0.0]));
    let t0 = Instant::now();
    sim.run(steps);
    finish(
        name,
        Pattern::Standard,
        "D3Q39",
        fluid,
        steps,
        sim.measured_bpf(),
        t0,
    )
}

/// The problem-size sweep of Figures 2–3 (fluid nodes).
pub fn figure_sizes() -> Vec<usize> {
    vec![
        250_000, 500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000, 30_000_000,
    ]
}

/// Time `iters` calls of `f` after `warmup` unmeasured calls; returns
/// seconds per iteration. The plain-`Instant` replacement for the Criterion
/// harness (which the offline workspace cannot resolve).
pub fn time_iters<F: FnMut()>(warmup: usize, iters: usize, mut f: F) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// Steady-state wall-clock timing: `warmup` unmeasured calls of `f`, then
/// `reps` individually timed repetitions on the monotonic clock, returning
/// the fastest one in seconds. Min-of-k is the standard "how fast can this
/// go" estimator — robust to scheduler noise, unlike a mean.
pub fn time_min_of<F: FnMut()>(warmup: usize, reps: usize, mut f: F) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Print one bench-log line: per-iteration time and, when `nodes > 0`, the
/// wall-clock MLUPS it implies.
pub fn bench_line(group: &str, id: &str, nodes: usize, secs_per_iter: f64) {
    if nodes > 0 {
        println!(
            "[{group}] {id:<28} {:>10.3} ms/iter  {:>8.3} MLUPS",
            secs_per_iter * 1e3,
            nodes as f64 / secs_per_iter / 1e6
        );
    } else {
        println!("[{group}] {id:<28} {:>10.3} ms/iter", secs_per_iter * 1e3);
    }
}

/// Render a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut s = String::new();
    for (c, w) in cells.iter().zip(widths) {
        s.push_str(&format!("{c:>w$}  ", w = w));
    }
    s.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// B/F is size-independent for the bulk-dominated domains (the whole
    /// point of measuring it at moderate size and extrapolating).
    #[test]
    fn bpf_is_size_independent_2d() {
        let a = run_2d(DeviceSpec::v100(), Pattern::MomentProjective, 32, 16, 2);
        let b = run_2d(DeviceSpec::v100(), Pattern::MomentProjective, 64, 32, 2);
        assert!(
            (a.measured_bpf - b.measured_bpf).abs() < 2.0,
            "{} vs {}",
            a.measured_bpf,
            b.measured_bpf
        );
    }

    #[test]
    fn st_and_mr_bpf_match_table2() {
        let st = run_2d(DeviceSpec::v100(), Pattern::Standard, 48, 24, 2);
        assert!((st.measured_bpf - 144.0).abs() < 2.0, "{}", st.measured_bpf);
        let mr = run_2d(DeviceSpec::v100(), Pattern::MomentProjective, 48, 24, 2);
        assert!((mr.measured_bpf - 96.0).abs() < 2.0, "{}", mr.measured_bpf);
        let st3 = run_3d(DeviceSpec::mi100(), Pattern::Standard, 16, 12, 12, 2);
        assert!(
            (st3.measured_bpf - 304.0).abs() < 3.0,
            "{}",
            st3.measured_bpf
        );
        let mr3 = run_3d(DeviceSpec::mi100(), Pattern::MomentRecursive, 16, 12, 12, 2);
        assert!(
            (mr3.measured_bpf - 160.0).abs() < 4.0,
            "{}",
            mr3.measured_bpf
        );
    }

    /// The in-place patterns keep Table 2's bytes-per-update — residency
    /// halves, traffic does not.
    #[test]
    fn aa_and_twist_bpf_match_table2() {
        let aa = run_2d(DeviceSpec::v100(), Pattern::StandardAa, 48, 24, 2);
        assert!((aa.measured_bpf - 144.0).abs() < 2.0, "{}", aa.measured_bpf);
        let tw = run_2d(DeviceSpec::v100(), Pattern::MomentTwist, 48, 24, 2);
        assert!((tw.measured_bpf - 96.0).abs() < 2.0, "{}", tw.measured_bpf);
        let aa3 = run_3d(DeviceSpec::mi100(), Pattern::StandardAa, 16, 12, 12, 2);
        assert!(
            (aa3.measured_bpf - 304.0).abs() < 3.0,
            "{}",
            aa3.measured_bpf
        );
        let tw3 = run_3d(DeviceSpec::mi100(), Pattern::MomentTwist, 16, 12, 12, 2);
        assert!(
            (tw3.measured_bpf - 160.0).abs() < 4.0,
            "{}",
            tw3.measured_bpf
        );
    }

    /// The modeled speedups reproduce the paper's conclusions from the
    /// *measured* B/F.
    #[test]
    fn modeled_speedups_from_measured_bpf() {
        let v100 = DeviceSpec::v100();
        let st = run_2d(v100.clone(), Pattern::Standard, 48, 24, 2);
        let mr = run_2d(v100.clone(), Pattern::MomentProjective, 48, 24, 2);
        let n = 16_000_000;
        let speedup = mr.modeled_mflups(&v100, n) / st.modeled_mflups(&v100, n);
        assert!((speedup - 1.32).abs() < 0.06, "2D V100 speedup {speedup}");
    }
}
