//! Regenerate every table and figure of the paper's evaluation section.
//!
//! ```text
//! reproduce [table1|table2|table3|table4|figure2|figure3|footprint|speedups|occupancy
//!            |profile|futurework|scaling|smoke|aa|sparse|bench|bench-record|resilience|serve|slo|all]
//!           [--quick] [--steps=small|full] [--section=<name>] [--slo]
//!           [--inject=nan|abort|link|all] [--checkpoint-every=<n>]
//!           [--jobs=<n>] [--seed=<n>]
//!           [--trace=<path>] [--metrics=<path>] [--events=<path>]
//! ```
//!
//! With `--quick` (alias `--steps=small`) the measurement domains are
//! smaller (CI-friendly). Every section prints the paper's reference
//! numbers next to the reproduced ones; `EXPERIMENTS.md` records a captured
//! run. The `bench` section measures genuine wall-clock MFLUPS of the
//! software substrate (pooled executor + span memory paths) and appends
//! `measured_mflups` / `speedup_vs_st` rows to `BENCH_bench.json` —
//! including the in-place `st-aa` / `mr-t` patterns. The `aa` section is
//! the in-place smoke: bitwise equivalence to the two-lattice drivers and
//! byte-exact `Q·8` / `M·8` residency through the metrics registry. The
//! `sparse` section gates the fluid-compacted drivers: porosity-swept
//! footprints on the fluid-count model, the indirect-addressing B/F,
//! bitwise equality with the dense drivers, and exact sparse halo bytes.

use gpu_sim::efficiency::{bandwidth_fraction, modeled_bandwidth_gbps, Pattern};
use gpu_sim::roofline::{bytes_per_flup_mr, bytes_per_flup_st, mflups_max_on};
use gpu_sim::DeviceSpec;
use lbm_bench::{figure_sizes, run_2d, run_3d, run_3d_q27, run_3d_q39_st, RunResult};
use lbm_gpu::footprint::footprint_table;
use std::sync::Arc;

fn devices() -> [DeviceSpec; 2] {
    [DeviceSpec::v100(), DeviceSpec::mi100()]
}

const PATTERNS: [Pattern; 3] = [
    Pattern::Standard,
    Pattern::MomentProjective,
    Pattern::MomentRecursive,
];

fn table1() {
    println!("== Table 1: device features =========================================");
    println!("{:<16} {:>16} {:>16}", "", "NVIDIA V100", "AMD MI100");
    let [v, m] = devices();
    let rows: Vec<(&str, String, String)> = vec![
        (
            "Frequency",
            format!("{} MHz", v.frequency_mhz),
            format!("{} MHz", m.frequency_mhz),
        ),
        ("CUDA/HIP cores", v.cores.to_string(), m.cores.to_string()),
        (
            "SM/CU count",
            v.sm_count.to_string(),
            m.sm_count.to_string(),
        ),
        (
            "Shared mem",
            format!("{} KB/SM", v.shared_mem_per_sm / 1024),
            format!("{} KB/CU", m.shared_mem_per_sm / 1024),
        ),
        (
            "L1",
            format!("{} KB/SM", v.l1_per_sm / 1024),
            format!("{} KB/CU", m.l1_per_sm / 1024),
        ),
        (
            "L2 (unified)",
            format!("{} KB", v.l2_bytes / 1024),
            format!("{} KB", m.l2_bytes / 1024),
        ),
        (
            "Memory",
            format!("HBM2 {} GB", v.memory_bytes >> 30),
            format!("HBM2 {} GB", m.memory_bytes >> 30),
        ),
        (
            "Bandwidth",
            format!("{} GB/s", v.bandwidth_gbps),
            format!("{} GB/s", m.bandwidth_gbps),
        ),
        ("Compiler", v.compiler.to_string(), m.compiler.to_string()),
    ];
    for (k, a, b) in rows {
        println!("{k:<16} {a:>16} {b:>16}");
    }
    println!();
}

/// Measure B/F for every pattern/lattice on moderate domains.
fn measure_all(quick: bool) -> Vec<RunResult> {
    let (n2, s2) = if quick { ((96, 48), 2) } else { ((192, 96), 3) };
    let (n3, s3) = if quick {
        ((24, 16, 16), 2)
    } else {
        ((48, 24, 24), 3)
    };
    let mut out = Vec::new();
    for pattern in PATTERNS {
        // B/F is device-independent; measure once, reuse for both devices.
        out.push(run_2d(DeviceSpec::v100(), pattern, n2.0, n2.1, s2));
        out.push(run_3d(DeviceSpec::v100(), pattern, n3.0, n3.1, n3.2, s3));
    }
    out
}

fn find<'a>(results: &'a [RunResult], p: Pattern, lattice: &str) -> &'a RunResult {
    results
        .iter()
        .find(|r| r.pattern == p && r.lattice == lattice)
        .expect("missing measurement")
}

fn table2(results: &[RunResult]) {
    println!("== Table 2: bytes per fluid lattice update (B/F) ====================");
    println!(
        "{:<8} {:>14} {:>10} {:>10} {:>12} {:>12}",
        "pattern", "model", "D2Q9", "D3Q19", "meas. D2Q9", "meas. D3Q19"
    );
    let st2 = find(results, Pattern::Standard, "D2Q9").measured_bpf;
    let st3 = find(results, Pattern::Standard, "D3Q19").measured_bpf;
    let mr2 = find(results, Pattern::MomentProjective, "D2Q9").measured_bpf;
    let mr3 = find(results, Pattern::MomentProjective, "D3Q19").measured_bpf;
    println!(
        "{:<8} {:>14} {:>10} {:>10} {:>12.1} {:>12.1}",
        "ST",
        "2Q*double",
        bytes_per_flup_st(9),
        bytes_per_flup_st(19),
        st2,
        st3
    );
    println!(
        "{:<8} {:>14} {:>10} {:>10} {:>12.1} {:>12.1}",
        "MR",
        "2M*double",
        bytes_per_flup_mr(6),
        bytes_per_flup_mr(10),
        mr2,
        mr3
    );
    println!("(measured = DRAM bytes from the traffic ledger; halo re-reads hit the modeled L2)");
    println!();
}

fn table3() {
    println!("== Table 3: roofline MFLUPS (eq. 15) ================================");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "model", "V100 D2Q9", "V100 D3Q19", "MI100 D2Q9", "MI100 D3Q19"
    );
    let [v, m] = devices();
    println!(
        "{:<8} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
        "ST",
        mflups_max_on(&v, 144.0),
        mflups_max_on(&v, 304.0),
        mflups_max_on(&m, 144.0),
        mflups_max_on(&m, 304.0),
    );
    println!(
        "{:<8} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
        "MR",
        mflups_max_on(&v, 96.0),
        mflups_max_on(&v, 160.0),
        mflups_max_on(&m, 96.0),
        mflups_max_on(&m, 160.0),
    );
    println!("(paper: ST 6250/2960 and 8533/4042; MR 9375/5625 and 12800/7680)");
    println!();
}

fn table4() {
    println!("== Table 4: sustained bandwidth (GB/s, modeled at 16M nodes) ========");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "model", "V100 D2Q9", "V100 D3Q19", "MI100 D2Q9", "MI100 D3Q19"
    );
    let n = 16_000_000;
    for (label, p) in [
        ("ST", Pattern::Standard),
        ("MR-P", Pattern::MomentProjective),
        ("MR-R", Pattern::MomentRecursive),
    ] {
        let [v, m] = devices();
        println!(
            "{:<8} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            label,
            modeled_bandwidth_gbps(&v, p, 2, n),
            modeled_bandwidth_gbps(&v, p, 3, n),
            modeled_bandwidth_gbps(&m, p, 2, n),
            modeled_bandwidth_gbps(&m, p, 3, n),
        );
    }
    println!("(paper §4.2–4.3: V100 ST ≈ 790, MR ≈ 664 GB/s in 2D; MI100 ST ≈ 665, MR ≈ 614)");
    println!();
}

fn figure(results: &[RunResult], dim: usize) {
    let (lat, fig) = if dim == 2 { ("D2Q9", 2) } else { ("D3Q19", 3) };
    println!("== Figure {fig}: {lat} MFLUPS vs problem size =========================");
    for dev in devices() {
        println!("-- {} --", dev.name);
        print!("{:>12}", "nodes");
        for p in PATTERNS {
            print!(" {:>10}", p.label());
        }
        println!(" {:>12} {:>12}", "roof ST", "roof MR");
        let roof_st = mflups_max_on(&dev, bytes_per_flup_st(if dim == 2 { 9 } else { 19 }));
        let roof_mr = mflups_max_on(&dev, bytes_per_flup_mr(if dim == 2 { 6 } else { 10 }));
        for n in figure_sizes() {
            print!("{n:>12}");
            for p in PATTERNS {
                let r = find(results, p, lat);
                print!(" {:>10.0}", r.modeled_mflups(&dev, n));
            }
            println!(" {roof_st:>12.0} {roof_mr:>12.0}");
        }
        // Wall-clock MFLUPS of the substrate (measured, CPU-bound).
        print!("{:>12}", "substrate");
        for p in PATTERNS {
            let r = find(results, p, lat);
            print!(" {:>10.2}", r.wall_mflups);
        }
        println!("  (CPU wall-clock of the simulated kernels; not GPU-comparable)");
    }
    if dim == 2 {
        println!(
            "(paper sustained: V100 ST≈5300, MR-P≈7000; MI100 ST≈6200, MR-P≈8600; MR-R ≈ MR-P)"
        );
    } else {
        println!("(paper sustained: V100 ST≈2600, MR-P≈3800, MR-R≈3000; MI100 ST≈2800, MR-P≈3200, MR-R≈2500)");
    }
    println!();
}

fn footprint() {
    println!("== §4.1: memory footprint for 15M fluid nodes =======================");
    const GIB: f64 = (1u64 << 30) as f64;
    println!(
        "{:<8} {:>10} {:>15} {:>16} {:>12} {:>12} {:>12} {:>12}",
        "lattice",
        "ST (GiB)",
        "MR paper (GiB)",
        "MR single (GiB)",
        "AA-ST (GiB)",
        "MR-T (GiB)",
        "single red.",
        "twist red."
    );
    for r in footprint_table(15_000_000) {
        println!(
            "{:<8} {:>10.2} {:>15.2} {:>16.2} {:>12.2} {:>12.2} {:>11.1}% {:>11.1}%",
            r.lattice,
            r.st_bytes as f64 / GIB,
            r.mr_paper_bytes as f64 / GIB,
            r.mr_single_bytes as f64 / GIB,
            r.aa_st_bytes as f64 / GIB,
            r.mr_twist_bytes as f64 / GIB,
            100.0 * r.single_reduction(),
            100.0 * r.twist_reduction(),
        );
        assert_eq!(2 * r.aa_st_bytes, r.st_bytes);
        assert_eq!(2 * r.mr_twist_bytes, r.mr_paper_bytes);
    }
    println!("(paper: 2 GB vs 1.3 GB (~35% less) in 2D; 4.2 GB vs 2.23 GB (~47% less) in 3D;");
    println!(" in-place AA-ST/MR-T halve their two-lattice counterparts byte-exactly)");
    println!();
}

fn speedups(results: &[RunResult]) {
    println!("== §5: MR-P vs ST speedups at 16M nodes =============================");
    let n = 16_000_000;
    println!(
        "{:<12} {:>8} {:>10} {:>8}",
        "device", "lattice", "speedup", "paper"
    );
    let paper = [
        ("NVIDIA V100", "D2Q9", 1.32),
        ("AMD MI100", "D2Q9", 1.38),
        ("NVIDIA V100", "D3Q19", 1.46),
        ("AMD MI100", "D3Q19", 1.14),
    ];
    for dev in devices() {
        for lat in ["D2Q9", "D3Q19"] {
            let st = find(results, Pattern::Standard, lat);
            let mr = find(results, Pattern::MomentProjective, lat);
            let s = mr.modeled_mflups(&dev, n) / st.modeled_mflups(&dev, n);
            let p = paper
                .iter()
                .find(|(d, l, _)| *d == dev.name && *l == lat)
                .map(|(_, _, v)| *v)
                .unwrap_or(f64::NAN);
            println!("{:<12} {:>8} {:>10.2} {:>8.2}", dev.name, lat, s, p);
        }
    }
    println!();
}

fn future_work(quick: bool) {
    println!("== §5 future work: D3Q27 through the same kernels ===================");
    let (nx, ny, nz, steps) = if quick {
        (16, 12, 12, 2)
    } else {
        (32, 16, 16, 2)
    };
    let st = run_3d_q27(DeviceSpec::v100(), Pattern::Standard, nx, ny, nz, steps);
    let mrp = run_3d_q27(
        DeviceSpec::v100(),
        Pattern::MomentProjective,
        nx,
        ny,
        nz,
        steps,
    );
    let mrr = run_3d_q27(
        DeviceSpec::v100(),
        Pattern::MomentRecursive,
        nx,
        ny,
        nz,
        steps,
    );
    println!(
        "measured B/F: ST {:.1} (model 2Q·8 = 432), MR-P {:.1} (2M·8 = 160), MR-R {:.1}",
        st.measured_bpf, mrp.measured_bpf, mrr.measured_bpf
    );
    let [v, m] = devices();
    for dev in [&v, &m] {
        let roof_st = mflups_max_on(dev, st.measured_bpf);
        let roof_mr = mflups_max_on(dev, mrp.measured_bpf);
        println!(
            "{:<12} roofline: ST {:>5.0} vs MR {:>5.0} MFLUPS → potential ×{:.2} (D3Q19 was ×1.90)",
            dev.name,
            roof_st,
            roof_mr,
            roof_mr / roof_st
        );
    }
    println!("(the paper cites D3Q27's runtime cost as a reason it is avoided; MR closes most of the gap)");

    // Multi-speed D3Q39: ST measured for real; MR projected (the sliding
    // window needs reach-1 streaming, so MR-D3Q39 remains future work here
    // too — but the traffic argument is what the paper points at).
    let q39 = run_3d_q39_st(DeviceSpec::v100(), if quick { 12 } else { 20 }, 2);
    let mr_bpf_q39 = 2.0 * 10.0 * 8.0;
    println!(
        "D3Q39 (multi-speed, c_s² = 2/3): measured ST B/F {:.1} (model 624); MR would need {:.0}",
        q39.measured_bpf, mr_bpf_q39
    );
    for dev in devices() {
        println!(
            "{:<12} roofline: ST {:>5.0} vs MR {:>5.0} MFLUPS → potential ×{:.2}",
            dev.name,
            mflups_max_on(&dev, q39.measured_bpf),
            mflups_max_on(&dev, mr_bpf_q39),
            mflups_max_on(&dev, mr_bpf_q39) / mflups_max_on(&dev, q39.measured_bpf)
        );
    }
    // Table 3's rooflines assume *direct* addressing; the indirect
    // (fluid-compacted) alternative of refs [4]/[15] pays for its links.
    println!("-- direct vs indirect addressing (ST, measured B/F) --");
    {
        use lbm_bench::bench_geometry_2d;
        use lbm_core::collision::Bgk;
        use lbm_gpu::StSparseSim;
        use lbm_lattice::D2Q9;
        let n = if quick { (48, 24) } else { (96, 48) };
        let mut sp: StSparseSim<D2Q9, _> = StSparseSim::new(
            DeviceSpec::v100(),
            bench_geometry_2d(n.0, n.1),
            Bgk::new(lbm_bench::TAU),
        );
        sp.run(2);
        println!(
            "D2Q9 indirect B/F {:.1} (direct 144; the Q·4 B link penalty) → roofline {:.0} vs {:.0} MFLUPS on the V100",
            sp.measured_bpf(),
            mflups_max_on(&DeviceSpec::v100(), sp.measured_bpf()),
            mflups_max_on(&DeviceSpec::v100(), 144.0),
        );
    }

    // §5 also points at emerging architectures with larger caches.
    println!("-- emerging devices (roofline projections only; no calibration exists) --");
    for dev in [DeviceSpec::a100(), DeviceSpec::mi250x_gcd()] {
        let st19 = mflups_max_on(&dev, 304.0);
        let mr19 = mflups_max_on(&dev, 160.0);
        println!(
            "{:<18} L2 {:>3} MB, {:>6.0} GB/s: D3Q19 roofline ST {:>5.0} vs MR {:>5.0} MFLUPS",
            dev.name,
            dev.l2_bytes / (1024 * 1024),
            dev.bandwidth_gbps,
            st19,
            mr19
        );
    }
    println!();
}

fn profile(quick: bool) {
    println!("== Kernel profile (nvvp/rocprof analog) =============================");
    use lbm_bench::{bench_geometry_2d, bench_geometry_3d, TAU};
    use lbm_core::collision::Bgk;
    use lbm_gpu::{MrScheme, MrSim2D, MrSim3D, StSim};
    use lbm_lattice::{D2Q9, D3Q19};
    let prof = std::sync::Arc::new(gpu_sim::profiler::Profiler::new());
    let (n2, n3) = if quick {
        ((48, 24), (16, 12, 12))
    } else {
        ((96, 48), (32, 16, 16))
    };
    let mut st: StSim<D2Q9, _> = StSim::new(
        DeviceSpec::v100(),
        Geometry::channel_2d(n2.0, n2.1, 0.04),
        Bgk::new(TAU),
    )
    .with_profiler(prof.clone());
    st.run(2);
    let mut mr: MrSim2D<D2Q9> = MrSim2D::new(
        DeviceSpec::v100(),
        bench_geometry_2d(n2.0, n2.1),
        MrScheme::projective(),
        TAU,
    )
    .with_profiler(prof.clone());
    mr.run(2);
    let mut mr3: MrSim3D<D3Q19> = MrSim3D::new(
        DeviceSpec::v100(),
        bench_geometry_3d(n3.0, n3.1, n3.2),
        MrScheme::recursive::<D3Q19>(),
        TAU,
    )
    .with_profiler(prof.clone());
    mr3.run(2);
    print!("{}", prof.report());
    use lbm_core::Geometry;
    println!();
}

fn occupancy_report() {
    println!("== §3.2: MR shared memory and occupancy =============================");
    for dev in devices() {
        // 2D: column width 32, tile height 1 → 32·3·9 doubles shared.
        let sh2 = 32 * 3 * 9 * 8;
        let o2 = gpu_sim::occupancy::occupancy(&dev, 34, sh2);
        // 3D: 8×8 footprint → 8·8·3·19 doubles shared.
        let sh3 = 8 * 8 * 3 * 19 * 8;
        let o3 = gpu_sim::occupancy::occupancy(&dev, 100, sh3);
        println!(
            "{:<12} 2D: {:>6} B shared, {} blocks/SM ({:?})   3D: {:>6} B shared, {} blocks/SM ({:?})",
            dev.name, sh2, o2.blocks_per_sm, o2.limiter, sh3, o3.blocks_per_sm, o3.limiter
        );
    }
    println!("(the paper's guidance: two or more thread blocks per SM)");
    println!();
}

/// One multi-device measurement: exact halo traffic, overlap, modeled
/// throughput, multi-roofline, and the deviation from the single-device run.
struct ScaleRow {
    n: usize,
    repr: &'static str,
    halo_per_step: u64,
    efficiency: f64,
    mflups: f64,
    roofline: f64,
    diff: f64,
}

#[allow(clippy::too_many_arguments)]
fn scale_row(
    n: usize,
    repr: &'static str,
    halo_per_step: u64,
    mg: &gpu_sim::interconnect::MultiGpu,
    stats: &lbm_multi::OverlapStats,
    fluid: usize,
    bpf: f64,
    diff: f64,
) -> ScaleRow {
    use gpu_sim::roofline::mflups_max_multi;
    let max_link: u64 = mg
        .links()
        .iter()
        .map(|l| l.bytes_total())
        .max()
        .unwrap_or(0);
    let per_link_per_step = max_link as f64 / stats.steps.max(1) as f64;
    let shard_fluid = (fluid as f64 / n as f64).max(1.0);
    ScaleRow {
        n,
        repr,
        halo_per_step,
        efficiency: stats.overlap_efficiency(),
        mflups: stats.modeled_mflups(fluid),
        roofline: mflups_max_multi(
            mg.spec().bandwidth_gbps,
            bpf,
            mg.link_spec().bandwidth_gbps,
            per_link_per_step / shard_fluid,
        ),
        diff,
    }
}

fn print_scale_rows(rows: &[ScaleRow]) {
    println!(
        "{:>3} {:<6} {:>12} {:>9} {:>15} {:>10} {:>18}",
        "N", "repr", "halo B/step", "overlap", "modeled MFLUPS", "roofline", "max|Δu| vs 1 dev"
    );
    for r in rows {
        println!(
            "{:>3} {:<6} {:>12} {:>9.2} {:>15.0} {:>10.0} {:>18.1e}",
            r.n, r.repr, r.halo_per_step, r.efficiency, r.mflups, r.roofline, r.diff
        );
    }
}

/// The wire-traffic half of Table 2: every halo node costs `M·8` bytes in
/// moment space vs `Q·8` in distribution space, so per-step halo bytes must
/// relate by exactly `M/Q` on identical geometry.
fn check_halo_ratio(rows: &[ScaleRow], m: u64, q: u64, lattice: &str) {
    for n in rows
        .iter()
        .map(|r| r.n)
        .collect::<std::collections::BTreeSet<_>>()
    {
        let st = rows.iter().find(|r| r.n == n && r.repr == "ST").unwrap();
        for mr in rows.iter().filter(|r| r.n == n && r.repr != "ST") {
            assert_eq!(
                mr.halo_per_step * q,
                st.halo_per_step * m,
                "{lattice} N={n}: {} halo bytes must be exactly M/Q = {m}/{q} of ST's",
                mr.repr
            );
        }
    }
    println!(
        "(halo-byte ratio MR/ST verified byte-exact: {m}/{q} = {}·8/{}·8 B per halo node)",
        m, q
    );
}

fn duct_3d(nx: usize, ny: usize, nz: usize) -> lbm_core::Geometry {
    use lbm_core::NodeType;
    let mut g = lbm_core::Geometry::new(nx, ny, nz, [true, false, false]);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if y == 0 || y == ny - 1 || z == 0 || z == nz - 1 {
                    g.set(x, y, z, NodeType::Wall);
                }
            }
        }
    }
    g
}

fn max_udiff(a: &[[f64; 3]], b: &[[f64; 3]]) -> f64 {
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| (0..3).map(move |k| (x[k] - y[k]).abs()))
        .fold(0.0, f64::max)
}

fn init_2d(x: usize, y: usize, _z: usize) -> (f64, [f64; 3]) {
    (
        1.0 + 0.01 * ((x as f64 * 0.37 + y as f64 * 0.61).sin()),
        [
            0.02 * (y as f64 * 0.5).sin(),
            0.01 * (x as f64 * 0.3).cos(),
            0.0,
        ],
    )
}

fn init_3d(x: usize, y: usize, z: usize) -> (f64, [f64; 3]) {
    (
        1.0 + 0.01 * ((x as f64 * 0.37 + z as f64 * 0.41).sin()),
        [
            0.02 * (y as f64 * 0.5).sin() * (z as f64 * 0.4).cos(),
            0.01 * (x as f64 * 0.3).cos(),
            0.01 * (y as f64 * 0.7).sin(),
        ],
    )
}

/// Run all three representations sharded N ways on one 2D geometry and
/// compare each against its own single-device run.
fn scale_2d(geom: &lbm_core::Geometry, n: usize, steps: usize) -> Vec<ScaleRow> {
    use lbm_core::collision::Projective;
    use lbm_gpu::{MrScheme, MrSim2D, StSim};
    use lbm_lattice::D2Q9;
    use lbm_multi::{MultiMrSim2D, MultiStSim};
    let dev = DeviceSpec::v100();
    let tau = lbm_bench::TAU;
    let fluid = geom.fluid_count();
    let mut rows = Vec::new();

    let mut st: MultiStSim<D2Q9, _> =
        MultiStSim::new(dev.clone(), geom.clone(), Projective::new(tau), n);
    st.init_with(init_2d);
    st.run(steps);
    let mut st1: StSim<D2Q9, _> = StSim::new(dev.clone(), geom.clone(), Projective::new(tau));
    st1.init_with(init_2d);
    st1.run(steps);
    rows.push(scale_row(
        n,
        "ST",
        st.halo_bytes_per_step(),
        st.interconnect(),
        st.stats(),
        fluid,
        144.0,
        max_udiff(&st.velocity_field(), &st1.velocity_field()),
    ));

    for (label, mk) in [
        ("MR-P", MrScheme::projective as fn() -> MrScheme),
        ("MR-R", MrScheme::recursive::<D2Q9>),
    ] {
        let mut mr: MultiMrSim2D<D2Q9> = MultiMrSim2D::new(dev.clone(), geom.clone(), mk(), tau, n);
        mr.init_with(init_2d);
        mr.run(steps);
        let mut mr1: MrSim2D<D2Q9> = MrSim2D::new(dev.clone(), geom.clone(), mk(), tau);
        mr1.init_with(init_2d);
        mr1.run(steps);
        rows.push(scale_row(
            n,
            label,
            mr.halo_bytes_per_step(),
            mr.interconnect(),
            mr.stats(),
            fluid,
            96.0,
            max_udiff(&mr.velocity_field(), &mr1.velocity_field()),
        ));
    }
    rows
}

/// Same for 3D on a periodic-x duct.
fn scale_3d(geom: &lbm_core::Geometry, n: usize, steps: usize) -> Vec<ScaleRow> {
    use lbm_core::collision::Projective;
    use lbm_gpu::{MrScheme, MrSim3D, StSim};
    use lbm_lattice::D3Q19;
    use lbm_multi::{MultiMrSim3D, MultiStSim};
    let dev = DeviceSpec::v100();
    let tau = lbm_bench::TAU;
    let fluid = geom.fluid_count();
    let mut rows = Vec::new();

    let mut st: MultiStSim<D3Q19, _> =
        MultiStSim::new(dev.clone(), geom.clone(), Projective::new(tau), n);
    st.init_with(init_3d);
    st.run(steps);
    let mut st1: StSim<D3Q19, _> = StSim::new(dev.clone(), geom.clone(), Projective::new(tau));
    st1.init_with(init_3d);
    st1.run(steps);
    rows.push(scale_row(
        n,
        "ST",
        st.halo_bytes_per_step(),
        st.interconnect(),
        st.stats(),
        fluid,
        304.0,
        max_udiff(&st.velocity_field(), &st1.velocity_field()),
    ));

    for (label, mk) in [
        ("MR-P", MrScheme::projective as fn() -> MrScheme),
        ("MR-R", MrScheme::recursive::<D3Q19>),
    ] {
        let mut mr: MultiMrSim3D<D3Q19> =
            MultiMrSim3D::new(dev.clone(), geom.clone(), mk(), tau, n);
        mr.init_with(init_3d);
        mr.run(steps);
        let mut mr1: MrSim3D<D3Q19> = MrSim3D::new(dev.clone(), geom.clone(), mk(), tau);
        mr1.init_with(init_3d);
        mr1.run(steps);
        rows.push(scale_row(
            n,
            label,
            mr.halo_bytes_per_step(),
            mr.interconnect(),
            mr.stats(),
            fluid,
            160.0,
            max_udiff(&mr.velocity_field(), &mr1.velocity_field()),
        ));
    }
    rows
}

fn scaling(quick: bool) {
    use lbm_gpu::MrScheme;
    use lbm_lattice::D2Q9;
    use lbm_multi::MultiMrSim2D;
    println!("== Multi-device scaling: moment-space halo exchange =================");
    let steps = if quick { 4 } else { 10 };
    let counts = [1usize, 2, 4];

    // Strong scaling: fixed global domain, sharded N ways.
    let (sx2, sy2) = if quick { (32, 16) } else { (64, 24) };
    let g2 = lbm_core::Geometry::walls_y_periodic_x(sx2, sy2);
    println!("-- D2Q9 strong scaling, walls_y_periodic_x {sx2}×{sy2}, {steps} steps --");
    let rows: Vec<ScaleRow> = counts
        .iter()
        .flat_map(|&n| scale_2d(&g2, n, steps))
        .collect();
    print_scale_rows(&rows);
    check_halo_ratio(&rows, 6, 9, "D2Q9");
    println!();

    let (sx3, sy3, sz3) = if quick { (16, 8, 8) } else { (24, 10, 10) };
    let g3 = duct_3d(sx3, sy3, sz3);
    println!("-- D3Q19 strong scaling, periodic-x duct {sx3}×{sy3}×{sz3}, {steps} steps --");
    let rows: Vec<ScaleRow> = counts
        .iter()
        .flat_map(|&n| scale_3d(&g3, n, steps))
        .collect();
    print_scale_rows(&rows);
    check_halo_ratio(&rows, 10, 19, "D3Q19");
    println!();

    // Weak scaling: constant per-device slab, global domain grows with N.
    let wx2 = if quick { 8 } else { 16 };
    println!("-- D2Q9 weak scaling, {wx2}×{sy2} per device, {steps} steps --");
    let rows: Vec<ScaleRow> = counts
        .iter()
        .flat_map(|&n| {
            scale_2d(
                &lbm_core::Geometry::walls_y_periodic_x(wx2 * n, sy2),
                n,
                steps,
            )
        })
        .collect();
    print_scale_rows(&rows);
    check_halo_ratio(&rows, 6, 9, "D2Q9");
    println!();

    let wx3 = 8;
    println!("-- D3Q19 weak scaling, {wx3}×{sy3}×{sz3} per device, {steps} steps --");
    let rows: Vec<ScaleRow> = counts
        .iter()
        .flat_map(|&n| scale_3d(&duct_3d(wx3 * n, sy3, sz3), n, steps))
        .collect();
    print_scale_rows(&rows);
    check_halo_ratio(&rows, 10, 19, "D3Q19");
    println!();

    // Per-link traffic of one representative configuration, from the
    // interconnect's byte-exact counters.
    let mut mr: MultiMrSim2D<D2Q9> = MultiMrSim2D::new(
        DeviceSpec::v100(),
        g2,
        MrScheme::projective(),
        lbm_bench::TAU,
        4,
    );
    mr.init_with(init_2d);
    mr.run(steps);
    println!("per-link traffic (MR-P D2Q9, N = 4, {steps} steps):");
    print!("{}", mr.interconnect().report());
    println!("(every multi-device max|Δu| above is exactly 0: the sharded runs are bitwise)");
    println!("(modeled MFLUPS at these domain sizes is link-latency-bound; the roofline");
    println!(" column is the bandwidth-only bound: eq. 15 min'd with the interconnect term)");
    println!();
}

/// Assert one ideal-pattern run hit Table 2's B/F byte-exactly and its
/// monitor saw no violations, then publish the profile into the hub and
/// record a BENCH row.
#[allow(clippy::too_many_arguments)]
fn record_ideal_run(
    hub: &Arc<obs::Obs>,
    rec: &mut obs::BenchRecord,
    prof: &gpu_sim::profiler::Profiler,
    monitor: &obs::PhysicsMonitor,
    pattern: &'static str,
    lattice: &'static str,
    kernel: &'static str,
    ideal_bpf: f64,
    bpf: f64,
    l2_hit_rate: f64,
    fluid_nodes: usize,
    steps: u64,
) {
    let dev = DeviceSpec::v100();
    assert!(
        (bpf - ideal_bpf).abs() < 1e-9,
        "{pattern}/{lattice}: measured B/F {bpf} != Table 2 ideal {ideal_bpf}"
    );
    assert!(
        monitor.is_ok(),
        "{pattern}/{lattice} monitor violations: {:?}",
        monitor.violations()
    );
    assert!(
        monitor.mass_drift() <= 1e-10,
        "{pattern}/{lattice} mass drift {}",
        monitor.mass_drift()
    );
    prof.publish(
        &hub.metrics,
        &[
            ("pattern", pattern),
            ("lattice", lattice),
            ("device", dev.name),
        ],
    );
    let per_kernel = hub
        .metrics
        .gauge(
            "profile_dram_bytes_per_item",
            &[
                ("kernel", kernel),
                ("pattern", pattern),
                ("lattice", lattice),
                ("device", dev.name),
            ],
        )
        .expect("bulk kernel profile gauge");
    assert!(
        (per_kernel - ideal_bpf).abs() < 1e-9,
        "{kernel} per-kernel B/item {per_kernel} != ideal {ideal_bpf}"
    );
    rec.push(obs::BenchRow {
        device: dev.name.to_string(),
        lattice: lattice.to_string(),
        pattern: pattern.to_string(),
        fluid_nodes: fluid_nodes as u64,
        steps,
        mflups_modeled: mflups_max_on(&dev, bpf),
        dram_bytes_per_item: bpf,
        l2_hit_rate,
        halo_bytes_per_step: 0,
        overlap_efficiency: 0.0,
        ..Default::default()
    });
}

/// Ideal-pattern observability runs: geometries where Table 2's B/F is
/// byte-exact on the substrate (periodic boxes for ST, wall-bounded bench
/// domains for MR), each traced, metered, and monitor-verified.
fn obs_pass(hub: &Arc<obs::Obs>, rec: &mut obs::BenchRecord) {
    use gpu_sim::profiler::Profiler;
    use lbm_bench::{bench_geometry_2d, bench_geometry_3d, TAU};
    use lbm_core::collision::Bgk;
    use lbm_core::Geometry;
    use lbm_gpu::{MrScheme, MrSim2D, MrSim3D, StSim};
    use lbm_lattice::{D2Q9, D3Q19};
    let dev = DeviceSpec::v100();
    let cfg = obs::MonitorConfig {
        cadence: 1,
        ..Default::default()
    };

    {
        let prof = Arc::new(Profiler::new());
        let geom = Geometry::periodic_2d(32, 16);
        let fluid = geom.fluid_count();
        let mut sim: StSim<D2Q9, _> = StSim::new(dev.clone(), geom, Bgk::new(TAU))
            .with_profiler(prof.clone())
            .with_obs(hub.clone())
            .with_monitor(cfg);
        sim.init_with(init_2d);
        sim.run(3);
        let (bpf, l2) = (sim.measured_bpf(), sim.traffic().l2_hit_rate());
        let mon = sim.monitor().unwrap();
        record_ideal_run(
            hub, rec, &prof, mon, "st", "D2Q9", "st-bulk", 144.0, bpf, l2, fluid, 3,
        );
    }
    {
        let prof = Arc::new(Profiler::new());
        let geom = Geometry::periodic_3d(12, 8, 8);
        let fluid = geom.fluid_count();
        let mut sim: StSim<D3Q19, _> = StSim::new(dev.clone(), geom, Bgk::new(TAU))
            .with_profiler(prof.clone())
            .with_obs(hub.clone())
            .with_monitor(cfg);
        sim.init_with(init_3d);
        sim.run(2);
        let (bpf, l2) = (sim.measured_bpf(), sim.traffic().l2_hit_rate());
        let mon = sim.monitor().unwrap();
        record_ideal_run(
            hub, rec, &prof, mon, "st", "D3Q19", "st-bulk", 304.0, bpf, l2, fluid, 2,
        );
    }
    {
        let prof = Arc::new(Profiler::new());
        let geom = bench_geometry_2d(32, 16);
        let fluid = geom.fluid_count();
        let mut sim: MrSim2D<D2Q9> = MrSim2D::new(dev.clone(), geom, MrScheme::projective(), TAU)
            .with_profiler(prof.clone())
            .with_obs(hub.clone())
            .with_monitor(cfg);
        sim.init_with(init_2d);
        sim.run(3);
        let (bpf, l2) = (sim.measured_bpf(), sim.traffic().l2_hit_rate());
        let mon = sim.monitor().unwrap();
        record_ideal_run(
            hub, rec, &prof, mon, "mr-p", "D2Q9", "mr2d-p", 96.0, bpf, l2, fluid, 3,
        );
    }
    {
        let prof = Arc::new(Profiler::new());
        let geom = bench_geometry_3d(12, 12, 10);
        let fluid = geom.fluid_count();
        let mut sim: MrSim3D<D3Q19> = MrSim3D::new(dev.clone(), geom, MrScheme::projective(), TAU)
            .with_profiler(prof.clone())
            .with_obs(hub.clone())
            .with_monitor(cfg);
        sim.init_with(init_3d);
        sim.run(2);
        let (bpf, l2) = (sim.measured_bpf(), sim.traffic().l2_hit_rate());
        let mon = sim.monitor().unwrap();
        record_ideal_run(
            hub, rec, &prof, mon, "mr-p", "D3Q19", "mr3d-p", 160.0, bpf, l2, fluid, 2,
        );
    }
}

/// Wall-clock cost of the physics monitor at its default cadence, as a
/// fraction of the unmonitored run. Monitored and plain reps are
/// interleaved (min-of-5 each way) so slow machine drift on a shared
/// 1-core box hits both timings alike — back-to-back best-of-3 swung the
/// reported overhead between 0% and 8% from drift alone.
fn monitor_overhead() -> f64 {
    use lbm_core::collision::Bgk;
    use lbm_gpu::StSim;
    use lbm_lattice::D2Q9;
    let geom = lbm_core::Geometry::periodic_2d(96, 48);
    let rep = |monitored: bool| -> f64 {
        let mut sim: StSim<D2Q9, _> =
            StSim::new(DeviceSpec::v100(), geom.clone(), Bgk::new(lbm_bench::TAU));
        if monitored {
            sim = sim.with_monitor(obs::MonitorConfig::default());
        }
        sim.init_with(init_2d);
        let t0 = std::time::Instant::now();
        sim.run(64);
        t0.elapsed().as_secs_f64()
    };
    let (mut plain, mut monitored) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        plain = plain.min(rep(false));
        monitored = monitored.min(rep(true));
    }
    ((monitored - plain) / plain).max(0.0)
}

/// A multi-device ScaleRow as a BENCH row (halo traffic + overlap columns).
fn scale_to_bench(r: &ScaleRow, lattice: &str, fluid: usize, steps: usize) -> obs::BenchRow {
    let bpf = match (lattice, r.repr) {
        ("D2Q9", "ST") => 144.0,
        ("D2Q9", _) => 96.0,
        (_, "ST") => 304.0,
        _ => 160.0,
    };
    obs::BenchRow {
        device: "NVIDIA V100".to_string(),
        lattice: lattice.to_string(),
        pattern: r.repr.to_lowercase(),
        fluid_nodes: fluid as u64,
        steps: steps as u64,
        mflups_modeled: r.mflups,
        dram_bytes_per_item: bpf,
        l2_hit_rate: 0.0,
        halo_bytes_per_step: r.halo_per_step,
        overlap_efficiency: r.efficiency,
        ..Default::default()
    }
}

/// Minimal correctness pass for CI: the multi-device bitwise claim, the
/// exact M/Q halo-byte ratio, Table 2's B/F byte-exact through the metrics
/// registry, and monitor-verified conservation — all on tiny domains.
fn smoke(hub: &Arc<obs::Obs>) {
    let steps = 3;
    let g2 = lbm_core::Geometry::walls_y_periodic_x(16, 8);
    let rows: Vec<ScaleRow> = [1usize, 2]
        .iter()
        .flat_map(|&n| scale_2d(&g2, n, steps))
        .collect();
    check_halo_ratio(&rows, 6, 9, "D2Q9");
    let g3 = duct_3d(8, 6, 6);
    let rows3: Vec<ScaleRow> = [1usize, 2]
        .iter()
        .flat_map(|&n| scale_3d(&g3, n, steps))
        .collect();
    check_halo_ratio(&rows3, 10, 19, "D3Q19");
    for r in rows.iter().chain(&rows3) {
        assert_eq!(
            r.diff, 0.0,
            "{} N={} deviates from single device",
            r.repr, r.n
        );
    }

    // Observability: byte-exact B/F through tracer + metrics + monitors.
    let mut rec = obs::BenchRecord::new("smoke");
    obs_pass(hub, &mut rec);

    // One sharded run with the hub attached so the trace nests
    // step → kernel spans alongside halo-exchange spans.
    {
        use lbm_core::collision::Projective;
        use lbm_lattice::D2Q9;
        use lbm_multi::MultiStSim;
        let mut multi: MultiStSim<D2Q9, _> = MultiStSim::new(
            DeviceSpec::v100(),
            g2.clone(),
            Projective::new(lbm_bench::TAU),
            2,
        )
        .with_obs(hub.clone())
        .with_monitor(obs::MonitorConfig {
            cadence: 1,
            ..Default::default()
        });
        multi.init_with(init_2d);
        multi.run(steps);
        let mon = multi.monitor().unwrap();
        assert!(mon.is_ok(), "sharded monitor: {:?}", mon.violations());
        assert!(mon.mass_drift() <= 1e-10);
    }
    for r in rows.iter().filter(|r| r.n == 2) {
        rec.push(scale_to_bench(r, "D2Q9", g2.fluid_count(), steps));
    }
    for r in rows3.iter().filter(|r| r.n == 2) {
        rec.push(scale_to_bench(r, "D3Q19", g3.fluid_count(), steps));
    }

    let overhead = monitor_overhead();
    rec.set_extra("monitor_overhead_frac", obs::json::Value::num(overhead));
    rec.set_extra("mass_drift_tol", obs::json::Value::num(1e-10));
    // True overhead measures ~0–2%; the 10% trip-wire leaves room for the
    // 1-core container's wall-clock jitter (the vectorized kernels made the
    // unmonitored run ~2x faster, so the monitor's relative cost — and the
    // noise floor — both grew) while still catching structural regressions
    // like the monitor sampling every step instead of every 16th.
    assert!(
        overhead <= 0.10,
        "monitor overhead {:.1}% exceeds 10% at the default cadence",
        overhead * 100.0
    );
    let path = rec.write(".").expect("write BENCH_smoke.json");
    println!("smoke OK: multi-device runs bitwise-match single device; halo ratios exact");
    println!("smoke OK: Table 2 B/F byte-exact through the metrics registry (144/304/96/160);");
    println!(
        "          monitors clean (drift <= 1e-10), overhead {:.2}% at cadence 16; wrote {path}",
        overhead * 100.0
    );
}

/// In-place (single-lattice) smoke: the AA-pattern ST and parity-twist MR
/// drivers must match their two-lattice counterparts bitwise after any even
/// number of steps, and their resident footprints must be exact halvings —
/// `Q·8` vs `2Q·8` and `M·8` vs `2M·8` bytes per node — asserted byte-exact
/// *through the metrics registry* (published as `resident_bytes` gauges and
/// read back), so the same plumbing the fleet bills quotas on is what CI
/// checks.
fn in_place_pass(hub: &Arc<obs::Obs>, rec: &mut obs::BenchRecord) {
    use gpu_sim::roofline::{
        footprint_aa_st, footprint_mr_double, footprint_mr_twist, footprint_st,
    };
    use lbm_bench::TAU;
    use lbm_core::collision::Bgk;
    use lbm_gpu::{AaStSim, MrScheme, MrSim2D, MrSim3D, StSim};
    use lbm_lattice::{Lattice, D2Q9, D3Q19};

    let steps = 4; // even: the AA cycle is back in natural slot order
    let dev = DeviceSpec::v100();
    let g2 = lbm_core::Geometry::walls_y_periodic_x(16, 8);
    let g3 = duct_3d(8, 6, 6);
    let (n2, n3) = (g2.len(), g3.len());

    // 2D: AA-ST vs ST and twist-MR vs shift-MR, bitwise at even steps.
    let mut st2: StSim<D2Q9, _> = StSim::new(dev.clone(), g2.clone(), Bgk::new(TAU));
    let mut aa2: AaStSim<D2Q9, _> = AaStSim::new(dev.clone(), g2.clone(), Bgk::new(TAU));
    let mut mr2: MrSim2D<D2Q9> = MrSim2D::new(dev.clone(), g2.clone(), MrScheme::projective(), TAU);
    let mut tw2: MrSim2D<D2Q9> =
        MrSim2D::new(dev.clone(), g2.clone(), MrScheme::projective(), TAU).with_twist();
    st2.init_with(init_2d);
    st2.run(steps);
    aa2.init_with(init_2d);
    aa2.run(steps);
    mr2.init_with(init_2d);
    mr2.run(steps);
    tw2.init_with(init_2d);
    tw2.run(steps);
    assert_eq!(
        aa2.field_checksum(),
        st2.field_checksum(),
        "AA-ST diverged from two-lattice ST at even step {steps} (D2Q9)"
    );
    assert_eq!(
        tw2.field_checksum(),
        mr2.field_checksum(),
        "twist-MR diverged from shift-MR at step {steps} (D2Q9)"
    );

    // 3D: same contract on the walled duct.
    let mut st3: StSim<D3Q19, _> = StSim::new(dev.clone(), g3.clone(), Bgk::new(TAU));
    let mut aa3: AaStSim<D3Q19, _> = AaStSim::new(dev.clone(), g3.clone(), Bgk::new(TAU));
    let mut mr3: MrSim3D<D3Q19> =
        MrSim3D::new(dev.clone(), g3.clone(), MrScheme::projective(), TAU);
    let mut tw3: MrSim3D<D3Q19> =
        MrSim3D::new(dev.clone(), g3.clone(), MrScheme::projective(), TAU).with_twist();
    st3.init_with(init_3d);
    st3.run(steps);
    aa3.init_with(init_3d);
    aa3.run(steps);
    mr3.init_with(init_3d);
    mr3.run(steps);
    tw3.init_with(init_3d);
    tw3.run(steps);
    assert_eq!(
        aa3.field_checksum(),
        st3.field_checksum(),
        "AA-ST diverged from two-lattice ST at even step {steps} (D3Q19)"
    );
    assert_eq!(
        tw3.field_checksum(),
        mr3.field_checksum(),
        "twist-MR diverged from shift-MR at step {steps} (D3Q19)"
    );

    // Residency: publish each driver's actual allocation as a gauge, read
    // it back through the registry, and assert the byte-exact contract.
    // (pattern, lattice, actual bytes, in-place ideal, two-lattice model)
    let cases: [(&str, &str, usize, usize, usize); 4] = [
        (
            "st-aa",
            "D2Q9",
            aa2.footprint_bytes(),
            footprint_aa_st(n2, D2Q9::Q),
            footprint_st(n2, D2Q9::Q),
        ),
        (
            "mr-t",
            "D2Q9",
            tw2.footprint_bytes(),
            footprint_mr_twist(n2, D2Q9::M),
            footprint_mr_double(n2, D2Q9::M),
        ),
        (
            "st-aa",
            "D3Q19",
            aa3.footprint_bytes(),
            footprint_aa_st(n3, D3Q19::Q),
            footprint_st(n3, D3Q19::Q),
        ),
        (
            "mr-t",
            "D3Q19",
            tw3.footprint_bytes(),
            footprint_mr_twist(n3, D3Q19::M),
            footprint_mr_double(n3, D3Q19::M),
        ),
    ];
    let mut resident = Vec::new();
    for (pattern, lattice, actual, ideal, two_lattice) in cases {
        let labels = [("pattern", pattern), ("lattice", lattice)];
        hub.metrics
            .gauge_set("resident_bytes", &labels, actual as f64);
        let seen = hub
            .metrics
            .gauge("resident_bytes", &labels)
            .expect("resident_bytes gauge readable") as usize;
        assert_eq!(seen, actual, "{pattern}/{lattice}: gauge round-trip lossy");
        assert_eq!(
            seen, ideal,
            "{pattern}/{lattice}: resident bytes differ from the single-lattice ideal"
        );
        assert_eq!(
            2 * seen,
            two_lattice,
            "{pattern}/{lattice}: residency is not an exact halving of the two-lattice model"
        );
        resident.push(obs::json::Value::obj(vec![
            ("pattern", obs::json::Value::str(pattern)),
            ("lattice", obs::json::Value::str(lattice)),
            ("resident_bytes", obs::json::Value::int(seen as u64)),
            (
                "two_lattice_bytes",
                obs::json::Value::int(two_lattice as u64),
            ),
        ]));
    }
    rec.set_extra("in_place_resident", obs::json::Value::Arr(resident));

    // Bench rows for the new pattern names (measured B/F is Table 2's
    // two-lattice shape: in-place storage halves residency, not traffic).
    for (pattern, lattice, bpf, fluid) in [
        ("st-aa", "D2Q9", aa2.measured_bpf(), g2.fluid_count()),
        ("mr-t", "D2Q9", tw2.measured_bpf(), g2.fluid_count()),
        ("st-aa", "D3Q19", aa3.measured_bpf(), g3.fluid_count()),
        ("mr-t", "D3Q19", tw3.measured_bpf(), g3.fluid_count()),
    ] {
        rec.push(obs::BenchRow {
            device: dev.name.to_string(),
            lattice: lattice.to_string(),
            pattern: pattern.to_string(),
            fluid_nodes: fluid as u64,
            steps: steps as u64,
            mflups_modeled: mflups_max_on(&dev, bpf),
            dram_bytes_per_item: bpf,
            ..Default::default()
        });
    }
    println!(
        "in-place OK: AA-ST/twist-MR bitwise-match their two-lattice drivers at step {steps};"
    );
    println!(
        "             resident bytes Q*8 / M*8 per node, exact halvings, via metrics registry"
    );
}

/// The `aa` CI section: in-place propagation smoke as its own record.
fn aa_section(hub: &Arc<obs::Obs>) {
    println!("== aa: in-place single-lattice propagation smoke ====================");
    let mut rec = obs::BenchRecord::new("aa");
    in_place_pass(hub, &mut rec);
    let path = rec.write(".").expect("write BENCH_aa.json");
    println!("wrote {path}");
    println!();
}

/// The `sparse` CI section: the fluid-compacted driver family's gate.
///
/// A porosity sweep (25 / 50 / 75 % rock on the same box) asserts the
/// resident footprint equals the roofline sparse model on the *fluid*
/// count exactly — published as `resident_bytes` / `bytes_per_flup`
/// gauges and read back through the metrics registry, the same plumbing
/// the fleet bills byte quotas on. The measured per-update traffic must
/// match the indirect-addressing B/F (`2Q·8 + Q·4` = 180 ST, `2M·8 + Q·4`
/// = 132 MR for D2Q9; 380 / 236 for D3Q19), the sparse drivers must stay
/// FNV-bitwise equal to the dense drivers on the shared fluid nodes, and
/// the sharded sparse halo tally must be byte-exact against the analytic
/// per-step cost.
fn sparse_section(hub: &Arc<obs::Obs>) {
    use gpu_sim::roofline::{
        bytes_per_flup_sparse_mr, bytes_per_flup_sparse_st, footprint_sparse_mr,
        footprint_sparse_st,
    };
    use lbm_bench::TAU;
    use lbm_core::collision::Bgk;
    use lbm_gpu::{MrScheme, MrSim2D, SparseMrSim2D, SparseMrSim3D, StSim, StSparseSim};
    use lbm_lattice::{Lattice, D2Q9, D3Q19};
    use lbm_multi::MultiSparseMrSim;
    use lbm_serve::Scenario;

    println!("== sparse: fluid-compacted ST + MR drivers ==========================");
    let mut rec = obs::BenchRecord::new("sparse");
    let dev = DeviceSpec::v100();
    let steps = 4usize;

    // Porosity sweep: same bounding box, three rock fractions.
    let mut sweep = Vec::new();
    for solid_pct in [25u8, 50, 75] {
        let geom = Scenario::Porous2D {
            nx: 24,
            ny: 12,
            solid_pct,
        }
        .geometry();
        let nf = geom.fluid_count();
        let mut st: StSparseSim<D2Q9, _> =
            StSparseSim::new(dev.clone(), geom.clone(), Bgk::new(TAU));
        let mut mr: SparseMrSim2D =
            SparseMrSim2D::new(dev.clone(), geom, MrScheme::projective(), TAU);
        st.init_with(init_2d);
        mr.init_with(init_2d);
        st.run(steps);
        mr.run(steps);
        assert_eq!(
            st.footprint_bytes(),
            footprint_sparse_st(nf, D2Q9::Q),
            "sparse ST footprint off the fluid-count model at {solid_pct}% rock"
        );
        assert_eq!(
            mr.footprint_bytes(),
            footprint_sparse_mr(nf, D2Q9::M, D2Q9::Q),
            "sparse MR footprint off the fluid-count model at {solid_pct}% rock"
        );
        let pct = solid_pct.to_string();
        for (pattern, bytes, bpf, model) in [
            (
                "sparse-st",
                st.footprint_bytes(),
                st.measured_bpf(),
                bytes_per_flup_sparse_st(D2Q9::Q),
            ),
            (
                "sparse-mr",
                mr.footprint_bytes(),
                mr.measured_bpf(),
                bytes_per_flup_sparse_mr(D2Q9::M, D2Q9::Q),
            ),
        ] {
            let labels = [
                ("pattern", pattern),
                ("lattice", "D2Q9"),
                ("solid_pct", pct.as_str()),
            ];
            hub.metrics
                .gauge_set("resident_bytes", &labels, bytes as f64);
            let seen = hub
                .metrics
                .gauge("resident_bytes", &labels)
                .expect("resident_bytes gauge readable") as usize;
            assert_eq!(
                seen, bytes,
                "{pattern} @ {solid_pct}%: gauge round-trip lossy"
            );
            hub.metrics.gauge_set("bytes_per_flup", &labels, bpf);
            let seen_bpf = hub
                .metrics
                .gauge("bytes_per_flup", &labels)
                .expect("bytes_per_flup gauge readable");
            assert!(
                (seen_bpf - model).abs() < 1.0,
                "{pattern} @ {solid_pct}%: measured B/F {seen_bpf:.2} off the model {model}"
            );
            rec.push(obs::BenchRow {
                device: dev.name.to_string(),
                lattice: "D2Q9".to_string(),
                pattern: pattern.to_string(),
                fluid_nodes: nf as u64,
                steps: steps as u64,
                mflups_modeled: mflups_max_on(&dev, bpf),
                dram_bytes_per_item: bpf,
                ..Default::default()
            });
        }
        sweep.push(obs::json::Value::obj(vec![
            ("solid_pct", obs::json::Value::int(solid_pct as u64)),
            ("box_nodes", obs::json::Value::int((24 * 12) as u64)),
            ("fluid_nodes", obs::json::Value::int(nf as u64)),
            (
                "sparse_st_bytes",
                obs::json::Value::int(st.footprint_bytes() as u64),
            ),
            (
                "sparse_mr_bytes",
                obs::json::Value::int(mr.footprint_bytes() as u64),
            ),
        ]));
    }
    rec.set_extra("porosity_sweep", obs::json::Value::Arr(sweep));

    // Dense equivalence on the half-rock slab: the dense drivers treat the
    // rock as interior walls, and the sparse link table must reproduce
    // their streaming bitwise. The sharded sparse MR build matches too,
    // with a halo tally byte-exact against the analytic per-step cost.
    let geom = Scenario::Porous2D {
        nx: 24,
        ny: 12,
        solid_pct: 50,
    }
    .geometry();
    let mut sst: StSparseSim<D2Q9, _> = StSparseSim::new(dev.clone(), geom.clone(), Bgk::new(TAU));
    let mut dst: StSim<D2Q9, _> = StSim::new(dev.clone(), geom.clone(), Bgk::new(TAU));
    let mut smr: SparseMrSim2D =
        SparseMrSim2D::new(dev.clone(), geom.clone(), MrScheme::projective(), TAU);
    let mut dmr: MrSim2D<D2Q9> =
        MrSim2D::new(dev.clone(), geom.clone(), MrScheme::projective(), TAU);
    sst.init_with(init_2d);
    sst.run(steps);
    dst.init_with(init_2d);
    dst.run(steps);
    smr.init_with(init_2d);
    smr.run(steps);
    dmr.init_with(init_2d);
    dmr.run(steps);
    assert_eq!(
        sst.field_checksum(),
        dst.field_checksum(),
        "sparse ST diverged from dense ST on the porous slab"
    );
    assert_eq!(
        smr.field_checksum(),
        dmr.field_checksum(),
        "sparse MR diverged from dense MR on the porous slab"
    );
    let mut multi: MultiSparseMrSim<D2Q9> =
        MultiSparseMrSim::new(dev.clone(), geom, MrScheme::projective(), TAU, 2);
    multi.init_with(init_2d);
    multi.run(steps);
    assert_eq!(
        multi.interconnect().total_link_bytes(),
        steps as u64 * multi.halo_bytes_per_step(),
        "sharded sparse halo tally not byte-exact"
    );
    assert_eq!(
        multi.field_checksum(),
        smr.field_checksum(),
        "sharded sparse MR diverged from the single-device build"
    );

    // The D3Q19 sparse B/F on the walled duct: 2Q·8 + Q·4 = 380 (ST) and
    // 2M·8 + Q·4 = 236 (MR).
    let g3 = duct_3d(8, 6, 6);
    let nf3 = g3.fluid_count();
    let mut st3: StSparseSim<D3Q19, _> = StSparseSim::new(dev.clone(), g3.clone(), Bgk::new(TAU));
    let mut mr3: SparseMrSim3D = SparseMrSim3D::new(dev.clone(), g3, MrScheme::projective(), TAU);
    st3.init_with(init_3d);
    mr3.init_with(init_3d);
    st3.run(steps);
    mr3.run(steps);
    for (pattern, bpf, model) in [
        (
            "sparse-st",
            st3.measured_bpf(),
            bytes_per_flup_sparse_st(D3Q19::Q),
        ),
        (
            "sparse-mr",
            mr3.measured_bpf(),
            bytes_per_flup_sparse_mr(D3Q19::M, D3Q19::Q),
        ),
    ] {
        assert!(
            (bpf - model).abs() < 1.0,
            "{pattern} D3Q19: measured B/F {bpf:.2} off the model {model}"
        );
        rec.push(obs::BenchRow {
            device: dev.name.to_string(),
            lattice: "D3Q19".to_string(),
            pattern: pattern.to_string(),
            fluid_nodes: nf3 as u64,
            steps: steps as u64,
            mflups_modeled: mflups_max_on(&dev, bpf),
            dram_bytes_per_item: bpf,
            ..Default::default()
        });
    }

    let path = rec.write(".").expect("write BENCH_sparse.json");
    println!("sparse OK: footprints == fluid-count model at 25/50/75% rock (registry-checked);");
    println!("           B/F 180/132 (D2Q9) and 380/236 (D3Q19); bitwise vs dense; halo exact");
    println!("wrote {path}");
    println!();
}

/// Machine-readable perf records: every headline number as a BENCH row —
/// byte-exact traffic ideals, the measured sweep on both devices, the
/// multi-device halo/overlap measurements, and the monitor's cost.
fn bench_record(quick: bool, results: &[RunResult], hub: &Arc<obs::Obs>) {
    println!("== bench-record: machine-readable perf records ======================");
    let mut rec = obs::BenchRecord::new("bench-record");
    obs_pass(hub, &mut rec);

    let n = 16_000_000;
    for dev in devices() {
        for r in results {
            rec.push(obs::BenchRow {
                device: dev.name.to_string(),
                lattice: r.lattice.to_string(),
                pattern: r.pattern.label().to_lowercase(),
                fluid_nodes: r.fluid_nodes as u64,
                steps: r.steps as u64,
                mflups_modeled: r.modeled_mflups(&dev, n),
                dram_bytes_per_item: r.measured_bpf,
                l2_hit_rate: 0.0,
                halo_bytes_per_step: 0,
                overlap_efficiency: 0.0,
                ..Default::default()
            });
        }
    }

    let steps = if quick { 3 } else { 6 };
    let g2 = lbm_core::Geometry::walls_y_periodic_x(32, 16);
    for row in scale_2d(&g2, 2, steps) {
        rec.push(scale_to_bench(&row, "D2Q9", g2.fluid_count(), steps));
    }
    let g3 = duct_3d(12, 8, 8);
    for row in scale_3d(&g3, 2, steps) {
        rec.push(scale_to_bench(&row, "D3Q19", g3.fluid_count(), steps));
    }

    let overhead = monitor_overhead();
    rec.set_extra("monitor_overhead_frac", obs::json::Value::num(overhead));
    let path = rec.write(".").expect("write BENCH record");
    println!(
        "wrote {path}: {} rows, monitor overhead {:.2}% at the default cadence",
        rec.rows().len(),
        overhead * 100.0
    );
    println!();
}

/// Wall-clock bench of the software substrate itself: steady-state step
/// timing (warmup + min-of-k repetitions on the monotonic clock) for ST,
/// MR-P, MR-R, and the in-place ST-AA / MR-T on the smoke lattice,
/// reported as *measured* MFLUPS with
/// the per-pattern speedup over ST. Before timing, each pattern is run
/// under 1 and 8 CPU threads and the two traffic tallies are asserted
/// byte-identical — the release-build guard that the pooled, span-staged
/// executor is transparent to the accounting.
fn bench_wallclock(quick: bool) {
    use gpu_sim::memory::Tally;
    use lbm_bench::{bench_geometry_2d, bench_geometry_3d, TAU};
    use lbm_core::collision::Bgk;
    use lbm_gpu::{AaStSim, MrScheme, MrSim2D, MrSim3D, StSim};
    use lbm_lattice::{D2Q9, D3Q19};
    use std::time::Instant;

    println!("== bench: wall-clock MFLUPS of the software substrate ==============");
    // Measurement lattices: large enough that the chunked SoA collision
    // kernels dominate the step (256×128 ≈ 33 k nodes 2D, 70³ ≈ 343 k
    // nodes 3D — 70 divides into 14-wide columns whose 16-node halo rows
    // fill the 8-lane chunks exactly); `--quick` trims steps and
    // repetitions, not the domains.
    let (steps_2d, reps_2d) = if quick { (8, 2) } else { (20, 3) };
    let (steps_3d, reps_3d) = if quick { (2, 2) } else { (4, 3) };
    let geom_2d = bench_geometry_2d(256, 128);
    let geom_3d = bench_geometry_3d(70, 70, 70);

    /// One streaming pattern prepared for timing: the 1-vs-8-thread
    /// tally-equality check already ran, the 8-thread sim is warm, and
    /// `step` drives it.
    struct Contender {
        pattern: &'static str,
        step: Box<dyn FnMut(usize)>,
        bpf: f64,
        l2: f64,
        best: f64,
    }

    /// Build one contender: tally-equality check (1 vs 8 threads), warmup,
    /// and measured B/F + L2 hit rate.
    fn contender<S: 'static>(
        pattern: &'static str,
        mk: impl Fn(usize) -> S,
        step: impl Fn(&mut S, usize) + 'static,
        tally: impl Fn(&S) -> Tally,
        steps_per_rep: usize,
        fluid: usize,
    ) -> Contender {
        let mut s1 = mk(1);
        step(&mut s1, steps_per_rep);
        let mut s8 = mk(8);
        step(&mut s8, steps_per_rep); // doubles as warmup
        let (t1, t8) = (tally(&s1), tally(&s8));
        assert_eq!(
            t1, t8,
            "pooled span execution changed the traffic tally vs single-threaded"
        );
        Contender {
            pattern,
            bpf: t8.dram_bytes() as f64 / (fluid * steps_per_rep) as f64,
            l2: t8.l2_hit_rate(),
            best: f64::INFINITY,
            step: Box::new(move |k| step(&mut s8, k)),
        }
    }

    let mut rec = obs::BenchRecord::new("bench");
    for dev in devices() {
        for (lattice, geom, steps_per_rep, reps) in [
            ("D2Q9", &geom_2d, steps_2d, reps_2d),
            ("D3Q19", &geom_3d, steps_3d, reps_3d),
        ] {
            let fluid = geom.fluid_count();
            let mut contenders = if lattice == "D2Q9" {
                vec![
                    contender(
                        "st",
                        |threads| {
                            StSim::<D2Q9, _>::new(dev.clone(), geom.clone(), Bgk::new(TAU))
                                .with_cpu_threads(threads)
                        },
                        |s, k| s.run(k),
                        |s| s.traffic(),
                        steps_per_rep,
                        fluid,
                    ),
                    contender(
                        "mr-p",
                        |threads| {
                            MrSim2D::<D2Q9>::new(
                                dev.clone(),
                                geom.clone(),
                                MrScheme::projective(),
                                TAU,
                            )
                            .with_cpu_threads(threads)
                        },
                        |s, k| s.run(k),
                        |s| s.traffic(),
                        steps_per_rep,
                        fluid,
                    ),
                    contender(
                        "mr-r",
                        |threads| {
                            MrSim2D::<D2Q9>::new(
                                dev.clone(),
                                geom.clone(),
                                MrScheme::recursive::<D2Q9>(),
                                TAU,
                            )
                            .with_cpu_threads(threads)
                        },
                        |s, k| s.run(k),
                        |s| s.traffic(),
                        steps_per_rep,
                        fluid,
                    ),
                    contender(
                        "st-aa",
                        |threads| {
                            AaStSim::<D2Q9, _>::new(dev.clone(), geom.clone(), Bgk::new(TAU))
                                .with_cpu_threads(threads)
                        },
                        |s, k| s.run(k),
                        |s| s.traffic(),
                        steps_per_rep,
                        fluid,
                    ),
                    contender(
                        "mr-t",
                        |threads| {
                            MrSim2D::<D2Q9>::new(
                                dev.clone(),
                                geom.clone(),
                                MrScheme::projective(),
                                TAU,
                            )
                            .with_twist()
                            .with_cpu_threads(threads)
                        },
                        |s, k| s.run(k),
                        |s| s.traffic(),
                        steps_per_rep,
                        fluid,
                    ),
                ]
            } else {
                vec![
                    contender(
                        "st",
                        |threads| {
                            StSim::<D3Q19, _>::new(dev.clone(), geom.clone(), Bgk::new(TAU))
                                .with_cpu_threads(threads)
                        },
                        |s, k| s.run(k),
                        |s| s.traffic(),
                        steps_per_rep,
                        fluid,
                    ),
                    contender(
                        "mr-p",
                        |threads| {
                            MrSim3D::<D3Q19>::new(
                                dev.clone(),
                                geom.clone(),
                                MrScheme::projective(),
                                TAU,
                            )
                            .with_cpu_threads(threads)
                        },
                        |s, k| s.run(k),
                        |s| s.traffic(),
                        steps_per_rep,
                        fluid,
                    ),
                    contender(
                        "mr-r",
                        |threads| {
                            MrSim3D::<D3Q19>::new(
                                dev.clone(),
                                geom.clone(),
                                MrScheme::recursive::<D3Q19>(),
                                TAU,
                            )
                            .with_cpu_threads(threads)
                        },
                        |s, k| s.run(k),
                        |s| s.traffic(),
                        steps_per_rep,
                        fluid,
                    ),
                    contender(
                        "st-aa",
                        |threads| {
                            AaStSim::<D3Q19, _>::new(dev.clone(), geom.clone(), Bgk::new(TAU))
                                .with_cpu_threads(threads)
                        },
                        |s, k| s.run(k),
                        |s| s.traffic(),
                        steps_per_rep,
                        fluid,
                    ),
                    contender(
                        "mr-t",
                        |threads| {
                            MrSim3D::<D3Q19>::new(
                                dev.clone(),
                                geom.clone(),
                                MrScheme::projective(),
                                TAU,
                            )
                            .with_twist()
                            .with_cpu_threads(threads)
                        },
                        |s, k| s.run(k),
                        |s| s.traffic(),
                        steps_per_rep,
                        fluid,
                    ),
                ]
            };
            // Interleave the contenders' timing rounds so slow machine
            // drift hits every pattern alike instead of biasing whichever
            // ran last; min-of-k then absorbs per-round noise.
            for _ in 0..reps {
                for c in contenders.iter_mut() {
                    let t0 = Instant::now();
                    (c.step)(steps_per_rep);
                    c.best = c.best.min(t0.elapsed().as_secs_f64());
                }
            }
            let mut st_mflups = 0.0;
            for c in &contenders {
                let mflups = fluid as f64 * steps_per_rep as f64 / c.best / 1e6;
                assert!(
                    mflups > 0.0 && mflups.is_finite(),
                    "wall-clock MFLUPS must be positive, got {mflups}"
                );
                if c.pattern == "st" {
                    st_mflups = mflups;
                }
                let speedup = mflups / st_mflups;
                println!(
                    "{:<12} {:<6} {:<6} {:>8} nodes  {:>9.3} ms/step  {:>8.3} MFLUPS  {:>6.2}x vs ST",
                    dev.name,
                    lattice,
                    c.pattern,
                    fluid,
                    c.best * 1e3 / steps_per_rep as f64,
                    mflups,
                    speedup
                );
                rec.push(obs::BenchRow {
                    device: dev.name.to_string(),
                    lattice: lattice.to_string(),
                    pattern: c.pattern.to_string(),
                    fluid_nodes: fluid as u64,
                    steps: steps_per_rep as u64,
                    mflups_modeled: mflups_max_on(&dev, c.bpf),
                    dram_bytes_per_item: c.bpf,
                    l2_hit_rate: c.l2,
                    measured_mflups: mflups,
                    speedup_vs_st: speedup,
                    ..Default::default()
                });
            }
        }
    }
    let path = rec.write(".").expect("write BENCH_bench.json");
    println!("wrote {path}");
    println!();
}

/// Resilience demonstration: checkpoint/rollback recovery under injected
/// faults, verified bitwise (FNV field checksums against fault-free runs)
/// and emitted as `BENCH_resilience.json`. `--inject=nan|abort|link|all`
/// picks the fault set; `--checkpoint-every=N` sets the cadence.
fn resilience(hub: &Arc<obs::Obs>, inject: &str, every: u64) {
    use lbm_core::collision::Projective;
    use lbm_gpu::StSim;
    use lbm_lattice::D2Q9;
    use lbm_multi::recovery::{run_with_recovery, RecoveryConfig};
    use lbm_multi::MultiMrSim2D;
    use obs::json::Value;

    println!("== resilience: checkpoint/rollback recovery under injected faults ===");
    let geom = lbm_core::Geometry::walls_y_periodic_x(32, 16);
    let target = 24u64;
    let mut rec = obs::BenchRecord::new("resilience");
    rec.set_extra("checkpoint_every", Value::int(every));
    rec.set_extra("target_steps", Value::int(target));

    let mk_st = |geom: &lbm_core::Geometry| {
        let mut s: StSim<D2Q9, _> = StSim::new(
            DeviceSpec::v100(),
            geom.clone(),
            Projective::new(lbm_bench::TAU),
        )
        .with_cpu_threads(2);
        s.init_with(init_2d);
        s
    };

    // Single-device scenarios: a NaN memory fault and a launch abort, both
    // detected by the recovery loop's fault watch and rolled back to the
    // last checkpoint.
    for (name, plan) in [("nan", 0u8), ("abort", 1u8)] {
        if inject != "all" && inject != name {
            continue;
        }
        let mut clean = mk_st(&geom);
        clean.run(target as usize);
        let want = clean.field_checksum();

        let mut fp = gpu_sim::FaultPlan::new();
        match plan {
            // Node (5, 8) direction 0: one counted write per step, so the
            // NaN lands on step 6 — past the first checkpoint.
            0 => fp.inject_nan(8 * geom.nx + 5, 5),
            // One bulk launch per step on the wall-bounded domain: the 8th
            // is skipped, leaving stale-but-finite fields.
            _ => fp.abort_launch(7),
        };
        let fp = std::sync::Arc::new(fp);
        let mut faulted = mk_st(&geom).with_fault_plan(fp.clone());
        let cfg = RecoveryConfig {
            checkpoint_every: every,
            max_rollbacks: 8,
            fault_watch: Some(fp.clone()),
            obs: Some(hub.clone()),
            ctx: None,
        };
        let stats = run_with_recovery(&mut faulted, target, &cfg).expect("recovery failed");
        let got = faulted.field_checksum();
        assert_eq!(got, want, "{name}: recovered run diverged from fault-free");
        println!(
            "  {name:<6} ST 32x16: {} fault(s) fired, {} rollback(s), {} step(s) replayed, \
             checksum {got:016x} == fault-free",
            fp.total_fired(),
            stats.rollbacks,
            stats.steps_replayed,
        );
        let mut summary = stats.summary();
        if let Value::Obj(map) = &mut summary {
            map.insert("checksum_match".to_string(), Value::int(1));
            map.insert("faults_fired".to_string(), Value::int(fp.total_fired()));
        }
        rec.set_extra(name, summary);
    }

    // Multi-device scenario: a transient link failure in a 4-device ring,
    // absorbed by the driver's bounded-backoff halo retry with
    // byte-identical link tallies.
    if inject == "all" || inject == "link" {
        let mk_multi = |geom: &lbm_core::Geometry| {
            let mut s: MultiMrSim2D<D2Q9> = MultiMrSim2D::new(
                DeviceSpec::v100(),
                geom.clone(),
                lbm_gpu::scheme::MrScheme::projective(),
                lbm_bench::TAU,
                4,
            )
            .with_cpu_threads(2);
            s.init_with(init_2d);
            s
        };
        let mut clean = mk_multi(&geom);
        clean.run(target as usize);

        let mut fp = gpu_sim::FaultPlan::new();
        fp.fail_link(0, 1, 2);
        let fp = std::sync::Arc::new(fp);
        let mut faulted = mk_multi(&geom)
            .with_obs(hub.clone())
            .with_fault_plan(fp.clone());
        faulted.run(target as usize);
        assert_eq!(
            faulted.field_checksum(),
            clean.field_checksum(),
            "link: retried run diverged from fault-free"
        );
        assert_eq!(
            faulted.interconnect().total_link_bytes(),
            clean.interconnect().total_link_bytes(),
            "link: retries perturbed the byte tallies"
        );
        println!(
            "  link   MR 32x16 x4 ring: {} transient failure(s), {} retry(ies), \
             link tallies byte-identical ({} B), checksum {:016x} == fault-free",
            fp.link_faults_fired(),
            faulted.halo_retries(),
            faulted.interconnect().total_link_bytes(),
            faulted.field_checksum(),
        );
        rec.set_extra(
            "link",
            Value::obj(vec![
                ("faults_fired", Value::int(fp.link_faults_fired())),
                ("halo_retries", Value::int(faulted.halo_retries())),
                ("checksum_match", Value::int(1)),
                ("tallies_match", Value::int(1)),
                (
                    "link_bytes",
                    Value::int(faulted.interconnect().total_link_bytes()),
                ),
            ]),
        );
    }

    let path = rec.write(".").expect("write BENCH_resilience.json");
    println!(
        "  recovery counters: rollbacks={:?} checkpoints={:?} halo_retries(0->1)={:?}",
        hub.metrics.counter("recovery_rollbacks_total", &[]),
        hub.metrics.counter("recovery_checkpoints_total", &[]),
        hub.metrics.counter("halo_retries", &[("link", "0->1")]),
    );
    println!("resilience OK: every recovered run is bitwise-identical; wrote {path}");
    println!();
}

/// Fleet load test: enqueue `jobs` mixed-size simulations from the seeded
/// deterministic arrival process into the multi-tenant scheduler, then
/// verify zero lost/duplicated jobs and bitwise agreement with solo runs
/// while reporting sustained aggregate MFLUPS, queue depth over time, and
/// p50/p99 job latency per priority class (`BENCH_serve.json`).
fn serve_load(hub: &Arc<obs::Obs>, jobs: usize, seed: u64) {
    use lbm_serve::{solo_checksum, ArrivalProcess, JobState, Priority, Serve, ServeConfig};
    use obs::json::Value;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    println!("=== serve: multi-tenant fleet load test ({jobs} jobs, seed {seed}) ===");
    let executors = std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).clamp(2, 6))
        .unwrap_or(2);
    let fleet = Serve::start(ServeConfig {
        executors,
        obs: Some(hub.clone()),
        ..Default::default()
    });

    let specs: Vec<lbm_serve::JobSpec> = ArrivalProcess::new(seed, jobs).collect();
    let t0 = Instant::now();
    let stop_sampler = AtomicBool::new(false);
    let mut depth_samples: Vec<(f64, usize)> = Vec::new();
    let mut peak_depth = 0usize;
    let mut ids = Vec::with_capacity(jobs);

    std::thread::scope(|s| {
        // Queue-depth sampler: poll while the fleet works.
        let sampler = s.spawn(|| {
            let mut samples = Vec::new();
            while !stop_sampler.load(Ordering::Relaxed) {
                samples.push((t0.elapsed().as_secs_f64() * 1e3, fleet.queue_depth()));
                std::thread::sleep(Duration::from_millis(2));
            }
            samples
        });
        for spec in &specs {
            ids.push(fleet.submit(spec.clone()).expect("admitted"));
        }
        peak_depth = fleet.queue_depth();
        fleet.drain();
        stop_sampler.store(true, Ordering::Relaxed);
        depth_samples = sampler.join().expect("sampler thread");
    });
    let wall = t0.elapsed().as_secs_f64();
    peak_depth = peak_depth.max(depth_samples.iter().map(|&(_, d)| d).max().unwrap_or(0));

    // Gate 1: zero lost or duplicated jobs.
    let mut seen = std::collections::HashSet::new();
    assert!(ids.iter().all(|id| seen.insert(*id)), "duplicate job IDs");
    assert_eq!(ids.len(), jobs, "lost submissions");

    // Gate 2: every job completed, every checksum bitwise-equal to a solo
    // run of its spec (memoized per unique physics).
    let mut oracle: HashMap<_, u64> = HashMap::new();
    let mut fluid_cache: HashMap<_, usize> = HashMap::new();
    let mut flups = 0f64;
    let mut lat_ms: HashMap<Priority, Vec<f64>> = HashMap::new();
    let mut evictions = 0u64;
    for (spec, id) in specs.iter().zip(&ids) {
        let status = fleet.status(*id).expect("known job");
        assert_eq!(status.state, JobState::Completed, "job {id} not completed");
        let result = fleet.result(*id).expect("completed job has a result");
        let want = *oracle
            .entry(spec.physics_key())
            .or_insert_with(|| solo_checksum(spec));
        assert_eq!(result.checksum, want, "checksum diverged for {spec:?}");
        let fluid = *fluid_cache
            .entry(spec.scenario)
            .or_insert_with(|| spec.scenario.geometry().fluid_count());
        flups += result.steps as f64 * fluid as f64;
        lat_ms
            .entry(spec.priority)
            .or_default()
            .push(result.latency_ms);
        evictions += result.evictions;
    }
    let mflups = flups / wall / 1e6;

    let pct = |sorted: &[f64], q: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx]
    };
    let mut rec = obs::BenchRecord::new("serve");
    rec.set_extra("jobs", Value::int(jobs as u64));
    rec.set_extra("seed", Value::int(seed));
    rec.set_extra("executors", Value::int(executors as u64));
    rec.set_extra("wall_seconds", Value::num(wall));
    rec.set_extra("aggregate_mflups", Value::num(mflups));
    rec.set_extra("peak_queue_depth", Value::int(peak_depth as u64));
    rec.set_extra("evictions", Value::int(evictions));
    rec.set_extra("checksums_verified", Value::int(jobs as u64));
    rec.set_extra("unique_physics", Value::int(oracle.len() as u64));
    println!(
        "  {jobs} jobs on {executors} executors in {wall:.2}s: {mflups:.2} aggregate MFLUPS, \
         peak queue depth {peak_depth}, {evictions} eviction(s)"
    );
    for (class, lats) in lat_ms.iter_mut() {
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (p50, p99) = (pct(lats, 0.50), pct(lats, 0.99));
        println!(
            "  {:<12} {} jobs: p50 {:.1} ms, p99 {:.1} ms",
            class.label(),
            lats.len(),
            p50,
            p99
        );
        rec.set_extra(
            &format!("latency_{}", class.label()),
            Value::obj(vec![
                ("jobs", Value::int(lats.len() as u64)),
                ("p50_ms", Value::num(p50)),
                ("p99_ms", Value::num(p99)),
            ]),
        );
    }
    // Queue depth over time, downsampled to <= 200 points.
    let stride = (depth_samples.len() / 200).max(1);
    rec.set_extra(
        "queue_depth_over_time",
        Value::Arr(
            depth_samples
                .iter()
                .step_by(stride)
                .map(|&(t, d)| {
                    Value::obj(vec![
                        ("t_ms", Value::num(t)),
                        ("depth", Value::int(d as u64)),
                    ])
                })
                .collect(),
        ),
    );
    let path = rec.write(".").expect("write BENCH_serve.json");
    println!("serve OK: zero lost/duplicated jobs, all checksums match solo runs; wrote {path}");
    println!();
}

/// SLO comparison run: the same seeded workload through (a) a statically
/// mis-configured fleet (wide groups, long slices, no observability) and
/// (b) the same configuration with the full observability plane and the
/// AIMD feedback controller enabled. Gates: adaptive interactive p99 beats
/// static, every checksum still matches the solo oracle, every job's spans
/// carry its job/tenant trace context, the event log replays cleanly and
/// agrees with the scheduler's reported results, and roofline-attribution
/// gauges exist for both device models (`BENCH_slo.json`).
fn slo_load(jobs: usize, seed: u64, events_path: Option<&str>) {
    use lbm_serve::{
        solo_checksum, ArrivalProcess, JobId, JobState, Priority, Serve, ServeConfig, SloPolicy,
    };
    use obs::json::Value;
    use std::collections::HashMap;
    use std::time::{Duration, Instant};

    println!(
        "=== slo: adaptive feedback controller vs static config ({jobs} jobs, seed {seed}) ==="
    );
    let specs: Vec<lbm_serve::JobSpec> = ArrivalProcess::new(seed, jobs).collect();

    // Deliberately latency-hostile starting point: wide lockstep groups and
    // long slices keep batch work in front of interactive arrivals.
    let executors = 2;
    let hostile = |obs: Option<Arc<obs::Obs>>, slo: Option<SloPolicy>| ServeConfig {
        executors,
        batch_max: 6,
        slice_steps: 64,
        // Strict priority: keep the aging threshold out of reach so
        // interactive latency is governed by preemption granularity — the
        // dimension the controller tunes — not by aged-batch immunity.
        interactive_base: 1_000_000,
        trace_jobs: obs.is_some(),
        obs,
        slo,
        ..Default::default()
    };
    // Paced submission so interactive jobs arrive while batch groups are
    // already holding the executors (the scenario the controller fixes).
    let run = |fleet: &Serve, wave: &[lbm_serve::JobSpec]| -> (Vec<JobId>, f64) {
        let t0 = Instant::now();
        let ids = wave
            .iter()
            .map(|spec| {
                let id = fleet.submit(spec.clone()).expect("admitted");
                std::thread::sleep(Duration::from_micros(300));
                id
            })
            .collect();
        fleet.drain();
        (ids, t0.elapsed().as_secs_f64())
    };
    let class_lat = |fleet: &Serve,
                     wave: &[lbm_serve::JobSpec],
                     ids: &[JobId]|
     -> HashMap<Priority, Vec<f64>> {
        let mut m: HashMap<Priority, Vec<f64>> = HashMap::new();
        for (spec, id) in wave.iter().zip(ids) {
            let r = fleet.result(*id).expect("completed job has a result");
            m.entry(spec.priority).or_default().push(r.latency_ms);
        }
        m
    };
    let pct = |sorted: &[f64], q: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        sorted[((sorted.len() as f64 - 1.0) * q).round() as usize]
    };

    // Floors keep the controller from collapsing to degenerate knobs:
    // resilient jobs checkpoint every slice, so the slice floor bounds the
    // checkpoint overhead the controller is allowed to trade for latency.
    // Zero cooldown lets the first burst of breaches converge the knobs
    // within a handful of completions instead of dragging the static
    // configuration's latencies through the first quarter of the run.
    let policy = SloPolicy {
        interactive_p99_target_ms: 5.0,
        min_slice_steps: 16,
        min_batch_max: 2,
        cooldown: 0,
        ..Default::default()
    };

    // The workload is split into interleaved waves — (static, adaptive)
    // back to back — through two long-lived fleets: one with frozen knobs,
    // one with the controller. The static fleet gets its own (discarded)
    // hub so span/event overhead is identical across arms — the only delta
    // is the feedback loop. Pooling latencies over waves keeps one
    // OS-noise spike in either arm's tail from deciding the comparison,
    // and the controller's warmup transient is paid once per service
    // lifetime, not once per wave — exactly how a fleet runs in
    // production.
    const ROUNDS: usize = 3;
    let wave_len = jobs.div_ceil(ROUNDS);
    let mut pooled_static: Vec<f64> = Vec::new();
    let mut pooled_adaptive: Vec<f64> = Vec::new();
    let (mut static_walls, mut adaptive_walls) = (Vec::new(), Vec::new());
    let static_fleet = Serve::start(hostile(Some(obs::Obs::shared()), None));
    let hub = obs::Obs::shared();
    let fleet = Serve::start(hostile(Some(hub.clone()), Some(policy.clone())));
    let mut ids: Vec<JobId> = Vec::new();
    for wave in specs.chunks(wave_len) {
        let (static_ids, static_wall) = run(&static_fleet, wave);
        let mut lat = class_lat(&static_fleet, wave, &static_ids);
        pooled_static.extend(lat.remove(&Priority::Interactive).unwrap_or_default());
        static_walls.push(static_wall);

        let (wave_ids, wall) = run(&fleet, wave);
        let mut lat = class_lat(&fleet, wave, &wave_ids);
        pooled_adaptive.extend(lat.remove(&Priority::Interactive).unwrap_or_default());
        adaptive_walls.push(wall);
        ids.extend(wave_ids);
    }
    drop(static_fleet);
    pooled_static.sort_by(|a, b| a.partial_cmp(b).unwrap());
    pooled_adaptive.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let static_p99 = pct(&pooled_static, 0.99);
    let static_p50 = pct(&pooled_static, 0.50);
    let p99 = pct(&pooled_adaptive, 0.99);
    let p50 = pct(&pooled_adaptive, 0.50);
    let (tuned_slice, tuned_batch) = fleet.tuned();
    println!(
        "  static   ({executors} executors, slice 64, batch 6): interactive p50 {static_p50:.1} ms, \
         p99 {static_p99:.1} ms over {ROUNDS} rounds"
    );
    println!(
        "  adaptive (target p99 {} ms): interactive p50 {p50:.1} ms, p99 {p99:.1} ms over \
         {ROUNDS} rounds; knobs tuned to slice {tuned_slice}, batch {tuned_batch}",
        policy.interactive_p99_target_ms
    );

    // Gate 1: the controller must actually help — same seed, same pacing,
    // same executors, so the only difference is the feedback loop.
    assert!(
        p99 < static_p99,
        "adaptive interactive p99 {p99:.2} ms not better than static {static_p99:.2} ms"
    );
    assert!(
        (tuned_slice, tuned_batch) != (64, 6),
        "controller never moved the knobs off the static configuration"
    );

    // Gate 2: observability is free of side effects — every checksum still
    // bitwise-equal to a solo run (memoized per unique physics).
    let mut oracle: HashMap<_, u64> = HashMap::new();
    let mut evictions_by_job: HashMap<u64, u64> = HashMap::new();
    for (spec, id) in specs.iter().zip(&ids) {
        assert_eq!(
            fleet.status(*id).expect("known job").state,
            JobState::Completed,
            "job {id} not completed"
        );
        let result = fleet.result(*id).expect("completed job has a result");
        let want = *oracle
            .entry(spec.physics_key())
            .or_insert_with(|| solo_checksum(spec));
        assert_eq!(result.checksum, want, "checksum diverged for {spec:?}");
        evictions_by_job.insert(id.0, result.evictions);
    }

    // Gate 3: trace propagation — every job's spans carry its job id and
    // tenant all the way down (driver/kernel spans inherit the TraceCtx).
    let mut span_tenant: HashMap<String, String> = HashMap::new();
    for e in hub.tracer.events() {
        if e.ph != 'B' {
            continue;
        }
        let find = |k: &str| {
            e.args
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
        };
        if let (Some(j), Some(t)) = (find("job"), find("tenant")) {
            span_tenant.insert(j, t);
        }
    }
    for (spec, id) in specs.iter().zip(&ids) {
        assert_eq!(
            span_tenant.get(&format!("job-{}", id.0)),
            Some(&spec.tenant),
            "job {id} left no span carrying its trace context"
        );
    }

    // Gate 4: the event log is a faithful record — zero drops, replays
    // through the lifecycle state machine, and agrees with the scheduler's
    // own reported results job by job.
    assert_eq!(hub.events.dropped(), 0, "event ring overflowed");
    let events = hub.events.snapshot();
    let replayed = obs::events::replay(&events).expect("event log replays");
    assert_eq!(replayed.len(), ids.len(), "replay lost jobs");
    for (spec, id) in specs.iter().zip(&ids) {
        let r = &replayed[&id.0];
        assert_eq!(r.tenant, spec.tenant, "job {id} tenant mismatch in log");
        assert_eq!(
            r.terminal,
            Some(obs::EventKind::Complete),
            "job {id} terminal mismatch"
        );
        assert_eq!(
            r.evictions, evictions_by_job[&id.0],
            "job {id} eviction count disagrees with the scheduler"
        );
        assert_eq!(r.resumes, r.evictions, "job {id} evict/resume imbalance");
        assert!(r.slices >= 1, "job {id} completed without a slice event");
    }

    // Gate 5: roofline attribution for both device models. Fleet jobs run
    // on the V100 spec; a small solo run on the MI100 spec shares the hub.
    {
        use lbm_core::collision::Bgk;
        use lbm_gpu::StSim;
        use lbm_lattice::D2Q9;
        let g = lbm_core::Geometry::walls_y_periodic_x(32, 16);
        let mut sim: StSim<D2Q9, _> = StSim::new(DeviceSpec::mi100(), g, Bgk::new(0.8))
            .with_cpu_threads(1)
            .with_obs(hub.clone());
        sim.init_with(lbm_serve::JobSpec::init);
        for _ in 0..8 {
            sim.step();
        }
    }
    let mut roofline_rows: Vec<Value> = Vec::new();
    let mut devices_seen = std::collections::BTreeSet::new();
    for (key, metric) in hub.metrics.snapshot() {
        if key.name != "roofline_attained_pct" {
            continue;
        }
        let label = |k: &str| {
            key.labels
                .iter()
                .find(|(name, _)| name == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        let (kernel, device) = (label("kernel"), label("device"));
        let pct_v = match metric {
            obs::Metric::Gauge(g) => g,
            other => panic!("roofline_attained_pct is not a gauge: {other:?}"),
        };
        let gbps = hub
            .metrics
            .gauge("achieved_gbps", &[("kernel", &kernel), ("device", &device)])
            .expect("achieved_gbps gauge paired with roofline gauge");
        assert!(
            pct_v > 0.0 && gbps > 0.0,
            "empty roofline attribution for {kernel} on {device}"
        );
        devices_seen.insert(device.clone());
        roofline_rows.push(Value::obj(vec![
            ("kernel", Value::str(&kernel)),
            ("device", Value::str(&device)),
            ("achieved_gbps", Value::num(gbps)),
            ("roofline_pct", Value::num(pct_v)),
        ]));
    }
    for dev in devices() {
        assert!(
            devices_seen.contains(dev.name),
            "no roofline attribution for {}",
            dev.name
        );
    }
    println!(
        "  roofline attribution: {} kernel/device gauges across {:?}",
        roofline_rows.len(),
        devices_seen
    );

    let walls = |w: &[f64]| Value::Arr(w.iter().map(|&s| Value::num(s)).collect());
    let mut rec = obs::BenchRecord::new("slo");
    rec.set_extra("jobs", Value::int(jobs as u64));
    rec.set_extra("seed", Value::int(seed));
    rec.set_extra("executors", Value::int(executors as u64));
    rec.set_extra("rounds", Value::int(ROUNDS as u64));
    rec.set_extra(
        "static",
        Value::obj(vec![
            ("slice_steps", Value::int(64)),
            ("batch_max", Value::int(6)),
            ("wall_seconds", walls(&static_walls)),
            ("interactive_p50_ms", Value::num(static_p50)),
            ("interactive_p99_ms", Value::num(static_p99)),
        ]),
    );
    rec.set_extra(
        "adaptive",
        fleet.slo_summary().expect("controller summary present"),
    );
    rec.set_extra(
        "adaptive_pooled",
        Value::obj(vec![
            ("wall_seconds", walls(&adaptive_walls)),
            ("interactive_p50_ms", Value::num(p50)),
            ("interactive_p99_ms", Value::num(p99)),
        ]),
    );
    rec.set_extra(
        "interactive_p99_improvement_pct",
        Value::num(100.0 * (static_p99 - p99) / static_p99),
    );
    rec.set_extra(
        "events",
        Value::obj(vec![
            ("total", Value::int(hub.events.total())),
            ("dropped", Value::int(hub.events.dropped())),
            (
                "counts",
                Value::Obj(
                    hub.events
                        .counts()
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), Value::int(v)))
                        .collect(),
                ),
            ),
        ]),
    );
    rec.set_extra(
        "jobs_with_trace_spans",
        Value::int(span_tenant.len() as u64),
    );
    rec.set_extra("roofline", Value::Arr(roofline_rows));
    let path = rec.write(".").expect("write BENCH_slo.json");
    if let Some(p) = events_path {
        hub.events.write_json(p).expect("write events JSON");
        println!("  wrote fleet event log to {p}");
    }
    println!(
        "slo OK: adaptive p99 {p99:.1} ms beats static {static_p99:.1} ms \
         ({:.0}% better), event log replays, checksums unchanged; wrote {path}",
        100.0 * (static_p99 - p99) / static_p99
    );
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let quick = match args.iter().find_map(|a| a.strip_prefix("--steps=")) {
        Some("small") => true,
        Some("full") => false,
        Some(other) => {
            eprintln!("unknown --steps value '{other}' (expected small|full)");
            std::process::exit(2);
        }
        None => quick,
    };
    let trace_path = args
        .iter()
        .find_map(|a| a.strip_prefix("--trace="))
        .map(String::from);
    let metrics_path = args
        .iter()
        .find_map(|a| a.strip_prefix("--metrics="))
        .map(String::from);
    let events_path = args
        .iter()
        .find_map(|a| a.strip_prefix("--events="))
        .map(String::from);
    let inject = args
        .iter()
        .find_map(|a| a.strip_prefix("--inject="))
        .unwrap_or("all")
        .to_string();
    if !matches!(inject.as_str(), "all" | "nan" | "abort" | "link") {
        eprintln!("unknown --inject value '{inject}' (expected nan|abort|link|all)");
        std::process::exit(2);
    }
    let ckpt_every = match args
        .iter()
        .find_map(|a| a.strip_prefix("--checkpoint-every="))
    {
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--checkpoint-every expects a positive integer, got '{v}'");
                std::process::exit(2);
            }
        },
        None => 4,
    };
    let serve_jobs = match args.iter().find_map(|a| a.strip_prefix("--jobs=")) {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--jobs expects a positive integer, got '{v}'");
                std::process::exit(2);
            }
        },
        None => 1200,
    };
    let serve_seed = match args.iter().find_map(|a| a.strip_prefix("--seed=")) {
        Some(v) => match v.parse::<u64>() {
            Ok(n) => n,
            _ => {
                eprintln!("--seed expects an integer, got '{v}'");
                std::process::exit(2);
            }
        },
        None => 2023,
    };
    let hub = obs::Obs::shared();
    let what = args
        .iter()
        .find_map(|a| a.strip_prefix("--section="))
        .map(String::from)
        .or_else(|| args.iter().find(|a| !a.starts_with("--")).cloned())
        .or_else(|| {
            args.iter()
                .any(|a| a == "--bench-wallclock")
                .then(|| "bench".to_string())
        })
        .or_else(|| args.iter().any(|a| a == "--slo").then(|| "slo".to_string()))
        .unwrap_or_else(|| "all".to_string());

    let needs_measure = matches!(
        what.as_str(),
        "all" | "table2" | "figure2" | "figure3" | "speedups" | "bench-record"
    );
    let results = if needs_measure {
        eprintln!("measuring B/F on the substrate (this runs real kernels)...");
        measure_all(quick)
    } else {
        Vec::new()
    };

    match what.as_str() {
        "table1" => table1(),
        "table2" => table2(&results),
        "table3" => table3(),
        "table4" => table4(),
        "figure2" => figure(&results, 2),
        "figure3" => figure(&results, 3),
        "footprint" => footprint(),
        "speedups" => speedups(&results),
        "occupancy" => occupancy_report(),
        "profile" => profile(quick),
        "futurework" => future_work(quick),
        "scaling" => scaling(quick),
        "smoke" => smoke(&hub),
        "aa" => aa_section(&hub),
        "sparse" => sparse_section(&hub),
        "bench" => bench_wallclock(quick),
        "bench-record" => bench_record(quick, &results, &hub),
        "resilience" => resilience(&hub, &inject, ckpt_every),
        "serve" => serve_load(&hub, serve_jobs, serve_seed),
        "slo" => slo_load(serve_jobs, serve_seed, events_path.as_deref()),
        "all" => {
            table1();
            table2(&results);
            table3();
            table4();
            figure(&results, 2);
            figure(&results, 3);
            footprint();
            speedups(&results);
            occupancy_report();
            profile(quick);
            future_work(quick);
            scaling(quick);
            aa_section(&hub);
            sparse_section(&hub);
            bench_wallclock(quick);
            bench_record(quick, &results, &hub);
            resilience(&hub, &inject, ckpt_every);
            serve_load(&hub, serve_jobs, serve_seed);
            slo_load(serve_jobs, serve_seed, events_path.as_deref());
            let [v, _] = devices();
            debug_assert!(bandwidth_fraction(&v, Pattern::Standard, 2) > 0.0);
        }
        other => {
            eprintln!("unknown section '{other}'");
            eprintln!("usage: reproduce [table1|table2|table3|table4|figure2|figure3|footprint|speedups|occupancy|profile|futurework|scaling|smoke|aa|sparse|bench|bench-record|resilience|serve|slo|all] [--quick] [--steps=small|full] [--section=<name>] [--bench-wallclock] [--slo] [--inject=nan|abort|link|all] [--checkpoint-every=<n>] [--jobs=<n>] [--seed=<n>] [--trace=<path>] [--metrics=<path>] [--events=<path>]");
            std::process::exit(2);
        }
    }

    if let Some(p) = &trace_path {
        hub.tracer.write_chrome_json(p).expect("write trace JSON");
        eprintln!("wrote Chrome trace to {p} (load in chrome://tracing or Perfetto)");
    }
    if let Some(p) = &metrics_path {
        hub.metrics.write_json(p).expect("write metrics JSON");
        eprintln!("wrote metrics to {p}");
    }
    // The slo section writes its own (fresh) hub's event log to the path;
    // every other section logs fleet events on the shared hub.
    if let Some(p) = &events_path {
        if !matches!(what.as_str(), "slo" | "all") {
            hub.events.write_json(p).expect("write events JSON");
            eprintln!("wrote fleet event log to {p}");
        }
    }
}
