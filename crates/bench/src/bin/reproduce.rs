//! Regenerate every table and figure of the paper's evaluation section.
//!
//! ```text
//! reproduce [table1|table2|table3|table4|figure2|figure3|footprint|speedups|occupancy|all]
//!           [--quick]
//! ```
//!
//! With `--quick` the measurement domains are smaller (CI-friendly). Every
//! section prints the paper's reference numbers next to the reproduced
//! ones; `EXPERIMENTS.md` records a captured run.

use gpu_sim::efficiency::{bandwidth_fraction, modeled_bandwidth_gbps, Pattern};
use gpu_sim::roofline::{bytes_per_flup_mr, bytes_per_flup_st, mflups_max_on};
use gpu_sim::DeviceSpec;
use lbm_bench::{figure_sizes, run_2d, run_3d, run_3d_q27, run_3d_q39_st, RunResult};
use lbm_gpu::footprint::footprint_table;

fn devices() -> [DeviceSpec; 2] {
    [DeviceSpec::v100(), DeviceSpec::mi100()]
}

const PATTERNS: [Pattern; 3] = [
    Pattern::Standard,
    Pattern::MomentProjective,
    Pattern::MomentRecursive,
];

fn table1() {
    println!("== Table 1: device features =========================================");
    println!("{:<16} {:>16} {:>16}", "", "NVIDIA V100", "AMD MI100");
    let [v, m] = devices();
    let rows: Vec<(&str, String, String)> = vec![
        ("Frequency", format!("{} MHz", v.frequency_mhz), format!("{} MHz", m.frequency_mhz)),
        ("CUDA/HIP cores", v.cores.to_string(), m.cores.to_string()),
        ("SM/CU count", v.sm_count.to_string(), m.sm_count.to_string()),
        (
            "Shared mem",
            format!("{} KB/SM", v.shared_mem_per_sm / 1024),
            format!("{} KB/CU", m.shared_mem_per_sm / 1024),
        ),
        (
            "L1",
            format!("{} KB/SM", v.l1_per_sm / 1024),
            format!("{} KB/CU", m.l1_per_sm / 1024),
        ),
        (
            "L2 (unified)",
            format!("{} KB", v.l2_bytes / 1024),
            format!("{} KB", m.l2_bytes / 1024),
        ),
        (
            "Memory",
            format!("HBM2 {} GB", v.memory_bytes >> 30),
            format!("HBM2 {} GB", m.memory_bytes >> 30),
        ),
        (
            "Bandwidth",
            format!("{} GB/s", v.bandwidth_gbps),
            format!("{} GB/s", m.bandwidth_gbps),
        ),
        ("Compiler", v.compiler.to_string(), m.compiler.to_string()),
    ];
    for (k, a, b) in rows {
        println!("{k:<16} {a:>16} {b:>16}");
    }
    println!();
}

/// Measure B/F for every pattern/lattice on moderate domains.
fn measure_all(quick: bool) -> Vec<RunResult> {
    let (n2, s2) = if quick { ((96, 48), 2) } else { ((192, 96), 3) };
    let (n3, s3) = if quick { ((24, 16, 16), 2) } else { ((48, 24, 24), 3) };
    let mut out = Vec::new();
    for pattern in PATTERNS {
        // B/F is device-independent; measure once, reuse for both devices.
        out.push(run_2d(DeviceSpec::v100(), pattern, n2.0, n2.1, s2));
        out.push(run_3d(DeviceSpec::v100(), pattern, n3.0, n3.1, n3.2, s3));
    }
    out
}

fn find<'a>(results: &'a [RunResult], p: Pattern, lattice: &str) -> &'a RunResult {
    results
        .iter()
        .find(|r| r.pattern == p && r.lattice == lattice)
        .expect("missing measurement")
}

fn table2(results: &[RunResult]) {
    println!("== Table 2: bytes per fluid lattice update (B/F) ====================");
    println!(
        "{:<8} {:>14} {:>10} {:>10} {:>12} {:>12}",
        "pattern", "model", "D2Q9", "D3Q19", "meas. D2Q9", "meas. D3Q19"
    );
    let st2 = find(results, Pattern::Standard, "D2Q9").measured_bpf;
    let st3 = find(results, Pattern::Standard, "D3Q19").measured_bpf;
    let mr2 = find(results, Pattern::MomentProjective, "D2Q9").measured_bpf;
    let mr3 = find(results, Pattern::MomentProjective, "D3Q19").measured_bpf;
    println!(
        "{:<8} {:>14} {:>10} {:>10} {:>12.1} {:>12.1}",
        "ST",
        "2Q*double",
        bytes_per_flup_st(9),
        bytes_per_flup_st(19),
        st2,
        st3
    );
    println!(
        "{:<8} {:>14} {:>10} {:>10} {:>12.1} {:>12.1}",
        "MR",
        "2M*double",
        bytes_per_flup_mr(6),
        bytes_per_flup_mr(10),
        mr2,
        mr3
    );
    println!("(measured = DRAM bytes from the traffic ledger; halo re-reads hit the modeled L2)");
    println!();
}

fn table3() {
    println!("== Table 3: roofline MFLUPS (eq. 15) ================================");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "model", "V100 D2Q9", "V100 D3Q19", "MI100 D2Q9", "MI100 D3Q19"
    );
    let [v, m] = devices();
    println!(
        "{:<8} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
        "ST",
        mflups_max_on(&v, 144.0),
        mflups_max_on(&v, 304.0),
        mflups_max_on(&m, 144.0),
        mflups_max_on(&m, 304.0),
    );
    println!(
        "{:<8} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
        "MR",
        mflups_max_on(&v, 96.0),
        mflups_max_on(&v, 160.0),
        mflups_max_on(&m, 96.0),
        mflups_max_on(&m, 160.0),
    );
    println!("(paper: ST 6250/2960 and 8533/4042; MR 9375/5625 and 12800/7680)");
    println!();
}

fn table4() {
    println!("== Table 4: sustained bandwidth (GB/s, modeled at 16M nodes) ========");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "model", "V100 D2Q9", "V100 D3Q19", "MI100 D2Q9", "MI100 D3Q19"
    );
    let n = 16_000_000;
    for (label, p) in [
        ("ST", Pattern::Standard),
        ("MR-P", Pattern::MomentProjective),
        ("MR-R", Pattern::MomentRecursive),
    ] {
        let [v, m] = devices();
        println!(
            "{:<8} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            label,
            modeled_bandwidth_gbps(&v, p, 2, n),
            modeled_bandwidth_gbps(&v, p, 3, n),
            modeled_bandwidth_gbps(&m, p, 2, n),
            modeled_bandwidth_gbps(&m, p, 3, n),
        );
    }
    println!("(paper §4.2–4.3: V100 ST ≈ 790, MR ≈ 664 GB/s in 2D; MI100 ST ≈ 665, MR ≈ 614)");
    println!();
}

fn figure(results: &[RunResult], dim: usize) {
    let (lat, fig) = if dim == 2 { ("D2Q9", 2) } else { ("D3Q19", 3) };
    println!("== Figure {fig}: {lat} MFLUPS vs problem size =========================");
    for dev in devices() {
        println!("-- {} --", dev.name);
        print!("{:>12}", "nodes");
        for p in PATTERNS {
            print!(" {:>10}", p.label());
        }
        println!(" {:>12} {:>12}", "roof ST", "roof MR");
        let roof_st = mflups_max_on(&dev, bytes_per_flup_st(if dim == 2 { 9 } else { 19 }));
        let roof_mr = mflups_max_on(&dev, bytes_per_flup_mr(if dim == 2 { 6 } else { 10 }));
        for n in figure_sizes() {
            print!("{n:>12}");
            for p in PATTERNS {
                let r = find(results, p, lat);
                print!(" {:>10.0}", r.modeled_mflups(&dev, n));
            }
            println!(" {roof_st:>12.0} {roof_mr:>12.0}");
        }
        // Wall-clock MFLUPS of the substrate (measured, CPU-bound).
        print!("{:>12}", "substrate");
        for p in PATTERNS {
            let r = find(results, p, lat);
            print!(" {:>10.2}", r.wall_mflups);
        }
        println!("  (CPU wall-clock of the simulated kernels; not GPU-comparable)");
    }
    if dim == 2 {
        println!("(paper sustained: V100 ST≈5300, MR-P≈7000; MI100 ST≈6200, MR-P≈8600; MR-R ≈ MR-P)");
    } else {
        println!("(paper sustained: V100 ST≈2600, MR-P≈3800, MR-R≈3000; MI100 ST≈2800, MR-P≈3200, MR-R≈2500)");
    }
    println!();
}

fn footprint() {
    println!("== §4.1: memory footprint for 15M fluid nodes =======================");
    const GIB: f64 = (1u64 << 30) as f64;
    println!(
        "{:<8} {:>10} {:>15} {:>16} {:>12} {:>12}",
        "lattice", "ST (GiB)", "MR paper (GiB)", "MR single (GiB)", "paper red.", "single red."
    );
    for r in footprint_table(15_000_000) {
        println!(
            "{:<8} {:>10.2} {:>15.2} {:>16.2} {:>11.1}% {:>11.1}%",
            r.lattice,
            r.st_bytes as f64 / GIB,
            r.mr_paper_bytes as f64 / GIB,
            r.mr_single_bytes as f64 / GIB,
            100.0 * r.paper_reduction(),
            100.0 * r.single_reduction(),
        );
    }
    println!("(paper: 2 GB vs 1.3 GB (~35% less) in 2D; 4.2 GB vs 2.23 GB (~47% less) in 3D)");
    println!();
}

fn speedups(results: &[RunResult]) {
    println!("== §5: MR-P vs ST speedups at 16M nodes =============================");
    let n = 16_000_000;
    println!("{:<12} {:>8} {:>10} {:>8}", "device", "lattice", "speedup", "paper");
    let paper = [
        ("NVIDIA V100", "D2Q9", 1.32),
        ("AMD MI100", "D2Q9", 1.38),
        ("NVIDIA V100", "D3Q19", 1.46),
        ("AMD MI100", "D3Q19", 1.14),
    ];
    for dev in devices() {
        for lat in ["D2Q9", "D3Q19"] {
            let st = find(results, Pattern::Standard, lat);
            let mr = find(results, Pattern::MomentProjective, lat);
            let s = mr.modeled_mflups(&dev, n) / st.modeled_mflups(&dev, n);
            let p = paper
                .iter()
                .find(|(d, l, _)| *d == dev.name && *l == lat)
                .map(|(_, _, v)| *v)
                .unwrap_or(f64::NAN);
            println!("{:<12} {:>8} {:>10.2} {:>8.2}", dev.name, lat, s, p);
        }
    }
    println!();
}

fn future_work(quick: bool) {
    println!("== §5 future work: D3Q27 through the same kernels ===================");
    let (nx, ny, nz, steps) = if quick { (16, 12, 12, 2) } else { (32, 16, 16, 2) };
    let st = run_3d_q27(DeviceSpec::v100(), Pattern::Standard, nx, ny, nz, steps);
    let mrp = run_3d_q27(DeviceSpec::v100(), Pattern::MomentProjective, nx, ny, nz, steps);
    let mrr = run_3d_q27(DeviceSpec::v100(), Pattern::MomentRecursive, nx, ny, nz, steps);
    println!(
        "measured B/F: ST {:.1} (model 2Q·8 = 432), MR-P {:.1} (2M·8 = 160), MR-R {:.1}",
        st.measured_bpf, mrp.measured_bpf, mrr.measured_bpf
    );
    let [v, m] = devices();
    for dev in [&v, &m] {
        let roof_st = mflups_max_on(dev, st.measured_bpf);
        let roof_mr = mflups_max_on(dev, mrp.measured_bpf);
        println!(
            "{:<12} roofline: ST {:>5.0} vs MR {:>5.0} MFLUPS → potential ×{:.2} (D3Q19 was ×1.90)",
            dev.name,
            roof_st,
            roof_mr,
            roof_mr / roof_st
        );
    }
    println!("(the paper cites D3Q27's runtime cost as a reason it is avoided; MR closes most of the gap)");

    // Multi-speed D3Q39: ST measured for real; MR projected (the sliding
    // window needs reach-1 streaming, so MR-D3Q39 remains future work here
    // too — but the traffic argument is what the paper points at).
    let q39 = run_3d_q39_st(DeviceSpec::v100(), if quick { 12 } else { 20 }, 2);
    let mr_bpf_q39 = 2.0 * 10.0 * 8.0;
    println!(
        "D3Q39 (multi-speed, c_s² = 2/3): measured ST B/F {:.1} (model 624); MR would need {:.0}",
        q39.measured_bpf, mr_bpf_q39
    );
    for dev in devices() {
        println!(
            "{:<12} roofline: ST {:>5.0} vs MR {:>5.0} MFLUPS → potential ×{:.2}",
            dev.name,
            mflups_max_on(&dev, q39.measured_bpf),
            mflups_max_on(&dev, mr_bpf_q39),
            mflups_max_on(&dev, mr_bpf_q39) / mflups_max_on(&dev, q39.measured_bpf)
        );
    }
    // Table 3's rooflines assume *direct* addressing; the indirect
    // (fluid-compacted) alternative of refs [4]/[15] pays for its links.
    println!("-- direct vs indirect addressing (ST, measured B/F) --");
    {
        use lbm_bench::bench_geometry_2d;
        use lbm_core::collision::Bgk;
        use lbm_gpu::StSparseSim;
        use lbm_lattice::D2Q9;
        let n = if quick { (48, 24) } else { (96, 48) };
        let mut sp: StSparseSim<D2Q9, _> =
            StSparseSim::new(DeviceSpec::v100(), bench_geometry_2d(n.0, n.1), Bgk::new(lbm_bench::TAU));
        sp.run(2);
        println!(
            "D2Q9 indirect B/F {:.1} (direct 144; the Q·4 B link penalty) → roofline {:.0} vs {:.0} MFLUPS on the V100",
            sp.measured_bpf(),
            mflups_max_on(&DeviceSpec::v100(), sp.measured_bpf()),
            mflups_max_on(&DeviceSpec::v100(), 144.0),
        );
    }

    // §5 also points at emerging architectures with larger caches.
    println!("-- emerging devices (roofline projections only; no calibration exists) --");
    for dev in [DeviceSpec::a100(), DeviceSpec::mi250x_gcd()] {
        let st19 = mflups_max_on(&dev, 304.0);
        let mr19 = mflups_max_on(&dev, 160.0);
        println!(
            "{:<18} L2 {:>3} MB, {:>6.0} GB/s: D3Q19 roofline ST {:>5.0} vs MR {:>5.0} MFLUPS",
            dev.name,
            dev.l2_bytes / (1024 * 1024),
            dev.bandwidth_gbps,
            st19,
            mr19
        );
    }
    println!();
}

fn profile(quick: bool) {
    println!("== Kernel profile (nvvp/rocprof analog) =============================");
    use lbm_bench::{bench_geometry_2d, bench_geometry_3d, TAU};
    use lbm_core::collision::Bgk;
    use lbm_gpu::{MrScheme, MrSim2D, MrSim3D, StSim};
    use lbm_lattice::{D2Q9, D3Q19};
    let prof = std::sync::Arc::new(gpu_sim::profiler::Profiler::new());
    let (n2, n3) = if quick { ((48, 24), (16, 12, 12)) } else { ((96, 48), (32, 16, 16)) };
    let mut st: StSim<D2Q9, _> =
        StSim::new(DeviceSpec::v100(), Geometry::channel_2d(n2.0, n2.1, 0.04), Bgk::new(TAU))
            .with_profiler(prof.clone());
    st.run(2);
    let mut mr: MrSim2D<D2Q9> = MrSim2D::new(
        DeviceSpec::v100(),
        bench_geometry_2d(n2.0, n2.1),
        MrScheme::projective(),
        TAU,
    )
    .with_profiler(prof.clone());
    mr.run(2);
    let mut mr3: MrSim3D<D3Q19> = MrSim3D::new(
        DeviceSpec::v100(),
        bench_geometry_3d(n3.0, n3.1, n3.2),
        MrScheme::recursive::<D3Q19>(),
        TAU,
    )
    .with_profiler(prof.clone());
    mr3.run(2);
    print!("{}", prof.report());
    use lbm_core::Geometry;
    println!();
}

fn occupancy_report() {
    println!("== §3.2: MR shared memory and occupancy =============================");
    for dev in devices() {
        // 2D: column width 32, tile height 1 → 32·3·9 doubles shared.
        let sh2 = 32 * 3 * 9 * 8;
        let o2 = gpu_sim::occupancy::occupancy(&dev, 34, sh2);
        // 3D: 8×8 footprint → 8·8·3·19 doubles shared.
        let sh3 = 8 * 8 * 3 * 19 * 8;
        let o3 = gpu_sim::occupancy::occupancy(&dev, 100, sh3);
        println!(
            "{:<12} 2D: {:>6} B shared, {} blocks/SM ({:?})   3D: {:>6} B shared, {} blocks/SM ({:?})",
            dev.name, sh2, o2.blocks_per_sm, o2.limiter, sh3, o3.blocks_per_sm, o3.limiter
        );
    }
    println!("(the paper's guidance: two or more thread blocks per SM)");
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let needs_measure = matches!(
        what.as_str(),
        "all" | "table2" | "figure2" | "figure3" | "speedups"
    );
    let results = if needs_measure {
        eprintln!("measuring B/F on the substrate (this runs real kernels)...");
        measure_all(quick)
    } else {
        Vec::new()
    };

    match what.as_str() {
        "table1" => table1(),
        "table2" => table2(&results),
        "table3" => table3(),
        "table4" => table4(),
        "figure2" => figure(&results, 2),
        "figure3" => figure(&results, 3),
        "footprint" => footprint(),
        "speedups" => speedups(&results),
        "occupancy" => occupancy_report(),
        "profile" => profile(quick),
        "futurework" => future_work(quick),
        "all" => {
            table1();
            table2(&results);
            table3();
            table4();
            figure(&results, 2);
            figure(&results, 3);
            footprint();
            speedups(&results);
            occupancy_report();
            profile(quick);
            future_work(quick);
            let [v, _] = devices();
            debug_assert!(bandwidth_fraction(&v, Pattern::Standard, 2) > 0.0);
        }
        other => {
            eprintln!("unknown section '{other}'");
            eprintln!("usage: reproduce [table1|table2|table3|table4|figure2|figure3|footprint|speedups|occupancy|profile|futurework|all] [--quick]");
            std::process::exit(2);
        }
    }
}
