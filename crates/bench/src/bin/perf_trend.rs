//! Performance-trend gate over `BENCH_bench.json`.
//!
//! Reads the wall-clock bench record, prints the per-(device, lattice,
//! pattern) MR-vs-ST speedup table, and compares each MR row against
//! `perf_baseline.json`:
//!
//! - baseline missing → warn, write the current speedups as the new
//!   baseline, exit 0 (first run seeds the gate);
//! - any measured speedup below `REGRESSION_FRACTION` of its baseline →
//!   print the offending rows and exit 1;
//! - otherwise exit 0 without touching the baseline, so the committed
//!   reference stays the explicit choice of whoever regenerates it.
//!
//! Usage: `perf_trend [bench-json] [baseline-json]` (defaults:
//! `BENCH_bench.json`, `perf_baseline.json`).

use obs::json::Value;
use std::process::ExitCode;

/// A measured speedup may drop to this fraction of its baseline before the
/// gate fails — wall-clock noise on shared CI machines is real, so the
/// trip-wire is deliberately loose; it catches structural regressions
/// (a kernel falling off its vectorized path), not jitter.
const REGRESSION_FRACTION: f64 = 0.85;

struct Row {
    device: String,
    lattice: String,
    pattern: String,
    speedup: f64,
}

fn key(r: &Row) -> String {
    format!("{}/{}/{}", r.device, r.lattice, r.pattern)
}

fn read_rows(path: &str) -> Result<Vec<Row>, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = obs::json::parse(&src)?;
    let rows = doc
        .get("rows")
        .ok_or_else(|| format!("{path}: no `rows` array"))?;
    let mut out = Vec::new();
    for r in rows.items() {
        let field = |k: &str| -> Result<String, String> {
            r.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{path}: row missing `{k}`"))
        };
        let speedup = r
            .get("speedup_vs_st")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{path}: row missing `speedup_vs_st`"))?;
        out.push(Row {
            device: field("device")?,
            lattice: field("lattice")?,
            pattern: field("pattern")?,
            speedup,
        });
    }
    Ok(out)
}

fn write_baseline(path: &str, rows: &[Row]) -> Result<(), String> {
    let entries = rows
        .iter()
        .filter(|r| r.pattern != "st")
        .map(|r| {
            Value::obj(vec![
                ("device", Value::str(r.device.clone())),
                ("lattice", Value::str(r.lattice.clone())),
                ("pattern", Value::str(r.pattern.clone())),
                ("speedup_vs_st", Value::num(r.speedup)),
            ])
        })
        .collect();
    let doc = Value::obj(vec![("rows", Value::Arr(entries))]);
    std::fs::write(path, doc.to_json()).map_err(|e| format!("cannot write {path}: {e}"))
}

fn run() -> Result<bool, String> {
    let mut args = std::env::args().skip(1);
    let bench_path = args.next().unwrap_or_else(|| "BENCH_bench.json".into());
    let base_path = args.next().unwrap_or_else(|| "perf_baseline.json".into());

    let rows = read_rows(&bench_path)?;
    if rows.is_empty() {
        return Err(format!("{bench_path}: empty rows"));
    }
    println!("== perf-trend: MR speedup vs ST ({bench_path}) ==");
    for r in &rows {
        println!(
            "{:<12} {:<6} {:<6} {:>6.2}x vs ST",
            r.device, r.lattice, r.pattern, r.speedup
        );
    }

    let baseline = match read_rows(&base_path) {
        Ok(b) => b,
        Err(_) => {
            println!("no baseline at {base_path}; seeding it from this run");
            write_baseline(&base_path, &rows)?;
            return Ok(true);
        }
    };

    let mut ok = true;
    for r in rows.iter().filter(|r| r.pattern != "st") {
        let Some(b) = baseline.iter().find(|b| key(b) == key(r)) else {
            println!("note: {} has no baseline entry (new row)", key(r));
            continue;
        };
        let floor = REGRESSION_FRACTION * b.speedup;
        if r.speedup < floor {
            println!(
                "REGRESSION {}: {:.2}x < {:.2}x ({}% of baseline {:.2}x)",
                key(r),
                r.speedup,
                floor,
                (REGRESSION_FRACTION * 100.0) as u32,
                b.speedup
            );
            ok = false;
        }
    }
    if ok {
        println!("perf-trend: all speedups within {REGRESSION_FRACTION} of baseline");
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("perf_trend: {e}");
            ExitCode::FAILURE
        }
    }
}
