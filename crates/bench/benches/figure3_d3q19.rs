//! Figure 3 bench: wall time per timestep of the propagation patterns
//! (two-lattice ST/MR-P/MR-R and in-place ST-AA/MR-T) on the D3Q19
//! lattice. See `figure2_d2q9.rs` for caveats.
//!
//! Plain `std::time::Instant` timer (`harness = false`); the workspace is
//! offline and cannot resolve Criterion.

use gpu_sim::efficiency::Pattern;
use gpu_sim::DeviceSpec;
use lbm_bench::{bench_geometry_3d, bench_line, time_iters, TAU};
use lbm_core::collision::Bgk;
use lbm_gpu::{AaStSim, MrScheme, MrSim3D, StSim};
use lbm_lattice::D3Q19;

const WARMUP: usize = 1;
const ITERS: usize = 5;

fn main() {
    for &(nx, ny, nz) in &[(32usize, 16usize, 16usize), (48, 32, 32)] {
        let nodes = nx * (ny - 2) * (nz - 2);
        for pattern in [
            Pattern::Standard,
            Pattern::MomentProjective,
            Pattern::MomentRecursive,
            Pattern::StandardAa,
            Pattern::MomentTwist,
        ] {
            let id = format!("{}/{nx}x{ny}x{nz}", pattern.label());
            let s = match pattern {
                Pattern::Standard => {
                    let mut sim: StSim<D3Q19, _> = StSim::new(
                        DeviceSpec::v100(),
                        bench_geometry_3d(nx, ny, nz),
                        Bgk::new(TAU),
                    );
                    time_iters(WARMUP, ITERS, || sim.step())
                }
                Pattern::MomentProjective => {
                    let mut sim: MrSim3D<D3Q19> = MrSim3D::new(
                        DeviceSpec::v100(),
                        bench_geometry_3d(nx, ny, nz),
                        MrScheme::projective(),
                        TAU,
                    );
                    time_iters(WARMUP, ITERS, || sim.step())
                }
                Pattern::MomentRecursive => {
                    let mut sim: MrSim3D<D3Q19> = MrSim3D::new(
                        DeviceSpec::v100(),
                        bench_geometry_3d(nx, ny, nz),
                        MrScheme::recursive::<D3Q19>(),
                        TAU,
                    );
                    time_iters(WARMUP, ITERS, || sim.step())
                }
                Pattern::StandardAa => {
                    let mut sim: AaStSim<D3Q19, _> = AaStSim::new(
                        DeviceSpec::v100(),
                        bench_geometry_3d(nx, ny, nz),
                        Bgk::new(TAU),
                    );
                    time_iters(WARMUP, ITERS, || sim.step())
                }
                Pattern::MomentTwist => {
                    let mut sim: MrSim3D<D3Q19> = MrSim3D::new(
                        DeviceSpec::v100(),
                        bench_geometry_3d(nx, ny, nz),
                        MrScheme::projective(),
                        TAU,
                    )
                    .with_twist();
                    time_iters(WARMUP, ITERS, || sim.step())
                }
            };
            bench_line("figure3_d3q19", &id, nodes, s);
        }
    }
}
