//! Figure 3 bench: wall time per timestep of the three propagation
//! patterns on the D3Q19 lattice. See `figure2_d2q9.rs` for caveats.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::efficiency::Pattern;
use gpu_sim::DeviceSpec;
use lbm_bench::{bench_geometry_3d, TAU};
use lbm_core::collision::Bgk;
use lbm_gpu::{MrScheme, MrSim3D, StSim};
use lbm_lattice::D3Q19;

fn bench_pattern(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3_d3q19");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    for &(nx, ny, nz) in &[(32usize, 16usize, 16usize), (48, 32, 32)] {
        let nodes = (nx * (ny - 2) * (nz - 2)) as u64;
        group.throughput(Throughput::Elements(nodes));
        for pattern in [
            Pattern::Standard,
            Pattern::MomentProjective,
            Pattern::MomentRecursive,
        ] {
            let id = BenchmarkId::new(pattern.label(), format!("{nx}x{ny}x{nz}"));
            match pattern {
                Pattern::Standard => {
                    let mut sim: StSim<D3Q19, _> = StSim::new(
                        DeviceSpec::v100(),
                        bench_geometry_3d(nx, ny, nz),
                        Bgk::new(TAU),
                    );
                    group.bench_function(id, |b| b.iter(|| sim.step()));
                }
                Pattern::MomentProjective => {
                    let mut sim: MrSim3D<D3Q19> = MrSim3D::new(
                        DeviceSpec::v100(),
                        bench_geometry_3d(nx, ny, nz),
                        MrScheme::projective(),
                        TAU,
                    );
                    group.bench_function(id, |b| b.iter(|| sim.step()));
                }
                Pattern::MomentRecursive => {
                    let mut sim: MrSim3D<D3Q19> = MrSim3D::new(
                        DeviceSpec::v100(),
                        bench_geometry_3d(nx, ny, nz),
                        MrScheme::recursive::<D3Q19>(),
                        TAU,
                    );
                    group.bench_function(id, |b| b.iter(|| sim.step()));
                }
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pattern);
criterion_main!(benches);
