//! Figure 2 bench: wall time per timestep of the three propagation
//! patterns on the D2Q9 lattice, over a range of problem sizes.
//!
//! The substrate's wall-clock MFLUPS is CPU-bound and not comparable to the
//! paper's GPU numbers; the *ratios* between patterns reflect arithmetic
//! and access-structure differences, while the bandwidth-bound projection
//! printed by `reproduce figure2` reflects the paper's memory argument.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::efficiency::Pattern;
use gpu_sim::DeviceSpec;
use lbm_bench::{bench_geometry_2d, TAU};
use lbm_core::collision::Bgk;
use lbm_gpu::{MrScheme, MrSim2D, StSim};
use lbm_lattice::D2Q9;

fn bench_pattern(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2_d2q9");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    for &(nx, ny) in &[(128usize, 64usize), (256, 128)] {
        let nodes = (nx * (ny - 2)) as u64;
        group.throughput(Throughput::Elements(nodes));
        for pattern in [
            Pattern::Standard,
            Pattern::MomentProjective,
            Pattern::MomentRecursive,
        ] {
            let id = BenchmarkId::new(pattern.label(), format!("{nx}x{ny}"));
            match pattern {
                Pattern::Standard => {
                    let mut sim: StSim<D2Q9, _> =
                        StSim::new(DeviceSpec::v100(), bench_geometry_2d(nx, ny), Bgk::new(TAU));
                    group.bench_function(id, |b| b.iter(|| sim.step()));
                }
                Pattern::MomentProjective => {
                    let mut sim: MrSim2D<D2Q9> = MrSim2D::new(
                        DeviceSpec::v100(),
                        bench_geometry_2d(nx, ny),
                        MrScheme::projective(),
                        TAU,
                    );
                    group.bench_function(id, |b| b.iter(|| sim.step()));
                }
                Pattern::MomentRecursive => {
                    let mut sim: MrSim2D<D2Q9> = MrSim2D::new(
                        DeviceSpec::v100(),
                        bench_geometry_2d(nx, ny),
                        MrScheme::recursive::<D2Q9>(),
                        TAU,
                    );
                    group.bench_function(id, |b| b.iter(|| sim.step()));
                }
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pattern);
criterion_main!(benches);
