//! Figure 2 bench: wall time per timestep of the propagation patterns
//! (two-lattice ST/MR-P/MR-R and in-place ST-AA/MR-T) on the D2Q9
//! lattice, over a range of problem sizes.
//!
//! The substrate's wall-clock MFLUPS is CPU-bound and not comparable to the
//! paper's GPU numbers; the *ratios* between patterns reflect arithmetic
//! and access-structure differences, while the bandwidth-bound projection
//! printed by `reproduce figure2` reflects the paper's memory argument.
//!
//! Plain `std::time::Instant` timer (`harness = false`); the workspace is
//! offline and cannot resolve Criterion.

use gpu_sim::efficiency::Pattern;
use gpu_sim::DeviceSpec;
use lbm_bench::{bench_geometry_2d, bench_line, time_iters, TAU};
use lbm_core::collision::Bgk;
use lbm_gpu::{AaStSim, MrScheme, MrSim2D, StSim};
use lbm_lattice::D2Q9;

const WARMUP: usize = 2;
const ITERS: usize = 10;

fn main() {
    for &(nx, ny) in &[(128usize, 64usize), (256, 128)] {
        let nodes = nx * (ny - 2);
        for pattern in [
            Pattern::Standard,
            Pattern::MomentProjective,
            Pattern::MomentRecursive,
            Pattern::StandardAa,
            Pattern::MomentTwist,
        ] {
            let id = format!("{}/{nx}x{ny}", pattern.label());
            let s = match pattern {
                Pattern::Standard => {
                    let mut sim: StSim<D2Q9, _> =
                        StSim::new(DeviceSpec::v100(), bench_geometry_2d(nx, ny), Bgk::new(TAU));
                    time_iters(WARMUP, ITERS, || sim.step())
                }
                Pattern::MomentProjective => {
                    let mut sim: MrSim2D<D2Q9> = MrSim2D::new(
                        DeviceSpec::v100(),
                        bench_geometry_2d(nx, ny),
                        MrScheme::projective(),
                        TAU,
                    );
                    time_iters(WARMUP, ITERS, || sim.step())
                }
                Pattern::MomentRecursive => {
                    let mut sim: MrSim2D<D2Q9> = MrSim2D::new(
                        DeviceSpec::v100(),
                        bench_geometry_2d(nx, ny),
                        MrScheme::recursive::<D2Q9>(),
                        TAU,
                    );
                    time_iters(WARMUP, ITERS, || sim.step())
                }
                Pattern::StandardAa => {
                    let mut sim: AaStSim<D2Q9, _> =
                        AaStSim::new(DeviceSpec::v100(), bench_geometry_2d(nx, ny), Bgk::new(TAU));
                    time_iters(WARMUP, ITERS, || sim.step())
                }
                Pattern::MomentTwist => {
                    let mut sim: MrSim2D<D2Q9> = MrSim2D::new(
                        DeviceSpec::v100(),
                        bench_geometry_2d(nx, ny),
                        MrScheme::projective(),
                        TAU,
                    )
                    .with_twist();
                    time_iters(WARMUP, ITERS, || sim.step())
                }
            };
            bench_line("figure2_d2q9", &id, nodes, s);
        }
    }
}
