//! Table benches: time the B/F measurement harness (Tables 1–4 are
//! regenerated for real by `cargo run -p lbm-bench --bin reproduce`), and
//! print the derived tables once so a `cargo bench` log carries them.
//!
//! Plain `std::time::Instant` timer (`harness = false`); the workspace is
//! offline and cannot resolve Criterion.

use gpu_sim::efficiency::Pattern;
use gpu_sim::roofline::{bytes_per_flup_mr, bytes_per_flup_st, mflups_max_on};
use gpu_sim::DeviceSpec;
use lbm_bench::{bench_line, run_2d, run_3d, time_iters};

fn main() {
    // Print Table 2/3 numbers into the bench log.
    let st2 = run_2d(DeviceSpec::v100(), Pattern::Standard, 64, 32, 2);
    let mr2 = run_2d(DeviceSpec::v100(), Pattern::MomentProjective, 64, 32, 2);
    let st3 = run_3d(DeviceSpec::v100(), Pattern::Standard, 16, 12, 12, 2);
    let mr3 = run_3d(DeviceSpec::v100(), Pattern::MomentProjective, 16, 12, 12, 2);
    eprintln!(
        "[table2] measured B/F: ST D2Q9 {:.1} (paper 144), MR D2Q9 {:.1} (96), ST D3Q19 {:.1} (304), MR D3Q19 {:.1} (160)",
        st2.measured_bpf, mr2.measured_bpf, st3.measured_bpf, mr3.measured_bpf
    );
    let v = DeviceSpec::v100();
    let m = DeviceSpec::mi100();
    eprintln!(
        "[table3] roofline MFLUPS: V100 ST {:.0}/{:.0}, MR {:.0}/{:.0}; MI100 ST {:.0}/{:.0}, MR {:.0}/{:.0}",
        mflups_max_on(&v, bytes_per_flup_st(9)),
        mflups_max_on(&v, bytes_per_flup_st(19)),
        mflups_max_on(&v, bytes_per_flup_mr(6)),
        mflups_max_on(&v, bytes_per_flup_mr(10)),
        mflups_max_on(&m, bytes_per_flup_st(9)),
        mflups_max_on(&m, bytes_per_flup_st(19)),
        mflups_max_on(&m, bytes_per_flup_mr(6)),
        mflups_max_on(&m, bytes_per_flup_mr(10)),
    );

    let s = time_iters(1, 5, || {
        run_2d(DeviceSpec::v100(), Pattern::MomentProjective, 48, 24, 1);
    });
    bench_line("tables", "table2_bpf_measurement_2d", 0, s);
    let s = time_iters(1, 5, || {
        run_3d(DeviceSpec::v100(), Pattern::MomentProjective, 12, 8, 8, 1);
    });
    bench_line("tables", "table2_bpf_measurement_3d", 0, s);
}
