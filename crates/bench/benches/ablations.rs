//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **3D tile height** — the paper (§3.2) reports that 3D tiles taller
//!   than one lattice point underperform; in 2D we sweep the tile height.
//! * **Circular shift vs in-place** — Algorithm 2's circular array
//!   shifting vs a plain in-place update (safe under lockstep with 1-row
//!   tiles).
//! * **ST block size** — thread-block size sweep for the bulk kernel.
//! * **Column width** — MR halo overhead shrinks as columns widen.
//!
//! The SoA-vs-AoS layout ablation is analytic (coalescing sectors); its
//! numbers are printed into the log.
//!
//! Plain `std::time::Instant` timer (`harness = false`); the workspace is
//! offline and cannot resolve Criterion.

use gpu_sim::coalesce::{aos_report, soa_report};
use gpu_sim::DeviceSpec;
use lbm_bench::{bench_geometry_2d, bench_line, time_iters, TAU};
use lbm_core::collision::Bgk;
use lbm_gpu::{MrScheme, MrSim2D, StSim, StSparseSim, StStream};
use lbm_lattice::D2Q9;

const WARMUP: usize = 2;
const ITERS: usize = 10;
const GROUP: &str = "ablations";

fn main() {
    // SoA vs AoS: analytic coalescing report (paper §3.1's layout choice).
    let soa = soa_report(32, 8);
    for q in [9usize, 19, 27] {
        let aos = aos_report(32, 8, q as u64);
        eprintln!(
            "[soa-vs-aos] Q={q}: SoA {:.0}% efficient ({} sectors), AoS {:.0}% ({} sectors)",
            100.0 * soa.efficiency,
            soa.sectors,
            100.0 * aos.efficiency,
            aos.sectors
        );
    }

    let (nx, ny) = (128usize, 64usize);
    let nodes = nx * (ny - 2);

    // Tile height sweep (2D).
    for tile_h in [1usize, 2, 4] {
        let mut sim: MrSim2D<D2Q9> = MrSim2D::with_config(
            DeviceSpec::v100(),
            bench_geometry_2d(nx, ny),
            MrScheme::projective(),
            TAU,
            16,
            tile_h,
            tile_h, // shift ≥ tile_h − 1
        );
        let s = time_iters(WARMUP, ITERS, || sim.step());
        bench_line(GROUP, &format!("tile_height/{tile_h}"), nodes, s);
    }

    // Circular shift vs in-place.
    for (label, shift) in [("shift1", 1usize), ("inplace", 0)] {
        let mut sim: MrSim2D<D2Q9> = MrSim2D::with_config(
            DeviceSpec::v100(),
            bench_geometry_2d(nx, ny),
            MrScheme::projective(),
            TAU,
            16,
            1,
            shift,
        );
        let s = time_iters(WARMUP, ITERS, || sim.step());
        bench_line(GROUP, &format!("circular_shift/{label}"), nodes, s);
    }

    // Pull vs push streaming for ST (paper §3.1).
    for (label, stream) in [("pull", StStream::Pull), ("push", StStream::Push)] {
        let mut sim: StSim<D2Q9, _> =
            StSim::new(DeviceSpec::v100(), bench_geometry_2d(nx, ny), Bgk::new(TAU))
                .with_stream(stream);
        let s = time_iters(WARMUP, ITERS, || sim.step());
        bench_line(GROUP, &format!("st_stream/{label}"), nodes, s);
    }

    // Single-lattice circular shift vs double-buffered MR storage.
    for (label, double) in [("single", false), ("double", true)] {
        let mut sim: MrSim2D<D2Q9> = MrSim2D::new(
            DeviceSpec::v100(),
            bench_geometry_2d(nx, ny),
            MrScheme::projective(),
            TAU,
        );
        if double {
            sim = sim.with_double_buffer();
        }
        let s = time_iters(WARMUP, ITERS, || sim.step());
        bench_line(GROUP, &format!("mr_storage/{label}"), nodes, s);
    }

    // Direct vs indirect addressing for ST (Table 3's "direct addressing"
    // qualifier; refs [4], [15]): the sparse variant pays Q·4 B/update for
    // its neighbor links.
    {
        let mut dense: StSim<D2Q9, _> =
            StSim::new(DeviceSpec::v100(), bench_geometry_2d(nx, ny), Bgk::new(TAU));
        let s = time_iters(WARMUP, ITERS, || dense.step());
        bench_line(GROUP, "st_addressing/direct", nodes, s);
        let mut sparse: StSparseSim<D2Q9, _> =
            StSparseSim::new(DeviceSpec::v100(), bench_geometry_2d(nx, ny), Bgk::new(TAU));
        let s = time_iters(WARMUP, ITERS, || sparse.step());
        bench_line(GROUP, "st_addressing/indirect", nodes, s);
    }

    // ST block-size sweep.
    for bs in [64usize, 256, 1024] {
        let mut sim: StSim<D2Q9, _> =
            StSim::new(DeviceSpec::v100(), bench_geometry_2d(nx, ny), Bgk::new(TAU))
                .with_block_size(bs);
        let s = time_iters(WARMUP, ITERS, || sim.step());
        bench_line(GROUP, &format!("st_block_size/{bs}"), nodes, s);
    }

    // MR column width sweep (halo overhead ∝ 2/width).
    for w in [8usize, 16, 32] {
        let mut sim: MrSim2D<D2Q9> = MrSim2D::with_config(
            DeviceSpec::v100(),
            bench_geometry_2d(nx, ny),
            MrScheme::projective(),
            TAU,
            w,
            1,
            1,
        );
        let s = time_iters(WARMUP, ITERS, || sim.step());
        bench_line(GROUP, &format!("mr_column_width/{w}"), nodes, s);
    }
}
