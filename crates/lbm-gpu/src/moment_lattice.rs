//! The single moment lattice with circular array time shifting.
//!
//! Algorithm 2 stores only `M` moments per node and updates them *in place*
//! each timestep. To keep a column's new values from clobbering old values
//! that adjacent columns still need (their halo reads), every timestep
//! shifts the storage location of all nodes by a constant offset — the
//! constant-time circular array shifting of Dethier et al. (2011), the
//! paper's ref. \[1\]. Writes trail reads by the sliding window's two-layer
//! lag, and the shift is chosen *downward* (toward already-consumed slots)
//! so that under bulk-synchronous tile phases no unread slot is ever
//! overwritten; the strict race checker verifies this in the tests.
//!
//! Layout: moment-major (SoA), `buf[m · cap + slot(idx, t)]` with
//! `slot(idx, t) = (idx − t·shift) mod cap`, `cap = n + pad`.
//!
//! An orthogonal single-lattice mode is the **parity twist**
//! ([`MomentLattice::with_parity_twist`]): instead of shifting slots within
//! a plane, the *plane order* alternates with step parity — at odd times
//! moment `m` lives in plane `M−1−m` (the esoteric-twist idea of Geier &
//! Schönherr carried to moment space). Zero shift, zero padding, `M·8`
//! bytes per node exactly; the parity is part of the storage contract, so
//! checkpoints of twisted lattices must carry it in their flavor tag.

use gpu_sim::exec::BlockCtx;
use gpu_sim::GlobalBuffer;
use lbm_core::kernels::MAX_M;
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;

/// Moment storage for a whole domain, with circular time shifting.
pub struct MomentLattice {
    buf: GlobalBuffer<f64>,
    /// Nodes in the domain.
    n: usize,
    /// Slots per moment plane (`n + pad`).
    cap: usize,
    /// Slot shift per timestep, in nodes (one row in 2D, one layer in 3D).
    shift: usize,
    /// Moments per node.
    m: usize,
    /// Parity twist: at odd `t`, moment `m` is stored in plane `M−1−m`.
    twist: bool,
}

impl MomentLattice {
    /// Allocate for `n` nodes with `m` moments, shifting by `shift` nodes
    /// per step and padding with `pad ≥ shift` spare slots.
    pub fn new(n: usize, m: usize, shift: usize, pad: usize) -> Self {
        assert!(pad >= shift, "padding must cover the per-step shift");
        assert!(
            m <= MAX_M,
            "moment count {m} exceeds the fixed kernel staging bound MAX_M = {MAX_M}"
        );
        MomentLattice {
            buf: GlobalBuffer::new(m * (n + pad)),
            n,
            cap: n + pad,
            shift,
            m,
            twist: false,
        }
    }

    /// Enable the parity twist: at odd timesteps moment `m` is stored in
    /// plane `M−1−m` instead of plane `m`. This is the single-lattice MR
    /// storage discipline — each step reads every logical moment from the
    /// current parity's planes and writes the post-collision moments to the
    /// *other* parity's planes, which are the same physical planes in
    /// reversed order, so no second lattice (and no slot shift) is needed.
    /// Mutually exclusive with circular shifting: the twist replaces it.
    pub fn with_parity_twist(mut self) -> Self {
        assert_eq!(
            self.shift, 0,
            "parity twist replaces circular shifting; construct with shift = 0"
        );
        self.twist = true;
        self
    }

    /// Whether the parity twist is enabled.
    pub fn parity_twist(&self) -> bool {
        self.twist
    }

    /// Physical plane holding logical moment `m` at timestep `t`.
    #[inline(always)]
    fn plane(&self, t: u64, m: usize) -> usize {
        if self.twist && t % 2 == 1 {
            self.m - 1 - m
        } else {
            m
        }
    }

    /// Enable the launch-scoped L2 model on the backing buffer.
    pub fn with_touch_tracking(mut self) -> Self {
        self.buf = replace_buffer(self.buf, |b| b.with_touch_tracking());
        self
    }

    /// Enable strict race checking on the backing buffer (tests).
    pub fn with_racecheck_strict(mut self) -> Self {
        self.buf = replace_buffer(self.buf, |b| b.with_racecheck_strict());
        self
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Moments per node.
    pub fn moments_per_node(&self) -> usize {
        self.m
    }

    /// Device-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.buf.size_bytes()
    }

    /// Storage slot of node `idx` at timestep `t`.
    #[inline(always)]
    pub fn slot(&self, idx: usize, t: u64) -> usize {
        debug_assert!(idx < self.n);
        let off = ((t as u128 * self.shift as u128) % self.cap as u128) as usize;
        (idx + self.cap - off) % self.cap
    }

    /// Kernel read of moment `m` of node `idx` at time `t`.
    #[inline(always)]
    pub fn read(&self, ctx: &mut BlockCtx, t: u64, idx: usize, m: usize) -> f64 {
        ctx.read(&self.buf, self.plane(t, m) * self.cap + self.slot(idx, t))
    }

    /// Kernel write of moment `m` of node `idx` at time `t`.
    #[inline(always)]
    pub fn write(&self, ctx: &mut BlockCtx, t: u64, idx: usize, m: usize, v: f64) {
        ctx.write(
            &self.buf,
            self.plane(t, m) * self.cap + self.slot(idx, t),
            v,
        );
    }

    /// Kernel read of a node's full moment state at time `t`.
    #[inline(always)]
    pub fn read_moments<L: Lattice>(&self, ctx: &mut BlockCtx, t: u64, idx: usize) -> Moments {
        debug_assert_eq!(self.m, L::M);
        let mut flat = [0.0f64; MAX_M];
        let s = self.slot(idx, t);
        for m in 0..self.m {
            flat[m] = ctx.read(&self.buf, self.plane(t, m) * self.cap + s);
        }
        Moments::unpack::<L>(&flat[..self.m])
    }

    /// Kernel write of a node's full moment state at time `t`.
    #[inline(always)]
    pub fn write_moments<L: Lattice>(&self, ctx: &mut BlockCtx, t: u64, idx: usize, mom: &Moments) {
        debug_assert_eq!(self.m, L::M);
        let mut flat = [0.0f64; MAX_M];
        mom.pack::<L>(&mut flat[..self.m]);
        let s = self.slot(idx, t);
        for m in 0..self.m {
            ctx.write(&self.buf, self.plane(t, m) * self.cap + s, flat[m]);
        }
    }

    /// Bulk kernel read of the full moment state of `count` consecutive
    /// nodes `idx0..idx0+count` at time `t` into block scratch at
    /// `scratch_off`, plane-major: `scratch[scratch_off + m·count + j]` is
    /// moment `m` of node `idx0 + j`.
    ///
    /// Consecutive node indices occupy consecutive slots modulo `cap`
    /// (`slot(idx0 + j, t) = (slot(idx0, t) + j) mod cap`), so each moment
    /// plane is at most two contiguous spans — split at the circular wrap —
    /// and is moved through [`BlockCtx::read_span_to_scratch`]. Tallies and
    /// race checks are byte-identical to `count` element-wise
    /// [`MomentLattice::read_moments`] calls.
    pub fn read_row_to_scratch(
        &self,
        ctx: &mut BlockCtx,
        t: u64,
        idx0: usize,
        count: usize,
        scratch_off: usize,
    ) {
        debug_assert!(idx0 + count <= self.n);
        let s0 = self.slot(idx0, t);
        let first = count.min(self.cap - s0);
        if first == count && self.plane(t, 0) == 0 {
            // No circular wrap and natural plane order: all `m` plane rows
            // share one stride, so the whole family moves in a single
            // accounting envelope.
            ctx.read_spans_to_scratch(&self.buf, s0, self.cap, self.m, count, scratch_off);
            return;
        }
        for m in 0..self.m {
            let base = self.plane(t, m) * self.cap;
            let dst = scratch_off + m * count;
            ctx.read_span_to_scratch(&self.buf, base + s0, dst, first);
            if first < count {
                ctx.read_span_to_scratch(&self.buf, base, dst + first, count - first);
            }
        }
    }

    /// Bulk kernel write mirroring [`MomentLattice::read_row_to_scratch`]:
    /// the plane-major staged moments of `count` consecutive nodes are
    /// written to time `t` through [`BlockCtx::write_span_from_scratch`].
    pub fn write_row_from_scratch(
        &self,
        ctx: &mut BlockCtx,
        t: u64,
        idx0: usize,
        count: usize,
        scratch_off: usize,
    ) {
        debug_assert!(idx0 + count <= self.n);
        let s0 = self.slot(idx0, t);
        let first = count.min(self.cap - s0);
        if first == count && self.plane(t, 0) == 0 {
            ctx.write_spans_from_scratch(&self.buf, s0, self.cap, self.m, count, scratch_off);
            return;
        }
        for m in 0..self.m {
            let base = self.plane(t, m) * self.cap;
            let src = scratch_off + m * count;
            ctx.write_span_from_scratch(&self.buf, base + s0, src, first);
            if first < count {
                ctx.write_span_from_scratch(&self.buf, base, src + first, count - first);
            }
        }
    }

    /// Host read of a node's moments at time `t` (between launches).
    pub fn get_moments<L: Lattice>(&self, t: u64, idx: usize) -> Moments {
        let mut flat = [0.0f64; MAX_M];
        let s = self.slot(idx, t);
        for m in 0..self.m {
            flat[m] = self.buf.get(self.plane(t, m) * self.cap + s);
        }
        Moments::unpack::<L>(&flat[..self.m])
    }

    /// Host write of a node's moments at time `t` (initialization).
    pub fn set_moments<L: Lattice>(&self, t: u64, idx: usize, mom: &Moments) {
        let mut flat = [0.0f64; MAX_M];
        mom.pack::<L>(&mut flat[..self.m]);
        let s = self.slot(idx, t);
        for m in 0..self.m {
            self.buf.set(self.plane(t, m) * self.cap + s, flat[m]);
        }
    }

    /// Total raw slots in the backing store (`m · cap`), the length of a
    /// [`MomentLattice::host_snapshot`].
    pub fn raw_len(&self) -> usize {
        self.m * self.cap
    }

    /// Host copy of the raw backing store (all `m · cap` slots, untranslated).
    ///
    /// Checkpoints snapshot the buffer verbatim rather than per-node moments:
    /// restoring the same bytes with the same `t` reproduces the exact slot
    /// layout, so a resumed run is bitwise-identical to an uninterrupted one.
    pub fn host_snapshot(&self) -> Vec<f64> {
        self.buf.snapshot()
    }

    /// Host restore of a raw backing store taken by
    /// [`MomentLattice::host_snapshot`] on an identically-shaped lattice.
    pub fn host_restore(&self, data: &[f64]) {
        assert_eq!(
            data.len(),
            self.m * self.cap,
            "snapshot shape mismatch: {} slots vs {} in lattice",
            data.len(),
            self.m * self.cap
        );
        for (i, v) in data.iter().enumerate() {
            self.buf.set(i, *v);
        }
    }

    /// Attach a fault plan to the backing buffer (kernel writes become
    /// corruptible at the plan's trigger points).
    pub fn set_fault_plan(&mut self, plan: std::sync::Arc<gpu_sim::FaultPlan>) {
        self.buf.set_fault_plan(plan);
    }
}

fn replace_buffer(
    buf: GlobalBuffer<f64>,
    f: impl FnOnce(GlobalBuffer<f64>) -> GlobalBuffer<f64>,
) -> GlobalBuffer<f64> {
    f(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_lattice::D2Q9;

    #[test]
    fn slots_shift_downward_and_stay_unique() {
        let ml = MomentLattice::new(100, 6, 10, 20);
        for t in 0..25u64 {
            let mut seen = [false; 120];
            for idx in 0..100 {
                let s = ml.slot(idx, t);
                assert!(s < 120);
                assert!(!seen[s], "slot collision at t={t}");
                seen[s] = true;
            }
        }
        // One step moves node idx to the slot node idx−shift held.
        assert_eq!(ml.slot(10, 1), ml.slot(0, 0));
        assert_eq!(ml.slot(0, 1), 110);
    }

    #[test]
    fn host_moment_roundtrip_across_times() {
        let ml = MomentLattice::new(50, 6, 5, 10);
        let m = Moments {
            rho: 1.1,
            u: [0.01, -0.02, 0.0],
            pi: [0.4, 0.1, 0.0, 0.3, 0.0, 0.0],
        };
        for t in [0u64, 1, 7, 123] {
            ml.set_moments::<D2Q9>(t, 17, &m);
            let back = ml.get_moments::<D2Q9>(t, 17);
            assert!((back.rho - m.rho).abs() < 1e-15);
            assert_eq!(back.u, m.u);
        }
    }

    #[test]
    fn footprint_is_single_lattice() {
        let ml = MomentLattice::new(1000, 10, 32, 64);
        assert_eq!(ml.size_bytes(), 10 * (1000 + 64) * 8);
        // Strictly smaller than the double-buffered 2·M layout.
        assert!(ml.size_bytes() < 2 * 10 * 1000 * 8);
    }

    #[test]
    #[should_panic(expected = "padding must cover")]
    fn insufficient_padding_rejected() {
        let _ = MomentLattice::new(100, 6, 10, 5);
    }

    /// Row (span) reads/writes produce bitwise-identical values and
    /// byte-identical tallies to element-wise moment access, including when
    /// the row straddles the circular wrap of the slot space.
    #[test]
    fn row_ops_match_element_ops_across_wrap() {
        use gpu_sim::exec::{Kernel, Launch};
        use gpu_sim::{DeviceSpec, Gpu};

        // n=40, cap=50, shift=8: at t=1 node idx sits in slot (idx+42)%50,
        // so the row idx0=5, count=10 occupies slots 47..50 ∪ 0..7 — a wrap.
        const T: u64 = 1;
        const IDX0: usize = 5;
        const COUNT: usize = 10;
        struct RowProbe<'a> {
            ml: &'a MomentLattice,
            spans: bool,
        }
        impl Kernel for RowProbe<'_> {
            fn name(&self) -> &str {
                "row-probe"
            }
            fn run_block(&self, ctx: &mut BlockCtx) {
                if self.spans {
                    self.ml.read_row_to_scratch(ctx, T, IDX0, COUNT, 0);
                    for k in 0..COUNT * 6 {
                        ctx.scratch()[k] += 0.5;
                    }
                    self.ml.write_row_from_scratch(ctx, T + 1, IDX0, COUNT, 0);
                } else {
                    for j in 0..COUNT {
                        for m in 0..6 {
                            let v = self.ml.read(ctx, T, IDX0 + j, m);
                            self.ml.write(ctx, T + 1, IDX0 + j, m, v + 0.5);
                        }
                    }
                }
            }
        }
        let run = |spans: bool| {
            let ml = MomentLattice::new(40, 6, 8, 10).with_touch_tracking();
            for idx in 0..40 {
                let m = Moments {
                    rho: 1.0 + idx as f64 * 0.01,
                    u: [0.001 * idx as f64, -0.002, 0.0],
                    pi: [0.3, 0.05, 0.0, 0.31, 0.0, 0.0],
                };
                ml.set_moments::<D2Q9>(T, idx, &m);
            }
            let gpu = Gpu::new(DeviceSpec::v100()).with_cpu_threads(1);
            let cfg = Launch {
                blocks: 1,
                threads_per_block: 32,
                shared_doubles: 0,
                scratch_doubles: 6 * COUNT,
            };
            let stats = gpu.launch(&cfg, &RowProbe { ml: &ml, spans });
            let out: Vec<Moments> = (IDX0..IDX0 + COUNT)
                .map(|idx| ml.get_moments::<D2Q9>(T + 1, idx))
                .collect();
            (stats.tally, out)
        };
        let (ts, vs) = run(true);
        let (te, ve) = run(false);
        assert_eq!(ts, te, "row-span tallies diverged from element tallies");
        assert_eq!(ts.reads, (COUNT * 6) as u64);
        assert_eq!(ts.writes, (COUNT * 6) as u64);
        for (a, b) in vs.iter().zip(&ve) {
            assert_eq!(a.rho, b.rho);
            assert_eq!(a.u, b.u);
            assert_eq!(a.pi, b.pi);
        }
        assert!((vs[0].rho - (1.0 + 0.05 + 0.5)).abs() < 1e-15);
    }
}
