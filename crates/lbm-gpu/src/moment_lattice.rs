//! The single moment lattice with circular array time shifting.
//!
//! Algorithm 2 stores only `M` moments per node and updates them *in place*
//! each timestep. To keep a column's new values from clobbering old values
//! that adjacent columns still need (their halo reads), every timestep
//! shifts the storage location of all nodes by a constant offset — the
//! constant-time circular array shifting of Dethier et al. (2011), the
//! paper's ref. \[1\]. Writes trail reads by the sliding window's two-layer
//! lag, and the shift is chosen *downward* (toward already-consumed slots)
//! so that under bulk-synchronous tile phases no unread slot is ever
//! overwritten; the strict race checker verifies this in the tests.
//!
//! Layout: moment-major (SoA), `buf[m · cap + slot(idx, t)]` with
//! `slot(idx, t) = (idx − t·shift) mod cap`, `cap = n + pad`.

use gpu_sim::exec::BlockCtx;
use gpu_sim::GlobalBuffer;
use lbm_lattice::moments::Moments;
use lbm_lattice::Lattice;

/// Moment storage for a whole domain, with circular time shifting.
pub struct MomentLattice {
    buf: GlobalBuffer<f64>,
    /// Nodes in the domain.
    n: usize,
    /// Slots per moment plane (`n + pad`).
    cap: usize,
    /// Slot shift per timestep, in nodes (one row in 2D, one layer in 3D).
    shift: usize,
    /// Moments per node.
    m: usize,
}

impl MomentLattice {
    /// Allocate for `n` nodes with `m` moments, shifting by `shift` nodes
    /// per step and padding with `pad ≥ shift` spare slots.
    pub fn new(n: usize, m: usize, shift: usize, pad: usize) -> Self {
        assert!(pad >= shift, "padding must cover the per-step shift");
        MomentLattice {
            buf: GlobalBuffer::new(m * (n + pad)),
            n,
            cap: n + pad,
            shift,
            m,
        }
    }

    /// Enable the launch-scoped L2 model on the backing buffer.
    pub fn with_touch_tracking(mut self) -> Self {
        self.buf = replace_buffer(self.buf, |b| b.with_touch_tracking());
        self
    }

    /// Enable strict race checking on the backing buffer (tests).
    pub fn with_racecheck_strict(mut self) -> Self {
        self.buf = replace_buffer(self.buf, |b| b.with_racecheck_strict());
        self
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Moments per node.
    pub fn moments_per_node(&self) -> usize {
        self.m
    }

    /// Device-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.buf.size_bytes()
    }

    /// Storage slot of node `idx` at timestep `t`.
    #[inline(always)]
    pub fn slot(&self, idx: usize, t: u64) -> usize {
        debug_assert!(idx < self.n);
        let off = ((t as u128 * self.shift as u128) % self.cap as u128) as usize;
        (idx + self.cap - off) % self.cap
    }

    /// Kernel read of moment `m` of node `idx` at time `t`.
    #[inline(always)]
    pub fn read(&self, ctx: &mut BlockCtx, t: u64, idx: usize, m: usize) -> f64 {
        ctx.read(&self.buf, m * self.cap + self.slot(idx, t))
    }

    /// Kernel write of moment `m` of node `idx` at time `t`.
    #[inline(always)]
    pub fn write(&self, ctx: &mut BlockCtx, t: u64, idx: usize, m: usize, v: f64) {
        ctx.write(&self.buf, m * self.cap + self.slot(idx, t), v);
    }

    /// Kernel read of a node's full moment state at time `t`.
    #[inline(always)]
    pub fn read_moments<L: Lattice>(&self, ctx: &mut BlockCtx, t: u64, idx: usize) -> Moments {
        debug_assert_eq!(self.m, L::M);
        let mut flat = [0.0f64; 16];
        let s = self.slot(idx, t);
        for m in 0..self.m {
            flat[m] = ctx.read(&self.buf, m * self.cap + s);
        }
        Moments::unpack::<L>(&flat[..self.m])
    }

    /// Kernel write of a node's full moment state at time `t`.
    #[inline(always)]
    pub fn write_moments<L: Lattice>(&self, ctx: &mut BlockCtx, t: u64, idx: usize, mom: &Moments) {
        debug_assert_eq!(self.m, L::M);
        let mut flat = [0.0f64; 16];
        mom.pack::<L>(&mut flat[..self.m]);
        let s = self.slot(idx, t);
        for m in 0..self.m {
            ctx.write(&self.buf, m * self.cap + s, flat[m]);
        }
    }

    /// Host read of a node's moments at time `t` (between launches).
    pub fn get_moments<L: Lattice>(&self, t: u64, idx: usize) -> Moments {
        let mut flat = [0.0f64; 16];
        let s = self.slot(idx, t);
        for m in 0..self.m {
            flat[m] = self.buf.get(m * self.cap + s);
        }
        Moments::unpack::<L>(&flat[..self.m])
    }

    /// Host write of a node's moments at time `t` (initialization).
    pub fn set_moments<L: Lattice>(&self, t: u64, idx: usize, mom: &Moments) {
        let mut flat = [0.0f64; 16];
        mom.pack::<L>(&mut flat[..self.m]);
        let s = self.slot(idx, t);
        for m in 0..self.m {
            self.buf.set(m * self.cap + s, flat[m]);
        }
    }
}

fn replace_buffer(
    buf: GlobalBuffer<f64>,
    f: impl FnOnce(GlobalBuffer<f64>) -> GlobalBuffer<f64>,
) -> GlobalBuffer<f64> {
    f(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbm_lattice::D2Q9;

    #[test]
    fn slots_shift_downward_and_stay_unique() {
        let ml = MomentLattice::new(100, 6, 10, 20);
        for t in 0..25u64 {
            let mut seen = [false; 120];
            for idx in 0..100 {
                let s = ml.slot(idx, t);
                assert!(s < 120);
                assert!(!seen[s], "slot collision at t={t}");
                seen[s] = true;
            }
        }
        // One step moves node idx to the slot node idx−shift held.
        assert_eq!(ml.slot(10, 1), ml.slot(0, 0));
        assert_eq!(ml.slot(0, 1), 110);
    }

    #[test]
    fn host_moment_roundtrip_across_times() {
        let ml = MomentLattice::new(50, 6, 5, 10);
        let m = Moments {
            rho: 1.1,
            u: [0.01, -0.02, 0.0],
            pi: [0.4, 0.1, 0.0, 0.3, 0.0, 0.0],
        };
        for t in [0u64, 1, 7, 123] {
            ml.set_moments::<D2Q9>(t, 17, &m);
            let back = ml.get_moments::<D2Q9>(t, 17);
            assert!((back.rho - m.rho).abs() < 1e-15);
            assert_eq!(back.u, m.u);
        }
    }

    #[test]
    fn footprint_is_single_lattice() {
        let ml = MomentLattice::new(1000, 10, 32, 64);
        assert_eq!(ml.size_bytes(), 10 * (1000 + 64) * 8);
        // Strictly smaller than the double-buffered 2·M layout.
        assert!(ml.size_bytes() < 2 * 10 * 1000 * 8);
    }

    #[test]
    #[should_panic(expected = "padding must cover")]
    fn insufficient_padding_rejected() {
        let _ = MomentLattice::new(100, 6, 10, 5);
    }
}
